// Crash/resume smoke driver for CI: runs the train-gate mutual-exclusion
// invariant check with periodic checkpointing and prints a one-line
// machine-readable result. The CI job SIGKILLs a throttled run mid-flight,
// asserts the checkpoint file exists, reruns to completion and compares the
// verdict + statistics against an uninterrupted reference run.
//
//   ckpt_smoke [--checkpoint PATH] [--trains N] [--interval K]
//              [--throttle-us U] [--no-resume]
//
//   --checkpoint PATH  checkpoint file ("" disables checkpointing)
//   --trains N         train-gate size (default 4)
//   --interval K       periodic snapshot cadence in explored states (def. 200)
//   --throttle-us U    sleep U microseconds per explored state, stretching
//                      the run so a signal can land mid-flight (default 0)
//   --no-resume        ignore any existing checkpoint (reference mode)
//
// Output: "resumed=<0|1> load=<status> verdict=<v> stored=<n> explored=<n>
// transitions=<n>" on stdout; exit 0 on a definite verdict, 3 on kUnknown,
// 1 on usage errors.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "core/observer.h"
#include "mc/reachability.h"
#include "models/train_gate.h"

using namespace quanta;

namespace {

mc::StatePredicate mutual_exclusion(const models::TrainGate& tg) {
  std::vector<int> cross_loc;
  for (int i = 0; i < tg.num_trains; ++i) {
    cross_loc.push_back(
        tg.system.process(tg.trains[static_cast<std::size_t>(i)])
            .location_index("Cross"));
  }
  auto trains = tg.trains;
  return [trains, cross_loc](const ta::SymState& s) {
    int crossing = 0;
    for (std::size_t i = 0; i < trains.size(); ++i) {
      if (s.locs[static_cast<std::size_t>(trains[i])] == cross_loc[i]) {
        ++crossing;
      }
    }
    return crossing <= 1;
  };
}

/// Slows the search down to human/CI timescales so a SIGKILL lands mid-run.
class Throttle final : public core::ExplorationObserver {
 public:
  explicit Throttle(long us) : us_(us) {}
  void on_state_explored(std::int32_t) override {
    if (us_ > 0) std::this_thread::sleep_for(std::chrono::microseconds(us_));
  }

 private:
  long us_;
};

const char* verdict_name(common::Verdict v) {
  switch (v) {
    case common::Verdict::kHolds: return "holds";
    case common::Verdict::kViolated: return "violated";
    case common::Verdict::kUnknown: return "unknown";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  int trains = 4;
  std::uint64_t interval = 200;
  long throttle_us = 0;
  bool resume = true;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ckpt_smoke: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--checkpoint") == 0) {
      path = need("--checkpoint");
    } else if (std::strcmp(argv[i], "--trains") == 0) {
      trains = std::atoi(need("--trains"));
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      interval = static_cast<std::uint64_t>(std::atoll(need("--interval")));
    } else if (std::strcmp(argv[i], "--throttle-us") == 0) {
      throttle_us = std::atol(need("--throttle-us"));
    } else if (std::strcmp(argv[i], "--no-resume") == 0) {
      resume = false;
    } else {
      std::fprintf(stderr, "ckpt_smoke: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (trains < 2) {
    std::fprintf(stderr, "ckpt_smoke: --trains must be >= 2\n");
    return 1;
  }

  auto tg = models::make_train_gate(trains);
  Throttle throttle(throttle_us);
  mc::ReachOptions opts;
  opts.record_trace = false;
  opts.observer = &throttle;
  opts.limits.budget = common::Budget::deadline_after(std::chrono::hours(1));
  opts.checkpoint.path = path;
  opts.checkpoint.resume = resume;
  opts.checkpoint.interval = interval;
  opts.checkpoint.property_tag = "train-gate-mutex";

  const auto r = mc::check_invariant(tg.system, mutual_exclusion(tg), opts);
  std::printf("resumed=%d load=%s verdict=%s stored=%zu explored=%zu "
              "transitions=%zu\n",
              r.resume.resumed ? 1 : 0, ckpt::to_string(r.resume.load),
              verdict_name(r.verdict), r.stats.states_stored,
              r.stats.states_explored, r.stats.transitions);
  return r.verdict == common::Verdict::kUnknown ? 3 : 0;
}
