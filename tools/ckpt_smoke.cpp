// Crash/resume smoke driver for CI: runs one long-running engine with
// periodic (delta) checkpointing and prints a one-line machine-readable
// result. The CI job SIGKILLs a throttled run mid-flight, asserts the
// checkpoint file exists, reruns to completion and compares the verdict +
// statistics against an uninterrupted reference run.
//
//   ckpt_smoke [--engine mc|game|cora] [--checkpoint PATH] [--trains N]
//              [--interval K] [--throttle-us U] [--no-resume]
//
//   --engine E         which engine to drive (default mc):
//                        mc    train-gate mutual-exclusion invariant
//                        game  train-game reachability synthesis (TIGA)
//                        cora  train-gate min-cost reachability (CORA)
//   --checkpoint PATH  checkpoint file ("" disables checkpointing)
//   --trains N         model size in trains (default 4; game defaults to 2)
//   --interval K       periodic snapshot cadence in explored states (def. 200)
//   --throttle-us U    sleep U microseconds per explored state, stretching
//                      the run so a signal can land mid-flight (default 0)
//   --no-resume        ignore any existing checkpoint (reference mode)
//
// Output: "resumed=<0|1> load=<status> verdict=<v> stored=<n> explored=<n>
// transitions=<n> extra=<n>" on stdout; `extra` is engine-specific (winning
// states for game, optimal cost for cora, 0 for mc). Exit 0 on a definite
// verdict, 3 on kUnknown, 1 on usage errors.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/pred.h"
#include "core/observer.h"
#include "cora/priced.h"
#include "game/tiga.h"
#include "mc/reachability.h"
#include "models/train_game.h"
#include "models/train_gate.h"

using namespace quanta;

namespace {

mc::StatePredicate mutual_exclusion(const models::TrainGate& tg) {
  std::vector<int> cross_loc;
  for (int i = 0; i < tg.num_trains; ++i) {
    cross_loc.push_back(
        tg.system.process(tg.trains[static_cast<std::size_t>(i)])
            .location_index("Cross"));
  }
  auto trains = tg.trains;
  // Labeled so the closure stays fingerprint-distinguishable (the canonical
  // AST replaces the retired property_tag knob).
  return common::labeled_pred<ta::SymState>(
      "train-gate-mutex", [trains, cross_loc](const ta::SymState& s) {
        int crossing = 0;
        for (std::size_t i = 0; i < trains.size(); ++i) {
          if (s.locs[static_cast<std::size_t>(trains[i])] == cross_loc[i]) {
            ++crossing;
          }
        }
        return crossing <= 1;
      });
}

/// Slows the search down to human/CI timescales so a SIGKILL lands mid-run.
class Throttle final : public core::ExplorationObserver {
 public:
  explicit Throttle(long us) : us_(us) {}
  void on_state_explored(std::int32_t) override {
    if (us_ > 0) std::this_thread::sleep_for(std::chrono::microseconds(us_));
  }

 private:
  long us_;
};

const char* verdict_name(common::Verdict v) {
  switch (v) {
    case common::Verdict::kHolds: return "holds";
    case common::Verdict::kViolated: return "violated";
    case common::Verdict::kUnknown: return "unknown";
  }
  return "?";
}

struct Line {
  ckpt::ResumeInfo resume;
  common::Verdict verdict = common::Verdict::kUnknown;
  core::SearchStats stats;
  long long extra = 0;
};

int report(const Line& l) {
  std::printf("resumed=%d load=%s verdict=%s stored=%zu explored=%zu "
              "transitions=%zu extra=%lld\n",
              l.resume.resumed ? 1 : 0, ckpt::to_string(l.resume.load),
              verdict_name(l.verdict), l.stats.states_stored,
              l.stats.states_explored, l.stats.transitions, l.extra);
  return l.verdict == common::Verdict::kUnknown ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine = "mc";
  std::string path;
  int trains = 4;
  std::uint64_t interval = 200;
  long throttle_us = 0;
  bool resume = true;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ckpt_smoke: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--engine") == 0) {
      engine = need("--engine");
    } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
      path = need("--checkpoint");
    } else if (std::strcmp(argv[i], "--trains") == 0) {
      trains = std::atoi(need("--trains"));
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      interval = static_cast<std::uint64_t>(std::atoll(need("--interval")));
    } else if (std::strcmp(argv[i], "--throttle-us") == 0) {
      throttle_us = std::atol(need("--throttle-us"));
    } else if (std::strcmp(argv[i], "--no-resume") == 0) {
      resume = false;
    } else {
      std::fprintf(stderr, "ckpt_smoke: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (engine != "mc" && engine != "game" && engine != "cora") {
    std::fprintf(stderr, "ckpt_smoke: --engine must be mc, game or cora\n");
    return 1;
  }
  if (trains < 2) {
    std::fprintf(stderr, "ckpt_smoke: --trains must be >= 2\n");
    return 1;
  }

  Throttle throttle(throttle_us);
  ckpt::Options checkpoint;
  checkpoint.path = path;
  checkpoint.resume = resume;
  checkpoint.interval = interval;
  const auto budget = common::Budget::deadline_after(std::chrono::hours(1));
  Line line;

  if (engine == "mc") {
    auto tg = models::make_train_gate(trains);
    mc::ReachOptions opts;
    opts.record_trace = false;
    opts.observer = &throttle;
    opts.limits.budget = budget;
    opts.checkpoint = checkpoint;
    const auto r = mc::check_invariant(tg.system, mutual_exclusion(tg), opts);
    line = {r.resume, r.verdict, r.stats, 0};
  } else if (engine == "game") {
    // Reachability objectives need train 0 already approaching (from all-Safe
    // the environment may simply never send a train); 2 trains keeps the
    // digital-clocks game graph at CI-smoke scale.
    auto tg = models::make_train_game(
        {.num_trains = std::min(trains, 2), .first_train_approaching = true});
    const auto goal =
        common::loc_index_pred<ta::DigitalState>(tg.trains[0], tg.l_cross);
    core::SearchLimits limits;
    limits.budget = budget;
    game::TimedGame g(tg.system, limits, checkpoint, &throttle);
    const auto r = g.solve_reachability(goal);
    line = {r.resume, r.verdict, r.stats,
            static_cast<long long>(r.winning_states)};
  } else {
    auto tg = models::make_train_gate(trains);
    cora::PriceModel prices(tg.system);
    for (int t : tg.trains) {
      const auto& proc = tg.system.process(t);
      prices.set_location_rate(t, proc.location_index("Appr"), 1);
      prices.set_location_rate(t, proc.location_index("Stop"), 1);
    }
    const int cross = tg.system.process(tg.trains[0]).location_index("Cross");
    const auto goal =
        common::loc_index_pred<ta::DigitalState>(tg.trains[0], cross);
    cora::MinCostOptions opts;
    opts.limits.budget = budget;
    opts.checkpoint = checkpoint;
    opts.observer = &throttle;
    const auto r = cora::min_cost_reachability(tg.system, prices, goal, opts);
    line = {r.resume, r.verdict, r.stats, static_cast<long long>(r.cost)};
  }
  return report(line);
}
