// quantad — the analysis-as-a-service daemon (README "Running as a
// service"). Binds the configured listeners, serves governed analysis
// requests until SIGINT/SIGTERM, then shuts down gracefully: in-flight
// jobs are cancelled at their next budget poll and every connected
// session receives its final response.
//
//   quantad --socket /tmp/quantad.sock [--tcp-port N] [--ckpt-dir DIR]
//           [--jobs N] [--queue-depth N] [--cache-mem BYTES]
//           [--inflight-mem BYTES] [--isolate | --no-isolate]
//           [--retries N] [--ckpt-ttl SECONDS] [--state-dir DIR]
//           [--no-journal] [--no-cache-persist] [--debug]
//
// Sizing defaults come from QUANTAD_JOBS / QUANTAD_QUEUE_DEPTH /
// QUANTAD_CACHE_MEM (strict whole-positive-decimal parsing; anything
// else falls back to the built-in defaults — see src/svc/config.h).
// Jobs run in sandboxed worker processes unless --no-isolate (or
// QUANTAD_ISOLATE=0): a crashing engine fails one job, never the daemon;
// crashed jobs are retried --retries times (QUANTAD_RETRIES) resuming
// from their last checkpoint, then quarantined. Unclaimed resume
// checkpoints expire after --ckpt-ttl seconds (QUANTAD_CKPT_TTL).
// --state-dir DIR (QUANTAD_STATE_DIR) makes the daemon durable: a
// write-ahead job journal and an on-disk cache segment live there, so a
// restart reloads the result cache, restores the quarantine set and
// replays incomplete jobs to completion (README "Restarting quantad");
// --no-journal / --no-cache-persist (QUANTAD_JOURNAL=0 /
// QUANTAD_CACHE_PERSIST=0) switch the two halves off individually.
// --debug additionally honors the hold_ms/throttle_us request pacing
// fields and the fault/crash_signal/rlimit_mb crash drills; production
// daemons reject them as bad requests.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "svc/config.h"
#include "svc/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [--tcp-port N] [--ckpt-dir DIR] [--jobs N]\n"
      "          [--queue-depth N] [--cache-mem BYTES] [--inflight-mem BYTES]\n"
      "          [--isolate | --no-isolate] [--retries N] [--ckpt-ttl SECS]\n"
      "          [--state-dir DIR] [--no-journal] [--no-cache-persist]\n"
      "          [--debug]\n",
      argv0);
  return 1;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* endp = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &endp, 10);
  if (errno != 0 || endp == s || *endp != '\0' || std::strchr(s, '-')) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  quanta::svc::ServerConfig cfg;
  cfg.isolate = quanta::svc::default_isolate();
  cfg.state_dir = quanta::svc::default_state_dir();
  cfg.journal = quanta::svc::default_journal();
  cfg.cache_persist = quanta::svc::default_cache_persist();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t v = 0;
    if (arg == "--socket") {
      const char* s = next();
      if (s == nullptr) return usage(argv[0]);
      cfg.socket_path = s;
    } else if (arg == "--tcp-port") {
      const char* s = next();
      if (s == nullptr || !parse_u64(s, &v) || v > 65535) return usage(argv[0]);
      cfg.tcp_port = static_cast<int>(v);
    } else if (arg == "--ckpt-dir") {
      const char* s = next();
      if (s == nullptr) return usage(argv[0]);
      cfg.ckpt_dir = s;
    } else if (arg == "--jobs") {
      const char* s = next();
      if (s == nullptr || !parse_u64(s, &v) || v == 0) return usage(argv[0]);
      cfg.jobs = static_cast<unsigned>(v);
    } else if (arg == "--queue-depth") {
      const char* s = next();
      if (s == nullptr || !parse_u64(s, &v) || v == 0) return usage(argv[0]);
      cfg.queue_depth = v;
    } else if (arg == "--cache-mem") {
      const char* s = next();
      if (s == nullptr || !parse_u64(s, &v) || v == 0) return usage(argv[0]);
      cfg.cache_bytes = v;
    } else if (arg == "--inflight-mem") {
      const char* s = next();
      if (s == nullptr || !parse_u64(s, &v) || v == 0) return usage(argv[0]);
      cfg.inflight_bytes = v;
    } else if (arg == "--isolate") {
      cfg.isolate = true;
    } else if (arg == "--no-isolate") {
      cfg.isolate = false;
    } else if (arg == "--retries") {
      const char* s = next();
      if (s == nullptr || !parse_u64(s, &v) ||
          v > quanta::svc::kMaxRetries) {
        return usage(argv[0]);
      }
      cfg.retries = static_cast<int>(v);
    } else if (arg == "--ckpt-ttl") {
      const char* s = next();
      if (s == nullptr || !parse_u64(s, &v) || v == 0 ||
          v > quanta::svc::kMaxCkptTtlS) {
        return usage(argv[0]);
      }
      cfg.ckpt_ttl_s = v;
    } else if (arg == "--state-dir") {
      const char* s = next();
      if (s == nullptr) return usage(argv[0]);
      cfg.state_dir = s;
    } else if (arg == "--no-journal") {
      cfg.journal = false;
    } else if (arg == "--no-cache-persist") {
      cfg.cache_persist = false;
    } else if (arg == "--debug") {
      cfg.enable_debug = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (cfg.socket_path.empty() && cfg.tcp_port < 0) return usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  quanta::svc::Server server(cfg);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "quantad: %s\n", error.c_str());
    return 1;
  }
  std::printf("quantad: listening%s%s%s (%s%s)\n",
              cfg.socket_path.empty() ? "" : (" on " + cfg.socket_path).c_str(),
              server.tcp_port() >= 0 ? " tcp 127.0.0.1:" : "",
              server.tcp_port() >= 0
                  ? std::to_string(server.tcp_port()).c_str()
                  : "",
              cfg.isolate ? "isolated workers" : "in-process jobs",
              cfg.state_dir.empty() ? "" : ", durable state");
  std::fflush(stdout);

  while (g_stop == 0) {
    ::pause();  // signals are the only exit path
  }
  server.stop();
  const auto stats = server.stats();
  std::printf(
      "quantad: exiting requests=%llu executed=%llu cache_hits=%llu "
      "overloads=%llu worker_crashes=%llu quarantined=%llu\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.jobs_executed),
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.overloads),
      static_cast<unsigned long long>(stats.supervisor.crashes),
      static_cast<unsigned long long>(stats.supervisor.quarantined));
  return 0;
}
