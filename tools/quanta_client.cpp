// quanta_client — CLI for the quantad analysis service.
//
//   quanta_client --socket PATH | --tcp-host A --tcp-port N
//                 --engine E --model M --query Q [params...]
//   quanta_client --socket PATH --ping | --stats
//   quanta_client --socket PATH --ticket N       # fetch a journaled answer
//   quanta_client --socket PATH --wait-ready MS  # block until daemon is up
//
// Prints one result line per analysis:
//
//   status=ok cached=0 verdict=<v> stored=<n> explored=<n> transitions=<n>
//     extra=<n> [value=<f>] [resume=<token>] [ticket=<n>]
//
// Fields 3.. match tools/ckpt_smoke's output line, so CI can diff a
// service answer against a direct library run with `cut -d' ' -f3-`
// (ticket= appears only with --want-ticket, so diffed runs never carry it).
//
// --want-ticket asks a journaling daemon for the job's journal ticket;
// --ticket N later fetches that job's stored answer — the recovery path
// for a client whose connection died across a daemon restart (README
// "Restarting quantad"). A still-pending ticket answers status=error
// (exit 6): poll until the replayed job completes. --wait-ready MS polls
// ping with deterministic backoff and exits 1 if the daemon is not up in
// time; combined with an action it gates the action on readiness.
//
// Exit codes: 0 definite verdict, 3 verdict unknown (budget-tripped jobs
// land here and print their resume token), 2 overload rejection,
// 4 bad request, 5 daemon shutting down, 6 daemon-internal error,
// 7 truncated response (the daemon died mid-reply — distinct from a
// clean transport failure so chaos harnesses can tell corruption from
// absence), 1 usage / other transport / protocol failure.
//
// --timeout-ms caps connect and each socket read/write; --retries N
// re-attempts transport failures and overload/shutdown answers with
// exponential backoff and deterministic jitter (see svc/client.h).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "svc/client.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--socket PATH | --tcp-host ADDR --tcp-port N)\n"
      "          (--ping | --stats | --ticket N | --wait-ready MS |\n"
      "           --engine E --model M --query Q\n"
      "           [--priority high|normal|low] [--deadline-ms N]\n"
      "           [--memory-mb N] [--runs N] [--seed N] [--bound F]\n"
      "           [--ckpt-interval N] [--resume TOKEN] [--no-cache]\n"
      "           [--no-quarantine] [--want-ticket] [--hold-ms N]\n"
      "           [--throttle-us N] [--fault SPEC] [--crash-signal N]\n"
      "           [--rlimit-mb N])\n"
      "          [--wait-ready MS] [--timeout-ms N] [--retries N]\n",
      argv0);
  return 1;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* endp = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &endp, 10);
  if (errno != 0 || endp == s || *endp != '\0' || std::strchr(s, '-')) {
    return false;
  }
  *out = v;
  return true;
}

int status_exit_code(quanta::svc::Status s, quanta::common::Verdict verdict) {
  switch (s) {
    case quanta::svc::Status::kOk:
      return verdict == quanta::common::Verdict::kUnknown ? 3 : 0;
    case quanta::svc::Status::kOverload:
      return 2;
    case quanta::svc::Status::kBadRequest:
      return 4;
    case quanta::svc::Status::kShutdown:
      return 5;
    case quanta::svc::Status::kError:
      return 6;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, tcp_host;
  int tcp_port = -1;
  bool builtin = false;
  bool wait_ready_set = false;
  std::uint64_t wait_ready_ms = 0;
  quanta::svc::Request req;
  quanta::svc::RetryPolicy policy;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_u64 = [&](std::uint64_t* out) {
      const char* s = next();
      return s != nullptr && parse_u64(s, out);
    };
    if (arg == "--socket") {
      const char* s = next();
      if (s == nullptr) return usage(argv[0]);
      socket_path = s;
    } else if (arg == "--tcp-host") {
      const char* s = next();
      if (s == nullptr) return usage(argv[0]);
      tcp_host = s;
    } else if (arg == "--tcp-port") {
      std::uint64_t v = 0;
      if (!next_u64(&v) || v > 65535) return usage(argv[0]);
      tcp_port = static_cast<int>(v);
    } else if (arg == "--ping" || arg == "--stats") {
      builtin = true;
      req.engine = "svc";
      req.query = arg.substr(2);
    } else if (arg == "--engine") {
      const char* s = next();
      if (s == nullptr) return usage(argv[0]);
      req.engine = s;
    } else if (arg == "--model") {
      const char* s = next();
      if (s == nullptr) return usage(argv[0]);
      req.model = s;
    } else if (arg == "--query") {
      const char* s = next();
      if (s == nullptr) return usage(argv[0]);
      req.query = s;
    } else if (arg == "--priority") {
      const char* s = next();
      if (s == nullptr) return usage(argv[0]);
      if (std::strcmp(s, "high") == 0) {
        req.priority = quanta::svc::Priority::kHigh;
      } else if (std::strcmp(s, "normal") == 0) {
        req.priority = quanta::svc::Priority::kNormal;
      } else if (std::strcmp(s, "low") == 0) {
        req.priority = quanta::svc::Priority::kLow;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--deadline-ms") {
      if (!next_u64(&req.deadline_ms)) return usage(argv[0]);
    } else if (arg == "--memory-mb") {
      if (!next_u64(&req.memory_mb)) return usage(argv[0]);
    } else if (arg == "--runs") {
      if (!next_u64(&req.runs)) return usage(argv[0]);
    } else if (arg == "--seed") {
      if (!next_u64(&req.seed)) return usage(argv[0]);
    } else if (arg == "--bound") {
      const char* s = next();
      char* endp = nullptr;
      if (s == nullptr) return usage(argv[0]);
      req.bound = std::strtod(s, &endp);
      if (endp == s || *endp != '\0') return usage(argv[0]);
    } else if (arg == "--ckpt-interval") {
      if (!next_u64(&req.ckpt_interval)) return usage(argv[0]);
    } else if (arg == "--resume") {
      const char* s = next();
      if (s == nullptr) return usage(argv[0]);
      req.resume = s;
    } else if (arg == "--no-cache") {
      req.use_cache = false;
    } else if (arg == "--no-quarantine") {
      req.use_quarantine = false;
    } else if (arg == "--want-ticket") {
      req.want_ticket = true;
    } else if (arg == "--ticket") {
      // A ticket fetch is the svc "result" builtin, but it answers with a
      // full analysis response — route it through the analysis printer so
      // its output line diffs cleanly against the original run.
      if (!next_u64(&req.ticket) || req.ticket == 0) return usage(argv[0]);
      req.engine = "svc";
      req.query = "result";
    } else if (arg == "--wait-ready") {
      if (!next_u64(&wait_ready_ms)) return usage(argv[0]);
      wait_ready_set = true;
    } else if (arg == "--fault") {
      const char* s = next();
      if (s == nullptr) return usage(argv[0]);
      req.fault = s;
    } else if (arg == "--crash-signal") {
      if (!next_u64(&req.crash_signal)) return usage(argv[0]);
    } else if (arg == "--rlimit-mb") {
      if (!next_u64(&req.rlimit_mb)) return usage(argv[0]);
    } else if (arg == "--timeout-ms" || arg == "--timeout") {
      if (!next_u64(&policy.timeout_ms)) return usage(argv[0]);
    } else if (arg == "--retries") {
      std::uint64_t v = 0;
      if (!next_u64(&v) || v > 1000) return usage(argv[0]);
      policy.retries = static_cast<unsigned>(v);
    } else if (arg == "--hold-ms") {
      if (!next_u64(&req.hold_ms)) return usage(argv[0]);
    } else if (arg == "--throttle-us") {
      if (!next_u64(&req.throttle_us)) return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty() && (tcp_host.empty() || tcp_port < 0)) {
    return usage(argv[0]);
  }
  if (req.engine.empty() && !wait_ready_set) return usage(argv[0]);

  quanta::svc::Endpoint ep;
  ep.socket_path = socket_path;
  if (!tcp_host.empty()) ep.host = tcp_host;
  ep.port = tcp_port;

  std::string error;
  if (wait_ready_set) {
    if (!quanta::svc::wait_ready(ep, wait_ready_ms, &error)) {
      std::fprintf(stderr, "quanta_client: %s\n", error.c_str());
      return 1;
    }
    if (req.engine.empty()) return 0;  // --wait-ready alone: readiness gate
  }
  if (builtin) {
    quanta::svc::Client client;
    client.set_timeout_ms(policy.timeout_ms);
    const bool connected =
        socket_path.empty() ? client.connect_tcp(tcp_host, tcp_port, &error)
                            : client.connect_unix(socket_path, &error);
    quanta::svc::WireMap reply;
    if (!connected || !client.call(to_wire(req), &reply, &error)) {
      std::fprintf(stderr, "quanta_client: %s\n", error.c_str());
      return client.last_transport_error() ==
                     quanta::svc::TransportError::kTruncated
                 ? 7
                 : 1;
    }
    for (const auto& [key, value] : reply.fields()) {
      std::printf("%s=%s\n", key.c_str(), value.c_str());
    }
    const std::string* status = reply.get("status");
    return (status != nullptr && *status == "ok") ? 0 : 1;
  }

  quanta::svc::Response resp;
  quanta::svc::TransportError te = quanta::svc::TransportError::kNone;
  if (!quanta::svc::analyze_with_retry(ep, policy, req, &resp, &error, &te)) {
    if (te == quanta::svc::TransportError::kNone && !error.empty() &&
        resp.status != quanta::svc::Status::kOk) {
      // Retries exhausted on overload/shutdown answers: report the final
      // daemon status like a one-shot call would.
      std::printf("status=%s error=%s\n", quanta::svc::to_string(resp.status),
                  resp.error.c_str());
      return status_exit_code(resp.status, resp.verdict);
    }
    std::fprintf(stderr, "quanta_client: %s\n", error.c_str());
    return te == quanta::svc::TransportError::kTruncated ? 7 : 1;
  }
  if (resp.status != quanta::svc::Status::kOk) {
    std::printf("status=%s error=%s\n", quanta::svc::to_string(resp.status),
                resp.error.c_str());
    return status_exit_code(resp.status, resp.verdict);
  }
  std::printf("status=ok cached=%d verdict=%s stored=%llu explored=%llu "
              "transitions=%llu extra=%lld",
              resp.cached ? 1 : 0, quanta::common::to_string(resp.verdict),
              static_cast<unsigned long long>(resp.stored),
              static_cast<unsigned long long>(resp.explored),
              static_cast<unsigned long long>(resp.transitions),
              static_cast<long long>(resp.extra));
  if (resp.has_value) std::printf(" value=%.17g", resp.value);
  if (!resp.resume.empty()) std::printf(" resume=%s", resp.resume.c_str());
  if (resp.ticket != 0) {
    std::printf(" ticket=%llu", static_cast<unsigned long long>(resp.ticket));
  }
  std::printf("\n");
  return status_exit_code(resp.status, resp.verdict);
}
