// Tests for the MDP core: CSR assembly, qualitative precomputation, value
// iteration and expected rewards on hand-computable models.
#include "mdp/mdp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mdp/expected_reward.h"
#include "mdp/graph_analysis.h"
#include "mdp/value_iteration.h"

namespace {

using namespace quanta::mdp;

StateSet goal_at(std::int32_t n, std::initializer_list<std::int32_t> states) {
  StateSet g(static_cast<std::size_t>(n), false);
  for (auto s : states) g[static_cast<std::size_t>(s)] = true;
  return g;
}

// 0 --a--> {1 w.p. 0.5, 2 w.p. 0.5}; 1 terminal (goal); 2 terminal.
Mdp simple_coin() {
  Mdp m;
  m.add_choice(0, {Branch{1, 0.5}, Branch{2, 0.5}});
  m.freeze();
  return m;
}

TEST(Mdp, FreezeAddsSelfLoopsForTerminalStates) {
  Mdp m = simple_coin();
  EXPECT_EQ(m.num_states(), 3);
  EXPECT_EQ(m.choice_end(1) - m.choice_begin(1), 1);
  auto b = m.branches_of(m.choice_begin(1));
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].target, 1);
  EXPECT_DOUBLE_EQ(b[0].prob, 1.0);
}

TEST(Mdp, FreezeRejectsUnnormalisedDistributions) {
  Mdp m;
  m.add_choice(0, {Branch{1, 0.5}, Branch{2, 0.4}});
  EXPECT_THROW(m.freeze(), std::invalid_argument);
}

TEST(Mdp, AddChoiceAfterFreezeThrows) {
  Mdp m = simple_coin();
  EXPECT_THROW(m.add_choice(0, {Branch{0, 1.0}}), std::logic_error);
}

TEST(ValueIteration, CoinFlip) {
  Mdp m = simple_coin();
  auto goal = goal_at(3, {1});
  auto rmax = reachability_probability(m, goal, Objective::kMax);
  auto rmin = reachability_probability(m, goal, Objective::kMin);
  EXPECT_DOUBLE_EQ(rmax.values[0], 0.5);
  EXPECT_DOUBLE_EQ(rmin.values[0], 0.5);
  EXPECT_TRUE(rmax.converged);
}

TEST(ValueIteration, ChoiceSeparatesMaxAndMin) {
  // 0 has two actions: sure to goal (1) or sure to sink (2).
  Mdp m;
  m.add_choice(0, {Branch{1, 1.0}});
  m.add_choice(0, {Branch{2, 1.0}});
  m.freeze();
  auto goal = goal_at(3, {1});
  EXPECT_DOUBLE_EQ(
      reachability_probability(m, goal, Objective::kMax).values[0], 1.0);
  EXPECT_DOUBLE_EQ(
      reachability_probability(m, goal, Objective::kMin).values[0], 0.0);
}

TEST(ValueIteration, GeometricRetryLoop) {
  // 0 --> {goal 0.3, 0 w.p. 0.7}: P(F goal) = 1 (almost surely).
  Mdp m;
  m.add_choice(0, {Branch{1, 0.3}, Branch{0, 0.7}});
  m.freeze();
  auto goal = goal_at(2, {1});
  auto r = reachability_probability(m, goal, Objective::kMax);
  EXPECT_NEAR(r.values[0], 1.0, 1e-9);
  // Precomputation should make this *exactly* 1 (prob1 set).
  EXPECT_DOUBLE_EQ(r.values[0], 1.0);
}

TEST(GraphAnalysis, Prob0Max) {
  // 2 cannot reach 1 at all.
  Mdp m;
  m.add_choice(0, {Branch{1, 0.5}, Branch{2, 0.5}});
  m.freeze();
  auto goal = goal_at(3, {1});
  auto z = prob0_max(m, goal);
  EXPECT_FALSE(z[0]);
  EXPECT_FALSE(z[1]);
  EXPECT_TRUE(z[2]);
}

TEST(GraphAnalysis, Prob0MinFindsAvoidanceStrategy) {
  // 0 can choose to go to 2 (safe sink) instead of 1 (goal).
  Mdp m;
  m.add_choice(0, {Branch{1, 1.0}});
  m.add_choice(0, {Branch{2, 1.0}});
  m.freeze();
  auto goal = goal_at(3, {1});
  auto z = prob0_min(m, goal);
  EXPECT_TRUE(z[0]);
  EXPECT_FALSE(z[1]);
  EXPECT_TRUE(z[2]);
}

TEST(GraphAnalysis, Prob1Sets) {
  // 0 --> {1:0.3, 0:0.7} reaches 1 a.s.; with an extra escape action to 2,
  // only the max objective keeps probability 1.
  Mdp m;
  m.add_choice(0, {Branch{1, 0.3}, Branch{0, 0.7}});
  m.add_choice(0, {Branch{2, 1.0}});
  m.freeze();
  auto goal = goal_at(3, {1});
  auto p1max = prob1_max(m, goal);
  auto p1min = prob1_min(m, goal);
  EXPECT_TRUE(p1max[0]);
  EXPECT_FALSE(p1min[0]);  // the scheduler may escape to 2
  EXPECT_FALSE(p1max[2]);
}

TEST(BoundedReachability, StepHorizon) {
  // Chain 0 -> 1 -> 2 (goal). Within 1 step: 0; within 2: 1.
  Mdp m;
  m.add_choice(0, {Branch{1, 1.0}});
  m.add_choice(1, {Branch{2, 1.0}});
  m.freeze();
  auto goal = goal_at(3, {2});
  EXPECT_DOUBLE_EQ(bounded_reachability(m, goal, 1, Objective::kMax).values[0], 0.0);
  EXPECT_DOUBLE_EQ(bounded_reachability(m, goal, 2, Objective::kMax).values[0], 1.0);
  // Probabilistic: 0 --> {2:0.4, 1:0.6}, 1 --> 2.
  Mdp m2;
  m2.add_choice(0, {Branch{2, 0.4}, Branch{1, 0.6}});
  m2.add_choice(1, {Branch{2, 1.0}});
  m2.freeze();
  EXPECT_DOUBLE_EQ(bounded_reachability(m2, goal, 1, Objective::kMax).values[0], 0.4);
  EXPECT_DOUBLE_EQ(bounded_reachability(m2, goal, 2, Objective::kMax).values[0], 1.0);
}

TEST(ExpectedReward, GeometricMean) {
  // Retry loop with reward 1 per attempt: E[attempts until success] = 1/0.3.
  Mdp m;
  m.add_choice(0, {Branch{1, 0.3}, Branch{0, 0.7}}, /*reward=*/1.0);
  m.freeze();
  auto goal = goal_at(2, {1});
  auto r = expected_reward_to_goal(m, goal, Objective::kMax);
  EXPECT_NEAR(r.values[0], 1.0 / 0.3, 1e-6);
  auto rmin = expected_reward_to_goal(m, goal, Objective::kMin);
  EXPECT_NEAR(rmin.values[0], 1.0 / 0.3, 1e-6);
}

TEST(ExpectedReward, MaxPrefersExpensivePath) {
  // 0 -> goal directly (reward 1) or via 1 (reward 5 total).
  Mdp m;
  m.add_choice(0, {Branch{2, 1.0}}, 1.0);
  m.add_choice(0, {Branch{1, 1.0}}, 2.0);
  m.add_choice(1, {Branch{2, 1.0}}, 3.0);
  m.freeze();
  auto goal = goal_at(3, {2});
  EXPECT_NEAR(expected_reward_to_goal(m, goal, Objective::kMax).values[0], 5.0, 1e-9);
  EXPECT_NEAR(expected_reward_to_goal(m, goal, Objective::kMin).values[0], 1.0, 1e-9);
}

TEST(ExpectedReward, DivergentStatesAreInfinite) {
  // 0 may loop forever on itself (reward 1) instead of reaching goal:
  // Emax = infinity, Emin = 0 reward... via direct edge.
  Mdp m;
  m.add_choice(0, {Branch{0, 1.0}}, 1.0);
  m.add_choice(0, {Branch{1, 1.0}}, 1.0);
  m.freeze();
  auto goal = goal_at(2, {1});
  auto rmax = expected_reward_to_goal(m, goal, Objective::kMax);
  EXPECT_TRUE(std::isinf(rmax.values[0]));
  auto rmin = expected_reward_to_goal(m, goal, Objective::kMin);
  EXPECT_NEAR(rmin.values[0], 1.0, 1e-9);
}

TEST(IntervalIteration, CertifiesBracketsOnCoinAndLoop) {
  Mdp coin = simple_coin();
  auto goal = goal_at(3, {1});
  auto r = interval_iteration(coin, goal, Objective::kMax, 1e-9);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.lower[0], 0.5);
  EXPECT_GE(r.upper[0], 0.5);
  EXPECT_LT(r.width_at_initial(coin), 1e-9);

  Mdp loop;
  loop.add_choice(0, {Branch{1, 0.3}, Branch{0, 0.7}});
  loop.freeze();
  auto goal2 = goal_at(2, {1});
  auto r2 = interval_iteration(loop, goal2, Objective::kMin, 1e-9);
  EXPECT_TRUE(r2.converged);
  EXPECT_NEAR(r2.lower[0], 1.0, 1e-9);  // prob1 precomputation fixes it
}

TEST(IntervalIteration, BracketsAlwaysContainViResult) {
  // Random-ish chain with branching.
  Mdp m;
  m.add_choice(0, {Branch{1, 0.5}, Branch{2, 0.5}});
  m.add_choice(1, {Branch{3, 0.4}, Branch{0, 0.6}});
  m.add_choice(1, {Branch{2, 1.0}});
  m.add_choice(2, {Branch{2, 1.0}});
  m.freeze();
  auto goal = goal_at(4, {3});
  for (auto obj : {Objective::kMax, Objective::kMin}) {
    auto vi = reachability_probability(m, goal, obj);
    auto ii = interval_iteration(m, goal, obj, 1e-10);
    ASSERT_TRUE(ii.converged);
    for (int s = 0; s < 4; ++s) {
      EXPECT_LE(ii.lower[static_cast<std::size_t>(s)],
                vi.values[static_cast<std::size_t>(s)] + 1e-9);
      EXPECT_GE(ii.upper[static_cast<std::size_t>(s)],
                vi.values[static_cast<std::size_t>(s)] - 1e-9);
    }
  }
}

TEST(IntervalIteration, ReportsStallOnMaybeEndComponent) {
  // State 0 may loop on itself forever or go to goal: an end component in
  // the maybe region for the *upper* bound under kMax would stall — but
  // prob1_max already resolves this instance exactly, so it converges; a
  // genuine stall needs a maybe-EC, which we build with a 2-state cycle
  // that can also drift to a sink.
  Mdp m;
  m.add_choice(0, {Branch{1, 1.0}});   // into the cycle
  m.add_choice(1, {Branch{0, 1.0}});   // cycle back
  m.add_choice(1, {Branch{2, 0.5}, Branch{3, 0.5}});  // leave: goal or sink
  m.freeze();
  auto goal = goal_at(4, {2});
  auto ii = interval_iteration(m, goal, Objective::kMax, 1e-9, 10000);
  // Pmax = 0.5; the 0<->1 cycle is a maybe-EC, so the upper bound stalls at
  // 1 and convergence must be reported as failed (honest certification).
  EXPECT_FALSE(ii.converged);
  EXPECT_NEAR(ii.lower[0], 0.5, 1e-6) << "lower bound still correct";
  EXPECT_GE(ii.upper[0], 0.5);
}

}  // namespace
