// Tests for the analysis service (src/svc): wire protocol, strict QUANTAD_*
// env parsing, result cache, job-queue admission control, the registry
// catalogue, and end-to-end daemon behaviour over real sockets — cold
// queries matching direct library runs, cache hits being bit-identical and
// engine-free, budget-tripped jobs resuming bit-identically via their
// tokens, deterministic overload shedding, deadlock-free shutdown with
// jobs in flight, and graceful degradation under the svc.* fault sites.
//
// The crash-containment sections exercise the supervision layer end to
// end: workers killed by SIGSEGV/SIGABRT/SIGKILL/rlimit-OOM mid-job never
// take the daemon down, crashed jobs retry resuming from their checkpoint
// chain and converge bit-identically, repeat offenders are quarantined,
// and checkpoint GC expires orphans while sparing live chains.
//
// The durability sections cover the write-ahead job journal, the persistent
// result-cache segment and zero-lost-work restarts: a restarted daemon
// serves reloaded cache entries byte-identically, replays incomplete jobs
// to completion behind --ticket, restores its quarantine set, and degrades
// to in-memory-only operation under every journal/segment corruption or
// write failure — never a failed boot, never a resurrected wrong answer.
#include <dirent.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/record_log.h"
#include "common/env.h"
#include "common/fault.h"
#include "common/pred.h"
#include "mc/reachability.h"
#include "models/train_gate.h"
#include "svc/client.h"
#include "svc/config.h"
#include "svc/job_queue.h"
#include "svc/journal.h"
#include "svc/registry.h"
#include "svc/request.h"
#include "svc/result_cache.h"
#include "svc/server.h"
#include "svc/wire.h"
#include "svc/worker.h"

namespace {

using namespace quanta;
using namespace quanta::svc;

/// CI's QUANTA_FAULT arms the process-wide injector at startup; capture the
/// spec and disarm so every test below starts clean, then replay it in
/// SvcFaultMatrix.EnvSpecDegradesGracefully.
const std::string kEnvFaultSpec = [] {
  const char* s = std::getenv("QUANTA_FAULT");
  common::FaultInjector::instance().disarm();
  return std::string(s != nullptr ? s : "");
}();

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

struct DisarmGuard {
  ~DisarmGuard() { common::FaultInjector::instance().disarm(); }
};

// ---------------------------------------------------------------------------
// Strict env parsing (common::env_u64 and the QUANTAD_* defaults)
// ---------------------------------------------------------------------------

TEST(EnvU64, AcceptsWholePositiveDecimalsOnly) {
  ScopedEnv e("QUANTA_TEST_ENV", "12");
  EXPECT_EQ(common::env_u64("QUANTA_TEST_ENV", 1024), 12u);
}

TEST(EnvU64, UnsetIsAbsent) {
  ScopedEnv e("QUANTA_TEST_ENV", nullptr);
  EXPECT_FALSE(common::env_u64("QUANTA_TEST_ENV", 1024).has_value());
}

TEST(EnvU64, GarbageIsAbsent) {
  for (const char* bad : {"", "x", "4x", "4.5", "0", "-3", "0x10", "  "}) {
    ScopedEnv e("QUANTA_TEST_ENV", bad);
    EXPECT_FALSE(common::env_u64("QUANTA_TEST_ENV", 1024).has_value())
        << "value '" << bad << "' should have been rejected";
  }
}

TEST(EnvU64, ClampsToCeiling) {
  ScopedEnv e("QUANTA_TEST_ENV", "99999");
  EXPECT_EQ(common::env_u64("QUANTA_TEST_ENV", 1024), 1024u);
}

TEST(QuantadEnv, JobsDefaultAndOverride) {
  {
    ScopedEnv e("QUANTAD_JOBS", nullptr);
    EXPECT_GE(default_daemon_jobs(), 1u);
  }
  {
    ScopedEnv e("QUANTAD_JOBS", "3");
    EXPECT_EQ(default_daemon_jobs(), 3u);
  }
  {
    ScopedEnv e("QUANTAD_JOBS", "garbage");
    EXPECT_GE(default_daemon_jobs(), 1u);  // falls back to the default
  }
  {
    ScopedEnv e("QUANTAD_JOBS", "1000000");
    EXPECT_EQ(default_daemon_jobs(), 1024u);  // documented clamp
  }
}

TEST(QuantadEnv, QueueDepthDefaultAndOverride) {
  {
    ScopedEnv e("QUANTAD_QUEUE_DEPTH", nullptr);
    EXPECT_EQ(default_queue_depth(), kDefaultQueueDepth);
  }
  {
    ScopedEnv e("QUANTAD_QUEUE_DEPTH", "128");
    EXPECT_EQ(default_queue_depth(), 128u);
  }
  for (const char* bad : {"0", "-1", "12abc", "1e3"}) {
    ScopedEnv e("QUANTAD_QUEUE_DEPTH", bad);
    EXPECT_EQ(default_queue_depth(), kDefaultQueueDepth)
        << "value '" << bad << "' should fall back to the default";
  }
  {
    ScopedEnv e("QUANTAD_QUEUE_DEPTH", "99999999999");
    EXPECT_EQ(default_queue_depth(), kMaxQueueDepth);
  }
}

TEST(QuantadEnv, CacheMemDefaultAndOverride) {
  {
    ScopedEnv e("QUANTAD_CACHE_MEM", nullptr);
    EXPECT_EQ(default_cache_bytes(), kDefaultCacheBytes);
  }
  {
    ScopedEnv e("QUANTAD_CACHE_MEM", "1048576");
    EXPECT_EQ(default_cache_bytes(), 1048576u);
  }
  {
    ScopedEnv e("QUANTAD_CACHE_MEM", "64M");  // no unit suffixes: bytes only
    EXPECT_EQ(default_cache_bytes(), kDefaultCacheBytes);
  }
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(Wire, MapRoundTripPreservesOrderAndValues) {
  WireMap m;
  m.set("engine", "mc");
  m.set_u64("runs", 2000);
  m.set_i64("extra", -7);
  m.set_f64("bound", 1.5);
  m.set("note", "a \"quoted\"\\\n\tvalue");
  const std::string json = m.to_json();
  std::string error;
  const auto parsed = WireMap::parse_json(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->to_json(), json);  // canonical form is a fixed point
  EXPECT_EQ(*parsed->get("engine"), "mc");
  EXPECT_EQ(parsed->get_u64("runs"), 2000u);
  EXPECT_EQ(parsed->get_i64("extra"), -7);
  EXPECT_EQ(parsed->get_f64("bound"), 1.5);
  EXPECT_EQ(*parsed->get("note"), "a \"quoted\"\\\n\tvalue");
  EXPECT_EQ(parsed->get("absent"), nullptr);
}

TEST(Wire, ParserAcceptsBareScalarsFromHandWrittenClients) {
  std::string error;
  const auto m = WireMap::parse_json(
      R"({"engine":"smc", "runs":500, "bound":7.25, "cache":true, "x":null})",
      &error);
  ASSERT_TRUE(m.has_value()) << error;
  EXPECT_EQ(m->get_u64("runs"), 500u);
  EXPECT_EQ(m->get_f64("bound"), 7.25);
  EXPECT_EQ(*m->get("cache"), "true");
  EXPECT_EQ(*m->get("x"), "null");
}

TEST(Wire, ParserRejectsNestedStructures) {
  std::string error;
  EXPECT_FALSE(WireMap::parse_json(R"({"a":{"b":"c"}})", &error).has_value());
  EXPECT_FALSE(WireMap::parse_json(R"({"a":["b"]})", &error).has_value());
  EXPECT_FALSE(WireMap::parse_json("[]", &error).has_value());
  EXPECT_FALSE(WireMap::parse_json(R"({"a")", &error).has_value());
  EXPECT_FALSE(WireMap::parse_json("", &error).has_value());
}

TEST(Wire, StrictNumericGetters) {
  std::string error;
  const auto m = WireMap::parse_json(
      R"({"a":"12x","b":"-3","c":"","d":"18446744073709551615"})", &error);
  ASSERT_TRUE(m.has_value()) << error;
  EXPECT_FALSE(m->get_u64("a").has_value());
  EXPECT_FALSE(m->get_u64("b").has_value());
  EXPECT_FALSE(m->get_u64("c").has_value());
  EXPECT_EQ(m->get_u64("d"), 18446744073709551615ull);
}

TEST(Wire, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = R"({"engine":"mc"})";
  ASSERT_TRUE(write_frame(fds[0], payload));
  std::string got;
  EXPECT_EQ(read_frame(fds[1], &got), FrameStatus::kOk);
  EXPECT_EQ(got, payload);
  // Clean close at a frame boundary reads as EOF, not an error.
  ::close(fds[0]);
  EXPECT_EQ(read_frame(fds[1], &got), FrameStatus::kEof);
  ::close(fds[1]);
}

TEST(Wire, OversizedFrameIsAProtocolError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  unsigned char header[4] = {
      static_cast<unsigned char>(huge & 0xff),
      static_cast<unsigned char>((huge >> 8) & 0xff),
      static_cast<unsigned char>((huge >> 16) & 0xff),
      static_cast<unsigned char>((huge >> 24) & 0xff),
  };
  ASSERT_EQ(::send(fds[0], header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  std::string got;
  EXPECT_EQ(read_frame(fds[1], &got), FrameStatus::kTooLarge);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Request / response vocabulary
// ---------------------------------------------------------------------------

TEST(Request, ParsesDefaultsAndIgnoresUnknownKeys) {
  std::string error;
  const auto m = WireMap::parse_json(
      R"({"engine":"mc","model":"train-gate-4","query":"mutex","future":"1"})",
      &error);
  ASSERT_TRUE(m.has_value()) << error;
  const auto r = parse_request(*m, &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_EQ(r->engine, "mc");
  EXPECT_EQ(r->priority, Priority::kNormal);
  EXPECT_EQ(r->runs, 2000u);
  EXPECT_EQ(r->seed, 1u);
  EXPECT_TRUE(r->use_cache);
}

TEST(Request, PresentButMalformedFieldFailsWholeRequest) {
  std::string error;
  for (const char* bad :
       {R"({"model":"train-gate-4"})",                      // missing engine
        R"({"engine":"mc","deadline_ms":"soon"})",          // bad u64
        R"({"engine":"mc","priority":"urgent"})",           // bad enum
        R"({"engine":"smc","runs":"0"})",                   // runs < 1
        R"({"engine":"smc","bound":"-1"})",                 // bound <= 0
        R"({"engine":"mc","cache":"yes"})"}) {              // bad bool
    const auto m = WireMap::parse_json(bad, &error);
    ASSERT_TRUE(m.has_value()) << bad;
    EXPECT_FALSE(parse_request(*m, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(Request, ResponseSerializationIsDeterministic) {
  Response r;
  r.status = Status::kOk;
  r.verdict = common::Verdict::kHolds;
  r.stop = common::StopReason::kCompleted;
  r.stored = 10;
  r.explored = 9;
  r.transitions = 20;
  r.extra = -2;
  r.has_value = true;
  r.value = 0.1;  // not exactly representable: %.17g must round-trip it
  const std::string a = to_wire(r).to_json();
  const std::string b = to_wire(r).to_json();
  EXPECT_EQ(a, b);
  std::string error;
  const auto parsed = parse_response(*WireMap::parse_json(a, &error), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->value, 0.1);
  EXPECT_EQ(to_wire(*parsed).to_json(), a);
  // The cached flag is the single byte-level difference a cache hit makes.
  Response hit = r;
  hit.cached = true;
  EXPECT_NE(to_wire(hit).to_json(), a);
  hit.cached = false;
  EXPECT_EQ(to_wire(hit).to_json(), a);
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

Response small_response(common::Verdict v = common::Verdict::kHolds) {
  Response r;
  r.status = Status::kOk;
  r.verdict = v;
  r.stop = common::StopReason::kCompleted;
  return r;
}

std::size_t entry_bytes(const std::string& key, const Response& r) {
  return key.size() + response_bytes(r) + ResultCache::kEntryOverhead;
}

TEST(ResultCacheTest, HitMissAndLruEvictionUnderByteBudget) {
  const Response r = small_response();
  const std::size_t per_entry = entry_bytes("key-a", r);
  ResultCache cache(2 * per_entry);  // room for exactly two entries
  cache.insert(1, "key-a", r);
  cache.insert(2, "key-b", r);
  Response out;
  EXPECT_TRUE(cache.lookup(1, "key-a", &out));  // touches a: b is now LRU
  cache.insert(3, "key-c", r);                  // evicts b
  EXPECT_TRUE(cache.lookup(1, "key-a", &out));
  EXPECT_FALSE(cache.lookup(2, "key-b", &out));
  EXPECT_TRUE(cache.lookup(3, "key-c", &out));
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_LE(s.bytes, s.budget);
}

TEST(ResultCacheTest, FingerprintCollisionCannotServeWrongResult) {
  ResultCache cache(1 << 20);
  // Two structurally different queries that happen to share a fingerprint:
  // both live in the same bucket, each answers only its own key.
  cache.insert(42, "q1|mc|train-gate-4|mutex",
               small_response(common::Verdict::kHolds));
  cache.insert(42, "q1|mc|train-gate-5|mutex",
               small_response(common::Verdict::kViolated));
  Response out;
  ASSERT_TRUE(cache.lookup(42, "q1|mc|train-gate-4|mutex", &out));
  EXPECT_EQ(out.verdict, common::Verdict::kHolds);
  ASSERT_TRUE(cache.lookup(42, "q1|mc|train-gate-5|mutex", &out));
  EXPECT_EQ(out.verdict, common::Verdict::kViolated);
  EXPECT_FALSE(cache.lookup(42, "q1|mc|train-gate-6|mutex", &out));
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCacheTest, RefreshInPlaceKeepsOneEntry) {
  ResultCache cache(1 << 20);
  cache.insert(7, "key", small_response(common::Verdict::kHolds));
  cache.insert(7, "key", small_response(common::Verdict::kViolated));
  Response out;
  ASSERT_TRUE(cache.lookup(7, "key", &out));
  EXPECT_EQ(out.verdict, common::Verdict::kViolated);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheTest, EntryLargerThanBudgetIsNotCached) {
  Response r = small_response();
  r.error.assign(4096, 'x');
  ResultCache cache(64);
  cache.insert(1, "key", r);
  Response out;
  EXPECT_FALSE(cache.lookup(1, "key", &out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Job queue admission control
// ---------------------------------------------------------------------------

/// A manually released gate that jobs block on, making queue occupancy (and
/// therefore every admission decision below) fully deterministic.
class Gate {
 public:
  void release() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

JobQueue::Job gated_job(Gate* gate, std::atomic<int>* started = nullptr,
                        common::CancelToken* cancel = nullptr,
                        std::size_t charge = 0) {
  JobQueue::Job job;
  job.cancel = cancel;
  job.mem_charge = charge;
  job.run = [gate, started] {
    if (started != nullptr) started->fetch_add(1);
    gate->wait();
  };
  return job;
}

void wait_until(const std::function<bool()>& cond) {
  for (int i = 0; i < 5000 && !cond(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(cond()) << "condition not reached within 5s";
}

TEST(JobQueueTest, DeterministicQueueFullRejection) {
  Gate gate;
  std::atomic<int> started{0};
  JobQueue q({/*workers=*/1, /*depth=*/2, /*inflight_bytes=*/1 << 20});
  ASSERT_EQ(q.submit(Priority::kNormal, gated_job(&gate, &started)),
            Admission::kAdmitted);
  wait_until([&] { return started.load() == 1; });  // worker busy, queue empty
  ASSERT_EQ(q.submit(Priority::kNormal, gated_job(&gate)),
            Admission::kAdmitted);
  ASSERT_EQ(q.submit(Priority::kNormal, gated_job(&gate)),
            Admission::kAdmitted);
  // Depth 2 reached: the next submission is shed, deterministically, no
  // matter how the admitted jobs interleave (they are all blocked).
  EXPECT_EQ(q.submit(Priority::kNormal, gated_job(&gate)),
            Admission::kQueueFull);
  EXPECT_EQ(q.stats().rejected_queue, 1u);
  gate.release();
}

TEST(JobQueueTest, DeterministicMemoryOverloadRejection) {
  Gate gate;
  std::atomic<int> started{0};
  JobQueue q({/*workers=*/1, /*depth=*/64, /*inflight_bytes=*/1000});
  ASSERT_EQ(q.submit(Priority::kNormal,
                     gated_job(&gate, &started, nullptr, /*charge=*/600)),
            Admission::kAdmitted);
  EXPECT_EQ(q.submit(Priority::kNormal,
                     gated_job(&gate, nullptr, nullptr, /*charge=*/600)),
            Admission::kMemoryOverload);
  EXPECT_EQ(q.submit(Priority::kNormal,
                     gated_job(&gate, nullptr, nullptr, /*charge=*/300)),
            Admission::kAdmitted);
  EXPECT_EQ(q.stats().rejected_memory, 1u);
  gate.release();
}

TEST(JobQueueTest, PriorityLanesDrainHighestFirst) {
  Gate gate;
  std::atomic<int> started{0};
  std::vector<int> order;
  std::mutex order_mu;
  JobQueue q({/*workers=*/1, /*depth=*/8, /*inflight_bytes=*/1 << 20});
  ASSERT_EQ(q.submit(Priority::kNormal, gated_job(&gate, &started)),
            Admission::kAdmitted);
  wait_until([&] { return started.load() == 1; });
  auto record = [&](int tag) {
    JobQueue::Job job;
    job.run = [&order, &order_mu, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
    return job;
  };
  // Submitted low → normal → high while the single worker is blocked...
  ASSERT_EQ(q.submit(Priority::kLow, record(3)), Admission::kAdmitted);
  ASSERT_EQ(q.submit(Priority::kNormal, record(2)), Admission::kAdmitted);
  ASSERT_EQ(q.submit(Priority::kHigh, record(1)), Admission::kAdmitted);
  gate.release();
  wait_until([&] {
    std::lock_guard<std::mutex> lock(order_mu);
    return order.size() == 3;
  });
  // ...but drained high → normal → low.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(JobQueueTest, ShutdownCancelsRunningAndQueuedAndCannotDeadlock) {
  common::CancelToken running_token, queued_token;
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  JobQueue q({/*workers=*/1, /*depth=*/8, /*inflight_bytes=*/1 << 20});
  JobQueue::Job running;
  running.cancel = &running_token;
  running.run = [&] {
    started.fetch_add(1);
    // A governed engine polls its budget; emulate that poll loop.
    while (!running_token.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    finished.fetch_add(1);
  };
  ASSERT_EQ(q.submit(Priority::kNormal, std::move(running)),
            Admission::kAdmitted);
  wait_until([&] { return started.load() == 1; });
  JobQueue::Job queued;
  queued.cancel = &queued_token;
  queued.run = [&] { finished.fetch_add(1); };
  ASSERT_EQ(q.submit(Priority::kNormal, std::move(queued)),
            Admission::kAdmitted);
  q.shutdown();  // blocks until drained: returning proves no deadlock
  EXPECT_TRUE(running_token.cancelled());
  EXPECT_TRUE(queued_token.cancelled());
  EXPECT_EQ(finished.load(), 2);  // every admitted job ran exactly once
  EXPECT_EQ(q.submit(Priority::kNormal, JobQueue::Job{[] {}, nullptr, 0}),
            Admission::kShutdown);
}

// ---------------------------------------------------------------------------
// Registry catalogue
// ---------------------------------------------------------------------------

Request analysis_request(const char* engine, const char* model,
                         const char* query) {
  Request r;
  r.engine = engine;
  r.model = model;
  r.query = query;
  return r;
}

TEST(Registry, ValidatesEngineModelAndQueryNames) {
  std::string error;
  EXPECT_TRUE(prepare_job(analysis_request("mc", "train-gate-4", "mutex"),
                          &error));
  EXPECT_TRUE(prepare_job(
      analysis_request("game", "train-game-2", "reach-cross"), &error));
  EXPECT_TRUE(prepare_job(
      analysis_request("cora", "train-gate-3", "mincost-cross"), &error));
  // Every way a name can be wrong is a bad request, not a crash.
  EXPECT_FALSE(prepare_job(analysis_request("ltl", "train-gate-4", "mutex"),
                           &error));
  EXPECT_FALSE(prepare_job(analysis_request("mc", "train-gate-99", "mutex"),
                           &error));
  EXPECT_FALSE(prepare_job(analysis_request("mc", "train-gate-1", "mutex"),
                           &error));
  EXPECT_FALSE(prepare_job(analysis_request("mc", "train-game-2", "mutex"),
                           &error));
  EXPECT_FALSE(prepare_job(analysis_request("mc", "pancake", "mutex"),
                           &error));
  EXPECT_FALSE(prepare_job(analysis_request("game", "train-gate-4",
                                            "reach-cross"), &error));
  EXPECT_FALSE(prepare_job(analysis_request("smc", "train-gate-4", "mutex"),
                           &error));
}

TEST(Registry, CacheKeyCoversStatisticalParameters) {
  std::string error;
  Request a = analysis_request("smc", "train-gate-3", "pr-cross");
  Request b = a;
  b.seed = 99;
  const auto ja = prepare_job(a, &error);
  const auto jb = prepare_job(b, &error);
  ASSERT_TRUE(ja && jb);
  EXPECT_NE(ja->cache_key, jb->cache_key);
  EXPECT_NE(ja->fingerprint, jb->fingerprint);
  // Budgets and debug pacing are not inputs to the result: same key.
  Request c = a;
  c.deadline_ms = 5;
  c.hold_ms = 100;
  const auto jc = prepare_job(c, &error);
  ASSERT_TRUE(jc);
  EXPECT_EQ(ja->cache_key, jc->cache_key);
}

// ---------------------------------------------------------------------------
// End-to-end daemon behaviour over real sockets
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/qsvc-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    server_.reset();  // stops the daemon and unlinks its socket
    // Best-effort cleanup of checkpoint and durable-state files.
    std::remove((dir_ + "/ckpt").c_str());
    ::rmdir((dir_ + "/ckpt").c_str());
    std::remove((dir_ + "/state/journal.qjrnl").c_str());
    std::remove((dir_ + "/state/cache.qcseg").c_str());
    ::rmdir((dir_ + "/state").c_str());
    ::rmdir(dir_.c_str());
  }

  void start(ServerConfig cfg = {}) {
    cfg.socket_path = dir_ + "/d.sock";
    if (cfg.ckpt_dir.empty()) cfg.ckpt_dir = dir_ + "/ckpt";
    server_ = std::make_unique<Server>(cfg);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  Client connect() {
    Client c;
    std::string error;
    EXPECT_TRUE(c.connect_unix(dir_ + "/d.sock", &error)) << error;
    return c;
  }

  Response query(Client& c, const Request& r) {
    Response out;
    std::string error;
    EXPECT_TRUE(c.analyze(r, &out, &error)) << error;
    return out;
  }

  std::string dir_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingOverUnixAndTcp) {
  ServerConfig cfg;
  cfg.tcp_port = 0;  // ephemeral
  start(cfg);
  ASSERT_GT(server_->tcp_port(), 0);
  Request ping;
  ping.engine = "svc";
  ping.query = "ping";
  Client unix_client = connect();
  WireMap reply;
  std::string error;
  ASSERT_TRUE(unix_client.call(to_wire(ping), &reply, &error)) << error;
  EXPECT_EQ(*reply.get("status"), "ok");
  Client tcp_client;
  ASSERT_TRUE(tcp_client.connect_tcp("127.0.0.1", server_->tcp_port(), &error))
      << error;
  ASSERT_TRUE(tcp_client.call(to_wire(ping), &reply, &error)) << error;
  EXPECT_EQ(*reply.get("status"), "ok");
}

TEST_F(ServerTest, ColdQueryMatchesDirectLibraryRun) {
  start();
  Client c = connect();
  const Response resp =
      query(c, analysis_request("mc", "train-gate-3", "mutex"));
  ASSERT_EQ(resp.status, Status::kOk);
  EXPECT_FALSE(resp.cached);

  // The same analysis through the library directly (the predicate is the
  // registry's, label included, so fingerprints would also agree).
  auto tg = models::make_train_gate(3);
  std::vector<int> cross_loc;
  for (int i = 0; i < tg.num_trains; ++i) {
    cross_loc.push_back(
        tg.system.process(tg.trains[static_cast<std::size_t>(i)])
            .location_index("Cross"));
  }
  auto trains = tg.trains;
  auto mutex = common::labeled_pred<ta::SymState>(
      "train-gate-mutex", [trains, cross_loc](const ta::SymState& s) {
        int crossing = 0;
        for (std::size_t i = 0; i < trains.size(); ++i) {
          if (s.locs[static_cast<std::size_t>(trains[i])] == cross_loc[i]) {
            ++crossing;
          }
        }
        return crossing <= 1;
      });
  mc::ReachOptions opts;
  opts.record_trace = false;
  const auto direct = mc::check_invariant(tg.system, mutex, opts);

  EXPECT_EQ(resp.verdict, direct.verdict);
  EXPECT_EQ(resp.stop, direct.stats.stop);
  EXPECT_EQ(resp.stored, direct.stats.states_stored);
  EXPECT_EQ(resp.explored, direct.stats.states_explored);
  EXPECT_EQ(resp.transitions, direct.stats.transitions);
}

TEST_F(ServerTest, CacheHitIsBitIdenticalAndSkipsTheEngine) {
  start();
  Client c = connect();
  const struct {
    const char* engine;
    const char* model;
    const char* query;
  } cases[] = {
      {"mc", "train-gate-3", "mutex"},
      {"smc", "train-gate-2", "pr-cross"},
      {"game", "train-game-1", "reach-cross"},
  };
  std::uint64_t executed = 0;
  for (const auto& tc : cases) {
    Request r = analysis_request(tc.engine, tc.model, tc.query);
    r.runs = 200;  // keep the smc case quick
    const Response cold = query(c, r);
    ASSERT_EQ(cold.status, Status::kOk) << tc.engine << ": " << cold.error;
    EXPECT_FALSE(cold.cached);
    ++executed;
    EXPECT_EQ(server_->stats().jobs_executed, executed);

    const Response hit = query(c, r);
    ASSERT_EQ(hit.status, Status::kOk);
    EXPECT_TRUE(hit.cached);
    // Engine not invoked: the executed counter did not move.
    EXPECT_EQ(server_->stats().jobs_executed, executed);
    // Byte-identical modulo the cached flag.
    Response normalized = hit;
    normalized.cached = false;
    EXPECT_EQ(to_wire(normalized).to_json(), to_wire(cold).to_json())
        << tc.engine << " cache hit altered the response";
  }
  const auto cache = server_->stats().cache;
  EXPECT_EQ(cache.hits, 3u);
  EXPECT_EQ(cache.misses, 3u);
  EXPECT_EQ(cache.entries, 3u);
}

TEST_F(ServerTest, CacheBypassRunsTheEngineAgain) {
  start();
  Client c = connect();
  Request r = analysis_request("mc", "train-gate-2", "mutex");
  r.use_cache = false;
  const Response first = query(c, r);
  ASSERT_EQ(first.status, Status::kOk);
  const Response second = query(c, r);
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_FALSE(second.cached);
  EXPECT_EQ(server_->stats().jobs_executed, 2u);
  EXPECT_EQ(server_->stats().cache.entries, 0u);
}

TEST_F(ServerTest, BudgetTrippedJobResumesBitIdentically) {
  ServerConfig cfg;
  cfg.enable_debug = true;  // the throttle needs a --debug daemon
  start(cfg);
  Client c = connect();

  Request r = analysis_request("mc", "train-gate-4", "mutex");
  r.use_cache = false;
  const Response reference = query(c, r);
  ASSERT_EQ(reference.status, Status::kOk);
  ASSERT_EQ(reference.stop, common::StopReason::kCompleted);

  // Same query, throttled to ~200us/state under a 300ms deadline with a
  // 200-state checkpoint cadence: guaranteed to trip with a snapshot saved.
  Request tripped = r;
  tripped.deadline_ms = 300;
  tripped.throttle_us = 200;
  tripped.ckpt_interval = 200;
  const Response partial = query(c, tripped);
  ASSERT_EQ(partial.status, Status::kOk);
  ASSERT_EQ(partial.verdict, common::Verdict::kUnknown);
  EXPECT_EQ(partial.stop, common::StopReason::kTimeLimit);
  ASSERT_FALSE(partial.resume.empty()) << "no resume token on a tripped job";
  EXPECT_LT(partial.explored, reference.explored);

  // Resuming with the token completes and is bit-identical to the
  // uninterrupted reference run.
  Request resume = r;
  resume.resume = partial.resume;
  const Response resumed = query(c, resume);
  ASSERT_EQ(resumed.status, Status::kOk);
  EXPECT_EQ(to_wire(resumed).to_json(), to_wire(reference).to_json());

  // A token that does not match the resubmitted query is rejected.
  Request mismatched = analysis_request("mc", "train-gate-3", "mutex");
  mismatched.use_cache = false;
  mismatched.resume = partial.resume;
  const Response rejected = query(c, mismatched);
  EXPECT_EQ(rejected.status, Status::kBadRequest);
}

TEST_F(ServerTest, DebugPacingRejectedOnProductionDaemons) {
  start();  // enable_debug defaults to false
  Client c = connect();
  Request r = analysis_request("mc", "train-gate-2", "mutex");
  r.hold_ms = 50;
  EXPECT_EQ(query(c, r).status, Status::kBadRequest);
}

TEST_F(ServerTest, OverloadRejectionIsDeterministic) {
  ServerConfig cfg;
  cfg.jobs = 1;
  cfg.queue_depth = 1;
  cfg.enable_debug = true;
  start(cfg);

  Request hold = analysis_request("mc", "train-gate-2", "mutex");
  hold.use_cache = false;
  hold.hold_ms = 60000;  // parked until shutdown cancels it

  // Occupy the single worker, then the single queue slot; each step waits
  // on daemon stats so the third request's rejection is deterministic.
  Client c1 = connect(), c2 = connect(), c3 = connect();
  std::thread t1([&] { query(c1, hold); });
  wait_until([&] { return server_->stats().queue.running == 1; });

  // With the worker busy but the queue empty, a request whose memory budget
  // alone exceeds the in-flight ceiling is shed as memory overload.
  Request huge = analysis_request("mc", "train-gate-2", "mutex");
  huge.memory_mb = 1 << 20;  // 1 TiB against the 4 GiB default ceiling
  Client c4 = connect();
  const Response shed_mem = query(c4, huge);
  EXPECT_EQ(shed_mem.status, Status::kOverload);
  EXPECT_EQ(shed_mem.error, "memory-overload");

  std::thread t2([&] { query(c2, hold); });
  wait_until([&] { return server_->stats().queue.queued == 1; });

  const Response shed = query(c3, analysis_request("mc", "train-gate-2",
                                                   "mutex"));
  EXPECT_EQ(shed.status, Status::kOverload);
  EXPECT_EQ(shed.error, "queue-full");
  EXPECT_EQ(server_->stats().overloads, 2u);

  // Shutdown with one running and one queued job: both sessions receive
  // responses (their jobs are cancelled) — joining proves no deadlock.
  server_->stop();
  t1.join();
  t2.join();
}

TEST_F(ServerTest, ShutdownWithJobsInFlightDeliversResponses) {
  ServerConfig cfg;
  cfg.jobs = 1;
  cfg.enable_debug = true;
  start(cfg);
  Client c = connect();
  Request hold = analysis_request("mc", "train-gate-2", "mutex");
  hold.use_cache = false;
  hold.hold_ms = 60000;
  Response resp;
  std::string error;
  bool transported = false;
  std::thread t([&] { transported = c.analyze(hold, &resp, &error); });
  wait_until([&] { return server_->stats().queue.running == 1; });
  server_->stop();
  t.join();
  ASSERT_TRUE(transported) << error;
  // The cancelled job degrades to kUnknown/kCancelled — a response, not a
  // hang or a dropped connection.
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.verdict, common::Verdict::kUnknown);
  EXPECT_EQ(resp.stop, common::StopReason::kCancelled);
}

TEST_F(ServerTest, ConcurrentSessionsStayConsistent) {
  ServerConfig cfg;
  cfg.jobs = 4;
  start(cfg);
  constexpr int kThreads = 4;
  constexpr int kQueriesEach = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client c = connect();
      for (int i = 0; i < kQueriesEach; ++i) {
        // Overlapping key sets across threads: cache hits and misses race.
        Request r = analysis_request("mc",
                                     (t + i) % 2 == 0 ? "train-gate-2"
                                                      : "train-gate-3",
                                     "mutex");
        Response resp;
        std::string error;
        if (!c.analyze(r, &resp, &error) || resp.status != Status::kOk ||
            resp.verdict != common::Verdict::kHolds) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto s = server_->stats();
  EXPECT_EQ(s.requests, kThreads * kQueriesEach);
  EXPECT_EQ(s.cache.hits + s.cache.misses, kThreads * kQueriesEach);
  // Both distinct queries were computed at least once, and every request
  // that missed the cache ran an engine.
  EXPECT_GE(s.jobs_executed, 2u);
  EXPECT_EQ(s.jobs_executed, s.cache.misses);
}

// ---------------------------------------------------------------------------
// Fault-site coverage (svc.accept, svc.job.run)
// ---------------------------------------------------------------------------

TEST_F(ServerTest, AcceptFaultDropsOneConnectionNotTheDaemon) {
  DisarmGuard guard;
  common::FaultInjector::instance().arm("svc.accept",
                                        common::FaultKind::kException, 1);
  start();
  // The faulted connection is accepted then dropped; the client sees EOF on
  // its first call. The daemon itself keeps serving.
  Client doomed = connect();
  Request ping;
  ping.engine = "svc";
  ping.query = "ping";
  WireMap reply;
  std::string error;
  EXPECT_FALSE(doomed.call(to_wire(ping), &reply, &error));
  EXPECT_TRUE(common::FaultInjector::instance().fired());
  Client healthy = connect();
  ASSERT_TRUE(healthy.call(to_wire(ping), &reply, &error)) << error;
  EXPECT_EQ(*reply.get("status"), "ok");
  EXPECT_EQ(server_->stats().accept_faults, 1u);
}

TEST_F(ServerTest, JobRunFaultDegradesToUnknownNotACrash) {
  DisarmGuard guard;
  common::FaultInjector::instance().arm("svc.job.run",
                                        common::FaultKind::kException, 1);
  start();
  Client c = connect();
  Request r = analysis_request("mc", "train-gate-2", "mutex");
  r.use_cache = false;
  const Response faulted = query(c, r);
  EXPECT_EQ(faulted.status, Status::kOk);
  EXPECT_EQ(faulted.verdict, common::Verdict::kUnknown);
  EXPECT_EQ(faulted.stop, common::StopReason::kFault);
  EXPECT_TRUE(common::FaultInjector::instance().fired());
  // Faults fire once; the daemon answers the retry normally, and the
  // faulted kUnknown result was never cached.
  const Response retry = query(c, r);
  EXPECT_EQ(retry.status, Status::kOk);
  EXPECT_EQ(retry.verdict, common::Verdict::kHolds);
}

/// CI fault-matrix entry point: replays whatever QUANTA_FAULT the process
/// was started with against a live daemon (mirrors test_robustness's
/// EnvSpecDegradesGracefully for the svc.* sites).
TEST_F(ServerTest, SvcFaultMatrixEnvSpecDegradesGracefully) {
  if (kEnvFaultSpec.empty()) {
    GTEST_SKIP() << "QUANTA_FAULT not set; CI fault matrix exercises this";
  }
  if (kEnvFaultSpec.compare(0, 4, "svc.") != 0) {
    GTEST_SKIP() << "spec targets a non-svc site: " << kEnvFaultSpec;
  }
  if (kEnvFaultSpec.compare(0, 11, "svc.worker.") == 0) {
    // Worker sites only exist inside sandboxed worker processes — and a
    // crash spec armed in-process would take down the test binary. Ship
    // the spec to an isolated daemon via the request's fault field and
    // assert containment instead of a graceful degrade.
    ServerConfig cfg;
    cfg.isolate = true;
    cfg.enable_debug = true;
    cfg.retries = 1;
    start(cfg);
    Client c = connect();
    Request r = analysis_request("mc", "train-gate-2", "mutex");
    r.use_cache = false;
    r.fault = kEnvFaultSpec;
    const Response resp = query(c, r);
    EXPECT_EQ(resp.status, Status::kOk) << resp.error;
    // Whatever the spec did to the worker, the daemon must still serve.
    const Response healthy =
        query(c, analysis_request("mc", "train-gate-3", "mutex"));
    EXPECT_EQ(healthy.status, Status::kOk);
    EXPECT_EQ(healthy.verdict, common::Verdict::kHolds);
    return;
  }
  DisarmGuard guard;
  ASSERT_TRUE(
      common::FaultInjector::instance().arm_from_spec(kEnvFaultSpec))
      << "malformed QUANTA_FAULT spec: " << kEnvFaultSpec;
  if (kEnvFaultSpec.compare(0, 12, "svc.journal.") == 0 ||
      kEnvFaultSpec.compare(0, 10, "svc.cache.") == 0) {
    // Durability sites only exist on a daemon with a state dir. Wherever
    // the write fault lands (journal compaction/append, cache segment
    // write), the answer path must be untouched: the daemon degrades to
    // in-memory-only operation and keeps serving.
    ServerConfig cfg;
    cfg.state_dir = dir_ + "/state";
    start(cfg);
    Client c = connect();
    Request r = analysis_request("mc", "train-gate-2", "mutex");
    const Response resp = query(c, r);
    EXPECT_EQ(resp.status, Status::kOk) << resp.error;
    EXPECT_EQ(resp.verdict, common::Verdict::kHolds);
    EXPECT_TRUE(common::FaultInjector::instance().fired())
        << "spec " << kEnvFaultSpec << " never fired; site unreachable?";
    return;
  }
  start();
  // Drive enough connections and jobs to hit whichever svc site the spec
  // armed. Wherever the fault lands the daemon must keep serving: a dropped
  // connection is retried, a faulted job degrades to kUnknown.
  bool answered = false;
  for (int attempt = 0; attempt < 5 && !answered; ++attempt) {
    Client c;
    std::string error;
    if (!c.connect_unix(dir_ + "/d.sock", &error)) continue;
    Request r = analysis_request("mc", "train-gate-2", "mutex");
    r.use_cache = false;
    Response resp;
    if (!c.analyze(r, &resp, &error)) continue;
    EXPECT_EQ(resp.status, Status::kOk);
    if (resp.verdict != common::Verdict::kUnknown) {
      EXPECT_EQ(resp.stop, common::StopReason::kCompleted);
    }
    answered = true;
  }
  EXPECT_TRUE(answered) << "daemon never recovered under " << kEnvFaultSpec;
  EXPECT_TRUE(common::FaultInjector::instance().fired())
      << "spec " << kEnvFaultSpec << " never fired; site unreachable?";
}

// ---------------------------------------------------------------------------
// Truncated frames (svc::wire kTruncated) and client-side classification
// ---------------------------------------------------------------------------

TEST(Wire, TruncatedFrameIsDistinctFromCleanEof) {
  // Clean EOF: peer closes before any bytes.
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  ::close(sp[1]);
  std::string payload;
  EXPECT_EQ(read_frame(sp[0], &payload), FrameStatus::kEof);
  ::close(sp[0]);

  // Death mid-header: two of four length bytes, then EOF.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  const unsigned char partial_hdr[2] = {0x10, 0x00};
  ASSERT_EQ(::send(sp[1], partial_hdr, 2, 0), 2);
  ::close(sp[1]);
  EXPECT_EQ(read_frame(sp[0], &payload), FrameStatus::kTruncated);
  ::close(sp[0]);

  // Death mid-payload: header claims 100 bytes, 10 arrive, then EOF.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  const unsigned char hdr[4] = {100, 0, 0, 0};
  ASSERT_EQ(::send(sp[1], hdr, 4, 0), 4);
  ASSERT_EQ(::send(sp[1], "0123456789", 10, 0), 10);
  ::close(sp[1]);
  EXPECT_EQ(read_frame(sp[0], &payload), FrameStatus::kTruncated);
  ::close(sp[0]);
}

namespace truncated_listener {

/// A fake daemon for client-classification tests: accepts one connection,
/// swallows the request frame, then answers according to `mode` and closes.
enum class Mode { kCloseImmediately, kTruncateReply };

void serve_one(int listen_fd, Mode mode) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return;
  std::string request;
  (void)read_frame(fd, &request);  // drain the request; close = daemon died
  if (mode == Mode::kTruncateReply) {
    const unsigned char hdr[4] = {100, 0, 0, 0};
    (void)::send(fd, hdr, 4, 0);
    (void)::send(fd, "0123456789", 10, 0);
  }
  ::close(fd);
}

int make_listener(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 1) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace truncated_listener

TEST(ClientTransport, TruncatedReplyIsClassifiedDistinctly) {
  char tmpl[] = "/tmp/qsvc-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string path = dir + "/fake.sock";
  const int lfd = truncated_listener::make_listener(path);
  ASSERT_GE(lfd, 0);

  {
    std::thread t([&] {
      truncated_listener::serve_one(lfd,
                                    truncated_listener::Mode::kTruncateReply);
    });
    Client c;
    std::string error;
    ASSERT_TRUE(c.connect_unix(path, &error)) << error;
    WireMap reply;
    Request ping;
    ping.engine = "svc";
    ping.query = "ping";
    EXPECT_FALSE(c.call(to_wire(ping), &reply, &error));
    EXPECT_EQ(c.last_transport_error(), TransportError::kTruncated);
    EXPECT_NE(error.find("truncated response"), std::string::npos) << error;
    t.join();
  }
  {
    std::thread t([&] {
      truncated_listener::serve_one(
          lfd, truncated_listener::Mode::kCloseImmediately);
    });
    Client c;
    std::string error;
    ASSERT_TRUE(c.connect_unix(path, &error)) << error;
    WireMap reply;
    Request ping;
    ping.engine = "svc";
    ping.query = "ping";
    EXPECT_FALSE(c.call(to_wire(ping), &reply, &error));
    // A clean close is a different failure: absence, not corruption.
    EXPECT_EQ(c.last_transport_error(), TransportError::kClosed);
    t.join();
  }
  ::close(lfd);
  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

TEST(ClientRetry, RidesOutADaemonThatStartsLate) {
  char tmpl[] = "/tmp/qsvc-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  ServerConfig cfg;
  cfg.socket_path = dir + "/d.sock";
  std::unique_ptr<Server> server;
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    server = std::make_unique<Server>(cfg);
    std::string error;
    ASSERT_TRUE(server->start(&error)) << error;
  });

  Endpoint ep;
  ep.socket_path = cfg.socket_path;
  RetryPolicy policy;
  policy.retries = 10;
  policy.timeout_ms = 2000;
  policy.backoff_base_ms = 50;
  policy.backoff_max_ms = 200;
  Response resp;
  std::string error;
  TransportError te = TransportError::kNone;
  const bool ok = analyze_with_retry(
      ep, policy, analysis_request("mc", "train-gate-2", "mutex"), &resp,
      &error, &te);
  starter.join();
  ASSERT_TRUE(ok) << error << " (transport: " << transport_error_name(te)
                  << ")";
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.verdict, common::Verdict::kHolds);
  server.reset();
  std::remove(cfg.socket_path.c_str());
  ::rmdir(dir.c_str());
}

// ---------------------------------------------------------------------------
// QUANTAD_ISOLATE / QUANTAD_RETRIES / QUANTAD_CKPT_TTL env knobs
// ---------------------------------------------------------------------------

TEST(QuantadEnv, IsolateDefaultsOnAndOnlyZeroTurnsItOff) {
  {
    ScopedEnv e("QUANTAD_ISOLATE", nullptr);
    EXPECT_TRUE(default_isolate());
  }
  {
    ScopedEnv e("QUANTAD_ISOLATE", "0");
    EXPECT_FALSE(default_isolate());
  }
  {
    // A garbled value keeps the safe default: isolation on.
    ScopedEnv e("QUANTAD_ISOLATE", "off");
    EXPECT_TRUE(default_isolate());
  }
}

TEST(QuantadEnv, RetriesDefaultAndOverride) {
  {
    ScopedEnv e("QUANTAD_RETRIES", nullptr);
    EXPECT_EQ(default_retries(), kDefaultRetries);
  }
  {
    ScopedEnv e("QUANTAD_RETRIES", "7");
    EXPECT_EQ(default_retries(), 7u);
  }
  {
    ScopedEnv e("QUANTAD_RETRIES", "garbage");
    EXPECT_EQ(default_retries(), kDefaultRetries);
  }
}

TEST(QuantadEnv, CkptTtlDefaultAndOverride) {
  {
    ScopedEnv e("QUANTAD_CKPT_TTL", nullptr);
    EXPECT_EQ(default_ckpt_ttl_s(), kDefaultCkptTtlS);
  }
  {
    ScopedEnv e("QUANTAD_CKPT_TTL", "3600");
    EXPECT_EQ(default_ckpt_ttl_s(), 3600u);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint GC: TTL expiry of orphans, survival of live chains
// ---------------------------------------------------------------------------

namespace {

void touch_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  std::fputs("x", f);
  std::fclose(f);
}

/// Backdates a file's mtime by `seconds` so GC sees it as old.
void age_file(const std::string& path, long seconds) {
  timespec times[2];
  ASSERT_EQ(::clock_gettime(CLOCK_REALTIME, &times[0]), 0);
  times[0].tv_sec -= seconds;
  times[1] = times[0];
  ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0) << path;
}

int count_job_files(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return -1;
  int n = 0;
  while (dirent* e = ::readdir(d)) {
    if (std::strncmp(e->d_name, "job-", 4) == 0) ++n;
  }
  ::closedir(d);
  return n;
}

}  // namespace

TEST(CheckpointGc, ExpiresOrphanChainsAndSparesLiveOnes) {
  char tmpl[] = "/tmp/qgc-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  // An orphan chain, wholly old: base + delta + torn temp file.
  for (const char* name : {"job-mc-aaaa.qckpt", "job-mc-aaaa.qckpt.d1",
                           "job-mc-aaaa.qckpt.tmp"}) {
    touch_file(dir + "/" + name);
    age_file(dir + "/" + name, 1000);
  }
  // A live chain: the base is old but its newest delta is fresh — an
  // actively resumed job must not lose its history out from under it.
  touch_file(dir + "/job-mc-bbbb.qckpt");
  age_file(dir + "/job-mc-bbbb.qckpt", 1000);
  touch_file(dir + "/job-mc-bbbb.qckpt.d1");
  // A fresh chain and an unrelated file.
  touch_file(dir + "/job-smc-cccc.qckpt");
  touch_file(dir + "/unrelated.txt");

  EXPECT_EQ(gc_checkpoints(dir, 500), 3u);
  EXPECT_EQ(count_job_files(dir), 3);  // bbbb base+delta, cccc base
  // Idempotent: nothing left to expire.
  EXPECT_EQ(gc_checkpoints(dir, 500), 0u);

  for (const char* name :
       {"job-mc-bbbb.qckpt", "job-mc-bbbb.qckpt.d1", "job-smc-cccc.qckpt",
        "unrelated.txt"}) {
    std::remove((dir + "/" + name).c_str());
  }
  ::rmdir(dir.c_str());
}

TEST_F(ServerTest, StartupSweepExpiresOrphansAndCompletionRemovesChain) {
  // Plant an expired orphan before the daemon starts.
  const std::string ckpt_dir = dir_ + "/ckpt";
  ASSERT_EQ(::mkdir(ckpt_dir.c_str(), 0700), 0);
  touch_file(ckpt_dir + "/job-mc-dead.qckpt");
  age_file(ckpt_dir + "/job-mc-dead.qckpt", 1000);

  ServerConfig cfg;
  cfg.enable_debug = true;
  cfg.ckpt_ttl_s = 500;
  start(cfg);
  EXPECT_EQ(count_job_files(ckpt_dir), 0) << "startup sweep missed an orphan";
  EXPECT_EQ(server_->stats().ckpt_gc_removed, 1u);

  // Trip a job so it saves a chain, then resume it to completion: the
  // claimed chain is removed as soon as the job finishes.
  Client c = connect();
  Request r = analysis_request("mc", "train-gate-4", "mutex");
  r.use_cache = false;
  r.deadline_ms = 300;
  r.throttle_us = 200;
  r.ckpt_interval = 200;
  const Response partial = query(c, r);
  ASSERT_EQ(partial.status, Status::kOk);
  ASSERT_FALSE(partial.resume.empty());
  EXPECT_GT(count_job_files(ckpt_dir), 0);

  Request resume = analysis_request("mc", "train-gate-4", "mutex");
  resume.use_cache = false;
  resume.resume = partial.resume;
  const Response resumed = query(c, resume);
  ASSERT_EQ(resumed.status, Status::kOk);
  ASSERT_EQ(resumed.stop, common::StopReason::kCompleted);
  EXPECT_EQ(count_job_files(ckpt_dir), 0)
      << "completed resume left its chain behind";

  // Cleanup for TearDown's rmdir.
  ::rmdir(ckpt_dir.c_str());
}

// ---------------------------------------------------------------------------
// Crash containment: isolated workers, retry-with-resume, quarantine
// ---------------------------------------------------------------------------

namespace {

/// Response bytes with the cache flag normalized away, for bit-identity
/// comparisons across cold/contained/resumed runs.
std::string canonical_bytes(Response r) {
  r.cached = false;
  return to_wire(r).to_json();
}

ServerConfig isolated_config(int retries) {
  ServerConfig cfg;
  cfg.isolate = true;
  cfg.enable_debug = true;  // the crash drills require --debug
  cfg.retries = retries;
  return cfg;
}

}  // namespace

TEST_F(ServerTest, IsolatedColdQueryMatchesInProcessRun) {
  start(isolated_config(2));
  Client c1 = connect();
  Request r = analysis_request("mc", "train-gate-3", "mutex");
  r.use_cache = false;
  const Response isolated = query(c1, r);
  ASSERT_EQ(isolated.status, Status::kOk) << isolated.error;
  EXPECT_TRUE(server_->stats().isolated);
  EXPECT_GE(server_->stats().supervisor.spawned, 1u);

  // The same daemon, in-process: answers must be byte-identical — worker
  // dispatch is a transport, not a different analysis.
  server_.reset();
  ServerConfig cfg;
  cfg.enable_debug = true;
  start(cfg);
  Client c2 = connect();
  const Response inproc = query(c2, r);
  ASSERT_EQ(inproc.status, Status::kOk);
  EXPECT_FALSE(server_->stats().isolated);
  EXPECT_EQ(canonical_bytes(isolated), canonical_bytes(inproc));
}

TEST_F(ServerTest, WorkerPoolReusesProcessesAcrossJobs) {
  ServerConfig cfg = isolated_config(2);
  cfg.jobs = 1;
  start(cfg);
  Client c = connect();
  for (const char* model : {"train-gate-2", "train-gate-3"}) {
    Request r = analysis_request("mc", model, "mutex");
    r.use_cache = false;
    EXPECT_EQ(query(c, r).verdict, common::Verdict::kHolds);
  }
  // Healthy workers serve many jobs; no respawn happened.
  EXPECT_EQ(server_->stats().supervisor.spawned, 1u);
  EXPECT_EQ(server_->stats().supervisor.crashes, 0u);
}

TEST_F(ServerTest, WorkerSegfaultIsContainedAndQuarantined) {
  ServerConfig cfg = isolated_config(1);
  cfg.jobs = 2;
  start(cfg);
  Client c = connect();

  Request crash = analysis_request("mc", "train-gate-2", "mutex");
  crash.use_cache = false;
  crash.fault = "svc.worker.job=crash";  // SIGSEGV at the job site
  const Response resp = query(c, crash);
  ASSERT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.verdict, common::Verdict::kUnknown);
  EXPECT_EQ(resp.stop, common::StopReason::kFault);
  EXPECT_NE(resp.error.find("quarantined"), std::string::npos) << resp.error;

  const auto stats = server_->stats();
  EXPECT_EQ(stats.supervisor.crashes, 2u);  // initial + 1 retry
  EXPECT_EQ(stats.supervisor.retries, 1u);
  EXPECT_EQ(stats.supervisor.quarantined, 1u);

  // The poison list answers the repeat without touching the pool, with the
  // same deterministic bytes every time.
  const Response hit1 = query(c, crash);
  const Response hit2 = query(c, crash);
  EXPECT_EQ(hit1.error, "quarantined: repeated worker crashes on this query");
  EXPECT_EQ(canonical_bytes(hit1), canonical_bytes(hit2));
  EXPECT_EQ(server_->stats().quarantine_hits, 2u);
  EXPECT_EQ(server_->stats().supervisor.crashes, 2u) << "pool was touched";

  // The daemon itself never died: a different query answers normally.
  Request healthy = analysis_request("mc", "train-gate-3", "mutex");
  healthy.use_cache = false;
  EXPECT_EQ(query(c, healthy).verdict, common::Verdict::kHolds);
}

TEST_F(ServerTest, CrashSignalMatrixDecodesAbortAndKill) {
  ServerConfig cfg = isolated_config(0);  // quarantine on the first crash
  start(cfg);
  Client c = connect();
  const struct {
    const char* model;  // distinct models → distinct quarantine entries
    std::uint64_t sig;
    const char* expect;
  } cases[] = {
      {"train-gate-2", 6, "signal 6"},   // SIGABRT
      {"train-gate-3", 9, "signal 9"},   // SIGKILL: nothing to catch at all
  };
  for (const auto& tc : cases) {
    Request r = analysis_request("mc", tc.model, "mutex");
    r.use_cache = false;
    r.crash_signal = tc.sig;
    const Response resp = query(c, r);
    ASSERT_EQ(resp.status, Status::kOk);
    EXPECT_EQ(resp.stop, common::StopReason::kFault);
    EXPECT_NE(resp.error.find(tc.expect), std::string::npos)
        << "signal " << tc.sig << " not decoded: " << resp.error;
  }
  EXPECT_EQ(server_->stats().supervisor.quarantined, 2u);
  // Still serving.
  Request healthy = analysis_request("mc", "train-gate-4", "mutex");
  healthy.use_cache = false;
  EXPECT_EQ(query(c, healthy).verdict, common::Verdict::kHolds);
}

TEST_F(ServerTest, WorkerOomUnderRlimitIsContained) {
  if (!worker_rlimit_supported()) {
    GTEST_SKIP() << "rlimit drills unavailable under sanitizers";
  }
  ServerConfig cfg = isolated_config(0);
  start(cfg);
  Client c = connect();
  Request r = analysis_request("mc", "train-gate-4", "mutex");
  r.use_cache = false;
  r.rlimit_mb = 1;  // an address-space cap the engine cannot live under
  const Response resp = query(c, r);
  ASSERT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.stop, common::StopReason::kFault);
  EXPECT_NE(resp.error.find("killed by signal"), std::string::npos)
      << resp.error;
  // Daemon alive, pool healthy for other inputs.
  Request healthy = analysis_request("mc", "train-gate-2", "mutex");
  healthy.use_cache = false;
  EXPECT_EQ(query(c, healthy).verdict, common::Verdict::kHolds);
}

TEST_F(ServerTest, ConcurrentJobsUnaffectedByASiblingCrash) {
  ServerConfig cfg = isolated_config(0);
  cfg.jobs = 2;
  start(cfg);

  // Calm reference for the healthy query.
  Client ref_client = connect();
  Request healthy = analysis_request("mc", "train-gate-4", "mutex");
  healthy.use_cache = false;
  const Response reference = query(ref_client, healthy);
  ASSERT_EQ(reference.status, Status::kOk);

  // Run the same healthy query (throttled so it is genuinely in flight
  // while its sibling dies) concurrently with a crashing one.
  Request slow = healthy;
  slow.throttle_us = 100;
  Response concurrent;
  std::thread t([&] {
    Client c = connect();
    std::string error;
    Response out;
    ASSERT_TRUE(c.analyze(slow, &out, &error)) << error;
    concurrent = out;
  });
  Client crash_client = connect();
  Request crash = analysis_request("mc", "train-gate-2", "mutex");
  crash.use_cache = false;
  crash.fault = "svc.worker.job=crash";
  const Response crashed = query(crash_client, crash);
  EXPECT_EQ(crashed.stop, common::StopReason::kFault);
  t.join();

  ASSERT_EQ(concurrent.status, Status::kOk);
  EXPECT_EQ(canonical_bytes(concurrent), canonical_bytes(reference))
      << "a sibling crash perturbed a healthy job";
  EXPECT_GE(server_->stats().supervisor.crashes, 1u);
}

TEST_F(ServerTest, CrashedJobRetriesResumeAndConvergeBitIdentically) {
  ServerConfig cfg = isolated_config(12);
  cfg.jobs = 1;
  start(cfg);
  Client c = connect();

  Request r = analysis_request("mc", "train-gate-4", "mutex");
  r.use_cache = false;
  const Response reference = query(c, r);
  ASSERT_EQ(reference.status, Status::kOk);
  ASSERT_EQ(reference.stop, common::StopReason::kCompleted);

  // Checkpoint every 500 states and crash each attempt at its third delta
  // write: every retry resumes past its predecessor's last snapshot, makes
  // ~2 intervals of fresh progress, and the final attempt completes. The
  // converged answer must be byte-identical to the uninterrupted run —
  // crash containment is a transport property, not an analysis change.
  Request drill = r;
  drill.ckpt_interval = 500;
  drill.fault = "ckpt.delta.write=crash:3";
  const Response converged = query(c, drill);
  ASSERT_EQ(converged.status, Status::kOk) << converged.error;
  ASSERT_EQ(converged.stop, common::StopReason::kCompleted) << converged.error;
  EXPECT_EQ(canonical_bytes(converged), canonical_bytes(reference));

  const auto stats = server_->stats();
  EXPECT_GE(stats.supervisor.crashes, 2u);
  EXPECT_GE(stats.supervisor.resumed_retries, 1u)
      << "retries never resumed from the checkpoint chain";
  EXPECT_EQ(stats.supervisor.quarantined, 0u);
  EXPECT_EQ(count_job_files(dir_ + "/ckpt"), 0)
      << "converged job left its chain behind";
}

TEST_F(ServerTest, QuarantineBypassRunClearsThePoisonEntry) {
  ServerConfig cfg = isolated_config(0);
  start(cfg);
  Client c = connect();
  Request crash = analysis_request("mc", "train-gate-2", "mutex");
  crash.use_cache = false;
  crash.fault = "svc.worker.job=crash";
  ASSERT_EQ(query(c, crash).stop, common::StopReason::kFault);
  ASSERT_EQ(server_->stats().supervisor.quarantined, 1u);

  // Quarantined: even a fault-free resubmission is answered from the
  // poison list without running anything.
  Request clean = analysis_request("mc", "train-gate-2", "mutex");
  clean.use_cache = false;
  const Response held = query(c, clean);
  EXPECT_NE(held.error.find("quarantined:"), std::string::npos);

  // A bypass run reaches the pool; completing cleanly clears the entry.
  Request bypass = clean;
  bypass.use_quarantine = false;
  const Response cleared = query(c, bypass);
  ASSERT_EQ(cleared.status, Status::kOk);
  EXPECT_EQ(cleared.verdict, common::Verdict::kHolds);
  EXPECT_EQ(server_->stats().supervisor.quarantined, 0u);

  // Normal submissions flow again.
  const Response after = query(c, clean);
  EXPECT_EQ(after.verdict, common::Verdict::kHolds);
}

// ---------------------------------------------------------------------------
// Write-ahead job journal (svc/journal.h): fold semantics and corruption
// ---------------------------------------------------------------------------

namespace {

std::string journal_path(const char* name) {
  std::string p = ::testing::TempDir() + "quanta_jrnl_" + name + ".qjrnl";
  std::remove(p.c_str());
  std::remove((p + ".tmp").c_str());
  return p;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spew(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A journal with one completed job (ticket 1), one admitted-but-incomplete
/// job (ticket 2, started), and one surviving quarantine entry. The trail
/// ends with ticket 2's start record, so damage to the file tail can only
/// cost records of the still-open job — never a completed answer.
void write_sample_journal(const std::string& path) {
  Journal j;
  std::string error;
  ASSERT_TRUE(j.open(path, JournalReplay{}, &error)) << error;
  j.admit(1, 0xAAA, R"({"engine":"mc","model":"train-gate-3"})");
  j.start(1, 0xAAA);
  j.quarantine(0xC0FFEE);
  j.quarantine(0xBAD);
  j.clear_quarantine(0xBAD);
  j.complete(1, 0xAAA, R"({"status":"ok","verdict":"holds"})");
  j.admit(2, 0xBBB, R"({"engine":"smc","model":"train-gate-2"})");
  j.start(2, 0xBBB);
  ASSERT_EQ(j.append_failures(), 0u);
}

}  // namespace

TEST(JournalTest, ReplayFoldsTheTrailIntoState) {
  const std::string path = journal_path("fold");
  write_sample_journal(path);
  const JournalReplay replay = Journal::replay(path);
  EXPECT_FALSE(replay.fresh);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.dropped, 0u);
  EXPECT_EQ(replay.next_ticket, 3u);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].ticket, 2u);
  EXPECT_EQ(replay.pending[0].fingerprint, 0xBBBu);
  EXPECT_TRUE(replay.pending[0].started);
  EXPECT_EQ(replay.pending[0].request_json,
            R"({"engine":"smc","model":"train-gate-2"})");
  ASSERT_EQ(replay.answers.size(), 1u);
  EXPECT_EQ(replay.answers.at(1), R"({"status":"ok","verdict":"holds"})");
  // The cleared entry folded away; only the surviving fingerprint remains.
  EXPECT_EQ(replay.quarantined, std::vector<std::uint64_t>{0xC0FFEE});
  std::remove(path.c_str());
}

TEST(JournalTest, CompactionPreservesTheFoldExactly) {
  const std::string path = journal_path("compact");
  write_sample_journal(path);
  const JournalReplay before = Journal::replay(path);
  const auto grown = slurp(path).size();
  {
    // Re-opening with the folded state compacts the file down to what the
    // fold still needs; the trail's dead records (starts, clears) drop out.
    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, before, &error)) << error;
  }
  EXPECT_LT(slurp(path).size(), grown);
  const JournalReplay after = Journal::replay(path);
  EXPECT_EQ(after.next_ticket, before.next_ticket);
  ASSERT_EQ(after.pending.size(), 1u);
  EXPECT_EQ(after.pending[0].ticket, 2u);
  EXPECT_EQ(after.pending[0].request_json, before.pending[0].request_json);
  EXPECT_EQ(after.answers, before.answers);
  EXPECT_EQ(after.quarantined, before.quarantined);
  std::remove(path.c_str());
}

TEST(JournalTest, TornTailNeverFailsTheReplay) {
  // SIGKILL mid-append: the file ends inside the last record. Replay keeps
  // everything before the tear — the completed answer and the quarantine
  // survive; only the final (partial) record is lost.
  const std::string path = journal_path("torn");
  write_sample_journal(path);
  const auto pristine = slurp(path);
  for (std::size_t cut = 1; cut <= 12; ++cut) {
    auto torn = pristine;
    torn.resize(pristine.size() - cut);
    spew(path, torn);
    const JournalReplay replay = Journal::replay(path);
    EXPECT_FALSE(replay.fresh) << "cut " << cut;
    EXPECT_TRUE(replay.torn_tail || replay.dropped > 0) << "cut " << cut;
    EXPECT_EQ(replay.answers.count(1), 1u) << "cut " << cut;
    EXPECT_EQ(replay.quarantined, std::vector<std::uint64_t>{0xC0FFEE})
        << "cut " << cut;
  }
  std::remove(path.c_str());
}

TEST(JournalTest, BitFlippedCompleteRevertsTheJobToPendingNotToAWrongAnswer) {
  const std::string path = journal_path("bitflip");
  {
    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, JournalReplay{}, &error)) << error;
    j.admit(1, 0xAAA, R"({"engine":"mc"})");
    j.complete(1, 0xAAA, R"({"status":"ok"})");
  }
  // Flip one byte inside the complete record's payload: its CRC kills the
  // whole record, so the fold sees an admit with no complete — the job is
  // re-run on boot. A corrupted answer is never served.
  auto bytes = slurp(path);
  bytes[bytes.size() - 2] ^= 0x40;
  spew(path, bytes);
  const JournalReplay replay = Journal::replay(path);
  EXPECT_EQ(replay.dropped, 1u);
  EXPECT_TRUE(replay.answers.empty());
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].ticket, 1u);
  std::remove(path.c_str());
}

TEST(JournalTest, VersionMismatchStartsFresh) {
  const std::string path = journal_path("version");
  write_sample_journal(path);
  // Re-stamp the file as a future format version (same magic): old records
  // under a new layout must not be guessed at — the replay starts fresh.
  std::vector<std::vector<std::uint8_t>> records;
  ASSERT_EQ(ckpt::scan_log(path, ckpt::LogFormat{"QJRNL1\r\n", 1}, &records)
                .records,
            8u);
  ASSERT_TRUE(ckpt::rewrite_log(path, ckpt::LogFormat{"QJRNL1\r\n", 2},
                                records, nullptr));
  const JournalReplay replay = Journal::replay(path);
  EXPECT_TRUE(replay.fresh);
  EXPECT_EQ(replay.note, "format version mismatch");
  EXPECT_TRUE(replay.pending.empty());
  EXPECT_TRUE(replay.answers.empty());
  EXPECT_EQ(replay.next_ticket, 1u);
  std::remove(path.c_str());
}

TEST(JournalTest, AnswerTableIsCappedAtTheOldEnd) {
  const std::string path = journal_path("cap");
  {
    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, JournalReplay{}, &error)) << error;
    for (std::uint64_t t = 1; t <= kMaxTicketAnswers + 50; ++t) {
      j.complete(t, 0, "{}");
    }
  }
  const JournalReplay replay = Journal::replay(path);
  EXPECT_EQ(replay.answers.size(), kMaxTicketAnswers);
  EXPECT_EQ(replay.answers.begin()->first, 51u);  // oldest aged out
  EXPECT_EQ(replay.next_ticket, kMaxTicketAnswers + 51);
  std::remove(path.c_str());
}

TEST(JournalTest, AppendFailureIsStickyAndCounted) {
  DisarmGuard guard;
  const std::string path = journal_path("fault");
  Journal j;
  std::string error;
  ASSERT_TRUE(j.open(path, JournalReplay{}, &error)) << error;
  j.admit(1, 0xAAA, "{}");
  common::FaultInjector::instance().arm("svc.journal.append",
                                        common::FaultKind::kException, 1);
  j.complete(1, 0xAAA, "{}");  // injected failure
  EXPECT_TRUE(common::FaultInjector::instance().fired());
  EXPECT_FALSE(j.healthy());
  EXPECT_EQ(j.appends(), 1u);
  EXPECT_EQ(j.append_failures(), 1u);
  j.admit(2, 0xBBB, "{}");  // sticky: silently dropped, not a crash
  EXPECT_EQ(j.append_failures(), 1u) << "unhealthy journal kept appending";
  // The file still replays to its last complete record: the pre-failure
  // admit alone (the failed complete never reached disk).
  const JournalReplay replay = Journal::replay(path);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].ticket, 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Result-cache persistence (QCSEG1 segment files)
// ---------------------------------------------------------------------------

namespace {

std::string segment_path(const char* name) {
  std::string p = ::testing::TempDir() + "quanta_seg_" + name + ".qcseg";
  std::remove(p.c_str());
  std::remove((p + ".tmp").c_str());
  return p;
}

Response rich_response() {
  Response r = small_response();
  r.stored = 253;
  r.explored = 250;
  r.transitions = 390;
  r.has_value = true;
  r.value = 0.1;  // not exactly representable: reload must round-trip it
  return r;
}

}  // namespace

TEST(ResultCacheTest, PersistenceReloadsBitIdenticalEntries) {
  const std::string path = segment_path("reload");
  const Response a = rich_response();
  const Response b = small_response(common::Verdict::kViolated);
  {
    ResultCache cache(1 << 20);
    std::string error;
    ASSERT_TRUE(cache.enable_persistence(path, &error)) << error;
    cache.insert(1, "key-a", a);
    cache.insert(2, "key-b", b);
    const auto s = cache.stats();
    EXPECT_TRUE(s.persist_enabled);
    EXPECT_EQ(s.persist_appends, 2u);
    EXPECT_EQ(s.persist_failures, 0u);
  }
  ResultCache back(1 << 20);
  std::string error;
  ASSERT_TRUE(back.enable_persistence(path, &error)) << error;
  EXPECT_EQ(back.stats().persist_loaded, 2u);
  EXPECT_EQ(back.stats().persist_dropped, 0u);
  Response out;
  ASSERT_TRUE(back.lookup(1, "key-a", &out));
  EXPECT_EQ(to_wire(out).to_json(), to_wire(a).to_json())
      << "reload altered the response bytes";
  ASSERT_TRUE(back.lookup(2, "key-b", &out));
  EXPECT_EQ(to_wire(out).to_json(), to_wire(b).to_json());
  std::remove(path.c_str());
}

TEST(ResultCacheTest, PersistedCorruptRecordIsDroppedAlone) {
  const std::string path = segment_path("corrupt");
  {
    ResultCache cache(1 << 20);
    std::string error;
    ASSERT_TRUE(cache.enable_persistence(path, &error)) << error;
    cache.insert(1, "key-a", rich_response());
    cache.insert(2, "key-b", rich_response());
  }
  // Bit-flip inside the last record: only that entry is lost on reload.
  auto bytes = slurp(path);
  bytes[bytes.size() - 2] ^= 0x01;
  spew(path, bytes);
  ResultCache back(1 << 20);
  std::string error;
  ASSERT_TRUE(back.enable_persistence(path, &error)) << error;
  EXPECT_EQ(back.stats().persist_loaded, 1u);
  EXPECT_EQ(back.stats().persist_dropped, 1u);
  Response out;
  EXPECT_TRUE(back.lookup(1, "key-a", &out));
  EXPECT_FALSE(back.lookup(2, "key-b", &out));
  std::remove(path.c_str());
}

TEST(ResultCacheTest, ForeignSegmentFileDegradesToAnEmptyReload) {
  const std::string path = segment_path("foreign");
  spew(path, {'n', 'o', 't', ' ', 'a', ' ', 's', 'e', 'g', 'm', 'e', 'n', 't'});
  ResultCache cache(1 << 20);
  std::string error;
  // Unusable file: reload is empty, but persistence still comes up — the
  // compaction pass re-creates a valid segment in place.
  ASSERT_TRUE(cache.enable_persistence(path, &error)) << error;
  EXPECT_EQ(cache.stats().persist_loaded, 0u);
  EXPECT_TRUE(cache.stats().persist_enabled);
  cache.insert(1, "key", rich_response());
  ResultCache back(1 << 20);
  ASSERT_TRUE(back.enable_persistence(path, &error)) << error;
  EXPECT_EQ(back.stats().persist_loaded, 1u);
  std::remove(path.c_str());
}

TEST(ResultCacheTest, PersistWriteFaultDegradesToMemoryOnly) {
  DisarmGuard guard;
  const std::string path = segment_path("fault");
  ResultCache cache(1 << 20);
  std::string error;
  ASSERT_TRUE(cache.enable_persistence(path, &error)) << error;
  common::FaultInjector::instance().arm("svc.cache.persist",
                                        common::FaultKind::kException, 1);
  cache.insert(1, "key", rich_response());
  EXPECT_TRUE(common::FaultInjector::instance().fired());
  const auto s = cache.stats();
  EXPECT_FALSE(s.persist_enabled);
  EXPECT_EQ(s.persist_failures, 1u);
  // The in-memory entry is unaffected; further inserts stay memory-only.
  Response out;
  EXPECT_TRUE(cache.lookup(1, "key", &out));
  cache.insert(2, "key-2", rich_response());
  EXPECT_TRUE(cache.lookup(2, "key-2", &out));
  EXPECT_EQ(cache.stats().persist_failures, 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Durable daemon end to end: restarts lose zero completed work
// ---------------------------------------------------------------------------

namespace {

/// Response bytes with the restart-variant fields normalized away (`cached`
/// flips on any replayed answer, `ticket` is per-request decoration): what
/// must stay bit-identical across kill/restart cycles.
std::string durable_bytes(Response r) {
  r.cached = false;
  r.ticket = 0;
  return to_wire(r).to_json();
}

}  // namespace

TEST_F(ServerTest, WaitReadyPollsUntilTheDaemonAnswers) {
  Endpoint ep;
  ep.socket_path = dir_ + "/d.sock";
  std::string error;
  // Nothing listening: fails after the budget, with the last failure named.
  EXPECT_FALSE(wait_ready(ep, 120, &error));
  EXPECT_NE(error.find("not ready"), std::string::npos) << error;
  // A daemon that starts late is caught by the poll loop.
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    start();
  });
  EXPECT_TRUE(wait_ready(ep, 10000, &error)) << error;
  starter.join();
}

TEST_F(ServerTest, DurableRestartServesCacheAndTicketsFromDisk) {
  ServerConfig cfg;
  cfg.state_dir = dir_ + "/state";
  start(cfg);
  Client c = connect();
  Request r = analysis_request("mc", "train-gate-3", "mutex");
  r.want_ticket = true;
  const Response cold = query(c, r);
  ASSERT_EQ(cold.status, Status::kOk);
  EXPECT_EQ(cold.ticket, 1u);
  // A cache hit consumes no ticket: the sequence stays deterministic.
  const Response hit = query(c, r);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.ticket, 0u);
  EXPECT_EQ(server_->stats().tickets_issued, 1u);

  server_.reset();
  start(cfg);
  Client c2 = connect();
  // The reloaded cache answers without running an engine, byte-identically.
  const Response warm = query(c2, analysis_request("mc", "train-gate-3",
                                                   "mutex"));
  ASSERT_EQ(warm.status, Status::kOk);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(server_->stats().jobs_executed, 0u);
  EXPECT_EQ(durable_bytes(warm), durable_bytes(cold));
  // The journaled answer is fetchable by ticket across the restart.
  Request fetch;
  fetch.engine = "svc";
  fetch.query = "result";
  fetch.ticket = 1;
  const Response fetched = query(c2, fetch);
  ASSERT_EQ(fetched.status, Status::kOk) << fetched.error;
  EXPECT_TRUE(fetched.cached);
  EXPECT_EQ(durable_bytes(fetched), durable_bytes(cold));
  // Unknown and missing tickets are bad requests, not crashes.
  fetch.ticket = 99;
  EXPECT_EQ(query(c2, fetch).status, Status::kBadRequest);
  fetch.ticket = 0;
  EXPECT_EQ(query(c2, fetch).status, Status::kBadRequest);

  const auto s = server_->stats();
  EXPECT_TRUE(s.journaling);
  EXPECT_EQ(s.ticket_answers, 1u);
  EXPECT_EQ(s.cache.persist_loaded, 1u);
  EXPECT_TRUE(s.recovery_done);
}

TEST_F(ServerTest, CancelledJobReplaysToCompletionAfterRestart) {
  // Calm reference from a plain amnesiac daemon.
  ServerConfig plain;
  plain.enable_debug = true;
  start(plain);
  Request r = analysis_request("mc", "train-gate-4", "mutex");
  r.use_cache = false;
  Response reference;
  {
    Client c = connect();
    reference = query(c, r);
    ASSERT_EQ(reference.status, Status::kOk);
    ASSERT_EQ(reference.stop, common::StopReason::kCompleted);
  }
  server_.reset();

  // Durable daemon: park the same job, then stop with it in flight. The
  // cancelled job answers kCancelled — and its ticket stays pending.
  ServerConfig cfg;
  cfg.state_dir = dir_ + "/state";
  cfg.enable_debug = true;
  cfg.jobs = 1;
  start(cfg);
  Request held = r;
  held.hold_ms = 60000;
  held.want_ticket = true;
  Response parked;
  std::string error;
  bool transported = false;
  {
    Client c = connect();
    std::thread t([&] { transported = c.analyze(held, &parked, &error); });
    wait_until([&] { return server_->stats().queue.running == 1; });
    server_->stop();
    t.join();
  }
  ASSERT_TRUE(transported) << error;
  ASSERT_EQ(parked.stop, common::StopReason::kCancelled);
  ASSERT_EQ(parked.ticket, 1u);

  // Restart: the journal replays the job to completion in the background.
  start(cfg);
  EXPECT_EQ(server_->stats().journal_replayed, 1u);
  wait_until([&] { return server_->stats().recovery_done; });
  EXPECT_EQ(server_->stats().jobs_recovered, 1u);
  EXPECT_EQ(server_->stats().jobs_executed, 1u) << "replay skipped the engine";

  // The replayed answer is byte-identical to the uninterrupted run.
  Client c = connect();
  Request fetch;
  fetch.engine = "svc";
  fetch.query = "result";
  fetch.ticket = 1;
  const Response recovered = query(c, fetch);
  ASSERT_EQ(recovered.status, Status::kOk) << recovered.error;
  EXPECT_TRUE(recovered.cached);
  EXPECT_EQ(durable_bytes(recovered), durable_bytes(reference));
  EXPECT_EQ(server_->stats().tickets_pending, 0u);
}

TEST_F(ServerTest, QuarantinePersistsAcrossRestartAndSoDoesItsClearance) {
  ServerConfig cfg = isolated_config(0);
  cfg.state_dir = dir_ + "/state";
  start(cfg);
  Request crash = analysis_request("mc", "train-gate-2", "mutex");
  crash.use_cache = false;
  crash.fault = "svc.worker.job=crash";
  {
    Client c = connect();
    ASSERT_EQ(query(c, crash).stop, common::StopReason::kFault);
  }
  ASSERT_EQ(server_->stats().supervisor.quarantined, 1u);

  // Restart: the poison entry answers without any worker crashing again.
  server_.reset();
  start(cfg);
  EXPECT_EQ(server_->stats().supervisor.quarantined, 1u);
  Request clean = analysis_request("mc", "train-gate-2", "mutex");
  clean.use_cache = false;
  {
    Client c = connect();
    const Response held = query(c, clean);
    EXPECT_NE(held.error.find("quarantined:"), std::string::npos) << held.error;
    EXPECT_EQ(server_->stats().supervisor.crashes, 0u);

    // A clean bypass run clears the entry — durably.
    Request bypass = clean;
    bypass.use_quarantine = false;
    ASSERT_EQ(query(c, bypass).verdict, common::Verdict::kHolds);
    EXPECT_EQ(server_->stats().supervisor.quarantined, 0u);
  }
  server_.reset();
  start(cfg);
  EXPECT_EQ(server_->stats().supervisor.quarantined, 0u);
  Client c = connect();
  EXPECT_EQ(query(c, clean).verdict, common::Verdict::kHolds);
}

TEST_F(ServerTest, JournalAppendFaultDegradesToInMemoryOperation) {
  DisarmGuard guard;
  ServerConfig cfg;
  cfg.state_dir = dir_ + "/state";
  start(cfg);
  ASSERT_TRUE(server_->stats().journaling);
  common::FaultInjector::instance().arm("svc.journal.append",
                                        common::FaultKind::kException, 1);
  Client c = connect();
  Request r = analysis_request("mc", "train-gate-2", "mutex");
  r.use_cache = false;
  // The admit append fails; the job itself is unharmed.
  const Response resp = query(c, r);
  ASSERT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.verdict, common::Verdict::kHolds);
  EXPECT_TRUE(common::FaultInjector::instance().fired());
  const auto s = server_->stats();
  EXPECT_FALSE(s.journaling);
  EXPECT_EQ(s.journal_failures, 1u);
  // Tickets keep flowing from memory; answers stay fetchable this session.
  Request fetch;
  fetch.engine = "svc";
  fetch.query = "result";
  fetch.ticket = 1;
  EXPECT_EQ(durable_bytes(query(c, fetch)), durable_bytes(resp));
}

TEST_F(ServerTest, CrashDrillsRequireDebugAndIsolation) {
  {
    // Isolated but not --debug: the drill fields are rejected.
    ServerConfig cfg;
    cfg.isolate = true;
    start(cfg);
    Client c = connect();
    Request r = analysis_request("mc", "train-gate-2", "mutex");
    r.crash_signal = 9;
    EXPECT_EQ(query(c, r).status, Status::kBadRequest);
    server_.reset();
  }
  {
    // --debug but in-process: nowhere safe to crash.
    ServerConfig cfg;
    cfg.enable_debug = true;
    start(cfg);
    Client c = connect();
    Request r = analysis_request("mc", "train-gate-2", "mutex");
    r.fault = "svc.worker.job=crash";
    const Response resp = query(c, r);
    EXPECT_EQ(resp.status, Status::kBadRequest);
    EXPECT_NE(resp.error.find("isolated"), std::string::npos) << resp.error;
  }
}

}  // namespace
