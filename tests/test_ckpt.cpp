// Crash-safe checkpoint/resume (src/ckpt): format-layer validation, the
// torn-write / corruption suite, and the headline end-to-end invariant —
// interrupt-at-any-point + resume produces bit-identical verdicts and
// statistics versus an uninterrupted run, for all three snapshot providers
// (symbolic reachability, value iteration, statistical estimation).
#include "ckpt/checkpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/crc32.h"
#include "common/budget.h"
#include "common/fault.h"
#include "exec/executor.h"
#include "mc/reachability.h"
#include "mdp/value_iteration.h"
#include "models/train_gate.h"
#include "smc/estimate.h"

namespace {

using namespace quanta;
namespace fs = std::filesystem;

// ---- plumbing -------------------------------------------------------------

/// Fresh checkpoint path per test; removes leftovers from earlier runs.
std::string ckpt_path(const std::string& name) {
  std::string p = ::testing::TempDir() + "quanta_ckpt_" + name + ".qckpt";
  fs::remove(p);
  fs::remove(p + ".tmp");
  return p;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

/// RAII: whatever happens in a test, leave the process-wide injector clean.
struct ScopedFault {
  ScopedFault(const char* site, common::FaultKind kind, std::uint64_t after) {
    common::FaultInjector::instance().arm(site, kind, after);
  }
  ~ScopedFault() { common::FaultInjector::instance().disarm(); }
};

ckpt::Snapshot make_snapshot(std::uint64_t fingerprint) {
  ckpt::Snapshot snap;
  snap.provider = ckpt::Provider::kExplore;
  snap.fingerprint = fingerprint;
  ckpt::io::Writer a;
  a.u64(0xDEADBEEFCAFEF00Dull);
  a.u32(7);
  snap.add_section(1, std::move(a));
  ckpt::io::Writer b;
  for (int i = 0; i < 100; ++i) b.f64(i * 0.25);
  snap.add_section(2, std::move(b));
  return snap;
}

// ---- format layer ---------------------------------------------------------

TEST(CkptFormat, SaveLoadRoundTrip) {
  const std::string path = ckpt_path("roundtrip");
  const auto snap = make_snapshot(42);
  ASSERT_TRUE(ckpt::save(path, snap));

  ckpt::Snapshot back;
  ASSERT_EQ(ckpt::load(path, 42, ckpt::Provider::kExplore, &back),
            ckpt::LoadStatus::kOk);
  EXPECT_EQ(back.fingerprint, 42u);
  ASSERT_EQ(back.sections.size(), 2u);
  ASSERT_NE(back.find(1), nullptr);
  ASSERT_NE(back.find(2), nullptr);
  EXPECT_EQ(back.find(1)->payload, snap.sections[0].payload);
  EXPECT_EQ(back.find(2)->payload, snap.sections[1].payload);
  EXPECT_EQ(back.find(3), nullptr);
  // The temp file never survives a successful save.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(CkptFormat, MissingFileIsNoFile) {
  ckpt::Snapshot out;
  EXPECT_EQ(ckpt::load(ckpt_path("missing"), 1, ckpt::Provider::kExplore, &out),
            ckpt::LoadStatus::kNoFile);
}

TEST(CkptFormat, ValidationOrderAndMismatches) {
  const std::string path = ckpt_path("mismatch");
  ASSERT_TRUE(ckpt::save(path, make_snapshot(42)));
  ckpt::Snapshot out;
  EXPECT_EQ(ckpt::load(path, 43, ckpt::Provider::kExplore, &out),
            ckpt::LoadStatus::kBadFingerprint);
  EXPECT_EQ(ckpt::load(path, 42, ckpt::Provider::kValueIteration, &out),
            ckpt::LoadStatus::kBadProvider);
  // On failure the output snapshot is untouched.
  EXPECT_TRUE(out.sections.empty());
}

TEST(CkptFormat, BadMagicRejected) {
  const std::string path = ckpt_path("magic");
  ASSERT_TRUE(ckpt::save(path, make_snapshot(42)));
  auto bytes = read_file(path);
  bytes[0] ^= 0xFF;
  write_file(path, bytes);
  ckpt::Snapshot out;
  EXPECT_EQ(ckpt::load(path, 42, ckpt::Provider::kExplore, &out),
            ckpt::LoadStatus::kBadMagic);
}

TEST(CkptFormat, FutureFormatVersionRejected) {
  const std::string path = ckpt_path("version");
  ASSERT_TRUE(ckpt::save(path, make_snapshot(42)));
  auto bytes = read_file(path);
  // Patch the format-version field (offset 8) and re-seal the header CRC
  // (computed over the first 28 bytes, stored at offset 28) so only the
  // version check can object.
  bytes[8] = static_cast<std::uint8_t>(ckpt::kFormatVersion + 1);
  const std::uint32_t crc = ckpt::crc32(bytes.data(), 28);
  for (int i = 0; i < 4; ++i) {
    bytes[28 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  write_file(path, bytes);
  ckpt::Snapshot out;
  EXPECT_EQ(ckpt::load(path, 42, ckpt::Provider::kExplore, &out),
            ckpt::LoadStatus::kBadVersion);
}

TEST(CkptFormat, TruncationAndBitFlipsAreCorrupt) {
  const std::string path = ckpt_path("corrupt");
  ASSERT_TRUE(ckpt::save(path, make_snapshot(42)));
  const auto pristine = read_file(path);
  ckpt::Snapshot out;

  // Truncated mid-section.
  auto half = pristine;
  half.resize(pristine.size() / 2);
  write_file(path, half);
  EXPECT_EQ(ckpt::load(path, 42, ckpt::Provider::kExplore, &out),
            ckpt::LoadStatus::kCorrupt);

  // A single flipped byte anywhere past the magic must be caught by a CRC —
  // sample the header CRC itself, a section CRC and payload bytes.
  for (std::size_t pos : {std::size_t{28}, std::size_t{40},
                          pristine.size() / 2, pristine.size() - 1}) {
    auto flipped = pristine;
    flipped[pos] ^= 0x01;
    write_file(path, flipped);
    EXPECT_EQ(ckpt::load(path, 42, ckpt::Provider::kExplore, &out),
              ckpt::LoadStatus::kCorrupt)
        << "flipped byte at offset " << pos;
  }
}

TEST(CkptFormat, KilledWriteLeavesPreviousCheckpointIntact) {
  const std::string path = ckpt_path("torn");
  ASSERT_TRUE(ckpt::save(path, make_snapshot(42)));

  // The injected fault fires mid-write of the temp file — the moral
  // equivalent of a SIGKILL between the two halves of the payload.
  {
    ScopedFault fault("ckpt.file.write", common::FaultKind::kException, 1);
    ckpt::Snapshot replacement = make_snapshot(42);
    replacement.sections[0].payload.assign(64, 0xAB);
    EXPECT_FALSE(ckpt::save(path, replacement));
  }
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // The previous checkpoint still validates and still has the old payload.
  ckpt::Snapshot back;
  ASSERT_EQ(ckpt::load(path, 42, ckpt::Provider::kExplore, &back),
            ckpt::LoadStatus::kOk);
  EXPECT_EQ(back.find(1)->payload, make_snapshot(42).sections[0].payload);
}

TEST(CkptFormat, FirstSaveKilledLeavesNoFile) {
  const std::string path = ckpt_path("torn_first");
  ScopedFault fault("ckpt.file.write", common::FaultKind::kException, 1);
  EXPECT_FALSE(ckpt::save(path, make_snapshot(1)));
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// ---- provider 1: symbolic reachability (core::explore snapshot) -----------

mc::StatePredicate mutual_exclusion(const models::TrainGate& tg) {
  std::vector<int> cross_loc;
  for (int i = 0; i < tg.num_trains; ++i) {
    cross_loc.push_back(
        tg.system.process(tg.trains[static_cast<std::size_t>(i)])
            .location_index("Cross"));
  }
  auto trains = tg.trains;
  return [trains, cross_loc](const ta::SymState& s) {
    int crossing = 0;
    for (std::size_t i = 0; i < trains.size(); ++i) {
      if (s.locs[static_cast<std::size_t>(trains[i])] ==
          static_cast<int>(cross_loc[i])) {
        ++crossing;
      }
    }
    return crossing <= 1;
  };
}

void expect_same_stats(const mc::SearchStats& got, const mc::SearchStats& want,
                       const char* what) {
  EXPECT_EQ(got.states_stored, want.states_stored) << what;
  EXPECT_EQ(got.states_explored, want.states_explored) << what;
  EXPECT_EQ(got.transitions, want.transitions) << what;
}

TEST(CkptReachability, InterruptAnywhereThenResumeIsBitIdentical) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);

  for (core::SearchOrder order : {core::SearchOrder::kBfs,
                                  core::SearchOrder::kDfs}) {
    mc::ReachOptions base;
    base.order = order;
    const auto reference = mc::check_invariant(tg.system, safe, base);
    ASSERT_TRUE(reference.holds());
    ASSERT_GT(reference.stats.states_stored, 100u);

    // Interrupt at several depths: near the start, mid-flight, and deep in
    // the search. The fault forces the deadline at the K-th intern; the
    // budget poll then stops the search at the next stride boundary.
    for (std::size_t k : {std::size_t{3}, reference.stats.states_stored / 4,
                          reference.stats.states_stored / 2}) {
      const std::string path = ckpt_path(
          "mc_resume_" + std::to_string(static_cast<int>(order)) + "_" +
          std::to_string(k));
      mc::ReachOptions opts = base;
      opts.checkpoint.path = path;
      opts.limits.budget = common::Budget::deadline_after(std::chrono::hours(1));
      mc::InvariantResult interrupted;
      {
        ScopedFault fault("core.state_store.intern",
                          common::FaultKind::kDeadline, k);
        interrupted = mc::check_invariant(tg.system, safe, opts);
      }
      ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown) << "k=" << k;
      ASSERT_EQ(interrupted.stop(), common::StopReason::kTimeLimit);
      ASSERT_TRUE(interrupted.resume.saved) << "k=" << k;
      ASSERT_LT(interrupted.stats.states_explored,
                reference.stats.states_explored);

      // Resume with the fault gone: the verdict and every counter must be
      // exactly what the uninterrupted run reported.
      const auto resumed = mc::check_invariant(tg.system, safe, opts);
      EXPECT_EQ(resumed.resume.load, ckpt::LoadStatus::kOk) << "k=" << k;
      EXPECT_TRUE(resumed.resume.resumed);
      EXPECT_TRUE(resumed.holds()) << "k=" << k;
      expect_same_stats(resumed.stats, reference.stats, "resumed invariant");
    }
  }
}

TEST(CkptReachability, StateLimitStopIsResumable) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const auto reference = mc::check_invariant(tg.system, safe);
  ASSERT_TRUE(reference.holds());

  const std::string path = ckpt_path("mc_statelimit");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = reference.stats.states_stored / 3;
  const auto truncated = mc::check_invariant(tg.system, safe, opts);
  ASSERT_EQ(truncated.verdict, common::Verdict::kUnknown);
  ASSERT_EQ(truncated.stop(), common::StopReason::kStateLimit);
  ASSERT_TRUE(truncated.resume.saved);

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto resumed = mc::check_invariant(tg.system, safe, full);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.holds());
  expect_same_stats(resumed.stats, reference.stats, "after state limit");
}

TEST(CkptReachability, WitnessSearchResumesToIdenticalTrace) {
  auto tg = models::make_train_gate(2);
  const auto goal = mc::loc_pred(tg.system, "Train(0)", "Stop");
  const auto reference = mc::reachable(tg.system, goal);
  ASSERT_TRUE(reference.reachable());

  // Interrupt via the state bound (checked every pop, so it trips before the
  // witness even on models too small for the amortized deadline poll).
  const std::string path = ckpt_path("mc_witness");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = reference.stats.states_stored / 2;
  const auto interrupted = mc::reachable(tg.system, goal, opts);
  ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown);
  ASSERT_EQ(interrupted.stop(), common::StopReason::kStateLimit);
  ASSERT_TRUE(interrupted.resume.saved);

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto resumed = mc::reachable(tg.system, goal, full);
  EXPECT_TRUE(resumed.resume.resumed);
  ASSERT_TRUE(resumed.reachable());
  expect_same_stats(resumed.stats, reference.stats, "witness search");
  EXPECT_EQ(resumed.trace, reference.trace);
  EXPECT_EQ(resumed.witness, reference.witness);
}

TEST(CkptReachability, PeriodicSnapshotsSurviveAnUnsavedStop) {
  // save_on_stop off: only the periodic snapshots exist — the SIGKILL story,
  // where the stop itself never gets to write anything.
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const auto reference = mc::check_invariant(tg.system, safe);

  const std::string path = ckpt_path("mc_periodic");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.checkpoint.interval = 50;
  opts.checkpoint.save_on_stop = false;
  opts.limits.max_states = reference.stats.states_stored / 2;
  const auto truncated = mc::check_invariant(tg.system, safe, opts);
  ASSERT_EQ(truncated.verdict, common::Verdict::kUnknown);
  ASSERT_TRUE(truncated.resume.saved);  // periodic, not stop-triggered

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto resumed = mc::check_invariant(tg.system, safe, full);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.holds());
  expect_same_stats(resumed.stats, reference.stats, "periodic resume");
}

TEST(CkptReachability, CorruptCheckpointDegradesToFreshStart) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const auto reference = mc::check_invariant(tg.system, safe);

  const std::string path = ckpt_path("mc_corrupt");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = reference.stats.states_stored / 2;
  ASSERT_TRUE(mc::check_invariant(tg.system, safe, opts).resume.saved);
  const auto pristine = read_file(path);

  struct Case {
    const char* name;
    std::vector<std::uint8_t> bytes;
    ckpt::LoadStatus want;
  };
  auto flipped = pristine;
  flipped[pristine.size() / 2] ^= 0x20;
  auto crc_flip = pristine;
  crc_flip[28] ^= 0x01;  // header CRC byte
  auto truncated = pristine;
  truncated.resize(pristine.size() - 7);
  const std::vector<Case> cases = {
      {"bit flip mid-payload", flipped, ckpt::LoadStatus::kCorrupt},
      {"flipped CRC byte", crc_flip, ckpt::LoadStatus::kCorrupt},
      {"truncated tail", truncated, ckpt::LoadStatus::kCorrupt},
  };
  for (const Case& c : cases) {
    write_file(path, c.bytes);
    mc::ReachOptions full;
    full.checkpoint.path = path;
    const auto r = mc::check_invariant(tg.system, safe, full);
    EXPECT_EQ(r.resume.load, c.want) << c.name;
    EXPECT_FALSE(r.resume.resumed) << c.name;
    // Degraded to a fresh start — and the fresh start is still right.
    EXPECT_TRUE(r.holds()) << c.name;
    expect_same_stats(r.stats, reference.stats, c.name);
  }
}

TEST(CkptReachability, PropertyTagSeparatesQueriesSharingAPath) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const auto reference = mc::check_invariant(tg.system, safe);

  const std::string path = ckpt_path("mc_tag");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.checkpoint.property_tag = "mutex";
  opts.limits.max_states = reference.stats.states_stored / 2;
  ASSERT_TRUE(mc::check_invariant(tg.system, safe, opts).resume.saved);

  // A different property tag must refuse the snapshot (fingerprint) and
  // fall back to a fresh, still-correct run.
  mc::ReachOptions other;
  other.checkpoint.path = path;
  other.checkpoint.property_tag = "different-query";
  const auto r = mc::check_invariant(tg.system, safe, other);
  EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_FALSE(r.resume.resumed);
  EXPECT_TRUE(r.holds());
}

TEST(CkptReachability, DifferentModelRefusesTheSnapshot) {
  auto tg2 = models::make_train_gate(2);
  auto tg3 = models::make_train_gate(3);
  const std::string path = ckpt_path("mc_model");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = 40;
  ASSERT_TRUE(
      mc::check_invariant(tg3.system, mutual_exclusion(tg3), opts).resume.saved);

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto r = mc::check_invariant(tg2.system, mutual_exclusion(tg2), full);
  EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_TRUE(r.holds());
}

TEST(CkptReachability, FailedSnapshotWriteNeverAffectsTheVerdict) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const std::string path = ckpt_path("mc_failed_write");

  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = 60;
  mc::InvariantResult truncated;
  {
    ScopedFault fault("ckpt.file.write", common::FaultKind::kException, 1);
    truncated = mc::check_invariant(tg.system, safe, opts);
  }
  EXPECT_EQ(truncated.verdict, common::Verdict::kUnknown);
  EXPECT_EQ(truncated.stop(), common::StopReason::kStateLimit);
  EXPECT_FALSE(truncated.resume.saved);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // Next invocation finds nothing and simply starts fresh.
  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto r = mc::check_invariant(tg.system, safe, full);
  EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kNoFile);
  EXPECT_TRUE(r.holds());
}

// ---- provider 2: value iteration ------------------------------------------

/// A slow-converging chain: from state i move forward with p = 0.05 or stay.
/// Without precomputation the values crawl toward 1, giving value iteration
/// hundreds of sweeps to interrupt.
mdp::Mdp slow_chain(std::int32_t n) {
  mdp::Mdp m;
  for (std::int32_t i = 0; i < n; ++i) {
    m.add_choice(i, {{i + 1, 0.05}, {i, 0.95}});
  }
  m.add_choice(n, {{n, 1.0}});
  m.set_initial(0);
  m.freeze();
  return m;
}

mdp::StateSet chain_goal(const mdp::Mdp& m) {
  mdp::StateSet goal(static_cast<std::size_t>(m.num_states()), false);
  goal[static_cast<std::size_t>(m.num_states() - 1)] = true;
  return goal;
}

TEST(CkptValueIteration, InterruptedSweepsResumeBitIdentically) {
  const auto m = slow_chain(20);
  const auto goal = chain_goal(m);
  mdp::ViOptions base;
  base.use_precomputation = false;  // keep the fixpoint genuinely iterative
  const auto reference =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, base);
  ASSERT_TRUE(reference.converged);
  ASSERT_GT(reference.iterations, 100);

  for (std::uint64_t k : {std::uint64_t{2}, std::uint64_t{60},
                          static_cast<std::uint64_t>(reference.iterations) - 5}) {
    const std::string path = ckpt_path("vi_resume_" + std::to_string(k));
    mdp::ViOptions opts = base;
    opts.checkpoint.path = path;
    opts.budget = common::Budget::deadline_after(std::chrono::hours(1));
    mdp::ViResult interrupted;
    {
      ScopedFault fault("mdp.value_iteration.sweep",
                        common::FaultKind::kDeadline, k);
      interrupted =
          mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts);
    }
    ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown) << "k=" << k;
    ASSERT_EQ(interrupted.stop, common::StopReason::kTimeLimit);
    ASSERT_TRUE(interrupted.resume.saved);
    ASSERT_LT(interrupted.iterations, reference.iterations);

    mdp::ViOptions resume = base;
    resume.checkpoint.path = path;
    const auto resumed =
        mdp::reachability_probability(m, goal, mdp::Objective::kMax, resume);
    EXPECT_TRUE(resumed.resume.resumed) << "k=" << k;
    EXPECT_TRUE(resumed.converged);
    EXPECT_EQ(resumed.iterations, reference.iterations) << "k=" << k;
    ASSERT_EQ(resumed.values.size(), reference.values.size());
    for (std::size_t i = 0; i < reference.values.size(); ++i) {
      EXPECT_EQ(resumed.values[i], reference.values[i])
          << "value " << i << " diverged after resume at sweep " << k;
    }
  }
}

TEST(CkptValueIteration, IterationBoundStopIsResumable) {
  const auto m = slow_chain(20);
  const auto goal = chain_goal(m);
  mdp::ViOptions base;
  base.use_precomputation = false;
  const auto reference =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, base);

  const std::string path = ckpt_path("vi_bound");
  mdp::ViOptions opts = base;
  opts.checkpoint.path = path;
  opts.max_iterations = reference.iterations / 2;
  const auto truncated =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts);
  ASSERT_FALSE(truncated.converged);
  ASSERT_EQ(truncated.stop, common::StopReason::kStateLimit);
  ASSERT_TRUE(truncated.resume.saved);

  mdp::ViOptions resume = base;
  resume.checkpoint.path = path;
  const auto resumed =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, resume);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.converged);
  EXPECT_EQ(resumed.iterations, reference.iterations);
  EXPECT_EQ(resumed.at_initial(m), reference.at_initial(m));
}

TEST(CkptValueIteration, PeriodicSnapshotsCoverSigkill) {
  const auto m = slow_chain(20);
  const auto goal = chain_goal(m);
  mdp::ViOptions base;
  base.use_precomputation = false;
  const auto reference =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, base);

  const std::string path = ckpt_path("vi_periodic");
  mdp::ViOptions opts = base;
  opts.checkpoint.path = path;
  opts.checkpoint.interval = 25;
  opts.checkpoint.save_on_stop = false;  // only periodic snapshots exist
  opts.max_iterations = 120;
  const auto truncated =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts);
  ASSERT_FALSE(truncated.converged);
  ASSERT_TRUE(truncated.resume.saved);

  mdp::ViOptions resume = base;
  resume.checkpoint.path = path;
  const auto resumed =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, resume);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.converged);
  EXPECT_EQ(resumed.iterations, reference.iterations);
  for (std::size_t i = 0; i < reference.values.size(); ++i) {
    EXPECT_EQ(resumed.values[i], reference.values[i]) << "value " << i;
  }
}

TEST(CkptValueIteration, WrongMdpOrEpsilonRefusesTheSnapshot) {
  const auto m = slow_chain(20);
  const auto goal = chain_goal(m);
  const std::string path = ckpt_path("vi_fingerprint");
  mdp::ViOptions opts;
  opts.use_precomputation = false;
  opts.checkpoint.path = path;
  opts.max_iterations = 40;
  ASSERT_TRUE(mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts)
                  .resume.saved);

  // Different epsilon => different fingerprint => fresh start.
  mdp::ViOptions other = opts;
  other.max_iterations = 1'000'000;
  other.epsilon = 1e-6;
  const auto r =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, other);
  EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_FALSE(r.resume.resumed);
  EXPECT_TRUE(r.converged);

  // Different MDP shape => fresh start as well.
  const auto m2 = slow_chain(21);
  const auto goal2 = chain_goal(m2);
  mdp::ViOptions full = opts;
  full.max_iterations = 1'000'000;
  const auto r2 =
      mdp::reachability_probability(m2, goal2, mdp::Objective::kMax, full);
  EXPECT_EQ(r2.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_TRUE(r2.converged);
}

// ---- provider 3: statistical estimation -----------------------------------

smc::TimeBoundedReach train_crosses(const models::TrainGate& tg,
                                    double bound) {
  const int p = tg.trains[0];
  const int cross = tg.system.process(p).location_index("Cross");
  smc::TimeBoundedReach prop;
  prop.time_bound = bound;
  prop.goal = [p, cross](const ta::ConcreteState& s) {
    return s.locs[static_cast<std::size_t>(p)] == cross;
  };
  return prop;
}

TEST(CkptStatistical, CheckpointingPathMatchesThePlainPath) {
  auto tg = models::make_train_gate(2);
  const auto prop = train_crosses(tg, 30.0);
  exec::Executor ex(4);
  const auto reference =
      smc::estimate_probability_runs(tg.system, prop, 2500, 0.05, 11, ex);
  ASSERT_EQ(reference.verdict, common::Verdict::kHolds);

  ckpt::Options ck;
  ck.path = ckpt_path("smc_plain");
  const auto batched = smc::estimate_probability_runs(
      tg.system, prop, 2500, 0.05, 11, ex, nullptr, {}, ck);
  EXPECT_EQ(batched.verdict, common::Verdict::kHolds);
  EXPECT_EQ(batched.hits, reference.hits);
  EXPECT_EQ(batched.p_hat, reference.p_hat);
  EXPECT_EQ(batched.ci_low, reference.ci_low);
  EXPECT_EQ(batched.ci_high, reference.ci_high);
  // A completed estimate leaves no checkpoint behind to confuse reruns with.
  EXPECT_FALSE(batched.resume.saved);
}

TEST(CkptStatistical, InterruptedSampleResumesToIdenticalEstimate) {
  auto tg = models::make_train_gate(2);
  const auto prop = train_crosses(tg, 30.0);
  exec::Executor ex(4);
  const auto reference =
      smc::estimate_probability_runs(tg.system, prop, 2500, 0.05, 11, ex);

  const std::string path = ckpt_path("smc_resume");
  ckpt::Options ck;
  ck.path = path;
  const auto budget = common::Budget::deadline_after(std::chrono::hours(1));
  smc::Estimate interrupted;
  {
    // Force the deadline at the second batch boundary: exactly one batch
    // (1024 runs) completes — a deterministic, prefix-contiguous partial.
    ScopedFault fault("smc.estimate.batch", common::FaultKind::kDeadline, 2);
    interrupted = smc::estimate_probability_runs(tg.system, prop, 2500, 0.05,
                                                 11, ex, nullptr, budget, ck);
  }
  ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown);
  ASSERT_EQ(interrupted.stop, common::StopReason::kTimeLimit);
  ASSERT_EQ(interrupted.completed, 1024u);
  ASSERT_TRUE(interrupted.resume.saved);

  // Resume on a different worker count — still bit-identical, because run i
  // is a pure function of (seed, i) and the tally is a prefix.
  exec::Executor ex2(2);
  const auto resumed = smc::estimate_probability_runs(tg.system, prop, 2500,
                                                      0.05, 11, ex2, nullptr,
                                                      {}, ck);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_EQ(resumed.verdict, common::Verdict::kHolds);
  EXPECT_EQ(resumed.completed, 2500u);
  EXPECT_EQ(resumed.hits, reference.hits);
  EXPECT_EQ(resumed.p_hat, reference.p_hat);
  EXPECT_EQ(resumed.ci_low, reference.ci_low);
  EXPECT_EQ(resumed.ci_high, reference.ci_high);
}

TEST(CkptStatistical, MidBatchCancellationDiscardsThePartialBatch) {
  auto tg = models::make_train_gate(2);
  const auto prop = train_crosses(tg, 30.0);
  exec::Executor ex(4);

  const std::string path = ckpt_path("smc_midbatch");
  ckpt::Options ck;
  ck.path = path;
  common::CancelToken cancel;
  cancel.cancel();  // watchdog fires before the first batch finishes
  common::Budget budget;
  budget.with_cancel(&cancel);
  const auto interrupted = smc::estimate_probability_runs(
      tg.system, prop, 2500, 0.05, 11, ex, nullptr, budget, ck);
  ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown);
  EXPECT_EQ(interrupted.stop, common::StopReason::kCancelled);
  // Nothing torn: the tally is a whole number of batches (here: zero).
  EXPECT_EQ(interrupted.completed % 1024, 0u);

  cancel.reset();
  const auto resumed = smc::estimate_probability_runs(tg.system, prop, 2500,
                                                      0.05, 11, ex, nullptr,
                                                      {}, ck);
  const auto reference =
      smc::estimate_probability_runs(tg.system, prop, 2500, 0.05, 11, ex);
  EXPECT_EQ(resumed.verdict, common::Verdict::kHolds);
  EXPECT_EQ(resumed.hits, reference.hits);
  EXPECT_EQ(resumed.p_hat, reference.p_hat);
}

TEST(CkptStatistical, DifferentSeedOrRunsRefusesTheSnapshot) {
  auto tg = models::make_train_gate(2);
  const auto prop = train_crosses(tg, 30.0);
  exec::Executor ex(4);

  const std::string path = ckpt_path("smc_fingerprint");
  ckpt::Options ck;
  ck.path = path;
  const auto budget = common::Budget::deadline_after(std::chrono::hours(1));
  {
    ScopedFault fault("smc.estimate.batch", common::FaultKind::kDeadline, 2);
    ASSERT_TRUE(smc::estimate_probability_runs(tg.system, prop, 2500, 0.05, 11,
                                               ex, nullptr, budget, ck)
                    .resume.saved);
  }

  // Same path, different seed: the snapshot must not be resumed.
  const auto other = smc::estimate_probability_runs(tg.system, prop, 2500,
                                                    0.05, 12, ex, nullptr, {},
                                                    ck);
  EXPECT_EQ(other.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_FALSE(other.resume.resumed);
  EXPECT_EQ(other.verdict, common::Verdict::kHolds);
}

}  // namespace
