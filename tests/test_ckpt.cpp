// Crash-safe checkpoint/resume (src/ckpt): format-layer validation, the
// torn-write / corruption suite (base snapshots AND QCKPD1 delta chains),
// and the headline end-to-end invariant — interrupt-at-any-point + resume
// produces bit-identical verdicts and statistics versus an uninterrupted
// run, for every snapshot provider: symbolic reachability, value iteration,
// statistical estimation, leads-to liveness, SPRT hypothesis testing,
// timed-game solving and priced (min-cost) search.
#include "ckpt/checkpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/crc32.h"
#include "ckpt/delta.h"
#include "ckpt/record_log.h"
#include "common/budget.h"
#include "common/fault.h"
#include "cora/priced.h"
#include "exec/executor.h"
#include "game/tiga.h"
#include "mc/liveness.h"
#include "mc/reachability.h"
#include "mdp/value_iteration.h"
#include "models/train_game.h"
#include "models/train_gate.h"
#include "smc/estimate.h"
#include "smc/sprt.h"

namespace {

using namespace quanta;
namespace fs = std::filesystem;

// ---- plumbing -------------------------------------------------------------

/// The CI fault matrix sets QUANTA_FAULT for the whole test process, which
/// arms the injector at startup. Disarm before any test runs: this suite's
/// bit-identity and corruption tests arm their own deterministic faults via
/// ScopedFault, and FaultInjection.EnvSpecDegradesGracefully (test_robustness)
/// replays the env spec against a checkpointed round-trip.
[[maybe_unused]] const bool kEnvFaultDisarmed = [] {
  common::FaultInjector::instance().disarm();
  return true;
}();

/// Fresh checkpoint path per test; removes leftovers from earlier runs,
/// including any QCKPD1 delta files of a previous chain.
std::string ckpt_path(const std::string& name) {
  std::string p = ::testing::TempDir() + "quanta_ckpt_" + name + ".qckpt";
  fs::remove(p);
  fs::remove(p + ".tmp");
  for (std::uint32_t seq = 1; seq <= 256; ++seq) {
    const std::string d = ckpt::delta_path(p, seq);
    fs::remove(d);
    fs::remove(d + ".tmp");
  }
  return p;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

/// RAII: whatever happens in a test, leave the process-wide injector clean.
struct ScopedFault {
  ScopedFault(const char* site, common::FaultKind kind, std::uint64_t after) {
    common::FaultInjector::instance().arm(site, kind, after);
  }
  ~ScopedFault() { common::FaultInjector::instance().disarm(); }
};

ckpt::Snapshot make_snapshot(std::uint64_t fingerprint) {
  ckpt::Snapshot snap;
  snap.provider = ckpt::Provider::kExplore;
  snap.fingerprint = fingerprint;
  ckpt::io::Writer a;
  a.u64(0xDEADBEEFCAFEF00Dull);
  a.u32(7);
  snap.add_section(1, std::move(a));
  ckpt::io::Writer b;
  for (int i = 0; i < 100; ++i) b.f64(i * 0.25);
  snap.add_section(2, std::move(b));
  return snap;
}

// ---- format layer ---------------------------------------------------------

TEST(CkptFormat, SaveLoadRoundTrip) {
  const std::string path = ckpt_path("roundtrip");
  const auto snap = make_snapshot(42);
  ASSERT_TRUE(ckpt::save(path, snap));

  ckpt::Snapshot back;
  ASSERT_EQ(ckpt::load(path, 42, ckpt::Provider::kExplore, &back),
            ckpt::LoadStatus::kOk);
  EXPECT_EQ(back.fingerprint, 42u);
  ASSERT_EQ(back.sections.size(), 2u);
  ASSERT_NE(back.find(1), nullptr);
  ASSERT_NE(back.find(2), nullptr);
  EXPECT_EQ(back.find(1)->payload, snap.sections[0].payload);
  EXPECT_EQ(back.find(2)->payload, snap.sections[1].payload);
  EXPECT_EQ(back.find(3), nullptr);
  // The temp file never survives a successful save.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(CkptFormat, MissingFileIsNoFile) {
  ckpt::Snapshot out;
  EXPECT_EQ(ckpt::load(ckpt_path("missing"), 1, ckpt::Provider::kExplore, &out),
            ckpt::LoadStatus::kNoFile);
}

TEST(CkptFormat, ValidationOrderAndMismatches) {
  const std::string path = ckpt_path("mismatch");
  ASSERT_TRUE(ckpt::save(path, make_snapshot(42)));
  ckpt::Snapshot out;
  EXPECT_EQ(ckpt::load(path, 43, ckpt::Provider::kExplore, &out),
            ckpt::LoadStatus::kBadFingerprint);
  EXPECT_EQ(ckpt::load(path, 42, ckpt::Provider::kValueIteration, &out),
            ckpt::LoadStatus::kBadProvider);
  // On failure the output snapshot is untouched.
  EXPECT_TRUE(out.sections.empty());
}

TEST(CkptFormat, BadMagicRejected) {
  const std::string path = ckpt_path("magic");
  ASSERT_TRUE(ckpt::save(path, make_snapshot(42)));
  auto bytes = read_file(path);
  bytes[0] ^= 0xFF;
  write_file(path, bytes);
  ckpt::Snapshot out;
  EXPECT_EQ(ckpt::load(path, 42, ckpt::Provider::kExplore, &out),
            ckpt::LoadStatus::kBadMagic);
}

TEST(CkptFormat, FutureFormatVersionRejected) {
  const std::string path = ckpt_path("version");
  ASSERT_TRUE(ckpt::save(path, make_snapshot(42)));
  auto bytes = read_file(path);
  // Patch the format-version field (offset 8) and re-seal the header CRC
  // (computed over the first 28 bytes, stored at offset 28) so only the
  // version check can object.
  bytes[8] = static_cast<std::uint8_t>(ckpt::kFormatVersion + 1);
  const std::uint32_t crc = ckpt::crc32(bytes.data(), 28);
  for (int i = 0; i < 4; ++i) {
    bytes[28 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  write_file(path, bytes);
  ckpt::Snapshot out;
  EXPECT_EQ(ckpt::load(path, 42, ckpt::Provider::kExplore, &out),
            ckpt::LoadStatus::kBadVersion);
}

TEST(CkptFormat, TruncationAndBitFlipsAreCorrupt) {
  const std::string path = ckpt_path("corrupt");
  ASSERT_TRUE(ckpt::save(path, make_snapshot(42)));
  const auto pristine = read_file(path);
  ckpt::Snapshot out;

  // Truncated mid-section.
  auto half = pristine;
  half.resize(pristine.size() / 2);
  write_file(path, half);
  EXPECT_EQ(ckpt::load(path, 42, ckpt::Provider::kExplore, &out),
            ckpt::LoadStatus::kCorrupt);

  // A single flipped byte anywhere past the magic must be caught by a CRC —
  // sample the header CRC itself, a section CRC and payload bytes.
  for (std::size_t pos : {std::size_t{28}, std::size_t{40},
                          pristine.size() / 2, pristine.size() - 1}) {
    auto flipped = pristine;
    flipped[pos] ^= 0x01;
    write_file(path, flipped);
    EXPECT_EQ(ckpt::load(path, 42, ckpt::Provider::kExplore, &out),
              ckpt::LoadStatus::kCorrupt)
        << "flipped byte at offset " << pos;
  }
}

TEST(CkptFormat, KilledWriteLeavesPreviousCheckpointIntact) {
  const std::string path = ckpt_path("torn");
  ASSERT_TRUE(ckpt::save(path, make_snapshot(42)));

  // The injected fault fires mid-write of the temp file — the moral
  // equivalent of a SIGKILL between the two halves of the payload.
  {
    ScopedFault fault("ckpt.file.write", common::FaultKind::kException, 1);
    ckpt::Snapshot replacement = make_snapshot(42);
    replacement.sections[0].payload.assign(64, 0xAB);
    EXPECT_FALSE(ckpt::save(path, replacement));
  }
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // The previous checkpoint still validates and still has the old payload.
  ckpt::Snapshot back;
  ASSERT_EQ(ckpt::load(path, 42, ckpt::Provider::kExplore, &back),
            ckpt::LoadStatus::kOk);
  EXPECT_EQ(back.find(1)->payload, make_snapshot(42).sections[0].payload);
}

TEST(CkptFormat, FirstSaveKilledLeavesNoFile) {
  const std::string path = ckpt_path("torn_first");
  ScopedFault fault("ckpt.file.write", common::FaultKind::kException, 1);
  EXPECT_FALSE(ckpt::save(path, make_snapshot(1)));
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// ---- provider 1: symbolic reachability (core::explore snapshot) -----------

mc::StatePredicate mutual_exclusion(const models::TrainGate& tg) {
  std::vector<int> cross_loc;
  for (int i = 0; i < tg.num_trains; ++i) {
    cross_loc.push_back(
        tg.system.process(tg.trains[static_cast<std::size_t>(i)])
            .location_index("Cross"));
  }
  auto trains = tg.trains;
  // labeled_pred: the closure stays fingerprint-distinguishable from other
  // opaque queries sharing a checkpoint path (canonical "opaque[...]").
  return common::labeled_pred<ta::SymState>(
      "train-gate-mutex", [trains, cross_loc](const ta::SymState& s) {
        int crossing = 0;
        for (std::size_t i = 0; i < trains.size(); ++i) {
          if (s.locs[static_cast<std::size_t>(trains[i])] ==
              static_cast<int>(cross_loc[i])) {
            ++crossing;
          }
        }
        return crossing <= 1;
      });
}

void expect_same_stats(const mc::SearchStats& got, const mc::SearchStats& want,
                       const char* what) {
  EXPECT_EQ(got.states_stored, want.states_stored) << what;
  EXPECT_EQ(got.states_explored, want.states_explored) << what;
  EXPECT_EQ(got.transitions, want.transitions) << what;
}

TEST(CkptReachability, InterruptAnywhereThenResumeIsBitIdentical) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);

  for (core::SearchOrder order : {core::SearchOrder::kBfs,
                                  core::SearchOrder::kDfs}) {
    mc::ReachOptions base;
    base.order = order;
    const auto reference = mc::check_invariant(tg.system, safe, base);
    ASSERT_TRUE(reference.holds());
    ASSERT_GT(reference.stats.states_stored, 100u);

    // Interrupt at several depths: near the start, mid-flight, and deep in
    // the search. The fault forces the deadline at the K-th intern; the
    // budget poll then stops the search at the next stride boundary.
    for (std::size_t k : {std::size_t{3}, reference.stats.states_stored / 4,
                          reference.stats.states_stored / 2}) {
      const std::string path = ckpt_path(
          "mc_resume_" + std::to_string(static_cast<int>(order)) + "_" +
          std::to_string(k));
      mc::ReachOptions opts = base;
      opts.checkpoint.path = path;
      opts.limits.budget = common::Budget::deadline_after(std::chrono::hours(1));
      mc::InvariantResult interrupted;
      {
        ScopedFault fault("core.state_store.intern",
                          common::FaultKind::kDeadline, k);
        interrupted = mc::check_invariant(tg.system, safe, opts);
      }
      ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown) << "k=" << k;
      ASSERT_EQ(interrupted.stop(), common::StopReason::kTimeLimit);
      ASSERT_TRUE(interrupted.resume.saved) << "k=" << k;
      ASSERT_LT(interrupted.stats.states_explored,
                reference.stats.states_explored);

      // Resume with the fault gone: the verdict and every counter must be
      // exactly what the uninterrupted run reported.
      const auto resumed = mc::check_invariant(tg.system, safe, opts);
      EXPECT_EQ(resumed.resume.load, ckpt::LoadStatus::kOk) << "k=" << k;
      EXPECT_TRUE(resumed.resume.resumed);
      EXPECT_TRUE(resumed.holds()) << "k=" << k;
      expect_same_stats(resumed.stats, reference.stats, "resumed invariant");
    }
  }
}

TEST(CkptReachability, StateLimitStopIsResumable) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const auto reference = mc::check_invariant(tg.system, safe);
  ASSERT_TRUE(reference.holds());

  const std::string path = ckpt_path("mc_statelimit");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = reference.stats.states_stored / 3;
  const auto truncated = mc::check_invariant(tg.system, safe, opts);
  ASSERT_EQ(truncated.verdict, common::Verdict::kUnknown);
  ASSERT_EQ(truncated.stop(), common::StopReason::kStateLimit);
  ASSERT_TRUE(truncated.resume.saved);

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto resumed = mc::check_invariant(tg.system, safe, full);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.holds());
  expect_same_stats(resumed.stats, reference.stats, "after state limit");
}

TEST(CkptReachability, WitnessSearchResumesToIdenticalTrace) {
  auto tg = models::make_train_gate(2);
  const auto goal = mc::loc_pred(tg.system, "Train(0)", "Stop");
  const auto reference = mc::reachable(tg.system, goal);
  ASSERT_TRUE(reference.reachable());

  // Interrupt via the state bound (checked every pop, so it trips before the
  // witness even on models too small for the amortized deadline poll).
  const std::string path = ckpt_path("mc_witness");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = reference.stats.states_stored / 2;
  const auto interrupted = mc::reachable(tg.system, goal, opts);
  ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown);
  ASSERT_EQ(interrupted.stop(), common::StopReason::kStateLimit);
  ASSERT_TRUE(interrupted.resume.saved);

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto resumed = mc::reachable(tg.system, goal, full);
  EXPECT_TRUE(resumed.resume.resumed);
  ASSERT_TRUE(resumed.reachable());
  expect_same_stats(resumed.stats, reference.stats, "witness search");
  EXPECT_EQ(resumed.trace, reference.trace);
  EXPECT_EQ(resumed.witness, reference.witness);
}

TEST(CkptReachability, PeriodicSnapshotsSurviveAnUnsavedStop) {
  // save_on_stop off: only the periodic snapshots exist — the SIGKILL story,
  // where the stop itself never gets to write anything.
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const auto reference = mc::check_invariant(tg.system, safe);

  const std::string path = ckpt_path("mc_periodic");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.checkpoint.interval = 50;
  opts.checkpoint.save_on_stop = false;
  opts.limits.max_states = reference.stats.states_stored / 2;
  const auto truncated = mc::check_invariant(tg.system, safe, opts);
  ASSERT_EQ(truncated.verdict, common::Verdict::kUnknown);
  ASSERT_TRUE(truncated.resume.saved);  // periodic, not stop-triggered

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto resumed = mc::check_invariant(tg.system, safe, full);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.holds());
  expect_same_stats(resumed.stats, reference.stats, "periodic resume");
}

TEST(CkptReachability, CorruptCheckpointDegradesToFreshStart) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const auto reference = mc::check_invariant(tg.system, safe);

  const std::string path = ckpt_path("mc_corrupt");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = reference.stats.states_stored / 2;
  ASSERT_TRUE(mc::check_invariant(tg.system, safe, opts).resume.saved);
  const auto pristine = read_file(path);

  struct Case {
    const char* name;
    std::vector<std::uint8_t> bytes;
    ckpt::LoadStatus want;
  };
  auto flipped = pristine;
  flipped[pristine.size() / 2] ^= 0x20;
  auto crc_flip = pristine;
  crc_flip[28] ^= 0x01;  // header CRC byte
  auto truncated = pristine;
  truncated.resize(pristine.size() - 7);
  const std::vector<Case> cases = {
      {"bit flip mid-payload", flipped, ckpt::LoadStatus::kCorrupt},
      {"flipped CRC byte", crc_flip, ckpt::LoadStatus::kCorrupt},
      {"truncated tail", truncated, ckpt::LoadStatus::kCorrupt},
  };
  for (const Case& c : cases) {
    write_file(path, c.bytes);
    mc::ReachOptions full;
    full.checkpoint.path = path;
    const auto r = mc::check_invariant(tg.system, safe, full);
    EXPECT_EQ(r.resume.load, c.want) << c.name;
    EXPECT_FALSE(r.resume.resumed) << c.name;
    // Degraded to a fresh start — and the fresh start is still right.
    EXPECT_TRUE(r.holds()) << c.name;
    expect_same_stats(r.stats, reference.stats, c.name);
  }
}

TEST(CkptReachability, StructuralFingerprintSeparatesQueriesSharingAPath) {
  // The retired property_tag knob is replaced by the canonical AST of the
  // query predicate itself: queries that differ structurally refuse each
  // other's snapshots with no caller-side tagging.
  auto tg = models::make_train_gate(2);
  const auto goal0 = mc::loc_pred(tg.system, "Train(0)", "Stop");
  const auto goal1 = mc::loc_pred(tg.system, "Train(1)", "Stop");
  ASSERT_NE(goal0.canonical(), goal1.canonical());
  ASSERT_TRUE(goal0.structural());

  const std::string path = ckpt_path("mc_ast");
  const auto reference = mc::reachable(tg.system, goal0);
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = reference.stats.states_stored / 2;
  ASSERT_TRUE(mc::reachable(tg.system, goal0, opts).resume.saved);

  // Same path, structurally different goal: refused, fresh run correct.
  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto other = mc::reachable(tg.system, goal1, full);
  EXPECT_EQ(other.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_FALSE(other.resume.resumed);

  // A composed AST ("not(loc(...))") is also distinct from its leaf.
  const auto composed = mc::check_invariant(tg.system, mc::pred_not(goal0), full);
  EXPECT_EQ(composed.resume.load, ckpt::LoadStatus::kBadFingerprint);

  // And two labeled closures are told apart by their labels alone — the
  // drop-in migration for callers that used property_tag.
  const auto fn = [](const ta::SymState&) { return true; };
  mc::ReachOptions tagged;
  tagged.checkpoint.path = ckpt_path("mc_ast_label");
  tagged.limits.max_states = 10;
  ASSERT_TRUE(mc::check_invariant(
                  tg.system,
                  common::labeled_pred<ta::SymState>("query-a", fn), tagged)
                  .resume.saved);
  mc::ReachOptions tagged_full;
  tagged_full.checkpoint.path = tagged.checkpoint.path;
  const auto relabeled = mc::check_invariant(
      tg.system, common::labeled_pred<ta::SymState>("query-b", fn),
      tagged_full);
  EXPECT_EQ(relabeled.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_TRUE(relabeled.holds());
}

TEST(CkptReachability, DifferentModelRefusesTheSnapshot) {
  auto tg2 = models::make_train_gate(2);
  auto tg3 = models::make_train_gate(3);
  const std::string path = ckpt_path("mc_model");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = 40;
  ASSERT_TRUE(
      mc::check_invariant(tg3.system, mutual_exclusion(tg3), opts).resume.saved);

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto r = mc::check_invariant(tg2.system, mutual_exclusion(tg2), full);
  EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_TRUE(r.holds());
}

TEST(CkptReachability, FailedSnapshotWriteNeverAffectsTheVerdict) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const std::string path = ckpt_path("mc_failed_write");

  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = 60;
  mc::InvariantResult truncated;
  {
    ScopedFault fault("ckpt.file.write", common::FaultKind::kException, 1);
    truncated = mc::check_invariant(tg.system, safe, opts);
  }
  EXPECT_EQ(truncated.verdict, common::Verdict::kUnknown);
  EXPECT_EQ(truncated.stop(), common::StopReason::kStateLimit);
  EXPECT_FALSE(truncated.resume.saved);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // Next invocation finds nothing and simply starts fresh.
  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto r = mc::check_invariant(tg.system, safe, full);
  EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kNoFile);
  EXPECT_TRUE(r.holds());
}

// ---- provider 2: value iteration ------------------------------------------

/// A slow-converging chain: from state i move forward with p = 0.05 or stay.
/// Without precomputation the values crawl toward 1, giving value iteration
/// hundreds of sweeps to interrupt.
mdp::Mdp slow_chain(std::int32_t n) {
  mdp::Mdp m;
  for (std::int32_t i = 0; i < n; ++i) {
    m.add_choice(i, {{i + 1, 0.05}, {i, 0.95}});
  }
  m.add_choice(n, {{n, 1.0}});
  m.set_initial(0);
  m.freeze();
  return m;
}

mdp::StateSet chain_goal(const mdp::Mdp& m) {
  mdp::StateSet goal(static_cast<std::size_t>(m.num_states()), false);
  goal[static_cast<std::size_t>(m.num_states() - 1)] = true;
  return goal;
}

TEST(CkptValueIteration, InterruptedSweepsResumeBitIdentically) {
  const auto m = slow_chain(20);
  const auto goal = chain_goal(m);
  mdp::ViOptions base;
  base.use_precomputation = false;  // keep the fixpoint genuinely iterative
  const auto reference =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, base);
  ASSERT_TRUE(reference.converged);
  ASSERT_GT(reference.iterations, 100);

  for (std::uint64_t k : {std::uint64_t{2}, std::uint64_t{60},
                          static_cast<std::uint64_t>(reference.iterations) - 5}) {
    const std::string path = ckpt_path("vi_resume_" + std::to_string(k));
    mdp::ViOptions opts = base;
    opts.checkpoint.path = path;
    opts.budget = common::Budget::deadline_after(std::chrono::hours(1));
    mdp::ViResult interrupted;
    {
      ScopedFault fault("mdp.value_iteration.sweep",
                        common::FaultKind::kDeadline, k);
      interrupted =
          mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts);
    }
    ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown) << "k=" << k;
    ASSERT_EQ(interrupted.stop, common::StopReason::kTimeLimit);
    ASSERT_TRUE(interrupted.resume.saved);
    ASSERT_LT(interrupted.iterations, reference.iterations);

    mdp::ViOptions resume = base;
    resume.checkpoint.path = path;
    const auto resumed =
        mdp::reachability_probability(m, goal, mdp::Objective::kMax, resume);
    EXPECT_TRUE(resumed.resume.resumed) << "k=" << k;
    EXPECT_TRUE(resumed.converged);
    EXPECT_EQ(resumed.iterations, reference.iterations) << "k=" << k;
    ASSERT_EQ(resumed.values.size(), reference.values.size());
    for (std::size_t i = 0; i < reference.values.size(); ++i) {
      EXPECT_EQ(resumed.values[i], reference.values[i])
          << "value " << i << " diverged after resume at sweep " << k;
    }
  }
}

TEST(CkptValueIteration, IterationBoundStopIsResumable) {
  const auto m = slow_chain(20);
  const auto goal = chain_goal(m);
  mdp::ViOptions base;
  base.use_precomputation = false;
  const auto reference =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, base);

  const std::string path = ckpt_path("vi_bound");
  mdp::ViOptions opts = base;
  opts.checkpoint.path = path;
  opts.max_iterations = reference.iterations / 2;
  const auto truncated =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts);
  ASSERT_FALSE(truncated.converged);
  ASSERT_EQ(truncated.stop, common::StopReason::kStateLimit);
  ASSERT_TRUE(truncated.resume.saved);

  mdp::ViOptions resume = base;
  resume.checkpoint.path = path;
  const auto resumed =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, resume);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.converged);
  EXPECT_EQ(resumed.iterations, reference.iterations);
  EXPECT_EQ(resumed.at_initial(m), reference.at_initial(m));
}

TEST(CkptValueIteration, PeriodicSnapshotsCoverSigkill) {
  const auto m = slow_chain(20);
  const auto goal = chain_goal(m);
  mdp::ViOptions base;
  base.use_precomputation = false;
  const auto reference =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, base);

  const std::string path = ckpt_path("vi_periodic");
  mdp::ViOptions opts = base;
  opts.checkpoint.path = path;
  opts.checkpoint.interval = 25;
  opts.checkpoint.save_on_stop = false;  // only periodic snapshots exist
  opts.max_iterations = 120;
  const auto truncated =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts);
  ASSERT_FALSE(truncated.converged);
  ASSERT_TRUE(truncated.resume.saved);

  mdp::ViOptions resume = base;
  resume.checkpoint.path = path;
  const auto resumed =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, resume);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.converged);
  EXPECT_EQ(resumed.iterations, reference.iterations);
  for (std::size_t i = 0; i < reference.values.size(); ++i) {
    EXPECT_EQ(resumed.values[i], reference.values[i]) << "value " << i;
  }
}

TEST(CkptValueIteration, WrongMdpOrEpsilonRefusesTheSnapshot) {
  const auto m = slow_chain(20);
  const auto goal = chain_goal(m);
  const std::string path = ckpt_path("vi_fingerprint");
  mdp::ViOptions opts;
  opts.use_precomputation = false;
  opts.checkpoint.path = path;
  opts.max_iterations = 40;
  ASSERT_TRUE(mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts)
                  .resume.saved);

  // Different epsilon => different fingerprint => fresh start.
  mdp::ViOptions other = opts;
  other.max_iterations = 1'000'000;
  other.epsilon = 1e-6;
  const auto r =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, other);
  EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_FALSE(r.resume.resumed);
  EXPECT_TRUE(r.converged);

  // Different MDP shape => fresh start as well.
  const auto m2 = slow_chain(21);
  const auto goal2 = chain_goal(m2);
  mdp::ViOptions full = opts;
  full.max_iterations = 1'000'000;
  const auto r2 =
      mdp::reachability_probability(m2, goal2, mdp::Objective::kMax, full);
  EXPECT_EQ(r2.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_TRUE(r2.converged);
}

// ---- provider 3: statistical estimation -----------------------------------

smc::TimeBoundedReach train_crosses(const models::TrainGate& tg,
                                    double bound) {
  const int p = tg.trains[0];
  const int cross = tg.system.process(p).location_index("Cross");
  smc::TimeBoundedReach prop;
  prop.time_bound = bound;
  prop.goal = [p, cross](const ta::ConcreteState& s) {
    return s.locs[static_cast<std::size_t>(p)] == cross;
  };
  return prop;
}

TEST(CkptStatistical, CheckpointingPathMatchesThePlainPath) {
  auto tg = models::make_train_gate(2);
  const auto prop = train_crosses(tg, 30.0);
  exec::Executor ex(4);
  const auto reference =
      smc::estimate_probability_runs(tg.system, prop, 2500, 0.05, 11, ex);
  ASSERT_EQ(reference.verdict, common::Verdict::kHolds);

  ckpt::Options ck;
  ck.path = ckpt_path("smc_plain");
  const auto batched = smc::estimate_probability_runs(
      tg.system, prop, 2500, 0.05, 11, ex, nullptr, {}, ck);
  EXPECT_EQ(batched.verdict, common::Verdict::kHolds);
  EXPECT_EQ(batched.hits, reference.hits);
  EXPECT_EQ(batched.p_hat, reference.p_hat);
  EXPECT_EQ(batched.ci_low, reference.ci_low);
  EXPECT_EQ(batched.ci_high, reference.ci_high);
  // A completed estimate leaves no checkpoint behind to confuse reruns with.
  EXPECT_FALSE(batched.resume.saved);
}

TEST(CkptStatistical, InterruptedSampleResumesToIdenticalEstimate) {
  auto tg = models::make_train_gate(2);
  const auto prop = train_crosses(tg, 30.0);
  exec::Executor ex(4);
  const auto reference =
      smc::estimate_probability_runs(tg.system, prop, 2500, 0.05, 11, ex);

  const std::string path = ckpt_path("smc_resume");
  ckpt::Options ck;
  ck.path = path;
  const auto budget = common::Budget::deadline_after(std::chrono::hours(1));
  smc::Estimate interrupted;
  {
    // Force the deadline at the second batch boundary: exactly one batch
    // (1024 runs) completes — a deterministic, prefix-contiguous partial.
    ScopedFault fault("smc.estimate.batch", common::FaultKind::kDeadline, 2);
    interrupted = smc::estimate_probability_runs(tg.system, prop, 2500, 0.05,
                                                 11, ex, nullptr, budget, ck);
  }
  ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown);
  ASSERT_EQ(interrupted.stop, common::StopReason::kTimeLimit);
  ASSERT_EQ(interrupted.completed, 1024u);
  ASSERT_TRUE(interrupted.resume.saved);

  // Resume on a different worker count — still bit-identical, because run i
  // is a pure function of (seed, i) and the tally is a prefix.
  exec::Executor ex2(2);
  const auto resumed = smc::estimate_probability_runs(tg.system, prop, 2500,
                                                      0.05, 11, ex2, nullptr,
                                                      {}, ck);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_EQ(resumed.verdict, common::Verdict::kHolds);
  EXPECT_EQ(resumed.completed, 2500u);
  EXPECT_EQ(resumed.hits, reference.hits);
  EXPECT_EQ(resumed.p_hat, reference.p_hat);
  EXPECT_EQ(resumed.ci_low, reference.ci_low);
  EXPECT_EQ(resumed.ci_high, reference.ci_high);
}

TEST(CkptStatistical, MidBatchCancellationDiscardsThePartialBatch) {
  auto tg = models::make_train_gate(2);
  const auto prop = train_crosses(tg, 30.0);
  exec::Executor ex(4);

  const std::string path = ckpt_path("smc_midbatch");
  ckpt::Options ck;
  ck.path = path;
  common::CancelToken cancel;
  cancel.cancel();  // watchdog fires before the first batch finishes
  common::Budget budget;
  budget.with_cancel(&cancel);
  const auto interrupted = smc::estimate_probability_runs(
      tg.system, prop, 2500, 0.05, 11, ex, nullptr, budget, ck);
  ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown);
  EXPECT_EQ(interrupted.stop, common::StopReason::kCancelled);
  // Nothing torn: the tally is a whole number of batches (here: zero).
  EXPECT_EQ(interrupted.completed % 1024, 0u);

  cancel.reset();
  const auto resumed = smc::estimate_probability_runs(tg.system, prop, 2500,
                                                      0.05, 11, ex, nullptr,
                                                      {}, ck);
  const auto reference =
      smc::estimate_probability_runs(tg.system, prop, 2500, 0.05, 11, ex);
  EXPECT_EQ(resumed.verdict, common::Verdict::kHolds);
  EXPECT_EQ(resumed.hits, reference.hits);
  EXPECT_EQ(resumed.p_hat, reference.p_hat);
}

// ---- QCKPD1 delta chains ---------------------------------------------------

// QCKPD1 header layout (ckpt/delta.h): magic 8B, version u32 @8, provider
// u32 @12, fingerprint u64 @16, parent chain id u64 @24, seq u32 @32,
// section count u32 @36, header crc32 u32 @40 (over the first 40 bytes).
constexpr std::size_t kDeltaParentOffset = 24;
constexpr std::size_t kDeltaCrcOffset = 40;

/// Re-seals a delta header CRC after a deliberate semantic patch, so only
/// the patched field — not the CRC — can cause the refusal under test.
void reseal_delta_header(std::vector<std::uint8_t>* bytes) {
  const std::uint32_t crc = ckpt::crc32(bytes->data(), kDeltaCrcOffset);
  for (int i = 0; i < 4; ++i) {
    (*bytes)[kDeltaCrcOffset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

/// A truncated train-gate run whose periodic snapshots build a base + delta
/// chain at `path`. Returns the uninterrupted reference for comparison.
mc::InvariantResult build_delta_chain(const models::TrainGate& tg,
                                      const mc::StatePredicate& safe,
                                      const std::string& path) {
  const auto reference = mc::check_invariant(tg.system, safe);
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.checkpoint.interval = 20;
  opts.limits.max_states = reference.stats.states_stored / 2;
  const auto truncated = mc::check_invariant(tg.system, safe, opts);
  EXPECT_EQ(truncated.verdict, common::Verdict::kUnknown);
  EXPECT_TRUE(truncated.resume.saved);
  EXPECT_TRUE(fs::exists(path)) << "base snapshot missing";
  EXPECT_TRUE(fs::exists(ckpt::delta_path(path, 1)))
      << "interval 20 over " << opts.limits.max_states
      << " states wrote no delta";
  return reference;
}

TEST(CkptDeltaChain, PeriodicDeltasResumeBitIdentically) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const std::string path = ckpt_path("chain_resume");
  const auto reference = build_delta_chain(tg, safe, path);

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto resumed = mc::check_invariant(tg.system, safe, full);
  EXPECT_EQ(resumed.resume.load, ckpt::LoadStatus::kOk);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.holds());
  expect_same_stats(resumed.stats, reference.stats, "delta-chain resume");
}

TEST(CkptDeltaChain, FullSnapshotModeWritesNoDeltas) {
  // max_deltas = 0: every periodic snapshot rewrites the base, the legacy
  // (pre-delta) behaviour.
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const auto reference = mc::check_invariant(tg.system, safe);

  const std::string path = ckpt_path("chain_fullmode");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.checkpoint.interval = 20;
  opts.checkpoint.max_deltas = 0;
  opts.limits.max_states = reference.stats.states_stored / 2;
  ASSERT_TRUE(mc::check_invariant(tg.system, safe, opts).resume.saved);
  EXPECT_FALSE(fs::exists(ckpt::delta_path(path, 1)));

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto resumed = mc::check_invariant(tg.system, safe, full);
  EXPECT_TRUE(resumed.resume.resumed);
  expect_same_stats(resumed.stats, reference.stats, "full-snapshot resume");
}

TEST(CkptDeltaChain, MissingBaseFileStartsFresh) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const std::string path = ckpt_path("chain_nobase");
  const auto reference = build_delta_chain(tg, safe, path);

  // Deltas without their base are worthless: fresh start, still correct.
  fs::remove(path);
  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto r = mc::check_invariant(tg.system, safe, full);
  EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kNoFile);
  EXPECT_FALSE(r.resume.resumed);
  EXPECT_TRUE(r.holds());
  expect_same_stats(r.stats, reference.stats, "fresh after missing base");
}

TEST(CkptDeltaChain, DeltaAgainstMismatchedBaseStartsFresh) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const std::string path = ckpt_path("chain_badparent");
  const auto reference = build_delta_chain(tg, safe, path);

  // Patch the delta's parent chain id and re-seal the header CRC: the delta
  // now claims descent from a different base. The link check must refuse it
  // and poison the whole chain.
  const std::string d1 = ckpt::delta_path(path, 1);
  auto bytes = read_file(d1);
  bytes[kDeltaParentOffset] ^= 0xFF;
  reseal_delta_header(&bytes);
  write_file(d1, bytes);

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto r = mc::check_invariant(tg.system, safe, full);
  EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kCorrupt);
  EXPECT_FALSE(r.resume.resumed);
  EXPECT_TRUE(r.holds());
  expect_same_stats(r.stats, reference.stats, "fresh after parent mismatch");
}

TEST(CkptDeltaChain, BitFlipInsideADeltaStartsFresh) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const std::string path = ckpt_path("chain_bitflip");
  const auto reference = build_delta_chain(tg, safe, path);

  const std::string d1 = ckpt::delta_path(path, 1);
  const auto pristine = read_file(d1);
  ASSERT_GT(pristine.size(), std::size_t{48});

  // A flip in the header CRC region and one deep in a section payload both
  // poison the chain; a truncated tail (a torn non-atomic write, the
  // on-disk shape of a SIGKILL mid-delta on filesystems without atomic
  // rename) is refused the same way.
  struct Case {
    const char* name;
    std::vector<std::uint8_t> bytes;
  };
  auto header_flip = pristine;
  header_flip[kDeltaCrcOffset] ^= 0x01;
  auto payload_flip = pristine;
  payload_flip[pristine.size() - 3] ^= 0x10;
  auto torn = pristine;
  torn.resize(pristine.size() - 5);
  const std::vector<Case> cases = {{"header CRC flip", header_flip},
                                   {"payload bit flip", payload_flip},
                                   {"torn tail", torn}};
  for (const Case& c : cases) {
    write_file(d1, c.bytes);
    mc::ReachOptions full;
    full.checkpoint.path = path;
    const auto r = mc::check_invariant(tg.system, safe, full);
    EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kCorrupt) << c.name;
    EXPECT_FALSE(r.resume.resumed) << c.name;
    EXPECT_TRUE(r.holds()) << c.name;
    expect_same_stats(r.stats, reference.stats, c.name);
  }
}

TEST(CkptDeltaChain, KilledDeltaWriteEndsTheChainAtThePreviousLink) {
  // save_delta writes <path>.dN.tmp and renames: a kill mid-write leaves at
  // most a stray temp, never a torn delta, so the chain simply ends at the
  // previous validated link and the resume replays that prefix.
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const auto reference = mc::check_invariant(tg.system, safe);

  const std::string path = ckpt_path("chain_torn_write");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.checkpoint.interval = 20;
  opts.limits.max_states = reference.stats.states_stored / 2;
  {
    ScopedFault fault("ckpt.delta.write", common::FaultKind::kException, 2);
    ASSERT_TRUE(mc::check_invariant(tg.system, safe, opts).resume.saved);
  }
  EXPECT_FALSE(fs::exists(ckpt::delta_path(path, 1) + ".tmp"));
  EXPECT_FALSE(fs::exists(ckpt::delta_path(path, 2) + ".tmp"));

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto resumed = mc::check_invariant(tg.system, safe, full);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.holds());
  expect_same_stats(resumed.stats, reference.stats, "resume past torn write");
}

TEST(CkptDeltaChain, FaultDuringDeltaApplyStartsFresh) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const std::string path = ckpt_path("chain_apply_fault");
  const auto reference = build_delta_chain(tg, safe, path);

  // An I/O failure while reading a delta (injected at ckpt.delta.apply)
  // poisons the chain exactly like corruption: fresh start, correct result.
  mc::ReachOptions full;
  full.checkpoint.path = path;
  mc::InvariantResult r;
  {
    ScopedFault fault("ckpt.delta.apply", common::FaultKind::kException, 1);
    r = mc::check_invariant(tg.system, safe, full);
  }
  EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kIoError);
  EXPECT_FALSE(r.resume.resumed);
  EXPECT_TRUE(r.holds());
  expect_same_stats(r.stats, reference.stats, "fresh after apply fault");
}

// ---- QUANTA_CKPT_INTERVAL --------------------------------------------------

/// Scoped environment override; restores the previous value on destruction.
struct ScopedEnv {
  ScopedEnv(const char* key, const char* value) : key_(key) {
    if (const char* old = std::getenv(key)) {
      saved_ = old;
      had_ = true;
    }
    if (value != nullptr) {
      ::setenv(key, value, 1);
    } else {
      ::unsetenv(key);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(key_, saved_.c_str(), 1);
    } else {
      ::unsetenv(key_);
    }
  }
  const char* key_;
  std::string saved_;
  bool had_ = false;
};

TEST(CkptInterval, EnvOverrideParsesStrictly) {
  // Mirrors the QUANTA_JOBS rules: the whole string must be a positive
  // decimal; anything else falls back to the programmatic interval.
  ckpt::Options opts;
  opts.interval = 7;

  {
    ScopedEnv env("QUANTA_CKPT_INTERVAL", nullptr);
    EXPECT_EQ(opts.effective_interval(), 7u) << "unset";
  }
  for (const char* valid : {"1", "3", "250"}) {
    ScopedEnv env("QUANTA_CKPT_INTERVAL", valid);
    EXPECT_EQ(opts.effective_interval(),
              static_cast<std::uint64_t>(std::atoll(valid)))
        << valid;
  }
  for (const char* garbage :
       {"", "abc", "12abc", "1e3", "0", "-5", "0x10", "  ",
        "18446744073709551616" /* 2^64: overflow */}) {
    ScopedEnv env("QUANTA_CKPT_INTERVAL", garbage);
    EXPECT_EQ(opts.effective_interval(), 7u) << "\"" << garbage << "\"";
  }
  {
    // In range but above the clamp: pinned to kMaxInterval, not rejected.
    ScopedEnv env("QUANTA_CKPT_INTERVAL", "999999999999999");
    EXPECT_EQ(opts.effective_interval(), ckpt::Options::kMaxInterval);
  }
  {
    ScopedEnv env("QUANTA_CKPT_INTERVAL", "1000000000000");
    EXPECT_EQ(opts.effective_interval(), ckpt::Options::kMaxInterval);
  }
}

TEST(CkptInterval, EnvOverrideDrivesPeriodicSnapshots) {
  // End to end: interval 0 + save_on_stop off writes nothing — unless the
  // environment supplies the cadence.
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const auto reference = mc::check_invariant(tg.system, safe);

  const std::string path = ckpt_path("env_interval");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.checkpoint.interval = 0;
  opts.checkpoint.save_on_stop = false;
  opts.limits.max_states = reference.stats.states_stored / 2;
  {
    ScopedEnv env("QUANTA_CKPT_INTERVAL", "not-a-number");
    EXPECT_FALSE(mc::check_invariant(tg.system, safe, opts).resume.saved);
  }
  {
    ScopedEnv env("QUANTA_CKPT_INTERVAL", "40");
    ASSERT_TRUE(mc::check_invariant(tg.system, safe, opts).resume.saved);
  }
  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto resumed = mc::check_invariant(tg.system, safe, full);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.holds());
  expect_same_stats(resumed.stats, reference.stats, "env-driven periodic");
}

// ---- provider 4: leads-to liveness -----------------------------------------

TEST(CkptLiveness, InterruptAnywhereThenResumeIsBitIdentical) {
  auto tg = models::make_train_gate(3);
  const auto phi = mc::loc_pred(tg.system, "Train(0)", "Appr");
  const auto psi = mc::loc_pred(tg.system, "Train(0)", "Cross");
  const auto reference = mc::check_leads_to(tg.system, phi, psi);
  ASSERT_TRUE(reference.holds()) << reference.reason;
  ASSERT_GT(reference.stats.states_stored, 100u);

  for (std::size_t k : {std::size_t{3}, reference.stats.states_stored / 4,
                        reference.stats.states_stored / 2}) {
    const std::string path = ckpt_path("live_resume_" + std::to_string(k));
    mc::ReachOptions opts;
    opts.checkpoint.path = path;
    opts.checkpoint.interval = 30;
    opts.limits.budget = common::Budget::deadline_after(std::chrono::hours(1));
    mc::LeadsToResult interrupted;
    {
      ScopedFault fault("core.state_store.intern",
                        common::FaultKind::kDeadline, k);
      interrupted = mc::check_leads_to(tg.system, phi, psi, opts);
    }
    ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown) << "k=" << k;
    ASSERT_EQ(interrupted.stop(), common::StopReason::kTimeLimit);
    ASSERT_TRUE(interrupted.resume.saved) << "k=" << k;

    const auto resumed = mc::check_leads_to(tg.system, phi, psi, opts);
    EXPECT_EQ(resumed.resume.load, ckpt::LoadStatus::kOk) << "k=" << k;
    EXPECT_TRUE(resumed.resume.resumed);
    EXPECT_TRUE(resumed.holds()) << "k=" << k << ": " << resumed.reason;
    expect_same_stats(resumed.stats, reference.stats, "resumed leads-to");
  }
}

TEST(CkptLiveness, CompletedGraphSnapshotSkipsTheRebuild) {
  // Once the zone graph completes, the final whole-graph snapshot (empty
  // worklist) lets a crash during the violation search resume without
  // re-expanding anything.
  auto tg = models::make_train_gate(2);
  const auto phi = mc::loc_pred(tg.system, "Train(0)", "Appr");
  const auto psi = mc::loc_pred(tg.system, "Train(0)", "Cross");
  const auto reference = mc::check_leads_to(tg.system, phi, psi);
  ASSERT_TRUE(reference.holds());

  const std::string path = ckpt_path("live_complete");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.checkpoint.interval = 30;
  const auto first = mc::check_leads_to(tg.system, phi, psi, opts);
  ASSERT_TRUE(first.holds());
  ASSERT_TRUE(first.resume.saved);

  const auto again = mc::check_leads_to(tg.system, phi, psi, opts);
  EXPECT_EQ(again.resume.load, ckpt::LoadStatus::kOk);
  EXPECT_TRUE(again.resume.resumed);
  EXPECT_TRUE(again.holds());
  expect_same_stats(again.stats, reference.stats, "complete-graph resume");
}

TEST(CkptLiveness, EventuallyIsResumableAndDistinctFromLeadsTo) {
  auto tg = models::make_train_gate(2);
  const auto psi = mc::loc_pred(tg.system, "Train(0)", "Cross");
  const auto reference = mc::check_eventually(tg.system, psi);
  // (Not necessarily kHolds — a train may idle forever; the verdict just
  // has to be reproduced bit-identically by the resumed run.)

  const std::string path = ckpt_path("live_eventually");
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = reference.stats.states_stored / 2;
  const auto truncated = mc::check_eventually(tg.system, psi, opts);
  ASSERT_EQ(truncated.verdict, common::Verdict::kUnknown);
  ASSERT_TRUE(truncated.resume.saved);

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto resumed = mc::check_eventually(tg.system, psi, full);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_EQ(resumed.verdict, reference.verdict);
  expect_same_stats(resumed.stats, reference.stats, "resumed eventually");

  // A leads-to with a different phi must refuse the eventually snapshot.
  const auto other = mc::check_leads_to(
      tg.system, mc::loc_pred(tg.system, "Train(1)", "Appr"), psi, full);
  EXPECT_EQ(other.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_FALSE(other.resume.resumed);
}

// ---- provider 5: SPRT hypothesis testing -----------------------------------

/// One process, exponential rate `rate` in Init, single edge to Done; the
/// first-hit time is Exp(rate), so P(hit <= T) = 1 - exp(-rate*T).
ta::System exp_system(double rate) {
  ta::System sys;
  ta::ProcessBuilder pb("P");
  int init = pb.location("Init", {}, false, false, rate);
  int done = pb.location("Done");
  pb.edge(init, done, {}, -1, ta::SyncKind::kNone, {}, nullptr, nullptr,
          "fire");
  sys.add_process(pb.build());
  return sys;
}

smc::TimeBoundedReach exp_done_within(double bound) {
  smc::TimeBoundedReach prop;
  prop.time_bound = bound;
  prop.goal = common::labeled_pred<ta::ConcreteState>(
      "p-done", [](const ta::ConcreteState& s) { return s.locs[0] == 1; });
  return prop;
}

TEST(CkptSprt, StaleMidWalkSnapshotResumesToTheIdenticalVerdict) {
  // p = 1 - exp(-1) ~ 0.632 against theta 0.55 +- 0.02: a few hundred runs
  // to accept H0. The periodic snapshots leave a mid-walk position behind
  // (a verdict stops the test between intervals); resuming from that stale
  // position must replay the identical LLR walk.
  ta::System sys = exp_system(0.5);
  const auto prop = exp_done_within(2.0);
  exec::Executor ex(4);
  smc::SprtOptions opts;
  opts.indifference = 0.02;
  const auto reference = smc::sprt_test(sys, prop, 0.55, opts, 7, ex);
  ASSERT_EQ(reference.verdict, smc::SprtVerdict::kAccepted);
  ASSERT_GT(reference.runs, 60u);

  smc::SprtOptions ck = opts;
  ck.checkpoint.path = ckpt_path("sprt_stale");
  ck.checkpoint.interval = 40;
  const auto first = smc::sprt_test(sys, prop, 0.55, ck, 7, ex);
  EXPECT_EQ(first.verdict, reference.verdict);
  EXPECT_EQ(first.runs, reference.runs);
  EXPECT_EQ(first.hits, reference.hits);
  ASSERT_TRUE(first.resume.saved);

  // Different worker count on resume: run i is a pure function of (seed, i)
  // and the walk consumes runs in order, so nothing may change.
  exec::Executor ex2(2);
  const auto resumed = smc::sprt_test(sys, prop, 0.55, ck, 7, ex2);
  EXPECT_EQ(resumed.resume.load, ckpt::LoadStatus::kOk);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_EQ(resumed.verdict, reference.verdict);
  EXPECT_EQ(resumed.runs, reference.runs);
  EXPECT_EQ(resumed.hits, reference.hits);
}

/// SPRT parameters under which the test provably cannot decide: theta sits
/// at the true probability (near-zero LLR drift) and the Wald boundaries are
/// ~20.7 wide (alpha = beta = 1e-9), hundreds of standard deviations beyond
/// the walk's reach — so an injected interrupt always lands mid-test, and
/// the uninterrupted reference deterministically exhausts max_runs.
smc::SprtOptions undecidable_sprt() {
  smc::SprtOptions opts;
  opts.alpha = 1e-9;
  opts.beta = 1e-9;
  opts.indifference = 0.005;
  opts.max_runs = 200'000;
  return opts;
}

TEST(CkptSprt, CancelledTestSavesTheWalkAndResumesBitIdentically) {
  ta::System sys = exp_system(0.5);
  const auto prop = exp_done_within(2.0);
  exec::Executor ex(4);
  smc::SprtOptions opts = undecidable_sprt();
  const auto reference = smc::sprt_test(sys, prop, 0.63, opts, 7, ex);
  ASSERT_EQ(reference.verdict, smc::SprtVerdict::kInconclusive);
  ASSERT_EQ(reference.runs, opts.max_runs);

  smc::SprtOptions ck = opts;
  ck.checkpoint.path = ckpt_path("sprt_cancel");
  common::CancelToken cancel;
  cancel.cancel();
  common::Budget budget;
  budget.with_cancel(&cancel);
  const auto interrupted =
      smc::sprt_test(sys, prop, 0.63, ck, 7, ex, nullptr, budget);
  ASSERT_EQ(interrupted.verdict, smc::SprtVerdict::kInconclusive);
  EXPECT_EQ(interrupted.stop, common::StopReason::kCancelled);
  ASSERT_TRUE(interrupted.resume.saved);

  cancel.reset();
  const auto resumed = smc::sprt_test(sys, prop, 0.63, ck, 7, ex);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_EQ(resumed.verdict, reference.verdict);
  EXPECT_EQ(resumed.runs, reference.runs);
  EXPECT_EQ(resumed.hits, reference.hits);
  EXPECT_EQ(resumed.stop, reference.stop);
}

TEST(CkptSprt, ForcedDeadlineInterruptsAtABatchBoundary) {
  // The smc.sprt.batch fault site forces the watchdog's deadline mid-test;
  // wherever the walk stops, the resumed test reproduces the reference.
  ta::System sys = exp_system(0.5);
  const auto prop = exp_done_within(2.0);
  exec::Executor ex(4);
  smc::SprtOptions opts = undecidable_sprt();
  opts.batch_size = 64;
  const auto reference = smc::sprt_test(sys, prop, 0.63, opts, 9, ex);

  smc::SprtOptions ck = opts;
  ck.checkpoint.path = ckpt_path("sprt_deadline");
  const auto budget = common::Budget::deadline_after(std::chrono::hours(1));
  smc::SprtResult interrupted;
  {
    ScopedFault fault("smc.sprt.batch", common::FaultKind::kDeadline, 2);
    interrupted = smc::sprt_test(sys, prop, 0.63, ck, 9, ex, nullptr, budget);
  }
  ASSERT_EQ(interrupted.verdict, smc::SprtVerdict::kInconclusive);
  EXPECT_EQ(interrupted.stop, common::StopReason::kTimeLimit);
  ASSERT_TRUE(interrupted.resume.saved);
  ASSERT_LT(interrupted.runs, reference.runs);

  const auto resumed = smc::sprt_test(sys, prop, 0.63, ck, 9, ex);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_EQ(resumed.verdict, reference.verdict);
  EXPECT_EQ(resumed.runs, reference.runs);
  EXPECT_EQ(resumed.hits, reference.hits);
}

TEST(CkptSprt, DifferentThetaRefusesTheSnapshot) {
  ta::System sys = exp_system(0.5);
  const auto prop = exp_done_within(2.0);
  exec::Executor ex(4);
  smc::SprtOptions ck = undecidable_sprt();
  ck.checkpoint.path = ckpt_path("sprt_theta");
  common::CancelToken cancel;
  cancel.cancel();
  common::Budget budget;
  budget.with_cancel(&cancel);
  ASSERT_TRUE(smc::sprt_test(sys, prop, 0.63, ck, 7, ex, nullptr, budget)
                  .resume.saved);

  cancel.reset();
  const auto other = smc::sprt_test(sys, prop, 0.5, ck, 7, ex);
  EXPECT_EQ(other.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_FALSE(other.resume.resumed);
}

// ---- provider 6: timed-game solving ----------------------------------------

game::GamePredicate train0_crosses(const models::TrainGame& tg) {
  return common::loc_index_pred<ta::DigitalState>(tg.trains[0], tg.l_cross);
}

game::GamePredicate game_mutex(const models::TrainGame& tg) {
  return common::labeled_pred<ta::DigitalState>(
      "train-game-mutex",
      [&tg](const ta::DigitalState& s) { return tg.mutex_ok(s.locs); });
}

void expect_same_game(const game::GameResult& got,
                      const game::GameResult& want, const char* what) {
  EXPECT_EQ(got.verdict, want.verdict) << what;
  EXPECT_EQ(got.winning_states, want.winning_states) << what;
  EXPECT_EQ(got.stats.states_stored, want.stats.states_stored) << what;
  EXPECT_EQ(got.stats.states_explored, want.stats.states_explored) << what;
  EXPECT_EQ(got.stats.transitions, want.stats.transitions) << what;
}

TEST(CkptGame, InterruptedBuildResumesToIdenticalSolve) {
  auto tg = models::make_train_game(
      {.num_trains = 2, .first_train_approaching = true});
  const auto goal = train0_crosses(tg);
  const auto reference = game::TimedGame(tg.system).solve_reachability(goal);
  ASSERT_TRUE(reference.controller_wins());
  ASSERT_GT(reference.stats.states_stored, 50u);

  for (std::size_t k : {std::size_t{3}, reference.stats.states_stored / 3,
                        (2 * reference.stats.states_stored) / 3}) {
    const std::string path = ckpt_path("game_build_" + std::to_string(k));
    core::SearchLimits limits;
    limits.budget = common::Budget::deadline_after(std::chrono::hours(1));
    ckpt::Options ck;
    ck.path = path;
    ck.interval = 25;
    game::GameResult interrupted;
    {
      ScopedFault fault("core.state_store.intern",
                        common::FaultKind::kDeadline, k);
      interrupted =
          game::TimedGame(tg.system, limits, ck).solve_reachability(goal);
    }
    ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown) << "k=" << k;
    ASSERT_EQ(interrupted.stop(), common::StopReason::kTimeLimit);
    ASSERT_TRUE(interrupted.resume.saved) << "k=" << k;

    auto resumed = game::TimedGame(tg.system, {}, ck).solve_reachability(goal);
    EXPECT_EQ(resumed.resume.load, ckpt::LoadStatus::kOk) << "k=" << k;
    EXPECT_TRUE(resumed.resume.resumed);
    expect_same_game(resumed, reference, "resumed reach solve");
    EXPECT_TRUE(game::verify_reach_strategy(tg.system, resumed.strategy, goal));
  }
}

TEST(CkptGame, InterruptedFixpointResumesToIdenticalSolve) {
  auto tg = models::make_train_game(
      {.num_trains = 2, .first_train_approaching = true});
  const auto goal = train0_crosses(tg);
  const auto reference = game::TimedGame(tg.system).solve_reachability(goal);
  ASSERT_TRUE(reference.controller_wins());

  // k = 1 interrupts before the first sweep, k = 2 after one full sweep —
  // both at a sweep boundary, where the (win, act, sweeps) snapshot pins
  // down the remainder of the attractor computation exactly.
  for (std::uint64_t k : {std::uint64_t{1}, std::uint64_t{2}}) {
    const std::string path = ckpt_path("game_fix_" + std::to_string(k));
    core::SearchLimits limits;
    limits.budget = common::Budget::deadline_after(std::chrono::hours(1));
    ckpt::Options ck;
    ck.path = path;
    game::GameResult interrupted;
    {
      ScopedFault fault("game.tiga.sweep", common::FaultKind::kDeadline, k);
      interrupted =
          game::TimedGame(tg.system, limits, ck).solve_reachability(goal);
    }
    ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown) << "k=" << k;
    ASSERT_EQ(interrupted.stop(), common::StopReason::kTimeLimit);
    ASSERT_TRUE(interrupted.resume.saved) << "k=" << k;

    auto resumed = game::TimedGame(tg.system, {}, ck).solve_reachability(goal);
    EXPECT_TRUE(resumed.resume.resumed) << "k=" << k;
    expect_same_game(resumed, reference, "resumed fixpoint");
    EXPECT_TRUE(game::verify_reach_strategy(tg.system, resumed.strategy, goal));
  }
}

TEST(CkptGame, InterruptedSafetyFixpointResumes) {
  auto tg = models::make_train_game({.num_trains = 2});
  const auto safe = game_mutex(tg);
  const auto reference = game::TimedGame(tg.system).solve_safety(safe);
  ASSERT_TRUE(reference.controller_wins());

  const std::string path = ckpt_path("game_safety");
  core::SearchLimits limits;
  limits.budget = common::Budget::deadline_after(std::chrono::hours(1));
  ckpt::Options ck;
  ck.path = path;
  game::GameResult interrupted;
  {
    ScopedFault fault("game.tiga.sweep", common::FaultKind::kDeadline, 1);
    interrupted = game::TimedGame(tg.system, limits, ck).solve_safety(safe);
  }
  ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown);
  ASSERT_TRUE(interrupted.resume.saved);

  auto resumed = game::TimedGame(tg.system, {}, ck).solve_safety(safe);
  EXPECT_TRUE(resumed.resume.resumed);
  expect_same_game(resumed, reference, "resumed safety fixpoint");
  EXPECT_TRUE(game::verify_safety_strategy(tg.system, resumed.strategy, safe));
}

TEST(CkptGame, ObjectiveIsPartOfTheFingerprint) {
  auto tg = models::make_train_game(
      {.num_trains = 2, .first_train_approaching = true});
  const auto pred = train0_crosses(tg);
  const std::string path = ckpt_path("game_objective");
  core::SearchLimits limits;
  limits.max_states = 30;
  ckpt::Options ck;
  ck.path = path;
  ASSERT_TRUE(game::TimedGame(tg.system, limits, ck)
                  .solve_reachability(pred)
                  .resume.saved);

  // Same predicate AST, same path — but a safety objective: refused.
  auto r = game::TimedGame(tg.system, {}, ck).solve_safety(pred);
  EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_FALSE(r.resume.resumed);
}

// ---- provider 7: priced (min-cost) search ----------------------------------

TEST(CkptCora, InterruptAnywhereThenResumeIsBitIdentical) {
  auto tg = models::make_train_gate(2);
  cora::PriceModel prices(tg.system);
  for (int t : tg.trains) {
    const auto& proc = tg.system.process(t);
    prices.set_location_rate(t, proc.location_index("Appr"), 1);
    prices.set_location_rate(t, proc.location_index("Stop"), 1);
  }
  const int cross = tg.system.process(tg.trains[0]).location_index("Cross");
  const auto goal =
      common::loc_index_pred<ta::DigitalState>(tg.trains[0], cross);

  cora::MinCostOptions base;
  base.record_trace = true;
  const auto reference =
      cora::min_cost_reachability(tg.system, prices, goal, base);
  ASSERT_TRUE(reference.reachable());
  ASSERT_EQ(reference.cost, 10);
  ASSERT_GT(reference.stats.states_stored, 50u);

  for (std::size_t k : {std::size_t{3}, reference.stats.states_stored / 3,
                        (2 * reference.stats.states_stored) / 3}) {
    const std::string path = ckpt_path("cora_resume_" + std::to_string(k));
    cora::MinCostOptions opts = base;
    opts.checkpoint.path = path;
    opts.checkpoint.interval = 25;
    opts.limits.budget = common::Budget::deadline_after(std::chrono::hours(1));
    cora::MinCostResult interrupted;
    {
      ScopedFault fault("core.state_store.intern",
                        common::FaultKind::kDeadline, k);
      interrupted = cora::min_cost_reachability(tg.system, prices, goal, opts);
    }
    ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown) << "k=" << k;
    ASSERT_EQ(interrupted.stop(), common::StopReason::kTimeLimit);
    ASSERT_TRUE(interrupted.resume.saved) << "k=" << k;

    cora::MinCostOptions full = base;
    full.checkpoint.path = path;
    const auto resumed =
        cora::min_cost_reachability(tg.system, prices, goal, full);
    EXPECT_EQ(resumed.resume.load, ckpt::LoadStatus::kOk) << "k=" << k;
    EXPECT_TRUE(resumed.resume.resumed);
    EXPECT_TRUE(resumed.reachable()) << "k=" << k;
    EXPECT_EQ(resumed.cost, reference.cost) << "k=" << k;
    expect_same_stats(resumed.stats, reference.stats, "resumed min-cost");
    EXPECT_EQ(resumed.trace, reference.trace) << "k=" << k;
  }
}

TEST(CkptCora, StateLimitStopIsResumable) {
  auto tg = models::make_train_gate(2);
  cora::PriceModel prices(tg.system);
  const int cross = tg.system.process(tg.trains[0]).location_index("Cross");
  const auto goal =
      common::loc_index_pred<ta::DigitalState>(tg.trains[0], cross);
  const auto reference = cora::min_cost_reachability(tg.system, prices, goal);
  ASSERT_TRUE(reference.reachable());

  const std::string path = ckpt_path("cora_statelimit");
  cora::MinCostOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = reference.stats.states_stored / 2;
  const auto truncated =
      cora::min_cost_reachability(tg.system, prices, goal, opts);
  ASSERT_EQ(truncated.verdict, common::Verdict::kUnknown);
  ASSERT_EQ(truncated.stop(), common::StopReason::kStateLimit);
  ASSERT_TRUE(truncated.resume.saved);

  cora::MinCostOptions full;
  full.checkpoint.path = path;
  const auto resumed =
      cora::min_cost_reachability(tg.system, prices, goal, full);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.reachable());
  EXPECT_EQ(resumed.cost, reference.cost);
  expect_same_stats(resumed.stats, reference.stats, "after state limit");
}

TEST(CkptCora, PriceChangeRefusesTheSnapshot) {
  auto tg = models::make_train_gate(2);
  cora::PriceModel prices(tg.system);
  const int cross = tg.system.process(tg.trains[0]).location_index("Cross");
  const auto goal =
      common::loc_index_pred<ta::DigitalState>(tg.trains[0], cross);

  const std::string path = ckpt_path("cora_prices");
  cora::MinCostOptions opts;
  opts.checkpoint.path = path;
  opts.limits.max_states = 40;
  ASSERT_TRUE(cora::min_cost_reachability(tg.system, prices, goal, opts)
                  .resume.saved);

  // Different cost structure => different optimum => the snapshot must not
  // be resumed, even though model and goal are unchanged.
  cora::PriceModel dearer(tg.system);
  dearer.set_location_rate(tg.trains[0],
                           tg.system.process(tg.trains[0]).location_index("Appr"),
                           5);
  cora::MinCostOptions full;
  full.checkpoint.path = path;
  const auto r = cora::min_cost_reachability(tg.system, dearer, goal, full);
  EXPECT_EQ(r.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_FALSE(r.resume.resumed);
  EXPECT_TRUE(r.reachable());
}

TEST(CkptStatistical, DifferentSeedOrRunsRefusesTheSnapshot) {
  auto tg = models::make_train_gate(2);
  const auto prop = train_crosses(tg, 30.0);
  exec::Executor ex(4);

  const std::string path = ckpt_path("smc_fingerprint");
  ckpt::Options ck;
  ck.path = path;
  const auto budget = common::Budget::deadline_after(std::chrono::hours(1));
  {
    ScopedFault fault("smc.estimate.batch", common::FaultKind::kDeadline, 2);
    ASSERT_TRUE(smc::estimate_probability_runs(tg.system, prop, 2500, 0.05, 11,
                                               ex, nullptr, budget, ck)
                    .resume.saved);
  }

  // Same path, different seed: the snapshot must not be resumed.
  const auto other = smc::estimate_probability_runs(tg.system, prop, 2500,
                                                    0.05, 12, ex, nullptr, {},
                                                    ck);
  EXPECT_EQ(other.resume.load, ckpt::LoadStatus::kBadFingerprint);
  EXPECT_FALSE(other.resume.resumed);
  EXPECT_EQ(other.verdict, common::Verdict::kHolds);
}

// ---- pooled payload storage + spill tier -----------------------------------
//
// The StateStore keeps SymState payloads interned in a store::ZonePool; with
// QUANTA_STORE_MEM / QUANTA_STORE_SPILL set, cold payload chunks are evicted
// to a memory-mapped file mid-search. Checkpoints are written from
// materialized states and restore re-interns them into a fresh pool, so a
// snapshot never references spill-file offsets. These tests pin the two
// consequences: interrupt/resume stays bit-identical while the pool is
// actively thrashing through the spill tier, and a spill file damaged by a
// crash (truncated mid-record) can never poison a resume — at worst the run
// degrades gracefully, it never crashes and never answers wrong.

std::string spill_file_path(const std::string& name) {
  std::string p = ::testing::TempDir() + "quanta_ckpt_spill_" + name + ".qspl";
  fs::remove(p);
  return p;
}

TEST(CkptPooledStore, SpillingInterruptResumeIsBitIdentical) {
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  // Reference: default pool config, everything resident.
  const auto reference = mc::check_invariant(tg.system, safe);
  ASSERT_TRUE(reference.holds());

  const std::string spill = spill_file_path("resume");
  ScopedEnv mem("QUANTA_STORE_MEM", "1K");
  ScopedEnv sp("QUANTA_STORE_SPILL", spill.c_str());

  for (std::size_t k : {reference.stats.states_stored / 4,
                        reference.stats.states_stored / 2}) {
    const std::string path = ckpt_path("pooled_spill_" + std::to_string(k));
    mc::ReachOptions opts;
    opts.checkpoint.path = path;
    opts.limits.budget = common::Budget::deadline_after(std::chrono::hours(1));
    mc::InvariantResult interrupted;
    {
      ScopedFault fault("core.state_store.intern",
                        common::FaultKind::kDeadline, k);
      interrupted = mc::check_invariant(tg.system, safe, opts);
    }
    ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown) << "k=" << k;
    ASSERT_TRUE(interrupted.resume.saved) << "k=" << k;

    core::StatsObserver obs;
    mc::ReachOptions full = opts;
    full.observer = &obs;
    const auto resumed = mc::check_invariant(tg.system, safe, full);
    EXPECT_EQ(resumed.resume.load, ckpt::LoadStatus::kOk) << "k=" << k;
    EXPECT_TRUE(resumed.resume.resumed) << "k=" << k;
    EXPECT_TRUE(resumed.holds()) << "k=" << k;
    expect_same_stats(resumed.stats, reference.stats, "pooled spill resume");

    // The run must actually have exercised the tiers under test: payloads
    // shared through the pool AND cold chunks pushed out to the spill file.
    const store::PoolMetrics& pm = obs.store_metrics().pool;
    EXPECT_GT(pm.hits, 0u) << "k=" << k;
    EXPECT_GT(pm.spilled_records, 0u) << "k=" << k;
    EXPECT_EQ(pm.spill_failures, 0u) << "k=" << k;
  }
  fs::remove(spill);
}

TEST(CkptPooledStore, TruncatedSpillFileCannotPoisonResume) {
  // Crash scenario: a run spills, checkpoints, and dies while appending a
  // spill record — leaving the file cut off mid-record. The snapshot is
  // self-contained (payloads are re-interned on restore, never read back
  // from the spill file), and a fresh pool opens the spill path with
  // O_TRUNC, discarding stale bytes wholesale. So damage to the spill file
  // must not even cost the resume: it stays bit-identical. This is strictly
  // stronger than the required "degrade to fresh start" — and in no case a
  // crash or a wrong verdict.
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const auto reference = mc::check_invariant(tg.system, safe);
  ASSERT_TRUE(reference.holds());

  const std::string spill = spill_file_path("trunc");
  // Tight enough that the interrupted run — which stores only half the
  // states — has already spilled, so the damage below has something to hit.
  ScopedEnv mem("QUANTA_STORE_MEM", "1K");
  ScopedEnv sp("QUANTA_STORE_SPILL", spill.c_str());

  const std::string path = ckpt_path("pooled_trunc");
  core::StatsObserver obs;
  mc::ReachOptions opts;
  opts.checkpoint.path = path;
  opts.observer = &obs;
  opts.limits.max_states = reference.stats.states_stored / 2;
  const auto interrupted = mc::check_invariant(tg.system, safe, opts);
  ASSERT_EQ(interrupted.verdict, common::Verdict::kUnknown);
  ASSERT_TRUE(interrupted.resume.saved);
  ASSERT_GT(obs.store_metrics().pool.spilled_records, 0u)
      << "interrupted run never spilled";

  // Damage the spill file the way a crash mid-append would: cut it off at
  // an odd byte offset mid-record and scribble on what remains. (The file
  // is sparse up to its mapped capacity, so damage it in place rather than
  // rewriting it through a full read.)
  fs::resize_file(spill, 41);
  {
    std::fstream f(spill, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(24);
    f.put('\x5A');
  }

  mc::ReachOptions full;
  full.checkpoint.path = path;
  const auto resumed = mc::check_invariant(tg.system, safe, full);
  EXPECT_EQ(resumed.resume.load, ckpt::LoadStatus::kOk);
  EXPECT_TRUE(resumed.resume.resumed);
  EXPECT_TRUE(resumed.holds());
  expect_same_stats(resumed.stats, reference.stats, "resume over damaged spill");
  fs::remove(spill);
}

TEST(CkptPooledStore, UnopenableSpillPathDegradesToResidentStorage) {
  // The spill path points somewhere that cannot be opened: the pool runs
  // resident-only (the memory ceiling is then best-effort) and the analysis
  // still completes with the right verdict — the tier fails closed, the
  // search does not.
  auto tg = models::make_train_gate(3);
  const auto safe = mutual_exclusion(tg);
  const auto reference = mc::check_invariant(tg.system, safe);
  ASSERT_TRUE(reference.holds());

  ScopedEnv mem("QUANTA_STORE_MEM", "1K");
  ScopedEnv sp("QUANTA_STORE_SPILL",
               (::testing::TempDir() + "no_such_dir/quanta.qspl").c_str());

  core::StatsObserver obs;
  mc::ReachOptions opts;
  opts.observer = &obs;
  const auto r = mc::check_invariant(tg.system, safe, opts);
  EXPECT_TRUE(r.holds());
  expect_same_stats(r.stats, reference.stats, "resident-only degradation");
  EXPECT_GT(obs.store_metrics().pool.spill_failures, 0u);
  EXPECT_EQ(obs.store_metrics().pool.spilled_records, 0u);
}

// ---- append-only CRC-framed record logs ------------------------------------
//
// ckpt::RecordLog is the shared on-disk discipline of the service's job
// journal and cache segment (DESIGN.md "Durable daemon state"). The tests
// pin its corruption taxonomy: a bit-flipped record is skipped alone, a
// torn tail (SIGKILL mid-append) costs only the partial record, and a
// missing / foreign / version-mismatched file degrades to "start fresh" —
// scan_log never fails a boot.

constexpr ckpt::LogFormat kTestLog{"QTEST1\r\n", 1};

std::string log_file(const std::string& name) {
  std::string p = ::testing::TempDir() + "quanta_log_" + name + ".qlog";
  fs::remove(p);
  fs::remove(p + ".tmp");
  return p;
}

std::vector<std::uint8_t> rec(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(RecordLogTest, AppendScanRoundTripAcrossReopen) {
  const std::string path = log_file("roundtrip");
  {
    ckpt::RecordLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, kTestLog, &error)) << error;
    EXPECT_TRUE(log.append(rec("alpha")));
    EXPECT_TRUE(log.append(rec("")));  // empty payloads are legal records
    EXPECT_EQ(log.appended_bytes(), (8u + 5u) + 8u);
  }
  {
    // Re-open appends behind the existing header, never re-writes it.
    ckpt::RecordLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, kTestLog, &error)) << error;
    EXPECT_TRUE(log.append(rec("gamma")));
  }
  std::vector<std::vector<std::uint8_t>> records;
  const auto stats = ckpt::scan_log(path, kTestLog, &records);
  EXPECT_FALSE(stats.fresh);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(stats.dropped, 0u);
  ASSERT_EQ(stats.records, 3u);
  EXPECT_EQ(records[0], rec("alpha"));
  EXPECT_EQ(records[1], rec(""));
  EXPECT_EQ(records[2], rec("gamma"));
}

TEST(RecordLogTest, MissingFileScansFresh) {
  const auto stats = ckpt::scan_log(log_file("missing"), kTestLog, nullptr);
  EXPECT_TRUE(stats.fresh);
  EXPECT_EQ(stats.note, "no log file");
  EXPECT_EQ(stats.records, 0u);
}

TEST(RecordLogTest, BitFlippedRecordIsSkippedAlone) {
  const std::string path = log_file("bitflip");
  {
    ckpt::RecordLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, kTestLog, &error)) << error;
    for (const char* s : {"alpha", "beta", "gamma"}) {
      ASSERT_TRUE(log.append(rec(s)));
    }
  }
  // Flip one payload byte of the middle record: 16B header, then
  // [8B frame + 5B "alpha"], then 8B frame — offset 37 is 'b' of "beta".
  auto bytes = read_file(path);
  bytes[37] ^= 0x01;
  write_file(path, bytes);

  std::vector<std::vector<std::uint8_t>> records;
  const auto stats = ckpt::scan_log(path, kTestLog, &records);
  EXPECT_FALSE(stats.fresh);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(stats.dropped, 1u);
  ASSERT_EQ(stats.records, 2u);  // neighbours undamaged
  EXPECT_EQ(records[0], rec("alpha"));
  EXPECT_EQ(records[1], rec("gamma"));
}

TEST(RecordLogTest, TornTailDiscardsOnlyThePartialRecord) {
  const std::string path = log_file("torn");
  {
    ckpt::RecordLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, kTestLog, &error)) << error;
    for (const char* s : {"alpha", "beta", "gamma"}) {
      ASSERT_TRUE(log.append(rec(s)));
    }
  }
  const auto pristine = read_file(path);
  // Every way an append can die mid-write: inside the last payload, inside
  // the last frame header, and with a single stray byte after a record.
  for (const std::size_t cut :
       {pristine.size() - 2, pristine.size() - 10, pristine.size() - 12}) {
    auto torn = pristine;
    torn.resize(cut);
    write_file(path, torn);
    std::vector<std::vector<std::uint8_t>> records;
    const auto stats = ckpt::scan_log(path, kTestLog, &records);
    EXPECT_TRUE(stats.torn_tail) << "cut at " << cut;
    EXPECT_FALSE(stats.fresh);
    ASSERT_EQ(stats.records, 2u) << "cut at " << cut;
    EXPECT_EQ(records[0], rec("alpha"));
    EXPECT_EQ(records[1], rec("beta"));
  }
}

TEST(RecordLogTest, ImplausibleLengthEndsTheScanAsTorn) {
  const std::string path = log_file("hugelen");
  {
    ckpt::RecordLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, kTestLog, &error)) << error;
    ASSERT_TRUE(log.append(rec("alpha")));
    ASSERT_TRUE(log.append(rec("beta")));
  }
  // Scribble 0xFFFFFFFF over the second record's length field (offset
  // 16 + 13): a frame this absurd cannot be resynchronized past.
  auto bytes = read_file(path);
  for (std::size_t i = 0; i < 4; ++i) bytes[29 + i] = 0xFF;
  write_file(path, bytes);
  std::vector<std::vector<std::uint8_t>> records;
  const auto stats = ckpt::scan_log(path, kTestLog, &records);
  EXPECT_TRUE(stats.torn_tail);
  ASSERT_EQ(stats.records, 1u);
  EXPECT_EQ(records[0], rec("alpha"));
}

TEST(RecordLogTest, ForeignMagicOrVersionStartsFresh) {
  const std::string path = log_file("header");
  {
    ckpt::RecordLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, kTestLog, &error)) << error;
    ASSERT_TRUE(log.append(rec("alpha")));
  }
  const auto pristine = read_file(path);

  // Foreign magic.
  auto bad = pristine;
  bad[0] ^= 0xFF;
  write_file(path, bad);
  auto stats = ckpt::scan_log(path, kTestLog, nullptr);
  EXPECT_TRUE(stats.fresh);
  EXPECT_EQ(stats.note, "bad magic");

  // Version byte patched without re-sealing the header CRC: the CRC check
  // fires first, so a torn header can never masquerade as another version.
  bad = pristine;
  bad[8] ^= 0x01;
  write_file(path, bad);
  stats = ckpt::scan_log(path, kTestLog, nullptr);
  EXPECT_TRUE(stats.fresh);
  EXPECT_EQ(stats.note, "header CRC mismatch");

  // A genuinely newer format version (header re-sealed): still fresh — old
  // code must not guess at a future layout.
  write_file(path, pristine);
  stats = ckpt::scan_log(path, ckpt::LogFormat{"QTEST1\r\n", 2}, nullptr);
  EXPECT_TRUE(stats.fresh);
  EXPECT_EQ(stats.note, "format version mismatch");

  // Truncated header.
  bad = pristine;
  bad.resize(7);
  write_file(path, bad);
  stats = ckpt::scan_log(path, kTestLog, nullptr);
  EXPECT_TRUE(stats.fresh);
  EXPECT_EQ(stats.note, "short header");
}

TEST(RecordLogTest, RewriteCompactsAtomicallyUnderAFault) {
  const std::string path = log_file("rewrite");
  {
    ckpt::RecordLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, kTestLog, &error)) << error;
    for (const char* s : {"alpha", "beta", "gamma"}) {
      ASSERT_TRUE(log.append(rec(s)));
    }
  }
  // A compaction killed mid-write leaves the previous log intact.
  {
    ScopedFault fault("test.rewrite", common::FaultKind::kException, 1);
    EXPECT_FALSE(ckpt::rewrite_log(path, kTestLog, {rec("only")},
                                   "test.rewrite"));
  }
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::vector<std::vector<std::uint8_t>> records;
  EXPECT_EQ(ckpt::scan_log(path, kTestLog, &records).records, 3u);

  // A clean compaction replaces the contents wholesale.
  records.clear();
  ASSERT_TRUE(ckpt::rewrite_log(path, kTestLog, {rec("only")}, nullptr));
  const auto stats = ckpt::scan_log(path, kTestLog, &records);
  ASSERT_EQ(stats.records, 1u);
  EXPECT_EQ(records[0], rec("only"));
}

TEST(RecordLogTest, OpenOverADamagedHeaderRecreatesTheFile) {
  const std::string path = log_file("recreate");
  write_file(path, rec("not a log at all"));
  ckpt::RecordLog log;
  std::string error;
  ASSERT_TRUE(log.open(path, kTestLog, &error)) << error;
  ASSERT_TRUE(log.append(rec("alpha")));
  std::vector<std::vector<std::uint8_t>> records;
  const auto stats = ckpt::scan_log(path, kTestLog, &records);
  EXPECT_FALSE(stats.fresh);
  ASSERT_EQ(stats.records, 1u);
  EXPECT_EQ(records[0], rec("alpha"));
}

}  // namespace
