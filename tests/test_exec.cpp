// Tests for the parallel statistical execution runtime (src/exec): chunked
// scheduling covers every index exactly once, exceptions propagate,
// cancellation stops outstanding work, per-run RNG streams make estimates /
// CDF series / SPRT verdicts bit-identical across worker counts, and the
// telemetry adds up. The whole suite must be clean under
// QUANTA_SANITIZE=thread (see .github/workflows/ci.yml).
#include "exec/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <stdexcept>
#include <vector>

#include "exec/watchdog.h"

#include "common/fault.h"
#include "common/rng.h"
#include "mbt/testgen.h"
#include "models/brp.h"
#include "models/mbt_models.h"
#include "models/train_gate.h"
#include "smc/cdf.h"
#include "smc/estimate.h"
#include "smc/sprt.h"

namespace {

using namespace quanta;

/// The CI fault matrix sets QUANTA_FAULT for the whole test process, which
/// arms the injector at startup. Disarm before any test runs: this suite's
/// determinism tests match the matrix filters by name only ("Verdict",
/// "Watchdog") and would be poisoned by an arbitrary env-armed fault —
/// FaultInjection.EnvSpecDegradesGracefully (test_robustness) is the test
/// that replays the spec against real engine runs.
[[maybe_unused]] const bool kEnvFaultDisarmed = [] {
  common::FaultInjector::instance().disarm();
  return true;
}();

// ---- scheduling substrate -------------------------------------------------

TEST(ThreadPool, EveryIndexExactlyOnce) {
  constexpr std::uint64_t kN = 100'000;
  exec::Executor ex(4);
  std::vector<std::uint8_t> seen(kN, 0);
  ex.for_each(0, kN, [&](std::uint64_t i, exec::Executor::WorkerContext&) {
    ++seen[i];  // disjoint per index: no synchronization needed
  });
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), std::uint64_t{0}), kN);
  EXPECT_EQ(*std::max_element(seen.begin(), seen.end()), 1);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  exec::Executor ex(3);
  bool ran = false;
  ex.for_each(5, 5, [&](std::uint64_t, exec::Executor::WorkerContext&) {
    ran = true;
  });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, WorkerExceptionPropagatesAndPoolSurvives) {
  exec::Executor ex(4);
  auto boom = [](std::uint64_t i, exec::Executor::WorkerContext&) {
    if (i == 1234) throw std::runtime_error("boom");
  };
  EXPECT_THROW(ex.for_each(0, 10'000, boom), std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<std::uint64_t> done{0};
  ex.for_each(0, 1000, [&](std::uint64_t, exec::Executor::WorkerContext&) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 1000u);
}

TEST(ThreadPool, CancellationStopsOutstandingChunks) {
  constexpr std::uint64_t kN = 1'000'000;
  exec::Executor ex(4);
  exec::CancellationToken cancel;
  std::atomic<std::uint64_t> executed{0};
  ex.for_each(
      0, kN,
      [&](std::uint64_t, exec::Executor::WorkerContext&) {
        if (executed.fetch_add(1, std::memory_order_relaxed) >= 100) {
          cancel.cancel();
        }
      },
      &cancel);
  EXPECT_LT(executed.load(), kN) << "cancellation did not stop the sweep";
  EXPECT_GE(executed.load(), 100u);
}

TEST(ParallelReduce, CommutativeMergeIsWorkerCountInvariant) {
  constexpr std::uint64_t kN = 50'000;
  auto sum_indices = [](unsigned workers) {
    exec::Executor ex(workers);
    return exec::parallel_reduce(
        ex, 0, kN, std::uint64_t{0},
        [](std::uint64_t& acc, std::uint64_t i,
           exec::Executor::WorkerContext&) { acc += i; },
        [](std::uint64_t& out, std::uint64_t&& in) { out += in; });
  };
  const std::uint64_t expected = kN * (kN - 1) / 2;
  EXPECT_EQ(sum_indices(1), expected);
  EXPECT_EQ(sum_indices(4), expected);
  EXPECT_EQ(sum_indices(8), expected);
}

// ---- RNG streams ----------------------------------------------------------

TEST(RngStream, RunStreamsAreReproducibleAndOrderFree) {
  common::RngStream a(0xfeedULL), b(0xfeedULL);
  // Draw the streams in different orders; run i must not care.
  common::Rng a7 = a.rng(7), a3 = a.rng(3);
  common::Rng b3 = b.rng(3), b7 = b.rng(7);
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(a7.uniform01(), b7.uniform01());
    EXPECT_EQ(a3.uniform01(), b3.uniform01());
  }
}

TEST(RngStream, SeedsAreDistinctAcrossRunsAndMasters) {
  common::RngStream s(1);
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.push_back(s.seed_for(i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  EXPECT_NE(common::RngStream(1).seed_for(0), common::RngStream(2).seed_for(0));
}

// ---- bit-identical engines across worker counts ---------------------------

ta::System make_exponential(double rate) {
  ta::System sys;
  ta::ProcessBuilder pb("P");
  int init = pb.location("Init", {}, false, false, rate);
  int done = pb.location("Done");
  pb.edge(init, done, {}, -1, ta::SyncKind::kNone, {}, nullptr, nullptr,
          "fire");
  sys.add_process(pb.build());
  return sys;
}

smc::TimeBoundedReach done_within(const ta::System& sys, double bound) {
  int p = sys.process_index("P");
  int done = sys.process(p).location_index("Done");
  smc::TimeBoundedReach prop;
  prop.time_bound = bound;
  prop.goal = [p, done](const ta::ConcreteState& s) {
    return s.locs[static_cast<std::size_t>(p)] == done;
  };
  return prop;
}

smc::TimeBoundedReach train_crosses(const models::TrainGate& tg, int train,
                                    double bound) {
  int p = tg.trains[static_cast<std::size_t>(train)];
  int cross = tg.system.process(p).location_index("Cross");
  smc::TimeBoundedReach prop;
  prop.time_bound = bound;
  prop.goal = [p, cross](const ta::ConcreteState& s) {
    return s.locs[static_cast<std::size_t>(p)] == cross;
  };
  return prop;
}

TEST(ExecDeterminism, TrainGateEstimateBitIdenticalAcrossWorkerCounts) {
  auto tg = models::make_train_gate(3);
  auto prop = train_crosses(tg, 0, 30.0);
  exec::Executor seq(1);
  auto ref = smc::estimate_probability_runs(tg.system, prop, 1500, 0.05, 42,
                                            seq);
  for (unsigned workers : {2u, 4u, 8u}) {
    exec::Executor ex(workers);
    auto est =
        smc::estimate_probability_runs(tg.system, prop, 1500, 0.05, 42, ex);
    EXPECT_EQ(est.hits, ref.hits) << workers << " workers";
    EXPECT_EQ(est.p_hat, ref.p_hat) << workers << " workers";
    EXPECT_EQ(est.ci_low, ref.ci_low) << workers << " workers";
    EXPECT_EQ(est.ci_high, ref.ci_high) << workers << " workers";
  }
  // A different seed must give a different tally (the streams are live).
  exec::Executor ex8(8);
  auto other =
      smc::estimate_probability_runs(tg.system, prop, 1500, 0.05, 43, ex8);
  EXPECT_NE(other.hits, ref.hits);
}

TEST(ExecDeterminism, CdfSeriesBitIdenticalAcrossWorkerCounts) {
  ta::System sys = make_exponential(1.0);
  auto prop = done_within(sys, 10.0);
  exec::Executor seq(1), par(8);
  auto t1 = smc::first_hit_times(sys, prop, 4000, 9, seq);
  auto t8 = smc::first_hit_times(sys, prop, 4000, 9, par);
  ASSERT_EQ(t1.size(), t8.size());
  for (std::size_t i = 0; i < t1.size(); ++i) EXPECT_EQ(t1[i], t8[i]);
  auto c1 = smc::empirical_cdf(t1, 4000, 10.0, 11);
  auto c8 = smc::empirical_cdf(t8, 4000, 10.0, 11);
  EXPECT_EQ(c1.prob, c8.prob);
  // And the calibration still holds under per-run seeding.
  for (std::size_t i = 0; i < c1.grid.size(); ++i) {
    EXPECT_NEAR(c1.prob[i], 1.0 - std::exp(-c1.grid[i]), 0.03);
  }
}

TEST(ExecDeterminism, SprtVerdictAndRunCountMatchSequential) {
  ta::System sys = make_exponential(0.5);
  auto prop = done_within(sys, 2.0);  // true p ~ 0.632
  smc::SprtOptions opts;
  opts.indifference = 0.05;
  exec::Executor seq(1);
  auto ref_low = smc::sprt_test(sys, prop, 0.4, opts, 7, seq);
  auto ref_high = smc::sprt_test(sys, prop, 0.9, opts, 8, seq);
  EXPECT_EQ(ref_low.verdict, smc::SprtVerdict::kAccepted);
  EXPECT_EQ(ref_high.verdict, smc::SprtVerdict::kRejected);
  for (unsigned workers : {2u, 8u}) {
    exec::Executor ex(workers);
    auto low = smc::sprt_test(sys, prop, 0.4, opts, 7, ex);
    EXPECT_EQ(low.verdict, ref_low.verdict);
    EXPECT_EQ(low.runs, ref_low.runs);
    EXPECT_EQ(low.hits, ref_low.hits);
    auto high = smc::sprt_test(sys, prop, 0.9, opts, 8, ex);
    EXPECT_EQ(high.verdict, ref_high.verdict);
    EXPECT_EQ(high.runs, ref_high.runs);
    EXPECT_EQ(high.hits, ref_high.hits);
  }
}

TEST(ExecDeterminism, BrpSprtStopsEarlyAndMatchesSequential) {
  auto brp = models::make_brp();
  smc::TimeBoundedReach prop;
  prop.time_bound = 64.0;  // the paper's Dmax horizon: success within 64
  prop.goal = [&brp](const ta::ConcreteState& s) {
    return brp.is_success(s.locs);
  };
  smc::SprtOptions opts;
  opts.indifference = 0.02;
  opts.max_runs = 100'000;
  exec::Executor seq(1), par(8);
  auto ref = smc::sprt_test(brp.system, prop, 0.9, opts, 11, seq);
  auto p = smc::sprt_test(brp.system, prop, 0.9, opts, 11, par);
  EXPECT_EQ(ref.verdict, smc::SprtVerdict::kAccepted) << "Dmax ~ 0.9996 >= 0.9";
  EXPECT_EQ(p.verdict, ref.verdict);
  EXPECT_EQ(p.runs, ref.runs);
  EXPECT_EQ(p.hits, ref.hits);
  // Early stopping: nowhere near the max-sample cap.
  EXPECT_LT(p.runs, opts.max_runs / 10);
}

bool same_test_case(const mbt::TestCase& a, const mbt::TestCase& b) {
  if (a.root != b.root || a.nodes.size() != b.nodes.size()) return false;
  for (std::size_t k = 0; k < a.nodes.size(); ++k) {
    const mbt::TestNode &na = a.nodes[k], &nb = b.nodes[k];
    if (na.kind != nb.kind || na.stimulus != nb.stimulus ||
        na.after_stimulus != nb.after_stimulus ||
        na.on_quiescence != nb.on_quiescence || na.on_output != nb.on_output) {
      return false;
    }
  }
  return true;
}

TEST(ExecDeterminism, SuiteGenerationBitIdenticalAcrossWorkerCounts) {
  mbt::Lts spec = models::make_swb_spec();
  exec::Executor seq(1), par(8);
  auto s1 = mbt::generate_suite(spec, 200, 17, seq);
  auto s8 = mbt::generate_suite(spec, 200, 17, par);
  ASSERT_EQ(s1.size(), s8.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_TRUE(same_test_case(s1[i], s8[i])) << "test " << i << " diverged";
  }
  // Distinct indices generate distinct tests at least somewhere.
  bool any_different = false;
  for (std::size_t i = 1; i < s1.size() && !any_different; ++i) {
    any_different = !same_test_case(s1[0], s1[i]);
  }
  EXPECT_TRUE(any_different);
}

// ---- telemetry ------------------------------------------------------------

TEST(RunTelemetry, CountersAddUp) {
  auto tg = models::make_train_gate(3);
  auto prop = train_crosses(tg, 0, 30.0);
  exec::Executor ex(4);
  exec::RunTelemetry tel;
  auto est =
      smc::estimate_probability_runs(tg.system, prop, 500, 0.05, 1, ex, &tel);
  EXPECT_EQ(tel.workers.size(), 4u);
  EXPECT_EQ(tel.runs_completed(), 500u);
  EXPECT_EQ(tel.runs_started(), 500u);
  EXPECT_EQ(tel.hits(), est.hits);
  EXPECT_GT(tel.sim_steps(), 0u);
  EXPECT_GT(tel.wall_seconds, 0.0);
  EXPECT_GT(tel.runs_per_second(), 0.0);
  EXPECT_FALSE(tel.summary().empty());
}

// ---- shutdown / cancellation races ----------------------------------------

TEST(ThreadPool, ShutdownWithPendingWorkJoinsCleanly) {
  // Destroy the pool while a cancelled job still has unclaimed chunks: the
  // destructor must join every worker without touching the abandoned range.
  std::atomic<std::uint64_t> done{0};
  {
    exec::Executor ex(4);
    exec::CancellationToken cancel;
    std::thread canceller([&] {
      while (done.load(std::memory_order_relaxed) == 0) {
        std::this_thread::yield();
      }
      cancel.cancel();
    });
    ex.for_each(
        0, 10'000'000,
        [&](std::uint64_t, exec::Executor::WorkerContext&) {
          done.fetch_add(1, std::memory_order_relaxed);
        },
        &cancel);
    canceller.join();
    // Executor destroyed here with most of the range never claimed.
  }
  EXPECT_GT(done.load(), 0u);
  EXPECT_LT(done.load(), 10'000'000u);
}

TEST(ThreadPool, CancelVersusSubmitRaceStress) {
  // Loop a racy cancel against job start/finish; under QUANTA_SANITIZE=thread
  // this is the test that would flag any unsynchronized pool state.
  exec::Executor ex(4);
  for (int round = 0; round < 50; ++round) {
    exec::CancellationToken cancel;
    std::atomic<std::uint64_t> seen{0};
    std::thread racer([&] { cancel.cancel(); });
    ex.for_each(
        0, 5'000,
        [&](std::uint64_t, exec::Executor::WorkerContext&) {
          seen.fetch_add(1, std::memory_order_relaxed);
        },
        &cancel);
    racer.join();
    // Cancellation is advisory: anywhere from 0 to all runs may have landed,
    // but the pool must stay consistent for the next round.
    EXPECT_LE(seen.load(), 5'000u);
  }
  // After 50 racy rounds an uncancelled job still covers the full range.
  std::atomic<std::uint64_t> full{0};
  ex.for_each(0, 5'000, [&](std::uint64_t, exec::Executor::WorkerContext&) {
    full.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(full.load(), 5'000u);
}

TEST(Executor, TelemetryOutlivesTheExecutor) {
  // Destruction order: the telemetry sink belongs to the caller and must be
  // complete (not written concurrently) once for_each returned, even after
  // the executor itself is gone.
  exec::RunTelemetry tel;
  {
    exec::Executor ex(3);
    ex.for_each(
        0, 1'000,
        [](std::uint64_t, exec::Executor::WorkerContext& ctx) {
          ctx.telemetry->sim_steps += 1;
        },
        nullptr, &tel);
  }
  EXPECT_EQ(tel.runs_completed(), 1'000u);
  EXPECT_EQ(tel.sim_steps(), 1'000u);
  EXPECT_EQ(tel.workers.size(), 3u);
}

TEST(RunTelemetry, AccumulatesAcrossSprtBatches) {
  ta::System sys = make_exponential(0.5);
  auto prop = done_within(sys, 2.0);
  smc::SprtOptions opts;
  opts.indifference = 0.05;
  opts.batch_size = 32;  // force several batches
  exec::Executor ex(2);
  exec::RunTelemetry tel;
  auto r = smc::sprt_test(sys, prop, 0.4, opts, 7, ex, &tel);
  // Whole batches are simulated; the walk may consume only a prefix.
  EXPECT_GE(tel.runs_completed(), r.runs);
  EXPECT_GE(tel.hits(), r.hits);
  EXPECT_GT(tel.wall_seconds, 0.0);
}

// ---- QUANTA_JOBS parsing --------------------------------------------------

/// Sets (or unsets, for nullptr) an environment variable for one scope and
/// restores the previous state on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

unsigned hardware_fallback() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

TEST(ThreadPool, QuantaJobsWholePositiveNumberIsUsed) {
  ScopedEnv env("QUANTA_JOBS", "3");
  EXPECT_EQ(exec::default_worker_count(), 3u);
}

TEST(ThreadPool, QuantaJobsIsClampedTo1024) {
  ScopedEnv env("QUANTA_JOBS", "99999");
  EXPECT_EQ(exec::default_worker_count(), 1024u);
}

TEST(ThreadPool, QuantaJobsMalformedValuesFallBackToHardwareConcurrency) {
  const unsigned hw = hardware_fallback();
  // Non-numeric, empty, zero, negative, trailing garbage and out-of-range
  // values must all be rejected as a whole, never half-parsed.
  for (const char* bad : {"", "abc", "0", "-4", "4x", "2.5", "0x10",
                          "999999999999999999999999"}) {
    ScopedEnv env("QUANTA_JOBS", bad);
    EXPECT_EQ(exec::default_worker_count(), hw) << "value: \"" << bad << '"';
  }
}

TEST(ThreadPool, QuantaJobsUnsetFallsBackToHardwareConcurrency) {
  ScopedEnv env("QUANTA_JOBS", nullptr);
  EXPECT_EQ(exec::default_worker_count(), hardware_fallback());
}

// ---- watchdog / cancel-token ownership ------------------------------------

// Regression: the watchdog must never reset its target, and a token left
// cancelled by run N must be reset by its owner or it stops run N+1 at the
// very first poll. (Engines avoid this internally by creating a fresh
// watchdog target per call — see the next test.)
TEST(ExecWatchdog, WatchdogDoesNotResetTargetAcrossRuns) {
  common::CancelToken external;
  common::CancelToken target;
  common::Budget watched;
  watched.with_cancel(&external);
  {
    exec::Watchdog wd(watched, target);
    external.cancel();
    for (int i = 0; i < 2000 && !target.cancelled(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(target.cancelled());
    EXPECT_EQ(wd.fired_reason(), common::StopReason::kCancelled);
  }
  // The destructor joined the poll thread but left the target fired.
  EXPECT_TRUE(target.cancelled());

  // Run N+1 reusing the fired token is dead on arrival until reset().
  common::Budget next;
  next.with_cancel(&target);
  EXPECT_EQ(next.poll(0), common::StopReason::kCancelled);
  target.reset();
  EXPECT_EQ(next.poll(0), common::StopReason::kCompleted);
}

// Regression: a cancelled estimate must not poison the next estimate on the
// same executor — the internal watchdog target is per-call, so after the
// caller resets their own token the resumed run N+1 completes normally.
TEST(ExecWatchdog, CancelledRunDoesNotPoisonTheNextRun) {
  auto tg = models::make_train_gate(2);
  auto prop = train_crosses(tg, 0, 30.0);
  exec::Executor ex(2);

  common::CancelToken user;
  user.cancel();  // run N: cancelled before it can complete the sample
  common::Budget b;
  b.with_cancel(&user);
  auto aborted =
      smc::estimate_probability_runs(tg.system, prop, 400, 0.05, 7, ex,
                                     nullptr, b);
  EXPECT_EQ(aborted.verdict, common::Verdict::kUnknown);
  EXPECT_EQ(aborted.stop, common::StopReason::kCancelled);
  EXPECT_LT(aborted.completed, 400u);

  user.reset();  // owner's duty between runs
  auto resumed =
      smc::estimate_probability_runs(tg.system, prop, 400, 0.05, 7, ex,
                                     nullptr, b);
  EXPECT_EQ(resumed.verdict, common::Verdict::kHolds);
  EXPECT_EQ(resumed.completed, 400u);

  // And an ungoverned run on the same executor is equally unaffected.
  auto clean = smc::estimate_probability_runs(tg.system, prop, 400, 0.05, 7,
                                              ex);
  EXPECT_EQ(clean.hits, resumed.hits);
}

}  // namespace
