// Tests for UPPAAL-CORA-style minimum-cost reachability (experiment E8).
#include "cora/priced.h"

#include <gtest/gtest.h>

#include "models/train_gate.h"

namespace {

using namespace quanta;
using ta::cc_ge;
using ta::cc_le;
using ta::ProcessBuilder;
using ta::SyncKind;

// One clock, A(rate 2) --x>=3--> B: waiting 3 units at rate 2 costs 6.
TEST(Cora, DelayCostAccumulatesAtLocationRate) {
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int b = pb.location("B");
  pb.edge(a, b, {cc_ge(x, 3)}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());

  cora::PriceModel prices(sys);
  prices.set_location_rate(0, a, 2);
  auto r = cora::min_cost_reachability(
      sys, prices, [b](const ta::DigitalState& s) { return s.locs[0] == b; });
  EXPECT_TRUE(r.reachable());
  EXPECT_EQ(r.cost, 6);
}

// Two routes to Goal: fast-but-expensive edge (cost 10, immediately) or
// cheap-but-slow (wait 4 at rate 2 = 8). Dijkstra must pick the slow one.
TEST(Cora, PicksCheaperOfTwoRoutes) {
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int goal = pb.location("Goal");
  int fast = pb.edge(a, goal, {}, -1, SyncKind::kNone, {}, nullptr, nullptr,
                     "fast");
  int slow = pb.edge(a, goal, {cc_ge(x, 4)}, -1, SyncKind::kNone, {}, nullptr,
                     nullptr, "slow");
  sys.add_process(pb.build());

  cora::PriceModel prices(sys);
  prices.set_location_rate(0, a, 2);
  prices.set_edge_cost(0, fast, 10);
  prices.set_edge_cost(0, slow, 0);
  cora::MinCostOptions opts;
  opts.record_trace = true;
  auto r = cora::min_cost_reachability(
      sys, prices, [goal](const ta::DigitalState& s) { return s.locs[0] == goal; },
      opts);
  EXPECT_TRUE(r.reachable());
  EXPECT_EQ(r.cost, 8);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_NE(r.trace.back().find("slow"), std::string::npos);

  // Making the detour pricier flips the optimum.
  prices.set_location_rate(0, a, 3);  // slow route now costs 12
  auto r2 = cora::min_cost_reachability(
      sys, prices, [goal](const ta::DigitalState& s) { return s.locs[0] == goal; },
      opts);
  EXPECT_EQ(r2.cost, 10);
  EXPECT_NE(r2.trace.back().find("fast"), std::string::npos);
}

TEST(Cora, UnreachableGoal) {
  ta::System sys;
  sys.add_clock("x");
  ProcessBuilder pb("P");
  pb.location("A");
  int b = pb.location("B");
  sys.add_process(pb.build());
  cora::PriceModel prices(sys);
  auto r = cora::min_cost_reachability(
      sys, prices, [b](const ta::DigitalState& s) { return s.locs[0] == b; });
  EXPECT_FALSE(r.reachable());
}

TEST(Cora, ZeroCostModelActsLikeReachability) {
  auto tg = models::make_train_gate(2);
  cora::PriceModel prices(tg.system);
  int cross = tg.system.process(tg.trains[0]).location_index("Cross");
  auto r = cora::min_cost_reachability(
      tg.system, prices, [&tg, cross](const ta::DigitalState& s) {
        return s.locs[static_cast<std::size_t>(tg.trains[0])] == cross;
      });
  EXPECT_TRUE(r.reachable());
  EXPECT_EQ(r.cost, 0);
}

// WCET-style query on the train-gate: waiting in Appr/Stop costs 1 per time
// unit per train; the cheapest schedule for train 0 to cross pays exactly
// the mandatory 10 time units of approach (guard x>=10).
TEST(Cora, TrainGateMinimumWaitingCost) {
  auto tg = models::make_train_gate(2);
  cora::PriceModel prices(tg.system);
  for (int t : tg.trains) {
    const auto& proc = tg.system.process(t);
    prices.set_location_rate(t, proc.location_index("Appr"), 1);
    prices.set_location_rate(t, proc.location_index("Stop"), 1);
  }
  int cross = tg.system.process(tg.trains[0]).location_index("Cross");
  auto r = cora::min_cost_reachability(
      tg.system, prices, [&tg, cross](const ta::DigitalState& s) {
        return s.locs[static_cast<std::size_t>(tg.trains[0])] == cross;
      });
  EXPECT_TRUE(r.reachable());
  // Train 0 can approach alone: 10 units in Appr at rate 1, nobody queues.
  EXPECT_EQ(r.cost, 10);
}

}  // namespace
