// Tests for the BIP framework: engine semantics (rendezvous, broadcast,
// priorities), exact exploration, D-Finder, and flattening.
#include "bip/engine.h"

#include <gtest/gtest.h>

#include "bip/dfinder.h"
#include "bip/explore.h"
#include "bip/flatten.h"

namespace {

using namespace quanta::bip;

/// Two components handshaking: P: A --sync--> B; Q: X --sync--> Y.
BipSystem handshake() {
  BipSystem sys;
  {
    Component c("P");
    int a = c.add_place("A");
    int b = c.add_place("B");
    int port = c.add_port("p");
    c.add_transition(a, b, port);
    c.set_initial(a);
    sys.add_component(std::move(c));
  }
  {
    Component c("Q");
    int x = c.add_place("X");
    int y = c.add_place("Y");
    int port = c.add_port("q");
    c.add_transition(x, y, port);
    c.set_initial(x);
    sys.add_component(std::move(c));
  }
  Connector conn;
  conn.name = "hs";
  conn.ports = {{0, 0}, {1, 0}};
  sys.add_connector(std::move(conn));
  return sys;
}

TEST(BipEngine, RendezvousFiresJointly) {
  BipSystem sys = handshake();
  Engine engine(sys);
  auto enabled = engine.enabled(engine.initial());
  ASSERT_EQ(enabled.size(), 1u);
  EXPECT_EQ(enabled[0].participants.size(), 2u);
  BipState next = engine.apply(engine.initial(), enabled[0]);
  EXPECT_EQ(next.places, (std::vector<int>{1, 1}));
  // Afterwards nothing is enabled: a (terminal) deadlock.
  EXPECT_TRUE(engine.enabled(next).empty());
}

TEST(BipEngine, RendezvousBlocksWhenOneSideNotReady) {
  BipSystem sys = handshake();
  // Move Q's transition guard to false: the handshake must vanish.
  BipSystem sys2 = handshake();
  Engine engine(sys2);
  BipState s = engine.initial();
  s.places[1] = 1;  // Q already in Y: no q-labelled transition enabled
  EXPECT_TRUE(engine.enabled(s).empty());
}

TEST(BipEngine, GuardsGateInteractions) {
  BipSystem sys;
  Component c("P");
  int a = c.add_place("A");
  int b = c.add_place("B");
  int port = c.add_port("p");
  int flag = c.declare_var("flag", 0, 0, 1);
  c.add_transition(a, b, port,
                   [flag](const Valuation& v) { return v[flag] == 1; });
  c.add_transition(a, a, -1, nullptr, [flag](Valuation& v) { v[flag] = 1; },
                   "set");
  c.set_initial(a);
  sys.add_component(std::move(c));
  Connector conn;
  conn.name = "solo";
  conn.ports = {{0, port}};
  sys.add_connector(std::move(conn));

  Engine engine(sys);
  auto first = engine.enabled(engine.initial());
  ASSERT_EQ(first.size(), 1u);  // only the internal "set" step
  EXPECT_EQ(first[0].connector, -1);
  BipState after = engine.apply(engine.initial(), first[0]);
  auto second = engine.enabled(after);
  ASSERT_EQ(second.size(), 2u);  // set again + the now-unlocked interaction
}

/// Broadcast: trigger T plus two receivers; receiver R1 is only sometimes
/// ready.
BipSystem broadcast_system() {
  BipSystem sys;
  {
    Component c("T");
    int run = c.add_place("Run");
    int port = c.add_port("t");
    c.add_transition(run, run, port);
    c.set_initial(run);
    sys.add_component(std::move(c));
  }
  for (int r = 0; r < 2; ++r) {
    Component c("R" + std::to_string(r));
    int ready = c.add_place("Ready");
    int done = c.add_place("Done");
    int port = c.add_port("r");
    c.add_transition(ready, done, port);
    c.set_initial(ready);
    sys.add_component(std::move(c));
  }
  Connector conn;
  conn.name = "bc";
  conn.kind = ConnectorKind::kBroadcast;
  conn.ports = {{0, 0}, {1, 0}, {2, 0}};
  sys.add_connector(std::move(conn));
  return sys;
}

TEST(BipEngine, BroadcastEnumeratesSubsets) {
  BipSystem sys = broadcast_system();
  Engine engine(sys);
  // Subsets: {}, {R0}, {R1}, {R0,R1} -> 4 instances.
  EXPECT_EQ(engine.enabled(engine.initial()).size(), 4u);
  // Maximal progress keeps only the full instance.
  auto maximal = engine.enabled_maximal(engine.initial());
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0].participants.size(), 3u);
  BipState next = engine.apply(engine.initial(), maximal[0]);
  EXPECT_EQ(next.places, (std::vector<int>{0, 1, 1}));
  // Once both receivers are Done, only the bare trigger remains.
  auto later = engine.enabled_maximal(next);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].participants.size(), 1u);
}

TEST(BipEngine, PrioritySuppressesLowInteraction) {
  BipSystem sys;
  Component c("P");
  int a = c.add_place("A");
  int b = c.add_place("B");
  int cc = c.add_place("C");
  int p_low = c.add_port("low");
  int p_high = c.add_port("high");
  c.add_transition(a, b, p_low);
  c.add_transition(a, cc, p_high);
  c.set_initial(a);
  sys.add_component(std::move(c));
  Connector low;
  low.name = "low";
  low.ports = {{0, p_low}};
  int low_id = sys.add_connector(std::move(low));
  Connector high;
  high.name = "high";
  high.ports = {{0, p_high}};
  int high_id = sys.add_connector(std::move(high));
  sys.add_priority(low_id, high_id);

  Engine engine(sys);
  EXPECT_EQ(engine.enabled(engine.initial()).size(), 2u);
  auto maximal = engine.enabled_maximal(engine.initial());
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0].connector, high_id);

  // From a state where only `low` is enabled, it is not suppressed.
  BipState s = engine.initial();
  BipState at_b = engine.apply(s, maximal[0]);
  EXPECT_TRUE(engine.enabled_maximal(at_b).empty());
}

TEST(BipExplore, CountsStatesAndFindsDeadlock) {
  BipSystem sys = handshake();
  auto r = explore(sys);
  EXPECT_EQ(r.stats.states_stored, 2u);
  EXPECT_TRUE(r.deadlock_found);  // after the handshake nothing can move
  EXPECT_NE(r.deadlock_state.find("P.B"), std::string::npos);
}

TEST(BipExplore, SafetyMonitor) {
  BipSystem sys = handshake();
  auto r = explore(sys, ExploreOptions{},
                   [](const BipState& s) { return s.places[0] != 1; });
  EXPECT_TRUE(r.violation_found);
  EXPECT_EQ(reachable(sys, [](const BipState& s) { return s.places[0] == 1; }),
            quanta::common::Verdict::kHolds);
  EXPECT_EQ(reachable(sys, [](const BipState& s) { return s.places[0] == 7; }),
            quanta::common::Verdict::kViolated);
}

TEST(BipDFinder, ProvesDeadlockFreedomOfLivelySystem) {
  // A single component with a self-loop can always move.
  BipSystem sys;
  Component c("P");
  int run = c.add_place("Run");
  c.add_transition(run, run, -1);
  c.set_initial(run);
  sys.add_component(std::move(c));
  auto r = dfinder_deadlock_check(sys);
  EXPECT_TRUE(r.deadlock_free);
  EXPECT_EQ(r.candidates, 0u);
}

TEST(BipDFinder, FlagsRealDeadlockCandidates) {
  BipSystem sys = handshake();
  auto r = dfinder_deadlock_check(sys);
  EXPECT_FALSE(r.deadlock_free);
  EXPECT_GE(r.candidates, 1u);
  ASSERT_FALSE(r.examples.empty());
}

TEST(BipDFinder, TrapInvariantPrunesSpuriousCandidates) {
  // Cross-waiting ring that is actually live: P: A<->B on two connectors
  // with Q moving in lockstep. The trap invariants must rule out the
  // off-diagonal (unreachable) combination A/Y, B/X.
  BipSystem sys;
  for (int i = 0; i < 2; ++i) {
    Component c(i == 0 ? "P" : "Q");
    int a = c.add_place(i == 0 ? "A" : "X");
    int b = c.add_place(i == 0 ? "B" : "Y");
    int fwd = c.add_port("fwd");
    int back = c.add_port("back");
    c.add_transition(a, b, fwd);
    c.add_transition(b, a, back);
    c.set_initial(a);
    sys.add_component(std::move(c));
  }
  Connector fwd;
  fwd.name = "fwd";
  fwd.ports = {{0, 0}, {1, 0}};
  sys.add_connector(std::move(fwd));
  Connector back;
  back.name = "back";
  back.ports = {{0, 1}, {1, 1}};
  sys.add_connector(std::move(back));

  auto r = dfinder_deadlock_check(sys);
  EXPECT_TRUE(r.deadlock_free) << (r.examples.empty() ? "" : r.examples[0]);
  // Exact exploration agrees.
  EXPECT_FALSE(explore(sys).deadlock_found);
}

TEST(BipFlatten, PreservesReachableStateCount) {
  BipSystem sys = broadcast_system();
  auto exact = explore(sys);
  auto flat = flatten(sys);
  EXPECT_FALSE(flat.stats.truncated);
  EXPECT_EQ(static_cast<std::size_t>(flat.flat.place_count()),
            exact.stats.states_stored);
  // The flat component is a valid, purely-internal component.
  for (const auto& t : flat.flat.transitions()) {
    EXPECT_EQ(t.port, -1);
  }
}

TEST(BipEngine, RunObserverAndDeadlockStop) {
  BipSystem sys = handshake();
  Engine engine(sys);
  quanta::common::Rng rng(1);
  std::size_t seen = 0;
  std::size_t steps = engine.run(10, rng, [&seen](const BipState&) {
    ++seen;
    return true;
  });
  EXPECT_EQ(steps, 1u);  // one handshake, then deadlock
  EXPECT_EQ(seen, 2u);   // initial + successor
}

}  // namespace
