// Integration tests for the DALA rover experiment (E6): safety by
// construction with the R2C controller, violations without it, deadlock
// freedom via exact search and D-Finder, and randomized fault-injection runs.
#include "models/dala.h"

#include <gtest/gtest.h>

#include "bip/dfinder.h"
#include "bip/flatten.h"

namespace {

using namespace quanta;

TEST(Dala, ControlledSystemIsSafeEverywhere) {
  auto d = models::make_dala({.with_controller = true});
  auto r = bip::explore(d.system, bip::ExploreOptions{},
                        [&d](const bip::BipState& s) { return d.safe(s); });
  EXPECT_FALSE(r.violation_found) << r.violating_state;
  EXPECT_FALSE(r.deadlock_found) << r.deadlock_state;
  EXPECT_GT(r.stats.states_stored, 10u);
}

TEST(Dala, UnprotectedSystemViolatesBothRules) {
  auto d = models::make_dala({.with_controller = false});
  EXPECT_EQ(bip::reachable(d.system, [&d](const bip::BipState& s) {
    return !d.rule1_ok(s);
  }), common::Verdict::kHolds) << "moving+transmitting must be reachable without the controller";
  EXPECT_EQ(bip::reachable(d.system, [&d](const bip::BipState& s) {
    return !d.rule2_ok(s);
  }), common::Verdict::kHolds) << "scan with unlocked platine must be reachable without the controller";
}

TEST(Dala, ControllerPermitsAllActivities) {
  // The controller must not be over-restrictive: every activity remains
  // individually reachable.
  auto d = models::make_dala({.with_controller = true});
  EXPECT_EQ(bip::reachable(d.system, [&d](const bip::BipState& s) {
    return s.places[static_cast<std::size_t>(d.rflex)] == d.rflex_moving;
  }), common::Verdict::kHolds);
  EXPECT_EQ(bip::reachable(d.system, [&d](const bip::BipState& s) {
    return s.places[static_cast<std::size_t>(d.antenna)] == d.antenna_comm;
  }), common::Verdict::kHolds);
  EXPECT_EQ(bip::reachable(d.system, [&d](const bip::BipState& s) {
    return s.places[static_cast<std::size_t>(d.laser)] == d.laser_scanning;
  }), common::Verdict::kHolds);
}

TEST(Dala, DFinderProvesControlledDeadlockFreedom) {
  auto d = models::make_dala({.with_controller = true});
  auto r = bip::dfinder_deadlock_check(d.system);
  EXPECT_TRUE(r.deadlock_free)
      << r.candidates << " candidates, e.g. "
      << (r.examples.empty() ? "-" : r.examples[0]);
}

TEST(Dala, FaultInjectionRunsNeverGoUnsafe) {
  auto d = models::make_dala({.with_controller = true});
  bip::Engine engine(d.system);
  common::Rng rng(2024);
  std::size_t unsafe = 0;
  for (int run = 0; run < 50; ++run) {
    engine.reset();
    engine.run(200, rng, [&d, &unsafe](const bip::BipState& s) {
      if (!d.safe(s)) ++unsafe;
      return true;
    });
  }
  EXPECT_EQ(unsafe, 0u);
}

TEST(Dala, FaultInjectionTriggersWithoutController) {
  auto d = models::make_dala({.with_controller = false});
  bip::Engine engine(d.system);
  common::Rng rng(2024);
  std::size_t unsafe = 0;
  for (int run = 0; run < 50; ++run) {
    engine.reset();
    engine.run(200, rng, [&d, &unsafe](const bip::BipState& s) {
      if (!d.safe(s)) ++unsafe;
      return true;
    });
  }
  EXPECT_GT(unsafe, 0u);
}

TEST(Dala, PriorityPrefersMotionOverComm) {
  // Drive the system to a state where both comm_start and move_start are
  // enabled; the priority layer must keep only motion.
  auto d = models::make_dala({.with_controller = true});
  bip::Engine engine(d.system);
  // NDD: Idle -> Planning -> Ready (internal steps) so move_start is ready.
  bip::BipState s = engine.initial();
  for (int step = 0; step < 2; ++step) {
    bool advanced = false;
    for (const auto& i : engine.enabled(s)) {
      if (i.connector == -1 &&
          i.participants[0].component == d.ndd) {
        s = engine.apply(s, i);
        advanced = true;
        break;
      }
    }
    ASSERT_TRUE(advanced);
  }
  bool comm_enabled_raw = false;
  bool move_enabled_raw = false;
  for (const auto& i : engine.enabled(s)) {
    if (i.connector == d.c_comm_start) comm_enabled_raw = true;
    if (i.connector == d.c_move_start) move_enabled_raw = true;
  }
  ASSERT_TRUE(comm_enabled_raw);
  ASSERT_TRUE(move_enabled_raw);
  for (const auto& i : engine.enabled_maximal(s)) {
    EXPECT_NE(i.connector, d.c_comm_start)
        << "comm_start must be suppressed while move_start is enabled";
  }
}

TEST(Dala, FlattenedControlledSystemMatchesExploration) {
  auto d = models::make_dala({.with_controller = true});
  auto exact = bip::explore(d.system);
  auto flat = bip::flatten(d.system);
  EXPECT_FALSE(flat.stats.truncated);
  EXPECT_EQ(static_cast<std::size_t>(flat.flat.place_count()),
            exact.stats.states_stored);
}

}  // namespace
