// Unit and property tests for the DBM zone library.
#include "dbm/dbm.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "common/rng.h"

namespace {

using namespace quanta::dbm;

TEST(Bound, EncodingRoundTrip) {
  EXPECT_EQ(bound_value(bound_le(5)), 5);
  EXPECT_FALSE(bound_is_strict(bound_le(5)));
  EXPECT_EQ(bound_value(bound_lt(-3)), -3);
  EXPECT_TRUE(bound_is_strict(bound_lt(-3)));
}

TEST(Bound, OrderingMatchesStrength) {
  // (m, <) is strictly tighter than (m, <=), which is tighter than (m+1, <).
  EXPECT_LT(bound_lt(4), bound_le(4));
  EXPECT_LT(bound_le(4), bound_lt(5));
  EXPECT_LT(bound_le(4), kInf);
}

TEST(Bound, Addition) {
  EXPECT_EQ(bound_add(bound_le(2), bound_le(3)), bound_le(5));
  EXPECT_EQ(bound_add(bound_le(2), bound_lt(3)), bound_lt(5));
  EXPECT_EQ(bound_add(bound_lt(2), bound_lt(3)), bound_lt(5));
  EXPECT_EQ(bound_add(kInf, bound_le(1)), kInf);
  EXPECT_EQ(bound_add(bound_le(-7), kInf), kInf);
}

TEST(Bound, Negation) {
  EXPECT_EQ(bound_negate(bound_le(5)), bound_lt(-5));
  EXPECT_EQ(bound_negate(bound_lt(5)), bound_le(-5));
  EXPECT_EQ(bound_negate(bound_negate(bound_le(3))), bound_le(3));
}

TEST(Dbm, ZeroContainsOnlyOrigin) {
  Dbm z = Dbm::zero(3);
  EXPECT_FALSE(z.is_empty());
  EXPECT_TRUE(z.contains_point({0.0, 0.0, 0.0}));
  EXPECT_FALSE(z.contains_point({0.0, 1.0, 0.0}));
}

TEST(Dbm, UniversalContainsEverythingNonNegative) {
  Dbm u = Dbm::universal(3);
  EXPECT_TRUE(u.contains_point({0.0, 0.0, 0.0}));
  EXPECT_TRUE(u.contains_point({0.0, 100.5, 3.25}));
  EXPECT_FALSE(u.contains_point({0.0, -0.5, 1.0}));
}

TEST(Dbm, ConstrainBasic) {
  Dbm z = Dbm::universal(2);
  ASSERT_TRUE(z.constrain(1, 0, bound_le(5)));   // x <= 5
  ASSERT_TRUE(z.constrain(0, 1, bound_le(-2)));  // x >= 2
  EXPECT_TRUE(z.contains_point({0.0, 3.0}));
  EXPECT_FALSE(z.contains_point({0.0, 1.0}));
  EXPECT_FALSE(z.contains_point({0.0, 6.0}));
  // Conflicting constraint empties the zone.
  EXPECT_FALSE(z.constrain(1, 0, bound_lt(2)));
  EXPECT_TRUE(z.is_empty());
}

TEST(Dbm, SatisfiesDoesNotModify) {
  Dbm z = Dbm::universal(2);
  ASSERT_TRUE(z.constrain(1, 0, bound_le(5)));
  Dbm copy = z;
  EXPECT_TRUE(z.satisfies(0, 1, bound_le(-4)));   // x >= 4 intersects [0,5]
  EXPECT_FALSE(z.satisfies(0, 1, bound_le(-6)));  // x >= 6 does not
  EXPECT_EQ(z, copy);
}

TEST(Dbm, UpRemovesUpperBounds) {
  Dbm z = Dbm::zero(3);
  z.up();
  EXPECT_TRUE(z.contains_point({0.0, 7.0, 7.0}));
  // Delay preserves clock differences: x1 - x2 == 0 still required.
  EXPECT_FALSE(z.contains_point({0.0, 7.0, 3.0}));
}

TEST(Dbm, DownReachesPast) {
  Dbm z = Dbm::universal(2);
  ASSERT_TRUE(z.constrain(1, 0, bound_le(10)));
  ASSERT_TRUE(z.constrain(0, 1, bound_le(-8)));  // x in [8, 10]
  z.down();
  EXPECT_TRUE(z.contains_point({0.0, 1.0}));
  EXPECT_TRUE(z.contains_point({0.0, 10.0}));
  EXPECT_FALSE(z.contains_point({0.0, 11.0}));
}

TEST(Dbm, ResetSetsValue) {
  Dbm z = Dbm::zero(3);
  z.up();
  z.reset(1, 0);
  EXPECT_TRUE(z.contains_point({0.0, 0.0, 4.0}));
  EXPECT_FALSE(z.contains_point({0.0, 1.0, 4.0}));
  z.reset(2, 3);
  EXPECT_TRUE(z.contains_point({0.0, 0.0, 3.0}));
  EXPECT_FALSE(z.contains_point({0.0, 0.0, 2.0}));
}

TEST(Dbm, FreeClock) {
  Dbm z = Dbm::zero(3);
  z.free_clock(1);
  EXPECT_TRUE(z.contains_point({0.0, 42.0, 0.0}));
  EXPECT_FALSE(z.contains_point({0.0, 42.0, 1.0}));
}

TEST(Dbm, CopyClock) {
  Dbm z = Dbm::zero(3);
  z.up();                       // x1 == x2, any value
  ASSERT_TRUE(z.constrain(1, 0, bound_le(5)));
  z.reset(2, 0);                // x2 := 0
  z.copy_clock(2, 1);           // x2 := x1
  EXPECT_TRUE(z.contains_point({0.0, 4.0, 4.0}));
  EXPECT_FALSE(z.contains_point({0.0, 4.0, 0.0}));
}

TEST(Dbm, RelationBasics) {
  Dbm big = Dbm::universal(2);
  ASSERT_TRUE(big.constrain(1, 0, bound_le(10)));
  Dbm small = big;
  ASSERT_TRUE(small.constrain(1, 0, bound_le(5)));
  EXPECT_EQ(small.relation(big), Relation::kSubset);
  EXPECT_EQ(big.relation(small), Relation::kSuperset);
  EXPECT_EQ(big.relation(big), Relation::kEqual);
  EXPECT_TRUE(small.subset_eq(big));
  EXPECT_FALSE(big.subset_eq(small));
}

TEST(Dbm, IntersectionEmptiness) {
  Dbm a = Dbm::universal(2);
  ASSERT_TRUE(a.constrain(1, 0, bound_le(4)));   // x <= 4
  Dbm b = Dbm::universal(2);
  ASSERT_TRUE(b.constrain(0, 1, bound_lt(-4)));  // x > 4
  EXPECT_FALSE(a.intersects(b));
  Dbm c = Dbm::universal(2);
  ASSERT_TRUE(c.constrain(0, 1, bound_le(-4)));  // x >= 4
  EXPECT_TRUE(a.intersects(c));                  // touch at x == 4
}

TEST(Dbm, ExtrapolationAbstractsLargeBounds) {
  // Zone x1 in [17, 23] with max constant 10: lower bound weakens to > 10,
  // upper bound disappears.
  Dbm z = Dbm::universal(2);
  ASSERT_TRUE(z.constrain(1, 0, bound_le(23)));
  ASSERT_TRUE(z.constrain(0, 1, bound_le(-17)));
  z.extrapolate_max_bounds({0, 10});
  EXPECT_TRUE(z.contains_point({0.0, 1000.0}));
  EXPECT_TRUE(z.contains_point({0.0, 10.5}));
  EXPECT_FALSE(z.contains_point({0.0, 9.0}));
}

TEST(Dbm, ExtrapolationKeepsSmallZonesIntact) {
  Dbm z = Dbm::universal(2);
  ASSERT_TRUE(z.constrain(1, 0, bound_le(7)));
  ASSERT_TRUE(z.constrain(0, 1, bound_le(-2)));
  Dbm before = z;
  z.extrapolate_max_bounds({0, 10});
  EXPECT_EQ(z, before);
}

// ---------------------------------------------------------------------------
// Property tests: random canonical zones, checked against sampled points.
// ---------------------------------------------------------------------------

class DbmProperty : public ::testing::TestWithParam<int> {};

Dbm random_zone(quanta::common::Rng& rng, int dim, int max_const) {
  Dbm z = Dbm::universal(dim);
  int n_constraints = rng.uniform_int(0, 2 * dim);
  for (int c = 0; c < n_constraints; ++c) {
    int i = rng.uniform_int(0, dim - 1);
    int j = rng.uniform_int(0, dim - 1);
    if (i == j) continue;
    int v = rng.uniform_int(-max_const, max_const);
    raw_t b = rng.bernoulli(0.5) ? bound_le(v) : bound_lt(v);
    if (!z.constrain(i, j, b)) return random_zone(rng, dim, max_const);
  }
  return z;
}

std::vector<double> random_point(quanta::common::Rng& rng, int dim,
                                 double max_val) {
  std::vector<double> p(static_cast<std::size_t>(dim), 0.0);
  for (int i = 1; i < dim; ++i) p[static_cast<std::size_t>(i)] = rng.uniform(0.0, max_val);
  return p;
}

TEST_P(DbmProperty, CloseIsIdempotent) {
  quanta::common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Dbm z = random_zone(rng, 4, 12);
  Dbm closed = z;
  closed.close();
  EXPECT_EQ(z, closed) << "constrain() must keep the DBM canonical";
}

TEST_P(DbmProperty, InclusionAgreesWithPointMembership) {
  quanta::common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  Dbm a = random_zone(rng, 3, 10);
  Dbm b = random_zone(rng, 3, 10);
  if (a.subset_eq(b)) {
    for (int t = 0; t < 200; ++t) {
      auto p = random_point(rng, 3, 12.0);
      if (a.contains_point(p)) {
        EXPECT_TRUE(b.contains_point(p));
      }
    }
  }
}

TEST_P(DbmProperty, UpContainsOriginalAndAllDelays) {
  quanta::common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 3);
  Dbm z = random_zone(rng, 3, 10);
  Dbm up = z;
  up.up();
  EXPECT_TRUE(z.subset_eq(up));
  for (int t = 0; t < 100; ++t) {
    auto p = random_point(rng, 3, 12.0);
    if (!z.contains_point(p)) continue;
    double d = rng.uniform(0.0, 5.0);
    auto q = p;
    for (std::size_t i = 1; i < q.size(); ++i) q[i] += d;
    EXPECT_TRUE(up.contains_point(q));
  }
}

TEST_P(DbmProperty, DownIsGaloisAdjointOfUp) {
  quanta::common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 29 + 5);
  Dbm z = random_zone(rng, 3, 10);
  Dbm down = z;
  down.down();
  // Every point of down can delay into z.
  for (int t = 0; t < 100; ++t) {
    auto p = random_point(rng, 3, 12.0);
    if (!down.contains_point(p)) continue;
    bool can_reach = false;
    for (double d = 0.0; d <= 25.0 && !can_reach; d += 0.25) {
      auto q = p;
      for (std::size_t i = 1; i < q.size(); ++i) q[i] += d;
      if (z.contains_point(q)) can_reach = true;
    }
    EXPECT_TRUE(can_reach) << "down() point cannot delay back into the zone";
  }
}

TEST_P(DbmProperty, ResetProjectsCorrectly) {
  quanta::common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  Dbm z = random_zone(rng, 3, 10);
  if (z.is_empty()) GTEST_SKIP();
  Dbm r = z;
  r.reset(1, 4);
  for (int t = 0; t < 100; ++t) {
    auto p = random_point(rng, 3, 12.0);
    if (!r.contains_point(p)) continue;
    EXPECT_DOUBLE_EQ(p[1], p[1]);  // structure check below
    EXPECT_NEAR(p[1], 4.0, 1e-6);
  }
}

TEST_P(DbmProperty, ExtrapolationIsAnUpperApproximation) {
  quanta::common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 11);
  Dbm z = random_zone(rng, 3, 20);
  Dbm ex = z;
  ex.extrapolate_max_bounds({0, 8, 8});
  EXPECT_TRUE(z.subset_eq(ex));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DbmProperty, ::testing::Range(0, 25));

}  // namespace
