// Tests for the MODEST-layer utilities: model classification, the mctau
// stripping transformation, and the modes DES scheduler policies.
#include "sta/sta.h"

#include <gtest/gtest.h>

#include "pta/pta.h"
#include "sta/des.h"
#include "sta/mctau.h"

namespace {

using namespace quanta;
using ta::cc_ge;
using ta::cc_le;
using ta::ProbBranch;
using ta::ProcessBuilder;
using ta::SyncKind;

ta::System plain_ta() {
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A", {cc_le(x, 5)});
  int b = pb.location("B");
  pb.edge(a, b, {cc_ge(x, 1)}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());
  return sys;
}

TEST(Classify, DistinguishesTaPtaSta) {
  EXPECT_EQ(sta::classify(plain_ta()), sta::ModelClass::kTa);

  ta::System pta_sys;
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int b = pb.location("B");
  pta::add_prob_edge(pb, a, {}, -1, SyncKind::kNone,
                     {ProbBranch{0.5, a, {}, nullptr, ""},
                      ProbBranch{0.5, b, {}, nullptr, ""}});
  pta_sys.add_process(pb.build());
  EXPECT_EQ(sta::classify(pta_sys), sta::ModelClass::kPta);

  ta::System sta_sys;
  ProcessBuilder qb("Q");
  qb.location("A", {}, false, false, /*exit_rate=*/2.5);
  sta_sys.add_process(qb.build());
  EXPECT_EQ(sta::classify(sta_sys), sta::ModelClass::kSta);
  EXPECT_STREQ(sta::to_string(sta::ModelClass::kPta), "PTA");
}

TEST(Mctau, StripPreservesIndicesAndExpandsBranches) {
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A", {cc_le(x, 3)});
  int b = pb.location("B");
  int c = pb.location("C");
  pta::add_prob_edge(pb, a, {cc_ge(x, 1)}, -1, SyncKind::kNone,
                     {ProbBranch{0.9, b, {{x, 0}}, nullptr, "hi"},
                      ProbBranch{0.1, c, {}, nullptr, "lo"}},
                     "coin");
  sys.add_process(pb.build());

  ta::System stripped = sta::strip_probabilities(sys);
  EXPECT_FALSE(stripped.has_probabilistic());
  EXPECT_EQ(stripped.process_count(), sys.process_count());
  ASSERT_EQ(stripped.process(0).edges.size(), 2u);
  // Both expanded edges keep the original guard.
  for (const auto& e : stripped.process(0).edges) {
    ASSERT_EQ(e.guard.size(), 1u);
  }
  EXPECT_EQ(stripped.process(0).edges[0].target, b);
  EXPECT_EQ(stripped.process(0).edges[1].target, c);
  // Location count and names unchanged.
  EXPECT_EQ(stripped.process(0).locations.size(), 3u);
  EXPECT_EQ(stripped.process(0).locations[2].name, "C");
}

TEST(Mctau, BothBranchOutcomesReachableAfterStrip) {
  ta::System sys;
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int b = pb.location("B");
  int c = pb.location("C");
  pta::add_prob_edge(pb, a, {}, -1, SyncKind::kNone,
                     {ProbBranch{0.999, b, {}, nullptr, ""},
                      ProbBranch{0.001, c, {}, nullptr, ""}});
  sys.add_process(pb.build());

  // Even the 0.1% branch is just "reachable" for mctau.
  auto to_c = sta::mctau_reach_probability(
      sys, [c](const ta::SymState& s) { return s.locs[0] == c; });
  EXPECT_FALSE(to_c.exact.has_value());
  auto nowhere = sta::mctau_reach_probability(
      sys, [](const ta::SymState&) { return false; });
  ASSERT_TRUE(nowhere.exact.has_value());
  EXPECT_EQ(*nowhere.exact, 0.0);
}

TEST(Des, AsapVsAlapWindow) {
  // One edge with window [1, 5]: ASAP fires at 1, ALAP at 5.
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A", {cc_le(x, 5)});
  int b = pb.location("B");
  pb.edge(a, b, {cc_ge(x, 1)}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());

  auto terminal = [](const ta::ConcreteState& s) { return s.locs[0] == 1; };
  sta::DesOptions asap;
  asap.policy = sta::SchedulerPolicy::kAsap;
  auto r1 = sta::DesSimulator(sys, 1, asap).run(terminal);
  EXPECT_TRUE(r1.terminated);
  EXPECT_NEAR(r1.end_time, 1.0, 1e-6);

  sta::DesOptions alap;
  alap.policy = sta::SchedulerPolicy::kAlap;
  auto r2 = sta::DesSimulator(sys, 1, alap).run(terminal);
  EXPECT_TRUE(r2.terminated);
  EXPECT_NEAR(r2.end_time, 5.0, 1e-6);

  sta::DesOptions uni;
  uni.policy = sta::SchedulerPolicy::kUniformRandom;
  quanta::common::RunningStats st;
  sta::DesSimulator sim(sys, 17, uni);
  for (int i = 0; i < 2000; ++i) st.add(sim.run(terminal).end_time);
  EXPECT_NEAR(st.mean(), 3.0, 0.15);  // uniform over [1,5]
  EXPECT_GE(st.min(), 1.0 - 1e-9);
  EXPECT_LE(st.max(), 5.0 + 1e-9);
}

TEST(Des, WatchAndMonitorBookkeeping) {
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A", {cc_le(x, 2)});
  int b = pb.location("B", {cc_le(x, 4)});
  int c = pb.location("C");
  pb.edge(a, b, {cc_ge(x, 2)}, -1, SyncKind::kNone, {});
  pb.edge(b, c, {cc_ge(x, 4)}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());

  sta::DesOptions opts;
  opts.policy = sta::SchedulerPolicy::kAlap;
  sta::DesSimulator sim(sys, 5, opts);
  auto run = sim.run(
      [](const ta::ConcreteState& s) { return s.locs[0] == 2; },
      {[](const ta::ConcreteState& s) { return s.locs[0] == 1; }},
      {[](const ta::ConcreteState& s) { return s.locs[0] != 1; }});
  EXPECT_TRUE(run.terminated);
  EXPECT_NEAR(run.end_time, 4.0, 1e-6);
  EXPECT_NEAR(run.first_hit[0], 2.0, 1e-6);
  EXPECT_FALSE(run.monitor_ok[0]) << "monitor must trip when B is visited";
}

TEST(Des, TimeDivergenceEndsRun) {
  // No edges at all: the run cannot terminate and must not loop forever.
  ta::System sys;
  ProcessBuilder pb("P");
  pb.location("A");
  sys.add_process(pb.build());
  sta::DesSimulator sim(sys, 3, sta::DesOptions{});
  auto run = sim.run([](const ta::ConcreteState&) { return false; });
  EXPECT_FALSE(run.terminated);
}

}  // namespace
