// Tests for the model exporters (DOT, UPPAAL XML — the mctau bridge), BIP
// code generation (compiled and executed as part of the test), and ECDAR
// composition.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bip/codegen.h"
#include "ecdar/compose.h"
#include "ecdar/refinement.h"
#include "models/brp.h"
#include "models/train_gate.h"
#include "ta/export.h"

namespace {

using namespace quanta;

TEST(Export, DotContainsStructure) {
  auto tg = models::make_train_gate(2);
  std::string dot = ta::to_dot(tg.system);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Train(0)"), std::string::npos);
  EXPECT_NE(dot.find("Gate"), std::string::npos);
  EXPECT_NE(dot.find("x0 <= 20"), std::string::npos);  // Appr invariant
  EXPECT_NE(dot.find("appr[1]!"), std::string::npos);  // sync label
  // The committed controller location is highlighted.
  EXPECT_NE(dot.find("lightpink"), std::string::npos);
}

TEST(Export, UppaalXmlIsWellFormedEnough) {
  auto tg = models::make_train_gate(2);
  std::string xml = ta::to_uppaal_xml(tg.system);
  EXPECT_EQ(xml.find("<?xml"), 0u);
  EXPECT_NE(xml.find("<nta>"), std::string::npos);
  EXPECT_NE(xml.find("</nta>"), std::string::npos);
  // Declarations: clocks, channels, queue variables.
  EXPECT_NE(xml.find("clock x0;"), std::string::npos);
  EXPECT_NE(xml.find("chan appr[0];"), std::string::npos);
  EXPECT_NE(xml.find("int[0,2] len = 0;"), std::string::npos);
  // Templates with invariants and syncs.
  EXPECT_NE(xml.find("<template>"), std::string::npos);
  EXPECT_NE(xml.find("kind=\"invariant\""), std::string::npos);
  EXPECT_NE(xml.find("kind=\"synchronisation\""), std::string::npos);
  EXPECT_NE(xml.find("<committed/>"), std::string::npos);
  // Guard operators must be escaped.
  EXPECT_EQ(xml.find("x0 >="), std::string::npos);
  EXPECT_NE(xml.find("&gt;="), std::string::npos);
  // System instantiation line.
  EXPECT_NE(xml.find("<system>system Train(0), Train(1), Gate;</system>"),
            std::string::npos);
}

TEST(Export, ProbabilisticEdgesAreMarked) {
  auto brp = models::make_brp();
  std::string xml = ta::to_uppaal_xml(brp.system);
  EXPECT_NE(xml.find("probabilistic edge overapproximated"), std::string::npos);
}

TEST(Codegen, EmitsSelfContainedProgram) {
  bip::BipSystem sys;
  bip::Component c("Ping");
  int a = c.add_place("A");
  int b = c.add_place("B");
  c.add_transition(a, b, -1, nullptr, nullptr, "go");
  c.add_transition(b, a, -1, nullptr, nullptr, "back");
  c.set_initial(a);
  sys.add_component(std::move(c));

  std::string code = bip::generate_code(sys);
  EXPECT_NE(code.find("kNumStates = 2"), std::string::npos);
  EXPECT_NE(code.find("int main"), std::string::npos);
  EXPECT_NE(code.find("Ping:go"), std::string::npos);
  EXPECT_EQ(code.find("quanta::"), code.find("quanta::bip::generate_code"))
      << "generated code must not depend on the library";
}

TEST(Codegen, GeneratedCodeCompilesAndRuns) {
  bip::BipSystem sys;
  for (int i = 0; i < 2; ++i) {
    bip::Component c("C" + std::to_string(i));
    int p0 = c.add_place("P0");
    int p1 = c.add_place("P1");
    int port = c.add_port("sync");
    c.add_transition(p0, p1, port);
    c.add_transition(p1, p0, port);
    c.set_initial(p0);
    sys.add_component(std::move(c));
  }
  bip::Connector conn;
  conn.name = "lockstep";
  conn.ports = {{0, 0}, {1, 0}};
  sys.add_connector(std::move(conn));

  bip::CodegenOptions opts;
  opts.run_steps = 50;
  std::string code = bip::generate_code(sys, opts);

  const char* src = "/tmp/quanta_codegen_test.cpp";
  const char* bin = "/tmp/quanta_codegen_test";
  {
    std::ofstream out(src);
    out << code;
  }
  std::string compile = std::string("g++ -std=c++17 -O1 -o ") + bin + " " + src +
                        " 2>/tmp/quanta_codegen_test.err";
  ASSERT_EQ(std::system(compile.c_str()), 0) << "generated code must compile";
  std::string run = std::string(bin) + " 3 > /tmp/quanta_codegen_test.out";
  ASSERT_EQ(std::system(run.c_str()), 0);
  std::ifstream in("/tmp/quanta_codegen_test.out");
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("lockstep"), std::string::npos)
      << "the generated scheduler must fire the rendezvous";
}

TEST(Codegen, RefusesHugeSystems) {
  bip::BipSystem sys;
  bip::Component c("Counter");
  int p = c.add_place("P");
  int v = c.declare_var("v", 0, 0, 1000);
  c.add_transition(p, p, -1, nullptr, [v](common::Valuation& vars) {
    if (vars[v] < 1000) vars[v] += 1;
  });
  c.set_initial(p);
  sys.add_component(std::move(c));
  bip::CodegenOptions opts;
  opts.limits.max_states = 10;
  EXPECT_THROW(bip::generate_code(sys, opts), std::invalid_argument);
}

// ---- ECDAR composition ------------------------------------------------------

ecdar::Tioa grant_responder(int lo, int hi) {
  ecdar::Tioa spec;
  int req = spec.system.add_channel("req");
  int grant = spec.system.add_channel("grant");
  spec.inputs = {req};
  int x = spec.system.add_clock("x");
  ta::ProcessBuilder pb("Resp");
  int idle = pb.location("Idle");
  int busy = pb.location("Busy", {ta::cc_le(x, hi)});
  pb.set_initial(idle);
  pb.edge(idle, busy, {}, req, ta::SyncKind::kReceive, {{x, 0}});
  pb.edge(busy, idle, {ta::cc_ge(x, lo)}, grant, ta::SyncKind::kSend, {});
  spec.system.add_process(pb.build());
  return spec;
}

/// User: sends req every >= 4 time units, consumes grant.
ecdar::Tioa grant_user() {
  ecdar::Tioa spec;
  int req = spec.system.add_channel("req");
  int grant = spec.system.add_channel("grant");
  spec.inputs = {grant};
  int y = spec.system.add_clock("y");
  ta::ProcessBuilder pb("User");
  int think = pb.location("Think");
  int wait = pb.location("Wait");
  pb.set_initial(think);
  pb.edge(think, wait, {ta::cc_ge(y, 4)}, req, ta::SyncKind::kSend, {{y, 0}});
  pb.edge(wait, think, {}, grant, ta::SyncKind::kReceive, {});
  spec.system.add_process(pb.build());
  return spec;
}

TEST(EcdarCompose, ProductStructure) {
  auto composite = ecdar::compose(grant_responder(1, 3), grant_user());
  // 2 x 2 product locations, shared actions become outputs of the composite.
  EXPECT_EQ(composite.system.process(0).locations.size(), 4u);
  EXPECT_TRUE(composite.inputs.empty())
      << "req and grant are each an output on one side";
  // Both clocks survive.
  EXPECT_EQ(composite.system.clock_count(), 2);
}

TEST(EcdarCompose, CompositeIsConsistentAndRefinesItself) {
  auto composite = ecdar::compose(grant_responder(1, 3), grant_user());
  EXPECT_TRUE(ecdar::check_consistency(composite).consistent);
  EXPECT_TRUE(ecdar::check_refinement(composite, composite).refines());
}

TEST(EcdarCompose, RefinementIsPreservedUnderComposition) {
  // tight <= loose implies tight||user <= loose||user (ECDAR's independent
  // implementability property, checked on this instance).
  auto tight = ecdar::compose(grant_responder(1, 3), grant_user());
  auto loose = ecdar::compose(grant_responder(1, 5), grant_user());
  EXPECT_TRUE(ecdar::check_refinement(tight, loose).refines());
  EXPECT_FALSE(ecdar::check_refinement(loose, tight).refines());
}

TEST(EcdarCompose, OutputOutputClashRejected) {
  auto a = grant_responder(1, 3);
  auto b = grant_responder(1, 3);  // both emit grant!
  EXPECT_THROW(ecdar::compose(a, b), std::invalid_argument);
}

TEST(EcdarCompose, RejectsDataVariables) {
  auto a = grant_responder(1, 3);
  auto b = grant_user();
  b.system.vars().declare("v", 0, 0, 1);
  EXPECT_THROW(ecdar::compose(a, b), std::invalid_argument);
}

}  // namespace
