// Tests for the statistical primitives (Welford moments, Clopper-Pearson
// intervals, Chernoff bounds, RNG sampling).
#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace {

using namespace quanta::common;

TEST(RunningStats, MomentsMatchClosedForm) {
  RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats st;
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.variance(), 0.0);
  st.add(3.5);
  EXPECT_DOUBLE_EQ(st.mean(), 3.5);
  EXPECT_EQ(st.variance(), 0.0);
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(incomplete_beta(1, 1, 0.3), 0.3, 1e-9);
  // I_x(2,1) = x^2.
  EXPECT_NEAR(incomplete_beta(2, 1, 0.5), 0.25, 1e-9);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(incomplete_beta(3.0, 7.0, 0.2),
              1.0 - incomplete_beta(7.0, 3.0, 0.8), 1e-9);
  EXPECT_EQ(incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_EQ(incomplete_beta(2, 3, 1.0), 1.0);
}

TEST(ClopperPearson, DegenerateCounts) {
  auto [lo0, hi0] = clopper_pearson(0, 100, 0.05);
  EXPECT_EQ(lo0, 0.0);
  EXPECT_NEAR(hi0, 1.0 - std::pow(0.025, 1.0 / 100.0), 1e-6);
  auto [lo1, hi1] = clopper_pearson(100, 100, 0.05);
  EXPECT_EQ(hi1, 1.0);
  EXPECT_NEAR(lo1, std::pow(0.025, 1.0 / 100.0), 1e-6);
}

TEST(ClopperPearson, CoversPointEstimate) {
  auto [lo, hi] = clopper_pearson(30, 100, 0.05);
  EXPECT_LT(lo, 0.3);
  EXPECT_GT(hi, 0.3);
  EXPECT_GT(lo, 0.2);
  EXPECT_LT(hi, 0.41);
}

TEST(ClopperPearson, IntervalShrinksWithSamples) {
  auto [lo1, hi1] = clopper_pearson(30, 100, 0.05);
  auto [lo2, hi2] = clopper_pearson(300, 1000, 0.05);
  EXPECT_LT(hi2 - lo2, hi1 - lo1);
}

TEST(Chernoff, MatchesFormula) {
  // n >= ln(2/delta) / (2 eps^2)
  EXPECT_EQ(chernoff_sample_count(0.05, 0.05),
            static_cast<std::size_t>(std::ceil(std::log(40.0) / 0.005)));
  EXPECT_GT(chernoff_sample_count(0.01, 0.05), chernoff_sample_count(0.05, 0.05));
}

TEST(Chernoff, RejectsBadParameters) {
  EXPECT_THROW(chernoff_sample_count(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(chernoff_sample_count(0.1, 1.5), std::invalid_argument);
}

TEST(Rng, ExponentialMeanAndReproducibility) {
  Rng rng(42);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, WeightedChoiceDistribution) {
  Rng rng(3);
  double weights[] = {1.0, 3.0, 0.0, 6.0};
  std::size_t counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 20000; ++i) counts[rng.weighted_choice(weights)]++;
  EXPECT_EQ(counts[2], 0u);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[3]) / 20000.0, 0.6, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(5);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1e300), std::invalid_argument);
  // The generator stays usable after a rejected call.
  EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, WeightedChoiceErrorPaths) {
  Rng rng(6);
  double negative[] = {1.0, -0.5, 2.0};
  EXPECT_THROW(rng.weighted_choice(negative), std::invalid_argument);
  double zeros[] = {0.0, 0.0, 0.0};
  EXPECT_THROW(rng.weighted_choice(zeros), std::invalid_argument);
  EXPECT_THROW(rng.weighted_choice({}), std::invalid_argument)
      << "an empty weight list has no positive weight";
  // A single positive weight is always chosen, whatever surrounds it.
  double lone[] = {0.0, 3.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_choice(lone), 1u);
}

TEST(RngStream, MixMatchesSplitMix64Reference) {
  // Reference values of the SplitMix64 stream seeded with 0 (Vigna's
  // splitmix64.c): mix(0, i) is the (i+1)-th output.
  EXPECT_EQ(RngStream::mix(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(RngStream::mix(0, 1), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(RngStream::mix(0, 2), 0x06c45d188009454fULL);
  EXPECT_EQ(RngStream(0).seed_for(0), RngStream::mix(0, 0));
}

TEST(RngStream, StreamsAreStatisticallyIndependent) {
  // The first draw of many consecutive run streams must look uniform — this
  // is what decorrelates parallel runs that share a master seed.
  RngStream streams(0xabcdefULL);
  double sum = 0.0;
  int below_half = 0;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    Rng rng = streams.rng(i);
    double u = rng.uniform01();
    sum += u;
    if (u < 0.5) ++below_half;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
  EXPECT_NEAR(below_half / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

}  // namespace
