// Tests for the statistical model checker: calibration on models with
// analytically known probabilities, plus the train-gate Fig. 4 behaviour.
#include "smc/simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "models/train_gate.h"
#include "smc/cdf.h"
#include "smc/estimate.h"
#include "smc/sprt.h"

namespace {

using namespace quanta;
using ta::cc_ge;
using ta::cc_le;
using ta::ProcessBuilder;
using ta::SyncKind;

/// One process, exponential rate `rate` in Init, single edge to Done.
/// First-hit time is Exp(rate): P(hit <= T) = 1 - exp(-rate*T).
ta::System make_exponential(double rate) {
  ta::System sys;
  ProcessBuilder pb("P");
  int init = pb.location("Init", {}, false, false, rate);
  int done = pb.location("Done");
  pb.edge(init, done, {}, -1, SyncKind::kNone, {}, nullptr, nullptr, "fire");
  sys.add_process(pb.build());
  return sys;
}

smc::TimeBoundedReach done_within(const ta::System& sys, double bound) {
  int p = sys.process_index("P");
  int done = sys.process(p).location_index("Done");
  smc::TimeBoundedReach prop;
  prop.time_bound = bound;
  prop.goal = [p, done](const ta::ConcreteState& s) {
    return s.locs[static_cast<std::size_t>(p)] == done;
  };
  return prop;
}

TEST(Simulator, ExponentialHitProbability) {
  ta::System sys = make_exponential(0.5);
  auto prop = done_within(sys, 2.0);
  auto est = smc::estimate_probability_runs(sys, prop, 20000, 0.05, 1);
  double expected = 1.0 - std::exp(-0.5 * 2.0);  // ~0.632
  EXPECT_NEAR(est.p_hat, expected, 0.02);
  // The CI must bracket the point estimate and be reasonably tight; whether
  // it covers the true value is itself probabilistic (95%), so allow slack.
  EXPECT_LE(est.ci_low, est.p_hat);
  EXPECT_GE(est.ci_high, est.p_hat);
  EXPECT_LT(est.ci_high - est.ci_low, 0.03);
  EXPECT_NEAR(0.5 * (est.ci_low + est.ci_high), expected, 0.02);
}

TEST(Simulator, UniformDelayUnderInvariant) {
  // Init with invariant x<=10 and edge guard x>=0: delay ~ U(0,10); hit by
  // time 4 with probability 0.4.
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int init = pb.location("Init", {cc_le(x, 10)});
  int done = pb.location("Done");
  pb.edge(init, done, {}, -1, SyncKind::kNone, {}, nullptr, nullptr, "fire");
  sys.add_process(pb.build());

  auto prop = done_within(sys, 4.0);
  auto est = smc::estimate_probability_runs(sys, prop, 20000, 0.05, 2);
  EXPECT_NEAR(est.p_hat, 0.4, 0.02);
}

TEST(Simulator, GuardLowerBoundShiftsWindow) {
  // Invariant x<=10, guard x>=6: delay ~ U(6,10); by time 8 -> 0.5.
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int init = pb.location("Init", {cc_le(x, 10)});
  int done = pb.location("Done");
  pb.edge(init, done, {cc_ge(x, 6)}, -1, SyncKind::kNone, {}, nullptr, nullptr,
          "fire");
  sys.add_process(pb.build());
  auto prop = done_within(sys, 8.0);
  auto est = smc::estimate_probability_runs(sys, prop, 20000, 0.05, 3);
  EXPECT_NEAR(est.p_hat, 0.5, 0.02);
  // Nothing can ever fire before 6.
  auto early = smc::estimate_probability_runs(sys, done_within(sys, 5.9), 2000,
                                              0.05, 4);
  EXPECT_EQ(early.hits, 0u);
}

TEST(Simulator, RaceBetweenTwoExponentials) {
  // Two components with rates 1 and 3 racing to their Done locations; the
  // probability the fast one wins is 3/4.
  ta::System sys;
  for (int i = 0; i < 2; ++i) {
    ProcessBuilder pb("P" + std::to_string(i));
    int init = pb.location("Init", {}, false, false, i == 0 ? 1.0 : 3.0);
    int done = pb.location("Done");
    pb.edge(init, done, {}, -1, SyncKind::kNone, {}, nullptr, nullptr, "fire");
    sys.add_process(pb.build());
  }
  // Goal: P1 (fast) reaches Done while P0 is still in Init.
  smc::TimeBoundedReach prop;
  prop.time_bound = 1e6;
  prop.goal = [](const ta::ConcreteState& s) {
    return s.locs[1] == 1 && s.locs[0] == 0;
  };
  auto est = smc::estimate_probability_runs(sys, prop, 20000, 0.05, 5);
  EXPECT_NEAR(est.p_hat, 0.75, 0.02);
}

TEST(Estimate, ChernoffSampleCountIsUsed) {
  ta::System sys = make_exponential(1.0);
  auto est = smc::estimate_probability(sys, done_within(sys, 1.0), 0.05, 0.05, 6);
  EXPECT_EQ(est.runs, quanta::common::chernoff_sample_count(0.05, 0.05));
}

TEST(Sprt, AcceptsAndRejectsCorrectly) {
  ta::System sys = make_exponential(0.5);
  auto prop = done_within(sys, 2.0);  // true p ~ 0.632
  smc::SprtOptions opts;
  opts.indifference = 0.05;
  auto low = smc::sprt_test(sys, prop, 0.4, opts, 7);
  EXPECT_EQ(low.verdict, smc::SprtVerdict::kAccepted) << "p=0.63 >= 0.4";
  auto high = smc::sprt_test(sys, prop, 0.9, opts, 8);
  EXPECT_EQ(high.verdict, smc::SprtVerdict::kRejected) << "p=0.63 < 0.9";
  // SPRT should need far fewer runs than the Chernoff bound for easy cases.
  EXPECT_LT(low.runs, 500u);
}

TEST(Cdf, MatchesExponentialDistribution) {
  ta::System sys = make_exponential(1.0);
  auto prop = done_within(sys, 10.0);
  auto times = smc::first_hit_times(sys, prop, 20000, 9);
  auto series = smc::empirical_cdf(times, 20000, 10.0, 11);
  ASSERT_EQ(series.grid.size(), 11u);
  for (std::size_t i = 0; i < series.grid.size(); ++i) {
    double expected = 1.0 - std::exp(-series.grid[i]);
    EXPECT_NEAR(series.prob[i], expected, 0.02) << "t=" << series.grid[i];
  }
}

TEST(TrainGateSmc, CommittedStopHappensInstantly) {
  // Sanity: simulation of the full train-gate never violates mutual
  // exclusion and eventually gets a train across.
  auto tg = models::make_train_gate(4);
  std::vector<int> cross;
  for (int i = 0; i < tg.num_trains; ++i) {
    cross.push_back(tg.system.process(tg.trains[i]).location_index("Cross"));
  }
  smc::TimeBoundedReach prop;
  prop.time_bound = 200.0;
  auto trains = tg.trains;
  prop.goal = [trains, cross](const ta::ConcreteState& s) {
    int n = 0;
    for (std::size_t i = 0; i < trains.size(); ++i) {
      if (s.locs[static_cast<std::size_t>(trains[i])] == cross[i]) ++n;
    }
    EXPECT_LE(n, 1) << "two trains on the bridge during simulation";
    return false;  // never stop early; we only monitor
  };
  smc::Simulator sim(tg.system, 10);
  for (int r = 0; r < 50; ++r) {
    auto res = sim.run(prop);
    EXPECT_FALSE(res.satisfied);
  }
}

TEST(TrainGateSmc, FasterTrainsCrossSooner) {
  // Fig. 4 shape: train rates are 1+id, so higher-id trains approach sooner
  // and their crossing-time CDF dominates at small t.
  auto tg = models::make_train_gate(6);
  auto cdf_for = [&tg](int train, std::uint64_t seed) {
    int p = tg.trains[static_cast<std::size_t>(train)];
    int cross = tg.system.process(p).location_index("Cross");
    smc::TimeBoundedReach prop;
    prop.time_bound = 100.0;
    prop.goal = [p, cross](const ta::ConcreteState& s) {
      return s.locs[static_cast<std::size_t>(p)] == cross;
    };
    auto times = smc::first_hit_times(tg.system, prop, 2000, seed);
    return smc::empirical_cdf(times, 2000, 100.0, 21);
  };
  auto slow = cdf_for(0, 21);
  auto fast = cdf_for(5, 22);
  // At t = 15 the fast train must clearly dominate.
  EXPECT_GT(fast.prob[3], slow.prob[3] + 0.1)
      << "fast=" << fast.prob[3] << " slow=" << slow.prob[3];
  // Both eventually cross with high probability.
  EXPECT_GT(fast.prob.back(), 0.95);
  EXPECT_GT(slow.prob.back(), 0.80);
}

}  // namespace
