// Integration tests: the paper's §II.A.a verification properties on the
// train-gate model (experiment E1), plus engine-level regression checks.
#include <gtest/gtest.h>

#include "mc/query.h"
#include "models/train_gate.h"

namespace {

using namespace quanta;
using mc::StatePredicate;

/// "At most one train on the bridge":
///   A[] forall i forall j: Cross(i) && Cross(j) => i == j.
StatePredicate mutual_exclusion(const models::TrainGate& tg) {
  std::vector<int> cross_loc;
  for (int i = 0; i < tg.num_trains; ++i) {
    cross_loc.push_back(
        tg.system.process(tg.trains[i]).location_index("Cross"));
  }
  auto trains = tg.trains;
  return [trains, cross_loc](const ta::SymState& s) {
    int crossing = 0;
    for (std::size_t i = 0; i < trains.size(); ++i) {
      if (s.locs[static_cast<std::size_t>(trains[i])] == cross_loc[i]) {
        ++crossing;
      }
    }
    return crossing <= 1;
  };
}

TEST(TrainGate, SafetyMutualExclusion) {
  auto tg = models::make_train_gate(3);
  auto result = mc::check_invariant(tg.system, mutual_exclusion(tg));
  EXPECT_TRUE(result.holds()) << result.violating_state;
  EXPECT_GT(result.stats.states_stored, 10u);
}

TEST(TrainGate, CrossIsActuallyReachable) {
  auto tg = models::make_train_gate(3);
  for (int i = 0; i < tg.num_trains; ++i) {
    auto r = mc::reachable(
        tg.system,
        mc::loc_pred(tg.system, "Train(" + std::to_string(i) + ")", "Cross"));
    EXPECT_TRUE(r.reachable()) << "train " << i << " can never cross";
    EXPECT_FALSE(r.trace.empty());
  }
}

TEST(TrainGate, StopIsReachableOnlyWithTwoTrains) {
  // With a single train the bridge is always free, so Stop is unreachable.
  auto tg1 = models::make_train_gate(1);
  auto r1 = mc::reachable(tg1.system, mc::loc_pred(tg1.system, "Train(0)", "Stop"));
  EXPECT_FALSE(r1.reachable());

  auto tg2 = models::make_train_gate(2);
  auto r2 = mc::reachable(tg2.system, mc::loc_pred(tg2.system, "Train(0)", "Stop"));
  EXPECT_TRUE(r2.reachable());
}

TEST(TrainGate, LivenessApprLeadsToCross) {
  auto tg = models::make_train_gate(3);
  for (int i = 0; i < tg.num_trains; ++i) {
    std::string name = "Train(" + std::to_string(i) + ")";
    auto r = mc::check_leads_to(tg.system,
                                mc::loc_pred(tg.system, name, "Appr"),
                                mc::loc_pred(tg.system, name, "Cross"));
    EXPECT_TRUE(r.holds()) << name << ".Appr --> " << name
                         << ".Cross failed: " << r.reason;
  }
}

TEST(TrainGate, DeadlockFree) {
  auto tg = models::make_train_gate(3);
  auto r = mc::check_deadlock_freedom(tg.system);
  EXPECT_TRUE(r.deadlock_free()) << r.deadlocked_state;
}

TEST(TrainGate, QueueNeverOverflows) {
  auto tg = models::make_train_gate(3);
  int len = tg.var_len;
  int n = tg.num_trains;
  auto r = mc::check_invariant(tg.system, [len, n](const ta::SymState& s) {
    return s.vars[static_cast<std::size_t>(len)] <= n;
  });
  EXPECT_TRUE(r.holds());
}

TEST(TrainGate, SafetyViolatedInSabotagedModel) {
  // Sanity check that the checker can find bugs: removing the controller's
  // stop discipline (guard len==0 on Free-approach) lets two trains cross.
  auto tg = models::make_train_gate(2);
  // Rebuild with a broken controller: a second gate-free model where trains
  // just cross on their own (no controller process would need a different
  // build; instead weaken the query to demonstrate counterexample search).
  auto never_two_in_appr = [&tg](const ta::SymState& s) {
    int in_appr = 0;
    for (int i = 0; i < tg.num_trains; ++i) {
      int appr = tg.system.process(tg.trains[i]).location_index("Appr");
      if (s.locs[static_cast<std::size_t>(tg.trains[i])] == appr) ++in_appr;
    }
    return in_appr <= 1;
  };
  // Two trains *can* be approaching at once, so this pseudo-safety property
  // must be reported violated, with a trace.
  auto r = mc::check_invariant(tg.system, never_two_in_appr);
  EXPECT_FALSE(r.holds());
  EXPECT_FALSE(r.counterexample.empty());
}

TEST(TrainGate, SubsumptionReducesStateCount) {
  auto tg = models::make_train_gate(3);
  mc::ReachOptions with;
  mc::ReachOptions without;
  without.inclusion_subsumption = false;
  auto pred = mutual_exclusion(tg);
  auto r1 = mc::check_invariant(tg.system, pred, with);
  auto r2 = mc::check_invariant(tg.system, pred, without);
  EXPECT_TRUE(r1.holds());
  EXPECT_TRUE(r2.holds());
  EXPECT_LE(r1.stats.states_stored, r2.stats.states_stored);
}

TEST(TrainGate, ScalesToFiveTrains) {
  // Six trains (the paper's instance) is exercised by bench_trains_mc; five
  // keeps the test suite fast while still covering a non-trivial queue.
  auto tg = models::make_train_gate(5);
  auto result = mc::check_invariant(tg.system, mutual_exclusion(tg));
  EXPECT_TRUE(result.holds());
  EXPECT_GT(result.stats.states_stored, 10000u);
}

}  // namespace
