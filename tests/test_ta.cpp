// Tests for the timed-automata model layer and its three semantics
// (symbolic / concrete / digital) on small hand-built systems.
#include "ta/model.h"

#include <gtest/gtest.h>

#include "ta/concrete.h"
#include "ta/digital.h"
#include "ta/symbolic.h"

namespace {

using namespace quanta::ta;

// A single process: Idle --(x>=2, a!)--> Busy(x<=5) --(x>=3, tau, x:=0)--> Idle
// plus a listener: Wait --(a?)--> Got.
System make_pair_system() {
  System sys;
  int x = sys.add_clock("x");
  int a = sys.add_channel("a");

  ProcessBuilder pb("P");
  int idle = pb.location("Idle");
  int busy = pb.location("Busy", {cc_le(x, 5)});
  pb.edge(idle, busy, {cc_ge(x, 2)}, a, SyncKind::kSend, {}, nullptr, nullptr,
          "a!");
  pb.edge(busy, idle, {cc_ge(x, 3)}, -1, SyncKind::kNone, {{x, 0}}, nullptr,
          nullptr, "tau");
  sys.add_process(pb.build());

  ProcessBuilder qb("Q");
  int wait = qb.location("Wait");
  int got = qb.location("Got");
  qb.edge(wait, got, {}, a, SyncKind::kReceive, {}, nullptr, nullptr, "a?");
  sys.add_process(qb.build());
  return sys;
}

TEST(Model, ValidateAcceptsWellFormed) {
  System sys = make_pair_system();
  EXPECT_NO_THROW(sys.validate());
}

TEST(Model, ValidateRejectsBadEdges) {
  System sys;
  sys.add_clock("x");
  ProcessBuilder pb("P");
  int l = pb.location("L");
  pb.edge(l, 7);  // target out of range
  sys.add_process(pb.build());
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(Model, MaxConstantsScanGuardsAndInvariants) {
  System sys = make_pair_system();
  auto k = sys.max_constants();
  ASSERT_EQ(k.size(), 2u);
  EXPECT_EQ(k[0], 0);
  EXPECT_EQ(k[1], 5);  // max of 2, 3, 5
}

TEST(Symbolic, InitialIsDelayClosed) {
  System sys = make_pair_system();
  SymbolicSemantics sem(sys);
  SymState init = sem.initial();
  // Initial state can delay arbitrarily: x unbounded above.
  EXPECT_GE(init.zone.upper_bound(1), quanta::dbm::kInf);
}

TEST(Symbolic, BinarySyncProducesJointMove) {
  System sys = make_pair_system();
  SymbolicSemantics sem(sys);
  auto succs = sem.successors(sem.initial());
  ASSERT_EQ(succs.size(), 1u);  // only the a! / a? handshake
  EXPECT_EQ(succs[0].move.participants.size(), 2u);
  EXPECT_EQ(succs[0].state.locs[0], 1);  // P in Busy
  EXPECT_EQ(succs[0].state.locs[1], 1);  // Q in Got
  // Guard x>=2 was applied: lower bound of x is 2.
  EXPECT_FALSE(succs[0].state.zone.satisfies(1, 0, quanta::dbm::bound_lt(2)));
}

TEST(Symbolic, InvariantBoundsDelay) {
  System sys = make_pair_system();
  SymbolicSemantics sem(sys);
  auto succs = sem.successors(sem.initial());
  ASSERT_EQ(succs.size(), 1u);
  const auto& busy = succs[0].state;
  // In Busy, the invariant x<=5 caps the zone.
  EXPECT_FALSE(busy.zone.satisfies(0, 1, quanta::dbm::bound_le(-6)));
  EXPECT_TRUE(busy.zone.satisfies(0, 1, quanta::dbm::bound_le(-5)));
}

TEST(Symbolic, CommittedLocationsBlockOthers) {
  System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("C");
  int a = pb.location("A");
  int b = pb.location("B", {}, /*committed=*/true);
  int c = pb.location("C");
  pb.edge(a, b, {}, -1, SyncKind::kNone, {}, nullptr, nullptr, "go");
  pb.edge(b, c, {}, -1, SyncKind::kNone, {}, nullptr, nullptr, "fin");
  sys.add_process(pb.build());

  ProcessBuilder qb("D");
  int d0 = qb.location("D0");
  int d1 = qb.location("D1");
  qb.edge(d0, d1, {cc_ge(x, 0)}, -1, SyncKind::kNone, {}, nullptr, nullptr,
          "other");
  sys.add_process(qb.build());

  SymbolicSemantics sem(sys);
  SymState init = sem.initial();
  // Move C into its committed location.
  SymState committed;
  bool found = false;
  for (auto& tr : sem.successors(init)) {
    if (tr.state.locs[0] == 1) {
      committed = tr.state;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  // From the committed state, only C may move.
  for (auto& tr : sem.successors(committed)) {
    EXPECT_EQ(tr.move.participants.front().first, 0)
        << "non-committed process moved while a committed location is active";
  }
  // And no delay happened entering the committed location: x == 0 exactly?
  // (x was not reset, so instead check: zone in committed state admits no
  // delay closure beyond what the source allowed — here B has no invariant
  // but the state is committed, so up() must not have been applied. The zone
  // of a committed state equals the guard-constrained source zone.)
  EXPECT_TRUE(sem.delay_forbidden(committed.locs, committed.vars));
}

TEST(Symbolic, UrgentLocationForbidsDelay) {
  System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("U");
  int a = pb.location("A");
  int b = pb.location("B", {}, false, /*urgent=*/true);
  pb.edge(a, b, {cc_le(x, 3)}, -1, SyncKind::kNone, {}, nullptr, nullptr, "go");
  pb.edge(b, a, {}, -1, SyncKind::kNone, {}, nullptr, nullptr, "back");
  sys.add_process(pb.build());
  SymbolicSemantics sem(sys);
  auto succs = sem.successors(sem.initial());
  ASSERT_EQ(succs.size(), 1u);
  // Entering the urgent location with x<=3: no delay closure is applied, so
  // the upper bound stays 3 (a non-urgent target would relax it to infinity).
  EXPECT_EQ(succs[0].state.zone.upper_bound(1), quanta::dbm::bound_le(3));
}

TEST(Symbolic, BroadcastReachesAllReceivers) {
  System sys;
  sys.add_clock("x");
  int ch = sys.add_channel("b", /*broadcast=*/true);
  ProcessBuilder pb("S");
  int s0 = pb.location("S0");
  int s1 = pb.location("S1");
  pb.edge(s0, s1, {}, ch, SyncKind::kSend, {}, nullptr, nullptr, "b!");
  sys.add_process(pb.build());
  for (int r = 0; r < 2; ++r) {
    ProcessBuilder qb("R" + std::to_string(r));
    int r0 = qb.location("R0");
    int r1 = qb.location("R1");
    qb.edge(r0, r1, {}, ch, SyncKind::kReceive, {}, nullptr, nullptr, "b?");
    sys.add_process(qb.build());
  }
  SymbolicSemantics sem(sys);
  auto succs = sem.successors(sem.initial());
  ASSERT_EQ(succs.size(), 1u);
  EXPECT_EQ(succs[0].move.participants.size(), 3u);
  EXPECT_EQ(succs[0].state.locs, (std::vector<int>{1, 1, 1}));
}

TEST(Concrete, DelayAndGuards) {
  System sys = make_pair_system();
  ConcreteSemantics sem(sys);
  ConcreteState s = sem.initial();
  EXPECT_TRUE(sem.enabled_moves_now(s).empty());  // x>=2 not yet satisfied
  sem.delay(s, 2.5);
  auto moves = sem.enabled_moves_now(s);
  ASSERT_EQ(moves.size(), 1u);
  sem.execute(s, moves[0]);
  EXPECT_EQ(s.locs[0], 1);
  EXPECT_EQ(s.locs[1], 1);
  // In Busy the invariant allows at most 5 - 2.5 further delay.
  EXPECT_NEAR(sem.invariant_max_delay(s), 2.5, 1e-9);
}

TEST(Concrete, MinEnablingDelay) {
  System sys = make_pair_system();
  ConcreteSemantics sem(sys);
  ConcreteState s = sem.initial();
  const Edge& send = sys.process(0).edges[0];
  EXPECT_NEAR(sem.min_enabling_delay(send, s), 2.0, 1e-9);
  sem.delay(s, 3.0);
  EXPECT_NEAR(sem.min_enabling_delay(send, s), 0.0, 1e-9);
}

TEST(Digital, UnitStepsRespectInvariants) {
  System sys = make_pair_system();
  DigitalSemantics sem(sys);
  DigitalState s = sem.initial();
  EXPECT_TRUE(sem.enabled_moves(s).empty());
  ASSERT_TRUE(sem.can_delay(s));
  s = sem.delay_one(sem.delay_one(s));  // x = 2
  auto moves = sem.enabled_moves(s);
  ASSERT_EQ(moves.size(), 1u);
  DigitalState busy = sem.apply(s, moves[0]);
  EXPECT_EQ(busy.locs[0], 1);
  // Invariant x<=5: can delay 3 more times, then no further.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sem.can_delay(busy)) << "step " << i;
    busy = sem.delay_one(busy);
  }
  EXPECT_FALSE(sem.can_delay(busy));
}

TEST(Digital, ClockCappingIsStable) {
  System sys = make_pair_system();
  DigitalSemantics sem(sys);
  DigitalState s = sem.initial();
  for (int i = 0; i < 100; ++i) {
    if (!sem.can_delay(s)) break;
    s = sem.delay_one(s);
  }
  EXPECT_LE(s.clocks[1], sem.cap(1));
  DigitalState again = sem.delay_one(s);
  EXPECT_EQ(again.clocks[1], s.clocks[1]) << "capped clock must not grow";
}

TEST(Digital, RejectsDiagonalConstraints) {
  System sys;
  int x = sys.add_clock("x");
  int y = sys.add_clock("y");
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int b = pb.location("B");
  pb.edge(a, b, {cc_diff_le(x, y, 3)}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());
  EXPECT_THROW(DigitalSemantics{sys}, std::invalid_argument);
}

}  // namespace
