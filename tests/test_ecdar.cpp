// Tests for the ECDAR specification theory: consistency and refinement
// between timed I/O specifications (experiment E9).
#include "ecdar/refinement.h"

#include <gtest/gtest.h>

namespace {

using namespace quanta;
using ta::cc_ge;
using ta::cc_le;
using ta::ProcessBuilder;
using ta::SyncKind;

/// Spec: on input `req`, emit `grant` within [lo, hi] time units.
ecdar::Tioa responder(int lo, int hi, const std::string& name = "Resp") {
  ecdar::Tioa spec;
  int req = spec.system.add_channel("req");
  int grant = spec.system.add_channel("grant");
  spec.inputs = {req};
  int x = spec.system.add_clock("x");
  ProcessBuilder pb(name);
  int idle = pb.location("Idle");
  int busy = pb.location("Busy", {cc_le(x, hi)});
  pb.set_initial(idle);
  pb.edge(idle, busy, {}, req, SyncKind::kReceive, {{x, 0}}, nullptr, nullptr,
          "req?");
  pb.edge(busy, idle, {cc_ge(x, lo)}, grant, SyncKind::kSend, {}, nullptr,
          nullptr, "grant!");
  spec.system.add_process(pb.build());
  return spec;
}

TEST(Ecdar, ValidateRejectsPolarityMismatch) {
  ecdar::Tioa bad = responder(1, 3);
  bad.inputs.clear();  // now req? edges contradict the (empty) input set
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Ecdar, ConsistencyOfWellFormedSpec) {
  auto spec = responder(1, 3);
  auto r = ecdar::check_consistency(spec);
  EXPECT_TRUE(r.consistent) << r.error_state;
}

TEST(Ecdar, InconsistentSpecHasTimelock) {
  // Busy has invariant x<=2 but grant requires x>=5: timelocked at x==2.
  ecdar::Tioa spec;
  int req = spec.system.add_channel("req");
  int grant = spec.system.add_channel("grant");
  spec.inputs = {req};
  int x = spec.system.add_clock("x");
  ProcessBuilder pb("Broken");
  int idle = pb.location("Idle");
  int busy = pb.location("Busy", {cc_le(x, 2)});
  pb.set_initial(idle);
  pb.edge(idle, busy, {}, req, SyncKind::kReceive, {{x, 0}});
  pb.edge(busy, idle, {cc_ge(x, 5)}, grant, SyncKind::kSend, {});
  spec.system.add_process(pb.build());

  auto r = ecdar::check_consistency(spec);
  EXPECT_FALSE(r.consistent);
  EXPECT_NE(r.error_state.find("Busy"), std::string::npos);
}

TEST(Ecdar, RefinementIsReflexive) {
  auto spec = responder(1, 5);
  auto r = ecdar::check_refinement(spec, spec);
  EXPECT_TRUE(r.refines()) << r.reason;
  EXPECT_GT(r.pairs_explored, 0u);
}

TEST(Ecdar, TighterDeadlineRefinesLooser) {
  // Responding within [1,3] refines "within [1,5]" (outputs are a subset of
  // allowed behaviour at every instant).
  auto tight = responder(1, 3, "Tight");
  auto loose = responder(1, 5, "Loose");
  EXPECT_TRUE(ecdar::check_refinement(tight, loose).refines());
  // The converse fails: the loose spec may grant at time 4.
  auto r = ecdar::check_refinement(loose, tight);
  EXPECT_FALSE(r.refines());
  EXPECT_NE(r.reason.find("delays"), std::string::npos) << r.reason;
}

TEST(Ecdar, EarlyOutputBreaksRefinement) {
  // Granting possibly at time 0 is not allowed by a spec requiring >=2.
  auto eager = responder(0, 3, "Eager");
  auto patient = responder(2, 3, "Patient");
  auto r = ecdar::check_refinement(eager, patient);
  EXPECT_FALSE(r.refines());
  EXPECT_NE(r.reason.find("grant"), std::string::npos) << r.reason;
  EXPECT_TRUE(ecdar::check_refinement(patient, eager).refines());
}

TEST(Ecdar, MissingInputBreaksRefinement) {
  // A spec that ignores `req` cannot refine one that accepts it.
  ecdar::Tioa deaf;
  int req = deaf.system.add_channel("req");
  deaf.system.add_channel("grant");
  deaf.inputs = {req};
  ProcessBuilder pb("Deaf");
  pb.location("Idle");
  deaf.system.add_process(pb.build());

  auto spec = responder(1, 3);
  auto r = ecdar::check_refinement(deaf, spec);
  EXPECT_FALSE(r.refines());
  EXPECT_NE(r.reason.find("req"), std::string::npos) << r.reason;
}

TEST(Ecdar, NondeterministicSpecIsRejected) {
  ecdar::Tioa spec = responder(1, 3);
  // Duplicate the grant edge to introduce nondeterminism.
  ta::Process& proc = spec.system.process_mut(0);
  proc.edges.push_back(proc.edges[1]);
  EXPECT_THROW(ecdar::check_refinement(spec, spec), std::invalid_argument);
}

}  // namespace
