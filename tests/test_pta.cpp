// Tests for the PTA layer: probabilistic edges, the digital-clocks MDP
// translation, and property evaluation on small hand-computable PTAs.
#include "pta/digital_clocks.h"

#include <gtest/gtest.h>

#include "pta/properties.h"
#include "pta/pta.h"

namespace {

using namespace quanta;
using ta::cc_ge;
using ta::cc_le;
using ta::ProbBranch;
using ta::ProcessBuilder;
using ta::SyncKind;

TEST(Pta, ResolveEffectPicksBranch) {
  ta::Edge e;
  e.target = 1;
  e.branches = {ProbBranch{0.5, 2, {{1, 0}}, nullptr, "a"},
                ProbBranch{0.5, 3, {}, nullptr, "b"}};
  auto eff = ta::resolve_effect(e, 1);
  EXPECT_EQ(eff.target, 3);
  EXPECT_THROW(ta::resolve_effect(e, -1), std::logic_error);
  ta::Edge plain;
  plain.target = 7;
  EXPECT_EQ(ta::resolve_effect(plain, -1).target, 7);
}

TEST(Pta, ValidateRejectsBadBranches) {
  ta::System sys;
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int idx = pb.edge(a, a);
  pb.edge_ref(idx).branches = {ProbBranch{0.0, 0, {}, nullptr, ""}};
  sys.add_process(pb.build());
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

// Urgent retry loop: A --(0.3 Goal | 0.7 A)--> ; no time passes.
TEST(DigitalClocks, UntimedRetryLoop) {
  ta::System sys;
  ProcessBuilder pb("P");
  int a = pb.location("A", {}, false, /*urgent=*/true);
  int goal = pb.location("Goal");
  pta::add_prob_edge(pb, a, {}, -1, SyncKind::kNone,
                     {ProbBranch{0.3, goal, {}, nullptr, "win"},
                      ProbBranch{0.7, a, {}, nullptr, "retry"}},
                     "try");
  sys.add_process(pb.build());

  auto dm = pta::build_digital_mdp(sys);
  int pidx = sys.process_index("P");
  auto at_goal = [pidx, goal](const ta::DigitalState& s) {
    return s.locs[static_cast<std::size_t>(pidx)] == goal;
  };
  EXPECT_NEAR(pta::pmax_reach(dm, at_goal).value, 1.0, 1e-9);
  EXPECT_NEAR(pta::pmin_reach(dm, at_goal).value, 1.0, 1e-9);
  // Urgent location: no tick choices anywhere before Goal, so time is 0.
  EXPECT_NEAR(pta::emax_time(dm, at_goal).value, 0.0, 1e-9);
}

// Timed branch: A(x<=1) --x>=1--> {0.5 Goal, 0.5 B}; B(x<=2) --x>=2--> Goal.
// Expected time to Goal = 0.5*1 + 0.5*2 = 1.5 under any scheduler.
TEST(DigitalClocks, TimedBranchingExpectedTime) {
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A", {cc_le(x, 1)});
  int goal = pb.location("Goal");
  int b = pb.location("B", {cc_le(x, 2)});
  pta::add_prob_edge(pb, a, {cc_ge(x, 1)}, -1, SyncKind::kNone,
                     {ProbBranch{0.5, goal, {}, nullptr, "fast"},
                      ProbBranch{0.5, b, {}, nullptr, "slow"}},
                     "split");
  pb.edge(b, goal, {cc_ge(x, 2)}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());

  auto dm = pta::build_digital_mdp(sys);
  int pidx = sys.process_index("P");
  auto at_goal = [pidx, goal](const ta::DigitalState& s) {
    return s.locs[static_cast<std::size_t>(pidx)] == goal;
  };
  EXPECT_NEAR(pta::pmax_reach(dm, at_goal).value, 1.0, 1e-9);
  EXPECT_NEAR(pta::emax_time(dm, at_goal).value, 1.5, 1e-9);
  EXPECT_NEAR(pta::emin_time(dm, at_goal).value, 1.5, 1e-9);
}

// Scheduler-dependent timing: delay window [0,3] before the move, so Emin=0
// (take it immediately) and Emax=3 (wait to the invariant boundary).
TEST(DigitalClocks, SchedulerControlsDelayWindow) {
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A", {cc_le(x, 3)});
  int goal = pb.location("Goal");
  pb.edge(a, goal, {}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());

  auto dm = pta::build_digital_mdp(sys);
  int pidx = sys.process_index("P");
  auto at_goal = [pidx, goal](const ta::DigitalState& s) {
    return s.locs[static_cast<std::size_t>(pidx)] == goal;
  };
  EXPECT_NEAR(pta::emin_time(dm, at_goal).value, 0.0, 1e-9);
  EXPECT_NEAR(pta::emax_time(dm, at_goal).value, 3.0, 1e-9);
}

// Probability depends on scheduler: choosing between a fair and a biased
// coin gives Pmax = 0.7, Pmin = 0.3.
TEST(DigitalClocks, PmaxPminDiffer) {
  ta::System sys;
  ProcessBuilder pb("P");
  int a = pb.location("A", {}, false, true);
  int goal = pb.location("Goal");
  int sink = pb.location("Sink");
  pta::add_prob_edge(pb, a, {}, -1, SyncKind::kNone,
                     {ProbBranch{0.3, goal, {}, nullptr, ""},
                      ProbBranch{0.7, sink, {}, nullptr, ""}},
                     "biased-lose");
  pta::add_prob_edge(pb, a, {}, -1, SyncKind::kNone,
                     {ProbBranch{0.7, goal, {}, nullptr, ""},
                      ProbBranch{0.3, sink, {}, nullptr, ""}},
                     "biased-win");
  sys.add_process(pb.build());

  auto dm = pta::build_digital_mdp(sys);
  int pidx = sys.process_index("P");
  auto at_goal = [pidx, goal](const ta::DigitalState& s) {
    return s.locs[static_cast<std::size_t>(pidx)] == goal;
  };
  EXPECT_NEAR(pta::pmax_reach(dm, at_goal).value, 0.7, 1e-9);
  EXPECT_NEAR(pta::pmin_reach(dm, at_goal).value, 0.3, 1e-9);
}

// Synchronised probabilistic branches multiply: sender loses with 0.2,
// receiver side loses with 0.5 -> both-succeed probability 0.4.
TEST(DigitalClocks, ProductDistributionOnSync) {
  ta::System sys;
  int ch = sys.add_channel("c");
  ProcessBuilder sb("S");
  int s0 = sb.location("S0", {}, false, true);
  int s_ok = sb.location("SOk");
  int s_bad = sb.location("SBad");
  pta::add_prob_edge(sb, s0, {}, ch, SyncKind::kSend,
                     {ProbBranch{0.8, s_ok, {}, nullptr, ""},
                      ProbBranch{0.2, s_bad, {}, nullptr, ""}},
                     "send");
  sys.add_process(sb.build());
  ProcessBuilder rb("R");
  int r0 = rb.location("R0");
  int r_ok = rb.location("ROk");
  int r_bad = rb.location("RBad");
  pta::add_prob_edge(rb, r0, {}, ch, SyncKind::kReceive,
                     {ProbBranch{0.5, r_ok, {}, nullptr, ""},
                      ProbBranch{0.5, r_bad, {}, nullptr, ""}},
                     "recv");
  sys.add_process(rb.build());

  auto dm = pta::build_digital_mdp(sys);
  auto both_ok = [s_ok, r_ok](const ta::DigitalState& s) {
    return s.locs[0] == s_ok && s.locs[1] == r_ok;
  };
  EXPECT_NEAR(pta::pmax_reach(dm, both_ok).value, 0.4, 1e-9);
}

TEST(DigitalClocks, InvariantCheckFindsViolations) {
  ta::System sys;
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int b = pb.location("Bad");
  pb.edge(a, b, {}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());
  auto dm = pta::build_digital_mdp(sys);
  auto ok = pta::check_invariant(
      dm, [](const ta::DigitalState& s) { return s.locs[0] == 0; });
  EXPECT_FALSE(ok.holds());
  EXPECT_NE(ok.violating_state.find("Bad"), std::string::npos);
  auto trivially = pta::check_invariant(
      dm, [](const ta::DigitalState&) { return true; });
  EXPECT_TRUE(trivially.holds());
}

}  // namespace
