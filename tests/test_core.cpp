// Tests for the shared exploration core (src/core): StateStore dedup and
// zone-inclusion subsumption with covered-node tombstoning, Worklist search
// orders, uniform truncation semantics, and the ExplorationObserver hook.
#include "core/state_store.h"

#include <gtest/gtest.h>

#include "core/observer.h"
#include "core/worklist.h"
#include "mc/reachability.h"
#include "models/train_gate.h"
#include "ta/traits.h"

namespace {

using namespace quanta;
using core::SearchOrder;
using core::StateStore;
using core::Worklist;

/// A one-clock symbolic state 0 <= x <= ub in discrete partition `loc`.
ta::SymState zone_state(int loc, int ub) {
  ta::SymState s;
  s.locs = {loc};
  s.zone = dbm::Dbm::universal(2);
  EXPECT_TRUE(s.zone.constrain_le(1, 0, ub));
  return s;
}

using SymStore = StateStore<ta::SymState>;

TEST(StateStore, ExactModeDistinguishesZones) {
  SymStore store;  // default: exact full-state equality
  EXPECT_TRUE(store.intern(zone_state(0, 5)).inserted);
  // A strictly included zone is a *different* state under exact equality.
  auto b = store.intern(zone_state(0, 3));
  EXPECT_TRUE(b.inserted);
  EXPECT_EQ(b.id, 1);
  // Re-inserting an equal state dedups to the original id.
  auto again = store.intern(zone_state(0, 5));
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.id, 0);
  EXPECT_EQ(store.size(), 2u);
}

TEST(StateStore, InclusionDropsCoveredIncomingState) {
  SymStore store({.inclusion = true});
  ASSERT_TRUE(store.intern(zone_state(0, 5)).inserted);
  // x <= 3 is inside x <= 5: subsumed, no new state.
  auto b = store.intern(zone_state(0, 3));
  EXPECT_FALSE(b.inserted);
  EXPECT_EQ(b.id, 0);
  EXPECT_EQ(store.size(), 1u);
  // An equal zone is subsumed too.
  EXPECT_FALSE(store.intern(zone_state(0, 5)).inserted);
}

TEST(StateStore, InclusionTombstonesStrictlyCoveredStoredState) {
  SymStore store({.inclusion = true, .tombstone_covered = true});
  ASSERT_TRUE(store.intern(zone_state(0, 5)).inserted);
  // x <= 8 strictly covers the stored x <= 5: the old node is tombstoned
  // and the larger zone becomes the live representative.
  auto c = store.intern(zone_state(0, 8));
  EXPECT_TRUE(c.inserted);
  EXPECT_EQ(c.id, 1);
  EXPECT_TRUE(store.covered(0));
  EXPECT_FALSE(store.covered(1));
  EXPECT_EQ(store.metrics().covered, 1u);

  // Re-inserting the previously covered zone dedups against the live
  // coverer — tombstoned nodes are skipped, the state is NOT resurrected.
  auto again = store.intern(zone_state(0, 5));
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.id, 1);
  EXPECT_EQ(store.size(), 2u);
}

TEST(StateStore, TombstoningOffKeepsDominatedStatesLive) {
  // Ablation A1: inclusion dedup of incoming states still applies, but
  // stored states are never marked covered.
  SymStore store({.inclusion = true, .tombstone_covered = false});
  ASSERT_TRUE(store.intern(zone_state(0, 5)).inserted);
  auto c = store.intern(zone_state(0, 8));
  EXPECT_TRUE(c.inserted);
  EXPECT_FALSE(store.covered(0));
  EXPECT_EQ(store.metrics().covered, 0u);
  // Covered *incoming* states are still dropped.
  EXPECT_FALSE(store.intern(zone_state(0, 3)).inserted);
}

TEST(StateStore, InclusionComparesOnlyWithinDiscretePartition) {
  SymStore store({.inclusion = true});
  ASSERT_TRUE(store.intern(zone_state(0, 3)).inserted);
  // Same zone, different location vector: a separate partition, stored as a
  // distinct state even though the zones are comparable.
  auto other = store.intern(zone_state(1, 8));
  EXPECT_TRUE(other.inserted);
  EXPECT_FALSE(store.covered(0));
  EXPECT_EQ(store.size(), 2u);
}

TEST(StateStore, MetricsReportOccupancy) {
  SymStore store;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.intern(zone_state(i, i + 1)).inserted);
  }
  auto m = store.metrics();
  EXPECT_EQ(m.stored, 100u);
  EXPECT_EQ(m.covered, 0u);
  EXPECT_GE(m.slots, 1024u);
  EXPECT_GT(m.occupied, 0u);
  EXPECT_GE(m.max_chain, 1u);
  EXPECT_GT(m.load_factor(), 0.0);
  EXPECT_LT(m.load_factor(), 0.5 + 1e-9);  // rehash keeps occupancy < 50%
}

TEST(StateStore, MetricsTrackChainsAndCoveredCounts) {
  // All states share one discrete partition under inclusion hashing, so they
  // land in a single hash chain — max_chain must see the pile-up, and each
  // strictly-covering insert tombstones its predecessor.
  SymStore store({.inclusion = true, .tombstone_covered = true});
  constexpr int kN = 8;
  for (int ub = 1; ub <= kN; ++ub) {
    ASSERT_TRUE(store.intern(zone_state(0, ub)).inserted);
  }
  auto m = store.metrics();
  EXPECT_EQ(m.stored, static_cast<std::size_t>(kN));
  EXPECT_EQ(m.covered, static_cast<std::size_t>(kN - 1));  // only x<=kN live
  EXPECT_EQ(m.max_chain, static_cast<std::size_t>(kN));
  EXPECT_EQ(m.occupied, 1u);  // one partition = one occupied slot
  EXPECT_DOUBLE_EQ(m.load_factor(),
                   1.0 / static_cast<double>(m.slots));
  // Covered tombstones still count as stored states.
  for (int id = 0; id < kN - 1; ++id) EXPECT_TRUE(store.covered(id));
  EXPECT_FALSE(store.covered(kN - 1));
}

TEST(StateStore, MetricsLoadFactorMatchesOccupancy) {
  SymStore store;
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(store.intern(zone_state(i, i + 1)).inserted);
  }
  auto m = store.metrics();
  EXPECT_EQ(m.occupied, 600u);  // exact mode, distinct partitions
  EXPECT_DOUBLE_EQ(m.load_factor(), static_cast<double>(m.occupied) /
                                        static_cast<double>(m.slots));
  // 600 distinct keys force at least one rehash past the initial 1024 slots
  // (rehash keeps occupancy strictly below 50%).
  EXPECT_GE(m.slots, 2048u);
  EXPECT_LT(m.load_factor(), 0.5);
}

TEST(StateStore, IncrementalMaxChainMatchesBruteForceScan) {
  // metrics().max_chain is maintained O(1) at insert time; pin it against
  // the brute-force walk over every chain, across chain growth, rehashes
  // and tombstoning.
  SymStore store({.inclusion = true, .tombstone_covered = true});
  for (int loc = 0; loc < 700; ++loc) {
    // Varying chain lengths per partition; covering inserts tombstone.
    for (int ub = 1; ub <= 1 + loc % 5; ++ub) {
      store.intern(zone_state(loc, ub));
    }
    if (loc % 97 == 0) {
      EXPECT_EQ(store.metrics().max_chain, store.scan_max_chain())
          << "after partition " << loc;
    }
  }
  EXPECT_EQ(store.metrics().max_chain, store.scan_max_chain());
  EXPECT_GE(store.metrics().max_chain, 5u);

  // The exact policy chains only on full-hash collisions; the invariant
  // holds there too.
  SymStore exact;
  for (int i = 0; i < 500; ++i) exact.intern(zone_state(i, 1 + i % 3));
  EXPECT_EQ(exact.metrics().max_chain, exact.scan_max_chain());
}

TEST(StateStore, MemoryBytesAccountsJournalRehashHeadroomAndPool) {
  // Pins the memory accounting formula against the store's public surface:
  // per-state records + bookkeeping columns, table heads, the covered
  // journal, the rehash-transient head allowance, and the payload pool.
  // Regression: the journal and the rehash transient used to be uncounted,
  // silently eroding common::Budget memory ceilings on tombstone-heavy runs.
  SymStore store({.inclusion = true, .tombstone_covered = true});
  for (int loc = 0; loc < 120; ++loc) {
    for (int ub = 1; ub <= 4; ++ub) {
      store.intern(zone_state(loc, ub));  // each insert tombstones the last
    }
  }
  const auto m = store.metrics();
  ASSERT_GT(m.covered, 300u);
  const std::size_t per_state =
      sizeof(SymStore::Stored) + sizeof(std::size_t) + sizeof(std::int32_t) +
      sizeof(std::uint8_t) + sizeof(std::uint32_t);
  const std::size_t expected =
      store.size() * per_state + m.slots * sizeof(std::int32_t) +
      store.covered_journal().capacity() * sizeof(std::int32_t) +
      m.occupied * sizeof(std::int32_t) + store.zone_pool().memory_bytes();
  EXPECT_EQ(store.memory_bytes(), expected);
  // The journal term specifically must be visible: it alone exceeds any
  // slack a caller could wave away.
  EXPECT_GE(store.memory_bytes(),
            store.covered_journal().size() * sizeof(std::int32_t));
}

TEST(StateStore, RestoreRebuildsTombstonedStoreStructurallyIdentically) {
  SymStore store({.inclusion = true, .tombstone_covered = true});
  // A mix of partitions, some with tombstoned ancestors.
  for (int loc = 0; loc < 40; ++loc) {
    ASSERT_TRUE(store.intern(zone_state(loc, 2)).inserted);
  }
  for (int loc = 0; loc < 40; loc += 2) {
    ASSERT_TRUE(store.intern(zone_state(loc, 9)).inserted);  // tombstones
  }
  const auto before = store.metrics();
  ASSERT_EQ(before.covered, 20u);

  // Round-trip the snapshot data: insertion-ordered states + covered bits.
  std::vector<ta::SymState> states;
  std::vector<std::uint8_t> covered;
  for (std::size_t i = 0; i < store.size(); ++i) {
    const auto id = static_cast<std::int32_t>(i);
    states.push_back(store.state(id));
    covered.push_back(store.covered(id) ? 1 : 0);
  }
  auto rebuilt = SymStore::restore(store.options(), std::move(states),
                                   std::move(covered));

  // Structural identity: same table shape, same tombstones, same memory.
  const auto after = rebuilt.metrics();
  EXPECT_EQ(after.stored, before.stored);
  EXPECT_EQ(after.covered, before.covered);
  EXPECT_EQ(after.slots, before.slots);
  EXPECT_EQ(after.occupied, before.occupied);
  EXPECT_EQ(after.max_chain, before.max_chain);
  EXPECT_EQ(rebuilt.memory_bytes(), store.memory_bytes());
  for (std::size_t i = 0; i < store.size(); ++i) {
    const auto id = static_cast<std::int32_t>(i);
    EXPECT_EQ(rebuilt.covered(id), store.covered(id)) << "state " << i;
  }

  // Behavioral identity: interning continues exactly as in the original —
  // dedup against live representatives, tombstoned states stay dead, and a
  // genuinely new state gets the next id in both stores.
  auto dup_orig = store.intern(zone_state(0, 9));
  auto dup_rebuilt = rebuilt.intern(zone_state(0, 9));
  EXPECT_FALSE(dup_orig.inserted);
  EXPECT_FALSE(dup_rebuilt.inserted);
  EXPECT_EQ(dup_rebuilt.id, dup_orig.id);
  auto fresh_orig = store.intern(zone_state(1000, 1));
  auto fresh_rebuilt = rebuilt.intern(zone_state(1000, 1));
  EXPECT_TRUE(fresh_orig.inserted);
  EXPECT_TRUE(fresh_rebuilt.inserted);
  EXPECT_EQ(fresh_rebuilt.id, fresh_orig.id);
}

TEST(Worklist, BfsIsFifo) {
  Worklist w(SearchOrder::kBfs);
  EXPECT_TRUE(w.empty());
  w.push(1);
  w.push(2);
  w.push(3);
  EXPECT_EQ(w.pending(), 3u);
  EXPECT_EQ(w.pop().id, 1);
  EXPECT_EQ(w.pop().id, 2);
  EXPECT_EQ(w.pop().id, 3);
  EXPECT_TRUE(w.empty());
}

TEST(Worklist, DfsIsLifo) {
  Worklist w(SearchOrder::kDfs);
  w.push(1);
  w.push(2);
  w.push(3);
  EXPECT_EQ(w.pop().id, 3);
  w.push(4);
  EXPECT_EQ(w.pop().id, 4);
  EXPECT_EQ(w.pop().id, 2);
  EXPECT_EQ(w.pop().id, 1);
}

TEST(Worklist, PriorityPopsSmallestKey) {
  Worklist w(SearchOrder::kPriority);
  w.push(1, 30);
  w.push(2, 10);
  w.push(3, 20);
  EXPECT_EQ(w.pop().id, 2);
  // Lazy decrease-key: re-push id 1 with a better cost; the stale entry
  // stays behind and is popped later.
  w.push(1, 5);
  auto e = w.pop();
  EXPECT_EQ(e.id, 1);
  EXPECT_EQ(e.key, 5);
  EXPECT_EQ(w.pop().id, 3);
  EXPECT_EQ(w.pop().key, 30);  // the stale duplicate of id 1
  EXPECT_TRUE(w.empty());
}

TEST(ExplorationCore, StatsObserverCollectsThroughputAndOccupancy) {
  auto tg = models::make_train_gate(2);
  core::StatsObserver obs;
  mc::ReachOptions opts;
  opts.observer = &obs;
  auto r = mc::reachable(
      tg.system, [](const ta::SymState&) { return false; }, opts);
  EXPECT_FALSE(r.reachable());
  EXPECT_FALSE(r.stats.truncated);
  EXPECT_EQ(obs.stats().states_stored, r.stats.states_stored);
  EXPECT_EQ(obs.stats().states_explored, r.stats.states_explored);
  EXPECT_EQ(obs.explored(), r.stats.states_explored);
  EXPECT_EQ(obs.peak_stored(), r.stats.states_stored);
  EXPECT_EQ(obs.store_metrics().stored, r.stats.states_stored);
  EXPECT_GT(obs.store_metrics().occupied, 0u);
  EXPECT_GT(obs.elapsed_seconds(), 0.0);
  EXPECT_GT(obs.states_per_second(), 0.0);
  EXPECT_NE(obs.summary().find("states"), std::string::npos);
}

TEST(ExplorationCore, TruncationIsUniformAcrossEngines) {
  auto tg = models::make_train_gate(3);
  mc::ReachOptions opts;
  opts.limits.max_states = 10;
  // Unreachable goal + tiny limit: the search must report truncation, not a
  // definite negative verdict.
  auto r = mc::reachable(
      tg.system, [](const ta::SymState&) { return false; }, opts);
  EXPECT_FALSE(r.reachable());
  EXPECT_TRUE(r.stats.truncated);
  EXPECT_GE(r.stats.states_stored, 10u);

  auto inv = mc::check_invariant(
      tg.system, [](const ta::SymState&) { return true; }, opts);
  EXPECT_TRUE(inv.stats.truncated);

  // A limit the state space never reaches: no truncation.
  opts.limits.max_states = 1'000'000;
  auto full = mc::reachable(
      tg.system, [](const ta::SymState&) { return false; }, opts);
  EXPECT_FALSE(full.stats.truncated);
}

}  // namespace
