// Tests for the shared exploration core (src/core): StateStore dedup and
// zone-inclusion subsumption with covered-node tombstoning, Worklist search
// orders, uniform truncation semantics, and the ExplorationObserver hook.
#include "core/state_store.h"

#include <gtest/gtest.h>

#include "core/observer.h"
#include "core/worklist.h"
#include "mc/reachability.h"
#include "models/train_gate.h"
#include "ta/traits.h"

namespace {

using namespace quanta;
using core::SearchOrder;
using core::StateStore;
using core::Worklist;

/// A one-clock symbolic state 0 <= x <= ub in discrete partition `loc`.
ta::SymState zone_state(int loc, int ub) {
  ta::SymState s;
  s.locs = {loc};
  s.zone = dbm::Dbm::universal(2);
  EXPECT_TRUE(s.zone.constrain_le(1, 0, ub));
  return s;
}

using SymStore = StateStore<ta::SymState>;

TEST(StateStore, ExactModeDistinguishesZones) {
  SymStore store;  // default: exact full-state equality
  EXPECT_TRUE(store.intern(zone_state(0, 5)).inserted);
  // A strictly included zone is a *different* state under exact equality.
  auto b = store.intern(zone_state(0, 3));
  EXPECT_TRUE(b.inserted);
  EXPECT_EQ(b.id, 1);
  // Re-inserting an equal state dedups to the original id.
  auto again = store.intern(zone_state(0, 5));
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.id, 0);
  EXPECT_EQ(store.size(), 2u);
}

TEST(StateStore, InclusionDropsCoveredIncomingState) {
  SymStore store({.inclusion = true});
  ASSERT_TRUE(store.intern(zone_state(0, 5)).inserted);
  // x <= 3 is inside x <= 5: subsumed, no new state.
  auto b = store.intern(zone_state(0, 3));
  EXPECT_FALSE(b.inserted);
  EXPECT_EQ(b.id, 0);
  EXPECT_EQ(store.size(), 1u);
  // An equal zone is subsumed too.
  EXPECT_FALSE(store.intern(zone_state(0, 5)).inserted);
}

TEST(StateStore, InclusionTombstonesStrictlyCoveredStoredState) {
  SymStore store({.inclusion = true, .tombstone_covered = true});
  ASSERT_TRUE(store.intern(zone_state(0, 5)).inserted);
  // x <= 8 strictly covers the stored x <= 5: the old node is tombstoned
  // and the larger zone becomes the live representative.
  auto c = store.intern(zone_state(0, 8));
  EXPECT_TRUE(c.inserted);
  EXPECT_EQ(c.id, 1);
  EXPECT_TRUE(store.covered(0));
  EXPECT_FALSE(store.covered(1));
  EXPECT_EQ(store.metrics().covered, 1u);

  // Re-inserting the previously covered zone dedups against the live
  // coverer — tombstoned nodes are skipped, the state is NOT resurrected.
  auto again = store.intern(zone_state(0, 5));
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.id, 1);
  EXPECT_EQ(store.size(), 2u);
}

TEST(StateStore, TombstoningOffKeepsDominatedStatesLive) {
  // Ablation A1: inclusion dedup of incoming states still applies, but
  // stored states are never marked covered.
  SymStore store({.inclusion = true, .tombstone_covered = false});
  ASSERT_TRUE(store.intern(zone_state(0, 5)).inserted);
  auto c = store.intern(zone_state(0, 8));
  EXPECT_TRUE(c.inserted);
  EXPECT_FALSE(store.covered(0));
  EXPECT_EQ(store.metrics().covered, 0u);
  // Covered *incoming* states are still dropped.
  EXPECT_FALSE(store.intern(zone_state(0, 3)).inserted);
}

TEST(StateStore, InclusionComparesOnlyWithinDiscretePartition) {
  SymStore store({.inclusion = true});
  ASSERT_TRUE(store.intern(zone_state(0, 3)).inserted);
  // Same zone, different location vector: a separate partition, stored as a
  // distinct state even though the zones are comparable.
  auto other = store.intern(zone_state(1, 8));
  EXPECT_TRUE(other.inserted);
  EXPECT_FALSE(store.covered(0));
  EXPECT_EQ(store.size(), 2u);
}

TEST(StateStore, MetricsReportOccupancy) {
  SymStore store;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.intern(zone_state(i, i + 1)).inserted);
  }
  auto m = store.metrics();
  EXPECT_EQ(m.stored, 100u);
  EXPECT_EQ(m.covered, 0u);
  EXPECT_GE(m.slots, 1024u);
  EXPECT_GT(m.occupied, 0u);
  EXPECT_GE(m.max_chain, 1u);
  EXPECT_GT(m.load_factor(), 0.0);
  EXPECT_LT(m.load_factor(), 0.5 + 1e-9);  // rehash keeps occupancy < 50%
}

TEST(Worklist, BfsIsFifo) {
  Worklist w(SearchOrder::kBfs);
  EXPECT_TRUE(w.empty());
  w.push(1);
  w.push(2);
  w.push(3);
  EXPECT_EQ(w.pending(), 3u);
  EXPECT_EQ(w.pop().id, 1);
  EXPECT_EQ(w.pop().id, 2);
  EXPECT_EQ(w.pop().id, 3);
  EXPECT_TRUE(w.empty());
}

TEST(Worklist, DfsIsLifo) {
  Worklist w(SearchOrder::kDfs);
  w.push(1);
  w.push(2);
  w.push(3);
  EXPECT_EQ(w.pop().id, 3);
  w.push(4);
  EXPECT_EQ(w.pop().id, 4);
  EXPECT_EQ(w.pop().id, 2);
  EXPECT_EQ(w.pop().id, 1);
}

TEST(Worklist, PriorityPopsSmallestKey) {
  Worklist w(SearchOrder::kPriority);
  w.push(1, 30);
  w.push(2, 10);
  w.push(3, 20);
  EXPECT_EQ(w.pop().id, 2);
  // Lazy decrease-key: re-push id 1 with a better cost; the stale entry
  // stays behind and is popped later.
  w.push(1, 5);
  auto e = w.pop();
  EXPECT_EQ(e.id, 1);
  EXPECT_EQ(e.key, 5);
  EXPECT_EQ(w.pop().id, 3);
  EXPECT_EQ(w.pop().key, 30);  // the stale duplicate of id 1
  EXPECT_TRUE(w.empty());
}

TEST(ExplorationCore, StatsObserverCollectsThroughputAndOccupancy) {
  auto tg = models::make_train_gate(2);
  core::StatsObserver obs;
  mc::ReachOptions opts;
  opts.observer = &obs;
  auto r = mc::reachable(
      tg.system, [](const ta::SymState&) { return false; }, opts);
  EXPECT_FALSE(r.reachable());
  EXPECT_FALSE(r.stats.truncated);
  EXPECT_EQ(obs.stats().states_stored, r.stats.states_stored);
  EXPECT_EQ(obs.stats().states_explored, r.stats.states_explored);
  EXPECT_EQ(obs.explored(), r.stats.states_explored);
  EXPECT_EQ(obs.peak_stored(), r.stats.states_stored);
  EXPECT_EQ(obs.store_metrics().stored, r.stats.states_stored);
  EXPECT_GT(obs.store_metrics().occupied, 0u);
  EXPECT_GT(obs.elapsed_seconds(), 0.0);
  EXPECT_GT(obs.states_per_second(), 0.0);
  EXPECT_NE(obs.summary().find("states"), std::string::npos);
}

TEST(ExplorationCore, TruncationIsUniformAcrossEngines) {
  auto tg = models::make_train_gate(3);
  mc::ReachOptions opts;
  opts.limits.max_states = 10;
  // Unreachable goal + tiny limit: the search must report truncation, not a
  // definite negative verdict.
  auto r = mc::reachable(
      tg.system, [](const ta::SymState&) { return false; }, opts);
  EXPECT_FALSE(r.reachable());
  EXPECT_TRUE(r.stats.truncated);
  EXPECT_GE(r.stats.states_stored, 10u);

  auto inv = mc::check_invariant(
      tg.system, [](const ta::SymState&) { return true; }, opts);
  EXPECT_TRUE(inv.stats.truncated);

  // A limit the state space never reaches: no truncation.
  opts.limits.max_states = 1'000'000;
  auto full = mc::reachable(
      tg.system, [](const ta::SymState&) { return false; }, opts);
  EXPECT_FALSE(full.stats.truncated);
}

}  // namespace
