// Tests for the timed-game solver: hand-built games with known winners,
// plus the paper's train-game synthesis (experiment E2).
#include "game/tiga.h"

#include <gtest/gtest.h>

#include "models/train_game.h"

namespace {

using namespace quanta;
using ta::cc_ge;
using ta::cc_le;
using ta::ProcessBuilder;
using ta::SyncKind;

// A race: controller can move A->Goal while x<=2; environment can move
// A->Bad when x>=4. Controller wins reach(Goal) by acting early.
ta::System race_game(int ctrl_deadline, int env_start) {
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int goal = pb.location("Goal");
  int bad = pb.location("Bad");
  int e = pb.edge(a, goal, {cc_le(x, ctrl_deadline)}, -1, SyncKind::kNone, {},
                  nullptr, nullptr, "win");
  pb.edge_ref(e).controllable = true;
  e = pb.edge(a, bad, {cc_ge(x, env_start)}, -1, SyncKind::kNone, {}, nullptr,
              nullptr, "lose");
  pb.edge_ref(e).controllable = false;
  sys.add_process(pb.build());
  return sys;
}

TEST(TimedGame, ControllerWinsWhenFasterThanEnvironment) {
  ta::System sys = race_game(/*ctrl_deadline=*/2, /*env_start=*/4);
  game::TimedGame g(sys);
  auto goal = [](const ta::DigitalState& s) { return s.locs[0] == 1; };
  auto result = g.solve_reachability(goal);
  EXPECT_TRUE(result.controller_wins());
  EXPECT_GT(result.winning_states, 0u);
  EXPECT_TRUE(game::verify_reach_strategy(sys, result.strategy, goal));
}

TEST(TimedGame, EnvironmentPreemptionBlocksLateController) {
  // Controller can only act from x>=4, environment from x>=0: the
  // environment can always preempt into Bad, so (conservatively) the
  // controller cannot force Goal.
  ta::System sys = race_game(/*ctrl_deadline=*/10, /*env_start=*/0);
  // make the controller edge only available late:
  // rebuild with a lower bound instead.
  ta::System sys2;
  int x = sys2.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int goal_l = pb.location("Goal");
  int bad = pb.location("Bad");
  int e = pb.edge(a, goal_l, {cc_ge(x, 4)}, -1, SyncKind::kNone, {});
  pb.edge_ref(e).controllable = true;
  e = pb.edge(a, bad, {}, -1, SyncKind::kNone, {});
  pb.edge_ref(e).controllable = false;
  sys2.add_process(pb.build());

  game::TimedGame g(sys2);
  auto result = g.solve_reachability(
      [goal_l](const ta::DigitalState& s) { return s.locs[0] == goal_l; });
  EXPECT_FALSE(result.controller_wins());
}

TEST(TimedGame, SafetyByRefusingToAct) {
  // Controller's only move leads to Bad; doing nothing is safe forever.
  ta::System sys;
  sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int bad = pb.location("Bad");
  int e = pb.edge(a, bad, {}, -1, SyncKind::kNone, {});
  pb.edge_ref(e).controllable = true;
  sys.add_process(pb.build());
  game::TimedGame g(sys);
  auto safe = [bad](const ta::DigitalState& s) { return s.locs[0] != bad; };
  auto result = g.solve_safety(safe);
  EXPECT_TRUE(result.controller_wins());
  EXPECT_TRUE(game::verify_safety_strategy(sys, result.strategy, safe));
}

TEST(TimedGame, SafetyLostWhenInvariantForcesBadMove) {
  // A(x<=3) with only edge A->Bad: time forces the controller into Bad.
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A", {cc_le(x, 3)});
  int bad = pb.location("Bad");
  int e = pb.edge(a, bad, {}, -1, SyncKind::kNone, {});
  pb.edge_ref(e).controllable = false;  // environment will fire it
  sys.add_process(pb.build());
  game::TimedGame g(sys);
  auto result = g.solve_safety(
      [bad](const ta::DigitalState& s) { return s.locs[0] != bad; });
  EXPECT_FALSE(result.controller_wins());
}

// ---- Paper experiment E2: train-game synthesis ---------------------------

TEST(TrainGameSynthesis, SafetyControllerExistsForTwoTrains) {
  auto tg = models::make_train_game({.num_trains = 2});
  game::TimedGame g(tg.system);
  auto safe = [&tg](const ta::DigitalState& s) { return tg.mutex_ok(s.locs); };
  auto result = g.solve_safety(safe);
  EXPECT_TRUE(result.controller_wins());
  EXPECT_TRUE(game::verify_safety_strategy(tg.system, result.strategy, safe));
}

TEST(TrainGameSynthesis, WithoutControlSafetyFails) {
  // If all stop/go edges are uncontrollable (environment owns everything),
  // the controller cannot prevent two simultaneous crossings.
  auto tg = models::make_train_game({.num_trains = 2});
  for (int t : tg.trains) {
    for (auto& e : tg.system.process_mut(t).edges) e.controllable = false;
  }
  for (auto& e : tg.system.process_mut(tg.controller).edges) {
    e.controllable = false;
  }
  game::TimedGame g(tg.system);
  auto result = g.solve_safety(
      [&tg](const ta::DigitalState& s) { return tg.mutex_ok(s.locs); });
  EXPECT_FALSE(result.controller_wins());
}

TEST(TrainGameSynthesis, ReachabilityNeedsAnApproachingTrain) {
  // From all-Safe the environment may never send a train: not winnable.
  auto tg = models::make_train_game({.num_trains = 1});
  game::TimedGame g(tg.system);
  auto goal = [&tg](const ta::DigitalState& s) {
    return s.locs[static_cast<std::size_t>(tg.trains[0])] == tg.l_cross;
  };
  EXPECT_FALSE(g.solve_reachability(goal).controller_wins());

  // With train 0 already approaching, its invariant forces progress and the
  // controller can simply let it cross.
  auto tg2 = models::make_train_game(
      {.num_trains = 1, .first_train_approaching = true});
  game::TimedGame g2(tg2.system);
  auto goal2 = [&tg2](const ta::DigitalState& s) {
    return s.locs[static_cast<std::size_t>(tg2.trains[0])] == tg2.l_cross;
  };
  auto result = g2.solve_reachability(goal2);
  EXPECT_TRUE(result.controller_wins());
  EXPECT_TRUE(game::verify_reach_strategy(tg2.system, result.strategy, goal2));
}

TEST(TrainGameSynthesis, ReachabilityWithInterferingSecondTrain) {
  auto tg = models::make_train_game(
      {.num_trains = 2, .first_train_approaching = true});
  game::TimedGame g(tg.system);
  auto goal = [&tg](const ta::DigitalState& s) {
    return s.locs[static_cast<std::size_t>(tg.trains[0])] == tg.l_cross;
  };
  auto result = g.solve_reachability(goal);
  EXPECT_TRUE(result.controller_wins());
  EXPECT_TRUE(game::verify_reach_strategy(tg.system, result.strategy, goal));
}

}  // namespace
