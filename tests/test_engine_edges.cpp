// Edge cases and secondary APIs across the engines: truncation handling,
// liveness failure modes, deadlock witnesses, the query facade, trajectory
// sampling, and randomized MDP properties.
#include <gtest/gtest.h>

#include "mc/query.h"
#include "mdp/expected_reward.h"
#include "models/train_gate.h"
#include "smc/trace.h"

namespace {

using namespace quanta;
using ta::cc_ge;
using ta::cc_le;
using ta::ProcessBuilder;
using ta::SyncKind;

// ---- Model checker edge cases ---------------------------------------------

TEST(McEdges, TruncationIsReportedAndNotClaimedSafe) {
  auto tg = models::make_train_gate(4);
  mc::ReachOptions opts;
  opts.limits.max_states = 50;  // far too small
  auto r = mc::check_invariant(
      tg.system, [](const ta::SymState&) { return true; }, opts);
  EXPECT_TRUE(r.stats.truncated);
  EXPECT_FALSE(r.holds()) << "a truncated search must not claim the invariant";
}

TEST(McEdges, WitnessTraceEndsAtGoal) {
  auto tg = models::make_train_gate(2);
  auto r = mc::reachable(tg.system,
                         mc::loc_pred(tg.system, "Train(1)", "Cross"));
  ASSERT_TRUE(r.reachable());
  ASSERT_GE(r.trace.size(), 2u);
  EXPECT_EQ(r.trace.front(), "init");
  EXPECT_NE(r.witness.find("Train(1).Cross"), std::string::npos);
}

TEST(McEdges, LeadsToStuckReason) {
  // A --> B never completes because the system halts in Dead.
  ta::System sys;
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int dead = pb.location("Dead");
  int b = pb.location("B");
  pb.edge(a, dead, {}, -1, SyncKind::kNone, {});
  (void)b;
  sys.add_process(pb.build());
  auto r = mc::check_leads_to(sys, mc::loc_pred(sys, "P", "A"),
                              mc::loc_pred(sys, "P", "B"));
  EXPECT_FALSE(r.holds());
  EXPECT_NE(r.reason.find("no successors"), std::string::npos);
}

TEST(McEdges, LeadsToCycleReason) {
  // A --> B fails because the system can cycle A <-> C forever.
  ta::System sys;
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int c = pb.location("C");
  int b = pb.location("B");
  pb.edge(a, c, {}, -1, SyncKind::kNone, {});
  pb.edge(c, a, {}, -1, SyncKind::kNone, {});
  pb.edge(a, b, {}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());
  auto r = mc::check_leads_to(sys, mc::loc_pred(sys, "P", "A"),
                              mc::loc_pred(sys, "P", "B"));
  EXPECT_FALSE(r.holds());
  EXPECT_NE(r.reason.find("cycle"), std::string::npos);
}

TEST(McEdges, DeadlockWitnessFound) {
  // One process that walks into a corner with a bounded invariant.
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int trap = pb.location("Trap");
  pb.edge(a, trap, {}, -1, SyncKind::kNone, {});
  (void)x;
  sys.add_process(pb.build());
  auto r = mc::check_deadlock_freedom(sys);
  EXPECT_FALSE(r.deadlock_free());
  EXPECT_NE(r.deadlocked_state.find("Trap"), std::string::npos);
}

TEST(McEdges, TimeDivergentWaitIsNotDeadlock) {
  // A single location with a self-loop enabled forever: never deadlocked.
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A");
  pb.edge(a, a, {cc_ge(x, 1)}, -1, SyncKind::kNone, {{x, 0}});
  sys.add_process(pb.build());
  EXPECT_TRUE(mc::check_deadlock_freedom(sys).deadlock_free());
}

TEST(McEdges, PartialDeadlockInsideZoneIsDetected) {
  // The edge is only enabled while x <= 3, but the state admits delaying
  // past 3 (no invariant): valuations with x > 3 are deadlocked.
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int b = pb.location("B");
  pb.edge(a, b, {cc_le(x, 3)}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());
  auto r = mc::check_deadlock_freedom(sys);
  EXPECT_FALSE(r.deadlock_free())
      << "waiting past the guard window must count as a deadlock";
}

TEST(McEdges, QueryFacadeCoversAllKinds) {
  auto tg = models::make_train_gate(2);
  auto q1 = mc::run_query(
      tg.system, mc::reach("reach", mc::loc_pred(tg.system, "Train(0)", "Cross")));
  EXPECT_TRUE(q1.holds());
  EXPECT_NE(q1.details.find("witness"), std::string::npos);
  auto q2 = mc::run_query(
      tg.system,
      mc::invariant("inv", [](const ta::SymState&) { return true; }));
  EXPECT_TRUE(q2.holds());
  auto q3 = mc::run_query(tg.system, mc::deadlock_free("df"));
  EXPECT_TRUE(q3.holds());
  auto q4 = mc::run_query(
      tg.system,
      mc::leads_to("lt", mc::loc_pred(tg.system, "Train(0)", "Appr"),
                   mc::loc_pred(tg.system, "Train(0)", "Cross")));
  EXPECT_TRUE(q4.holds());
  // A failing invariant reports the violating state.
  auto q5 = mc::run_query(
      tg.system, mc::invariant("bad", [&tg](const ta::SymState& s) {
        return s.locs[static_cast<std::size_t>(tg.trains[0])] ==
               tg.system.process(tg.trains[0]).initial;
      }));
  EXPECT_FALSE(q5.holds());
  EXPECT_NE(q5.details.find("violated"), std::string::npos);
}

// ---- Trajectory sampling -----------------------------------------------------

TEST(Traces, TimeMonotoneAndObservablesCorrect) {
  auto tg = models::make_train_gate(3);
  std::vector<smc::Observable> obs = {
      smc::var_observable(tg.system, "len"),
      smc::loc_observable(tg.system, "Train(0)", "Cross"),
  };
  auto trajectories = smc::simulate_traces(tg.system, obs, 60.0, 20, 5);
  ASSERT_EQ(trajectories.size(), 20u);
  for (const auto& traj : trajectories) {
    ASSERT_EQ(traj.names.size(), 2u);
    ASSERT_FALSE(traj.points.empty());
    EXPECT_EQ(traj.points.front().time, 0.0);
    for (std::size_t i = 1; i < traj.points.size(); ++i) {
      EXPECT_GE(traj.points[i].time, traj.points[i - 1].time);
      EXPECT_LE(traj.points[i].time, 60.0 + 1e-9);
    }
    for (const auto& pt : traj.points) {
      EXPECT_GE(pt.values[0], 0.0);
      EXPECT_LE(pt.values[0], 3.0);  // queue length bounded by #trains
      EXPECT_TRUE(pt.values[1] == 0.0 || pt.values[1] == 1.0);
    }
  }
}

TEST(Traces, SomethingActuallyHappens) {
  auto tg = models::make_train_gate(2);
  auto trajectories = smc::simulate_traces(
      tg.system, {smc::var_observable(tg.system, "len")}, 100.0, 5, 11);
  bool queue_used = false;
  for (const auto& traj : trajectories) {
    for (const auto& pt : traj.points) {
      if (pt.values[0] > 0.0) queue_used = true;
    }
  }
  EXPECT_TRUE(queue_used);
}

// ---- Randomized MDP properties ------------------------------------------------

mdp::Mdp random_mdp(common::Rng& rng, int states) {
  mdp::Mdp m;
  for (int s = 0; s < states; ++s) {
    int n_choices = rng.uniform_int(1, 3);
    for (int c = 0; c < n_choices; ++c) {
      int n_branches = rng.uniform_int(1, 3);
      std::vector<mdp::Branch> branches;
      double remaining = 1.0;
      for (int b = 0; b < n_branches; ++b) {
        double p = (b == n_branches - 1)
                       ? remaining
                       : remaining * (0.2 + 0.6 * rng.uniform01());
        remaining -= (b == n_branches - 1) ? remaining : p;
        branches.push_back(
            mdp::Branch{rng.uniform_int(0, states - 1), p});
      }
      m.add_choice(s, std::move(branches), rng.uniform01());
    }
  }
  m.freeze();
  return m;
}

class MdpProperty : public ::testing::TestWithParam<int> {};

TEST_P(MdpProperty, BoundedReachConvergesToUnbounded) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 1);
  mdp::Mdp m = random_mdp(rng, 8);
  mdp::StateSet goal(8, false);
  goal[static_cast<std::size_t>(rng.uniform_int(0, 7))] = true;
  auto unbounded =
      mdp::reachability_probability(m, goal, mdp::Objective::kMax);
  double prev = -1.0;
  for (std::int64_t k : {1, 4, 16, 256}) {
    auto bounded = mdp::bounded_reachability(m, goal, k, mdp::Objective::kMax);
    EXPECT_GE(bounded.values[0] + 1e-12, prev) << "monotone in the horizon";
    EXPECT_LE(bounded.values[0], unbounded.values[0] + 1e-9);
    prev = bounded.values[0];
  }
  auto long_bounded =
      mdp::bounded_reachability(m, goal, 4096, mdp::Objective::kMax);
  EXPECT_NEAR(long_bounded.values[0], unbounded.values[0], 1e-6);
}

TEST_P(MdpProperty, ViIsOneExactlyOnProb1Set) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 61 + 2);
  mdp::Mdp m = random_mdp(rng, 8);
  mdp::StateSet goal(8, false);
  goal[static_cast<std::size_t>(rng.uniform_int(0, 7))] = true;
  auto p1 = mdp::prob1_max(m, goal);
  auto vi = mdp::reachability_probability(m, goal, mdp::Objective::kMax);
  for (int s = 0; s < 8; ++s) {
    if (p1[static_cast<std::size_t>(s)]) {
      EXPECT_DOUBLE_EQ(vi.values[static_cast<std::size_t>(s)], 1.0);
    } else {
      EXPECT_LT(vi.values[static_cast<std::size_t>(s)], 1.0);
    }
  }
}

TEST_P(MdpProperty, MinLeqMaxEverywhere) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 67 + 3);
  mdp::Mdp m = random_mdp(rng, 10);
  mdp::StateSet goal(10, false);
  goal[0] = true;
  auto lo = mdp::reachability_probability(m, goal, mdp::Objective::kMin);
  auto hi = mdp::reachability_probability(m, goal, mdp::Objective::kMax);
  for (int s = 0; s < 10; ++s) {
    EXPECT_LE(lo.values[static_cast<std::size_t>(s)],
              hi.values[static_cast<std::size_t>(s)] + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMdps, MdpProperty, ::testing::Range(0, 20));

}  // namespace

// ---- A<> and E[] (added after the core property set) -------------------------

namespace {

using namespace quanta;

TEST(TemporalOperators, InevitabilityHoldsWhenForced) {
  // A(x<=3) --x>=1--> B: the invariant forces the transition: A<> P.B holds.
  ta::System sys;
  int x = sys.add_clock("x");
  ta::ProcessBuilder pb("P");
  int a = pb.location("A", {ta::cc_le(x, 3)});
  int b = pb.location("B");
  pb.edge(a, b, {ta::cc_ge(x, 1)}, -1, ta::SyncKind::kNone, {});
  sys.add_process(pb.build());
  auto r = mc::check_eventually(sys, mc::loc_pred(sys, "P", "B"));
  EXPECT_TRUE(r.holds()) << r.reason;
  // E[] P.A is the dual: it must fail (A cannot be held forever).
  EXPECT_FALSE(mc::check_possibly_always(sys, mc::loc_pred(sys, "P", "A")).holds());
}

TEST(TemporalOperators, InevitabilityFailsWithEscape) {
  // A has a self-loop cycle: the run may avoid B forever.
  ta::System sys;
  int x = sys.add_clock("x");
  ta::ProcessBuilder pb("P");
  int a = pb.location("A", {ta::cc_le(x, 3)});
  int b = pb.location("B");
  pb.edge(a, b, {ta::cc_ge(x, 1)}, -1, ta::SyncKind::kNone, {});
  pb.edge(a, a, {ta::cc_ge(x, 1)}, -1, ta::SyncKind::kNone, {{x, 0}});
  sys.add_process(pb.build());
  EXPECT_FALSE(mc::check_eventually(sys, mc::loc_pred(sys, "P", "B")).holds());
  EXPECT_TRUE(mc::check_possibly_always(sys, mc::loc_pred(sys, "P", "A")).holds());
}

TEST(TemporalOperators, HoldsImmediatelyAtInitial) {
  ta::System sys;
  ta::ProcessBuilder pb("P");
  pb.location("A");
  sys.add_process(pb.build());
  EXPECT_TRUE(mc::check_eventually(sys, mc::loc_pred(sys, "P", "A")).holds());
}

TEST(TemporalOperators, TrainGateInevitability) {
  // From the initial state nothing is inevitable (trains may idle in Safe),
  // but "Train(0) can stay out of Cross forever" holds.
  auto tg = models::make_train_gate(2);
  EXPECT_FALSE(
      mc::check_eventually(tg.system,
                           mc::loc_pred(tg.system, "Train(0)", "Cross"))
          .holds());
  EXPECT_TRUE(mc::check_possibly_always(
                  tg.system,
                  mc::pred_not(mc::loc_pred(tg.system, "Train(0)", "Cross")))
                  .holds());
}

}  // namespace
