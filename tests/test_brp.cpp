// Integration tests: the BRP model against its analytic Table I values via
// all three analysis routes (mctau / mcpta / modes), experiment E4.
#include "models/brp.h"

#include <gtest/gtest.h>

#include "pta/digital_clocks.h"
#include "pta/properties.h"
#include "sta/des.h"
#include "sta/mctau.h"
#include "sta/sta.h"

namespace {

using namespace quanta;

class BrpMcpta : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    brp_ = new models::Brp(models::make_brp());
    dm_ = new pta::DigitalMdp(pta::build_digital_mdp(brp_->system));
  }
  static void TearDownTestSuite() {
    delete dm_;
    delete brp_;
    dm_ = nullptr;
    brp_ = nullptr;
  }
  static models::Brp* brp_;
  static pta::DigitalMdp* dm_;
};
models::Brp* BrpMcpta::brp_ = nullptr;
pta::DigitalMdp* BrpMcpta::dm_ = nullptr;

TEST_F(BrpMcpta, P1MatchesAnalytic) {
  auto r = pta::pmax_reach(
      *dm_, [](const ta::DigitalState& s) { return brp_->no_success(s.locs); });
  EXPECT_NEAR(r.value, brp_->analytic_p1(), 1e-8);  // paper: 4.233e-4
}

TEST_F(BrpMcpta, P2MatchesAnalytic) {
  auto r = pta::pmax_reach(
      *dm_, [](const ta::DigitalState& s) { return brp_->is_fail_dk(s.locs); });
  EXPECT_NEAR(r.value, brp_->analytic_p2(), 1e-8);  // paper: 2.645e-5
}

TEST_F(BrpMcpta, PaAndPbAreZero) {
  // PA: certain failure reported but the receiver has the complete file.
  auto pa = pta::pmax_reach(*dm_, [](const ta::DigitalState& s) {
    return brp_->is_fail_nok(s.locs) && brp_->complete_file(s.vars);
  });
  EXPECT_EQ(pa.value, 0.0);
  // PB: success reported but the receiver is missing frames.
  auto pb = pta::pmax_reach(*dm_, [](const ta::DigitalState& s) {
    return brp_->is_success(s.locs) && !brp_->complete_file(s.vars);
  });
  EXPECT_EQ(pb.value, 0.0);
}

TEST_F(BrpMcpta, Ta1NoPrematureTimeouts) {
  const int to = brp_->params.effective_timeout();
  auto r = pta::check_invariant(*dm_, [to](const ta::DigitalState& s) {
    bool timer_expired = brp_->sender_waiting(s.locs) &&
                         s.clocks[static_cast<std::size_t>(brp_->clk_x)] >= to;
    return !(timer_expired && brp_->channels_busy(s.locs));
  });
  EXPECT_TRUE(r.holds()) << r.violating_state;
}

TEST_F(BrpMcpta, Ta2FailureHandling) {
  auto r = pta::check_invariant(
      *dm_, [](const ta::DigitalState& s) { return brp_->ta2_ok(s.vars); });
  EXPECT_TRUE(r.holds()) << r.violating_state;
}

TEST_F(BrpMcpta, EmaxNearPaperValue) {
  auto r = pta::emax_time(
      *dm_, [](const ta::DigitalState& s) { return brp_->is_done(s.locs); });
  // Paper reports 33.473 on the MODEST BRP; our reconstruction gives ~33.47.
  EXPECT_NEAR(r.value, 33.47, 0.15);
  // The minimal scheduler transmits instantly; only timeouts cost time.
  auto rmin = pta::emin_time(
      *dm_, [](const ta::DigitalState& s) { return brp_->is_done(s.locs); });
  EXPECT_LT(rmin.value, 2.0);
  EXPECT_GT(r.value, rmin.value);
}

TEST(BrpDmax, TimeBoundedSuccess) {
  models::BrpParams params;
  params.global_clock = true;
  auto brp = models::make_brp(params);
  auto dm = pta::build_digital_mdp(brp.system);
  int gt = brp.clk_gt;
  auto r = pta::pmax_reach(dm, [&brp, gt](const ta::DigitalState& s) {
    return brp.is_success(s.locs) &&
           s.clocks[static_cast<std::size_t>(gt)] <= 64;
  });
  EXPECT_NEAR(r.value, 0.9996, 5e-4);  // paper: 9.996e-1
  // A much tighter bound cuts the probability visibly (32 time units is the
  // loss-free minimum at full channel delays, so some mass must be lost).
  auto tight = pta::pmax_reach(dm, [&brp, gt](const ta::DigitalState& s) {
    return brp.is_success(s.locs) &&
           s.clocks[static_cast<std::size_t>(gt)] <= 10;
  });
  EXPECT_LT(tight.value, r.value);
}

TEST(BrpMctau, QualitativeColumnOfTableI) {
  auto brp = models::make_brp();
  EXPECT_EQ(sta::classify(brp.system), sta::ModelClass::kPta);

  const int to = brp.params.effective_timeout();
  // TA1 / TA2 transfer exactly through the overapproximation.
  bool ta1 = sta::mctau_invariant(
      brp.system, [&brp, to](const ta::SymState& s) {
        bool can_expire =
            brp.sender_waiting(s.locs) &&
            s.zone.satisfies(0, brp.clk_x, quanta::dbm::bound_le(-to));
        return !(can_expire && brp.channels_busy(s.locs));
      });
  EXPECT_TRUE(ta1);
  bool ta2 = sta::mctau_invariant(
      brp.system, [&brp](const ta::SymState& s) { return brp.ta2_ok(s.vars); });
  EXPECT_TRUE(ta2);

  // PA/PB: unreachable even nondeterministically -> exact 0.
  auto pa = sta::mctau_reach_probability(
      brp.system, [&brp](const ta::SymState& s) {
        return brp.is_fail_nok(s.locs) && brp.complete_file(s.vars);
      });
  ASSERT_TRUE(pa.exact.has_value());
  EXPECT_EQ(*pa.exact, 0.0);

  // P1: reachable nondeterministically -> the trivial interval [0,1].
  auto p1 = sta::mctau_reach_probability(
      brp.system, [&brp](const ta::SymState& s) { return brp.no_success(s.locs); });
  EXPECT_FALSE(p1.exact.has_value());
  EXPECT_EQ(p1.lo, 0.0);
  EXPECT_EQ(p1.hi, 1.0);
  EXPECT_EQ(p1.to_string(), "[0, 1]");
}

TEST(BrpModes, AlapEnsembleMatchesEmax) {
  auto brp = models::make_brp();
  sta::DesOptions opts;
  opts.policy = sta::SchedulerPolicy::kAlap;
  auto terminal = [&brp](const ta::ConcreteState& s) { return brp.is_done(s.locs); };
  std::vector<sta::DesPredicate> watch = {
      [&brp](const ta::ConcreteState& s) { return brp.no_success(s.locs); },
  };
  std::vector<sta::DesPredicate> monitors = {
      [&brp](const ta::ConcreteState& s) { return brp.ta2_ok(s.vars); },
  };
  auto ens = sta::run_ensemble(brp.system, 2000, 99, opts, terminal, watch,
                               monitors);
  EXPECT_EQ(ens.terminated, 2000u);
  // Paper (10k runs): mean 33.473, stddev 2.136 under the ALAP-style
  // scheduler; with 2000 runs allow generous tolerance.
  EXPECT_NEAR(ens.end_time.mean(), 33.47, 0.35);
  EXPECT_NEAR(ens.end_time.stddev(), 2.1, 0.6);
  // The rare events are (almost) never observed; monitors never trip.
  EXPECT_LE(ens.watch_hits[0], 4u);
  EXPECT_EQ(ens.monitor_violations[0], 0u);
}

TEST(BrpModes, AsapIsMuchFaster) {
  auto brp = models::make_brp();
  sta::DesOptions opts;
  opts.policy = sta::SchedulerPolicy::kAsap;
  auto terminal = [&brp](const ta::ConcreteState& s) { return brp.is_done(s.locs); };
  auto ens = sta::run_ensemble(brp.system, 500, 7, opts, terminal);
  EXPECT_EQ(ens.terminated, 500u);
  // With ASAP scheduling all channel delays collapse to 0; only timeouts
  // (rare) cost time.
  EXPECT_LT(ens.end_time.mean(), 2.0);
}

TEST(BrpScaling, SmallerInstancesMatchAnalytic) {
  for (int n : {2, 8}) {
    for (int max_r : {1, 2}) {
      models::BrpParams params;
      params.frames = n;
      params.max_retrans = max_r;
      auto brp = models::make_brp(params);
      auto dm = pta::build_digital_mdp(brp.system);
      auto r = pta::pmax_reach(dm, [&brp](const ta::DigitalState& s) {
        return brp.no_success(s.locs);
      });
      EXPECT_NEAR(r.value, brp.analytic_p1(), 1e-8)
          << "N=" << n << " MAX=" << max_r;
    }
  }
}

}  // namespace
