// Tests for zone federations and exact DBM subtraction.
#include "dbm/federation.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace {

using namespace quanta::dbm;

Dbm interval(int lo, int hi) {
  Dbm z = Dbm::universal(2);
  z.constrain(1, 0, bound_le(hi));
  z.constrain(0, 1, bound_le(-lo));
  EXPECT_EQ(z.is_empty(), lo > hi);
  return z;
}

TEST(Subtract, DisjointZonesUnchanged) {
  Dbm a = interval(0, 3);
  Dbm b = interval(5, 8);
  auto diff = subtract(a, b);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].relation(a), Relation::kEqual);
}

TEST(Subtract, FullCoverGivesEmpty) {
  Dbm a = interval(2, 4);
  Dbm b = interval(0, 10);
  EXPECT_TRUE(subtract(a, b).empty());
}

TEST(Subtract, MiddleCutLeavesTwoPieces) {
  Dbm a = interval(0, 10);
  Dbm b = interval(4, 6);
  auto diff = subtract(a, b);
  ASSERT_FALSE(diff.empty());
  // The pieces together contain exactly [0,4) and (6,10].
  auto member = [&diff](double x) {
    for (const Dbm& z : diff) {
      if (z.contains_point({0.0, x})) return true;
    }
    return false;
  };
  EXPECT_TRUE(member(1.0));
  EXPECT_TRUE(member(3.9));
  EXPECT_FALSE(member(5.0));
  EXPECT_TRUE(member(7.0));
  EXPECT_TRUE(member(10.0));
  EXPECT_FALSE(member(11.0));
}

TEST(Federation, AddDeduplicates) {
  Federation f(2);
  f.add(interval(0, 5));
  f.add(interval(1, 3));  // included
  EXPECT_EQ(f.size(), 1u);
  f.add(interval(0, 10));  // covers the stored zone
  EXPECT_EQ(f.size(), 1u);
  EXPECT_TRUE(f.intersects(interval(9, 9)));
}

TEST(Federation, SubtractThenContains) {
  Federation f(2);
  f.add(interval(0, 10));
  f.subtract(interval(4, 6));
  EXPECT_FALSE(f.contains(interval(4, 6)));
  EXPECT_FALSE(f.contains(interval(0, 10)));
  EXPECT_TRUE(f.contains(interval(0, 3)));
  EXPECT_TRUE(f.contains(interval(7, 10)));
}

TEST(Federation, ContainsRequiresFullCover) {
  Federation f(2);
  f.add(interval(0, 4));
  f.add(interval(4, 9));
  EXPECT_TRUE(f.contains(interval(2, 8)));  // covered by the union
  EXPECT_FALSE(f.contains(interval(8, 12)));
}

TEST(Federation, EmptyBehaviour) {
  Federation f(2);
  EXPECT_TRUE(f.is_empty());
  EXPECT_FALSE(f.intersects(interval(0, 1)));
  Dbm never = interval(3, 2);  // empty zone
  EXPECT_TRUE(never.is_empty());
  f.add(never);
  EXPECT_TRUE(f.is_empty());
  EXPECT_TRUE(f.contains(never));
}

// Property: for random zones, subtraction is sound and complete w.r.t.
// sampled points: x in A\B iff x in A and not in B.
class SubtractProperty : public ::testing::TestWithParam<int> {};

TEST_P(SubtractProperty, PointwiseSemantics) {
  quanta::common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 17);
  auto rand_zone = [&rng]() {
    Dbm z = Dbm::universal(3);
    for (int c = 0; c < 4; ++c) {
      int i = rng.uniform_int(0, 2);
      int j = rng.uniform_int(0, 2);
      if (i == j) continue;
      z.constrain(i, j, rng.bernoulli(0.5) ? bound_le(rng.uniform_int(-8, 8))
                                           : bound_lt(rng.uniform_int(-8, 8)));
    }
    return z;
  };
  Dbm a = rand_zone();
  Dbm b = rand_zone();
  auto diff = subtract(a, b);
  for (int t = 0; t < 300; ++t) {
    std::vector<double> p{0.0, rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    bool in_diff = false;
    int hits = 0;
    for (const Dbm& z : diff) {
      if (z.contains_point(p)) {
        in_diff = true;
        ++hits;
      }
    }
    bool expected = a.contains_point(p) && !b.contains_point(p);
    EXPECT_EQ(in_diff, expected) << "point (" << p[1] << "," << p[2] << ")";
    EXPECT_LE(hits, 1) << "subtraction pieces must be disjoint";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SubtractProperty, ::testing::Range(0, 30));

}  // namespace
