// Robustness of the resource-governance layer: every analysis entry point
// must degrade to a kUnknown verdict — never a wrong definite answer, never
// a crash, leak or poisoned thread pool — when a budget trips (state/time/
// memory/cancellation) or a fault is injected at a named site
// (QUANTA_FAULT / common::FaultInjector). The whole suite must be clean
// under QUANTA_SANITIZE=address and =thread (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>

#include "bip/explore.h"
#include "ckpt/delta.h"
#include "common/budget.h"
#include "common/fault.h"
#include "common/verdict.h"
#include "cora/priced.h"
#include "ecdar/refinement.h"
#include "exec/executor.h"
#include "exec/watchdog.h"
#include "game/tiga.h"
#include "mc/deadlock.h"
#include "mc/liveness.h"
#include "mc/reachability.h"
#include "mdp/value_iteration.h"
#include "models/train_gate.h"
#include "pta/digital_clocks.h"
#include "pta/properties.h"
#include "smc/cdf.h"
#include "smc/estimate.h"
#include "smc/sprt.h"

namespace {

using namespace quanta;
using common::Budget;
using common::CancelToken;
using common::FaultInjector;
using common::FaultKind;
using common::StopReason;
using common::Verdict;
using ta::cc_ge;
using ta::cc_le;
using ta::ProcessBuilder;
using ta::SyncKind;

/// Disarms the process-wide injector when a test scope exits, so a failing
/// EXPECT cannot leave a fault armed for the rest of the suite.
struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::instance().disarm(); }
};

/// The CI fault matrix sets QUANTA_FAULT for the whole test process, which
/// arms the injector at startup. Capture the spec and disarm before any test
/// runs — each test arms its own deterministic faults — then replay it in
/// FaultInjection.EnvSpecDegradesGracefully below.
const std::string kEnvFaultSpec = [] {
  const char* s = std::getenv("QUANTA_FAULT");
  FaultInjector::instance().disarm();
  return std::string(s != nullptr ? s : "");
}();

Budget expired_budget() {
  return Budget{}.with_deadline_at(Budget::Clock::now() -
                                   std::chrono::seconds(1));
}

/// The global soundness invariant: a definite verdict is only ever reported
/// by a run that completed (or found a concrete witness, which also reports
/// kCompleted).
void expect_consistent(Verdict v, StopReason stop) {
  if (v != Verdict::kUnknown) {
    EXPECT_EQ(stop, StopReason::kCompleted)
        << "definite verdict " << common::to_string(v)
        << " from a run stopped by " << common::to_string(stop);
  }
}

mc::StatePredicate never() {
  return [](const ta::SymState&) { return false; };
}

std::function<bool(const ta::DigitalState&)> never_digital() {
  return [](const ta::DigitalState&) { return false; };
}

// ---- verdict / budget vocabulary ------------------------------------------

TEST(Verdict, NegationFlipsOnlyDefiniteAnswers) {
  EXPECT_EQ(common::negate(Verdict::kHolds), Verdict::kViolated);
  EXPECT_EQ(common::negate(Verdict::kViolated), Verdict::kHolds);
  EXPECT_EQ(common::negate(Verdict::kUnknown), Verdict::kUnknown);
}

TEST(BudgetPoll, ChecksCancellationBeforeMemoryBeforeClock) {
  CancelToken token;
  token.cancel();
  Budget b = expired_budget().with_memory_limit(1).with_cancel(&token);
  // All three bounds are violated; the cheapest (cancellation) wins.
  EXPECT_EQ(b.poll(1000), StopReason::kCancelled);
  token.reset();
  EXPECT_EQ(b.poll(1000), StopReason::kMemoryLimit);
  EXPECT_EQ(b.poll(0), StopReason::kTimeLimit);
}

TEST(BudgetPoll, InactiveBudgetNeverTrips) {
  Budget b;
  EXPECT_FALSE(b.active());
  EXPECT_EQ(b.poll(std::size_t{1} << 40), StopReason::kCompleted);
}

TEST(SearchLimits, ZeroStateBoundIsRejectedByName) {
  core::SearchLimits limits{.max_states = 0, .budget = {}};
  try {
    limits.validate("test");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("max_states"), std::string::npos);
  }
  mc::ReachOptions opts;
  opts.limits.max_states = 0;
  auto sys = models::make_train_gate(2).system;
  EXPECT_THROW(mc::reachable(sys, never(), opts), std::invalid_argument);
}

// ---- symbolic engines: budget exhaustion -> kUnknown ----------------------

TEST(McGoverned, StateLimitGivesUnknownNotNo) {
  auto tg = models::make_train_gate(3);
  mc::ReachOptions opts;
  opts.limits.max_states = 5;
  auto r = mc::reachable(tg.system, never(), opts);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.stop(), StopReason::kStateLimit);
  EXPECT_TRUE(r.stats.truncated);
  EXPECT_FALSE(r.reachable());
  expect_consistent(r.verdict, r.stop());
}

TEST(McGoverned, ExpiredDeadlineGivesUnknown) {
  auto tg = models::make_train_gate(3);
  mc::ReachOptions opts;
  opts.limits.budget = expired_budget();
  auto r = mc::reachable(tg.system, never(), opts);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.stop(), StopReason::kTimeLimit);
  expect_consistent(r.verdict, r.stop());
}

TEST(McGoverned, MemoryCeilingGivesUnknown) {
  auto tg = models::make_train_gate(3);
  mc::ReachOptions opts;
  opts.limits.budget = Budget{}.with_memory_limit(64);  // bytes: trips at once
  auto r = mc::reachable(tg.system, never(), opts);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.stop(), StopReason::kMemoryLimit);
}

TEST(McGoverned, PreCancelledTokenGivesUnknown) {
  auto tg = models::make_train_gate(2);
  CancelToken token;
  token.cancel();
  mc::ReachOptions opts;
  opts.limits.budget = Budget{}.with_cancel(&token);
  auto r = mc::reachable(tg.system, never(), opts);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.stop(), StopReason::kCancelled);
}

TEST(McGoverned, WitnessFoundBeforeBudgetIsDefinite) {
  // The initial state satisfies the goal: E<> reports kHolds even under the
  // tightest state bound, because the goal test runs before truncation.
  auto tg = models::make_train_gate(2);
  mc::ReachOptions opts;
  opts.limits.max_states = 1;
  auto r = mc::reachable(
      tg.system, [](const ta::SymState&) { return true; }, opts);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.stop(), StopReason::kCompleted);
}

TEST(McGoverned, TruncatedInvariantAndDeadlockAndLivenessAreUnknown) {
  auto tg = models::make_train_gate(3);
  mc::ReachOptions opts;
  opts.limits.max_states = 5;
  auto inv = mc::check_invariant(
      tg.system, [](const ta::SymState&) { return true; }, opts);
  EXPECT_EQ(inv.verdict, Verdict::kUnknown);
  EXPECT_FALSE(inv.holds());  // "truncated is never a definite yes"

  auto dl = mc::check_deadlock_freedom(tg.system, opts);
  EXPECT_EQ(dl.verdict, Verdict::kUnknown);
  EXPECT_FALSE(dl.deadlock_free());

  auto lt = mc::check_leads_to(
      tg.system, never(), [](const ta::SymState&) { return true; }, opts);
  EXPECT_EQ(lt.verdict, Verdict::kUnknown);
  expect_consistent(lt.verdict, lt.stop());
}

// ---- game / cora / ecdar / pta / bip --------------------------------------

ta::System race_game() {
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int goal = pb.location("Goal");
  int bad = pb.location("Bad");
  int e = pb.edge(a, goal, {cc_le(x, 2)}, -1, SyncKind::kNone, {});
  pb.edge_ref(e).controllable = true;
  e = pb.edge(a, bad, {cc_ge(x, 4)}, -1, SyncKind::kNone, {});
  pb.edge_ref(e).controllable = false;
  sys.add_process(pb.build());
  return sys;
}

TEST(GameGoverned, TruncatedGameArenaGivesUnknown) {
  ta::System sys = race_game();
  core::SearchLimits limits{.max_states = 1, .budget = {}};
  game::TimedGame g(sys, limits);
  auto goal = [](const ta::DigitalState& s) { return s.locs[0] == 1; };
  auto r = g.solve_reachability(goal);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_FALSE(r.controller_wins());
  EXPECT_NE(r.stop(), StopReason::kCompleted);
  auto s = g.solve_safety([](const ta::DigitalState&) { return true; });
  EXPECT_EQ(s.verdict, Verdict::kUnknown);
}

TEST(GameGoverned, ZeroStateBoundRejected) {
  ta::System sys = race_game();
  EXPECT_THROW(
      game::TimedGame(sys, core::SearchLimits{.max_states = 0, .budget = {}}),
      std::invalid_argument);
}

TEST(CoraGoverned, TruncatedCostSearchGivesUnknown) {
  ta::System sys;
  int x = sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A");
  int b = pb.location("B");
  pb.edge(a, b, {cc_ge(x, 3)}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());
  cora::PriceModel prices(sys);
  prices.set_location_rate(0, a, 2);

  cora::MinCostOptions opts;
  opts.limits.max_states = 1;
  auto r = cora::min_cost_reachability(sys, prices, never_digital(), opts);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_FALSE(r.reachable());
  expect_consistent(r.verdict, r.stop());
}

TEST(CoraGoverned, ExpiredDeadlineGivesUnknown) {
  ta::System sys;
  sys.add_clock("x");
  ProcessBuilder pb("P");
  int a = pb.location("A");
  pb.edge(a, a, {}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());
  cora::PriceModel prices(sys);
  cora::MinCostOptions opts;
  opts.limits.budget = expired_budget();
  auto r = cora::min_cost_reachability(sys, prices, never_digital(), opts);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.stop(), StopReason::kTimeLimit);
}

/// Spec: on input `req`, emit `grant` within [lo, hi] time units.
ecdar::Tioa responder(int lo, int hi) {
  ecdar::Tioa spec;
  int req = spec.system.add_channel("req");
  int grant = spec.system.add_channel("grant");
  spec.inputs = {req};
  int x = spec.system.add_clock("x");
  ProcessBuilder pb("Resp");
  int idle = pb.location("Idle");
  int busy = pb.location("Busy", {cc_le(x, hi)});
  pb.set_initial(idle);
  pb.edge(idle, busy, {}, req, SyncKind::kReceive, {{x, 0}});
  pb.edge(busy, idle, {cc_ge(x, lo)}, grant, SyncKind::kSend, {});
  spec.system.add_process(pb.build());
  return spec;
}

TEST(EcdarGoverned, TruncatedRefinementGivesUnknown) {
  auto spec = responder(1, 5);
  core::SearchLimits limits{.max_states = 1, .budget = {}};
  auto r = ecdar::check_refinement(spec, spec, limits);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_FALSE(r.refines());
  EXPECT_NE(r.stop(), StopReason::kCompleted);
  // Without the bound the same query is a definite yes (reflexivity).
  auto full = ecdar::check_refinement(spec, spec);
  EXPECT_EQ(full.verdict, Verdict::kHolds);
  EXPECT_EQ(full.stop(), StopReason::kCompleted);
}

TEST(PtaGoverned, PropertiesOnTruncatedDigitalMdpAreUnknown) {
  auto tg = models::make_train_gate(2);
  pta::DigitalBuildOptions opts;
  opts.limits.max_states = 3;
  auto dm = pta::build_digital_mdp(tg.system, opts);
  EXPECT_TRUE(dm.truncated);
  EXPECT_EQ(dm.stop, StopReason::kStateLimit);

  // No violation in the explored prefix: the invariant must stay open.
  auto inv = pta::check_invariant(
      dm, [](const ta::DigitalState&) { return true; });
  EXPECT_EQ(inv.verdict, Verdict::kUnknown);
  EXPECT_FALSE(inv.holds());

  // A violation inside the prefix is definite regardless of truncation.
  auto bad = pta::check_invariant(
      dm, [](const ta::DigitalState&) { return false; });
  EXPECT_EQ(bad.verdict, Verdict::kViolated);

  // Numeric answers over a partial state space certify nothing.
  auto p = pta::pmax_reach(
      dm, [](const ta::DigitalState&) { return true; });
  EXPECT_EQ(p.verdict, Verdict::kUnknown);
}

TEST(BipGoverned, TruncatedExplorationGivesUnknown) {
  bip::BipSystem sys;
  {
    bip::Component c("P");
    int a = c.add_place("A");
    int b = c.add_place("B");
    c.add_transition(a, b, -1);
    c.add_transition(b, a, -1);
    c.set_initial(a);
    sys.add_component(std::move(c));
  }
  bip::ExploreOptions opts;
  opts.limits.max_states = 1;
  auto r = bip::explore(sys, opts);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_FALSE(r.deadlock_found);
  EXPECT_EQ(bip::reachable(
                sys, [](const bip::BipState& s) { return s.places[0] == 1; },
                opts),
            Verdict::kUnknown);
}

// ---- mdp: numeric engines -------------------------------------------------

/// 3-state chain with a slow self-loop so plain VI needs many sweeps:
/// 0 --(0.5 -> 1, 0.5 -> 0)--> ..., 1 = goal (absorbing), 2 = sink.
mdp::Mdp slow_chain() {
  mdp::Mdp m;
  m.add_choice(0, {{1, 0.5}, {0, 0.5}}, 0.0);
  m.add_choice(1, {{1, 1.0}}, 0.0);
  m.add_choice(2, {{2, 1.0}}, 0.0);
  m.set_initial(0);
  m.freeze();
  return m;
}

TEST(MdpGoverned, IterationBoundExhaustionIsUnknown) {
  mdp::Mdp m = slow_chain();
  mdp::StateSet goal(3, false);
  goal[1] = true;
  mdp::ViOptions opts;
  opts.max_iterations = 1;
  opts.epsilon = 1e-12;
  opts.use_precomputation = false;  // keep the fixpoint genuinely iterative
  auto r = mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.stop, StopReason::kStateLimit);
  expect_consistent(r.verdict, r.stop);
}

TEST(MdpGoverned, CancelledValueIterationIsUnknown) {
  mdp::Mdp m = slow_chain();
  mdp::StateSet goal(3, false);
  goal[1] = true;
  CancelToken token;
  token.cancel();
  mdp::ViOptions opts;
  opts.use_precomputation = false;
  opts.budget = Budget{}.with_cancel(&token);
  auto r = mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.stop, StopReason::kCancelled);
}

TEST(MdpGoverned, ArgumentValidationNamesTheParameter) {
  mdp::Mdp m = slow_chain();
  mdp::StateSet goal(3, false);
  goal[1] = true;
  mdp::ViOptions opts;
  opts.epsilon = 0.0;
  EXPECT_THROW(
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts),
      std::invalid_argument);
  opts.epsilon = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts),
      std::invalid_argument);
  opts.epsilon = 1e-6;
  opts.max_iterations = 0;
  EXPECT_THROW(
      mdp::reachability_probability(m, goal, mdp::Objective::kMax, opts),
      std::invalid_argument);
  EXPECT_THROW(mdp::bounded_reachability(m, goal, -1, mdp::Objective::kMax),
               std::invalid_argument);
  // A goal set of the wrong size names both sizes.
  try {
    mdp::reachability_probability(m, mdp::StateSet(2, false),
                                  mdp::Objective::kMax);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("2"), std::string::npos);
    EXPECT_NE(msg.find("3"), std::string::npos);
  }
}

// ---- smc: watchdog cancellation + validation ------------------------------

/// One process, exponential rate 1.0 in Init, single edge to Done.
ta::System make_exponential() {
  ta::System sys;
  ProcessBuilder pb("P");
  int init = pb.location("Init", {}, false, false, 1.0);
  int done = pb.location("Done");
  pb.edge(init, done, {}, -1, SyncKind::kNone, {});
  sys.add_process(pb.build());
  return sys;
}

smc::TimeBoundedReach done_within(const ta::System& sys, double bound) {
  int p = sys.process_index("P");
  int done = sys.process(p).location_index("Done");
  smc::TimeBoundedReach prop;
  prop.time_bound = bound;
  prop.goal = [p, done](const ta::ConcreteState& s) {
    return s.locs[static_cast<std::size_t>(p)] == done;
  };
  return prop;
}

TEST(SmcGoverned, PreCancelledEstimateIsUnknownPartial) {
  ta::System sys = make_exponential();
  CancelToken token;
  token.cancel();
  Budget budget = Budget{}.with_cancel(&token);
  auto est = smc::estimate_probability_runs(sys, done_within(sys, 2.0), 10'000,
                                            0.05, 1, budget);
  EXPECT_EQ(est.verdict, Verdict::kUnknown);
  EXPECT_EQ(est.stop, StopReason::kCancelled);
  EXPECT_LT(est.completed, est.runs);
  expect_consistent(est.verdict, est.stop);
}

TEST(SmcGoverned, WatchdogDeadlineCutsTheSampleShort) {
  ta::System sys = make_exponential();
  Budget budget = Budget::deadline_after(std::chrono::milliseconds(15));
  auto est = smc::estimate_probability_runs(sys, done_within(sys, 2.0),
                                            20'000'000, 0.05, 1, budget);
  EXPECT_EQ(est.verdict, Verdict::kUnknown);
  EXPECT_EQ(est.stop, StopReason::kTimeLimit);
  EXPECT_LT(est.completed, est.runs);
  // The partial tally is still internally consistent.
  EXPECT_LE(est.hits, est.completed);
  EXPECT_GE(est.ci_high, est.ci_low);
}

TEST(SmcGoverned, CompletedEstimateIsDefinite) {
  ta::System sys = make_exponential();
  auto est = smc::estimate_probability_runs(sys, done_within(sys, 2.0), 2'000,
                                            0.05, 1);
  EXPECT_EQ(est.verdict, Verdict::kHolds);
  EXPECT_EQ(est.stop, StopReason::kCompleted);
  EXPECT_EQ(est.completed, est.runs);
}

TEST(SmcGoverned, SprtUnderExpiredBudgetIsInconclusive) {
  ta::System sys = make_exponential();
  smc::SprtOptions opts;
  // theta at the true probability (1 - e^-2 ~ 0.865): the Wald walk has no
  // drift, so a boundary crossing before the (already-expired) watchdog
  // fires is essentially impossible.
  auto r = smc::sprt_test(sys, done_within(sys, 2.0), 0.86, opts, 7,
                          expired_budget());
  EXPECT_EQ(r.verdict, smc::SprtVerdict::kInconclusive);
  EXPECT_EQ(r.as_verdict(), Verdict::kUnknown);
  EXPECT_EQ(r.stop, StopReason::kTimeLimit);
}

TEST(SmcGoverned, CancelledHitTimeSamplingIsUnknown) {
  ta::System sys = make_exponential();
  CancelToken token;
  token.cancel();
  Budget budget = Budget{}.with_cancel(&token);
  exec::Executor ex(2);
  auto r = smc::sample_hit_times(sys, done_within(sys, 2.0), 5'000, 1, ex,
                                 budget);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.stop, StopReason::kCancelled);
  EXPECT_LT(r.completed, r.runs);
  EXPECT_LE(r.times.size(), r.completed);
}

TEST(SmcGoverned, StatisticalParameterValidation) {
  ta::System sys = make_exponential();
  auto prop = done_within(sys, 2.0);
  for (double alpha : {0.0, 1.0, -0.1, 1.5}) {
    EXPECT_THROW(smc::estimate_probability_runs(sys, prop, 100, alpha, 1),
                 std::invalid_argument)
        << "alpha = " << alpha;
  }
  EXPECT_THROW(smc::estimate_probability_runs(sys, prop, 0, 0.05, 1),
               std::invalid_argument);
  EXPECT_THROW(smc::estimate_probability(sys, prop, 0.0, 0.05, 1),
               std::invalid_argument);
  EXPECT_THROW(smc::estimate_probability(sys, prop, 0.05, 1.0, 1),
               std::invalid_argument);

  smc::SprtOptions opts;
  opts.alpha = 0.0;
  EXPECT_THROW(smc::sprt_test(sys, prop, 0.5, opts, 1), std::invalid_argument);
  opts = {};
  opts.max_runs = 0;
  EXPECT_THROW(smc::sprt_test(sys, prop, 0.5, opts, 1), std::invalid_argument);
  opts = {};
  // Indifference region [theta - 0.6, theta + 0.6] leaves (0, 1): rejected
  // with the computed interval in the message.
  opts.indifference = 0.6;
  EXPECT_THROW(smc::sprt_test(sys, prop, 0.5, opts, 1), std::invalid_argument);

  EXPECT_THROW(
      smc::empirical_cdf({}, /*total_runs=*/10, /*horizon=*/1.0, /*points=*/1),
      std::invalid_argument);
  EXPECT_THROW(
      smc::empirical_cdf({}, /*total_runs=*/10, /*horizon=*/0.0, /*points=*/10),
      std::invalid_argument);
  EXPECT_THROW(
      smc::empirical_cdf({}, /*total_runs=*/0, /*horizon=*/1.0, /*points=*/10),
      std::invalid_argument);
}

// ---- fault injection ------------------------------------------------------

TEST(FaultInjection, SpecParsing) {
  DisarmGuard guard;
  auto& fi = FaultInjector::instance();
  EXPECT_TRUE(fi.arm_from_spec("core.state_store.intern=alloc:500"));
  EXPECT_TRUE(fi.armed());
  EXPECT_EQ(fi.armed_site(), "core.state_store.intern");
  EXPECT_TRUE(fi.arm_from_spec("smc.simulator.step=exception"));
  EXPECT_TRUE(fi.arm_from_spec("exec.thread_pool.chunk=deadline:3"));
  for (const char* bad :
       {"", "nonsense", "site-only=", "a=unknown-kind", "a=alloc:NaN"}) {
    EXPECT_FALSE(fi.arm_from_spec(bad)) << bad;
    EXPECT_FALSE(fi.armed()) << bad;
  }
}

TEST(FaultInjection, StateStoreAllocFailureDegradesToUnknown) {
  DisarmGuard guard;
  auto tg = models::make_train_gate(2);
  FaultInjector::instance().arm("core.state_store.intern", FaultKind::kAlloc,
                                /*after=*/10);
  auto r = mc::reachable(tg.system, never());
  EXPECT_TRUE(FaultInjector::instance().fired());
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.stop(), StopReason::kMemoryLimit);

  // Faults fire exactly once: the same (still-armed) injector lets the next
  // run complete, and exhaustive exploration now gives the definite no.
  auto again = mc::reachable(tg.system, never());
  EXPECT_EQ(again.verdict, Verdict::kViolated);
  EXPECT_EQ(again.stop(), StopReason::kCompleted);
}

TEST(FaultInjection, StateStoreWorkerFaultIsKFault) {
  DisarmGuard guard;
  auto tg = models::make_train_gate(2);
  FaultInjector::instance().arm("core.state_store.intern",
                                FaultKind::kException, /*after=*/5);
  auto r = mc::check_invariant(
      tg.system, [](const ta::SymState&) { return true; });
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.stop(), StopReason::kFault);
  EXPECT_FALSE(r.holds());
}

TEST(FaultInjection, ForcedDeadlineTripsAnyDeadlinedBudget) {
  DisarmGuard guard;
  // Three trains: enough states that the amortized budget poll (every 64
  // expansions) runs several times after the fault fires.
  auto tg = models::make_train_gate(3);
  FaultInjector::instance().arm("core.state_store.intern",
                                FaultKind::kDeadline, /*after=*/5);
  mc::ReachOptions opts;
  // A generous real deadline that cannot expire on its own in this test.
  opts.limits.budget = Budget::deadline_after(std::chrono::hours(24));
  auto r = mc::reachable(tg.system, never(), opts);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.stop(), StopReason::kTimeLimit);
}

TEST(FaultInjection, SimulatorFaultDoesNotPoisonTheExecutor) {
  DisarmGuard guard;
  ta::System sys = make_exponential();
  auto prop = done_within(sys, 2.0);
  exec::Executor ex(4);

  FaultInjector::instance().arm("smc.simulator.step", FaultKind::kException,
                                /*after=*/100);
  auto broken = smc::estimate_probability_runs(sys, prop, 5'000, 0.05, 1, ex);
  EXPECT_EQ(broken.verdict, Verdict::kUnknown);
  EXPECT_EQ(broken.stop, StopReason::kFault);

  // The same pool must run the next job to completion.
  auto healthy = smc::estimate_probability_runs(sys, prop, 5'000, 0.05, 1, ex);
  EXPECT_EQ(healthy.verdict, Verdict::kHolds);
  EXPECT_EQ(healthy.completed, healthy.runs);
}

TEST(FaultInjection, ThreadPoolChunkFaultPropagatesAndPoolSurvives) {
  DisarmGuard guard;
  exec::Executor ex(4);
  FaultInjector::instance().arm("exec.thread_pool.chunk",
                                FaultKind::kException, /*after=*/2);
  std::atomic<std::uint64_t> count{0};
  EXPECT_THROW(
      ex.for_each(0, 100'000,
                  [&](std::uint64_t, exec::Executor::WorkerContext&) {
                    count.fetch_add(1, std::memory_order_relaxed);
                  }),
      quanta::FaultError);

  // Pool not poisoned: the next job covers every index exactly once.
  count.store(0);
  ex.for_each(0, 10'000, [&](std::uint64_t, exec::Executor::WorkerContext&) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 10'000u);
}

TEST(FaultInjection, AllocFaultThroughGovernedEstimateIsMemoryLimit) {
  DisarmGuard guard;
  ta::System sys = make_exponential();
  FaultInjector::instance().arm("smc.simulator.step", FaultKind::kAlloc,
                                /*after=*/50);
  auto est = smc::estimate_probability_runs(sys, done_within(sys, 2.0), 5'000,
                                            0.05, 1);
  EXPECT_EQ(est.verdict, Verdict::kUnknown);
  EXPECT_EQ(est.stop, StopReason::kMemoryLimit);
}

TEST(FaultInjection, EnvSpecDegradesGracefully) {
  if (kEnvFaultSpec.empty()) {
    GTEST_SKIP() << "QUANTA_FAULT not set; CI fault matrix exercises this";
  }
  DisarmGuard guard;
  ASSERT_TRUE(FaultInjector::instance().arm_from_spec(kEnvFaultSpec))
      << "malformed QUANTA_FAULT spec: " << kEnvFaultSpec;
  // Drive every registered site enough to fire whatever the spec armed: a
  // symbolic search (thousands of state-store interns) and a statistical
  // estimate (thousands of simulator steps), both under a generous deadline
  // so an injected-deadline fault has a budget to trip. Wherever the fault
  // lands, the engine must degrade to kUnknown — never report a definite
  // verdict from a faulted run — and the process must stay healthy.
  auto tg = models::make_train_gate(3);
  mc::ReachOptions opts;
  opts.record_trace = false;
  opts.limits.budget = Budget::deadline_after(std::chrono::hours(24));
  auto r = mc::reachable(tg.system, never(), opts);
  expect_consistent(r.verdict, r.stop());

  ta::System sys = make_exponential();
  Budget budget = Budget::deadline_after(std::chrono::hours(24));
  auto est = smc::estimate_probability_runs(sys, done_within(sys, 2.0), 2'000,
                                            0.05, 1, budget);
  expect_consistent(est.verdict, est.stop);

  // Checkpoint round-trip so the ckpt.delta.* sites are reachable from the
  // spec: the first run writes a base snapshot plus periodic deltas
  // (ckpt.delta.write), the second resumes by replaying the chain
  // (ckpt.delta.apply). A write fault must end the chain at the previous
  // link and an apply fault must degrade the load to a fresh start — either
  // way both runs stay sound.
  const std::string ckpt_path = ::testing::TempDir() + "env_spec_fault.qckpt";
  std::remove(ckpt_path.c_str());
  for (std::uint32_t seq = 1; seq <= 256; ++seq) {
    std::remove(ckpt::delta_path(ckpt_path, seq).c_str());
  }
  mc::ReachOptions copts;
  copts.record_trace = false;
  copts.limits.budget = Budget::deadline_after(std::chrono::hours(24));
  copts.checkpoint.path = ckpt_path;
  copts.checkpoint.interval = 25;
  auto c1 = mc::reachable(tg.system, never(), copts);
  expect_consistent(c1.verdict, c1.stop());
  auto c2 = mc::reachable(tg.system, never(), copts);
  expect_consistent(c2.verdict, c2.stop());
  std::remove(ckpt_path.c_str());
  for (std::uint32_t seq = 1; seq <= 256; ++seq) {
    std::remove(ckpt::delta_path(ckpt_path, seq).c_str());
  }

  EXPECT_TRUE(FaultInjector::instance().fired())
      << "spec " << kEnvFaultSpec << " never fired; site unreachable?";
}

// ---- watchdog -------------------------------------------------------------

TEST(Watchdog, InactiveBudgetStartsNoThreadAndNeverFires) {
  CancelToken token;
  Budget budget;  // unlimited
  exec::Watchdog dog(budget, token);
  EXPECT_EQ(dog.fired_reason(), StopReason::kCompleted);
  EXPECT_FALSE(token.cancelled());
}

TEST(Watchdog, FiresTheTokenOnAnExpiredDeadline) {
  CancelToken token;
  Budget budget = expired_budget();
  exec::Watchdog dog(budget, token);
  for (int i = 0; i < 2'000 && !token.cancelled(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(dog.fired_reason(), StopReason::kTimeLimit);
}

TEST(Watchdog, RelaysAnExternalCancellation) {
  CancelToken external;
  CancelToken internal;
  Budget budget = Budget{}.with_cancel(&external);
  exec::Watchdog dog(budget, internal);
  external.cancel();
  for (int i = 0; i < 2'000 && !internal.cancelled(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(internal.cancelled());
  EXPECT_EQ(dog.fired_reason(), StopReason::kCancelled);
}

}  // namespace
