// Tests for the ioco testing theory: suspension automata, the ioco checker,
// test generation soundness/exhaustiveness, and online timed testing
// (experiment E7).
#include "mbt/ioco.h"

#include <gtest/gtest.h>

#include "mbt/execute.h"
#include "mbt/rtioco.h"
#include "models/mbt_models.h"

namespace {

using namespace quanta;
using namespace quanta::mbt;
using namespace quanta::models;

// Classic example: spec offers coffee after coin; impl may also give tea.
struct CoffeeLabels {
  int coin, button, coffee, tea;
};

Lts coffee_machine(bool also_tea, bool tea_only, CoffeeLabels* out) {
  Lts lts;
  CoffeeLabels l;
  l.coin = lts.add_input("coin");
  l.button = lts.add_input("button");
  l.coffee = lts.add_output("coffee");
  l.tea = lts.add_output("tea");
  int idle = lts.add_state("Idle");
  int paid = lts.add_state("Paid");
  int brew = lts.add_state("Brew");
  lts.set_initial(idle);
  lts.add_transition(idle, paid, l.coin);
  lts.add_transition(paid, brew, l.button);
  if (!tea_only) lts.add_transition(brew, idle, l.coffee);
  if (also_tea || tea_only) lts.add_transition(brew, idle, l.tea);
  // Input-enable.
  for (int s = 0; s < lts.state_count(); ++s) {
    for (int i : lts.inputs()) {
      if (lts.post(s, i).empty()) lts.add_transition(s, s, i);
    }
  }
  if (out) *out = l;
  return lts;
}

TEST(Suspension, QuiescenceAndDeterminization) {
  CoffeeLabels l;
  Lts spec = coffee_machine(false, false, &l);
  SuspensionAutomaton sa(spec);
  // Initial state is quiescent (no outputs before brewing).
  auto outs = sa.out(sa.initial());
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], kDelta);
  // After coin+button the machine must produce output: no delta.
  int paid = sa.step(sa.initial(), l.coin);
  int brew = sa.step(paid, l.button);
  ASSERT_GE(brew, 0);
  auto brewing = sa.out(brew);
  ASSERT_EQ(brewing.size(), 1u);
  EXPECT_EQ(brewing[0], l.coffee);
  // Delta is idempotent: delta loops at quiescent states.
  EXPECT_EQ(sa.step(sa.initial(), kDelta), sa.step(sa.step(sa.initial(), kDelta), kDelta));
}

TEST(Suspension, TauClosure) {
  Lts lts;
  int out = lts.add_output("o");
  int a = lts.add_state();
  int b = lts.add_state();
  int c = lts.add_state();
  lts.set_initial(a);
  lts.add_transition(a, b, kTau);
  lts.add_transition(b, c, out);
  SuspensionAutomaton sa(lts);
  // The initial suspension state includes b via tau, so o is offered.
  auto outs = sa.out(sa.initial());
  EXPECT_EQ(outs.size(), 1u);  // o, and no delta (b is not quiescent, a... )
}

TEST(Ioco, ReflexiveAndReduction) {
  Lts spec = coffee_machine(true, false, nullptr);   // coffee or tea
  Lts impl = coffee_machine(false, false, nullptr);  // coffee only
  EXPECT_TRUE(check_ioco(spec, spec).conforms);
  EXPECT_TRUE(check_ioco(impl, spec).conforms) << "reduction must conform";
  // The converse fails: spec may output tea which impl's spec disallows.
  auto r = check_ioco(spec, impl);
  EXPECT_FALSE(r.conforms);
  EXPECT_EQ(r.offending, "tea");
}

TEST(Ioco, CatchesWrongAndMissingOutputs) {
  Lts spec = make_swb_spec();
  EXPECT_TRUE(check_ioco(make_swb_impl(), spec).conforms);

  auto wrong = check_ioco(make_swb_mutant_wrong_output(), spec);
  EXPECT_FALSE(wrong.conforms);
  EXPECT_EQ(wrong.offending, "err");

  auto missing = check_ioco(make_swb_mutant_missing_notify(), spec);
  EXPECT_FALSE(missing.conforms);
  EXPECT_EQ(missing.offending, "delta") << "missing output shows as quiescence";

  auto unsolicited = check_ioco(make_swb_mutant_unsolicited_notify(), spec);
  EXPECT_FALSE(unsolicited.conforms);
  EXPECT_EQ(unsolicited.offending, "notify");
}

TEST(Ioco, CounterexampleTraceIsReported) {
  Lts spec = make_swb_spec();
  auto r = check_ioco(make_swb_mutant_wrong_output(), spec);
  ASSERT_FALSE(r.conforms);
  ASSERT_FALSE(r.trace.empty());
  // The witnessing trace must involve a publish (that is where err appears).
  bool has_publish = false;
  for (const auto& step : r.trace) {
    if (step == "publish") has_publish = true;
  }
  EXPECT_TRUE(has_publish);
}

TEST(TestGen, SoundnessOnConformingImpl) {
  // Generated tests never fail a conforming implementation.
  Lts spec = make_swb_spec();
  Lts impl = make_swb_impl();
  LtsIut iut(impl, 7);
  auto campaign = run_campaign(spec, iut, 300, 11);
  EXPECT_EQ(campaign.failures, 0u)
      << campaign.failures << "/" << campaign.tests << " sound tests failed";
}

TEST(TestGen, DetectsAllMutants) {
  Lts spec = make_swb_spec();
  auto kill_rate = [&spec](const Lts& mutant, std::uint64_t seed) {
    LtsIut iut(mutant, seed);
    auto campaign = run_campaign(spec, iut, 400, seed + 1);
    return campaign.failures;
  };
  EXPECT_GT(kill_rate(make_swb_mutant_wrong_output(), 21), 0u);
  EXPECT_GT(kill_rate(make_swb_mutant_missing_notify(), 22), 0u);
  EXPECT_GT(kill_rate(make_swb_mutant_unsolicited_notify(), 23), 0u);
}

TEST(TestGen, TestsAreFiniteTrees) {
  Lts spec = make_swb_spec();
  TestGenerator gen(spec, 3, TestGenOptions{.max_depth = 8});
  for (int i = 0; i < 50; ++i) {
    TestCase tc = gen.generate();
    ASSERT_FALSE(tc.nodes.empty());
    // Every referenced node index is in range (tree well-formedness).
    for (const auto& n : tc.nodes) {
      if (n.kind == TestNode::Kind::kStimulate) {
        ASSERT_GE(n.after_stimulus, 0);
        ASSERT_LT(n.after_stimulus, static_cast<int>(tc.nodes.size()));
      }
      for (const auto& [o, next] : n.on_output) {
        ASSERT_LT(next, static_cast<int>(tc.nodes.size()));
      }
    }
  }
}

// ---- rtioco online testing (TRON) ----------------------------------------

TEST(Rtioco, CorrectImplementationPasses) {
  auto spec = models::make_timed_light_spec();
  TimedSystemIut iut(spec, 5);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto r = rtioco_online_test(spec, iut, seed);
    EXPECT_EQ(r.verdict, OnlineVerdict::kPass)
        << "seed " << seed << ", after " << r.steps << " steps, log tail: "
        << (r.log.empty() ? "-" : r.log.back());
  }
}

TEST(Rtioco, LateMutantFailsDeadline) {
  auto spec = models::make_timed_light_spec();
  auto mutant = models::make_timed_light_late_mutant();
  bool caught = false;
  for (std::uint64_t seed = 0; seed < 20 && !caught; ++seed) {
    TimedSystemIut iut(mutant, seed);
    auto r = rtioco_online_test(spec, iut, seed + 100);
    if (r.verdict != OnlineVerdict::kPass) {
      caught = true;
      EXPECT_TRUE(r.verdict == OnlineVerdict::kFailDeadline ||
                  r.verdict == OnlineVerdict::kFailOutput);
    }
  }
  EXPECT_TRUE(caught) << "the late mutant was never detected";
}

TEST(Rtioco, WrongActionMutantFails) {
  auto spec = models::make_timed_light_spec();
  auto mutant = models::make_timed_light_wrong_action_mutant();
  bool caught = false;
  for (std::uint64_t seed = 0; seed < 20 && !caught; ++seed) {
    TimedSystemIut iut(mutant, seed);
    auto r = rtioco_online_test(spec, iut, seed + 500);
    if (r.verdict == OnlineVerdict::kFailOutput) caught = true;
  }
  EXPECT_TRUE(caught) << "the wrong-action mutant was never detected";
}

TEST(Rtioco, LogRecordsTimedTrace) {
  auto spec = models::make_timed_light_spec();
  TimedSystemIut iut(spec, 9);
  OnlineTestOptions opts;
  opts.input_probability = 0.9;
  opts.max_time = 50;
  auto r = rtioco_online_test(spec, iut, 77, opts);
  EXPECT_EQ(r.verdict, OnlineVerdict::kPass);
  ASSERT_FALSE(r.log.empty());
  EXPECT_NE(r.log.front().find("t="), std::string::npos);
}

}  // namespace
