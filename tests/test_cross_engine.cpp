// Cross-engine consistency properties: the library implements several
// independent semantics/engines for the same models; on randomly generated
// systems their answers must agree. These tests are the strongest internal
// soundness evidence we have:
//   - symbolic (zone) vs digital (integer-time) reachability on closed TA;
//   - mcpta (digital MDP value iteration) vs modes-style simulation on PTAs;
//   - BIP exact exploration vs flattening;
//   - probabilities vs their analytic closed forms on a parametric family.
#include <gtest/gtest.h>

#include "bip/explore.h"
#include "bip/flatten.h"
#include "common/rng.h"
#include "mc/reachability.h"
#include "models/brp.h"
#include "models/train_gate.h"
#include "pta/digital_clocks.h"
#include "pta/properties.h"
#include "smc/estimate.h"
#include "sta/mctau.h"
#include "ta/digital.h"

namespace {

using namespace quanta;
using ta::cc_ge;
using ta::cc_le;
using ta::ProcessBuilder;
using ta::SyncKind;

/// Random closed, diagonal-free TA network: `procs` processes with a few
/// locations each, one clock per process, random closed guards/invariants,
/// and a couple of binary channels.
ta::System random_ta(common::Rng& rng, int procs) {
  ta::System sys;
  int channels = 2;
  for (int c = 0; c < channels; ++c) {
    sys.add_channel("c" + std::to_string(c));
  }
  for (int p = 0; p < procs; ++p) {
    int x = sys.add_clock("x" + std::to_string(p));
    ProcessBuilder pb("P" + std::to_string(p));
    int n_locs = rng.uniform_int(2, 4);
    for (int l = 0; l < n_locs; ++l) {
      std::vector<ta::ClockConstraint> inv;
      if (rng.bernoulli(0.5)) inv.push_back(cc_le(x, rng.uniform_int(2, 6)));
      pb.location("l" + std::to_string(l), std::move(inv));
    }
    int n_edges = rng.uniform_int(2, 5);
    for (int e = 0; e < n_edges; ++e) {
      int src = rng.uniform_int(0, n_locs - 1);
      int dst = rng.uniform_int(0, n_locs - 1);
      std::vector<ta::ClockConstraint> guard;
      if (rng.bernoulli(0.5)) guard.push_back(cc_ge(x, rng.uniform_int(0, 4)));
      if (rng.bernoulli(0.3)) guard.push_back(cc_le(x, rng.uniform_int(4, 8)));
      std::vector<std::pair<int, ta::Value>> resets;
      if (rng.bernoulli(0.5)) resets.emplace_back(x, 0);
      int kind = rng.uniform_int(0, 2);
      int channel = kind == 0 ? -1 : rng.uniform_int(0, channels - 1);
      pb.edge(src, dst, std::move(guard), channel,
              kind == 0 ? SyncKind::kNone
                        : (kind == 1 ? SyncKind::kSend : SyncKind::kReceive),
              std::move(resets));
    }
    sys.add_process(pb.build());
  }
  sys.validate();
  return sys;
}

/// Reachable location-vector sets must agree between the zone-based and the
/// digital-clocks semantics (exact for closed diagonal-free TA).
class SymbolicVsDigital : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicVsDigital, SameReachableLocationVectors) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 997 + 13);
  ta::System sys = random_ta(rng, 2);

  // Symbolic: collect reachable location vectors.
  std::set<std::vector<int>> symbolic;
  mc::reachable(sys, [&symbolic](const ta::SymState& s) {
    symbolic.insert(s.locs);
    return false;
  });

  // Digital: BFS over integer-time states.
  std::set<std::vector<int>> digital;
  {
    ta::DigitalSemantics sem(sys);
    std::set<ta::DigitalState> seen;
    std::vector<ta::DigitalState> work{sem.initial()};
    seen.insert(work.back());
    auto cmp_insert = [&](ta::DigitalState s) {
      if (seen.insert(s).second) work.push_back(std::move(s));
    };
    while (!work.empty()) {
      ta::DigitalState s = std::move(work.back());
      work.pop_back();
      digital.insert(s.locs);
      for (const ta::Move& m : sem.enabled_moves(s)) cmp_insert(sem.apply(s, m));
      if (sem.can_delay(s)) cmp_insert(sem.delay_one(s));
    }
  }
  EXPECT_EQ(symbolic, digital)
      << "zone and digital semantics disagree on reachability";
}

INSTANTIATE_TEST_SUITE_P(RandomModels, SymbolicVsDigital,
                         ::testing::Range(0, 30));

/// A one-process PTA whose success probability is scheduler-independent:
/// k rounds of an urgent coin flip with success probability q per round;
/// overall success = 1 - (1-q)^k. Checked with value iteration AND with the
/// stochastic simulator.
class PtaVsAnalytic : public ::testing::TestWithParam<int> {};

TEST_P(PtaVsAnalytic, ViMatchesClosedFormAndSimulation) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  int k = rng.uniform_int(1, 4);
  double q = 0.1 + 0.2 * rng.uniform_int(0, 3);

  ta::System sys;
  ProcessBuilder pb("P");
  std::vector<int> rounds;
  for (int i = 0; i <= k; ++i) {
    rounds.push_back(pb.location("r" + std::to_string(i), {}, false,
                                 /*urgent=*/i < k));
  }
  int win = pb.location("Win");
  for (int i = 0; i < k; ++i) {
    int idx = pb.edge(rounds[static_cast<std::size_t>(i)],
                      rounds[static_cast<std::size_t>(i + 1)]);
    ta::Edge& e = pb.edge_ref(idx);
    e.branches = {ta::ProbBranch{q, win, {}, nullptr, "win"},
                  ta::ProbBranch{1.0 - q, rounds[static_cast<std::size_t>(i + 1)],
                                 {}, nullptr, "next"}};
  }
  pb.set_initial(rounds[0]);
  sys.add_process(pb.build());

  double expected = 1.0 - std::pow(1.0 - q, k);

  // Engine 1: digital MDP + value iteration.
  auto dm = pta::build_digital_mdp(sys);
  int p = 0;
  auto at_win = [p, win](const ta::DigitalState& s) {
    return s.locs[static_cast<std::size_t>(p)] == win;
  };
  EXPECT_NEAR(pta::pmax_reach(dm, at_win).value, expected, 1e-9);
  EXPECT_NEAR(pta::pmin_reach(dm, at_win).value, expected, 1e-9)
      << "no scheduler influence expected";

  // Engine 2: stochastic simulation.
  smc::TimeBoundedReach prop;
  prop.time_bound = 1e6;
  prop.goal = [p, win](const ta::ConcreteState& s) {
    return s.locs[static_cast<std::size_t>(p)] == win;
  };
  auto est = smc::estimate_probability_runs(
      sys, prop, 4000, 0.01, static_cast<std::uint64_t>(GetParam()));
  EXPECT_NEAR(est.p_hat, expected, 0.035)
      << "k=" << k << " q=" << q << " (simulation vs closed form)";
}

INSTANTIATE_TEST_SUITE_P(RandomParams, PtaVsAnalytic, ::testing::Range(0, 12));

/// Random BIP systems: flattening preserves the reachable state count and
/// the deadlock verdict of exact exploration.
class BipFlattenProperty : public ::testing::TestWithParam<int> {};

TEST_P(BipFlattenProperty, FlatteningPreservesBehaviour) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 3);
  bip::BipSystem sys;
  int procs = rng.uniform_int(2, 3);
  for (int p = 0; p < procs; ++p) {
    bip::Component c("C" + std::to_string(p));
    int n = rng.uniform_int(2, 3);
    for (int l = 0; l < n; ++l) c.add_place("p" + std::to_string(l));
    c.add_port("a");
    c.add_port("b");
    int edges = rng.uniform_int(2, 4);
    for (int e = 0; e < edges; ++e) {
      c.add_transition(rng.uniform_int(0, n - 1), rng.uniform_int(0, n - 1),
                       rng.uniform_int(-1, 1));
    }
    c.set_initial(0);
    sys.add_component(std::move(c));
  }
  // A binary rendezvous between the first two components on port "b".
  bip::Connector conn;
  conn.name = "rv";
  conn.ports = {{0, 1}, {1, 1}};
  sys.add_connector(std::move(conn));
  // Unary connectors exposing port "a" of every component.
  for (int p = 0; p < procs; ++p) {
    bip::Connector solo;
    solo.name = "solo" + std::to_string(p);
    solo.ports = {{p, 0}};
    sys.add_connector(std::move(solo));
  }

  auto exact = bip::explore(sys);
  auto flat = bip::flatten(sys);
  ASSERT_FALSE(flat.stats.truncated);
  EXPECT_EQ(static_cast<std::size_t>(flat.flat.place_count()),
            exact.stats.states_stored);

  // Deadlock in the original iff some flat place has no outgoing transition.
  std::vector<bool> has_succ(static_cast<std::size_t>(flat.flat.place_count()),
                             false);
  for (const auto& t : flat.flat.transitions()) {
    has_succ[static_cast<std::size_t>(t.source)] = true;
  }
  bool flat_deadlock = false;
  for (bool b : has_succ) {
    if (!b) flat_deadlock = true;
  }
  EXPECT_EQ(flat_deadlock, exact.deadlock_found);
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, BipFlattenProperty,
                         ::testing::Range(0, 25));

/// The BRP family: model-checked P1 equals the closed form for random
/// parameter combinations (ties the whole PTA pipeline to ground truth).
class BrpFamily : public ::testing::TestWithParam<int> {};

TEST_P(BrpFamily, P1MatchesClosedForm) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  models::BrpParams params;
  params.frames = rng.uniform_int(1, 8);
  params.max_retrans = rng.uniform_int(0, 3);
  params.td = rng.uniform_int(1, 2);
  params.msg_loss = 0.05 * rng.uniform_int(1, 4);
  params.ack_loss = 0.05 * rng.uniform_int(1, 2);
  auto brp = models::make_brp(params);
  auto dm = pta::build_digital_mdp(brp.system);
  auto p1 = pta::pmax_reach(dm, [&brp](const ta::DigitalState& s) {
              return brp.no_success(s.locs);
            }).value;
  EXPECT_NEAR(p1, brp.analytic_p1(), 1e-7)
      << "N=" << params.frames << " MAX=" << params.max_retrans
      << " TD=" << params.td << " pm=" << params.msg_loss
      << " pa=" << params.ack_loss;
}

INSTANTIATE_TEST_SUITE_P(RandomParams, BrpFamily, ::testing::Range(0, 15));

/// The shared exploration core makes the waiting-list order a one-line
/// option; verdicts (reachability, invariants) must be identical under BFS
/// and DFS even though witness traces and stored-state counts may differ.
TEST(SearchOrder, BfsAndDfsAgreeOnTrainGate) {
  auto tg = models::make_train_gate(3);
  std::vector<int> cross_loc;
  for (int i = 0; i < tg.num_trains; ++i) {
    cross_loc.push_back(
        tg.system.process(tg.trains[i]).location_index("Cross"));
  }
  auto trains = tg.trains;
  auto mutex = [trains, cross_loc](const ta::SymState& s) {
    int crossing = 0;
    for (std::size_t i = 0; i < trains.size(); ++i) {
      if (s.locs[static_cast<std::size_t>(trains[i])] == cross_loc[i]) {
        ++crossing;
      }
    }
    return crossing <= 1;
  };

  mc::ReachOptions bfs;
  bfs.order = core::SearchOrder::kBfs;
  mc::ReachOptions dfs;
  dfs.order = core::SearchOrder::kDfs;

  auto inv_bfs = mc::check_invariant(tg.system, mutex, bfs);
  auto inv_dfs = mc::check_invariant(tg.system, mutex, dfs);
  EXPECT_TRUE(inv_bfs.holds());
  EXPECT_EQ(inv_bfs.holds(), inv_dfs.holds());

  for (int i = 0; i < tg.num_trains; ++i) {
    auto goal = mc::loc_pred(tg.system, "Train(" + std::to_string(i) + ")",
                             "Cross");
    auto r_bfs = mc::reachable(tg.system, goal, bfs);
    auto r_dfs = mc::reachable(tg.system, goal, dfs);
    EXPECT_TRUE(r_bfs.reachable());
    EXPECT_EQ(r_bfs.reachable(), r_dfs.reachable());
  }
}

TEST(SearchOrder, BfsAndDfsAgreeOnBrp) {
  // The BRP is probabilistic; strip the branch distributions to obtain the
  // underlying TA for symbolic reachability.
  auto brp = models::make_brp();
  ta::System sys = sta::strip_probabilities(brp.system);

  mc::ReachOptions bfs;
  bfs.order = core::SearchOrder::kBfs;
  mc::ReachOptions dfs;
  dfs.order = core::SearchOrder::kDfs;

  auto success = [&brp](const ta::SymState& s) {
    return brp.is_success(s.locs);
  };
  auto r_bfs = mc::reachable(sys, success, bfs);
  auto r_dfs = mc::reachable(sys, success, dfs);
  EXPECT_TRUE(r_bfs.reachable());
  EXPECT_EQ(r_bfs.reachable(), r_dfs.reachable());
  EXPECT_FALSE(r_bfs.stats.truncated);
  EXPECT_FALSE(r_dfs.stats.truncated);

  // A[] "the sender is never in both failure modes at once" — trivially
  // true, forcing both orders to exhaust the same state space.
  auto inv = [&brp](const ta::SymState& s) {
    return !(brp.is_fail_nok(s.locs) && brp.is_fail_dk(s.locs));
  };
  auto inv_bfs = mc::check_invariant(sys, inv, bfs);
  auto inv_dfs = mc::check_invariant(sys, inv, dfs);
  EXPECT_TRUE(inv_bfs.holds());
  EXPECT_EQ(inv_bfs.holds(), inv_dfs.holds());
}

}  // namespace
