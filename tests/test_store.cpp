// Tests for the interned zone-storage substrate (src/store) and its
// integration with the exploration core: ZonePool content interning, arena
// allocation, the spill tier (including injected write failures), the
// QUANTA_STORE_MEM/QUANTA_STORE_SPILL knobs, and — the load-bearing
// property — bit-identical interning behavior of pooled stores against a
// reference unpooled store, with and without spilling.
#include "store/pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bip/traits.h"
#include "common/fault.h"
#include "core/state_store.h"
#include "store/pack.h"
#include "store/spill.h"
#include "ta/traits.h"

namespace {

using namespace quanta;
using store::PoolConfig;
using store::Ref;
using store::SpillFile;
using store::ZonePool;

std::string temp_path(const char* name) {
  return testing::TempDir() + "quanta_store_" + name + "_" +
         std::to_string(::getpid());
}

std::vector<std::int32_t> payload(int seed, std::size_t len) {
  std::vector<std::int32_t> v(len);
  for (std::size_t i = 0; i < len; ++i) {
    v[i] = static_cast<std::int32_t>(seed * 7919 + static_cast<int>(i));
  }
  return v;
}

TEST(ParseMemoryBytes, AcceptsWholeByteCountsWithBinarySuffix) {
  std::size_t out = 0;
  EXPECT_TRUE(store::parse_memory_bytes("1024", &out));
  EXPECT_EQ(out, 1024u);
  EXPECT_TRUE(store::parse_memory_bytes("4K", &out));
  EXPECT_EQ(out, 4096u);
  EXPECT_TRUE(store::parse_memory_bytes("16m", &out));
  EXPECT_EQ(out, 16u << 20);
  EXPECT_TRUE(store::parse_memory_bytes("2G", &out));
  EXPECT_EQ(out, std::size_t{2} << 30);
}

TEST(ParseMemoryBytes, RejectsMalformedSpecsWholesale) {
  // Same strictness as QUANTA_JOBS: no half-parsing, no silent truncation.
  std::size_t out = 12345;
  for (const char* bad : {"", "0", "-5", "+5", "4KB", "1.5G", "abc", "10x",
                          "G", "99999999999999999999G"}) {
    EXPECT_FALSE(store::parse_memory_bytes(bad, &out)) << "'" << bad << "'";
    EXPECT_EQ(out, 12345u) << "out must stay untouched for '" << bad << "'";
  }
  EXPECT_FALSE(store::parse_memory_bytes(nullptr, &out));
}

TEST(PoolConfigFromEnv, ParsesKnobsAndDegradesOnGarbage) {
  ::setenv("QUANTA_STORE_MEM", "8M", 1);
  ::setenv("QUANTA_STORE_SPILL", "/tmp/some_spill_file", 1);
  PoolConfig cfg = store::pool_config_from_env();
  EXPECT_EQ(cfg.resident_limit, 8u << 20);
  EXPECT_EQ(cfg.spill_path, "/tmp/some_spill_file");

  ::setenv("QUANTA_STORE_MEM", "lots", 1);
  ::setenv("QUANTA_STORE_SPILL", "", 1);
  cfg = store::pool_config_from_env();
  EXPECT_EQ(cfg.resident_limit, std::numeric_limits<std::size_t>::max());
  EXPECT_TRUE(cfg.spill_path.empty());

  ::unsetenv("QUANTA_STORE_MEM");
  ::unsetenv("QUANTA_STORE_SPILL");
  cfg = store::pool_config_from_env();
  EXPECT_EQ(cfg.resident_limit, std::numeric_limits<std::size_t>::max());
  EXPECT_TRUE(cfg.spill_path.empty());
}

TEST(ZonePool, InternSharesIdenticalPayloads) {
  ZonePool pool;
  const auto a = payload(1, 16);
  const Ref r1 = pool.intern(a);
  const Ref r2 = pool.intern(a);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(pool.refcount(r1), 2u);
  const Ref r3 = pool.intern(payload(2, 16));
  EXPECT_NE(r3, r1);

  const auto m = pool.metrics();
  EXPECT_EQ(m.records, 2u);
  EXPECT_EQ(m.lookups, 3u);
  EXPECT_EQ(m.hits, 1u);
  EXPECT_DOUBLE_EQ(m.hit_rate(), 1.0 / 3.0);

  const auto d = pool.data(r1);
  ASSERT_EQ(d.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(d[i], a[i]);
}

TEST(ZonePool, EmptyAndOversizePayloadsIntern) {
  ZonePool pool;
  const Ref empty1 = pool.intern({});
  const Ref empty2 = pool.intern(std::vector<std::int32_t>{});
  EXPECT_EQ(empty1, empty2);
  EXPECT_TRUE(pool.data(empty1).empty());

  // Larger than one arena chunk: gets a dedicated chunk, stays addressable.
  const auto big = payload(3, (std::size_t{1} << 16) + 7);
  const Ref r = pool.intern(big);
  const auto d = pool.data(r);
  ASSERT_EQ(d.size(), big.size());
  EXPECT_EQ(d[0], big[0]);
  EXPECT_EQ(d[big.size() - 1], big[big.size() - 1]);
  EXPECT_EQ(pool.intern(big), r);
}

TEST(ZonePool, ReleaseMarksDeadAndReinternRevives) {
  ZonePool pool;
  const Ref r = pool.intern(payload(4, 8));
  EXPECT_FALSE(pool.release(r) && false);  // refcount 1 -> 0
  EXPECT_EQ(pool.refcount(r), 0u);
  // An equal payload interned later revives the record under the same Ref.
  EXPECT_EQ(pool.intern(payload(4, 8)), r);
  EXPECT_EQ(pool.refcount(r), 1u);
  pool.retain(r);
  EXPECT_EQ(pool.refcount(r), 2u);
}

TEST(SpillFile, AppendReadRoundTripAndBoundsChecks) {
  const std::string path = temp_path("spill_rt");
  SpillFile f;
  ASSERT_TRUE(f.open(path, 1u << 20));
  EXPECT_TRUE(f.ok());

  const auto a = payload(5, 32);
  const std::size_t off_a = f.append(a.data(), a.size());
  ASSERT_NE(off_a, std::numeric_limits<std::size_t>::max());
  const auto b = payload(6, 5);
  const std::size_t off_b = f.append(b.data(), b.size());
  ASSERT_NE(off_b, std::numeric_limits<std::size_t>::max());

  auto ra = f.read(off_a, a.size());
  ASSERT_EQ(ra.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(ra[i], a[i]);
  auto rb = f.read(off_b, b.size());
  ASSERT_EQ(rb.size(), b.size());
  EXPECT_EQ(rb[0], b[0]);

  // Reads past the written high-water mark or inside the header are refused.
  EXPECT_TRUE(f.read(off_b, b.size() + 1).empty());
  EXPECT_TRUE(f.read(0, 1).empty());
  EXPECT_TRUE(f.read(f.written_bytes(), 1).empty());
  std::remove(path.c_str());
}

TEST(SpillFile, OpenDiscardsPreexistingContentWholesale) {
  const std::string path = temp_path("spill_trunc");
  // A stale file truncated mid-record (e.g. a crashed run or a filesystem
  // hiccup) must be thrown away, not resumed: the spill tier is a cache.
  {
    std::FILE* raw = std::fopen(path.c_str(), "wb");
    ASSERT_NE(raw, nullptr);
    std::fputs("QSPL1 but then garbage cut off mid-reco", raw);
    std::fclose(raw);
  }
  SpillFile f;
  ASSERT_TRUE(f.open(path, 1u << 20));
  EXPECT_EQ(f.written_bytes(), 16u);  // fresh header only
  // Nothing of the stale content is readable.
  EXPECT_TRUE(f.read(16, 1).empty());
  std::remove(path.c_str());
}

TEST(ZonePool, EvictionSpillsColdChunksAndReadsThrough) {
  const std::string path = temp_path("pool_evict");
  PoolConfig cfg;
  cfg.spill_path = path;
  cfg.resident_limit = 1u << 16;  // well below a few chunks
  ZonePool pool(cfg);

  std::vector<Ref> refs;
  constexpr int kPayloads = 64;
  constexpr std::size_t kLen = 4096;  // 16 KiB each: forces several chunks
  for (int i = 0; i < kPayloads; ++i) refs.push_back(pool.intern(payload(i, kLen)));

  const auto m = pool.metrics();
  EXPECT_GT(m.spilled_records, 0u);
  EXPECT_GT(m.spilled_bytes, 0u);
  EXPECT_LE(m.resident_bytes, (1u << 16) + kLen * sizeof(std::int32_t) * 2);
  EXPECT_TRUE(pool.spill_ok());

  // Every payload — spilled or resident — reads back exactly.
  for (int i = 0; i < kPayloads; ++i) {
    const auto d = pool.data(refs[static_cast<std::size_t>(i)]);
    const auto expect = payload(i, kLen);
    ASSERT_EQ(d.size(), expect.size()) << "payload " << i;
    EXPECT_EQ(d[0], expect[0]);
    EXPECT_EQ(d[kLen - 1], expect[kLen - 1]);
  }
  // Interning an already-spilled payload is still a hit (dedup reads
  // through the mapping).
  EXPECT_EQ(pool.intern(payload(0, kLen)), refs[0]);
  std::remove(path.c_str());
}

TEST(ZonePool, RefsAreIndependentOfSpillSchedule) {
  // Determinism: the Ref sequence is a pure function of the intern-call
  // sequence — never of the memory ceiling or the spill tier.
  const std::string path = temp_path("pool_det");
  PoolConfig spilling;
  spilling.spill_path = path;
  spilling.resident_limit = 1u << 14;
  ZonePool a;           // unlimited, no spill
  ZonePool b(spilling); // thrashing
  for (int i = 0; i < 200; ++i) {
    const auto p = payload(i % 37, 512 + static_cast<std::size_t>(i % 5));
    EXPECT_EQ(a.intern(p), b.intern(p)) << "intern " << i;
  }
  EXPECT_EQ(a.metrics().records, b.metrics().records);
  EXPECT_EQ(a.metrics().hits, b.metrics().hits);
  EXPECT_GT(b.metrics().spilled_records, 0u);
  std::remove(path.c_str());
}

TEST(ZonePool, SpillWriteFaultDegradesToResidentStorage) {
  const std::string path = temp_path("pool_fault");
  PoolConfig cfg;
  cfg.spill_path = path;
  cfg.resident_limit = 1;  // evict eagerly
  ZonePool pool(cfg);

  common::FaultInjector::instance().arm("store.spill.write",
                                        common::FaultKind::kException, 1);
  std::vector<Ref> refs;
  for (int i = 0; i < 32; ++i) {
    refs.push_back(pool.intern(payload(i, 4096)));
  }
  common::FaultInjector::instance().disarm();

  // The first eviction write failed: the spill tier is poisoned, payloads
  // stay resident, and the failure is counted — never an exception or a
  // wrong read.
  EXPECT_FALSE(pool.spill_ok());
  EXPECT_GE(pool.metrics().spill_failures, 1u);
  EXPECT_EQ(pool.metrics().spilled_records, 0u);
  for (int i = 0; i < 32; ++i) {
    const auto d = pool.data(refs[static_cast<std::size_t>(i)]);
    ASSERT_EQ(d.size(), 4096u);
    EXPECT_EQ(d[0], payload(i, 1)[0]);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Pooled StateStore vs a reference unpooled store: bit-identical interning.
// ---------------------------------------------------------------------------

/// The pre-pooling SymState policy: forwards to the unpooled half of
/// StateTraits<SymState> but omits `Pooled`, so the store keeps whole
/// states. The pooled store must be indistinguishable from this.
struct UnpooledSymTraits {
  static constexpr bool kSupportsInclusion = true;
  using Real = core::StateTraits<ta::SymState>;
  static std::size_t hash(const ta::SymState& s) { return Real::hash(s); }
  static bool equal(const ta::SymState& a, const ta::SymState& b) {
    return Real::equal(a, b);
  }
  static std::size_t partition_hash(const ta::SymState& s) {
    return Real::partition_hash(s);
  }
  static bool same_partition(const ta::SymState& a, const ta::SymState& b) {
    return Real::same_partition(a, b);
  }
  static core::Subsumes compare(const ta::SymState& stored,
                                const ta::SymState& incoming) {
    return Real::compare(stored, incoming);
  }
};

ta::SymState make_state(std::uint32_t* rng) {
  auto next = [rng] { return *rng = *rng * 1664525u + 1013904223u; };
  ta::SymState s;
  s.locs = {static_cast<int>(next() % 6), static_cast<int>(next() % 3)};
  s.vars = {static_cast<std::int32_t>(next() % 4)};
  s.zone = dbm::Dbm::universal(3);
  EXPECT_TRUE(s.zone.constrain_le(1, 0, static_cast<int>(next() % 12) + 1));
  if (next() % 2 == 0) {
    EXPECT_TRUE(s.zone.constrain_le(2, 0, static_cast<int>(next() % 12) + 1));
  }
  return s;
}

TEST(PooledStateStore, BitIdenticalToUnpooledReference) {
  for (const bool inclusion : {false, true}) {
    core::StateStore<ta::SymState, UnpooledSymTraits> reference(
        {.inclusion = inclusion});
    core::StateStore<ta::SymState> pooled({.inclusion = inclusion});
    static_assert(core::StateStore<ta::SymState>::kPooled);

    std::uint32_t rng = 42;
    for (int i = 0; i < 800; ++i) {
      const ta::SymState s = make_state(&rng);
      const auto r = reference.intern(s);
      const auto p = pooled.intern(s);
      EXPECT_EQ(p.id, r.id) << "intern " << i;
      EXPECT_EQ(p.inserted, r.inserted) << "intern " << i;
    }
    ASSERT_EQ(pooled.size(), reference.size());
    EXPECT_EQ(pooled.covered_journal(), reference.covered_journal());
    const auto mr = reference.metrics();
    const auto mp = pooled.metrics();
    EXPECT_EQ(mp.covered, mr.covered);
    EXPECT_EQ(mp.slots, mr.slots);
    EXPECT_EQ(mp.occupied, mr.occupied);
    EXPECT_EQ(mp.max_chain, mr.max_chain);
    // Materialized states reproduce the stored originals exactly.
    for (std::size_t i = 0; i < pooled.size(); ++i) {
      const auto id = static_cast<std::int32_t>(i);
      const ta::SymState s = pooled.state(id);
      EXPECT_TRUE(UnpooledSymTraits::equal(s, reference.state(id)))
          << "state " << i;
      EXPECT_EQ(pooled.covered(id), reference.covered(id));
    }
    // The whole point: identical payloads are interned once.
    const auto pm = pooled.zone_pool().metrics();
    EXPECT_GT(pm.hits, 0u);
    EXPECT_LT(pm.records, 3 * pooled.size());
  }
}

/// Like make_state but with a dim-8 zone and wide constraint ranges: mostly
/// distinct payloads, so a few hundred states overflow a tight resident
/// ceiling and force eviction traffic through the spill tier.
ta::SymState make_wide_state(std::uint32_t* rng) {
  auto next = [rng] { return *rng = *rng * 1664525u + 1013904223u; };
  ta::SymState s;
  s.locs = {static_cast<int>(next() % 6), static_cast<int>(next() % 3)};
  s.vars = {static_cast<std::int32_t>(next() % 4)};
  s.zone = dbm::Dbm::universal(8);
  for (int c = 1; c < 8; ++c) {
    EXPECT_TRUE(
        s.zone.constrain_le(c, 0, static_cast<int>(next() % 4096) + 1));
  }
  return s;
}

TEST(PooledStateStore, SpillingStoreStaysBitIdentical) {
  const std::string path = temp_path("store_spill");
  PoolConfig cfg;
  cfg.spill_path = path;
  cfg.resident_limit = 1u << 12;  // 4 KiB: forces heavy eviction
  core::StateStore<ta::SymState, UnpooledSymTraits> reference(
      {.inclusion = true});
  core::StateStore<ta::SymState> pooled({.inclusion = true, .pool = cfg});

  std::uint32_t rng = 7;
  for (int i = 0; i < 800; ++i) {
    const ta::SymState s = make_wide_state(&rng);
    const auto r = reference.intern(s);
    const auto p = pooled.intern(s);
    ASSERT_EQ(p.id, r.id) << "intern " << i;
    ASSERT_EQ(p.inserted, r.inserted) << "intern " << i;
  }
  EXPECT_GT(pooled.zone_pool().metrics().spilled_records, 0u);
  EXPECT_EQ(pooled.covered_journal(), reference.covered_journal());
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    const auto id = static_cast<std::int32_t>(i);
    EXPECT_TRUE(UnpooledSymTraits::equal(pooled.state(id), reference.state(id)))
        << "state " << i;
  }
  std::remove(path.c_str());
}

TEST(PooledStateStore, DigitalAndBipStatesRoundTrip) {
  core::StateStore<ta::DigitalState> dstore;
  ta::DigitalState d;
  d.locs = {1, 2, 3};
  d.vars = {7};
  d.clocks = {0, 4, 9};
  ASSERT_TRUE(dstore.intern(d).inserted);
  EXPECT_FALSE(dstore.intern(d).inserted);  // pooled equal() dedups
  EXPECT_EQ(dstore.state(0), d);

  core::StateStore<bip::BipState> bstore;
  bip::BipState b;
  b.places = {0, 2};
  b.vars = {{1, 2, 3}, {}, {5}};
  ASSERT_TRUE(bstore.intern(b).inserted);
  EXPECT_FALSE(bstore.intern(b).inserted);
  EXPECT_EQ(bstore.state(0), b);
  // A state differing only in valuation grouping must stay distinct.
  bip::BipState b2;
  b2.places = {0, 2};
  b2.vars = {{1, 2}, {3}, {5}};
  EXPECT_TRUE(bstore.intern(b2).inserted);
  EXPECT_EQ(bstore.state(1), b2);
}

TEST(PooledStateStore, PoolMetricsSurfaceInStoreMetrics) {
  core::StateStore<ta::SymState> store({.inclusion = true});
  std::uint32_t rng = 3;
  for (int i = 0; i < 100; ++i) store.intern(make_state(&rng));
  const auto m = store.metrics();
  EXPECT_GT(m.pool.lookups, 0u);
  EXPECT_GT(m.pool.records, 0u);
  EXPECT_GT(m.pool.resident_bytes, 0u);
  EXPECT_EQ(m.pool.spilled_records, 0u);  // no spill configured
}

}  // namespace
