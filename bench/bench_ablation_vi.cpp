// Ablation A2 — probabilistic engine design choices: value-iteration
// convergence threshold, qualitative precomputation on/off, and the digital
// clock granularity (scaling TD and the timeout together), all on the BRP.
#include <cstdio>

#include "bench_util.h"
#include "models/brp.h"
#include "pta/digital_clocks.h"
#include "pta/properties.h"

using namespace quanta;

int main() {
  bench::section("A2a: value-iteration epsilon sweep (BRP P1)");
  auto brp = models::make_brp();
  auto dm = pta::build_digital_mdp(brp.system);
  auto goal = [&brp](const ta::DigitalState& s) { return brp.no_success(s.locs); };
  double reference = brp.analytic_p1();

  bench::Table eps_table({"epsilon", "P1", "abs err vs analytic", "iterations"});
  for (double eps : {1e-3, 1e-6, 1e-9, 1e-12}) {
    mdp::ViOptions opts;
    opts.epsilon = eps;
    auto r = pta::pmax_reach(dm, goal, opts);
    eps_table.row({bench::fmt(eps, "%.0e"), bench::fmt(r.value, "%.6e"),
                   bench::fmt(std::abs(r.value - reference), "%.1e"),
                   std::to_string(r.iterations)});
  }
  eps_table.print();

  bench::section("A2a': interval iteration — certified brackets for P1");
  {
    bench::Table ii_table({"epsilon", "lower", "upper", "certified width",
                           "iterations"});
    for (double eps : {1e-3, 1e-6, 1e-9}) {
      auto goal_set = dm.states_where(goal);
      auto ii = mdp::interval_iteration(dm.mdp, goal_set, mdp::Objective::kMax,
                                        eps);
      ii_table.row({bench::fmt(eps, "%.0e"),
                    bench::fmt(ii.lower[static_cast<std::size_t>(dm.mdp.initial())], "%.6e"),
                    bench::fmt(ii.upper[static_cast<std::size_t>(dm.mdp.initial())], "%.6e"),
                    bench::fmt(ii.width_at_initial(dm.mdp), "%.1e"),
                    std::to_string(ii.iterations)});
    }
    ii_table.print();
    std::printf("\n  expected: unlike plain VI at loose epsilon (above), the\n"
                "  bracket always *contains* the true value — the width is an\n"
                "  honest error certificate.\n");
  }

  bench::section("A2b: qualitative precomputation on/off (BRP P1, PA)");
  {
    bench::Table pre({"precomputation", "P1", "PA", "P1 iterations"});
    for (bool use_pre : {true, false}) {
      mdp::ViOptions opts;
      opts.use_precomputation = use_pre;
      auto p1 = pta::pmax_reach(dm, goal, opts);
      auto pa = pta::pmax_reach(dm, [&brp](const ta::DigitalState& s) {
                  return brp.is_fail_nok(s.locs) && brp.complete_file(s.vars);
                }, opts);
      pre.row({use_pre ? "on" : "off", bench::fmt(p1.value, "%.6e"),
               bench::fmt(pa.value, "%.3g"), std::to_string(p1.iterations)});
    }
    pre.print();
    std::printf("\n  expected: identical probabilities; with precomputation PA\n"
                "  is *exactly* 0 (graph argument) instead of numerically 0.\n");
  }

  bench::section("A2c: digital-clock granularity (scale TD, TO together)");
  {
    bench::Table gran({"TD", "TO", "MDP states", "P1", "Emax", "build+query [s]"});
    for (int td : {1, 2, 3}) {
      models::BrpParams params;
      params.td = td;  // timeout defaults to 2*TD+1
      auto b = models::make_brp(params);
      bench::Stopwatch sw;
      auto m = pta::build_digital_mdp(b.system);
      auto p1 = pta::pmax_reach(m, [&b](const ta::DigitalState& s) {
                  return b.no_success(s.locs);
                }).value;
      auto emax = pta::emax_time(m, [&b](const ta::DigitalState& s) {
                    return b.is_done(s.locs);
                  }).value;
      gran.row({std::to_string(td), std::to_string(b.params.effective_timeout()),
                std::to_string(m.mdp.num_states()), bench::fmt(p1, "%.4e"),
                bench::fmt(emax, "%.4g"), bench::fmt(sw.seconds(), "%.2f")});
    }
    gran.print();
    std::printf("\n  expected: P1 is granularity-independent (it depends only on\n"
                "  loss probabilities); Emax and the state count scale with TD.\n");
  }
  return 0;
}
