// ES — storage-substrate experiment: bytes/state, pool sharing and spill
// traffic of the interned zone store (src/store) on the train-gate family.
//
// Two modes:
//   bench_store_memory [--max-n N]
//       Resident sweep N=4..max-n (default 6): per-N table of states,
//       bytes/state pooled vs. the unpooled baseline representation
//       (per-state heap vectors, the layout the store used before payload
//       interning), pool hit rate and distinct-payload share.
//   bench_store_memory --n N --mem BYTES [--spill PATH]
//       Governed single run for CI: verify train-gate mutual exclusion for
//       one N under a hard common::Budget memory ceiling, with the pool's
//       resident limit at half the ceiling and the spill tier on. Exits
//       nonzero unless the verdict is definite (kUnknown-free) and correct.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "core/observer.h"
#include "mc/reachability.h"
#include "models/train_gate.h"
#include "store/pool.h"
#include "ta/traits.h"

using namespace quanta;

namespace {

mc::StatePredicate mutual_exclusion(const models::TrainGate& tg) {
  std::vector<int> cross;
  for (int t : tg.trains) {
    cross.push_back(tg.system.process(t).location_index("Cross"));
  }
  auto trains = tg.trains;
  return [trains, cross](const ta::SymState& s) {
    int n = 0;
    for (std::size_t i = 0; i < trains.size(); ++i) {
      if (s.locs[static_cast<std::size_t>(trains[i])] == cross[i]) ++n;
    }
    return n <= 1;
  };
}

/// Bytes/state of the pre-interning representation: every state owns its
/// location/variable vectors and zone matrix on the heap (logical_words
/// counts that payload as if nothing were shared), plus the same per-state
/// store bookkeeping (key hash, chain link, covered flag, slot share).
double unpooled_bytes_per_state(const core::StoreMetrics& m) {
  if (m.stored == 0) return 0.0;
  const std::size_t payload = m.pool.logical_words * sizeof(std::int32_t);
  const std::size_t per_state = sizeof(ta::SymState) + sizeof(std::size_t) +
                                sizeof(std::int32_t) + sizeof(std::uint8_t) +
                                sizeof(std::uint32_t);
  return static_cast<double>(payload + m.stored * per_state) /
         static_cast<double>(m.stored);
}

int run_sweep(int max_n) {
  bench::section("ES: interned zone storage on the train-gate (N=4.." +
                 std::to_string(max_n) + ")");
  bench::Table table({"N", "states", "B/state pooled", "B/state unpooled",
                      "reduction", "hit rate", "distinct", "spilled MiB",
                      "time [s]"});
  for (int n = 4; n <= max_n; ++n) {
    auto tg = models::make_train_gate(n);
    core::StatsObserver obs;
    mc::ReachOptions opts;
    opts.observer = &obs;
    bench::Stopwatch sw;
    const auto r = mc::check_invariant(tg.system, mutual_exclusion(tg), opts);
    const double secs = sw.seconds();
    if (!r.holds()) {
      std::printf("  N=%d: UNEXPECTED verdict (not holds)\n", n);
      return 1;
    }
    const auto& m = obs.store_metrics();
    const double pooled =
        static_cast<double>(m.memory_bytes) / static_cast<double>(m.stored);
    const double unpooled = unpooled_bytes_per_state(m);
    table.row({std::to_string(n), std::to_string(m.stored),
               bench::fmt(pooled, "%.1f"), bench::fmt(unpooled, "%.1f"),
               bench::fmt(unpooled / pooled, "%.2fx"),
               bench::fmt(100.0 * m.pool.hit_rate(), "%.1f%%"),
               std::to_string(m.pool.records),
               bench::fmt(static_cast<double>(m.pool.spilled_bytes) /
                              (1024.0 * 1024.0),
                          "%.1f"),
               bench::fmt(secs, "%.2f")});
  }
  table.print();
  std::printf(
      "\n  unpooled = per-state heap vectors + zone matrix (the layout before"
      "\n  payload interning); pooled = StateStore::memory_bytes() including"
      "\n  pool bookkeeping. Spilled bytes live in file-backed pages outside"
      "\n  the resident figure.\n");
  return 0;
}

int run_governed(int n, std::size_t mem_bytes, const std::string& spill) {
  bench::section("ES-governed: train-gate N=" + std::to_string(n) +
                 " under a " + std::to_string(mem_bytes >> 20) +
                 " MiB budget" + (spill.empty() ? "" : ", spill on"));
  // The pool evicts at a sixteenth of the ceiling: row interning keeps the
  // resident payload small relative to the search's own bookkeeping (waiting
  // queue, hash table, covered journal), so a tighter pool ceiling is what
  // actually pushes chunks through the spill tier while the budget the
  // watchdog enforces still has ample headroom.
  if (!spill.empty()) {
    ::setenv("QUANTA_STORE_SPILL", spill.c_str(), 1);
    ::setenv("QUANTA_STORE_MEM", std::to_string(mem_bytes / 16).c_str(), 1);
  }
  auto tg = models::make_train_gate(n);
  core::StatsObserver obs;
  mc::ReachOptions opts;
  opts.observer = &obs;
  opts.limits.budget = common::Budget{}.with_memory_limit(mem_bytes);
  bench::Stopwatch sw;
  const auto r = mc::check_invariant(tg.system, mutual_exclusion(tg), opts);
  const double secs = sw.seconds();
  const auto& m = obs.store_metrics();
  std::printf("  verdict: %s  states: %zu  time: %.1fs\n",
              r.verdict == common::Verdict::kHolds      ? "holds"
              : r.verdict == common::Verdict::kViolated ? "VIOLATED"
                                                        : "UNKNOWN",
              m.stored, secs);
  std::printf("  %s\n", obs.summary().c_str());
  if (r.verdict == common::Verdict::kUnknown) {
    std::printf("  FAIL: governed run did not reach a definite verdict\n");
    return 1;
  }
  if (!r.holds()) {
    std::printf("  FAIL: mutual exclusion must hold on the train-gate\n");
    return 1;
  }
  std::printf("  PASS: definite verdict under the memory budget\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int max_n = 6;
  int governed_n = 0;
  std::size_t mem_bytes = 0;
  std::string spill;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "--max-n") {
      max_n = std::atoi(next());
    } else if (a == "--n") {
      governed_n = std::atoi(next());
    } else if (a == "--mem") {
      if (!store::parse_memory_bytes(next(), &mem_bytes)) {
        std::fprintf(stderr, "bad --mem value\n");
        return 2;
      }
    } else if (a == "--spill") {
      spill = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--max-n N] | --n N --mem BYTES[K|M|G] "
                   "[--spill PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (governed_n > 0) {
    if (mem_bytes == 0) {
      std::fprintf(stderr, "--n requires --mem\n");
      return 2;
    }
    return run_governed(governed_n, mem_bytes, spill);
  }
  return run_sweep(max_n);
}
