// Experiment E1 — §II.A.a: verification of the train-gate model. For each
// instance size, check the paper's three property groups (safety, liveness
// per train, deadlock freedom) and report state counts and times.
#include <cstdio>

#include "bench_util.h"
#include "mc/query.h"
#include "models/train_gate.h"

using namespace quanta;

namespace {

mc::StatePredicate mutual_exclusion(const models::TrainGate& tg) {
  std::vector<int> cross;
  for (int t : tg.trains) {
    cross.push_back(tg.system.process(t).location_index("Cross"));
  }
  auto trains = tg.trains;
  return [trains, cross](const ta::SymState& s) {
    int n = 0;
    for (std::size_t i = 0; i < trains.size(); ++i) {
      if (s.locs[static_cast<std::size_t>(trains[i])] == cross[i]) ++n;
    }
    return n <= 1;
  };
}

}  // namespace

int main() {
  bench::section("E1: UPPAAL-style verification of the train-gate (Fig. 1)");

  bench::Table table({"N", "safety A[]", "liveness -->", "no deadlock",
                      "states", "time [s]"});
  for (int n = 1; n <= 6; ++n) {
    auto tg = models::make_train_gate(n);
    bench::Stopwatch sw;

    auto safety = mc::check_invariant(tg.system, mutual_exclusion(tg));

    // Liveness explores the full zone graph without subsumption and deadlock
    // checking subtracts zone federations per state; both are kept to the
    // sizes where they finish in seconds (the verdicts do not change).
    std::string liveness = "-";
    if (n <= 4) {
      bool holds = true;
      for (int i = 0; i < n && holds; ++i) {
        std::string name = "Train(" + std::to_string(i) + ")";
        auto r = mc::check_leads_to(tg.system,
                                    mc::loc_pred(tg.system, name, "Appr"),
                                    mc::loc_pred(tg.system, name, "Cross"));
        holds = r.holds();
      }
      liveness = holds ? "true" : "FALSE";
    }

    std::string deadlock = "-";
    if (n <= 5) {
      deadlock = mc::check_deadlock_freedom(tg.system).deadlock_free()
                     ? "true"
                     : "FALSE";
    }

    table.row({std::to_string(n), safety.holds() ? "true" : "FALSE", liveness,
               deadlock, std::to_string(safety.stats.states_stored),
               bench::fmt(sw.seconds(), "%.2f")});
  }
  table.print();
  std::printf("\n  expected (paper): all three properties hold for all N.\n");
  return 0;
}
