// Ablation A1 — engine design choices of the UPPAAL-style checker: zone
// extrapolation (termination + smaller graphs) and passed-list inclusion
// subsumption, measured on train-gate safety checking.
#include <cstdio>

#include "bench_util.h"
#include "mc/reachability.h"
#include "models/train_gate.h"

using namespace quanta;

namespace {

mc::StatePredicate mutex_pred(const models::TrainGate& tg) {
  std::vector<int> cross;
  for (int t : tg.trains) {
    cross.push_back(tg.system.process(t).location_index("Cross"));
  }
  auto trains = tg.trains;
  return [trains, cross](const ta::SymState& s) {
    int n = 0;
    for (std::size_t i = 0; i < trains.size(); ++i) {
      if (s.locs[static_cast<std::size_t>(trains[i])] == cross[i]) ++n;
    }
    return n <= 1;
  };
}

}  // namespace

int main() {
  bench::section("A1: zone-engine ablations (train-gate safety)");

  bench::Table table({"N", "extrapolation", "subsumption", "verdict", "states",
                      "time [s]"});
  for (int n = 3; n <= 5; ++n) {
    auto tg = models::make_train_gate(n);
    auto pred = mutex_pred(tg);
    for (bool extrapolate : {true, false}) {
      for (bool subsumption : {true, false}) {
        mc::ReachOptions opts;
        opts.extrapolate = extrapolate;
        opts.inclusion_subsumption = subsumption;
        // Without extrapolation the zone graph of this model is still finite
        // (all clocks are bounded by invariants along cycles), but larger;
        // cap the exploration defensively.
        opts.limits.max_states = 2'000'000;
        bench::Stopwatch sw;
        auto r = mc::check_invariant(tg.system, pred, opts);
        table.row({std::to_string(n), extrapolate ? "on" : "off",
                   subsumption ? "on" : "off",
                   r.stats.truncated ? "truncated" : (r.holds() ? "true" : "FALSE"),
                   std::to_string(r.stats.states_stored),
                   bench::fmt(sw.seconds(), "%.2f")});
      }
    }
  }
  table.print();
  std::printf("\n  expected: both optimisations shrink the stored state count;\n"
              "  verdicts never change.\n");
  return 0;
}
