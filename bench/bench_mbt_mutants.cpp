// Experiment E7 — §V: model-based testing of the software-bus protocol.
// Reports the ioco verdicts for the conforming implementation and three
// mutants, mutant kill rates as a function of test-suite size (soundness +
// growing exhaustiveness), and online timed testing (rtioco/TRON) verdicts.
#include <cstdio>

#include "bench_util.h"
#include "mbt/execute.h"
#include "mbt/ioco.h"
#include "mbt/rtioco.h"
#include "models/mbt_models.h"

using namespace quanta;
using namespace quanta::mbt;

int main() {
  bench::section("E7a: ioco verdicts (offline conformance checking)");
  Lts spec = models::make_swb_spec();
  struct Impl {
    const char* name;
    Lts lts;
  };
  std::vector<Impl> impls;
  impls.push_back({"conforming impl", models::make_swb_impl()});
  impls.push_back({"mutant: err instead of notify",
                   models::make_swb_mutant_wrong_output()});
  impls.push_back({"mutant: notify dropped",
                   models::make_swb_mutant_missing_notify()});
  impls.push_back({"mutant: unsolicited notify",
                   models::make_swb_mutant_unsolicited_notify()});

  bench::Table ioco_table({"implementation", "ioco?", "witness"});
  for (const auto& impl : impls) {
    auto r = check_ioco(impl.lts, spec);
    std::string witness = "-";
    if (!r.conforms) {
      witness = "after <";
      for (std::size_t i = 0; i < r.trace.size(); ++i) {
        if (i) witness += ",";
        witness += r.trace[i];
      }
      witness += "> output '" + r.offending + "' not allowed";
    }
    ioco_table.row({impl.name, r.conforms ? "yes" : "no", witness});
  }
  ioco_table.print();

  bench::section("E7b: random test campaigns (kill rate vs suite size)");
  bench::Table camp({"implementation", "10 tests", "50 tests", "250 tests"});
  for (const auto& impl : impls) {
    std::vector<std::string> row{impl.name};
    for (std::size_t n : {10u, 50u, 250u}) {
      LtsIut iut(impl.lts, 0xBEEF + n);
      auto r = run_campaign(spec, iut, n, 0xCAFE + n);
      row.push_back(std::to_string(r.failures) + "/" + std::to_string(r.tests) +
                    " failed");
    }
    camp.row(std::move(row));
  }
  camp.print();
  std::printf("\n  expected: 0 failures for the conforming implementation\n"
              "  (soundness); all mutants killed as the suite grows.\n");

  bench::section("E7c: rtioco online timed testing (UPPAAL-TRON style)");
  auto timed_spec = models::make_timed_light_spec();
  struct TimedImpl {
    const char* name;
    mbt::TimedSpec model;
  };
  std::vector<TimedImpl> timed{
      {"conforming light", models::make_timed_light_spec()},
      {"mutant: responds too late", models::make_timed_light_late_mutant()},
      {"mutant: wrong action", models::make_timed_light_wrong_action_mutant()},
  };
  bench::Table online({"implementation", "sessions", "pass", "fail (output)",
                       "fail (deadline)"});
  for (const auto& t : timed) {
    int pass = 0, fail_out = 0, fail_dl = 0;
    const int kSessions = 40;
    for (int s = 0; s < kSessions; ++s) {
      TimedSystemIut iut(t.model, static_cast<std::uint64_t>(s));
      auto r = rtioco_online_test(timed_spec, iut,
                                  static_cast<std::uint64_t>(1000 + s));
      switch (r.verdict) {
        case OnlineVerdict::kPass:
          ++pass;
          break;
        case OnlineVerdict::kFailDeadline:
          ++fail_dl;
          break;
        default:
          ++fail_out;
          break;
      }
    }
    online.row({t.name, std::to_string(kSessions), std::to_string(pass),
                std::to_string(fail_out), std::to_string(fail_dl)});
  }
  online.print();
  std::printf("\n  expected: the conforming light always passes; mutants are\n"
              "  rejected by output or deadline violations.\n");
  return 0;
}
