// Experiment E2 — §II.A.b / Fig. 2-3: controller synthesis for the timed
// game version of the trains. Solves the safety game (mutual exclusion on
// the bridge) and a reachability game, verifies the synthesized strategies
// in closed loop, and shows the controllability ablation (no controllable
// edges -> no winning strategy).
#include <cstdio>

#include "bench_util.h"
#include "game/tiga.h"
#include "models/train_game.h"

using namespace quanta;

int main() {
  bench::section("E2: UPPAAL-TIGA synthesis on the train game (Fig. 2-3)");

  bench::Table table({"instance", "objective", "winning?", "game states",
                      "winning states", "strategy verified", "time [s]"});

  for (int n = 1; n <= 2; ++n) {
    // Safety game: never two trains on the bridge.
    {
      auto tg = models::make_train_game({.num_trains = n});
      bench::Stopwatch sw;
      game::TimedGame g(tg.system);
      auto safe = [&tg](const ta::DigitalState& s) { return tg.mutex_ok(s.locs); };
      auto result = g.solve_safety(safe);
      bool verified =
          result.controller_wins() &&
          game::verify_safety_strategy(tg.system, result.strategy, safe);
      table.row({std::to_string(n) + " train(s)", "safety (mutex)",
                 result.controller_wins() ? "yes" : "no",
                 std::to_string(result.states_explored),
                 std::to_string(result.winning_states),
                 verified ? "yes" : "NO", bench::fmt(sw.seconds(), "%.2f")});
    }
    // Reachability game: train 0 (already approaching) eventually crosses.
    {
      auto tg = models::make_train_game(
          {.num_trains = n, .first_train_approaching = true});
      bench::Stopwatch sw;
      game::TimedGame g(tg.system);
      auto goal = [&tg](const ta::DigitalState& s) {
        return s.locs[static_cast<std::size_t>(tg.trains[0])] == tg.l_cross;
      };
      auto result = g.solve_reachability(goal);
      bool verified =
          result.controller_wins() &&
          game::verify_reach_strategy(tg.system, result.strategy, goal);
      table.row({std::to_string(n) + " train(s)", "reach (T0 crosses)",
                 result.controller_wins() ? "yes" : "no",
                 std::to_string(result.states_explored),
                 std::to_string(result.winning_states),
                 verified ? "yes" : "NO", bench::fmt(sw.seconds(), "%.2f")});
    }
  }

  // Ablations: objectives that must NOT be winnable.
  {
    auto tg = models::make_train_game({.num_trains = 1});
    game::TimedGame g(tg.system);
    auto result = g.solve_reachability([&tg](const ta::DigitalState& s) {
      return s.locs[static_cast<std::size_t>(tg.trains[0])] == tg.l_cross;
    });
    table.row({"1 train, from Safe", "reach (T0 crosses)",
               result.controller_wins() ? "YES (unexpected)" : "no (env may idle)",
               std::to_string(result.states_explored),
               std::to_string(result.winning_states), "-", "-"});
  }
  {
    auto tg = models::make_train_game({.num_trains = 2});
    for (int t : tg.trains) {
      for (auto& e : tg.system.process_mut(t).edges) e.controllable = false;
    }
    for (auto& e : tg.system.process_mut(tg.controller).edges) {
      e.controllable = false;
    }
    game::TimedGame g(tg.system);
    auto result = g.solve_safety(
        [&tg](const ta::DigitalState& s) { return tg.mutex_ok(s.locs); });
    table.row({"2 trains, no control", "safety (mutex)",
               result.controller_wins() ? "YES (unexpected)" : "no",
               std::to_string(result.states_explored),
               std::to_string(result.winning_states), "-", "-"});
  }
  table.print();
  std::printf(
      "\n  expected: both objectives winnable with control (strategy verified\n"
      "  in closed loop); unwinnable without control or from an idle train.\n");
  return 0;
}
