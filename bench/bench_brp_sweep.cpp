// Experiment E5 — the Fig. 5 lossy-channel component, swept: P1 (probability
// the sender cannot report success) as a function of the per-message loss
// probability and the retransmission bound, model-checked on the digital
// MDP and cross-checked against the closed form.
#include <cstdio>

#include "bench_util.h"
#include "models/brp.h"
#include "pta/digital_clocks.h"
#include "pta/properties.h"

using namespace quanta;

int main() {
  bench::section("E5: lossy-channel sweep — P1 vs loss rate and MAX");

  bench::Table table({"msg loss", "ack loss", "MAX", "P1 (model)",
                      "P1 (analytic)", "rel. err", "MDP states"});
  for (double loss : {0.01, 0.02, 0.05, 0.10}) {
    for (int max_r : {1, 2, 3}) {
      models::BrpParams params;
      params.frames = 16;
      params.max_retrans = max_r;
      params.msg_loss = loss;
      params.ack_loss = loss / 2.0;
      auto brp = models::make_brp(params);
      auto dm = pta::build_digital_mdp(brp.system);
      double p1 = pta::pmax_reach(dm, [&brp](const ta::DigitalState& s) {
                    return brp.no_success(s.locs);
                  }).value;
      double ref = brp.analytic_p1();
      table.row({bench::fmt(loss, "%.2f"), bench::fmt(loss / 2.0, "%.3f"),
                 std::to_string(max_r), bench::fmt(p1, "%.4e"),
                 bench::fmt(ref, "%.4e"),
                 bench::fmt(std::abs(p1 - ref) / ref, "%.1e"),
                 std::to_string(dm.mdp.num_states())});
    }
  }
  table.print();
  std::printf("\n  expected: model and closed form agree to numerical\n"
              "  precision; P1 falls steeply with MAX and rises with loss.\n");
  return 0;
}
