// Parallel SMC scaling sweep (src/exec): throughput of the train-gate
// probability estimate and the BRP SPRT across worker counts, checking that
// the estimates stay bit-identical while the wall clock drops. Emits the
// usual table plus one machine-readable JSON line per configuration.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "exec/executor.h"
#include "models/brp.h"
#include "models/train_gate.h"
#include "smc/estimate.h"
#include "smc/sprt.h"

using namespace quanta;
using bench::fmt;

namespace {

const char* verdict_name(smc::SprtVerdict v) {
  switch (v) {
    case smc::SprtVerdict::kAccepted: return "accept";
    case smc::SprtVerdict::kRejected: return "reject";
    case smc::SprtVerdict::kInconclusive: return "inconclusive";
  }
  return "?";
}

}  // namespace

int main() {
  const unsigned hw = exec::default_worker_count();
  std::printf("  hardware workers available: %u (QUANTA_JOBS overrides)\n", hw);

  // ---- train-gate probability estimate -----------------------------------
  bench::section("parallel SMC: train-gate Pr[<=30](<> Train(0).Cross)");
  auto tg = models::make_train_gate(3);
  int p = tg.trains[0];
  int cross = tg.system.process(p).location_index("Cross");
  smc::TimeBoundedReach prop;
  prop.time_bound = 30.0;
  prop.goal = [p, cross](const ta::ConcreteState& s) {
    return s.locs[static_cast<std::size_t>(p)] == cross;
  };

  const std::size_t kRuns = 20000;
  const std::uint64_t kSeed = 20120312;
  bench::Table est_table({"workers", "p_hat", "hits", "time [s]", "runs/s",
                          "speedup", "parallelism"});
  double t1 = 0.0;
  smc::Estimate ref;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    exec::Executor ex(workers);
    exec::RunTelemetry tel;
    bench::Stopwatch sw;
    auto est = smc::estimate_probability_runs(tg.system, prop, kRuns, 0.05,
                                              kSeed, ex, &tel);
    double t = sw.seconds();
    if (workers == 1) {
      t1 = t;
      ref = est;
    }
    const bool identical = est.hits == ref.hits && est.p_hat == ref.p_hat &&
                           est.ci_low == ref.ci_low &&
                           est.ci_high == ref.ci_high;
    est_table.row({std::to_string(workers),
                   fmt(est.p_hat, "%.4f") + (identical ? "" : " MISMATCH"),
                   std::to_string(est.hits), fmt(t, "%.3f"),
                   fmt(tel.runs_per_second(), "%.0f"), fmt(t1 / t, "%.2f"),
                   fmt(tel.parallelism(), "%.2f")});
    std::printf(
        "  {\"bench\":\"traingate_estimate\",\"workers\":%u,\"runs\":%zu,"
        "\"p_hat\":%.6f,\"hits\":%zu,\"seconds\":%.4f,\"runs_per_sec\":%.0f,"
        "\"speedup\":%.3f,\"bit_identical\":%s}\n",
        workers, kRuns, est.p_hat, est.hits, t, tel.runs_per_second(), t1 / t,
        identical ? "true" : "false");
  }
  est_table.print();

  // ---- BRP SPRT -----------------------------------------------------------
  bench::section("parallel SMC: BRP SPRT  H0: Pr[<=64](<> success) >= 0.9");
  auto brp = models::make_brp();
  smc::TimeBoundedReach dprop;
  dprop.time_bound = 64.0;
  dprop.goal = [&brp](const ta::ConcreteState& s) {
    return brp.is_success(s.locs);
  };
  smc::SprtOptions opts;
  opts.indifference = 0.02;
  opts.max_runs = 100'000;

  bench::Table sprt_table(
      {"workers", "verdict", "runs", "time [s]", "speedup"});
  double sprt_t1 = 0.0;
  smc::SprtResult sprt_ref;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    exec::Executor ex(workers);
    bench::Stopwatch sw;
    auto r = smc::sprt_test(brp.system, dprop, 0.9, opts, 7, ex);
    double t = sw.seconds();
    if (workers == 1) {
      sprt_t1 = t;
      sprt_ref = r;
    }
    const bool identical =
        r.verdict == sprt_ref.verdict && r.runs == sprt_ref.runs;
    sprt_table.row({std::to_string(workers),
                    std::string(verdict_name(r.verdict)) +
                        (identical ? "" : " MISMATCH"),
                    std::to_string(r.runs), fmt(t, "%.3f"),
                    fmt(sprt_t1 / t, "%.2f")});
    std::printf(
        "  {\"bench\":\"brp_sprt\",\"workers\":%u,\"verdict\":\"%s\","
        "\"runs\":%zu,\"seconds\":%.4f,\"speedup\":%.3f,"
        "\"bit_identical\":%s}\n",
        workers, verdict_name(r.verdict), r.runs, t, sprt_t1 / t,
        identical ? "true" : "false");
  }
  sprt_table.print();
  std::printf(
      "\n  expected: bit-identical results at every worker count; speedup\n"
      "  tracks physical cores (a 1-core container pins it near 1x).\n");
  return 0;
}
