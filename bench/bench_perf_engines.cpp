// Engine micro-benchmarks (google-benchmark): throughput of the primitives
// the experiments rest on — DBM algebra, symbolic successor computation,
// digital MDP construction, value iteration, BIP interaction evaluation.
#include <benchmark/benchmark.h>

#include "bip/engine.h"
#include "dbm/federation.h"
#include "mc/reachability.h"
#include "mdp/value_iteration.h"
#include "models/brp.h"
#include "models/dala.h"
#include "models/train_gate.h"
#include "pta/digital_clocks.h"

using namespace quanta;

namespace {

void BM_DbmClose(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  dbm::Dbm z = dbm::Dbm::universal(dim);
  for (int i = 1; i < dim; ++i) {
    z.constrain(i, 0, dbm::bound_le(10 + i));
    z.constrain(0, i, dbm::bound_le(-i));
  }
  for (auto _ : state) {
    dbm::Dbm copy = z;
    copy.close();
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_DbmClose)->Arg(4)->Arg(8)->Arg(16);

void BM_DbmUpResetConstrain(benchmark::State& state) {
  const int dim = 8;
  dbm::Dbm z = dbm::Dbm::zero(dim);
  for (auto _ : state) {
    dbm::Dbm w = z;
    w.up();
    w.constrain(1, 0, dbm::bound_le(20));
    w.reset(2, 0);
    w.constrain(0, 3, dbm::bound_le(-5));
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_DbmUpResetConstrain);

void BM_DbmSubtract(benchmark::State& state) {
  dbm::Dbm a = dbm::Dbm::universal(6);
  a.constrain(1, 0, dbm::bound_le(10));
  dbm::Dbm b = dbm::Dbm::universal(6);
  b.constrain(1, 0, dbm::bound_le(6));
  b.constrain(0, 1, dbm::bound_le(-4));
  b.constrain(2, 0, dbm::bound_le(5));
  for (auto _ : state) {
    auto diff = dbm::subtract(a, b);
    benchmark::DoNotOptimize(diff);
  }
}
BENCHMARK(BM_DbmSubtract);

void BM_SymbolicSuccessors(benchmark::State& state) {
  auto tg = models::make_train_gate(static_cast<int>(state.range(0)));
  ta::SymbolicSemantics sem(tg.system);
  auto init = sem.initial();
  // Warm one step in so there is queue content.
  auto succs = sem.successors(init);
  const ta::SymState& s = succs.front().state;
  for (auto _ : state) {
    auto next = sem.successors(s);
    benchmark::DoNotOptimize(next);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SymbolicSuccessors)->Arg(2)->Arg(4)->Arg(6);

void BM_ZoneGraphExploration(benchmark::State& state) {
  auto tg = models::make_train_gate(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = mc::reachable(tg.system,
                           [](const ta::SymState&) { return false; });
    benchmark::DoNotOptimize(r);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(r.stats.states_stored));
  }
}
BENCHMARK(BM_ZoneGraphExploration)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_DigitalMdpBuild(benchmark::State& state) {
  auto brp = models::make_brp();
  for (auto _ : state) {
    auto dm = pta::build_digital_mdp(brp.system);
    benchmark::DoNotOptimize(dm);
  }
}
BENCHMARK(BM_DigitalMdpBuild)->Unit(benchmark::kMillisecond);

void BM_ValueIteration(benchmark::State& state) {
  auto brp = models::make_brp();
  auto dm = pta::build_digital_mdp(brp.system);
  auto goal = dm.states_where(
      [&brp](const ta::DigitalState& s) { return brp.no_success(s.locs); });
  for (auto _ : state) {
    auto r = mdp::reachability_probability(dm.mdp, goal, mdp::Objective::kMax);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ValueIteration)->Unit(benchmark::kMillisecond);

void BM_BipEnabledInteractions(benchmark::State& state) {
  auto d = models::make_dala({.with_controller = true});
  bip::Engine engine(d.system);
  auto s = engine.initial();
  for (auto _ : state) {
    auto enabled = engine.enabled_maximal(s);
    benchmark::DoNotOptimize(enabled);
  }
}
BENCHMARK(BM_BipEnabledInteractions);

}  // namespace

BENCHMARK_MAIN();
