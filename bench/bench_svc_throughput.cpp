// ESVC — analysis-service throughput: cold (engine-bound) versus cached
// (fingerprint-hit) request rates of a quantad server over a real Unix
// socket, per session count, with and without process-isolated workers.
//
//   bench_svc_throughput [--model train-gate-3] [--clients "1 2 4 8"]
//                        [--seconds S] [--cold-reps R]
//
// Cold rows bypass the result cache (every request runs the engine), cached
// rows hit one warm entry. The gap is the cache's value under repeated
// fleet queries; the cold row doubles as the daemon's per-request overhead
// ceiling (framing + admission + governance on top of the raw engine).
// Cold throughput saturates at the engine's single-core rate times the
// worker count; cached throughput is protocol-bound and scales with
// sessions until the accept/session threads saturate a core.
//
// Two servers run side by side: one executing jobs in-process, one
// dispatching them to sandboxed worker processes (the production default).
// The "iso cold" column and the overhead line price the isolation tax —
// one frame hop each way over the worker socketpair per job (workers are
// preforked and reused, so no fork cost appears on the steady-state path).
//
// The ESVC-DUR section prices durability (--state-dir): the journaled cold
// latency against the in-memory daemon's (the write-ahead admit/complete
// records sit on the response path — acceptance is <= 5% overhead), boot
// replay time as a function of journal length, and the warm hit latency a
// restarted daemon serves from its reloaded cache segment.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "svc/client.h"
#include "svc/journal.h"
#include "svc/server.h"

using namespace quanta;

namespace {

svc::Request make_request(const std::string& model, bool use_cache) {
  svc::Request r;
  r.engine = "mc";
  r.model = model;
  r.query = "mutex";
  r.use_cache = use_cache;
  return r;
}

/// Requests per second over `seconds` wall-clock from `clients` concurrent
/// sessions, all issuing the same query. Returns 0 on any failed request.
double measure_qps(const std::string& socket_path, const std::string& model,
                   bool use_cache, int clients, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&] {
      svc::Client client;
      std::string error;
      if (!client.connect_unix(socket_path, &error)) {
        failed.store(true);
        return;
      }
      const svc::Request req = make_request(model, use_cache);
      while (!stop.load(std::memory_order_relaxed)) {
        svc::Response resp;
        if (!client.analyze(req, &resp, &error) ||
            resp.status != svc::Status::kOk) {
          failed.store(true);
          return;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  bench::Stopwatch timer;
  while (timer.seconds() < seconds && !failed.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double elapsed = timer.seconds();
  stop.store(true);
  for (auto& t : threads) t.join();
  if (failed.load()) return 0.0;
  return static_cast<double>(completed.load()) / elapsed;
}

std::string fmt(double v, const char* spec = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

/// Mean sequential cache-bypassed latency in ms: every request pays one
/// full engine run plus the service (and, when isolated, dispatch) overhead.
double cold_latency_ms(const std::string& socket_path, const std::string& model,
                       int reps) {
  svc::Client client;
  std::string error;
  if (!client.connect_unix(socket_path, &error)) {
    std::fprintf(stderr, "bench_svc_throughput: %s\n", error.c_str());
    return -1.0;
  }
  double total = 0.0;
  for (int i = 0; i < reps; ++i) {
    svc::Response resp;
    bench::Stopwatch timer;
    if (!client.analyze(make_request(model, /*use_cache=*/false), &resp,
                        &error) ||
        resp.status != svc::Status::kOk) {
      std::fprintf(stderr, "bench_svc_throughput: cold query failed: %s %s\n",
                   error.c_str(), resp.error.c_str());
      return -1.0;
    }
    total += timer.seconds();
  }
  return 1000.0 * total / reps;
}

/// Mean sequential cached-hit latency in ms over `reps` requests.
double warm_latency_ms(const std::string& socket_path, const std::string& model,
                       int reps) {
  svc::Client client;
  std::string error;
  if (!client.connect_unix(socket_path, &error)) return -1.0;
  double total = 0.0;
  for (int i = 0; i < reps; ++i) {
    svc::Response resp;
    bench::Stopwatch timer;
    if (!client.analyze(make_request(model, /*use_cache=*/true), &resp,
                        &error) ||
        resp.status != svc::Status::kOk || !resp.cached) {
      return -1.0;
    }
    total += timer.seconds();
  }
  return 1000.0 * total / reps;
}

/// Time to fold a journal of `jobs` completed jobs (3 records each) back
/// into state — the fixed cost a restart pays before serving.
double replay_ms(const std::string& dir, const std::string& model, int jobs) {
  const std::string path = dir + "/replay-" + std::to_string(jobs) + ".qjrnl";
  svc::Response answer;
  answer.status = svc::Status::kOk;
  answer.verdict = common::Verdict::kHolds;
  answer.stop = common::StopReason::kCompleted;
  answer.stored = 253;
  answer.explored = 250;
  answer.transitions = 390;
  const std::string answer_json = to_wire(answer).to_json();
  const std::string request_json =
      to_wire(make_request(model, /*use_cache=*/false)).to_json();
  {
    svc::Journal journal;
    std::string error;
    if (!journal.open(path, svc::JournalReplay{}, &error)) return -1.0;
    for (int t = 1; t <= jobs; ++t) {
      const auto ticket = static_cast<std::uint64_t>(t);
      journal.admit(ticket, ticket, request_json);
      journal.start(ticket, ticket);
      journal.complete(ticket, ticket, answer_json);
    }
    if (journal.append_failures() != 0) return -1.0;
  }
  bench::Stopwatch timer;
  const svc::JournalReplay replay = svc::Journal::replay(path);
  const double ms = 1000.0 * timer.seconds();
  return replay.fresh || replay.dropped != 0 ? -1.0 : ms;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "train-gate-3";
  std::string clients_spec = "1 2 4 8";
  double seconds = 2.0;
  int cold_reps = 5;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_svc_throughput: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--model") == 0) {
      model = need("--model");
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      clients_spec = need("--clients");
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      seconds = std::atof(need("--seconds"));
    } else if (std::strcmp(argv[i], "--cold-reps") == 0) {
      cold_reps = std::atoi(need("--cold-reps"));
    } else {
      std::fprintf(stderr, "bench_svc_throughput: unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  char dir[] = "/tmp/qsvc-bench-XXXXXX";
  if (::mkdtemp(dir) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string socket_path = std::string(dir) + "/d.sock";
  const std::string iso_socket_path = std::string(dir) + "/d-iso.sock";
  svc::ServerConfig cfg;
  cfg.socket_path = socket_path;
  cfg.isolate = false;
  svc::Server server(cfg);
  svc::ServerConfig iso_cfg;
  iso_cfg.socket_path = iso_socket_path;
  iso_cfg.isolate = true;
  svc::Server iso_server(iso_cfg);
  std::string error;
  if (!server.start(&error) || !iso_server.start(&error)) {
    std::fprintf(stderr, "bench_svc_throughput: %s\n", error.c_str());
    return 1;
  }

  const double cold_ms = cold_latency_ms(socket_path, model, cold_reps);
  const double iso_cold_ms = cold_latency_ms(iso_socket_path, model, cold_reps);
  if (cold_ms < 0.0 || iso_cold_ms < 0.0) return 1;
  const double overhead_pct =
      cold_ms > 0.0 ? 100.0 * (iso_cold_ms - cold_ms) / cold_ms : 0.0;

  // Warm the single cache entry the cached rows will hit.
  {
    svc::Client client;
    svc::Response resp;
    if (!client.connect_unix(socket_path, &error) ||
        !client.analyze(make_request(model, /*use_cache=*/true), &resp,
                        &error) ||
        resp.status != svc::Status::kOk) {
      std::fprintf(stderr, "bench_svc_throughput: warm-up failed\n");
      return 1;
    }
  }

  std::printf(
      "== ESVC: service throughput, %s mutex, cold %.2f ms/query "
      "(isolated %.2f ms, overhead %+.1f%%) ==\n",
      model.c_str(), cold_ms, iso_cold_ms, overhead_pct);
  bench::Table table(
      {"sessions", "cold q/s", "iso cold q/s", "cached q/s", "speedup"});
  std::istringstream spec(clients_spec);
  int clients = 0;
  bool ok = true;
  while (spec >> clients) {
    const double cold_qps =
        measure_qps(socket_path, model, /*use_cache=*/false, clients, seconds);
    const double iso_cold_qps = measure_qps(iso_socket_path, model,
                                            /*use_cache=*/false, clients,
                                            seconds);
    const double cached_qps =
        measure_qps(socket_path, model, /*use_cache=*/true, clients, seconds);
    if (cold_qps == 0.0 || iso_cold_qps == 0.0 || cached_qps == 0.0) ok = false;
    table.row({std::to_string(clients), fmt(cold_qps), fmt(iso_cold_qps),
               fmt(cached_qps),
               fmt(cold_qps > 0 ? cached_qps / cold_qps : 0.0, "%.0fx")});
  }
  table.print();
  const auto stats = server.stats();
  const auto iso_stats = iso_server.stats();
  std::printf("  cache: %llu hits / %llu misses, engine runs: %llu, "
              "isolated runs: %llu (workers spawned: %llu)\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.jobs_executed),
              static_cast<unsigned long long>(iso_stats.jobs_executed),
              static_cast<unsigned long long>(iso_stats.supervisor.spawned));
  server.stop();
  iso_server.stop();

  // --- ESVC-DUR: the price and payoff of --state-dir durability ---------
  // A fresh in-memory baseline measured back-to-back with the journaled
  // daemon: the process is equally warm for both, so the delta prices the
  // journal appends alone (the headline cold_ms above includes first-run
  // warm-up and would overstate — or understate — the difference).
  svc::ServerConfig base_cfg;
  base_cfg.socket_path = std::string(dir) + "/d-base.sock";
  base_cfg.isolate = false;
  svc::Server base_server(base_cfg);
  svc::ServerConfig dur_cfg;
  dur_cfg.socket_path = std::string(dir) + "/d-dur.sock";
  dur_cfg.isolate = false;
  dur_cfg.state_dir = std::string(dir) + "/state";
  auto dur_server = std::make_unique<svc::Server>(dur_cfg);
  if (!base_server.start(&error) || !dur_server->start(&error)) {
    std::fprintf(stderr, "bench_svc_throughput: %s\n", error.c_str());
    return 1;
  }
  const double base_cold_ms =
      cold_latency_ms(base_cfg.socket_path, model, cold_reps);
  const double dur_cold_ms =
      cold_latency_ms(dur_cfg.socket_path, model, cold_reps);
  base_server.stop();
  if (base_cold_ms < 0.0 || dur_cold_ms < 0.0) return 1;
  const double journal_pct =
      base_cold_ms > 0.0 ? 100.0 * (dur_cold_ms - base_cold_ms) / base_cold_ms
                         : 0.0;
  // Seed one cacheable entry, then restart the daemon over its state dir:
  // warm hits must come from the reloaded segment, not a re-run engine.
  {
    svc::Client client;
    svc::Response resp;
    if (!client.connect_unix(dur_cfg.socket_path, &error) ||
        !client.analyze(make_request(model, /*use_cache=*/true), &resp,
                        &error) ||
        resp.status != svc::Status::kOk) {
      std::fprintf(stderr, "bench_svc_throughput: durable warm-up failed\n");
      return 1;
    }
  }
  dur_server.reset();
  bench::Stopwatch restart_timer;
  dur_server = std::make_unique<svc::Server>(dur_cfg);
  if (!dur_server->start(&error)) {
    std::fprintf(stderr, "bench_svc_throughput: restart: %s\n", error.c_str());
    return 1;
  }
  const double restart_ms = 1000.0 * restart_timer.seconds();
  const int warm_reps = 200;
  const double warm_ms = warm_latency_ms(dur_cfg.socket_path, model, warm_reps);
  const auto dur_stats = dur_server->stats();
  const double hit_rate =
      dur_stats.cache.hits + dur_stats.cache.misses > 0
          ? 100.0 * static_cast<double>(dur_stats.cache.hits) /
                static_cast<double>(dur_stats.cache.hits +
                                    dur_stats.cache.misses)
          : 0.0;
  dur_server->stop();

  std::printf(
      "== ESVC-DUR: durable daemon, %s mutex ==\n"
      "  journaled cold: %.2f ms/query (%+.1f%% vs %.2f ms in-memory, "
      "measured back-to-back)\n"
      "  restart: %.2f ms to boot over %llu reloaded cache entries; "
      "warm hits after restart: %.3f ms/query, hit rate %.0f%% "
      "(engine runs: %llu)\n",
      model.c_str(), dur_cold_ms, journal_pct, base_cold_ms, restart_ms,
      static_cast<unsigned long long>(dur_stats.cache.persist_loaded),
      warm_ms, hit_rate,
      static_cast<unsigned long long>(dur_stats.jobs_executed));
  if (warm_ms < 0.0) ok = false;
  bench::Table replay_table({"journal jobs", "records", "replay ms",
                             "ms / 1k records"});
  for (const int jobs : {64, 256, 1024}) {
    const double ms = replay_ms(dir, model, jobs);
    if (ms < 0.0) ok = false;
    const int records = 3 * jobs;
    replay_table.row({std::to_string(jobs), std::to_string(records),
                      fmt(ms, "%.2f"), fmt(1000.0 * ms / records, "%.2f")});
  }
  replay_table.print();
  return ok ? 0 : 1;
}
