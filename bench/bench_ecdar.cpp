// Experiment E9 — §II (ECDAR): refinement and consistency between timed I/O
// specifications of a request/grant controller: a matrix of pairwise
// refinement checks across response-window variants.
#include <cstdio>

#include "bench_util.h"
#include "ecdar/refinement.h"

using namespace quanta;

namespace {

ecdar::Tioa responder(int lo, int hi, const std::string& name) {
  ecdar::Tioa spec;
  int req = spec.system.add_channel("req");
  int grant = spec.system.add_channel("grant");
  spec.inputs = {req};
  int x = spec.system.add_clock("x");
  ta::ProcessBuilder pb(name);
  int idle = pb.location("Idle");
  int busy = pb.location("Busy", {ta::cc_le(x, hi)});
  pb.set_initial(idle);
  pb.edge(idle, busy, {}, req, ta::SyncKind::kReceive, {{x, 0}});
  pb.edge(busy, idle, {ta::cc_ge(x, lo)}, grant, ta::SyncKind::kSend, {});
  spec.system.add_process(pb.build());
  return spec;
}

}  // namespace

int main() {
  bench::section("E9: ECDAR refinement matrix (grant within [lo,hi])");

  struct Variant {
    std::string name;
    int lo, hi;
  };
  std::vector<Variant> variants{
      {"[0,8]", 0, 8}, {"[1,5]", 1, 5}, {"[2,4]", 2, 4}, {"[1,3]", 1, 3}};

  std::vector<ecdar::Tioa> specs;
  for (const auto& v : variants) specs.push_back(responder(v.lo, v.hi, v.name));

  bench::Table cons({"spec", "consistent"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    cons.row({variants[i].name,
              ecdar::check_consistency(specs[i]).consistent ? "yes" : "NO"});
  }
  cons.print();

  std::printf("\n  S refines T (rows = S, columns = T):\n\n");
  bench::Table matrix({"S \\ T", variants[0].name, variants[1].name,
                       variants[2].name, variants[3].name});
  std::size_t total_pairs = 0;
  bench::Stopwatch sw;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::vector<std::string> row{variants[i].name};
    for (std::size_t j = 0; j < specs.size(); ++j) {
      auto r = ecdar::check_refinement(specs[i], specs[j]);
      total_pairs += r.pairs_explored;
      row.push_back(r.refines() ? "yes" : "no");
    }
    matrix.row(std::move(row));
  }
  matrix.print();
  std::printf(
      "\n  expected: [lo,hi] refines [lo',hi'] iff [lo,hi] is inside [lo',hi']\n"
      "  (reflexive diagonal; tighter windows refine looser ones).\n");
  std::printf("  %zu simulation pairs explored, %.2fs\n", total_pairs,
              sw.seconds());

  // Inconsistent specification demo.
  {
    ecdar::Tioa broken = responder(6, 6, "broken");
    // Tighten the invariant below the guard to create a timelock.
    broken.system.process_mut(0).locations[1].invariant = {
        ta::cc_le(broken.system.clock_count() >= 1 ? 1 : 1, 2)};
    auto r = ecdar::check_consistency(broken);
    std::printf("\n  inconsistency demo (grant at >=6 but invariant <=2): %s\n",
                r.consistent ? "MISSED" : ("timelock at " + r.error_state).c_str());
  }
  return 0;
}
