// Ablation A3 — statistical model checking: confidence-interval width vs
// sample count (Chernoff-Hoeffding planning vs realized Clopper-Pearson
// width) and sequential (SPRT) vs fixed-size testing, on a train-gate query
// with an SMC-estimated reference value.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "models/train_gate.h"
#include "smc/estimate.h"
#include "smc/sprt.h"

using namespace quanta;

int main() {
  bench::section("A3a: sample count vs confidence-interval width");
  auto tg = models::make_train_gate(3);
  int p = tg.trains[0];
  int cross = tg.system.process(p).location_index("Cross");
  smc::TimeBoundedReach prop;
  prop.time_bound = 30.0;
  prop.goal = [p, cross](const ta::ConcreteState& s) {
    return s.locs[static_cast<std::size_t>(p)] == cross;
  };

  bench::Table widths({"runs", "p_hat", "CI (95%)", "width", "time [s]"});
  for (std::size_t runs : {100u, 1000u, 10000u, 40000u}) {
    bench::Stopwatch sw;
    auto est = smc::estimate_probability_runs(tg.system, prop, runs, 0.05,
                                              runs * 31 + 7);
    widths.row({std::to_string(runs), bench::fmt(est.p_hat, "%.4f"),
                "[" + bench::fmt(est.ci_low, "%.4f") + ", " +
                    bench::fmt(est.ci_high, "%.4f") + "]",
                bench::fmt(est.ci_high - est.ci_low, "%.4f"),
                bench::fmt(sw.seconds(), "%.2f")});
  }
  widths.print();

  bench::section("A3b: Chernoff-Hoeffding planned sample sizes");
  bench::Table chern({"epsilon", "delta", "planned runs"});
  for (double eps : {0.05, 0.02, 0.01}) {
    for (double delta : {0.05, 0.01}) {
      chern.row({bench::fmt(eps, "%.2f"), bench::fmt(delta, "%.2f"),
                 std::to_string(common::chernoff_sample_count(eps, delta))});
    }
  }
  chern.print();

  bench::section("A3c: SPRT vs fixed-size estimation");
  auto ref = smc::estimate_probability_runs(tg.system, prop, 20000, 0.05, 99);
  std::printf("  reference estimate: p ~= %.4f (20000 runs)\n\n", ref.p_hat);
  bench::Table sprt_table({"H0: p >= theta", "verdict", "runs used",
                           "fixed-N equivalent"});
  std::size_t fixed_n = common::chernoff_sample_count(0.02, 0.05);
  for (double theta : {ref.p_hat - 0.15, ref.p_hat - 0.05, ref.p_hat + 0.05,
                       ref.p_hat + 0.15}) {
    smc::SprtOptions opts;
    opts.indifference = 0.02;
    auto r = smc::sprt_test(tg.system, prop, theta,
                            opts, static_cast<std::uint64_t>(theta * 1e4));
    const char* verdict = r.verdict == smc::SprtVerdict::kAccepted ? "accept"
                          : r.verdict == smc::SprtVerdict::kRejected
                              ? "reject"
                              : "inconclusive";
    sprt_table.row({bench::fmt(theta, "%.3f"), verdict,
                    std::to_string(r.runs), std::to_string(fixed_n)});
  }
  sprt_table.print();
  std::printf("\n  expected: SPRT needs far fewer runs than the fixed-size\n"
              "  bound when the true probability is far from theta.\n");
  return 0;
}
