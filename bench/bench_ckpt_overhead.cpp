// Overhead of crash-safe checkpointing (src/ckpt) on the symbolic hot path:
// train-gate full exploration with (a) no checkpointing, (b) checkpointing
// enabled at budget-trip granularity (snapshot only when a bound stops the
// run — the CheckpointHook is armed but never fires on a completed search),
// and (c) periodic snapshots every K explored states (each one serializes
// the full store + worklist and rewrites the file atomically).
// Acceptance (EXPERIMENTS.md): (b) stays within 5% of (a); (c) is the knob
// trading crash-window size against throughput.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/budget.h"
#include "mc/reachability.h"
#include "models/train_gate.h"

using namespace quanta;

namespace {

mc::StatePredicate all_crossing(const models::TrainGate& tg) {
  std::vector<int> cross;
  for (int t : tg.trains) {
    cross.push_back(tg.system.process(t).location_index("Cross"));
  }
  auto trains = tg.trains;
  return [trains, cross](const ta::SymState& s) {
    for (std::size_t i = 0; i < trains.size(); ++i) {
      if (s.locs[static_cast<std::size_t>(trains[i])] != cross[i]) return false;
    }
    return true;  // unreachable for N >= 2: forces a full exploration
  };
}

double run_once(const models::TrainGate& tg, const mc::StatePredicate& pred,
                const std::string& ckpt_path, std::uint64_t interval,
                std::size_t* states) {
  mc::ReachOptions opts;
  opts.record_trace = false;
  opts.limits.budget = common::Budget::deadline_after(std::chrono::hours(1));
  opts.checkpoint.path = ckpt_path;
  opts.checkpoint.resume = false;  // measure the forward path, not a resume
  opts.checkpoint.interval = interval;
  bench::Stopwatch sw;
  auto r = mc::reachable(tg.system, pred, opts);
  *states = r.stats.states_stored;
  if (r.verdict != common::Verdict::kViolated) {
    std::fprintf(stderr, "unexpected verdict under a generous budget\n");
  }
  return sw.seconds();
}

double best_of(int reps, const models::TrainGate& tg,
               const mc::StatePredicate& pred, const std::string& ckpt_path,
               std::uint64_t interval, std::size_t* states) {
  double best = 1e9;
  for (int i = 0; i < reps; ++i) {
    double t = run_once(tg, pred, ckpt_path, interval, states);
    if (t < best) best = t;
  }
  return best;
}

}  // namespace

int main() {
  bench::section("checkpoint overhead: governed train-gate search");

  const std::string path = "/tmp/quanta_bench_ckpt_overhead.qckpt";
  bench::Table table({"N", "checkpointing", "states", "time [s]", "overhead"});
  constexpr int kReps = 5;
  for (int n = 4; n <= 5; ++n) {
    auto tg = models::make_train_gate(n);
    auto pred = all_crossing(tg);

    std::size_t states = 0;
    // Baseline: governed but no checkpoint path (hook never installed).
    const double base = best_of(kReps, tg, pred, "", 0, &states);
    table.row({std::to_string(n), "off", std::to_string(states),
               bench::fmt(base, "%.3f"), "1.00x (baseline)"});

    // Budget-trip granularity: the hook is armed, but a completed search
    // never snapshots — this is the always-on configuration.
    const double armed = best_of(kReps, tg, pred, path, 0, &states);
    table.row({std::to_string(n), "on stop only", std::to_string(states),
               bench::fmt(armed, "%.3f"),
               bench::fmt(armed / base, "%.2f") + "x"});

    // Periodic snapshots: every 2000 explored states the full store +
    // worklist is serialized, CRC'd and atomically rewritten.
    const double periodic = best_of(kReps, tg, pred, path, 2000, &states);
    table.row({std::to_string(n), "every 2000", std::to_string(states),
               bench::fmt(periodic, "%.3f"),
               bench::fmt(periodic / base, "%.2f") + "x"});
  }
  table.print();
  std::remove("/tmp/quanta_bench_ckpt_overhead.qckpt");
  std::printf(
      "\n  acceptance: 'on stop only' within 5%% of baseline (the hook adds\n"
      "  one branch per pop; snapshots are written only when a bound trips).\n"
      "  'every K' prices the SIGKILL window: smaller K, smaller loss,\n"
      "  more serialization.\n");
  return 0;
}
