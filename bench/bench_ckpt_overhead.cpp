// Overhead of crash-safe checkpointing (src/ckpt) on the symbolic hot path:
// train-gate full exploration with (a) no checkpointing, (b) checkpointing
// enabled at budget-trip granularity (snapshot only when a bound stops the
// run — the CheckpointHook is armed but never fires on a completed search),
// and (c) periodic snapshots every K explored states. The periodic sweep
// compares the two snapshot modes at each interval: full (max_deltas = 0,
// every save serializes the whole store + worklist and rewrites the file
// atomically) against incremental (QCKPD1 delta chains, every save appends
// only the sections that changed since the previous link).
// Acceptance (EXPERIMENTS.md): (b) stays within 5% of (a); incremental
// snapshots at the 2000-state interval stay within 1.5x of baseline where
// full snapshots cost ~6.5x.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "ckpt/delta.h"
#include "common/budget.h"
#include "mc/reachability.h"
#include "models/train_gate.h"

using namespace quanta;

namespace {

mc::StatePredicate all_crossing(const models::TrainGate& tg) {
  std::vector<int> cross;
  for (int t : tg.trains) {
    cross.push_back(tg.system.process(t).location_index("Cross"));
  }
  auto trains = tg.trains;
  return [trains, cross](const ta::SymState& s) {
    for (std::size_t i = 0; i < trains.size(); ++i) {
      if (s.locs[static_cast<std::size_t>(trains[i])] != cross[i]) return false;
    }
    return true;  // unreachable for N >= 2: forces a full exploration
  };
}

double run_once(const models::TrainGate& tg, const mc::StatePredicate& pred,
                const std::string& ckpt_path, std::uint64_t interval,
                std::uint32_t max_deltas, std::size_t* states) {
  mc::ReachOptions opts;
  opts.record_trace = false;
  opts.limits.budget = common::Budget::deadline_after(std::chrono::hours(1));
  opts.checkpoint.path = ckpt_path;
  opts.checkpoint.resume = false;  // measure the forward path, not a resume
  opts.checkpoint.interval = interval;
  opts.checkpoint.max_deltas = max_deltas;
  bench::Stopwatch sw;
  auto r = mc::reachable(tg.system, pred, opts);
  *states = r.stats.states_stored;
  if (r.verdict != common::Verdict::kViolated) {
    std::fprintf(stderr, "unexpected verdict under a generous budget\n");
  }
  return sw.seconds();
}

double best_of(int reps, const models::TrainGate& tg,
               const mc::StatePredicate& pred, const std::string& ckpt_path,
               std::uint64_t interval, std::uint32_t max_deltas,
               std::size_t* states) {
  double best = 1e9;
  for (int i = 0; i < reps; ++i) {
    double t = run_once(tg, pred, ckpt_path, interval, max_deltas, states);
    if (t < best) best = t;
  }
  return best;
}

void remove_chain(const std::string& path) {
  std::remove(path.c_str());
  for (std::uint32_t seq = 1; seq <= 4096; ++seq) {
    if (std::remove(ckpt::delta_path(path, seq).c_str()) != 0) break;
  }
}

}  // namespace

int main() {
  bench::section("checkpoint overhead: governed train-gate search");

  const std::string path = "/tmp/quanta_bench_ckpt_overhead.qckpt";
  bench::Table table({"N", "checkpointing", "states", "time [s]", "overhead"});
  constexpr int kReps = 5;
  for (int n = 4; n <= 5; ++n) {
    auto tg = models::make_train_gate(n);
    auto pred = all_crossing(tg);

    std::size_t states = 0;
    // Baseline: governed but no checkpoint path (hook never installed).
    const double base = best_of(kReps, tg, pred, "", 0, 0, &states);
    table.row({std::to_string(n), "off", std::to_string(states),
               bench::fmt(base, "%.3f"), "1.00x (baseline)"});

    // Budget-trip granularity: the hook is armed, but a completed search
    // never snapshots — this is the always-on configuration.
    const double armed = best_of(kReps, tg, pred, path, 0, 0, &states);
    table.row({std::to_string(n), "on stop only", std::to_string(states),
               bench::fmt(armed, "%.3f"),
               bench::fmt(armed / base, "%.2f") + "x"});
    remove_chain(path);

    // Periodic sweep: at each interval, full snapshots (max_deltas = 0,
    // every save serializes and rewrites the whole store + worklist)
    // against QCKPD1 delta chains (max_deltas = 64, every save appends
    // only the changes since the previous link).
    for (std::uint64_t interval : {500u, 2000u, 8000u}) {
      const double full =
          best_of(kReps, tg, pred, path, interval, 0, &states);
      remove_chain(path);
      table.row({std::to_string(n), "full @" + std::to_string(interval),
                 std::to_string(states), bench::fmt(full, "%.3f"),
                 bench::fmt(full / base, "%.2f") + "x"});
      const double delta =
          best_of(kReps, tg, pred, path, interval, 64, &states);
      remove_chain(path);
      table.row({std::to_string(n), "delta @" + std::to_string(interval),
                 std::to_string(states), bench::fmt(delta, "%.3f"),
                 bench::fmt(delta / base, "%.2f") + "x"});
    }
  }
  table.print();
  remove_chain(path);
  std::printf(
      "\n  acceptance: 'on stop only' within 5%% of baseline (the hook adds\n"
      "  one branch per pop; snapshots are written only when a bound trips).\n"
      "  periodic full snapshots are quadratic in states/interval; QCKPD1\n"
      "  delta chains must hold the 2000-state interval within 1.5x of\n"
      "  baseline on the 67k-state instance (N = 5).\n");
  return 0;
}
