// Overhead of the resource-governance layer on the symbolic hot path:
// train-gate reachability with (a) no budget (the amortized poll is skipped
// entirely), (b) an active but generous budget (deadline + memory ceiling
// polled every core::kBudgetPollStride expansions), and (c) a watchdog-only
// budget (cancel token observed by the poll, deadline watched by a thread).
// Acceptance: the governed run stays within ~2% of the ungoverned one.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/budget.h"
#include "core/explore.h"
#include "mc/reachability.h"
#include "models/train_gate.h"

using namespace quanta;

namespace {

mc::StatePredicate all_crossing(const models::TrainGate& tg) {
  std::vector<int> cross;
  for (int t : tg.trains) {
    cross.push_back(tg.system.process(t).location_index("Cross"));
  }
  auto trains = tg.trains;
  return [trains, cross](const ta::SymState& s) {
    for (std::size_t i = 0; i < trains.size(); ++i) {
      if (s.locs[static_cast<std::size_t>(trains[i])] != cross[i]) return false;
    }
    return true;  // unreachable for N >= 2: forces a full exploration
  };
}

double run_once(const models::TrainGate& tg, const mc::StatePredicate& pred,
                const common::Budget& budget, std::size_t* states) {
  mc::ReachOptions opts;
  opts.record_trace = false;
  opts.limits.budget = budget;
  bench::Stopwatch sw;
  auto r = mc::reachable(tg.system, pred, opts);
  *states = r.stats.states_stored;
  if (r.verdict != common::Verdict::kViolated) {
    std::fprintf(stderr, "unexpected verdict under a generous budget\n");
  }
  return sw.seconds();
}

double best_of(int reps, const models::TrainGate& tg,
               const mc::StatePredicate& pred, const common::Budget& budget,
               std::size_t* states) {
  double best = 1e9;
  for (int i = 0; i < reps; ++i) {
    double t = run_once(tg, pred, budget, states);
    if (t < best) best = t;
  }
  return best;
}

}  // namespace

int main() {
  bench::section("budget overhead: governed vs ungoverned train-gate search");

  bench::Table table(
      {"N", "budget", "states", "time [s]", "overhead"});
  constexpr int kReps = 5;
  for (int n = 4; n <= 5; ++n) {
    auto tg = models::make_train_gate(n);
    auto pred = all_crossing(tg);

    std::size_t states = 0;
    const double base = best_of(kReps, tg, pred, common::Budget{}, &states);
    table.row({std::to_string(n), "none", std::to_string(states),
               bench::fmt(base, "%.3f"), "1.00x (baseline)"});

    // Generous deadline + memory ceiling: both polled on the hot path.
    common::Budget governed = common::Budget::deadline_after(
        std::chrono::hours(1));
    governed.with_memory_limit(std::size_t{8} << 30);
    const double gov = best_of(kReps, tg, pred, governed, &states);
    table.row({std::to_string(n), "deadline+mem", std::to_string(states),
               bench::fmt(gov, "%.3f"), bench::fmt(gov / base, "%.2f") + "x"});

    common::CancelToken token;  // never fired
    common::Budget cancelable = common::Budget{}.with_cancel(&token);
    const double can = best_of(kReps, tg, pred, cancelable, &states);
    table.row({std::to_string(n), "cancel token", std::to_string(states),
               bench::fmt(can, "%.3f"), bench::fmt(can / base, "%.2f") + "x"});
  }
  table.print();
  std::printf(
      "\n  acceptance: governed runs within ~2%% of baseline (the poll is\n"
      "  amortized over %zu expansions; an inactive budget skips it).\n",
      static_cast<std::size_t>(core::kBudgetPollStride));
  return 0;
}
