// Experiment E8 — §II (UPPAAL-CORA): minimum-cost reachability on a priced
// train-gate, WCET-style. Waiting in Appr and Stop accrues cost; the engine
// finds the cheapest schedule for a given train to cross, swept over the
// number of competing trains and the waiting rates.
#include <cstdio>

#include "bench_util.h"
#include "cora/priced.h"
#include "models/train_gate.h"

using namespace quanta;

namespace {

cora::MinCostResult train_cost(int trains, std::int64_t appr_rate,
                               std::int64_t stop_rate, int target_train) {
  auto tg = models::make_train_gate(trains);
  cora::PriceModel prices(tg.system);
  for (int t : tg.trains) {
    const auto& proc = tg.system.process(t);
    prices.set_location_rate(t, proc.location_index("Appr"), appr_rate);
    prices.set_location_rate(t, proc.location_index("Stop"), stop_rate);
  }
  int cross =
      tg.system.process(tg.trains[static_cast<std::size_t>(target_train)])
          .location_index("Cross");
  int p = tg.trains[static_cast<std::size_t>(target_train)];
  return cora::min_cost_reachability(
      tg.system, prices, [p, cross](const ta::DigitalState& s) {
        return s.locs[static_cast<std::size_t>(p)] == cross;
      });
}

}  // namespace

int main() {
  bench::section("E8: UPPAAL-CORA minimum-cost reachability (priced train-gate)");

  bench::Table table({"trains", "appr rate", "stop rate", "goal",
                      "min cost", "states", "time [s]"});
  for (int n = 1; n <= 3; ++n) {
    bench::Stopwatch sw;
    auto r = train_cost(n, 1, 1, 0);
    table.row({std::to_string(n), "1", "1", "Train(0).Cross",
               r.reachable() ? std::to_string(r.cost) : "unreachable",
               std::to_string(r.stats.states_explored),
               bench::fmt(sw.seconds(), "%.2f")});
  }
  // Rate sweep: pricier waiting in Appr does not change the optimal plan
  // (train 0 can always approach alone), it scales the cost.
  for (std::int64_t rate : {2, 5}) {
    bench::Stopwatch sw;
    auto r = train_cost(2, rate, 1, 0);
    table.row({"2", std::to_string(rate), "1", "Train(0).Cross",
               r.reachable() ? std::to_string(r.cost) : "unreachable",
               std::to_string(r.stats.states_explored),
               bench::fmt(sw.seconds(), "%.2f")});
  }
  // Forced-waiting query: train 0 must have sat in Stop for at least 8 time
  // units. Now waiting cost is unavoidable and the queueing dynamics (a
  // second train must occupy the bridge) enter the optimum.
  {
    auto tg = models::make_train_gate(2);
    cora::PriceModel prices(tg.system);
    for (int t : tg.trains) {
      const auto& proc = tg.system.process(t);
      prices.set_location_rate(t, proc.location_index("Appr"), 1);
      prices.set_location_rate(t, proc.location_index("Stop"), 1);
    }
    // x0 counts from train 0's approach; make sure its digital cap covers 8.
    int stop0 = tg.system.process(tg.trains[0]).location_index("Stop");
    int p0 = tg.trains[0];
    int x0 = tg.train_clock[0];
    bench::Stopwatch sw;
    auto r = cora::min_cost_reachability(
        tg.system, prices, [p0, stop0, x0](const ta::DigitalState& s) {
          return s.locs[static_cast<std::size_t>(p0)] == stop0 &&
                 s.clocks[static_cast<std::size_t>(x0)] >= 8;
        });
    table.row({"2", "1", "1", "T0 stopped >= 8",
               r.reachable() ? std::to_string(r.cost) : "unreachable",
               std::to_string(r.stats.states_explored),
               bench::fmt(sw.seconds(), "%.2f")});
  }
  table.print();
  std::printf(
      "\n  expected: cost 10*rate for a lone approach (the mandatory x>=10 in\n"
      "  Appr). In the forced-waiting query the optimiser still schedules the\n"
      "  blocking train just-in-time, so the cost is train 0's own 8 units\n"
      "  plus the minimal overlap of the blocker's approach.\n");
  return 0;
}
