// Experiment E3 — the paper's Fig. 4: "Cumulative probability distribution
// for the trains to cross in function of time". For each train i (rate
// 1+i in Safe), estimate Pr[<=100](<> Train(i).Cross) and print the CDF
// series over the same time grid as the figure (10, 22, 34, ..., 94).
#include <cstdio>

#include "bench_util.h"
#include "models/train_gate.h"
#include "smc/cdf.h"
#include "smc/estimate.h"

using namespace quanta;

int main() {
  bench::section("Fig. 4: CDF of crossing times, 6 trains, rates 1+id");
  const int kTrains = 6;
  const std::size_t kRuns = 4000;
  const double kHorizon = 100.0;
  const int kPoints = 51;  // grid step 2

  auto tg = models::make_train_gate(kTrains);
  bench::Stopwatch total;

  std::vector<smc::CdfSeries> series;
  std::vector<double> final_prob;
  for (int i = 0; i < kTrains; ++i) {
    int p = tg.trains[static_cast<std::size_t>(i)];
    int cross = tg.system.process(p).location_index("Cross");
    smc::TimeBoundedReach prop;
    prop.time_bound = kHorizon;
    prop.goal = [p, cross](const ta::ConcreteState& s) {
      return s.locs[static_cast<std::size_t>(p)] == cross;
    };
    auto times = smc::first_hit_times(tg.system, prop, kRuns,
                                      0xF16'4000 + static_cast<std::uint64_t>(i));
    series.push_back(smc::empirical_cdf(times, kRuns, kHorizon, kPoints));
    final_prob.push_back(series.back().prob.back());
  }

  // The figure's x axis: 10, 22, 34, 46, 58, 70, 82, 94.
  bench::Table table({"t", "Train 0", "Train 1", "Train 2", "Train 3",
                      "Train 4", "Train 5"});
  for (int t = 10; t <= 94; t += 12) {
    std::vector<std::string> row{std::to_string(t)};
    int idx = t / 2;  // grid step 2
    for (int i = 0; i < kTrains; ++i) {
      row.push_back(bench::fmt(series[static_cast<std::size_t>(i)]
                                   .prob[static_cast<std::size_t>(idx)],
                               "%.3f"));
    }
    table.row(std::move(row));
  }
  table.print();

  std::printf("\n  shape checks (paper): higher-rate trains cross sooner;\n"
              "  all CDFs approach 1 by t=100:\n");
  bool ordered = true;
  for (int i = 0; i + 1 < kTrains; ++i) {
    // Compare at t=22 (early regime) with slack for sampling noise.
    double lo = series[static_cast<std::size_t>(i)].prob[11];
    double hi = series[static_cast<std::size_t>(i + 1)].prob[11];
    if (hi + 0.05 < lo) ordered = false;
  }
  std::printf("    rate ordering at t=22: %s\n", ordered ? "OK" : "VIOLATED");
  for (int i = 0; i < kTrains; ++i) {
    std::printf("    Pr[<=100](<> Train(%d).Cross) ~= %.3f\n", i,
                final_prob[static_cast<std::size_t>(i)]);
  }
  std::printf("  %zu runs per train, total %.2fs\n", kRuns, total.seconds());
  return 0;
}
