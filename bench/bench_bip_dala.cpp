// Experiment E6 — §IV / Fig. 6: the DALA rover functional level in BIP.
// Reports: state-space size, safety of the controlled system, rule
// violations of the unprotected baseline, deadlock-freedom by exact search
// and by D-Finder, fault-injection run statistics, and the flattening
// transformation.
#include <cstdio>

#include "bench_util.h"
#include "bip/dfinder.h"
#include "bip/flatten.h"
#include "models/dala.h"

using namespace quanta;

namespace {

struct RunStats {
  std::size_t runs = 0;
  std::size_t unsafe_visits = 0;
  std::size_t runs_with_violation = 0;
};

RunStats fault_injection(const models::Dala& d, int runs, int steps,
                         std::uint64_t seed) {
  bip::Engine engine(d.system);
  common::Rng rng(seed);
  RunStats stats;
  for (int r = 0; r < runs; ++r) {
    engine.reset();
    std::size_t before = stats.unsafe_visits;
    engine.run(static_cast<std::size_t>(steps), rng,
               [&d, &stats](const bip::BipState& s) {
                 if (!d.safe(s)) ++stats.unsafe_visits;
                 return true;
               });
    ++stats.runs;
    if (stats.unsafe_visits > before) ++stats.runs_with_violation;
  }
  return stats;
}

}  // namespace

int main() {
  bench::section("E6: BIP / DALA rover — controller synthesis by construction");

  bench::Table table({"variant", "states", "R1+R2 hold", "deadlock-free",
                      "D-Finder verdict", "time [s]"});
  for (bool with_controller : {true, false}) {
    models::DalaOptions opts{with_controller};
    auto d = models::make_dala(opts);
    bench::Stopwatch sw;
    auto exact = bip::explore(d.system, bip::ExploreOptions{},
                              [&d](const bip::BipState& s) { return d.safe(s); });
    auto df = bip::dfinder_deadlock_check(d.system);
    table.row({with_controller ? "with R2C controller" : "unprotected",
               std::to_string(exact.stats.states_stored),
               exact.violation_found ? "VIOLATED" : "yes",
               exact.deadlock_found ? "NO" : "yes",
               df.deadlock_free
                   ? "deadlock-free"
                   : std::to_string(df.candidates) + " candidate(s)",
               bench::fmt(sw.seconds(), "%.2f")});
  }
  table.print();

  bench::section("Fault injection: 200 random runs x 500 interactions");
  bench::Table fi({"variant", "runs", "runs hitting unsafe", "unsafe visits"});
  for (bool with_controller : {true, false}) {
    auto d = models::make_dala({with_controller});
    auto stats = fault_injection(d, 200, 500, 0xDA1A);
    fi.row({with_controller ? "with R2C controller" : "unprotected",
            std::to_string(stats.runs),
            std::to_string(stats.runs_with_violation),
            std::to_string(stats.unsafe_visits)});
  }
  fi.print();
  std::printf("\n  expected (paper): the synthesized controller stops the robot\n"
              "  from reaching undesired/unsafe states; the baseline does not.\n");

  bench::section("Source-to-source flattening ([24])");
  {
    auto d = models::make_dala({.with_controller = true});
    bench::Stopwatch sw;
    auto flat = bip::flatten(d.system);
    std::printf("  flat component: %d places, %zu transitions (%.2fs)\n",
                flat.flat.place_count(), flat.flat.transitions().size(),
                sw.seconds());
    std::printf("  components before flattening: %d\n",
                d.system.component_count());
  }
  return 0;
}
