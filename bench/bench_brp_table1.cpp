// Experiment E4 — the paper's Table I: "Results for the BRP model,
// parameters (N, MAX, TD) = (16, 2, 1)", reproduced through the three
// analysis routes of the MODEST single-formalism approach:
//   mctau : TA overapproximation, checked by the zone-based engine;
//   mcpta : digital-clocks MDP, checked by value iteration (PRISM-style);
//   modes : discrete-event simulation, 10k runs, ALAP scheduler.
#include <cstdio>

#include "bench_util.h"
#include "models/brp.h"
#include "pta/digital_clocks.h"
#include "pta/properties.h"
#include "sta/des.h"
#include "sta/mctau.h"
#include "sta/sta.h"

using namespace quanta;
using bench::fmt;

namespace {

std::string mu_sigma(double mu, double sigma) {
  return "mu=" + fmt(mu, "%.4g") + ", sigma=" + fmt(sigma, "%.2g");
}

}  // namespace

int main() {
  bench::section("Table I: BRP (N, MAX, TD) = (16, 2, 1)");
  bench::Stopwatch total;

  auto brp = models::make_brp();
  std::printf("  model class: %s (analysed as TA / PTA / via simulation)\n",
              sta::to_string(sta::classify(brp.system)));
  std::printf("  analytic reference: P1 = %.4g, P2 = %.4g\n\n",
              brp.analytic_p1(), brp.analytic_p2());

  const int to = brp.params.effective_timeout();

  // ---------------- mctau column ------------------------------------------
  bench::Stopwatch sw;
  bool ta1_mctau = sta::mctau_invariant(
      brp.system, [&brp, to](const ta::SymState& s) {
        bool can_expire =
            brp.sender_waiting(s.locs) &&
            s.zone.satisfies(0, brp.clk_x, dbm::bound_le(-to));
        return !(can_expire && brp.channels_busy(s.locs));
      });
  bool ta2_mctau = sta::mctau_invariant(
      brp.system, [&brp](const ta::SymState& s) { return brp.ta2_ok(s.vars); });
  auto pa_mctau = sta::mctau_reach_probability(
      brp.system, [&brp](const ta::SymState& s) {
        return brp.is_fail_nok(s.locs) && brp.complete_file(s.vars);
      });
  auto pb_mctau = sta::mctau_reach_probability(
      brp.system, [&brp](const ta::SymState& s) {
        return brp.is_success(s.locs) && !brp.complete_file(s.vars);
      });
  auto p1_mctau = sta::mctau_reach_probability(
      brp.system,
      [&brp](const ta::SymState& s) { return brp.no_success(s.locs); });
  auto p2_mctau = sta::mctau_reach_probability(
      brp.system,
      [&brp](const ta::SymState& s) { return brp.is_fail_dk(s.locs); });
  double t_mctau = sw.seconds();

  // ---------------- mcpta column ------------------------------------------
  sw.reset();
  auto dm = pta::build_digital_mdp(brp.system);
  bool ta1_mcpta =
      pta::check_invariant(dm, [&brp, to](const ta::DigitalState& s) {
        bool timer_expired =
            brp.sender_waiting(s.locs) &&
            s.clocks[static_cast<std::size_t>(brp.clk_x)] >= to;
        return !(timer_expired && brp.channels_busy(s.locs));
      }).holds();
  bool ta2_mcpta =
      pta::check_invariant(dm, [&brp](const ta::DigitalState& s) {
        return brp.ta2_ok(s.vars);
      }).holds();
  double pa_mcpta =
      pta::pmax_reach(dm, [&brp](const ta::DigitalState& s) {
        return brp.is_fail_nok(s.locs) && brp.complete_file(s.vars);
      }).value;
  double pb_mcpta =
      pta::pmax_reach(dm, [&brp](const ta::DigitalState& s) {
        return brp.is_success(s.locs) && !brp.complete_file(s.vars);
      }).value;
  double p1_mcpta = pta::pmax_reach(dm, [&brp](const ta::DigitalState& s) {
                      return brp.no_success(s.locs);
                    }).value;
  double p2_mcpta = pta::pmax_reach(dm, [&brp](const ta::DigitalState& s) {
                      return brp.is_fail_dk(s.locs);
                    }).value;
  double emax_mcpta = pta::emax_time(dm, [&brp](const ta::DigitalState& s) {
                        return brp.is_done(s.locs);
                      }).value;

  // Dmax needs the global-clock variant of the model.
  models::BrpParams gp;
  gp.global_clock = true;
  auto brpg = models::make_brp(gp);
  auto dmg = pta::build_digital_mdp(brpg.system);
  int gt = brpg.clk_gt;
  double dmax_mcpta =
      pta::pmax_reach(dmg, [&brpg, gt](const ta::DigitalState& s) {
        return brpg.is_success(s.locs) &&
               s.clocks[static_cast<std::size_t>(gt)] <= 64;
      }).value;
  double t_mcpta = sw.seconds();

  // ---------------- modes column ------------------------------------------
  sw.reset();
  const std::size_t kRuns = 10000;
  sta::DesOptions des_opts;
  des_opts.policy = sta::SchedulerPolicy::kAlap;  // the explicitly specified
                                                  // scheduler of the paper
  auto terminal =
      [&brp](const ta::ConcreteState& s) { return brp.is_done(s.locs); };
  std::vector<sta::DesPredicate> watch = {
      [&brp](const ta::ConcreteState& s) { return brp.no_success(s.locs); },
      [&brp](const ta::ConcreteState& s) { return brp.is_fail_dk(s.locs); },
      [&brp](const ta::ConcreteState& s) {
        return brp.is_fail_nok(s.locs) && brp.complete_file(s.vars);
      },
      [&brp](const ta::ConcreteState& s) {
        return brp.is_success(s.locs) && !brp.complete_file(s.vars);
      },
  };
  std::vector<sta::DesPredicate> monitors = {
      [&brp](const ta::ConcreteState& s) { return brp.ta2_ok(s.vars); },
  };
  auto ens = sta::run_ensemble(brp.system, kRuns, 20120312, des_opts, terminal,
                               watch, monitors);
  // Dmax via simulation: success within 64 time units.
  sta::DesSimulator dmax_sim(brp.system, 4242, des_opts);
  std::size_t dmax_hits = 0;
  common::RunningStats dmax_stats;
  for (std::size_t r = 0; r < kRuns; ++r) {
    auto run = dmax_sim.run(terminal,
                            {[&brp](const ta::ConcreteState& s) {
                              return brp.is_success(s.locs);
                            }});
    bool hit = run.first_hit[0] >= 0.0 && run.first_hit[0] <= 64.0;
    if (hit) ++dmax_hits;
    dmax_stats.add(hit ? 1.0 : 0.0);
  }
  double t_modes = sw.seconds();

  auto obs = [kRuns](std::size_t hits) {
    if (hits == 0) {
      return std::string("0 (no observations in ") + std::to_string(kRuns) +
             " runs)";
    }
    double mu = static_cast<double>(hits) / static_cast<double>(kRuns);
    return mu_sigma(mu, std::sqrt(mu * (1 - mu)));
  };

  bench::Table table({"property", "mctau", "mcpta", "modes (10k runs, ALAP)"});
  table.row({"TA1", ta1_mctau ? "true" : "FALSE", ta1_mcpta ? "true" : "FALSE",
             "true (all runs)"});
  table.row({"TA2", ta2_mctau ? "true" : "FALSE", ta2_mcpta ? "true" : "FALSE",
             ens.monitor_violations[0] == 0 ? "true (all runs)" : "VIOLATED"});
  table.row({"PA", pa_mctau.to_string(), fmt(pa_mcpta), obs(ens.watch_hits[2])});
  table.row({"PB", pb_mctau.to_string(), fmt(pb_mcpta), obs(ens.watch_hits[3])});
  table.row({"P1", p1_mctau.to_string(), fmt(p1_mcpta, "%.4g"),
             obs(ens.watch_hits[0])});
  table.row({"P2", p2_mctau.to_string(), fmt(p2_mcpta, "%.4g"),
             obs(ens.watch_hits[1])});
  table.row({"Dmax", "[0, 1]", fmt(dmax_mcpta, "%.6g"),
             mu_sigma(dmax_stats.mean(), dmax_stats.stddev())});
  table.row({"Emax", "n/a", fmt(emax_mcpta, "%.5g"),
             mu_sigma(ens.end_time.mean(), ens.end_time.stddev())});
  table.print();

  std::printf(
      "\n  paper values (mcpta): P1=4.233e-4  P2=2.645e-5  Dmax=9.996e-1  "
      "Emax=33.473\n");
  std::printf("  timings: mctau %.2fs, mcpta %.2fs (MDP: %d + %d states), "
              "modes %.2fs\n",
              t_mctau, t_mcpta, dm.mdp.num_states(), dmg.mdp.num_states(),
              t_modes);
  std::printf("  total %.2fs\n", total.seconds());
  return 0;
}
