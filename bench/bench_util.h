// Shared helpers for the paper-reproduction benches: simple aligned table
// printing and wall-clock timing.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace quanta::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Minimal fixed-width table printer for paper-style result tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        if (r[c].size() > width[c]) width[c] = r[c].size();
      }
    }
    auto print_row = [&width](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        std::printf("%s%-*s", c ? "  " : "  ", static_cast<int>(width[c]),
                    cells[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
    std::printf("  %s\n", std::string(total, '-').c_str());
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, const char* f = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace quanta::bench
