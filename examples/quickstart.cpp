// Quickstart: build a small timed automaton, verify it symbolically, and
// estimate a quantitative property statistically — the two halves of the
// paper's "timing and stochastic aspects" in ~60 lines of API use.
//
//   Worker: Idle --(job?)--> Busy(x<=10) --(x>=2, done!, x:=0)--> Idle
//   Boss:   emits job!, waits for done?.
#include <cstdio>

#include "mc/query.h"
#include "smc/estimate.h"
#include "ta/model.h"

using namespace quanta;
using namespace quanta::ta;

int main() {
  // ---- 1. Model ----------------------------------------------------------
  System sys;
  int x = sys.add_clock("x");
  int job = sys.add_channel("job");
  int done = sys.add_channel("done");

  ProcessBuilder worker("Worker");
  int w_idle = worker.location("Idle");
  int w_busy = worker.location("Busy", {cc_le(x, 10)});
  worker.edge(w_idle, w_busy, {}, job, SyncKind::kReceive, {{x, 0}});
  worker.edge(w_busy, w_idle, {cc_ge(x, 2)}, done, SyncKind::kSend, {});
  sys.add_process(worker.build());

  ProcessBuilder boss("Boss");
  int b_wait = boss.location("Think", {}, false, false, /*exit_rate=*/0.5);
  int b_blocked = boss.location("Wait");
  boss.edge(b_wait, b_blocked, {}, job, SyncKind::kSend, {});
  boss.edge(b_blocked, b_wait, {}, done, SyncKind::kReceive, {});
  sys.add_process(boss.build());

  // ---- 2. Symbolic verification (UPPAAL-style) ---------------------------
  auto busy = mc::loc_pred(sys, "Worker", "Busy");
  auto r1 = mc::run_query(sys, mc::reach("E<> Worker.Busy", busy));
  auto r2 = mc::run_query(sys, mc::deadlock_free("A[] not deadlock"));
  auto r3 = mc::run_query(
      sys, mc::leads_to("Busy --> Idle", busy, mc::loc_pred(sys, "Worker", "Idle")));
  for (const auto& r : {r1, r2, r3}) {
    std::printf("  %-22s : %s   (%zu states)\n", r.name.c_str(),
                r.holds() ? "satisfied" : "NOT satisfied",
                r.stats.states_stored);
  }

  // ---- 3. Statistical model checking (UPPAAL-SMC-style) ------------------
  // The Boss thinks for an Exp(0.5)-distributed time, the Worker takes a
  // uniform 2..10 to finish. How likely are two finished jobs within 20 time
  // units?
  int finished = sys.vars().declare("finished", 0, 0, 1000);
  // Count completions by attaching an update to the worker's done edge.
  sys.process_mut(0).edges[1].update = [finished](Valuation& v) {
    if (v[finished] < 1000) v[finished] += 1;
  };

  smc::TimeBoundedReach prop;
  prop.time_bound = 20.0;
  prop.goal = [finished](const ConcreteState& s) {
    return s.vars[static_cast<std::size_t>(finished)] >= 2;
  };
  auto est = smc::estimate_probability(sys, prop, /*epsilon=*/0.02,
                                       /*delta=*/0.05, /*seed=*/42);
  std::printf(
      "\n  Pr[<=20](<> finished >= 2) ~= %.3f   (95%% CI [%.3f, %.3f], %zu runs)\n",
      est.p_hat, est.ci_low, est.ci_high, est.runs);
  return 0;
}
