// Controller synthesis (§II.A.b): instead of hand-writing the train-gate
// controller of Fig. 1, pose it as a timed game (Fig. 2-3) and let the
// solver derive a winning strategy, then inspect and verify it.
#include <cstdio>

#include "game/tiga.h"
#include "models/train_game.h"

using namespace quanta;

int main() {
  auto tg = models::make_train_game({.num_trains = 2});
  std::printf("train game: %d processes (trains + unconstrained controller)\n",
              tg.system.process_count());

  // ---- Safety game: never two trains on the bridge ------------------------
  game::TimedGame game(tg.system);
  auto safe = [&tg](const ta::DigitalState& s) { return tg.mutex_ok(s.locs); };
  auto result = game.solve_safety(safe);
  std::printf("\n[safety game] %zu game states, %zu winning\n",
              result.states_explored, result.winning_states);
  std::printf("  controller %s from the initial state\n",
              result.controller_wins() ? "WINS" : "loses");

  // ---- Inspect the strategy on a few reachable states ---------------------
  ta::DigitalSemantics sem(tg.system);
  ta::DigitalState s = sem.initial();
  std::printf("\n  strategy along one environment scenario:\n");
  auto show = [&](const ta::DigitalState& state, const char* what) {
    auto action = result.strategy.action(state);
    std::printf("    after %-28s -> strategy: %s\n", what,
                !action ? "(outside winning region)"
                : action->kind == game::ActionKind::kWait
                    ? "wait"
                    : action->move.describe(tg.system).c_str());
  };
  show(s, "start");
  // Environment: train 0 approaches.
  for (ta::Move& m : sem.enabled_moves(s)) {
    if (m.describe(tg.system).find("Train(0)") != std::string::npos) {
      s = sem.apply(s, m);
      break;
    }
  }
  show(s, "appr[0]!");
  // Environment: train 1 approaches as well — now the controller must react.
  for (ta::Move& m : sem.enabled_moves(s)) {
    if (m.describe(tg.system).find("Train(1)") != std::string::npos) {
      s = sem.apply(s, m);
      break;
    }
  }
  show(s, "appr[1]! (two trains!)");

  // ---- Independent closed-loop verification --------------------------------
  bool verified = game::verify_safety_strategy(tg.system, result.strategy, safe);
  std::printf("\n  closed-loop verification of the synthesized controller: %s\n",
              verified ? "safe in all reachable states" : "UNSAFE");

  // ---- Reachability game ----------------------------------------------------
  auto tg2 = models::make_train_game(
      {.num_trains = 2, .first_train_approaching = true});
  game::TimedGame game2(tg2.system);
  auto goal = [&tg2](const ta::DigitalState& st) {
    return st.locs[static_cast<std::size_t>(tg2.trains[0])] == tg2.l_cross;
  };
  auto reach = game2.solve_reachability(goal);
  std::printf("\n[reachability game] force train 0 across the bridge: %s "
              "(%zu winning states)\n",
              reach.controller_wins() ? "winnable" : "not winnable",
              reach.winning_states);
  std::printf("  strategy verified in closed loop: %s\n",
              game::verify_reach_strategy(tg2.system, reach.strategy, goal)
                  ? "every run reaches the goal"
                  : "FAILED");
  return 0;
}
