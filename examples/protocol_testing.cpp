// Model-based testing walkthrough (§V): from an LTS specification of a
// publish/subscribe software bus to (1) an offline ioco conformance verdict,
// (2) automatically generated and executed test campaigns with verdicts, and
// (3) online timed testing of a black box against a TA spec (TRON-style).
#include <cstdio>

#include "mbt/execute.h"
#include "mbt/ioco.h"
#include "mbt/rtioco.h"
#include "models/mbt_models.h"

using namespace quanta;
using namespace quanta::mbt;

int main() {
  Lts spec = models::make_swb_spec();
  std::printf("software-bus spec: %d states, %d labels\n", spec.state_count(),
              spec.label_count());

  // ---- 1. Offline conformance: is this implementation ioco-correct? -------
  Lts good = models::make_swb_impl();
  Lts bad = models::make_swb_mutant_missing_notify();
  auto r_good = check_ioco(good, spec);
  auto r_bad = check_ioco(bad, spec);
  std::printf("\n[ioco] conforming impl : %s\n",
              r_good.conforms ? "conforms" : "FAILS");
  std::printf("[ioco] dropped-notify  : %s", r_bad.conforms ? "conforms?!" : "fails");
  if (!r_bad.conforms) {
    std::printf(" — after <");
    for (std::size_t i = 0; i < r_bad.trace.size(); ++i) {
      std::printf("%s%s", i ? "," : "", r_bad.trace[i].c_str());
    }
    std::printf("> the spec forbids '%s'\n", r_bad.offending.c_str());
  }

  // ---- 2. Generated test campaigns ----------------------------------------
  std::printf("\n[testgen] 200 randomized test cases per implementation:\n");
  struct Entry {
    const char* name;
    Lts lts;
  };
  for (auto& e : {Entry{"conforming impl", models::make_swb_impl()},
                  Entry{"wrong-output mutant", models::make_swb_mutant_wrong_output()},
                  Entry{"dropped-notify mutant", models::make_swb_mutant_missing_notify()},
                  Entry{"unsolicited mutant", models::make_swb_mutant_unsolicited_notify()}}) {
    LtsIut iut(e.lts, 1);
    auto campaign = run_campaign(spec, iut, 200, 2);
    std::printf("  %-22s : %3zu/%zu tests failed -> verdict %s\n", e.name,
                campaign.failures, campaign.tests,
                campaign.passed() ? "PASS" : "FAIL");
  }

  // ---- 3. Online timed testing (rtioco / TRON) -----------------------------
  std::printf("\n[rtioco] online sessions against the timed light spec\n"
              "  (press? -> on! within [1,3]; press? -> off! within [0,2]):\n");
  auto timed_spec = models::make_timed_light_spec();
  struct TEntry {
    const char* name;
    TimedSpec model;
  };
  for (auto& e : {TEntry{"conforming light", models::make_timed_light_spec()},
                  TEntry{"too-late mutant", models::make_timed_light_late_mutant()},
                  TEntry{"wrong-action mutant",
                         models::make_timed_light_wrong_action_mutant()}}) {
    int pass = 0;
    OnlineVerdict worst = OnlineVerdict::kPass;
    for (int s = 0; s < 25; ++s) {
      TimedSystemIut iut(e.model, static_cast<std::uint64_t>(s));
      auto r = rtioco_online_test(timed_spec, iut, static_cast<std::uint64_t>(s));
      if (r.verdict == OnlineVerdict::kPass) {
        ++pass;
      } else {
        worst = r.verdict;
      }
    }
    const char* why = worst == OnlineVerdict::kFailDeadline ? "missed deadline"
                      : worst == OnlineVerdict::kFailOutput ? "illegal output"
                      : worst == OnlineVerdict::kFailRefusal ? "input refused"
                                                             : "-";
    std::printf("  %-22s : %2d/25 sessions passed%s%s\n", e.name, pass,
                pass == 25 ? "" : ", first failure: ", pass == 25 ? "" : why);
  }
  return 0;
}
