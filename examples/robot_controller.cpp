// Component-based design of an autonomous system (§IV): assembling the DALA
// rover's functional level in BIP, verifying it, and watching the R2C
// execution controller block unsafe interactions at run time.
#include <cstdio>

#include "bip/dfinder.h"
#include "models/dala.h"

using namespace quanta;

namespace {

void describe(const models::Dala& d) {
  std::printf("  components:");
  for (int c = 0; c < d.system.component_count(); ++c) {
    std::printf(" %s", d.system.component(c).name().c_str());
  }
  std::printf("\n  connectors:");
  for (int c = 0; c < d.system.connector_count(); ++c) {
    std::printf(" %s", d.system.connector(c).name.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto controlled = models::make_dala({.with_controller = true});
  std::printf("DALA functional level (with R2C execution controller):\n");
  describe(controlled);

  // ---- Verification ---------------------------------------------------------
  auto exact = bip::explore(controlled.system, bip::ExploreOptions{},
                            [&controlled](const bip::BipState& s) {
                              return controlled.safe(s);
                            });
  std::printf("\n  exhaustive search : %zu states, safety %s, %s\n",
              exact.stats.states_stored,
              exact.violation_found ? "VIOLATED" : "holds",
              exact.deadlock_found ? "DEADLOCK found" : "deadlock-free");
  auto df = bip::dfinder_deadlock_check(controlled.system);
  std::printf("  D-Finder          : %s (%zu interaction invariants)\n",
              df.deadlock_free ? "deadlock-freedom proven compositionally"
                               : "potential deadlocks remain",
              df.trap_invariants);

  // ---- Execution with a narrated run ----------------------------------------
  std::printf("\n  running the engine for 20 interactions:\n");
  bip::Engine engine(controlled.system);
  common::Rng rng(7);
  int shown = 0;
  while (shown < 20) {
    auto choices = engine.enabled_maximal(engine.current());
    if (choices.empty()) break;
    const auto& i = choices[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(choices.size()) - 1))];
    if (i.connector >= 0) {  // narrate only coordinated steps
      std::printf("    %2d. %s\n", ++shown,
                  i.describe(controlled.system).c_str());
    } else {
      ++shown;
    }
    engine.corrupt(engine.apply(engine.current(), i));
  }

  // ---- Fault injection comparison -------------------------------------------
  std::printf("\nFault-injection comparison (300 runs x 400 interactions):\n");
  for (bool with_controller : {false, true}) {
    auto d = models::make_dala({with_controller});
    bip::Engine e(d.system);
    common::Rng r(99);
    std::size_t unsafe = 0;
    for (int run = 0; run < 300; ++run) {
      e.reset();
      e.run(400, r, [&d, &unsafe](const bip::BipState& s) {
        if (!d.safe(s)) ++unsafe;
        return true;
      });
    }
    std::printf("  %-18s : %zu unsafe states visited\n",
                with_controller ? "with controller" : "unprotected", unsafe);
  }
  std::printf("\n  The controller enforces by construction that the antenna\n"
              "  never transmits while driving and the laser only scans with\n"
              "  the platine locked.\n");
  return 0;
}
