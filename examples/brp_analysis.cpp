// The MODEST single-formalism, multi-solution workflow (§III) on the BRP:
// one model, three analysis routes. Mirrors the narrative of the paper —
// first a quick nonprobabilistic check with mctau for model debugging, then
// the full probabilistic analysis with mcpta, then simulation with modes.
#include <cstdio>

#include "models/brp.h"
#include "pta/digital_clocks.h"
#include "pta/properties.h"
#include "sta/des.h"
#include "sta/mctau.h"
#include "sta/sta.h"

using namespace quanta;

int main() {
  auto brp = models::make_brp();  // N=16, MAX=2, TD=1
  std::printf("BRP model: %d processes, %d clocks, class %s\n",
              brp.system.process_count(), brp.system.clock_count(),
              sta::to_string(sta::classify(brp.system)));

  // ---- Step 1: mctau — fast qualitative debugging -------------------------
  std::printf("\n[mctau] overapproximating probabilistic choices...\n");
  bool ta2 = sta::mctau_invariant(
      brp.system, [&brp](const ta::SymState& s) { return brp.ta2_ok(s.vars); });
  auto p1_bound = sta::mctau_reach_probability(
      brp.system,
      [&brp](const ta::SymState& s) { return brp.no_success(s.locs); });
  std::printf("  TA2 (failure handling)  : %s\n", ta2 ? "true" : "FALSE");
  std::printf("  P1  (no success)        : %s  <- needs a probabilistic engine\n",
              p1_bound.to_string().c_str());

  // ---- Step 2: mcpta — exact probabilistic model checking -----------------
  std::printf("\n[mcpta] digital clocks -> MDP -> value iteration...\n");
  auto dm = pta::build_digital_mdp(brp.system);
  std::printf("  MDP: %d states, %lld choices\n", dm.mdp.num_states(),
              static_cast<long long>(dm.mdp.num_choices()));
  auto p1 = pta::pmax_reach(
      dm, [&brp](const ta::DigitalState& s) { return brp.no_success(s.locs); });
  auto emax = pta::emax_time(
      dm, [&brp](const ta::DigitalState& s) { return brp.is_done(s.locs); });
  std::printf("  P1   = %.6e  (analytic: %.6e)\n", p1.value, brp.analytic_p1());
  std::printf("  Emax = %.3f time units until the transfer finishes\n",
              emax.value);

  // ---- Step 3: modes — simulation with an explicit scheduler --------------
  std::printf("\n[modes] 10000 ALAP-scheduled simulation runs...\n");
  sta::DesOptions opts;
  opts.policy = sta::SchedulerPolicy::kAlap;
  auto ens = sta::run_ensemble(
      brp.system, 10000, 7, opts,
      [&brp](const ta::ConcreteState& s) { return brp.is_done(s.locs); },
      {[&brp](const ta::ConcreteState& s) { return brp.no_success(s.locs); }});
  std::printf("  transfer time: mu=%.3f sigma=%.3f (min %.1f, max %.1f)\n",
              ens.end_time.mean(), ens.end_time.stddev(), ens.end_time.min(),
              ens.end_time.max());
  std::printf("  'no success' observed in %zu/10000 runs — a rare event that\n"
              "  simulation hardly sees but mcpta quantifies exactly.\n",
              ens.watch_hits[0]);
  return 0;
}
