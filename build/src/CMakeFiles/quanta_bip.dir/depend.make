# Empty dependencies file for quanta_bip.
# This may be replaced when dependencies are built.
