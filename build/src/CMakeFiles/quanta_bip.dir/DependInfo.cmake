
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bip/codegen.cpp" "src/CMakeFiles/quanta_bip.dir/bip/codegen.cpp.o" "gcc" "src/CMakeFiles/quanta_bip.dir/bip/codegen.cpp.o.d"
  "/root/repo/src/bip/component.cpp" "src/CMakeFiles/quanta_bip.dir/bip/component.cpp.o" "gcc" "src/CMakeFiles/quanta_bip.dir/bip/component.cpp.o.d"
  "/root/repo/src/bip/dfinder.cpp" "src/CMakeFiles/quanta_bip.dir/bip/dfinder.cpp.o" "gcc" "src/CMakeFiles/quanta_bip.dir/bip/dfinder.cpp.o.d"
  "/root/repo/src/bip/engine.cpp" "src/CMakeFiles/quanta_bip.dir/bip/engine.cpp.o" "gcc" "src/CMakeFiles/quanta_bip.dir/bip/engine.cpp.o.d"
  "/root/repo/src/bip/explore.cpp" "src/CMakeFiles/quanta_bip.dir/bip/explore.cpp.o" "gcc" "src/CMakeFiles/quanta_bip.dir/bip/explore.cpp.o.d"
  "/root/repo/src/bip/flatten.cpp" "src/CMakeFiles/quanta_bip.dir/bip/flatten.cpp.o" "gcc" "src/CMakeFiles/quanta_bip.dir/bip/flatten.cpp.o.d"
  "/root/repo/src/bip/system.cpp" "src/CMakeFiles/quanta_bip.dir/bip/system.cpp.o" "gcc" "src/CMakeFiles/quanta_bip.dir/bip/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quanta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
