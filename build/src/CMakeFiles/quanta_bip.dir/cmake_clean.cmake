file(REMOVE_RECURSE
  "CMakeFiles/quanta_bip.dir/bip/codegen.cpp.o"
  "CMakeFiles/quanta_bip.dir/bip/codegen.cpp.o.d"
  "CMakeFiles/quanta_bip.dir/bip/component.cpp.o"
  "CMakeFiles/quanta_bip.dir/bip/component.cpp.o.d"
  "CMakeFiles/quanta_bip.dir/bip/dfinder.cpp.o"
  "CMakeFiles/quanta_bip.dir/bip/dfinder.cpp.o.d"
  "CMakeFiles/quanta_bip.dir/bip/engine.cpp.o"
  "CMakeFiles/quanta_bip.dir/bip/engine.cpp.o.d"
  "CMakeFiles/quanta_bip.dir/bip/explore.cpp.o"
  "CMakeFiles/quanta_bip.dir/bip/explore.cpp.o.d"
  "CMakeFiles/quanta_bip.dir/bip/flatten.cpp.o"
  "CMakeFiles/quanta_bip.dir/bip/flatten.cpp.o.d"
  "CMakeFiles/quanta_bip.dir/bip/system.cpp.o"
  "CMakeFiles/quanta_bip.dir/bip/system.cpp.o.d"
  "libquanta_bip.a"
  "libquanta_bip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_bip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
