file(REMOVE_RECURSE
  "libquanta_bip.a"
)
