file(REMOVE_RECURSE
  "CMakeFiles/quanta_game.dir/game/tiga.cpp.o"
  "CMakeFiles/quanta_game.dir/game/tiga.cpp.o.d"
  "libquanta_game.a"
  "libquanta_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
