# Empty compiler generated dependencies file for quanta_game.
# This may be replaced when dependencies are built.
