file(REMOVE_RECURSE
  "libquanta_game.a"
)
