# Empty dependencies file for quanta_cora.
# This may be replaced when dependencies are built.
