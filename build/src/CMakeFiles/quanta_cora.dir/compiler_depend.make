# Empty compiler generated dependencies file for quanta_cora.
# This may be replaced when dependencies are built.
