file(REMOVE_RECURSE
  "CMakeFiles/quanta_cora.dir/cora/priced.cpp.o"
  "CMakeFiles/quanta_cora.dir/cora/priced.cpp.o.d"
  "libquanta_cora.a"
  "libquanta_cora.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_cora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
