file(REMOVE_RECURSE
  "libquanta_cora.a"
)
