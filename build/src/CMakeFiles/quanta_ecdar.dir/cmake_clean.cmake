file(REMOVE_RECURSE
  "CMakeFiles/quanta_ecdar.dir/ecdar/compose.cpp.o"
  "CMakeFiles/quanta_ecdar.dir/ecdar/compose.cpp.o.d"
  "CMakeFiles/quanta_ecdar.dir/ecdar/refinement.cpp.o"
  "CMakeFiles/quanta_ecdar.dir/ecdar/refinement.cpp.o.d"
  "CMakeFiles/quanta_ecdar.dir/ecdar/tioa.cpp.o"
  "CMakeFiles/quanta_ecdar.dir/ecdar/tioa.cpp.o.d"
  "libquanta_ecdar.a"
  "libquanta_ecdar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_ecdar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
