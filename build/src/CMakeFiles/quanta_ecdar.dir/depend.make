# Empty dependencies file for quanta_ecdar.
# This may be replaced when dependencies are built.
