file(REMOVE_RECURSE
  "libquanta_ecdar.a"
)
