file(REMOVE_RECURSE
  "CMakeFiles/quanta_models.dir/models/brp.cpp.o"
  "CMakeFiles/quanta_models.dir/models/brp.cpp.o.d"
  "CMakeFiles/quanta_models.dir/models/dala.cpp.o"
  "CMakeFiles/quanta_models.dir/models/dala.cpp.o.d"
  "CMakeFiles/quanta_models.dir/models/mbt_models.cpp.o"
  "CMakeFiles/quanta_models.dir/models/mbt_models.cpp.o.d"
  "CMakeFiles/quanta_models.dir/models/train_game.cpp.o"
  "CMakeFiles/quanta_models.dir/models/train_game.cpp.o.d"
  "CMakeFiles/quanta_models.dir/models/train_gate.cpp.o"
  "CMakeFiles/quanta_models.dir/models/train_gate.cpp.o.d"
  "libquanta_models.a"
  "libquanta_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
