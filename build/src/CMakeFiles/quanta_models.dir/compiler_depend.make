# Empty compiler generated dependencies file for quanta_models.
# This may be replaced when dependencies are built.
