file(REMOVE_RECURSE
  "libquanta_models.a"
)
