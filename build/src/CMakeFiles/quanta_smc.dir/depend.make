# Empty dependencies file for quanta_smc.
# This may be replaced when dependencies are built.
