
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smc/cdf.cpp" "src/CMakeFiles/quanta_smc.dir/smc/cdf.cpp.o" "gcc" "src/CMakeFiles/quanta_smc.dir/smc/cdf.cpp.o.d"
  "/root/repo/src/smc/estimate.cpp" "src/CMakeFiles/quanta_smc.dir/smc/estimate.cpp.o" "gcc" "src/CMakeFiles/quanta_smc.dir/smc/estimate.cpp.o.d"
  "/root/repo/src/smc/simulator.cpp" "src/CMakeFiles/quanta_smc.dir/smc/simulator.cpp.o" "gcc" "src/CMakeFiles/quanta_smc.dir/smc/simulator.cpp.o.d"
  "/root/repo/src/smc/sprt.cpp" "src/CMakeFiles/quanta_smc.dir/smc/sprt.cpp.o" "gcc" "src/CMakeFiles/quanta_smc.dir/smc/sprt.cpp.o.d"
  "/root/repo/src/smc/trace.cpp" "src/CMakeFiles/quanta_smc.dir/smc/trace.cpp.o" "gcc" "src/CMakeFiles/quanta_smc.dir/smc/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quanta_ta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_dbm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
