file(REMOVE_RECURSE
  "libquanta_smc.a"
)
