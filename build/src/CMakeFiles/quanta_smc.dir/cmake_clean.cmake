file(REMOVE_RECURSE
  "CMakeFiles/quanta_smc.dir/smc/cdf.cpp.o"
  "CMakeFiles/quanta_smc.dir/smc/cdf.cpp.o.d"
  "CMakeFiles/quanta_smc.dir/smc/estimate.cpp.o"
  "CMakeFiles/quanta_smc.dir/smc/estimate.cpp.o.d"
  "CMakeFiles/quanta_smc.dir/smc/simulator.cpp.o"
  "CMakeFiles/quanta_smc.dir/smc/simulator.cpp.o.d"
  "CMakeFiles/quanta_smc.dir/smc/sprt.cpp.o"
  "CMakeFiles/quanta_smc.dir/smc/sprt.cpp.o.d"
  "CMakeFiles/quanta_smc.dir/smc/trace.cpp.o"
  "CMakeFiles/quanta_smc.dir/smc/trace.cpp.o.d"
  "libquanta_smc.a"
  "libquanta_smc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_smc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
