# Empty dependencies file for quanta_mbt.
# This may be replaced when dependencies are built.
