file(REMOVE_RECURSE
  "CMakeFiles/quanta_mbt.dir/mbt/execute.cpp.o"
  "CMakeFiles/quanta_mbt.dir/mbt/execute.cpp.o.d"
  "CMakeFiles/quanta_mbt.dir/mbt/ioco.cpp.o"
  "CMakeFiles/quanta_mbt.dir/mbt/ioco.cpp.o.d"
  "CMakeFiles/quanta_mbt.dir/mbt/lts.cpp.o"
  "CMakeFiles/quanta_mbt.dir/mbt/lts.cpp.o.d"
  "CMakeFiles/quanta_mbt.dir/mbt/rtioco.cpp.o"
  "CMakeFiles/quanta_mbt.dir/mbt/rtioco.cpp.o.d"
  "CMakeFiles/quanta_mbt.dir/mbt/suspension.cpp.o"
  "CMakeFiles/quanta_mbt.dir/mbt/suspension.cpp.o.d"
  "CMakeFiles/quanta_mbt.dir/mbt/testgen.cpp.o"
  "CMakeFiles/quanta_mbt.dir/mbt/testgen.cpp.o.d"
  "libquanta_mbt.a"
  "libquanta_mbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_mbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
