# Empty compiler generated dependencies file for quanta_mbt.
# This may be replaced when dependencies are built.
