file(REMOVE_RECURSE
  "libquanta_mbt.a"
)
