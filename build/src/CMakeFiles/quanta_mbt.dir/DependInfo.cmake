
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mbt/execute.cpp" "src/CMakeFiles/quanta_mbt.dir/mbt/execute.cpp.o" "gcc" "src/CMakeFiles/quanta_mbt.dir/mbt/execute.cpp.o.d"
  "/root/repo/src/mbt/ioco.cpp" "src/CMakeFiles/quanta_mbt.dir/mbt/ioco.cpp.o" "gcc" "src/CMakeFiles/quanta_mbt.dir/mbt/ioco.cpp.o.d"
  "/root/repo/src/mbt/lts.cpp" "src/CMakeFiles/quanta_mbt.dir/mbt/lts.cpp.o" "gcc" "src/CMakeFiles/quanta_mbt.dir/mbt/lts.cpp.o.d"
  "/root/repo/src/mbt/rtioco.cpp" "src/CMakeFiles/quanta_mbt.dir/mbt/rtioco.cpp.o" "gcc" "src/CMakeFiles/quanta_mbt.dir/mbt/rtioco.cpp.o.d"
  "/root/repo/src/mbt/suspension.cpp" "src/CMakeFiles/quanta_mbt.dir/mbt/suspension.cpp.o" "gcc" "src/CMakeFiles/quanta_mbt.dir/mbt/suspension.cpp.o.d"
  "/root/repo/src/mbt/testgen.cpp" "src/CMakeFiles/quanta_mbt.dir/mbt/testgen.cpp.o" "gcc" "src/CMakeFiles/quanta_mbt.dir/mbt/testgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quanta_ta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_dbm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
