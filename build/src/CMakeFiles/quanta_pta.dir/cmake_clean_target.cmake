file(REMOVE_RECURSE
  "libquanta_pta.a"
)
