file(REMOVE_RECURSE
  "CMakeFiles/quanta_pta.dir/pta/digital_clocks.cpp.o"
  "CMakeFiles/quanta_pta.dir/pta/digital_clocks.cpp.o.d"
  "CMakeFiles/quanta_pta.dir/pta/properties.cpp.o"
  "CMakeFiles/quanta_pta.dir/pta/properties.cpp.o.d"
  "CMakeFiles/quanta_pta.dir/pta/pta.cpp.o"
  "CMakeFiles/quanta_pta.dir/pta/pta.cpp.o.d"
  "libquanta_pta.a"
  "libquanta_pta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_pta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
