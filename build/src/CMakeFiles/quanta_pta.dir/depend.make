# Empty dependencies file for quanta_pta.
# This may be replaced when dependencies are built.
