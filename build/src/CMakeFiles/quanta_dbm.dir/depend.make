# Empty dependencies file for quanta_dbm.
# This may be replaced when dependencies are built.
