file(REMOVE_RECURSE
  "CMakeFiles/quanta_dbm.dir/dbm/dbm.cpp.o"
  "CMakeFiles/quanta_dbm.dir/dbm/dbm.cpp.o.d"
  "CMakeFiles/quanta_dbm.dir/dbm/federation.cpp.o"
  "CMakeFiles/quanta_dbm.dir/dbm/federation.cpp.o.d"
  "libquanta_dbm.a"
  "libquanta_dbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_dbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
