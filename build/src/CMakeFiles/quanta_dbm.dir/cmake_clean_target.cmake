file(REMOVE_RECURSE
  "libquanta_dbm.a"
)
