# Empty compiler generated dependencies file for quanta_ta.
# This may be replaced when dependencies are built.
