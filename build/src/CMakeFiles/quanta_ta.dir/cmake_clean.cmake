file(REMOVE_RECURSE
  "CMakeFiles/quanta_ta.dir/ta/concrete.cpp.o"
  "CMakeFiles/quanta_ta.dir/ta/concrete.cpp.o.d"
  "CMakeFiles/quanta_ta.dir/ta/digital.cpp.o"
  "CMakeFiles/quanta_ta.dir/ta/digital.cpp.o.d"
  "CMakeFiles/quanta_ta.dir/ta/export.cpp.o"
  "CMakeFiles/quanta_ta.dir/ta/export.cpp.o.d"
  "CMakeFiles/quanta_ta.dir/ta/model.cpp.o"
  "CMakeFiles/quanta_ta.dir/ta/model.cpp.o.d"
  "CMakeFiles/quanta_ta.dir/ta/symbolic.cpp.o"
  "CMakeFiles/quanta_ta.dir/ta/symbolic.cpp.o.d"
  "libquanta_ta.a"
  "libquanta_ta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_ta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
