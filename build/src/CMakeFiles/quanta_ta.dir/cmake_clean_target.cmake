file(REMOVE_RECURSE
  "libquanta_ta.a"
)
