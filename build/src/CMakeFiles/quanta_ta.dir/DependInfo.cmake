
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ta/concrete.cpp" "src/CMakeFiles/quanta_ta.dir/ta/concrete.cpp.o" "gcc" "src/CMakeFiles/quanta_ta.dir/ta/concrete.cpp.o.d"
  "/root/repo/src/ta/digital.cpp" "src/CMakeFiles/quanta_ta.dir/ta/digital.cpp.o" "gcc" "src/CMakeFiles/quanta_ta.dir/ta/digital.cpp.o.d"
  "/root/repo/src/ta/export.cpp" "src/CMakeFiles/quanta_ta.dir/ta/export.cpp.o" "gcc" "src/CMakeFiles/quanta_ta.dir/ta/export.cpp.o.d"
  "/root/repo/src/ta/model.cpp" "src/CMakeFiles/quanta_ta.dir/ta/model.cpp.o" "gcc" "src/CMakeFiles/quanta_ta.dir/ta/model.cpp.o.d"
  "/root/repo/src/ta/symbolic.cpp" "src/CMakeFiles/quanta_ta.dir/ta/symbolic.cpp.o" "gcc" "src/CMakeFiles/quanta_ta.dir/ta/symbolic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quanta_dbm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
