# Empty compiler generated dependencies file for quanta_sta.
# This may be replaced when dependencies are built.
