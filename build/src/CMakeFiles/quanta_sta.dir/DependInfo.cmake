
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sta/des.cpp" "src/CMakeFiles/quanta_sta.dir/sta/des.cpp.o" "gcc" "src/CMakeFiles/quanta_sta.dir/sta/des.cpp.o.d"
  "/root/repo/src/sta/mctau.cpp" "src/CMakeFiles/quanta_sta.dir/sta/mctau.cpp.o" "gcc" "src/CMakeFiles/quanta_sta.dir/sta/mctau.cpp.o.d"
  "/root/repo/src/sta/sta.cpp" "src/CMakeFiles/quanta_sta.dir/sta/sta.cpp.o" "gcc" "src/CMakeFiles/quanta_sta.dir/sta/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quanta_pta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_mdp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_ta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_dbm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
