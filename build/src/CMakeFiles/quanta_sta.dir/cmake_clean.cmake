file(REMOVE_RECURSE
  "CMakeFiles/quanta_sta.dir/sta/des.cpp.o"
  "CMakeFiles/quanta_sta.dir/sta/des.cpp.o.d"
  "CMakeFiles/quanta_sta.dir/sta/mctau.cpp.o"
  "CMakeFiles/quanta_sta.dir/sta/mctau.cpp.o.d"
  "CMakeFiles/quanta_sta.dir/sta/sta.cpp.o"
  "CMakeFiles/quanta_sta.dir/sta/sta.cpp.o.d"
  "libquanta_sta.a"
  "libquanta_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
