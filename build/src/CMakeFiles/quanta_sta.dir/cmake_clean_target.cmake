file(REMOVE_RECURSE
  "libquanta_sta.a"
)
