file(REMOVE_RECURSE
  "CMakeFiles/quanta_common.dir/common/expr.cpp.o"
  "CMakeFiles/quanta_common.dir/common/expr.cpp.o.d"
  "CMakeFiles/quanta_common.dir/common/rng.cpp.o"
  "CMakeFiles/quanta_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/quanta_common.dir/common/stats.cpp.o"
  "CMakeFiles/quanta_common.dir/common/stats.cpp.o.d"
  "libquanta_common.a"
  "libquanta_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
