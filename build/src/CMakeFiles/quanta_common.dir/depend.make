# Empty dependencies file for quanta_common.
# This may be replaced when dependencies are built.
