file(REMOVE_RECURSE
  "libquanta_common.a"
)
