file(REMOVE_RECURSE
  "libquanta_mdp.a"
)
