
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdp/expected_reward.cpp" "src/CMakeFiles/quanta_mdp.dir/mdp/expected_reward.cpp.o" "gcc" "src/CMakeFiles/quanta_mdp.dir/mdp/expected_reward.cpp.o.d"
  "/root/repo/src/mdp/graph_analysis.cpp" "src/CMakeFiles/quanta_mdp.dir/mdp/graph_analysis.cpp.o" "gcc" "src/CMakeFiles/quanta_mdp.dir/mdp/graph_analysis.cpp.o.d"
  "/root/repo/src/mdp/mdp.cpp" "src/CMakeFiles/quanta_mdp.dir/mdp/mdp.cpp.o" "gcc" "src/CMakeFiles/quanta_mdp.dir/mdp/mdp.cpp.o.d"
  "/root/repo/src/mdp/value_iteration.cpp" "src/CMakeFiles/quanta_mdp.dir/mdp/value_iteration.cpp.o" "gcc" "src/CMakeFiles/quanta_mdp.dir/mdp/value_iteration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quanta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
