file(REMOVE_RECURSE
  "CMakeFiles/quanta_mdp.dir/mdp/expected_reward.cpp.o"
  "CMakeFiles/quanta_mdp.dir/mdp/expected_reward.cpp.o.d"
  "CMakeFiles/quanta_mdp.dir/mdp/graph_analysis.cpp.o"
  "CMakeFiles/quanta_mdp.dir/mdp/graph_analysis.cpp.o.d"
  "CMakeFiles/quanta_mdp.dir/mdp/mdp.cpp.o"
  "CMakeFiles/quanta_mdp.dir/mdp/mdp.cpp.o.d"
  "CMakeFiles/quanta_mdp.dir/mdp/value_iteration.cpp.o"
  "CMakeFiles/quanta_mdp.dir/mdp/value_iteration.cpp.o.d"
  "libquanta_mdp.a"
  "libquanta_mdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_mdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
