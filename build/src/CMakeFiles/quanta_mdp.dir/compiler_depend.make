# Empty compiler generated dependencies file for quanta_mdp.
# This may be replaced when dependencies are built.
