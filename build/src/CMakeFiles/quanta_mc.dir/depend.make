# Empty dependencies file for quanta_mc.
# This may be replaced when dependencies are built.
