
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/deadlock.cpp" "src/CMakeFiles/quanta_mc.dir/mc/deadlock.cpp.o" "gcc" "src/CMakeFiles/quanta_mc.dir/mc/deadlock.cpp.o.d"
  "/root/repo/src/mc/liveness.cpp" "src/CMakeFiles/quanta_mc.dir/mc/liveness.cpp.o" "gcc" "src/CMakeFiles/quanta_mc.dir/mc/liveness.cpp.o.d"
  "/root/repo/src/mc/query.cpp" "src/CMakeFiles/quanta_mc.dir/mc/query.cpp.o" "gcc" "src/CMakeFiles/quanta_mc.dir/mc/query.cpp.o.d"
  "/root/repo/src/mc/reachability.cpp" "src/CMakeFiles/quanta_mc.dir/mc/reachability.cpp.o" "gcc" "src/CMakeFiles/quanta_mc.dir/mc/reachability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quanta_ta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_dbm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
