file(REMOVE_RECURSE
  "CMakeFiles/quanta_mc.dir/mc/deadlock.cpp.o"
  "CMakeFiles/quanta_mc.dir/mc/deadlock.cpp.o.d"
  "CMakeFiles/quanta_mc.dir/mc/liveness.cpp.o"
  "CMakeFiles/quanta_mc.dir/mc/liveness.cpp.o.d"
  "CMakeFiles/quanta_mc.dir/mc/query.cpp.o"
  "CMakeFiles/quanta_mc.dir/mc/query.cpp.o.d"
  "CMakeFiles/quanta_mc.dir/mc/reachability.cpp.o"
  "CMakeFiles/quanta_mc.dir/mc/reachability.cpp.o.d"
  "libquanta_mc.a"
  "libquanta_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quanta_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
