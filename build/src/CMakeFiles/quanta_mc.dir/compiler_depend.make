# Empty compiler generated dependencies file for quanta_mc.
# This may be replaced when dependencies are built.
