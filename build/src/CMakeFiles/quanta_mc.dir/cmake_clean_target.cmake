file(REMOVE_RECURSE
  "libquanta_mc.a"
)
