
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_smc.cpp" "tests/CMakeFiles/test_smc.dir/test_smc.cpp.o" "gcc" "tests/CMakeFiles/test_smc.dir/test_smc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quanta_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_smc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_pta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_mdp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_cora.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_bip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_mbt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_ecdar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_ta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_dbm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quanta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
