file(REMOVE_RECURSE
  "CMakeFiles/test_smc.dir/test_smc.cpp.o"
  "CMakeFiles/test_smc.dir/test_smc.cpp.o.d"
  "test_smc"
  "test_smc.pdb"
  "test_smc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
