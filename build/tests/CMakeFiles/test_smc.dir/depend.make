# Empty dependencies file for test_smc.
# This may be replaced when dependencies are built.
