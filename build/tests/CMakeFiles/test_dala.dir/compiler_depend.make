# Empty compiler generated dependencies file for test_dala.
# This may be replaced when dependencies are built.
