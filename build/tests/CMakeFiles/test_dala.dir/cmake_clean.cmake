file(REMOVE_RECURSE
  "CMakeFiles/test_dala.dir/test_dala.cpp.o"
  "CMakeFiles/test_dala.dir/test_dala.cpp.o.d"
  "test_dala"
  "test_dala.pdb"
  "test_dala[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dala.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
