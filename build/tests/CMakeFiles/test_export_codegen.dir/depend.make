# Empty dependencies file for test_export_codegen.
# This may be replaced when dependencies are built.
