file(REMOVE_RECURSE
  "CMakeFiles/test_export_codegen.dir/test_export_codegen.cpp.o"
  "CMakeFiles/test_export_codegen.dir/test_export_codegen.cpp.o.d"
  "test_export_codegen"
  "test_export_codegen.pdb"
  "test_export_codegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_export_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
