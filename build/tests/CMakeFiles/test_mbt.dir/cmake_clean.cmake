file(REMOVE_RECURSE
  "CMakeFiles/test_mbt.dir/test_mbt.cpp.o"
  "CMakeFiles/test_mbt.dir/test_mbt.cpp.o.d"
  "test_mbt"
  "test_mbt.pdb"
  "test_mbt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
