# Empty dependencies file for test_mbt.
# This may be replaced when dependencies are built.
