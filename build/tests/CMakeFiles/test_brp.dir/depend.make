# Empty dependencies file for test_brp.
# This may be replaced when dependencies are built.
