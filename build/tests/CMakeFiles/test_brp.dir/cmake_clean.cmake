file(REMOVE_RECURSE
  "CMakeFiles/test_brp.dir/test_brp.cpp.o"
  "CMakeFiles/test_brp.dir/test_brp.cpp.o.d"
  "test_brp"
  "test_brp.pdb"
  "test_brp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_brp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
