file(REMOVE_RECURSE
  "CMakeFiles/test_ecdar.dir/test_ecdar.cpp.o"
  "CMakeFiles/test_ecdar.dir/test_ecdar.cpp.o.d"
  "test_ecdar"
  "test_ecdar.pdb"
  "test_ecdar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecdar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
