# Empty compiler generated dependencies file for test_ecdar.
# This may be replaced when dependencies are built.
