file(REMOVE_RECURSE
  "CMakeFiles/test_mc_traingate.dir/test_mc_traingate.cpp.o"
  "CMakeFiles/test_mc_traingate.dir/test_mc_traingate.cpp.o.d"
  "test_mc_traingate"
  "test_mc_traingate.pdb"
  "test_mc_traingate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_traingate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
