# Empty dependencies file for test_mc_traingate.
# This may be replaced when dependencies are built.
