# Empty dependencies file for test_dbm.
# This may be replaced when dependencies are built.
