file(REMOVE_RECURSE
  "CMakeFiles/test_dbm.dir/test_dbm.cpp.o"
  "CMakeFiles/test_dbm.dir/test_dbm.cpp.o.d"
  "test_dbm"
  "test_dbm.pdb"
  "test_dbm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
