# Empty dependencies file for test_cora.
# This may be replaced when dependencies are built.
