file(REMOVE_RECURSE
  "CMakeFiles/test_cora.dir/test_cora.cpp.o"
  "CMakeFiles/test_cora.dir/test_cora.cpp.o.d"
  "test_cora"
  "test_cora.pdb"
  "test_cora[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
