# Empty compiler generated dependencies file for test_bip.
# This may be replaced when dependencies are built.
