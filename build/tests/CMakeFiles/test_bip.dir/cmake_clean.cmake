file(REMOVE_RECURSE
  "CMakeFiles/test_bip.dir/test_bip.cpp.o"
  "CMakeFiles/test_bip.dir/test_bip.cpp.o.d"
  "test_bip"
  "test_bip.pdb"
  "test_bip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
