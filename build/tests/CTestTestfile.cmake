# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_dbm[1]_include.cmake")
include("/root/repo/build/tests/test_federation[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_ta[1]_include.cmake")
include("/root/repo/build/tests/test_mc_traingate[1]_include.cmake")
include("/root/repo/build/tests/test_smc[1]_include.cmake")
include("/root/repo/build/tests/test_mdp[1]_include.cmake")
include("/root/repo/build/tests/test_pta[1]_include.cmake")
include("/root/repo/build/tests/test_sta[1]_include.cmake")
include("/root/repo/build/tests/test_brp[1]_include.cmake")
include("/root/repo/build/tests/test_game[1]_include.cmake")
include("/root/repo/build/tests/test_cora[1]_include.cmake")
include("/root/repo/build/tests/test_bip[1]_include.cmake")
include("/root/repo/build/tests/test_dala[1]_include.cmake")
include("/root/repo/build/tests/test_mbt[1]_include.cmake")
include("/root/repo/build/tests/test_ecdar[1]_include.cmake")
include("/root/repo/build/tests/test_cross_engine[1]_include.cmake")
include("/root/repo/build/tests/test_export_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_engine_edges[1]_include.cmake")
