# Empty dependencies file for robot_controller.
# This may be replaced when dependencies are built.
