file(REMOVE_RECURSE
  "CMakeFiles/robot_controller.dir/robot_controller.cpp.o"
  "CMakeFiles/robot_controller.dir/robot_controller.cpp.o.d"
  "robot_controller"
  "robot_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robot_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
