file(REMOVE_RECURSE
  "CMakeFiles/controller_synthesis.dir/controller_synthesis.cpp.o"
  "CMakeFiles/controller_synthesis.dir/controller_synthesis.cpp.o.d"
  "controller_synthesis"
  "controller_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
