# Empty dependencies file for controller_synthesis.
# This may be replaced when dependencies are built.
