file(REMOVE_RECURSE
  "CMakeFiles/brp_analysis.dir/brp_analysis.cpp.o"
  "CMakeFiles/brp_analysis.dir/brp_analysis.cpp.o.d"
  "brp_analysis"
  "brp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
