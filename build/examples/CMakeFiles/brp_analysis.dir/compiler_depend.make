# Empty compiler generated dependencies file for brp_analysis.
# This may be replaced when dependencies are built.
