file(REMOVE_RECURSE
  "CMakeFiles/protocol_testing.dir/protocol_testing.cpp.o"
  "CMakeFiles/protocol_testing.dir/protocol_testing.cpp.o.d"
  "protocol_testing"
  "protocol_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
