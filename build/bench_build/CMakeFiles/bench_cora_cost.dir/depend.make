# Empty dependencies file for bench_cora_cost.
# This may be replaced when dependencies are built.
