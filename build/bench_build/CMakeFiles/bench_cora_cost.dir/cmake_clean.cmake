file(REMOVE_RECURSE
  "../bench/bench_cora_cost"
  "../bench/bench_cora_cost.pdb"
  "CMakeFiles/bench_cora_cost.dir/bench_cora_cost.cpp.o"
  "CMakeFiles/bench_cora_cost.dir/bench_cora_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cora_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
