# Empty dependencies file for bench_trains_smc_cdf.
# This may be replaced when dependencies are built.
