file(REMOVE_RECURSE
  "../bench/bench_trains_smc_cdf"
  "../bench/bench_trains_smc_cdf.pdb"
  "CMakeFiles/bench_trains_smc_cdf.dir/bench_trains_smc_cdf.cpp.o"
  "CMakeFiles/bench_trains_smc_cdf.dir/bench_trains_smc_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trains_smc_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
