# Empty compiler generated dependencies file for bench_trains_mc.
# This may be replaced when dependencies are built.
