file(REMOVE_RECURSE
  "../bench/bench_trains_mc"
  "../bench/bench_trains_mc.pdb"
  "CMakeFiles/bench_trains_mc.dir/bench_trains_mc.cpp.o"
  "CMakeFiles/bench_trains_mc.dir/bench_trains_mc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trains_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
