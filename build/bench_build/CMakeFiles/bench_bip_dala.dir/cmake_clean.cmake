file(REMOVE_RECURSE
  "../bench/bench_bip_dala"
  "../bench/bench_bip_dala.pdb"
  "CMakeFiles/bench_bip_dala.dir/bench_bip_dala.cpp.o"
  "CMakeFiles/bench_bip_dala.dir/bench_bip_dala.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bip_dala.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
