# Empty compiler generated dependencies file for bench_bip_dala.
# This may be replaced when dependencies are built.
