# Empty compiler generated dependencies file for bench_mbt_mutants.
# This may be replaced when dependencies are built.
