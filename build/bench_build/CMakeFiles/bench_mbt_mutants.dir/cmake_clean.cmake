file(REMOVE_RECURSE
  "../bench/bench_mbt_mutants"
  "../bench/bench_mbt_mutants.pdb"
  "CMakeFiles/bench_mbt_mutants.dir/bench_mbt_mutants.cpp.o"
  "CMakeFiles/bench_mbt_mutants.dir/bench_mbt_mutants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mbt_mutants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
