# Empty dependencies file for bench_ablation_vi.
# This may be replaced when dependencies are built.
