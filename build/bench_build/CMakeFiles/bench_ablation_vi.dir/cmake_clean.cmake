file(REMOVE_RECURSE
  "../bench/bench_ablation_vi"
  "../bench/bench_ablation_vi.pdb"
  "CMakeFiles/bench_ablation_vi.dir/bench_ablation_vi.cpp.o"
  "CMakeFiles/bench_ablation_vi.dir/bench_ablation_vi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
