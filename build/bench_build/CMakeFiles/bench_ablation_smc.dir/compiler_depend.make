# Empty compiler generated dependencies file for bench_ablation_smc.
# This may be replaced when dependencies are built.
