file(REMOVE_RECURSE
  "../bench/bench_ablation_smc"
  "../bench/bench_ablation_smc.pdb"
  "CMakeFiles/bench_ablation_smc.dir/bench_ablation_smc.cpp.o"
  "CMakeFiles/bench_ablation_smc.dir/bench_ablation_smc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_smc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
