# Empty dependencies file for bench_ecdar.
# This may be replaced when dependencies are built.
