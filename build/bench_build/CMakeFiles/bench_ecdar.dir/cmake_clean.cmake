file(REMOVE_RECURSE
  "../bench/bench_ecdar"
  "../bench/bench_ecdar.pdb"
  "CMakeFiles/bench_ecdar.dir/bench_ecdar.cpp.o"
  "CMakeFiles/bench_ecdar.dir/bench_ecdar.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ecdar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
