# Empty dependencies file for bench_brp_sweep.
# This may be replaced when dependencies are built.
