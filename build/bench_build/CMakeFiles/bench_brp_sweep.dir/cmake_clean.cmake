file(REMOVE_RECURSE
  "../bench/bench_brp_sweep"
  "../bench/bench_brp_sweep.pdb"
  "CMakeFiles/bench_brp_sweep.dir/bench_brp_sweep.cpp.o"
  "CMakeFiles/bench_brp_sweep.dir/bench_brp_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_brp_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
