file(REMOVE_RECURSE
  "../bench/bench_ablation_mc"
  "../bench/bench_ablation_mc.pdb"
  "CMakeFiles/bench_ablation_mc.dir/bench_ablation_mc.cpp.o"
  "CMakeFiles/bench_ablation_mc.dir/bench_ablation_mc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
