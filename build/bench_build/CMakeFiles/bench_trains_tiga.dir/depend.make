# Empty dependencies file for bench_trains_tiga.
# This may be replaced when dependencies are built.
