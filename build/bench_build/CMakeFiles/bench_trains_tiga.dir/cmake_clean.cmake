file(REMOVE_RECURSE
  "../bench/bench_trains_tiga"
  "../bench/bench_trains_tiga.pdb"
  "CMakeFiles/bench_trains_tiga.dir/bench_trains_tiga.cpp.o"
  "CMakeFiles/bench_trains_tiga.dir/bench_trains_tiga.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trains_tiga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
