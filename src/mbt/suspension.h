// Suspension automaton: the tau-closed determinization of an LTS extended
// with the quiescence action delta — the structure over which suspension
// traces, out-sets and the ioco relation are defined.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "mbt/lts.h"

namespace quanta::mbt {

/// Label id used for quiescence observations (distinct from all LTS labels).
inline constexpr int kDelta = -2;

class SuspensionAutomaton {
 public:
  explicit SuspensionAutomaton(const Lts& lts);

  const Lts& lts() const { return *lts_; }
  int initial() const { return initial_; }
  int state_count() const { return static_cast<int>(sets_.size()); }

  /// Underlying LTS state set of a suspension state.
  const std::set<int>& states_of(int s) const { return sets_.at(static_cast<std::size_t>(s)); }

  /// Successor under an input/output label or kDelta; -1 if undefined.
  int step(int s, int label) const;

  /// The out-set: enabled outputs plus kDelta if some member is quiescent.
  std::vector<int> out(int s) const;

  /// Inputs enabled (in at least one member state).
  std::vector<int> enabled_inputs(int s) const;

 private:
  std::set<int> tau_closure(std::set<int> states) const;
  int intern(std::set<int> states);

  const Lts* lts_;
  int initial_ = 0;
  std::vector<std::set<int>> sets_;
  std::map<std::set<int>, int> index_;
  std::vector<std::map<int, int>> edges_;  ///< per state: label -> successor
};

}  // namespace quanta::mbt
