#include "mbt/lts.h"

#include <stdexcept>

namespace quanta::mbt {

int Lts::add_state(std::string name) {
  if (name.empty()) name = "s" + std::to_string(state_names_.size());
  state_names_.push_back(std::move(name));
  return static_cast<int>(state_names_.size()) - 1;
}

int Lts::add_input(std::string name) {
  labels_.push_back(Label{std::move(name), LabelKind::kInput});
  return static_cast<int>(labels_.size()) - 1;
}

int Lts::add_output(std::string name) {
  labels_.push_back(Label{std::move(name), LabelKind::kOutput});
  return static_cast<int>(labels_.size()) - 1;
}

void Lts::add_transition(int source, int target, int label) {
  transitions_.push_back(Transition{source, target, label});
}

std::vector<int> Lts::inputs() const {
  std::vector<int> result;
  for (int l = 0; l < label_count(); ++l) {
    if (is_input(l)) result.push_back(l);
  }
  return result;
}

std::vector<int> Lts::outputs() const {
  std::vector<int> result;
  for (int l = 0; l < label_count(); ++l) {
    if (is_output(l)) result.push_back(l);
  }
  return result;
}

std::vector<int> Lts::post(int state, int label) const {
  std::vector<int> result;
  for (const auto& t : transitions_) {
    if (t.source == state && t.label == label) result.push_back(t.target);
  }
  return result;
}

bool Lts::quiescent(int state) const {
  for (const auto& t : transitions_) {
    if (t.source != state) continue;
    if (t.label == kTau || is_output(t.label)) return false;
  }
  return true;
}

bool Lts::input_enabled() const {
  for (int s = 0; s < state_count(); ++s) {
    for (int l : inputs()) {
      if (post(s, l).empty()) return false;
    }
  }
  return true;
}

void Lts::validate() const {
  if (state_names_.empty()) throw std::invalid_argument("Lts: no states");
  if (initial_ < 0 || initial_ >= state_count()) {
    throw std::invalid_argument("Lts: bad initial state");
  }
  for (const auto& t : transitions_) {
    if (t.source < 0 || t.source >= state_count() || t.target < 0 ||
        t.target >= state_count()) {
      throw std::invalid_argument("Lts: dangling state");
    }
    if (t.label != kTau && (t.label < 0 || t.label >= label_count())) {
      throw std::invalid_argument("Lts: dangling label");
    }
  }
}

}  // namespace quanta::mbt
