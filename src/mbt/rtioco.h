// Online timed conformance testing in the style of UPPAAL-TRON (§II bullet 3
// and §V): the tester tracks the set of specification states consistent with
// the observed timed trace and, on the fly, stimulates the implementation
// with spec-allowed inputs, checks every output against the estimate, and
// detects missed deadlines (the spec forces an output that never came).
// This is the rtioco relation in its discrete-time (digital clocks) form.
//
// The specification is a single ta::Process over a ta::System whose channels
// are partitioned into inputs and outputs; internal edges (no channel) are
// unobservable. The implementation is a black box behind the TimedIut
// interface, advancing in unit time steps.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ta/model.h"

namespace quanta::mbt {

/// An open timed specification: one TA whose channel ids are actions.
struct TimedSpec {
  ta::System system;          ///< must contain exactly one process
  std::set<int> input_actions;  ///< channel ids the tester may send
  // All other channels appearing on edges are outputs.

  bool is_input(int channel) const { return input_actions.count(channel) > 0; }
};

/// The tester's view of a timed black box.
class TimedIut {
 public:
  virtual ~TimedIut() = default;
  virtual void reset() = 0;
  /// Outputs the implementation emits at the current instant (each call may
  /// return one more action; empty optional = nothing further right now).
  virtual std::optional<int> poll_output() = 0;
  /// Feeds an input at the current instant; false = refused.
  virtual bool input(int action) = 0;
  /// Advances the implementation by one time unit.
  virtual void tick() = 0;
};

/// Reference implementation adapter: simulates a (possibly mutated) single-
/// process TA, emitting outputs at a random legal instant in their window.
class TimedSystemIut : public TimedIut {
 public:
  TimedSystemIut(const TimedSpec& model, std::uint64_t seed);
  void reset() override;
  std::optional<int> poll_output() override;
  bool input(int action) override;
  void tick() override;

 private:
  bool must_act_now() const;
  void take_taus();

  const TimedSpec* model_;
  common::Rng rng_;
  int loc_ = 0;
  ta::Valuation vars_;
  std::vector<std::int32_t> clocks_;
  std::vector<std::int32_t> caps_;
};

enum class OnlineVerdict { kPass, kFailOutput, kFailDeadline, kFailRefusal };

struct OnlineTestResult {
  OnlineVerdict verdict = OnlineVerdict::kPass;
  std::size_t steps = 0;          ///< time units elapsed
  std::vector<std::string> log;   ///< observed/emitted events with timestamps
};

struct OnlineTestOptions {
  std::size_t max_time = 100;
  double input_probability = 0.3;  ///< chance to stimulate at each instant
};

/// Runs one online test session of `iut` against `spec`.
OnlineTestResult rtioco_online_test(const TimedSpec& spec, TimedIut& iut,
                                    std::uint64_t seed,
                                    const OnlineTestOptions& opts = {});

}  // namespace quanta::mbt
