#include "mbt/rtioco.h"

#include <deque>
#include <stdexcept>

namespace quanta::mbt {

namespace {

using ta::Edge;
using ta::SyncKind;

struct SpecState {
  int loc = 0;
  ta::Valuation vars;
  std::vector<std::int32_t> clocks;

  auto operator<=>(const SpecState&) const = default;
};

/// Shared stepping logic for the single-process open TA.
class OpenStepper {
 public:
  explicit OpenStepper(const TimedSpec& spec) : spec_(&spec) {
    if (spec.system.process_count() != 1) {
      throw std::invalid_argument("TimedSpec must contain exactly one process");
    }
    spec.system.validate();
    if (spec.system.has_probabilistic()) {
      throw std::invalid_argument("TimedSpec must be non-probabilistic");
    }
    caps_ = spec.system.max_constants();
    for (auto& c : caps_) c += 1;
  }

  const ta::Process& process() const { return spec_->system.process(0); }

  SpecState initial() const {
    SpecState s;
    s.loc = process().initial;
    s.vars = spec_->system.vars().initial();
    s.clocks.assign(static_cast<std::size_t>(spec_->system.dim()), 0);
    return s;
  }

  bool constraint_ok(const ta::ClockConstraint& c,
                     const std::vector<std::int32_t>& clocks) const {
    if (c.bound >= dbm::kInf) return true;
    std::int64_t diff = static_cast<std::int64_t>(clocks[c.i]) - clocks[c.j];
    std::int64_t m = dbm::bound_value(c.bound);
    return dbm::bound_is_strict(c.bound) ? diff < m : diff <= m;
  }

  bool edge_enabled(const SpecState& s, const Edge& e) const {
    if (e.source != s.loc) return false;
    if (e.data_guard && !e.data_guard(s.vars)) return false;
    for (const auto& c : e.guard) {
      if (!constraint_ok(c, s.clocks)) return false;
    }
    return true;
  }

  bool invariant_ok(const SpecState& s) const {
    for (const auto& c : process().locations[static_cast<std::size_t>(s.loc)].invariant) {
      if (!constraint_ok(c, s.clocks)) return false;
    }
    return true;
  }

  SpecState apply(const SpecState& s, const Edge& e) const {
    SpecState next = s;
    next.loc = e.target;
    for (const auto& [clock, value] : e.resets) {
      next.clocks[static_cast<std::size_t>(clock)] = value;
    }
    if (e.update) {
      e.update(next.vars);
      spec_->system.vars().check_bounds(next.vars);
    }
    return next;
  }

  SpecState tick(const SpecState& s) const {
    SpecState next = s;
    for (std::size_t i = 1; i < next.clocks.size(); ++i) {
      if (next.clocks[i] < caps_[i]) next.clocks[i] += 1;
    }
    return next;
  }

  /// Closure under unobservable (internal) edges.
  std::set<SpecState> closure(std::set<SpecState> states) const {
    std::deque<SpecState> work(states.begin(), states.end());
    while (!work.empty()) {
      SpecState s = std::move(work.front());
      work.pop_front();
      for (const Edge& e : process().edges) {
        if (e.sync != SyncKind::kNone) continue;
        if (!edge_enabled(s, e)) continue;
        SpecState n = apply(s, e);
        if (states.insert(n).second) work.push_back(std::move(n));
      }
    }
    return states;
  }

  std::set<SpecState> after_action(const std::set<SpecState>& states,
                                   int channel, SyncKind kind) const {
    std::set<SpecState> next;
    for (const SpecState& s : states) {
      for (const Edge& e : process().edges) {
        if (e.sync != kind || e.channel != channel) continue;
        if (edge_enabled(s, e)) next.insert(apply(s, e));
      }
    }
    return closure(std::move(next));
  }

  std::set<SpecState> after_tick(const std::set<SpecState>& states) const {
    std::set<SpecState> next;
    for (const SpecState& s : states) {
      SpecState n = tick(s);
      if (invariant_ok(n)) next.insert(std::move(n));
    }
    return closure(std::move(next));
  }

  std::set<int> enabled_inputs(const std::set<SpecState>& states) const {
    std::set<int> result;
    for (const SpecState& s : states) {
      for (const Edge& e : process().edges) {
        if (e.sync == SyncKind::kReceive && edge_enabled(s, e)) {
          result.insert(e.channel);
        }
      }
    }
    return result;
  }

 private:
  const TimedSpec* spec_;
  std::vector<std::int32_t> caps_;
};

}  // namespace

// ---- TimedSystemIut --------------------------------------------------------

TimedSystemIut::TimedSystemIut(const TimedSpec& model, std::uint64_t seed)
    : model_(&model), rng_(seed) {
  if (model.system.process_count() != 1) {
    throw std::invalid_argument("TimedSystemIut: single-process model required");
  }
  caps_ = model.system.max_constants();
  for (auto& c : caps_) c += 1;
  reset();
}

void TimedSystemIut::reset() {
  loc_ = model_->system.process(0).initial;
  vars_ = model_->system.vars().initial();
  clocks_.assign(static_cast<std::size_t>(model_->system.dim()), 0);
}

namespace {

bool iut_constraint_ok(const ta::ClockConstraint& c,
                       const std::vector<std::int32_t>& clocks) {
  if (c.bound >= dbm::kInf) return true;
  std::int64_t diff = static_cast<std::int64_t>(clocks[c.i]) - clocks[c.j];
  std::int64_t m = dbm::bound_value(c.bound);
  return dbm::bound_is_strict(c.bound) ? diff < m : diff <= m;
}

bool iut_edge_enabled(const ta::Edge& e, int loc, const ta::Valuation& vars,
                      const std::vector<std::int32_t>& clocks) {
  if (e.source != loc) return false;
  if (e.data_guard && !e.data_guard(vars)) return false;
  for (const auto& c : e.guard) {
    if (!iut_constraint_ok(c, clocks)) return false;
  }
  return true;
}

}  // namespace

bool TimedSystemIut::must_act_now() const {
  // True when a unit delay would violate the current location's invariant.
  const auto& loc = model_->system.process(0).locations[static_cast<std::size_t>(loc_)];
  std::vector<std::int32_t> next = clocks_;
  for (std::size_t i = 1; i < next.size(); ++i) {
    if (next[i] < caps_[i]) next[i] += 1;
  }
  for (const auto& c : loc.invariant) {
    if (!iut_constraint_ok(c, next)) return true;
  }
  return false;
}

void TimedSystemIut::take_taus() {
  for (int guard = 0; guard < 16; ++guard) {
    std::vector<const ta::Edge*> taus;
    for (const auto& e : model_->system.process(0).edges) {
      if (e.sync == ta::SyncKind::kNone &&
          iut_edge_enabled(e, loc_, vars_, clocks_)) {
        taus.push_back(&e);
      }
    }
    if (taus.empty() || (!must_act_now() && rng_.bernoulli(0.5))) return;
    const ta::Edge* e = taus[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(taus.size()) - 1))];
    loc_ = e->target;
    for (const auto& [clock, value] : e->resets) clocks_[static_cast<std::size_t>(clock)] = value;
    if (e->update) e->update(vars_);
  }
}

std::optional<int> TimedSystemIut::poll_output() {
  take_taus();
  std::vector<const ta::Edge*> outs;
  for (const auto& e : model_->system.process(0).edges) {
    if (e.sync == ta::SyncKind::kSend &&
        iut_edge_enabled(e, loc_, vars_, clocks_)) {
      outs.push_back(&e);
    }
  }
  if (outs.empty()) return std::nullopt;
  // Emit now when forced by the invariant, otherwise sometimes wait.
  if (!must_act_now() && rng_.bernoulli(0.6)) return std::nullopt;
  const ta::Edge* e = outs[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<int>(outs.size()) - 1))];
  loc_ = e->target;
  for (const auto& [clock, value] : e->resets) clocks_[static_cast<std::size_t>(clock)] = value;
  if (e->update) e->update(vars_);
  return e->channel;
}

bool TimedSystemIut::input(int action) {
  take_taus();
  std::vector<const ta::Edge*> candidates;
  for (const auto& e : model_->system.process(0).edges) {
    if (e.sync == ta::SyncKind::kReceive && e.channel == action &&
        iut_edge_enabled(e, loc_, vars_, clocks_)) {
      candidates.push_back(&e);
    }
  }
  if (candidates.empty()) return false;
  const ta::Edge* e = candidates[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<int>(candidates.size()) - 1))];
  loc_ = e->target;
  for (const auto& [clock, value] : e->resets) clocks_[static_cast<std::size_t>(clock)] = value;
  if (e->update) e->update(vars_);
  return true;
}

void TimedSystemIut::tick() {
  for (std::size_t i = 1; i < clocks_.size(); ++i) {
    if (clocks_[i] < caps_[i]) clocks_[i] += 1;
  }
}

// ---- Online tester ----------------------------------------------------------

OnlineTestResult rtioco_online_test(const TimedSpec& spec, TimedIut& iut,
                                    std::uint64_t seed,
                                    const OnlineTestOptions& opts) {
  OpenStepper stepper(spec);
  common::Rng rng(seed);
  OnlineTestResult result;
  iut.reset();

  std::set<SpecState> estimate = stepper.closure({stepper.initial()});
  auto action_name = [&spec](int channel) {
    return spec.system.channel(channel).name;
  };

  for (std::size_t t = 0; t < opts.max_time; ++t) {
    result.steps = t;
    // Zero-duration phase: drain outputs, possibly interleaving one input.
    bool may_send = true;
    for (int rounds = 0; rounds < 64; ++rounds) {
      auto out = iut.poll_output();
      if (out) {
        result.log.push_back("t=" + std::to_string(t) + " out " +
                             action_name(*out));
        estimate = stepper.after_action(estimate, *out, SyncKind::kSend);
        if (estimate.empty()) {
          result.verdict = OnlineVerdict::kFailOutput;
          return result;
        }
        continue;
      }
      if (may_send && rng.bernoulli(opts.input_probability)) {
        auto inputs = stepper.enabled_inputs(estimate);
        if (!inputs.empty()) {
          auto it = inputs.begin();
          std::advance(it,
                       rng.uniform_int(0, static_cast<int>(inputs.size()) - 1));
          int action = *it;
          result.log.push_back("t=" + std::to_string(t) + " in  " +
                               action_name(action));
          may_send = false;
          if (!iut.input(action)) {
            result.verdict = OnlineVerdict::kFailRefusal;
            return result;
          }
          estimate = stepper.after_action(estimate, action, SyncKind::kReceive);
          if (estimate.empty()) {
            result.verdict = OnlineVerdict::kFailOutput;
            return result;
          }
          continue;  // the input may trigger same-instant outputs
        }
      }
      break;  // quiet: let time pass
    }
    // Advance time by one unit on both sides.
    iut.tick();
    estimate = stepper.after_tick(estimate);
    if (estimate.empty()) {
      // The specification forced an output before this instant.
      result.verdict = OnlineVerdict::kFailDeadline;
      return result;
    }
  }
  result.verdict = OnlineVerdict::kPass;
  result.steps = opts.max_time;
  return result;
}

}  // namespace quanta::mbt
