#include "mbt/testgen.h"

#include <optional>

namespace quanta::mbt {

TestGenerator::TestGenerator(const Lts& spec, std::uint64_t seed,
                             const TestGenOptions& opts)
    : sa_(spec), opts_(opts), rng_(seed) {}

TestCase TestGenerator::generate() {
  TestCase tc;
  tc.root = build(tc, sa_.initial(), 0);
  return tc;
}

int TestGenerator::build(TestCase& tc, int spec_state, int depth) {
  int idx = static_cast<int>(tc.nodes.size());
  tc.nodes.emplace_back();

  if (depth >= opts_.max_depth || rng_.bernoulli(opts_.stop_probability)) {
    tc.nodes[static_cast<std::size_t>(idx)].kind = TestNode::Kind::kPass;
    return idx;
  }

  auto inputs = sa_.enabled_inputs(spec_state);
  bool stimulate = !inputs.empty() && rng_.bernoulli(opts_.stimulate_bias);

  TestNode node;
  if (stimulate) {
    node.kind = TestNode::Kind::kStimulate;
    node.stimulus = inputs[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(inputs.size()) - 1))];
    int next = sa_.step(spec_state, node.stimulus);
    node.after_stimulus = build(tc, next, depth + 1);
    // The implementation may emit an output before accepting the stimulus;
    // outputs allowed by the spec keep the test sound.
    for (int o : sa_.out(spec_state)) {
      if (o == kDelta) continue;  // quiescence cannot race a stimulus
      node.on_output[o] = build(tc, sa_.step(spec_state, o), depth + 1);
    }
  } else {
    node.kind = TestNode::Kind::kObserve;
    for (int o : sa_.out(spec_state)) {
      if (o == kDelta) {
        node.on_quiescence = build(tc, sa_.step(spec_state, kDelta), depth + 1);
      } else {
        node.on_output[o] = build(tc, sa_.step(spec_state, o), depth + 1);
      }
    }
  }
  tc.nodes[static_cast<std::size_t>(idx)] = std::move(node);
  return idx;
}

std::vector<TestCase> generate_suite(const Lts& spec, std::size_t n,
                                     std::uint64_t seed, exec::Executor& ex,
                                     const TestGenOptions& opts,
                                     exec::RunTelemetry* telemetry) {
  const common::RngStream streams(seed);
  // One generator per worker (each owns the determinized suspension
  // automaton); each slot is only touched by its own worker.
  std::vector<std::optional<TestGenerator>> gens(ex.workers());
  std::vector<TestCase> suite(n);
  ex.for_each(
      0, n,
      [&](std::uint64_t i, exec::Executor::WorkerContext& ctx) {
        std::optional<TestGenerator>& gen = gens[ctx.worker_id];
        if (!gen) gen.emplace(spec, 0, opts);
        gen->reseed(streams.seed_for(i));
        TestCase tc = gen->generate();
        ctx.telemetry->sim_steps += tc.nodes.size();
        suite[static_cast<std::size_t>(i)] = std::move(tc);
      },
      /*cancel=*/nullptr, telemetry);
  return suite;
}

std::vector<TestCase> generate_suite(const Lts& spec, std::size_t n,
                                     std::uint64_t seed,
                                     const TestGenOptions& opts) {
  return generate_suite(spec, n, seed, exec::global_executor(), opts);
}

}  // namespace quanta::mbt
