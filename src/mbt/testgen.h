// Test-case generation from a specification LTS — Tretmans' algorithm: a
// test case is a finite tree that at every point either stops (pass),
// stimulates the implementation with an input, or observes; observed
// outputs allowed by the spec continue the test, others fail. Generated
// test suites are sound by construction (they fail only non-ioco
// implementations) and exhaustive in the limit.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "exec/executor.h"
#include "mbt/suspension.h"

namespace quanta::mbt {

struct TestNode {
  enum class Kind { kPass, kStimulate, kObserve };
  Kind kind = Kind::kPass;
  // kStimulate:
  int stimulus = -1;
  int after_stimulus = -1;
  /// Outputs that may race the stimulus; missing outputs mean failure.
  std::map<int, int> on_output;  ///< also used by kObserve
  /// kObserve: continuation when quiescence is observed (-1 = fail).
  int on_quiescence = -1;
};

/// A tree-shaped test case; node 0 is the root.
struct TestCase {
  std::vector<TestNode> nodes;
  int root = 0;
};

struct TestGenOptions {
  int max_depth = 12;
  /// Probability of choosing to stimulate (vs observe) when both possible.
  double stimulate_bias = 0.5;
  /// Probability of stopping early at any point (keeps trees finite even
  /// without the depth bound).
  double stop_probability = 0.05;
};

class TestGenerator {
 public:
  TestGenerator(const Lts& spec, std::uint64_t seed,
                const TestGenOptions& opts = {});

  /// Generates one randomized test case from the specification.
  TestCase generate();

  /// Restarts the random stream (used by the parallel suite generator to
  /// derive test i from RngStream(seed).seed_for(i) while reusing one
  /// generator — and its suspension automaton — per worker).
  void reseed(std::uint64_t seed) { rng_ = common::Rng(seed); }

  const SuspensionAutomaton& suspension() const { return sa_; }

 private:
  int build(TestCase& tc, int spec_state, int depth);

  SuspensionAutomaton sa_;
  TestGenOptions opts_;
  common::Rng rng_;
};

/// Generates `n` randomized test cases in parallel on the executor. Test i
/// depends only on (spec, seed, i, opts) — the suite is bit-identical for
/// every worker count, and each worker builds the suspension automaton once.
std::vector<TestCase> generate_suite(const Lts& spec, std::size_t n,
                                     std::uint64_t seed, exec::Executor& ex,
                                     const TestGenOptions& opts = {},
                                     exec::RunTelemetry* telemetry = nullptr);

/// Same, on the process-wide executor (QUANTA_JOBS workers).
std::vector<TestCase> generate_suite(const Lts& spec, std::size_t n,
                                     std::uint64_t seed,
                                     const TestGenOptions& opts = {});

}  // namespace quanta::mbt
