// The ioco implementation relation (Input/Output Conformance, Tretmans):
//   impl ioco spec  iff  for all suspension traces sigma of spec:
//       out(impl after sigma)  subset-of  out(spec after sigma).
// Decided exactly by a product walk of the two suspension automata.
#pragma once

#include <string>

#include "mbt/suspension.h"

namespace quanta::mbt {

struct IocoResult {
  bool conforms = false;
  /// When !conforms: a witnessing suspension trace of the spec after which
  /// the implementation shows a non-allowed output (or quiescence).
  std::vector<std::string> trace;
  std::string offending;  ///< the output (or "delta") not allowed by the spec
};

/// Checks impl ioco spec. The implementation should be input-enabled (the
/// ioco testing hypothesis); enabledness is checked per visited state and
/// non-input-enabled implementations are still handled by skipping the
/// missing inputs.
IocoResult check_ioco(const Lts& impl, const Lts& spec);

}  // namespace quanta::mbt
