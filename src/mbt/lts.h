// Labelled transition systems with inputs and outputs — the semantic domain
// of the ioco testing theory (§V, Tretmans). Labels are partitioned into
// inputs (controlled by the tester), outputs (produced by the system), and
// the internal action tau.
#pragma once

#include <string>
#include <vector>

namespace quanta::mbt {

inline constexpr int kTau = -1;

enum class LabelKind { kInput, kOutput };

class Lts {
 public:
  int add_state(std::string name = {});
  /// Declares an input (tester -> system) label; returns its id.
  int add_input(std::string name);
  /// Declares an output (system -> tester) label; returns its id.
  int add_output(std::string name);
  /// Adds a transition; label may be kTau.
  void add_transition(int source, int target, int label);
  void set_initial(int s) { initial_ = s; }

  int state_count() const { return static_cast<int>(state_names_.size()); }
  int label_count() const { return static_cast<int>(labels_.size()); }
  int initial() const { return initial_; }
  const std::string& state_name(int s) const { return state_names_.at(static_cast<std::size_t>(s)); }
  const std::string& label_name(int l) const { return labels_.at(static_cast<std::size_t>(l)).name; }
  bool is_input(int label) const {
    return labels_.at(static_cast<std::size_t>(label)).kind == LabelKind::kInput;
  }
  bool is_output(int label) const { return !is_input(label); }
  std::vector<int> inputs() const;
  std::vector<int> outputs() const;

  struct Transition {
    int source, target, label;
  };
  const std::vector<Transition>& transitions() const { return transitions_; }
  /// Targets of `state` under `label` (may be kTau).
  std::vector<int> post(int state, int label) const;

  /// True iff the state has no enabled output or tau transition (quiescent).
  bool quiescent(int state) const;

  /// True iff every state accepts every input (the ioco testing hypothesis
  /// for implementations).
  bool input_enabled() const;

  void validate() const;

 private:
  struct Label {
    std::string name;
    LabelKind kind;
  };
  std::vector<std::string> state_names_;
  std::vector<Label> labels_;
  std::vector<Transition> transitions_;
  int initial_ = 0;
};

}  // namespace quanta::mbt
