// Test execution: driving a black-box implementation under test (IUT)
// through a test case and producing a verdict, plus an LTS-backed IUT
// adapter so the framework can be exercised (and mutation-tested) offline.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "mbt/testgen.h"

namespace quanta::mbt {

/// The tester's view of a black-box implementation (the testing hypothesis:
/// it behaves like some input-enabled LTS).
class Iut {
 public:
  virtual ~Iut() = default;
  virtual void reset() = 0;
  /// Feeds an input. Returns false if the IUT refused it (a violation of
  /// input-enabledness; treated as a failure by the executor).
  virtual bool stimulus(int label) = 0;
  /// Observes the next output, or nullopt when the IUT is quiescent.
  virtual std::optional<int> observe() = 0;
};

/// IUT simulated from an LTS, resolving nondeterminism randomly.
class LtsIut : public Iut {
 public:
  LtsIut(const Lts& lts, std::uint64_t seed) : lts_(&lts), rng_(seed) {
    reset();
  }
  void reset() override { state_ = lts_->initial(); }
  bool stimulus(int label) override;
  std::optional<int> observe() override;

 private:
  void take_taus();

  const Lts* lts_;
  common::Rng rng_;
  int state_ = 0;
};

enum class Verdict { kPass, kFail };

/// Runs one test case against the IUT (which is reset first).
Verdict execute_test(const TestCase& test, Iut& iut);

struct CampaignResult {
  std::size_t tests = 0;
  std::size_t failures = 0;
  bool passed() const { return failures == 0; }
};

/// Generates and executes `n` randomized tests from the spec. The suite is
/// generated in parallel (see generate_suite); execution against the single
/// stateful IUT is sequential.
CampaignResult run_campaign(const Lts& spec, Iut& iut, std::size_t n,
                            std::uint64_t seed, const TestGenOptions& opts,
                            exec::Executor& ex);
CampaignResult run_campaign(const Lts& spec, Iut& iut, std::size_t n,
                            std::uint64_t seed, const TestGenOptions& opts = {});

}  // namespace quanta::mbt
