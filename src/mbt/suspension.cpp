#include "mbt/suspension.h"

#include <deque>

namespace quanta::mbt {

std::set<int> SuspensionAutomaton::tau_closure(std::set<int> states) const {
  std::deque<int> work(states.begin(), states.end());
  while (!work.empty()) {
    int s = work.front();
    work.pop_front();
    for (int t : lts_->post(s, kTau)) {
      if (states.insert(t).second) work.push_back(t);
    }
  }
  return states;
}

int SuspensionAutomaton::intern(std::set<int> states) {
  auto [it, inserted] = index_.try_emplace(states, static_cast<int>(sets_.size()));
  if (inserted) {
    sets_.push_back(std::move(states));
    edges_.emplace_back();
  }
  return it->second;
}

SuspensionAutomaton::SuspensionAutomaton(const Lts& lts) : lts_(&lts) {
  lts.validate();
  initial_ = intern(tau_closure({lts.initial()}));
  // Breadth-first determinization over inputs, outputs and delta.
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    const std::set<int> current = sets_[i];
    // Visible labels.
    for (int l = 0; l < lts.label_count(); ++l) {
      std::set<int> next;
      for (int s : current) {
        for (int t : lts.post(s, l)) next.insert(t);
      }
      if (next.empty()) continue;
      edges_[i][l] = intern(tau_closure(std::move(next)));
    }
    // Quiescence: delta loops on the quiescent member states.
    std::set<int> quiet;
    for (int s : current) {
      if (lts.quiescent(s)) quiet.insert(s);
    }
    if (!quiet.empty()) {
      edges_[i][kDelta] = intern(tau_closure(std::move(quiet)));
    }
  }
}

int SuspensionAutomaton::step(int s, int label) const {
  const auto& edges = edges_.at(static_cast<std::size_t>(s));
  auto it = edges.find(label);
  return it == edges.end() ? -1 : it->second;
}

std::vector<int> SuspensionAutomaton::out(int s) const {
  std::vector<int> result;
  for (const auto& [label, target] : edges_.at(static_cast<std::size_t>(s))) {
    if (label == kDelta || lts_->is_output(label)) result.push_back(label);
  }
  return result;
}

std::vector<int> SuspensionAutomaton::enabled_inputs(int s) const {
  std::vector<int> result;
  for (const auto& [label, target] : edges_.at(static_cast<std::size_t>(s))) {
    if (label != kDelta && lts_->is_input(label)) result.push_back(label);
  }
  return result;
}

}  // namespace quanta::mbt
