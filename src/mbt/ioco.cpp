#include "mbt/ioco.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace quanta::mbt {

namespace {

std::string label_str(const Lts& lts, int label) {
  if (label == kDelta) return "delta";
  return lts.label_name(label);
}

}  // namespace

IocoResult check_ioco(const Lts& impl, const Lts& spec) {
  SuspensionAutomaton sa_impl(impl);
  SuspensionAutomaton sa_spec(spec);

  struct Node {
    int impl_state;
    int spec_state;
    int parent;
    int label;  ///< label taken to reach this node
  };
  std::vector<Node> nodes;
  std::map<std::pair<int, int>, bool> seen;
  std::deque<int> work;

  auto push = [&](int is, int ss, int parent, int label) {
    if (seen.emplace(std::make_pair(is, ss), true).second) {
      nodes.push_back(Node{is, ss, parent, label});
      work.push_back(static_cast<int>(nodes.size()) - 1);
    }
  };
  push(sa_impl.initial(), sa_spec.initial(), -1, kTau);

  IocoResult result;
  while (!work.empty()) {
    int idx = work.front();
    work.pop_front();
    const Node node = nodes[static_cast<std::size_t>(idx)];

    // Conformance check at this suspension trace.
    for (int o : sa_impl.out(node.impl_state)) {
      if (sa_spec.step(node.spec_state, o) < 0) {
        result.conforms = false;
        result.offending = label_str(impl, o);
        for (int cur = idx; cur >= 0;
             cur = nodes[static_cast<std::size_t>(cur)].parent) {
          int l = nodes[static_cast<std::size_t>(cur)].label;
          if (l != kTau) result.trace.push_back(label_str(impl, l));
        }
        std::reverse(result.trace.begin(), result.trace.end());
        return result;
      }
    }

    // Extend the common suspension traces of the spec.
    for (int o : sa_impl.out(node.impl_state)) {
      int ss = sa_spec.step(node.spec_state, o);
      int is = sa_impl.step(node.impl_state, o);
      if (ss >= 0 && is >= 0) push(is, ss, idx, o);
    }
    for (int a : sa_spec.enabled_inputs(node.spec_state)) {
      int is = sa_impl.step(node.impl_state, a);
      int ss = sa_spec.step(node.spec_state, a);
      if (is >= 0 && ss >= 0) push(is, ss, idx, a);
    }
  }
  result.conforms = true;
  return result;
}

}  // namespace quanta::mbt
