#include "mbt/execute.h"

namespace quanta::mbt {

void LtsIut::take_taus() {
  for (;;) {
    auto taus = lts_->post(state_, kTau);
    if (taus.empty()) return;
    // Nondeterministically stop before a tau if an observable action is also
    // possible; bias towards making progress.
    if (rng_.bernoulli(0.2)) return;
    state_ = taus[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(taus.size()) - 1))];
  }
}

bool LtsIut::stimulus(int label) {
  take_taus();
  auto targets = lts_->post(state_, label);
  if (targets.empty()) return false;
  state_ = targets[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<int>(targets.size()) - 1))];
  return true;
}

std::optional<int> LtsIut::observe() {
  take_taus();
  // Collect enabled outputs (after the taus we decided to take).
  std::vector<int> outs;
  for (int l : lts_->outputs()) {
    if (!lts_->post(state_, l).empty()) outs.push_back(l);
  }
  // Resolve remaining taus eagerly to find outputs if none are enabled here.
  while (outs.empty()) {
    auto taus = lts_->post(state_, kTau);
    if (taus.empty()) break;
    state_ = taus[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(taus.size()) - 1))];
    for (int l : lts_->outputs()) {
      if (!lts_->post(state_, l).empty()) outs.push_back(l);
    }
  }
  if (outs.empty()) return std::nullopt;  // quiescent
  int label = outs[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<int>(outs.size()) - 1))];
  auto targets = lts_->post(state_, label);
  state_ = targets[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<int>(targets.size()) - 1))];
  return label;
}

Verdict execute_test(const TestCase& test, Iut& iut) {
  iut.reset();
  int node_idx = test.root;
  for (;;) {
    const TestNode& node = test.nodes[static_cast<std::size_t>(node_idx)];
    switch (node.kind) {
      case TestNode::Kind::kPass:
        return Verdict::kPass;
      case TestNode::Kind::kStimulate: {
        // Give the IUT a chance to produce an output racing the stimulus.
        if (!iut.stimulus(node.stimulus)) {
          // Refusal: check whether an output explains it.
          auto out = iut.observe();
          if (out && node.on_output.count(*out)) {
            node_idx = node.on_output.at(*out);
            continue;
          }
          return Verdict::kFail;
        }
        node_idx = node.after_stimulus;
        continue;
      }
      case TestNode::Kind::kObserve: {
        auto out = iut.observe();
        if (!out) {
          if (node.on_quiescence < 0) return Verdict::kFail;
          node_idx = node.on_quiescence;
          continue;
        }
        auto it = node.on_output.find(*out);
        if (it == node.on_output.end()) return Verdict::kFail;
        node_idx = it->second;
        continue;
      }
    }
  }
}

CampaignResult run_campaign(const Lts& spec, Iut& iut, std::size_t n,
                            std::uint64_t seed, const TestGenOptions& opts,
                            exec::Executor& ex) {
  // Generation is embarrassingly parallel (test i depends only on (seed, i));
  // execution stays sequential because the IUT is a single stateful box.
  std::vector<TestCase> suite = generate_suite(spec, n, seed, ex, opts);
  CampaignResult result;
  for (const TestCase& tc : suite) {
    ++result.tests;
    if (execute_test(tc, iut) == Verdict::kFail) ++result.failures;
  }
  return result;
}

CampaignResult run_campaign(const Lts& spec, Iut& iut, std::size_t n,
                            std::uint64_t seed, const TestGenOptions& opts) {
  return run_campaign(spec, iut, n, seed, opts, exec::global_executor());
}

}  // namespace quanta::mbt
