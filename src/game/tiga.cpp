#include "game/tiga.h"

#include "ckpt/snapshot_core.h"
#include "ckpt/snapshot_ta.h"
#include "common/fault.h"
#include "core/explore.h"

namespace quanta::game {

namespace {

bool move_controllable(const ta::System& sys, const ta::Move& m) {
  for (const auto& [p, e] : m.participants) {
    if (!sys.process(p).edges.at(static_cast<std::size_t>(e)).controllable) {
      return false;
    }
  }
  return true;
}

constexpr std::uint32_t kObjReach = 1;
constexpr std::uint32_t kObjSafety = 2;

/// Extra section of a Provider::kGame checkpoint: the attractor fixpoint's
/// progress — objective kind, completed sweeps, the winning flags and (for
/// reachability) the witness actions. Written whole on every save during the
/// solving phase; the last occurrence along the chain wins.
constexpr std::uint32_t kSecGameFixpoint = 5;

}  // namespace

std::optional<StrategyAction> Strategy::action(const ta::DigitalState& s) const {
  auto it = actions_.find(s);
  if (it == actions_.end()) return std::nullopt;
  return it->second;
}

TimedGame::TimedGame(const ta::System& sys, core::SearchLimits limits,
                     ckpt::Options checkpoint,
                     core::ExplorationObserver* observer)
    : sem_(sys),
      limits_(std::move(limits)),
      checkpoint_(std::move(checkpoint)),
      observer_(observer) {
  limits_.validate("game.tiga");
}

std::uint64_t TimedGame::solve_fingerprint(std::uint32_t objective,
                                           const GamePredicate& pred) const {
  ckpt::Fingerprint fp;
  fp.mix(0x54494741u)  // "TIGA"
      .mix(ckpt::fingerprint(sem_.system()))
      .mix(objective)
      .mix_str(pred.canonical());
  return fp.digest();
}

bool TimedGame::save_snapshot(std::uint64_t explored, std::uint64_t transitions,
                              const core::Worklist::Entry* pending,
                              std::uint32_t objective,
                              const FixpointState* fix) {
  if (!chain_.has_value()) return false;
  std::vector<core::Worklist::Entry> cur;
  {
    const std::vector<core::Worklist::Entry> body = work_.snapshot();
    cur.reserve(body.size() + 1);
    if (pending != nullptr) cur.push_back(*pending);  // BFS pops front first
    cur.insert(cur.end(), body.begin(), body.end());
  }

  auto write_nodes = [this](ckpt::io::Writer& w, std::size_t from) {
    w.u64(store_.size());
    w.u64(from);
    w.u64(expanded_ - from);
    for (std::size_t i = from; i < expanded_; ++i) {
      const Node& node = nodes_[i];
      w.u32(static_cast<std::uint32_t>(node.ctrl.size()));
      for (const auto& [to, move] : node.ctrl) {
        w.i32(to);
        ckpt::write_move(w, move);
      }
      w.u32(static_cast<std::uint32_t>(node.unctrl.size()));
      for (std::int32_t to : node.unctrl) w.i32(to);
      w.i32(node.tick);
    }
  };
  auto write_fixpoint = [fix, objective](ckpt::io::Writer& w) {
    w.u32(objective);
    w.u64(fix->sweeps);
    w.u64(fix->win.size());
    for (char c : fix->win) w.u8(static_cast<std::uint8_t>(c));
    w.u64(fix->act.size());
    for (const StrategyAction& a : fix->act) {
      w.u8(a.kind == ActionKind::kMove ? 1 : 0);
      ckpt::write_move(w, a.move);
    }
  };

  bool ok;
  if (chain_->want_base()) {
    ckpt::Snapshot snap;
    {
      ckpt::io::Writer w;
      ckpt::write_store(w, store_, ckpt::write_digital_state);
      snap.add_section(ckpt::kSecStore, std::move(w));
    }
    {
      ckpt::io::Writer w;
      ckpt::write_worklist(w, work_, pending, nullptr);
      snap.add_section(ckpt::kSecWorklist, std::move(w));
    }
    {
      ckpt::io::Writer w;
      ckpt::write_search_stats(w, explored, transitions);
      snap.add_section(ckpt::kSecSearchStats, std::move(w));
    }
    {
      ckpt::io::Writer w;
      write_nodes(w, 0);
      snap.add_section(ckpt::kSecEnginePayload, std::move(w));
    }
    if (fix != nullptr) {
      ckpt::io::Writer w;
      write_fixpoint(w);
      snap.add_section(kSecGameFixpoint, std::move(w));
    }
    ok = chain_->save_base(std::move(snap));
  } else {
    std::vector<ckpt::Section> secs;
    {
      ckpt::io::Writer w;
      ckpt::write_store_delta(w, store_, saved_states_, /*base_journal=*/0,
                              ckpt::write_digital_state);
      secs.push_back(ckpt::Section{ckpt::kSecStoreDelta, w.take()});
    }
    {
      ckpt::io::Writer w;
      ckpt::write_worklist_delta(w, prev_entries_, cur);
      secs.push_back(ckpt::Section{ckpt::kSecWorklistDelta, w.take()});
    }
    {
      ckpt::io::Writer w;
      ckpt::write_search_stats(w, explored, transitions);
      secs.push_back(ckpt::Section{ckpt::kSecSearchStats, w.take()});
    }
    {
      ckpt::io::Writer w;
      write_nodes(w, saved_expanded_);
      secs.push_back(ckpt::Section{ckpt::kSecEnginePayload, w.take()});
    }
    if (fix != nullptr) {
      ckpt::io::Writer w;
      write_fixpoint(w);
      secs.push_back(ckpt::Section{kSecGameFixpoint, w.take()});
    }
    ok = chain_->save_delta_link(std::move(secs));
  }
  if (ok) {
    saved_states_ = store_.size();
    saved_expanded_ = expanded_;
    prev_entries_ = std::move(cur);
  }
  return ok;
}

bool TimedGame::restore_from(const ckpt::Chain& chain, std::uint32_t objective,
                             FixpointState* fix) {
  const ckpt::Section* sec_store = chain.base.find(ckpt::kSecStore);
  const ckpt::Section* sec_work = chain.base.find(ckpt::kSecWorklist);
  const ckpt::Section* sec_stats = chain.base.find(ckpt::kSecSearchStats);
  const ckpt::Section* sec_payload = chain.base.find(ckpt::kSecEnginePayload);
  if (sec_store == nullptr || sec_work == nullptr || sec_stats == nullptr ||
      sec_payload == nullptr) {
    return false;
  }
  std::vector<ta::DigitalState> states;
  std::vector<std::uint8_t> covered;
  {
    ckpt::io::Reader r(sec_store->payload);
    if (!ckpt::read_store_vectors<ta::DigitalState>(
            r, store_.options().inclusion, store_.options().tombstone_covered,
            ckpt::read_digital_state, &states, &covered)) {
      return false;
    }
  }
  std::vector<core::Worklist::Entry> entries;
  {
    ckpt::io::Reader r(sec_work->payload);
    if (!ckpt::read_worklist_entries(r, core::SearchOrder::kBfs, &entries)) {
      return false;
    }
  }
  std::uint64_t explored = 0;
  std::uint64_t transitions = 0;
  {
    ckpt::io::Reader r(sec_stats->payload);
    if (!ckpt::read_search_stats(r, &explored, &transitions)) return false;
  }
  std::vector<Node> nodes(states.size());
  std::size_t expanded = 0;

  auto read_nodes = [&nodes, &expanded,
                     &states](const std::vector<std::uint8_t>& payload) {
    ckpt::io::Reader r(payload);
    const std::uint64_t n = r.u64();
    const std::uint64_t from = r.u64();
    const std::uint64_t count = r.u64();
    if (!r.ok() || n != states.size() || from != expanded ||
        from + count > n || !r.fits(count, 12)) {
      return false;
    }
    const auto valid_id = [&](std::int32_t id) {
      return id >= 0 && static_cast<std::uint64_t>(id) < n;
    };
    for (std::uint64_t i = from; i < from + count; ++i) {
      Node& node = nodes[static_cast<std::size_t>(i)];
      node = Node{};
      const std::uint32_t n_ctrl = r.u32();
      if (!r.ok() || !r.fits(n_ctrl, 8)) return false;
      node.ctrl.reserve(n_ctrl);
      for (std::uint32_t k = 0; k < n_ctrl; ++k) {
        const std::int32_t to = r.i32();
        ta::Move m;
        if (!valid_id(to) || !ckpt::read_move(r, &m)) return false;
        node.ctrl.emplace_back(to, std::move(m));
      }
      const std::uint32_t n_unctrl = r.u32();
      if (!r.ok() || !r.fits(n_unctrl, 4)) return false;
      node.unctrl.reserve(n_unctrl);
      for (std::uint32_t k = 0; k < n_unctrl; ++k) {
        const std::int32_t to = r.i32();
        if (!valid_id(to)) return false;
        node.unctrl.push_back(to);
      }
      node.tick = r.i32();
      if (node.tick != -1 && !valid_id(node.tick)) return false;
    }
    expanded = static_cast<std::size_t>(from + count);
    return r.ok();
  };
  auto read_fixpoint = [fix, objective,
                        &states](const std::vector<std::uint8_t>& payload) {
    ckpt::io::Reader r(payload);
    const std::uint32_t obj = r.u32();
    const std::uint64_t sweeps = r.u64();
    const std::uint64_t n = r.u64();
    if (!r.ok() || obj != objective || n != states.size() || !r.fits(n, 1)) {
      return false;
    }
    std::vector<char> win;
    win.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      win.push_back(static_cast<char>(r.u8() != 0 ? 1 : 0));
    }
    const std::uint64_t n_act = r.u64();
    if (!r.ok() || (n_act != 0 && n_act != n) || !r.fits(n_act, 2)) {
      return false;
    }
    std::vector<StrategyAction> act(static_cast<std::size_t>(n_act));
    for (std::uint64_t i = 0; i < n_act; ++i) {
      act[i].kind = r.u8() != 0 ? ActionKind::kMove : ActionKind::kWait;
      if (!ckpt::read_move(r, &act[i].move)) return false;
    }
    if (!r.ok()) return false;
    fix->restored = true;
    fix->sweeps = sweeps;
    fix->win = std::move(win);
    fix->act = std::move(act);
    return true;
  };

  if (!read_nodes(sec_payload->payload)) return false;
  if (const ckpt::Section* s = chain.base.find(kSecGameFixpoint)) {
    if (!read_fixpoint(s->payload)) return false;
  }
  std::uint64_t journal_len = 0;
  for (std::uint8_t c : covered) journal_len += c != 0 ? 1 : 0;
  for (const ckpt::Delta& d : chain.deltas) {
    const ckpt::Section* d_store = d.find(ckpt::kSecStoreDelta);
    const ckpt::Section* d_work = d.find(ckpt::kSecWorklistDelta);
    const ckpt::Section* d_stats = d.find(ckpt::kSecSearchStats);
    const ckpt::Section* d_payload = d.find(ckpt::kSecEnginePayload);
    if (d_store == nullptr || d_work == nullptr || d_stats == nullptr ||
        d_payload == nullptr) {
      return false;
    }
    {
      ckpt::io::Reader r(d_store->payload);
      if (!ckpt::apply_store_delta<ta::DigitalState>(
              r, ckpt::read_digital_state, &states, &covered, &journal_len)) {
        return false;
      }
    }
    nodes.resize(states.size());
    {
      ckpt::io::Reader r(d_work->payload);
      if (!ckpt::apply_worklist_delta(r, &entries)) return false;
    }
    {
      ckpt::io::Reader r(d_stats->payload);
      if (!ckpt::read_search_stats(r, &explored, &transitions)) return false;
    }
    if (!read_nodes(d_payload->payload)) return false;
    if (const ckpt::Section* s = d.find(kSecGameFixpoint)) {
      if (!read_fixpoint(s->payload)) return false;
    }
  }

  prev_entries_ = entries;
  store_ = core::StateStore<ta::DigitalState>::restore(
      store_.options(), std::move(states), std::move(covered));
  nodes_ = std::move(nodes);
  expanded_ = expanded;
  work_.restore(std::move(entries));
  baseline_explored_ = explored;
  baseline_transitions_ = transitions;
  saved_states_ = store_.size();
  saved_expanded_ = expanded_;
  chain_->adopt(chain);
  return true;
}

void TimedGame::build_graph(bool resumed, std::uint32_t objective,
                            ckpt::ResumeInfo* resume) {
  if (built_) return;

  auto intern = [&](ta::DigitalState s) -> std::int32_t {
    auto [id, inserted] = store_.intern(std::move(s));
    if (inserted) {
      nodes_.emplace_back();
      work_.push(id);
      if (observer_ != nullptr) observer_->on_state_stored(id, store_.size());
    }
    return id;
  };

  if (!resumed) intern(sem_.initial());
  core::CheckpointHook hook;
  const core::CheckpointHook* hook_ptr = nullptr;
  const std::uint64_t interval = checkpoint_.effective_interval();
  if (chain_.has_value() && (checkpoint_.save_on_stop || interval != 0)) {
    hook.interval = interval;
    hook.sink = [this, resume, objective](const core::SearchStats& s,
                                          const core::Worklist::Entry& pending) {
      if (s.stop != common::StopReason::kCompleted &&
          !checkpoint_.save_on_stop) {
        return;
      }
      const bool ok =
          save_snapshot(baseline_explored_ + s.states_explored - 1,
                        baseline_transitions_ + s.transitions, &pending,
                        objective, nullptr);
      if (resume != nullptr && ok) resume->saved = true;
    };
    hook_ptr = &hook;
  }
  build_stats_ = core::explore(
      store_, work_, limits_,
      [](const core::Worklist::Entry&) { return core::Visit::kContinue; },
      [&](const core::Worklist::Entry& e) -> std::size_t {
        const ta::DigitalState state = store_.state(e.id);
        Node node;
        std::size_t taken = 0;
        for (ta::Move& m : sem_.enabled_moves(state)) {
          ++taken;
          std::int32_t to = intern(sem_.apply(state, m));
          if (move_controllable(sem_.system(), m)) {
            node.ctrl.emplace_back(to, std::move(m));
          } else {
            node.unctrl.push_back(to);
          }
        }
        if (sem_.can_delay(state)) {
          node.tick = intern(sem_.delay_one(state));
          ++taken;
        }
        nodes_[static_cast<std::size_t>(e.id)] = std::move(node);
        ++expanded_;
        return taken;
      },
      observer_, hook_ptr);
  build_stats_.states_explored += static_cast<std::size_t>(baseline_explored_);
  build_stats_.transitions += static_cast<std::size_t>(baseline_transitions_);
  built_ = true;
}

bool TimedGame::prepare(std::uint32_t objective, const GamePredicate& pred,
                        GameResult* result, FixpointState* fix) {
  chain_.reset();
  bool resumed = false;
  if (checkpoint_.enabled()) {
    const std::uint64_t fp = solve_fingerprint(objective, pred);
    result->resume.path = checkpoint_.path;
    chain_.emplace(checkpoint_.path, ckpt::Provider::kGame, fp,
                   checkpoint_.max_deltas);
    saved_states_ = 0;
    saved_expanded_ = 0;
    prev_entries_.clear();
    // The graph of an earlier solve on this instance is already in memory
    // and objective-independent — never replace it with a disk image.
    if (checkpoint_.resume && !built_) {
      ckpt::Chain chain;
      result->resume.load = ckpt::load_chain(checkpoint_.path, fp,
                                             ckpt::Provider::kGame, &chain);
      if (result->resume.load == ckpt::LoadStatus::kOk) {
        resumed = restore_from(chain, objective, fix);
        if (!resumed) result->resume.load = ckpt::LoadStatus::kCorrupt;
      }
      result->resume.resumed = resumed;
    }
  }
  build_graph(resumed, objective, &result->resume);
  result->stats = build_stats_;
  result->states_explored = nodes_.size();
  if (build_stats_.truncated) {
    result->verdict = common::Verdict::kUnknown;
    return false;
  }
  // Fixpoint progress from a chain whose graph was still growing would be
  // sized for the smaller graph; recompute from scratch instead. (Cannot
  // happen with our own checkpoints — the fixpoint section is only written
  // once the build is complete — but the disk is not trusted.)
  if (fix->restored && fix->win.size() != nodes_.size()) {
    *fix = FixpointState{};
  }
  return true;
}

GameResult TimedGame::solve_reachability(const GamePredicate& goal) {
  return common::governed(
      [&] { return solve_reachability_impl(goal); },
      [this](common::StopReason r) {
        GameResult res;
        res.stats.stop_for(r);
        res.resume.path = checkpoint_.path;
        return res;
      });
}

GameResult TimedGame::solve_reachability_impl(const GamePredicate& goal) {
  GameResult result;
  FixpointState fix;
  if (!prepare(kObjReach, goal, &result, &fix)) return result;
  const std::size_t n = nodes_.size();
  if (!fix.restored) {
    fix.win.assign(n, 0);
    fix.act.assign(n, StrategyAction{});
    for (std::size_t i = 0; i < n; ++i) {
      if (goal(store_.state(static_cast<std::int32_t>(i)))) fix.win[i] = 1;
    }
  }
  std::vector<char>& win = fix.win;
  std::vector<StrategyAction>& act = fix.act;
  const std::uint64_t interval = checkpoint_.effective_interval();
  // Least fixpoint of the controllable predecessor (environment preempts).
  // Sweeps run in index order, so the (win, act, sweeps) triple at a sweep
  // boundary determines the rest of the computation — that is exactly what
  // a kSecGameFixpoint snapshot carries.
  bool changed = true;
  while (changed) {
    // Fault-injection site (tests): a kDeadline fault forces the next poll
    // to report kTimeLimit at a deterministic sweep boundary.
    common::FaultInjector::site("game.tiga.sweep");
    const common::StopReason r = limits_.budget.poll();
    if (r != common::StopReason::kCompleted) {
      if (chain_.has_value() && checkpoint_.save_on_stop &&
          save_snapshot(build_stats_.states_explored, build_stats_.transitions,
                        nullptr, kObjReach, &fix)) {
        result.resume.saved = true;
      }
      result.stats.stop_for(r);
      result.verdict = common::Verdict::kUnknown;
      return result;
    }
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (win[i]) continue;
      const Node& node = nodes_[i];
      bool unctrl_safe = true;
      for (std::int32_t u : node.unctrl) {
        if (!win[static_cast<std::size_t>(u)]) {
          unctrl_safe = false;
          break;
        }
      }
      if (!unctrl_safe) continue;
      // Controller needs some way to make progress into the winning set.
      const ta::Move* witness = nullptr;
      bool wait_wins = node.tick >= 0 && win[static_cast<std::size_t>(node.tick)];
      for (const auto& [to, move] : node.ctrl) {
        if (win[static_cast<std::size_t>(to)]) {
          witness = &move;
          break;
        }
      }
      // Time blocked by an invariant with only (winning) uncontrollable
      // moves enabled: runs must progress, so the environment is forced to
      // fire one of them — the controller wins by waiting.
      bool forced_env = node.tick < 0 && !node.unctrl.empty();
      if (witness != nullptr || wait_wins || forced_env) {
        win[i] = 1;
        if (witness != nullptr) {
          act[i] = StrategyAction{ActionKind::kMove, *witness};
        } else {
          act[i] = StrategyAction{ActionKind::kWait, {}};
        }
        changed = true;
      }
    }
    ++fix.sweeps;
    if (chain_.has_value() && interval != 0 &&
        save_snapshot(build_stats_.states_explored, build_stats_.transitions,
                      nullptr, kObjReach, &fix)) {
      result.resume.saved = true;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!win[i]) continue;
    ++result.winning_states;
    result.strategy.actions_.emplace(store_.state(static_cast<std::int32_t>(i)),
                                     act[i]);
  }
  result.verdict = (!nodes_.empty() && win[0]) ? common::Verdict::kHolds
                                               : common::Verdict::kViolated;
  return result;
}

GameResult TimedGame::solve_safety(const GamePredicate& safe) {
  return common::governed(
      [&] { return solve_safety_impl(safe); },
      [this](common::StopReason r) {
        GameResult res;
        res.stats.stop_for(r);
        res.resume.path = checkpoint_.path;
        return res;
      });
}

GameResult TimedGame::solve_safety_impl(const GamePredicate& safe) {
  GameResult result;
  FixpointState fix;
  if (!prepare(kObjSafety, safe, &result, &fix)) return result;
  const std::size_t n = nodes_.size();
  if (!fix.restored) {
    fix.win.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (safe(store_.state(static_cast<std::int32_t>(i)))) fix.win[i] = 1;
    }
  }
  std::vector<char>& win = fix.win;
  const std::uint64_t interval = checkpoint_.effective_interval();
  // Greatest fixpoint: prune states the controller cannot keep safe. Same
  // sweep-boundary checkpoint discipline as the reachability attractor
  // (the safety strategy is extracted after convergence, so no act array).
  bool changed = true;
  while (changed) {
    common::FaultInjector::site("game.tiga.sweep");
    const common::StopReason r = limits_.budget.poll();
    if (r != common::StopReason::kCompleted) {
      if (chain_.has_value() && checkpoint_.save_on_stop &&
          save_snapshot(build_stats_.states_explored, build_stats_.transitions,
                        nullptr, kObjSafety, &fix)) {
        result.resume.saved = true;
      }
      result.stats.stop_for(r);
      result.verdict = common::Verdict::kUnknown;
      return result;
    }
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!win[i]) continue;
      const Node& node = nodes_[i];
      bool unctrl_safe = true;
      for (std::int32_t u : node.unctrl) {
        if (!win[static_cast<std::size_t>(u)]) {
          unctrl_safe = false;
          break;
        }
      }
      bool has_safe_ctrl = false;
      for (const auto& [to, move] : node.ctrl) {
        if (win[static_cast<std::size_t>(to)]) {
          has_safe_ctrl = true;
          break;
        }
      }
      bool can_wait = node.tick >= 0 && win[static_cast<std::size_t>(node.tick)];
      // A timelocked state with no moves at all is trivially safe to hold.
      bool frozen = node.ctrl.empty() && node.tick < 0;
      if (!(unctrl_safe && (has_safe_ctrl || can_wait || frozen))) {
        win[i] = 0;
        changed = true;
      }
    }
    ++fix.sweeps;
    if (chain_.has_value() && interval != 0 &&
        save_snapshot(build_stats_.states_explored, build_stats_.transitions,
                      nullptr, kObjSafety, &fix)) {
      result.resume.saved = true;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!win[i]) continue;
    ++result.winning_states;
    const Node& node = nodes_[i];
    StrategyAction action{ActionKind::kWait, {}};
    if (!(node.tick >= 0 && win[static_cast<std::size_t>(node.tick)])) {
      for (const auto& [to, move] : node.ctrl) {
        if (win[static_cast<std::size_t>(to)]) {
          action = StrategyAction{ActionKind::kMove, move};
          break;
        }
      }
    }
    result.strategy.actions_.emplace(store_.state(static_cast<std::int32_t>(i)),
                                     action);
  }
  result.verdict = (!nodes_.empty() && win[0]) ? common::Verdict::kHolds
                                               : common::Verdict::kViolated;
  return result;
}

namespace {

/// Closed-loop successor expansion shared by the two verifiers. Returns
/// false immediately when `visit` returns false for a reachable state.
bool closed_loop_explore(
    const ta::System& sys, const Strategy& strategy,
    const std::function<bool(const ta::DigitalState&)>& prune,
    const std::function<bool(const ta::DigitalState&)>& visit,
    std::vector<ta::DigitalState>* out_states,
    std::vector<std::vector<std::int32_t>>* out_succ) {
  ta::DigitalSemantics sem(sys);
  core::StateStore<ta::DigitalState> store;
  core::Worklist work(core::SearchOrder::kBfs);
  std::vector<std::vector<std::int32_t>> succ;

  auto intern = [&](ta::DigitalState s) -> std::int32_t {
    auto [id, inserted] = store.intern(std::move(s));
    if (inserted) {
      succ.emplace_back();
      work.push(id);
    }
    return id;
  };

  intern(sem.initial());
  bool ok = true;
  core::explore(
      store, work, core::SearchLimits{},
      [&](const core::Worklist::Entry& e) {
        if (!visit(store.state(e.id))) {
          ok = false;
          return core::Visit::kStop;
        }
        return core::Visit::kContinue;
      },
      [&](const core::Worklist::Entry& e) -> std::size_t {
        const ta::DigitalState state = store.state(e.id);
        if (prune(state)) return 0;  // no expansion beyond pruned states
        auto action = strategy.action(state);
        std::vector<std::int32_t> next;
        // Environment may always act.
        for (ta::Move& m : sem.enabled_moves(state)) {
          if (!move_controllable(sys, m)) {
            next.push_back(intern(sem.apply(state, m)));
          }
        }
        if (action && action->kind == ActionKind::kMove) {
          next.push_back(intern(sem.apply(state, action->move)));
        } else {
          // Strategy waits (or state is outside the winning region): time may
          // pass if permitted.
          if (sem.can_delay(state)) next.push_back(intern(sem.delay_one(state)));
        }
        const std::size_t taken = next.size();
        succ[static_cast<std::size_t>(e.id)] = std::move(next);
        return taken;
      });
  if (!ok) return false;
  if (out_states) {
    out_states->clear();
    out_states->reserve(store.size());
    for (std::size_t i = 0; i < store.size(); ++i) {
      out_states->push_back(store.state(static_cast<std::int32_t>(i)));
    }
  }
  if (out_succ) *out_succ = std::move(succ);
  return true;
}

}  // namespace

bool verify_safety_strategy(const ta::System& sys, const Strategy& strategy,
                            const GamePredicate& safe) {
  return closed_loop_explore(
      sys, strategy, [](const ta::DigitalState&) { return false; },
      [&safe](const ta::DigitalState& s) { return safe(s); }, nullptr, nullptr);
}

bool verify_reach_strategy(const ta::System& sys, const Strategy& strategy,
                           const GamePredicate& goal) {
  std::vector<ta::DigitalState> states;
  std::vector<std::vector<std::int32_t>> succ;
  // Prune at goal states: obligations are discharged there.
  bool ok = closed_loop_explore(
      sys, strategy, goal, [](const ta::DigitalState&) { return true; },
      &states, &succ);
  if (!ok) return false;
  succ.resize(states.size());
  // Every non-goal reachable state must make progress (have successors) and
  // the non-goal subgraph must be acyclic (so goal is reached eventually).
  const std::size_t n = states.size();
  std::vector<char> color(n, 0);
  std::vector<std::pair<std::int32_t, std::size_t>> stack;
  for (std::size_t root = 0; root < n; ++root) {
    if (goal(states[root]) || color[root] != 0) continue;
    stack.push_back({static_cast<std::int32_t>(root), 0});
    color[root] = 1;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      const auto& kids = succ[static_cast<std::size_t>(node)];
      if (kids.empty()) return false;  // dead end short of the goal
      if (child == kids.size()) {
        color[static_cast<std::size_t>(node)] = 2;
        stack.pop_back();
        continue;
      }
      std::int32_t k = kids[child++];
      if (goal(states[static_cast<std::size_t>(k)])) continue;
      char& c = color[static_cast<std::size_t>(k)];
      if (c == 1) return false;  // goal-free cycle
      if (c == 0) {
        c = 1;
        stack.push_back({k, 0});
      }
    }
  }
  return true;
}

}  // namespace quanta::game
