#include "game/tiga.h"

#include "core/explore.h"
#include "core/worklist.h"

namespace quanta::game {

namespace {

bool move_controllable(const ta::System& sys, const ta::Move& m) {
  for (const auto& [p, e] : m.participants) {
    if (!sys.process(p).edges.at(static_cast<std::size_t>(e)).controllable) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<StrategyAction> Strategy::action(const ta::DigitalState& s) const {
  auto it = actions_.find(s);
  if (it == actions_.end()) return std::nullopt;
  return it->second;
}

TimedGame::TimedGame(const ta::System& sys, core::SearchLimits limits)
    : sem_(sys), limits_(std::move(limits)) {
  limits_.validate("game.tiga");
}

void TimedGame::build_graph() {
  if (built_) return;
  core::Worklist work(core::SearchOrder::kBfs);

  auto intern = [&](ta::DigitalState s) -> std::int32_t {
    auto [id, inserted] = store_.intern(std::move(s));
    if (inserted) {
      nodes_.emplace_back();
      work.push(id);
    }
    return id;
  };

  intern(sem_.initial());
  build_stats_ = core::explore(
      store_, work, limits_,
      [](const core::Worklist::Entry&) { return core::Visit::kContinue; },
      [&](const core::Worklist::Entry& e) -> std::size_t {
        const ta::DigitalState state = store_.state(e.id);
        Node node;
        std::size_t taken = 0;
        for (ta::Move& m : sem_.enabled_moves(state)) {
          ++taken;
          std::int32_t to = intern(sem_.apply(state, m));
          if (move_controllable(sem_.system(), m)) {
            node.ctrl.emplace_back(to, std::move(m));
          } else {
            node.unctrl.push_back(to);
          }
        }
        if (sem_.can_delay(state)) {
          node.tick = intern(sem_.delay_one(state));
          ++taken;
        }
        nodes_[static_cast<std::size_t>(e.id)] = std::move(node);
        return taken;
      });
  built_ = true;
}

GameResult TimedGame::solve_reachability(const GamePredicate& goal) {
  return common::governed(
      [&] { return solve_reachability_impl(goal); },
      [](common::StopReason r) {
        GameResult res;
        res.stats.stop_for(r);
        return res;
      });
}

GameResult TimedGame::solve_reachability_impl(const GamePredicate& goal) {
  build_graph();
  const std::size_t n = nodes_.size();
  std::vector<char> win(n, 0);
  std::vector<StrategyAction> act(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (goal(store_.state(static_cast<std::int32_t>(i)))) win[i] = 1;
  }
  // Least fixpoint of the controllable predecessor (environment preempts).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (win[i]) continue;
      const Node& node = nodes_[i];
      bool unctrl_safe = true;
      for (std::int32_t u : node.unctrl) {
        if (!win[static_cast<std::size_t>(u)]) {
          unctrl_safe = false;
          break;
        }
      }
      if (!unctrl_safe) continue;
      // Controller needs some way to make progress into the winning set.
      const ta::Move* witness = nullptr;
      bool wait_wins = node.tick >= 0 && win[static_cast<std::size_t>(node.tick)];
      for (const auto& [to, move] : node.ctrl) {
        if (win[static_cast<std::size_t>(to)]) {
          witness = &move;
          break;
        }
      }
      // Time blocked by an invariant with only (winning) uncontrollable
      // moves enabled: runs must progress, so the environment is forced to
      // fire one of them — the controller wins by waiting.
      bool forced_env = node.tick < 0 && !node.unctrl.empty();
      if (witness != nullptr || wait_wins || forced_env) {
        win[i] = 1;
        if (witness != nullptr) {
          act[i] = StrategyAction{ActionKind::kMove, *witness};
        } else {
          act[i] = StrategyAction{ActionKind::kWait, {}};
        }
        changed = true;
      }
    }
  }

  GameResult result;
  result.stats = build_stats_;
  result.states_explored = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (!win[i]) continue;
    ++result.winning_states;
    result.strategy.actions_.emplace(store_.state(static_cast<std::int32_t>(i)),
                                     act[i]);
  }
  // A fixpoint over a truncated graph is unsound in both directions (missing
  // winning paths and missing environment threats alike).
  if (build_stats_.truncated) {
    result.verdict = common::Verdict::kUnknown;
  } else {
    result.verdict = (!nodes_.empty() && win[0]) ? common::Verdict::kHolds
                                                 : common::Verdict::kViolated;
  }
  return result;
}

GameResult TimedGame::solve_safety(const GamePredicate& safe) {
  return common::governed(
      [&] { return solve_safety_impl(safe); },
      [](common::StopReason r) {
        GameResult res;
        res.stats.stop_for(r);
        return res;
      });
}

GameResult TimedGame::solve_safety_impl(const GamePredicate& safe) {
  build_graph();
  const std::size_t n = nodes_.size();
  std::vector<char> win(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (safe(store_.state(static_cast<std::int32_t>(i)))) win[i] = 1;
  }
  // Greatest fixpoint: prune states the controller cannot keep safe.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!win[i]) continue;
      const Node& node = nodes_[i];
      bool unctrl_safe = true;
      for (std::int32_t u : node.unctrl) {
        if (!win[static_cast<std::size_t>(u)]) {
          unctrl_safe = false;
          break;
        }
      }
      bool has_safe_ctrl = false;
      for (const auto& [to, move] : node.ctrl) {
        if (win[static_cast<std::size_t>(to)]) {
          has_safe_ctrl = true;
          break;
        }
      }
      bool can_wait = node.tick >= 0 && win[static_cast<std::size_t>(node.tick)];
      // A timelocked state with no moves at all is trivially safe to hold.
      bool frozen = node.ctrl.empty() && node.tick < 0;
      if (!(unctrl_safe && (has_safe_ctrl || can_wait || frozen))) {
        win[i] = 0;
        changed = true;
      }
    }
  }

  GameResult result;
  result.stats = build_stats_;
  result.states_explored = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (!win[i]) continue;
    ++result.winning_states;
    const Node& node = nodes_[i];
    StrategyAction action{ActionKind::kWait, {}};
    if (!(node.tick >= 0 && win[static_cast<std::size_t>(node.tick)])) {
      for (const auto& [to, move] : node.ctrl) {
        if (win[static_cast<std::size_t>(to)]) {
          action = StrategyAction{ActionKind::kMove, move};
          break;
        }
      }
    }
    result.strategy.actions_.emplace(store_.state(static_cast<std::int32_t>(i)),
                                     action);
  }
  if (build_stats_.truncated) {
    result.verdict = common::Verdict::kUnknown;
  } else {
    result.verdict = (!nodes_.empty() && win[0]) ? common::Verdict::kHolds
                                                 : common::Verdict::kViolated;
  }
  return result;
}

namespace {

/// Closed-loop successor expansion shared by the two verifiers. Returns
/// false immediately when `visit` returns false for a reachable state.
bool closed_loop_explore(
    const ta::System& sys, const Strategy& strategy,
    const std::function<bool(const ta::DigitalState&)>& prune,
    const std::function<bool(const ta::DigitalState&)>& visit,
    std::vector<ta::DigitalState>* out_states,
    std::vector<std::vector<std::int32_t>>* out_succ) {
  ta::DigitalSemantics sem(sys);
  core::StateStore<ta::DigitalState> store;
  core::Worklist work(core::SearchOrder::kBfs);
  std::vector<std::vector<std::int32_t>> succ;

  auto intern = [&](ta::DigitalState s) -> std::int32_t {
    auto [id, inserted] = store.intern(std::move(s));
    if (inserted) {
      succ.emplace_back();
      work.push(id);
    }
    return id;
  };

  intern(sem.initial());
  bool ok = true;
  core::explore(
      store, work, core::SearchLimits{},
      [&](const core::Worklist::Entry& e) {
        if (!visit(store.state(e.id))) {
          ok = false;
          return core::Visit::kStop;
        }
        return core::Visit::kContinue;
      },
      [&](const core::Worklist::Entry& e) -> std::size_t {
        const ta::DigitalState state = store.state(e.id);
        if (prune(state)) return 0;  // no expansion beyond pruned states
        auto action = strategy.action(state);
        std::vector<std::int32_t> next;
        // Environment may always act.
        for (ta::Move& m : sem.enabled_moves(state)) {
          if (!move_controllable(sys, m)) {
            next.push_back(intern(sem.apply(state, m)));
          }
        }
        if (action && action->kind == ActionKind::kMove) {
          next.push_back(intern(sem.apply(state, action->move)));
        } else {
          // Strategy waits (or state is outside the winning region): time may
          // pass if permitted.
          if (sem.can_delay(state)) next.push_back(intern(sem.delay_one(state)));
        }
        const std::size_t taken = next.size();
        succ[static_cast<std::size_t>(e.id)] = std::move(next);
        return taken;
      });
  if (!ok) return false;
  if (out_states) {
    out_states->clear();
    out_states->reserve(store.size());
    for (std::size_t i = 0; i < store.size(); ++i) {
      out_states->push_back(store.state(static_cast<std::int32_t>(i)));
    }
  }
  if (out_succ) *out_succ = std::move(succ);
  return true;
}

}  // namespace

bool verify_safety_strategy(const ta::System& sys, const Strategy& strategy,
                            const GamePredicate& safe) {
  return closed_loop_explore(
      sys, strategy, [](const ta::DigitalState&) { return false; },
      [&safe](const ta::DigitalState& s) { return safe(s); }, nullptr, nullptr);
}

bool verify_reach_strategy(const ta::System& sys, const Strategy& strategy,
                           const GamePredicate& goal) {
  std::vector<ta::DigitalState> states;
  std::vector<std::vector<std::int32_t>> succ;
  // Prune at goal states: obligations are discharged there.
  bool ok = closed_loop_explore(
      sys, strategy, goal, [](const ta::DigitalState&) { return true; },
      &states, &succ);
  if (!ok) return false;
  succ.resize(states.size());
  // Every non-goal reachable state must make progress (have successors) and
  // the non-goal subgraph must be acyclic (so goal is reached eventually).
  const std::size_t n = states.size();
  std::vector<char> color(n, 0);
  std::vector<std::pair<std::int32_t, std::size_t>> stack;
  for (std::size_t root = 0; root < n; ++root) {
    if (goal(states[root]) || color[root] != 0) continue;
    stack.push_back({static_cast<std::int32_t>(root), 0});
    color[root] = 1;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      const auto& kids = succ[static_cast<std::size_t>(node)];
      if (kids.empty()) return false;  // dead end short of the goal
      if (child == kids.size()) {
        color[static_cast<std::size_t>(node)] = 2;
        stack.pop_back();
        continue;
      }
      std::int32_t k = kids[child++];
      if (goal(states[static_cast<std::size_t>(k)])) continue;
      char& c = color[static_cast<std::size_t>(k)];
      if (c == 1) return false;  // goal-free cycle
      if (c == 0) {
        c = 1;
        stack.push_back({k, 0});
      }
    }
  }
  return true;
}

}  // namespace quanta::game
