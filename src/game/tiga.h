// Timed-game solving and controller synthesis in the spirit of UPPAAL-TIGA
// (§II.A.b): the model is a network of timed (game) automata whose edges are
// partitioned into controllable and uncontrollable (Edge::controllable); the
// solver computes the controller's winning region for reachability or safety
// objectives and extracts a memoryless strategy over game states.
//
// Semantics: the digital-clocks turn abstraction (DESIGN.md §4.1). In every
// state the environment may fire any enabled uncontrollable move; the
// controller may fire an enabled controllable move or wait (unit tick). The
// environment can always preempt, so the controllable predecessor requires
// all uncontrollable successors to stay winning — the conservative
// Maler-Pnueli-Sifakis rule. A synchronised move is controllable iff all
// participating edges are controllable.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/verdict.h"
#include "core/search.h"
#include "core/state_store.h"
#include "ta/digital.h"
#include "ta/traits.h"

namespace quanta::game {

using GamePredicate = std::function<bool(const ta::DigitalState&)>;

enum class ActionKind { kWait, kMove };

struct StrategyAction {
  ActionKind kind = ActionKind::kWait;
  ta::Move move;  ///< valid when kind == kMove
};

class TimedGame;

/// A memoryless strategy on the reachable game graph.
class Strategy {
 public:
  /// The prescribed action, or nullopt if the state is not winning / known.
  std::optional<StrategyAction> action(const ta::DigitalState& s) const;

  std::size_t winning_states() const { return actions_.size(); }

 private:
  friend class TimedGame;
  std::unordered_map<ta::DigitalState, StrategyAction, ta::DigitalStateHash>
      actions_;
};

struct GameResult {
  /// kHolds = the initial state is in the controller's winning region,
  /// kViolated = it provably is not, kUnknown = the game graph was
  /// truncated (a fixpoint on a partial graph is unsound both ways).
  common::Verdict verdict = common::Verdict::kUnknown;
  core::SearchStats stats;  ///< of the game-graph construction
  std::size_t states_explored = 0;
  std::size_t winning_states = 0;
  Strategy strategy;

  bool controller_wins() const { return verdict == common::Verdict::kHolds; }
  common::StopReason stop() const { return stats.stop; }
};

class TimedGame {
 public:
  /// `limits` bounds the game-graph construction (states, deadline, memory,
  /// cancellation); a truncated build yields kUnknown results.
  explicit TimedGame(const ta::System& sys, core::SearchLimits limits = {});

  /// Controller objective: eventually reach `goal`, whatever the
  /// environment does.
  GameResult solve_reachability(const GamePredicate& goal);

  /// Controller objective: keep the system inside `safe` forever.
  GameResult solve_safety(const GamePredicate& safe);

  const ta::DigitalSemantics& semantics() const { return sem_; }

 private:
  /// Per-state game edges; states themselves live in the store, indexed by
  /// the same dense ids.
  struct Node {
    std::vector<std::pair<std::int32_t, ta::Move>> ctrl;  ///< (succ, move)
    std::vector<std::int32_t> unctrl;
    std::int32_t tick = -1;
  };

  void build_graph();
  GameResult solve_reachability_impl(const GamePredicate& goal);
  GameResult solve_safety_impl(const GamePredicate& safe);

  ta::DigitalSemantics sem_;
  core::SearchLimits limits_;
  core::SearchStats build_stats_;
  core::StateStore<ta::DigitalState> store_;
  std::vector<Node> nodes_;
  bool built_ = false;
};

/// Exhaustively verifies a reachability strategy in closed loop: from the
/// initial state, following the strategy (with the environment free to act
/// or preempt), every path must reach `goal`; returns false if a goal-free
/// cycle or dead end is reachable.
bool verify_reach_strategy(const ta::System& sys, const Strategy& strategy,
                           const GamePredicate& goal);

/// Exhaustively verifies a safety strategy in closed loop: no reachable
/// closed-loop state violates `safe`.
bool verify_safety_strategy(const ta::System& sys, const Strategy& strategy,
                            const GamePredicate& safe);

}  // namespace quanta::game
