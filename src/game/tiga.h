// Timed-game solving and controller synthesis in the spirit of UPPAAL-TIGA
// (§II.A.b): the model is a network of timed (game) automata whose edges are
// partitioned into controllable and uncontrollable (Edge::controllable); the
// solver computes the controller's winning region for reachability or safety
// objectives and extracts a memoryless strategy over game states.
//
// Semantics: the digital-clocks turn abstraction (DESIGN.md §4.1). In every
// state the environment may fire any enabled uncontrollable move; the
// controller may fire an enabled controllable move or wait (unit tick). The
// environment can always preempt, so the controllable predecessor requires
// all uncontrollable successors to stay winning — the conservative
// Maler-Pnueli-Sifakis rule. A synchronised move is controllable iff all
// participating edges are controllable.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/delta.h"
#include "common/pred.h"
#include "common/verdict.h"
#include "core/observer.h"
#include "core/search.h"
#include "core/state_store.h"
#include "core/worklist.h"
#include "ta/digital.h"
#include "ta/traits.h"

namespace quanta::game {

/// Structural predicate over digital game states; build with
/// common::loc_index_pred / pred_and / pred_or / pred_not (or labeled_pred
/// for closures) so checkpoint fingerprints can tell objectives apart.
using GamePredicate = common::Predicate<ta::DigitalState>;

enum class ActionKind { kWait, kMove };

struct StrategyAction {
  ActionKind kind = ActionKind::kWait;
  ta::Move move;  ///< valid when kind == kMove
};

class TimedGame;

/// A memoryless strategy on the reachable game graph.
class Strategy {
 public:
  /// The prescribed action, or nullopt if the state is not winning / known.
  std::optional<StrategyAction> action(const ta::DigitalState& s) const;

  std::size_t winning_states() const { return actions_.size(); }

 private:
  friend class TimedGame;
  std::unordered_map<ta::DigitalState, StrategyAction, ta::DigitalStateHash>
      actions_;
};

struct GameResult {
  /// kHolds = the initial state is in the controller's winning region,
  /// kViolated = it provably is not, kUnknown = the game graph was
  /// truncated (a fixpoint on a partial graph is unsound both ways) or the
  /// budget fired during the fixpoint itself.
  common::Verdict verdict = common::Verdict::kUnknown;
  core::SearchStats stats;  ///< of the game-graph construction
  std::size_t states_explored = 0;
  std::size_t winning_states = 0;
  Strategy strategy;
  /// Checkpoint/resume outcome of this solve (TimedGame's ckpt::Options).
  ckpt::ResumeInfo resume;

  bool controller_wins() const { return verdict == common::Verdict::kHolds; }
  common::StopReason stop() const { return stats.stop; }
};

/// With `checkpoint` enabled the whole solve is crash-safe under
/// Provider::kGame: the game-graph construction checkpoints its store, BFS
/// worklist and the per-node edge table (incrementally, as QCKPD1 deltas),
/// and the attractor fixpoint snapshots its winning set after every sweep —
/// an interrupted solve resumed at any point yields the bit-identical
/// verdict, winning region and strategy. The fingerprint mixes the system,
/// the objective kind and the canonical AST of the objective predicate, so
/// a checkpoint never resumes under a structurally different query.
class TimedGame {
 public:
  /// `limits` bounds the game-graph construction (states, deadline, memory,
  /// cancellation); a truncated build yields kUnknown results. The budget is
  /// also polled once per fixpoint sweep, so a deadline interrupts the
  /// solving phase too (stop reason in GameResult::stats).
  explicit TimedGame(const ta::System& sys, core::SearchLimits limits = {},
                     ckpt::Options checkpoint = {},
                     core::ExplorationObserver* observer = nullptr);

  /// Controller objective: eventually reach `goal`, whatever the
  /// environment does.
  GameResult solve_reachability(const GamePredicate& goal);

  /// Controller objective: keep the system inside `safe` forever.
  GameResult solve_safety(const GamePredicate& safe);

  const ta::DigitalSemantics& semantics() const { return sem_; }

 private:
  /// Per-state game edges; states themselves live in the store, indexed by
  /// the same dense ids.
  struct Node {
    std::vector<std::pair<std::int32_t, ta::Move>> ctrl;  ///< (succ, move)
    std::vector<std::int32_t> unctrl;
    std::int32_t tick = -1;
  };

  /// Fixpoint progress carried across an interrupt: the winning flags, the
  /// reach-attractor's witness actions and the number of completed sweeps.
  struct FixpointState {
    bool restored = false;
    std::uint64_t sweeps = 0;
    std::vector<char> win;
    std::vector<StrategyAction> act;
  };

  std::uint64_t solve_fingerprint(std::uint32_t objective,
                                  const GamePredicate& pred) const;
  bool restore_from(const ckpt::Chain& chain, std::uint32_t objective,
                    FixpointState* fix);
  bool save_snapshot(std::uint64_t explored, std::uint64_t transitions,
                     const core::Worklist::Entry* pending,
                     std::uint32_t objective, const FixpointState* fix);
  void build_graph(bool resumed, std::uint32_t objective,
                   ckpt::ResumeInfo* resume);
  /// Chain setup + optional resume + (checkpointed) graph build. Returns
  /// false when the build truncated — the result then already carries the
  /// kUnknown verdict and stop reason.
  bool prepare(std::uint32_t objective, const GamePredicate& pred,
               GameResult* result, FixpointState* fix);
  GameResult solve_reachability_impl(const GamePredicate& goal);
  GameResult solve_safety_impl(const GamePredicate& safe);

  ta::DigitalSemantics sem_;
  core::SearchLimits limits_;
  ckpt::Options checkpoint_;
  core::ExplorationObserver* observer_ = nullptr;
  core::SearchStats build_stats_;
  core::StateStore<ta::DigitalState> store_;
  core::Worklist work_{core::SearchOrder::kBfs};
  std::vector<Node> nodes_;
  /// Nodes [0, expanded_) have their edge table assigned — BFS pops in id
  /// order, so the expanded prefix is contiguous and a checkpoint delta is
  /// just the new suffix.
  std::size_t expanded_ = 0;
  bool built_ = false;
  // Counters carried over from the interrupted run when resuming.
  std::uint64_t baseline_explored_ = 0;
  std::uint64_t baseline_transitions_ = 0;
  // Delta-snapshot bookkeeping (per solve; reset in prepare()).
  std::optional<ckpt::ChainWriter> chain_;
  std::size_t saved_states_ = 0;
  std::size_t saved_expanded_ = 0;
  std::vector<core::Worklist::Entry> prev_entries_;
};

/// Exhaustively verifies a reachability strategy in closed loop: from the
/// initial state, following the strategy (with the environment free to act
/// or preempt), every path must reach `goal`; returns false if a goal-free
/// cycle or dead end is reachable.
bool verify_reach_strategy(const ta::System& sys, const Strategy& strategy,
                           const GamePredicate& goal);

/// Exhaustively verifies a safety strategy in closed loop: no reachable
/// closed-loop state violates `safe`.
bool verify_safety_strategy(const ta::System& sys, const Strategy& strategy,
                            const GamePredicate& safe);

}  // namespace quanta::game
