// The paper's running example (Fig. 1): N trains approaching a one-track
// bridge, with a controller that maintains a FIFO queue of stopped trains.
// Transcribed from the UPPAAL model: train template (Safe/Appr/Stop/Start/
// Cross) and controller (Free/Occ + committed stop location) with the
// enqueue/front/tail/dequeue functions of Fig. 1(c).
#pragma once

#include <vector>

#include "ta/model.h"

namespace quanta::models {

struct TrainGate {
  ta::System system;
  int num_trains = 0;

  // Channel-array base ids: channel appr[i] has id appr_base + i, etc.
  int appr_base = 0;
  int stop_base = 0;
  int go_base = 0;
  int leave_base = 0;

  int controller = 0;           ///< controller process index
  std::vector<int> trains;      ///< train process indices
  std::vector<int> train_clock; ///< global clock id of train i

  int var_len = 0;              ///< queue length variable index
  std::vector<int> var_list;    ///< queue slot variable indices (N+1 slots)
};

/// Builds the Fig. 1 model for `num_trains` trains. The SMC exit rate of
/// train i's Safe location is 1 + i, as in the paper's Fig. 4 experiment.
TrainGate make_train_gate(int num_trains);

}  // namespace quanta::models
