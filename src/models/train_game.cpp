#include "models/train_game.h"

#include <string>

namespace quanta::models {

using namespace quanta::ta;

TrainGame make_train_game(const TrainGameOptions& options) {
  TrainGame tg;
  tg.options = options;
  System& sys = tg.system;
  const int n = options.num_trains;

  int appr_base = sys.add_channel_array("appr", n);
  int stop_base = sys.add_channel_array("stop", n);
  int go_base = sys.add_channel_array("go", n);
  int leave_base = sys.add_channel_array("leave", n);

  for (int id = 0; id < n; ++id) {
    int x = sys.add_clock("x" + std::to_string(id));
    tg.train_clock.push_back(x);

    ProcessBuilder pb("Train(" + std::to_string(id) + ")");
    int safe = pb.location("Safe");
    int appr = pb.location("Appr", {cc_le(x, 20)});
    int stop = pb.location("Stop");
    int start = pb.location("Start", {cc_le(x, 30)});
    int cross = pb.location("Cross", {cc_le(x, 5)});
    tg.l_safe = safe;
    tg.l_appr = appr;
    tg.l_stop = stop;
    tg.l_start = start;
    tg.l_cross = cross;
    pb.set_initial(id == 0 && options.first_train_approaching ? appr : safe);

    // Environment-owned (dashed in Fig. 2).
    int e = pb.edge(safe, appr, {}, appr_base + id, SyncKind::kSend, {{x, 0}},
                    nullptr, nullptr, "appr!");
    pb.edge_ref(e).controllable = false;
    e = pb.edge(appr, cross, {cc_ge(x, 10)}, -1, SyncKind::kNone, {{x, 0}},
                nullptr, nullptr, "cross");
    pb.edge_ref(e).controllable = false;
    e = pb.edge(start, cross, {cc_ge(x, 7)}, -1, SyncKind::kNone, {{x, 0}},
                nullptr, nullptr, "restart-cross");
    pb.edge_ref(e).controllable = false;
    e = pb.edge(cross, safe, {cc_ge(x, 3)}, leave_base + id, SyncKind::kSend,
                {}, nullptr, nullptr, "leave!");
    pb.edge_ref(e).controllable = false;

    // Controller-owned (solid): reactions to stop/go signals.
    pb.edge(appr, stop, {cc_le(x, 10)}, stop_base + id, SyncKind::kReceive, {},
            nullptr, nullptr, "stop?");
    pb.edge(stop, start, {}, go_base + id, SyncKind::kReceive, {{x, 0}},
            nullptr, nullptr, "go?");

    tg.trains.push_back(sys.add_process(pb.build()));
  }

  // Fig. 3: the unconstrained controller — one location, all four actions.
  {
    ProcessBuilder pb("Controller");
    int u = pb.location("U");
    pb.set_initial(u);
    for (int id = 0; id < n; ++id) {
      int e = pb.edge(u, u, {}, appr_base + id, SyncKind::kReceive, {}, nullptr,
                      nullptr, "appr?");
      pb.edge_ref(e).controllable = false;
      e = pb.edge(u, u, {}, leave_base + id, SyncKind::kReceive, {}, nullptr,
                  nullptr, "leave?");
      pb.edge_ref(e).controllable = false;
      pb.edge(u, u, {}, stop_base + id, SyncKind::kSend, {}, nullptr, nullptr,
              "stop!");
      pb.edge(u, u, {}, go_base + id, SyncKind::kSend, {}, nullptr, nullptr,
              "go!");
    }
    tg.controller = sys.add_process(pb.build());
  }

  sys.validate();
  return tg;
}

}  // namespace quanta::models
