// The timed-game version of the train example (paper Fig. 2 + Fig. 3):
// trains whose arrival/crossing transitions are owned by the environment
// (dashed in the figure), an unconstrained single-location controller that
// may emit stop[e]!/go[e]! at any time, and stop/go reception owned by the
// controller. UPPAAL-TIGA-style synthesis then has to *derive* the queueing
// discipline that Fig. 1's hand-written controller hard-codes.
#pragma once

#include <vector>

#include "ta/model.h"

namespace quanta::models {

struct TrainGameOptions {
  int num_trains = 2;
  /// Start train 0 in Appr (with its clock at 0) instead of Safe — used for
  /// reachability objectives, which are unwinnable from Safe because the
  /// environment may simply never let the train approach.
  bool first_train_approaching = false;
};

struct TrainGame {
  ta::System system;
  TrainGameOptions options;
  std::vector<int> trains;        ///< process indices
  std::vector<int> train_clock;   ///< clock ids
  int controller = 0;             ///< the Fig. 3 unconstrained automaton
  // Train location indices (identical across train processes).
  int l_safe = 0, l_appr = 0, l_stop = 0, l_start = 0, l_cross = 0;

  /// "At most one train on the bridge" predicate over location vectors.
  bool mutex_ok(const std::vector<int>& locs) const {
    int crossing = 0;
    for (int t : trains) {
      if (locs[static_cast<std::size_t>(t)] == l_cross) ++crossing;
    }
    return crossing <= 1;
  }
};

TrainGame make_train_game(const TrainGameOptions& options = {});

}  // namespace quanta::models
