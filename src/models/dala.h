// A BIP model of the functional level of the DALA autonomous rover (paper
// §IV, Fig. 6), in the spirit of the LAAS/Verimag case study: functional
// modules (RFLEX locomotion, NDD navigation, POM position manager, Antenna
// communication, Laser scanner, Platine pan-tilt unit, Science payload)
// composed with an R2C-style execution controller that enforces the safety
// rules by construction:
//   R1: the antenna never transmits while the robot is moving;
//   R2: the laser only scans while the platine is locked.
//
// Two variants are built: with the controller woven into every activity-
// start connector (safe by construction), and without it (modules start
// activities unconstrained — the faulty baseline used for the §IV fault-
// injection experiment).
#pragma once

#include "bip/explore.h"
#include "bip/system.h"

namespace quanta::models {

struct DalaOptions {
  bool with_controller = true;
};

struct Dala {
  bip::BipSystem system;
  DalaOptions options;

  // Component indices.
  int rflex = 0, ndd = 0, pom = 0, antenna = 0, laser = 0, platine = 0,
      science = 0, r2c = -1;
  // Place indices used by the safety rules.
  int rflex_moving = 0, antenna_comm = 0, laser_scanning = 0,
      platine_unlocked = 0;
  // Connector indices for the activity starts (for priorities/inspection).
  int c_move_start = -1, c_comm_start = -1, c_scan_start = -1;

  /// R1: no transmission while moving.
  bool rule1_ok(const bip::BipState& s) const {
    return !(s.places[static_cast<std::size_t>(rflex)] == rflex_moving &&
             s.places[static_cast<std::size_t>(antenna)] == antenna_comm);
  }
  /// R2: no scanning while the platine is unlocked.
  bool rule2_ok(const bip::BipState& s) const {
    return !(s.places[static_cast<std::size_t>(laser)] == laser_scanning &&
             s.places[static_cast<std::size_t>(platine)] == platine_unlocked);
  }
  bool safe(const bip::BipState& s) const { return rule1_ok(s) && rule2_ok(s); }
};

Dala make_dala(const DalaOptions& options = {});

}  // namespace quanta::models
