#include "models/dala.h"

namespace quanta::models {

using namespace quanta::bip;

Dala make_dala(const DalaOptions& options) {
  Dala d;
  d.options = options;
  BipSystem& sys = d.system;

  // ---- RFLEX: locomotion ---------------------------------------------------
  int rflex_start, rflex_stop;
  {
    Component c("RFLEX");
    int idle = c.add_place("Idle");
    d.rflex_moving = c.add_place("Moving");
    rflex_start = c.add_port("start_move");
    rflex_stop = c.add_port("stop_move");
    c.add_transition(idle, d.rflex_moving, rflex_start, nullptr, nullptr,
                     "start");
    c.add_transition(d.rflex_moving, idle, rflex_stop, nullptr, nullptr,
                     "stop");
    c.set_initial(idle);
    d.rflex = sys.add_component(std::move(c));
  }

  // ---- NDD: navigation (plans, then commands a speed to RFLEX) -------------
  int ndd_cmd, ndd_pos;
  {
    Component c("NDD");
    int idle = c.add_place("Idle");
    int planning = c.add_place("Planning");
    int ready = c.add_place("Ready");
    ndd_cmd = c.add_port("cmd_speed");
    ndd_pos = c.add_port("pos_in");
    int updates = c.declare_var("pos_updates", 0, 0, 3);  // saturating counter
    c.add_transition(idle, planning, -1, nullptr, nullptr, "start_plan");
    c.add_transition(planning, ready, -1, nullptr, nullptr, "plan_done");
    c.add_transition(ready, idle, ndd_cmd, nullptr, nullptr, "send_speed");
    c.add_transition(idle, idle, ndd_pos, nullptr,
                     [updates](Valuation& v) {
                       if (v[updates] < 3) v[updates] += 1;
                     },
                     "pos_update");
    c.set_initial(idle);
    d.ndd = sys.add_component(std::move(c));
  }

  // ---- POM: position manager (broadcasts pose estimates) --------------------
  int pom_pos;
  {
    Component c("POM");
    int run = c.add_place("Run");
    pom_pos = c.add_port("pos");
    c.add_transition(run, run, pom_pos, nullptr, nullptr, "publish");
    c.set_initial(run);
    d.pom = sys.add_component(std::move(c));
  }

  // ---- Antenna: communication ----------------------------------------------
  int ant_start, ant_end;
  {
    Component c("Antenna");
    int idle = c.add_place("Idle");
    d.antenna_comm = c.add_place("Comm");
    ant_start = c.add_port("start_comm");
    ant_end = c.add_port("end_comm");
    c.add_transition(idle, d.antenna_comm, ant_start, nullptr, nullptr,
                     "start");
    c.add_transition(d.antenna_comm, idle, ant_end, nullptr, nullptr, "end");
    c.set_initial(idle);
    d.antenna = sys.add_component(std::move(c));
  }

  // ---- Laser (Aspect): terrain scanning --------------------------------------
  int laser_start, laser_end;
  {
    Component c("Laser");
    int off = c.add_place("Off");
    d.laser_scanning = c.add_place("Scanning");
    laser_start = c.add_port("start_scan");
    laser_end = c.add_port("end_scan");
    c.add_transition(off, d.laser_scanning, laser_start, nullptr, nullptr,
                     "start");
    c.add_transition(d.laser_scanning, off, laser_end, nullptr, nullptr,
                     "end");
    c.set_initial(off);
    d.laser = sys.add_component(std::move(c));
  }

  // ---- Platine: pan-tilt unit -------------------------------------------------
  int plat_lock, plat_unlock;
  {
    Component c("Platine");
    d.platine_unlocked = c.add_place("Unlocked");
    int locked = c.add_place("Locked");
    plat_lock = c.add_port("lock");
    plat_unlock = c.add_port("unlock");
    c.add_transition(d.platine_unlocked, locked, plat_lock, nullptr, nullptr,
                     "lock");
    c.add_transition(locked, d.platine_unlocked, plat_unlock, nullptr, nullptr,
                     "unlock");
    c.set_initial(d.platine_unlocked);
    d.platine = sys.add_component(std::move(c));
  }

  // ---- Science payload ---------------------------------------------------------
  int sci_pos;
  {
    Component c("Science");
    int idle = c.add_place("Idle");
    int measuring = c.add_place("Measuring");
    sci_pos = c.add_port("pos_in");
    c.add_transition(idle, measuring, -1, nullptr, nullptr, "start_meas");
    c.add_transition(measuring, idle, -1, nullptr, nullptr, "end_meas");
    c.add_transition(idle, idle, sci_pos, nullptr, nullptr, "pos_update");
    c.set_initial(idle);
    d.science = sys.add_component(std::move(c));
  }

  // ---- R2C execution controller ---------------------------------------------
  int r2c_ok_move_s = -1, r2c_ok_move_e = -1, r2c_ok_comm_s = -1,
      r2c_ok_comm_e = -1, r2c_ok_scan_s = -1, r2c_ok_scan_e = -1,
      r2c_ok_lock = -1, r2c_ok_unlock = -1;
  if (options.with_controller) {
    Component c("R2C");
    int run = c.add_place("Run");
    int moving = c.declare_var("moving", 0, 0, 1);
    int comm = c.declare_var("comm", 0, 0, 1);
    int locked = c.declare_var("locked", 0, 0, 1);
    int scanning = c.declare_var("scanning", 0, 0, 1);
    r2c_ok_move_s = c.add_port("ok_move_start");
    r2c_ok_move_e = c.add_port("ok_move_end");
    r2c_ok_comm_s = c.add_port("ok_comm_start");
    r2c_ok_comm_e = c.add_port("ok_comm_end");
    r2c_ok_scan_s = c.add_port("ok_scan_start");
    r2c_ok_scan_e = c.add_port("ok_scan_end");
    r2c_ok_lock = c.add_port("ok_lock");
    r2c_ok_unlock = c.add_port("ok_unlock");
    // R1: movement and communication mutually exclusive.
    c.add_transition(run, run, r2c_ok_move_s,
                     [comm](const Valuation& v) { return v[comm] == 0; },
                     [moving](Valuation& v) { v[moving] = 1; }, "grant move");
    c.add_transition(run, run, r2c_ok_move_e, nullptr,
                     [moving](Valuation& v) { v[moving] = 0; }, "end move");
    c.add_transition(run, run, r2c_ok_comm_s,
                     [moving](const Valuation& v) { return v[moving] == 0; },
                     [comm](Valuation& v) { v[comm] = 1; }, "grant comm");
    c.add_transition(run, run, r2c_ok_comm_e, nullptr,
                     [comm](Valuation& v) { v[comm] = 0; }, "end comm");
    // R2: scanning requires the platine to be locked; no unlock mid-scan.
    c.add_transition(run, run, r2c_ok_scan_s,
                     [locked](const Valuation& v) { return v[locked] == 1; },
                     [scanning](Valuation& v) { v[scanning] = 1; },
                     "grant scan");
    c.add_transition(run, run, r2c_ok_scan_e, nullptr,
                     [scanning](Valuation& v) { v[scanning] = 0; }, "end scan");
    c.add_transition(run, run, r2c_ok_lock, nullptr,
                     [locked](Valuation& v) { v[locked] = 1; }, "lock");
    c.add_transition(run, run, r2c_ok_unlock,
                     [scanning](const Valuation& v) { return v[scanning] == 0; },
                     [locked](Valuation& v) { v[locked] = 0; }, "unlock");
    c.set_initial(run);
    d.r2c = sys.add_component(std::move(c));
  }

  // ---- Connectors ----------------------------------------------------------
  auto rendezvous = [&sys](std::string name, std::vector<PortRef> ports) {
    Connector conn;
    conn.name = std::move(name);
    conn.kind = ConnectorKind::kRendezvous;
    conn.ports = std::move(ports);
    return sys.add_connector(std::move(conn));
  };

  if (options.with_controller) {
    d.c_move_start = rendezvous("move_start", {{d.ndd, ndd_cmd},
                                               {d.rflex, rflex_start},
                                               {d.r2c, r2c_ok_move_s}});
    rendezvous("move_stop", {{d.rflex, rflex_stop}, {d.r2c, r2c_ok_move_e}});
    d.c_comm_start =
        rendezvous("comm_start", {{d.antenna, ant_start}, {d.r2c, r2c_ok_comm_s}});
    rendezvous("comm_end", {{d.antenna, ant_end}, {d.r2c, r2c_ok_comm_e}});
    d.c_scan_start =
        rendezvous("scan_start", {{d.laser, laser_start}, {d.r2c, r2c_ok_scan_s}});
    rendezvous("scan_end", {{d.laser, laser_end}, {d.r2c, r2c_ok_scan_e}});
    rendezvous("platine_lock", {{d.platine, plat_lock}, {d.r2c, r2c_ok_lock}});
    rendezvous("platine_unlock",
               {{d.platine, plat_unlock}, {d.r2c, r2c_ok_unlock}});
  } else {
    // Faulty baseline: modules start/stop activities unconstrained.
    d.c_move_start = rendezvous("move_start",
                                {{d.ndd, ndd_cmd}, {d.rflex, rflex_start}});
    rendezvous("move_stop", {{d.rflex, rflex_stop}});
    d.c_comm_start = rendezvous("comm_start", {{d.antenna, ant_start}});
    rendezvous("comm_end", {{d.antenna, ant_end}});
    d.c_scan_start = rendezvous("scan_start", {{d.laser, laser_start}});
    rendezvous("scan_end", {{d.laser, laser_end}});
    rendezvous("platine_lock", {{d.platine, plat_lock}});
    rendezvous("platine_unlock", {{d.platine, plat_unlock}});
  }

  // Position broadcast: POM triggers; NDD and Science join when able.
  {
    Connector conn;
    conn.name = "pos_broadcast";
    conn.kind = ConnectorKind::kBroadcast;
    conn.ports = {{d.pom, pom_pos}, {d.ndd, ndd_pos}, {d.science, sci_pos}};
    sys.add_connector(std::move(conn));
  }

  // Scheduling policy: when both a motion start and a communication start
  // are possible, motion wins (communication is retried once stopped).
  sys.add_priority(d.c_comm_start, d.c_move_start);

  sys.validate();
  return d;
}

}  // namespace quanta::models
