#include "models/brp.h"

#include <cmath>
#include <stdexcept>

namespace quanta::models {

using namespace quanta::ta;

double Brp::analytic_p1() const {
  double p = 1.0 - (1.0 - params.msg_loss) * (1.0 - params.ack_loss);
  double frame_fail = std::pow(p, params.max_retrans + 1);
  return 1.0 - std::pow(1.0 - frame_fail, params.frames);
}

double Brp::analytic_p2() const {
  double p = 1.0 - (1.0 - params.msg_loss) * (1.0 - params.ack_loss);
  double frame_fail = std::pow(p, params.max_retrans + 1);
  return std::pow(1.0 - frame_fail, params.frames - 1) * frame_fail;
}

Brp make_brp(const BrpParams& params) {
  if (params.frames < 1 || params.max_retrans < 0 || params.td < 1) {
    throw std::invalid_argument("make_brp: bad parameters");
  }
  Brp brp;
  brp.params = params;
  System& sys = brp.system;
  const int n = params.frames;
  const int max_rc = params.max_retrans;
  const int to = params.effective_timeout();

  const int ch_put = sys.add_channel("put");
  const int ch_get = sys.add_channel("get");
  const int ch_pack = sys.add_channel("pack");
  const int ch_gack = sys.add_channel("gack");

  brp.clk_x = sys.add_clock("x");
  brp.clk_k = sys.add_clock("ck");
  brp.clk_l = sys.add_clock("cl");

  brp.var_i = sys.vars().declare("i", 1, 1, static_cast<Value>(n));
  brp.var_rc = sys.vars().declare("rc", 0, 0, static_cast<Value>(max_rc));
  brp.var_ab = sys.vars().declare("ab", 0, 0, 1);
  brp.var_exp = sys.vars().declare("exp", 0, 0, 1);
  brp.var_rcv = sys.vars().declare("rcv", 0, 0, static_cast<Value>(n));

  const int vi = brp.var_i, vrc = brp.var_rc, vab = brp.var_ab,
            vexp = brp.var_exp, vrcv = brp.var_rcv;

  // ---- Sender ------------------------------------------------------------
  {
    ProcessBuilder pb("Sender");
    brp.s_send = pb.location("Send", {}, false, /*urgent=*/true);
    brp.s_wait = pb.location("WaitAck", {cc_le(brp.clk_x, to)});
    brp.s_success = pb.location("Success");
    brp.s_fail_nok = pb.location("FailNok");
    brp.s_fail_dk = pb.location("FailDk");
    pb.set_initial(brp.s_send);

    // Send --put!--> WaitAck, starting the retransmission timer.
    pb.edge(brp.s_send, brp.s_wait, {}, ch_put, SyncKind::kSend,
            {{brp.clk_x, 0}}, nullptr, nullptr, "put!");

    // Ack for a non-final frame: advance to the next frame.
    pb.edge(brp.s_wait, brp.s_send, {}, ch_gack, SyncKind::kReceive, {},
            [vi, n](const Valuation& v) { return v[vi] < n; },
            [vi, vrc, vab](Valuation& v) {
              v[vi] += 1;
              v[vrc] = 0;
              v[vab] ^= 1;
            },
            "gack?(next)");
    // Ack for the final frame: report success.
    pb.edge(brp.s_wait, brp.s_success, {}, ch_gack, SyncKind::kReceive, {},
            [vi, n](const Valuation& v) { return v[vi] == n; }, nullptr,
            "gack?(last)");

    // Timeout: retransmit while retries remain.
    pb.edge(brp.s_wait, brp.s_send, {cc_ge(brp.clk_x, to)}, -1, SyncKind::kNone,
            {},
            [vrc, max_rc](const Valuation& v) { return v[vrc] < max_rc; },
            [vrc](Valuation& v) { v[vrc] += 1; }, "timeout(retry)");
    // Retries exhausted on a non-final frame: certain failure (NOK).
    pb.edge(brp.s_wait, brp.s_fail_nok, {cc_ge(brp.clk_x, to)}, -1,
            SyncKind::kNone, {},
            [vrc, vi, max_rc, n](const Valuation& v) {
              return v[vrc] == max_rc && v[vi] < n;
            },
            nullptr, "timeout(NOK)");
    // Retries exhausted on the final frame: uncertain outcome (DK).
    pb.edge(brp.s_wait, brp.s_fail_dk, {cc_ge(brp.clk_x, to)}, -1,
            SyncKind::kNone, {},
            [vrc, vi, max_rc, n](const Valuation& v) {
              return v[vrc] == max_rc && v[vi] == n;
            },
            nullptr, "timeout(DK)");

    brp.sender = sys.add_process(pb.build());
  }

  // ---- Channel K (messages; Fig. 5) ---------------------------------------
  {
    ProcessBuilder pb("ChanK");
    brp.k_idle = pb.location("Idle");
    brp.k_busy = pb.location("Busy", {cc_le(brp.clk_k, params.td)});
    pb.set_initial(brp.k_idle);

    int idx = pb.edge(brp.k_idle, brp.k_busy);
    Edge& recv = pb.edge_ref(idx);
    recv.channel = ch_put;
    recv.sync = SyncKind::kReceive;
    recv.label = "put?";
    recv.branches = {
        ProbBranch{1.0 - params.msg_loss, brp.k_busy, {{brp.clk_k, 0}}, nullptr,
                   "deliver"},
        ProbBranch{params.msg_loss, brp.k_idle, {}, nullptr, "lose"},
    };

    pb.edge(brp.k_busy, brp.k_idle, {}, ch_get, SyncKind::kSend, {}, nullptr,
            nullptr, "get!");
    brp.chan_k = sys.add_process(pb.build());
  }

  // ---- Channel L (acknowledgements) ---------------------------------------
  {
    ProcessBuilder pb("ChanL");
    brp.l_idle = pb.location("Idle");
    brp.l_busy = pb.location("Busy", {cc_le(brp.clk_l, params.td)});
    pb.set_initial(brp.l_idle);

    int idx = pb.edge(brp.l_idle, brp.l_busy);
    Edge& recv = pb.edge_ref(idx);
    recv.channel = ch_pack;
    recv.sync = SyncKind::kReceive;
    recv.label = "pack?";
    recv.branches = {
        ProbBranch{1.0 - params.ack_loss, brp.l_busy, {{brp.clk_l, 0}}, nullptr,
                   "deliver"},
        ProbBranch{params.ack_loss, brp.l_idle, {}, nullptr, "lose"},
    };

    pb.edge(brp.l_busy, brp.l_idle, {}, ch_gack, SyncKind::kSend, {}, nullptr,
            nullptr, "gack!");
    brp.chan_l = sys.add_process(pb.build());
  }

  // ---- Receiver ------------------------------------------------------------
  {
    ProcessBuilder pb("Receiver");
    brp.r_wait = pb.location("Wait");
    brp.r_proc = pb.location("Proc", {}, /*committed=*/true);
    pb.set_initial(brp.r_wait);

    pb.edge(brp.r_wait, brp.r_proc, {}, ch_get, SyncKind::kReceive, {}, nullptr,
            nullptr, "get?");
    // Fresh frame: deliver, flip the expected bit, acknowledge.
    pb.edge(brp.r_proc, brp.r_wait, {}, ch_pack, SyncKind::kSend, {},
            [vab, vexp](const Valuation& v) { return v[vab] == v[vexp]; },
            [vrcv, vexp](Valuation& v) {
              v[vrcv] += 1;
              v[vexp] ^= 1;
            },
            "pack!(deliver)");
    // Retransmission of a delivered frame: acknowledge without delivering.
    pb.edge(brp.r_proc, brp.r_wait, {}, ch_pack, SyncKind::kSend, {},
            [vab, vexp](const Valuation& v) { return v[vab] != v[vexp]; },
            nullptr, "pack!(dup)");
    brp.receiver = sys.add_process(pb.build());
  }

  if (params.global_clock) {
    brp.clk_gt = sys.add_clock("gt");
    sys.bump_max_constant(brp.clk_gt, params.global_clock_cap);
  }

  sys.validate();
  return brp;
}

}  // namespace quanta::models
