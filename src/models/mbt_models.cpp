#include "models/mbt_models.h"

namespace quanta::models {

namespace {

/// Declares the six software-bus labels in the canonical SwbLabels order.
SwbLabels declare_labels(mbt::Lts& lts) {
  SwbLabels l;
  l.subscribe = lts.add_input("subscribe");
  l.publish = lts.add_input("publish");
  l.unsubscribe = lts.add_input("unsubscribe");
  l.ack = lts.add_output("ack");
  l.notify = lts.add_output("notify");
  l.err = lts.add_output("err");
  return l;
}

/// Adds self-loops for all inputs that are not otherwise enabled, making the
/// LTS input-enabled (the ioco testing hypothesis for implementations).
void make_input_enabled(mbt::Lts& lts) {
  for (int s = 0; s < lts.state_count(); ++s) {
    for (int l : lts.inputs()) {
      if (lts.post(s, l).empty()) lts.add_transition(s, s, l);
    }
  }
}

}  // namespace

mbt::Lts make_swb_spec() {
  mbt::Lts lts;
  SwbLabels l = declare_labels(lts);
  int idle = lts.add_state("Idle");
  int sub_ack = lts.add_state("SubAck");
  int subbed = lts.add_state("Subscribed");
  int pub_a = lts.add_state("PubAckFirst");
  int pub_n = lts.add_state("PubNotifyFirst");
  int pub_a2 = lts.add_state("PubThenNotify");
  int pub_n2 = lts.add_state("PubThenAck");
  int unsub_ack = lts.add_state("UnsubAck");
  int idle_pub = lts.add_state("IdlePubAck");
  lts.set_initial(idle);

  // Subscription handshake.
  lts.add_transition(idle, sub_ack, l.subscribe);
  lts.add_transition(sub_ack, subbed, l.ack);
  // Publish while subscribed: ack and notify in either order.
  lts.add_transition(subbed, pub_a, l.publish);
  lts.add_transition(pub_a, pub_a2, l.ack);
  lts.add_transition(pub_a2, subbed, l.notify);
  lts.add_transition(subbed, pub_n, l.publish);
  lts.add_transition(pub_n, pub_n2, l.notify);
  lts.add_transition(pub_n2, subbed, l.ack);
  // Unsubscribe.
  lts.add_transition(subbed, unsub_ack, l.unsubscribe);
  lts.add_transition(unsub_ack, idle, l.ack);
  // Publish while idle: just an ack, never a notify.
  lts.add_transition(idle, idle_pub, l.publish);
  lts.add_transition(idle_pub, idle, l.ack);
  lts.validate();
  return lts;
}

mbt::Lts make_swb_impl() {
  mbt::Lts lts;
  SwbLabels l = declare_labels(lts);
  int idle = lts.add_state("Idle");
  int sub_ack = lts.add_state("SubAck");
  int subbed = lts.add_state("Subscribed");
  int pub_a = lts.add_state("PubAck");
  int pub_a2 = lts.add_state("PubNotify");
  int unsub_ack = lts.add_state("UnsubAck");
  int idle_pub = lts.add_state("IdlePubAck");
  lts.set_initial(idle);
  lts.add_transition(idle, sub_ack, l.subscribe);
  lts.add_transition(sub_ack, subbed, l.ack);
  lts.add_transition(subbed, pub_a, l.publish);
  lts.add_transition(pub_a, pub_a2, l.ack);       // deterministic order
  lts.add_transition(pub_a2, subbed, l.notify);
  lts.add_transition(subbed, unsub_ack, l.unsubscribe);
  lts.add_transition(unsub_ack, idle, l.ack);
  lts.add_transition(idle, idle_pub, l.publish);
  lts.add_transition(idle_pub, idle, l.ack);
  make_input_enabled(lts);
  lts.validate();
  return lts;
}

namespace {

/// The conforming implementation's skeleton with a hook for the subscribed
/// publish response (the part the mutants break).
enum class PublishBehaviour { kAckNotify, kAckErr, kAckOnly };

mbt::Lts make_swb_variant(PublishBehaviour behaviour, bool unsolicited) {
  mbt::Lts impl;
  SwbLabels l = declare_labels(impl);
  int idle = impl.add_state("Idle");
  int sub_ack = impl.add_state("SubAck");
  int subbed = impl.add_state("Subscribed");
  int pub_a = impl.add_state("PubAck");
  int unsub_ack = impl.add_state("UnsubAck");
  int idle_pub = impl.add_state("IdlePubAck");
  impl.set_initial(idle);
  impl.add_transition(idle, sub_ack, l.subscribe);
  impl.add_transition(sub_ack, subbed, l.ack);
  impl.add_transition(subbed, pub_a, l.publish);
  switch (behaviour) {
    case PublishBehaviour::kAckNotify: {
      int pub_a2 = impl.add_state("PubNotify");
      impl.add_transition(pub_a, pub_a2, l.ack);
      impl.add_transition(pub_a2, subbed, l.notify);
      break;
    }
    case PublishBehaviour::kAckErr: {
      int pub_a2 = impl.add_state("PubErr");
      impl.add_transition(pub_a, pub_a2, l.ack);
      impl.add_transition(pub_a2, subbed, l.err);  // wrong output
      break;
    }
    case PublishBehaviour::kAckOnly:
      impl.add_transition(pub_a, subbed, l.ack);  // notify silently dropped
      break;
  }
  impl.add_transition(subbed, unsub_ack, l.unsubscribe);
  impl.add_transition(unsub_ack, idle, l.ack);
  impl.add_transition(idle, idle_pub, l.publish);
  if (unsolicited) {
    int idle_pub2 = impl.add_state("IdlePubNotify");
    impl.add_transition(idle_pub, idle_pub2, l.ack);
    impl.add_transition(idle_pub2, idle, l.notify);  // not allowed
  } else {
    impl.add_transition(idle_pub, idle, l.ack);
  }
  make_input_enabled(impl);
  impl.validate();
  return impl;
}

}  // namespace

mbt::Lts make_swb_mutant_wrong_output() {
  return make_swb_variant(PublishBehaviour::kAckErr, false);
}

mbt::Lts make_swb_mutant_missing_notify() {
  return make_swb_variant(PublishBehaviour::kAckOnly, false);
}

mbt::Lts make_swb_mutant_unsolicited_notify() {
  return make_swb_variant(PublishBehaviour::kAckNotify, true);
}

// ---- Timed models -----------------------------------------------------------

namespace {

mbt::TimedSpec make_light(int on_lo, int on_hi, bool wrong_second_action) {
  mbt::TimedSpec spec;
  ta::System& sys = spec.system;
  int press = sys.add_channel("press");
  int on = sys.add_channel("on");
  int off = sys.add_channel("off");
  spec.input_actions = {press};
  int x = sys.add_clock("x");

  ta::ProcessBuilder pb("Light");
  int idle = pb.location("Idle");
  int turning_on = pb.location("TurningOn", {ta::cc_le(x, on_hi)});
  int lit = pb.location("Lit");
  int turning_off = pb.location("TurningOff", {ta::cc_le(x, 2)});
  pb.set_initial(idle);

  pb.edge(idle, turning_on, {}, press, ta::SyncKind::kReceive, {{x, 0}},
          nullptr, nullptr, "press?");
  pb.edge(turning_on, lit, {ta::cc_ge(x, on_lo)}, on, ta::SyncKind::kSend, {},
          nullptr, nullptr, "on!");
  pb.edge(lit, turning_off, {}, press, ta::SyncKind::kReceive, {{x, 0}},
          nullptr, nullptr, "press?");
  pb.edge(turning_off, idle, {}, wrong_second_action ? on : off,
          ta::SyncKind::kSend, {}, nullptr, nullptr,
          wrong_second_action ? "on!(bug)" : "off!");
  sys.add_process(pb.build());
  sys.validate();
  return spec;
}

}  // namespace

mbt::TimedSpec make_timed_light_spec() { return make_light(1, 3, false); }

mbt::TimedSpec make_timed_light_late_mutant() { return make_light(4, 6, false); }

mbt::TimedSpec make_timed_light_wrong_action_mutant() {
  return make_light(1, 3, true);
}

}  // namespace quanta::models
