// The Bounded Retransmission Protocol (§III.A of the paper): an
// alternating-bit protocol with at most MAX retransmissions per frame, lossy
// timed channels (Fig. 5), and the Table I property set. Modelled as a PTA
// (ta::System with probabilistic branches):
//
//   Sender:   Send --put!--> WaitAck(x<=TO) --gack?--> next frame / Success
//             WaitAck --x>=TO--> retransmit (rc<MAX) / FailNok / FailDk
//   Chan K:   Idle --put?--> 0.98: Busy(ck<=TD) --get!--> Idle ; 0.02: lost
//   Chan L:   Idle --pack?--> 0.99: Busy(cl<=TD) --gack!--> Idle; 0.01: lost
//   Receiver: Wait --get?--> committed: deliver if bit fresh, always ack
//
// With frame loss 2% and ack loss 1% the per-attempt failure probability is
// p = 1 - 0.98*0.99, giving analytically P1 = 1-(1-p^3)^16 ~ 4.233e-4 and
// P2 = (1-p^3)^15 * p^3 ~ 2.645e-5 — the values of Table I.
#pragma once

#include "common/expr.h"
#include "ta/model.h"

namespace quanta::models {

struct BrpParams {
  int frames = 16;        ///< N
  int max_retrans = 2;    ///< MAX
  int td = 1;             ///< TD: maximal channel delay
  int timeout = -1;       ///< sender timeout TO; -1 means 2*TD + 1
  double msg_loss = 0.02;
  double ack_loss = 0.01;
  /// Adds a never-reset global clock (for time-bounded queries like Dmax);
  /// its digital cap is `global_clock_cap`.
  bool global_clock = false;
  int global_clock_cap = 65;

  int effective_timeout() const { return timeout < 0 ? 2 * td + 1 : timeout; }
};

struct Brp {
  ta::System system;
  BrpParams params;

  // Process indices.
  int sender = 0, chan_k = 0, chan_l = 0, receiver = 0;
  // Clock ids (gt == -1 when absent).
  int clk_x = 0, clk_k = 0, clk_l = 0, clk_gt = -1;
  // Variable indices.
  int var_i = 0, var_rc = 0, var_ab = 0, var_exp = 0, var_rcv = 0;
  // Sender locations.
  int s_send = 0, s_wait = 0, s_success = 0, s_fail_nok = 0, s_fail_dk = 0;
  // Channel / receiver locations.
  int k_idle = 0, k_busy = 0, l_idle = 0, l_busy = 0, r_wait = 0, r_proc = 0;

  // ---- Discrete checks shared by all three analysis engines -------------
  bool is_success(const std::vector<int>& locs) const {
    return locs[static_cast<std::size_t>(sender)] == s_success;
  }
  bool is_fail_nok(const std::vector<int>& locs) const {
    return locs[static_cast<std::size_t>(sender)] == s_fail_nok;
  }
  bool is_fail_dk(const std::vector<int>& locs) const {
    return locs[static_cast<std::size_t>(sender)] == s_fail_dk;
  }
  bool is_done(const std::vector<int>& locs) const {
    return is_success(locs) || is_fail_nok(locs) || is_fail_dk(locs);
  }
  bool no_success(const std::vector<int>& locs) const {
    return is_fail_nok(locs) || is_fail_dk(locs);
  }
  bool sender_waiting(const std::vector<int>& locs) const {
    return locs[static_cast<std::size_t>(sender)] == s_wait;
  }
  bool channels_busy(const std::vector<int>& locs) const {
    return locs[static_cast<std::size_t>(chan_k)] == k_busy ||
           locs[static_cast<std::size_t>(chan_l)] == l_busy;
  }
  bool complete_file(const common::Valuation& vars) const {
    return vars[static_cast<std::size_t>(var_rcv)] == params.frames;
  }
  /// TA2: the receiver's delivered count tracks the sender's current frame.
  bool ta2_ok(const common::Valuation& vars) const {
    auto i = vars[static_cast<std::size_t>(var_i)];
    auto rcv = vars[static_cast<std::size_t>(var_rcv)];
    return rcv == i - 1 || rcv == i;
  }

  // Analytic reference values (see header comment).
  double analytic_p1() const;
  double analytic_p2() const;
};

Brp make_brp(const BrpParams& params = {});

}  // namespace quanta::models
