// Specification and mutant models for the model-based-testing experiments
// (§V): an untimed "software bus" publish/subscribe protocol in the spirit
// of the paper's Neopost case study [30], plus a timed light-switch spec for
// the UPPAAL-TRON-style online testing demo.
#pragma once

#include "mbt/lts.h"
#include "mbt/rtioco.h"

namespace quanta::models {

/// Shared label ids across the software-bus spec and all its mutants (the
/// builders declare labels in a fixed order).
struct SwbLabels {
  int subscribe = 0, publish = 1, unsubscribe = 2;  // inputs
  int ack = 3, notify = 4, err = 5;                 // outputs
};

/// Specification: every request is acked; a publish additionally triggers a
/// notify for subscribed clients, where ack/notify may arrive in either
/// order (implementations may resolve this nondeterminism).
mbt::Lts make_swb_spec();

/// Conforming implementation: picks the ack-then-notify order (a valid
/// reduction of the spec) and is input-enabled.
mbt::Lts make_swb_impl();

/// Mutant 1: emits `err` instead of `notify` after a subscribed publish.
mbt::Lts make_swb_mutant_wrong_output();
/// Mutant 2: silently drops the notify (fails by observed quiescence).
mbt::Lts make_swb_mutant_missing_notify();
/// Mutant 3: notifies even clients that never subscribed.
mbt::Lts make_swb_mutant_unsolicited_notify();

// ---- Timed (rtioco / TRON) models -----------------------------------------

struct TimedLightActions {
  int press = 0;  ///< input channel id
  int on = 1;     ///< output channel id
  int off = 2;    ///< output channel id
};

/// Spec: after `press?`, the light turns `on!` within [1,3] time units; a
/// second `press?` turns it `off!` within [0,2].
mbt::TimedSpec make_timed_light_spec();
/// Mutant: turns on too late (within [4,6]) — a deadline violation.
mbt::TimedSpec make_timed_light_late_mutant();
/// Mutant: answers the second press with `on!` instead of `off!`.
mbt::TimedSpec make_timed_light_wrong_action_mutant();

}  // namespace quanta::models
