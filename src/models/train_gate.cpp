#include "models/train_gate.h"

#include <string>

namespace quanta::models {

using namespace quanta::ta;

TrainGate make_train_gate(int num_trains) {
  TrainGate tg;
  tg.num_trains = num_trains;
  System& sys = tg.system;

  tg.appr_base = sys.add_channel_array("appr", num_trains);
  tg.stop_base = sys.add_channel_array("stop", num_trains);
  tg.go_base = sys.add_channel_array("go", num_trains);
  tg.leave_base = sys.add_channel_array("leave", num_trains);

  // Queue state (Fig. 1c): id_t list[N+1]; int[0,N] len.
  const Value id_max = static_cast<Value>(num_trains > 1 ? num_trains - 1 : 0);
  for (int i = 0; i <= num_trains; ++i) {
    tg.var_list.push_back(
        sys.vars().declare("list[" + std::to_string(i) + "]", 0, 0, id_max));
  }
  tg.var_len = sys.vars().declare("len", 0, 0, static_cast<Value>(num_trains));

  const int len = tg.var_len;
  const std::vector<int> list = tg.var_list;

  auto enqueue = [len, list](Value e) {
    return [len, list, e](Valuation& v) {
      v[static_cast<std::size_t>(list[static_cast<std::size_t>(v[len])])] = e;
      v[len] += 1;
    };
  };
  auto dequeue = [len, list, num_trains](Valuation& v) {
    int n = v[len] - 1;
    for (int i = 0; i < n; ++i) {
      v[list[static_cast<std::size_t>(i)]] = v[list[static_cast<std::size_t>(i + 1)]];
    }
    v[list[static_cast<std::size_t>(n)]] = 0;
    v[len] = static_cast<Value>(n);
    (void)num_trains;
  };
  auto front_is = [len, list](Value e) {
    return [len, list, e](const Valuation& v) {
      return v[len] > 0 && v[list[0]] == e;
    };
  };

  // ---- Trains (Fig. 1a) -------------------------------------------------
  for (int id = 0; id < num_trains; ++id) {
    int x = sys.add_clock("x" + std::to_string(id));
    tg.train_clock.push_back(x);

    ProcessBuilder pb("Train(" + std::to_string(id) + ")");
    int safe = pb.location("Safe", {}, false, false, /*exit_rate=*/1.0 + id);
    int appr = pb.location("Appr", {cc_le(x, 20)});
    int stop = pb.location("Stop");
    int start = pb.location("Start", {cc_le(x, 15)});
    int cross = pb.location("Cross", {cc_le(x, 5)});
    pb.set_initial(safe);

    pb.edge(safe, appr, {}, tg.appr_base + id, SyncKind::kSend, {{x, 0}},
            nullptr, nullptr, "appr[" + std::to_string(id) + "]!");
    pb.edge(appr, cross, {cc_ge(x, 10)}, -1, SyncKind::kNone, {{x, 0}},
            nullptr, nullptr, "cross");
    pb.edge(appr, stop, {cc_le(x, 10)}, tg.stop_base + id, SyncKind::kReceive,
            {}, nullptr, nullptr, "stop[" + std::to_string(id) + "]?");
    pb.edge(stop, start, {}, tg.go_base + id, SyncKind::kReceive, {{x, 0}},
            nullptr, nullptr, "go[" + std::to_string(id) + "]?");
    pb.edge(start, cross, {cc_ge(x, 7)}, -1, SyncKind::kNone, {{x, 0}},
            nullptr, nullptr, "restart-cross");
    pb.edge(cross, safe, {cc_ge(x, 3)}, tg.leave_base + id, SyncKind::kSend,
            {}, nullptr, nullptr, "leave[" + std::to_string(id) + "]!");

    tg.trains.push_back(sys.add_process(pb.build()));
  }

  // ---- Controller (Fig. 1b) ---------------------------------------------
  {
    ProcessBuilder pb("Gate");
    int free = pb.location("Free");
    int occ = pb.location("Occ");
    int stopping = pb.location("Stopping", {}, /*committed=*/true);
    pb.set_initial(free);

    for (int e = 0; e < num_trains; ++e) {
      // Free --appr[e]? (len==0) / enqueue(e)--> Occ
      pb.edge(free, occ, {}, tg.appr_base + e, SyncKind::kReceive, {},
              [len](const Valuation& v) { return v[len] == 0; },
              enqueue(static_cast<Value>(e)),
              "appr[" + std::to_string(e) + "]? (free)");
      // Occ --appr[e]? / enqueue(e)--> Stopping (committed)
      pb.edge(occ, stopping, {}, tg.appr_base + e, SyncKind::kReceive, {},
              nullptr, enqueue(static_cast<Value>(e)),
              "appr[" + std::to_string(e) + "]? (occ)");
      // Occ --leave[e]? (e == front()) / dequeue()--> Free
      pb.edge(occ, free, {}, tg.leave_base + e, SyncKind::kReceive, {},
              front_is(static_cast<Value>(e)), dequeue,
              "leave[" + std::to_string(e) + "]?");
    }
    // Free --go[front()]! (len > 0)--> Occ
    {
      int idx = pb.edge(free, occ);
      Edge& edge = pb.edge_ref(idx);
      edge.sync = SyncKind::kSend;
      edge.channel_fn = [base = tg.go_base, list](const Valuation& v) {
        return base + v[list[0]];
      };
      edge.data_guard = [len](const Valuation& v) { return v[len] > 0; };
      edge.label = "go[front()]!";
    }
    // Stopping --stop[tail()]!--> Occ
    {
      int idx = pb.edge(stopping, occ);
      Edge& edge = pb.edge_ref(idx);
      edge.sync = SyncKind::kSend;
      edge.channel_fn = [base = tg.stop_base, len, list](const Valuation& v) {
        return base + v[list[static_cast<std::size_t>(v[len] - 1)]];
      };
      edge.label = "stop[tail()]!";
    }

    tg.controller = sys.add_process(pb.build());
  }

  sys.validate();
  return tg;
}

}  // namespace quanta::models
