#include "ecdar/tioa.h"

#include <deque>
#include <map>
#include <sstream>
#include <stdexcept>

#include "ecdar/internal.h"

namespace quanta::ecdar {

void Tioa::validate() const {
  system.validate();
  if (system.process_count() != 1) {
    throw std::invalid_argument("Tioa: exactly one process required");
  }
  if (system.has_probabilistic()) {
    throw std::invalid_argument("Tioa: probabilistic branches not allowed");
  }
  for (const auto& e : system.process(0).edges) {
    if (e.sync == ta::SyncKind::kNone) continue;
    bool input_channel = is_input(e.channel);
    bool input_edge = e.sync == ta::SyncKind::kReceive;
    if (input_channel != input_edge) {
      throw std::invalid_argument(
          "Tioa: edge direction inconsistent with input/output partition");
    }
  }
}

namespace internal {

OpenTioaStepper::OpenTioaStepper(const Tioa& spec) : spec_(&spec) {
  spec.validate();
  caps_ = spec.system.max_constants();
  for (auto& c : caps_) c += 1;
}

TioaState OpenTioaStepper::initial() const {
  TioaState s;
  s.loc = process().initial;
  s.vars = spec_->system.vars().initial();
  s.clocks.assign(static_cast<std::size_t>(spec_->system.dim()), 0);
  return s;
}

bool OpenTioaStepper::constraint_ok(const ta::ClockConstraint& c,
                                    const std::vector<std::int32_t>& clocks) {
  if (c.bound >= dbm::kInf) return true;
  std::int64_t diff = static_cast<std::int64_t>(clocks[c.i]) - clocks[c.j];
  std::int64_t m = dbm::bound_value(c.bound);
  return dbm::bound_is_strict(c.bound) ? diff < m : diff <= m;
}

bool OpenTioaStepper::edge_enabled(const TioaState& s, const ta::Edge& e) const {
  if (e.source != s.loc) return false;
  if (e.data_guard && !e.data_guard(s.vars)) return false;
  for (const auto& c : e.guard) {
    if (!constraint_ok(c, s.clocks)) return false;
  }
  return true;
}

bool OpenTioaStepper::invariant_ok(const TioaState& s) const {
  for (const auto& c :
       process().locations[static_cast<std::size_t>(s.loc)].invariant) {
    if (!constraint_ok(c, s.clocks)) return false;
  }
  return true;
}

TioaState OpenTioaStepper::apply(const TioaState& s, const ta::Edge& e) const {
  TioaState next = s;
  next.loc = e.target;
  for (const auto& [clock, value] : e.resets) {
    next.clocks[static_cast<std::size_t>(clock)] = value;
  }
  if (e.update) {
    e.update(next.vars);
    spec_->system.vars().check_bounds(next.vars);
  }
  return next;
}

bool OpenTioaStepper::can_delay(const TioaState& s) const {
  TioaState next = delay(s);
  return invariant_ok(next);
}

TioaState OpenTioaStepper::delay(const TioaState& s) const {
  TioaState next = s;
  for (std::size_t i = 1; i < next.clocks.size(); ++i) {
    if (next.clocks[i] < caps_[i]) next.clocks[i] += 1;
  }
  return next;
}

std::vector<const ta::Edge*> OpenTioaStepper::enabled_edges(
    const TioaState& s) const {
  std::vector<const ta::Edge*> result;
  for (const auto& e : process().edges) {
    if (edge_enabled(s, e)) result.push_back(&e);
  }
  return result;
}

const ta::Edge* OpenTioaStepper::enabled_edge_for(const TioaState& s,
                                                  int channel,
                                                  ta::SyncKind kind) const {
  const ta::Edge* found = nullptr;
  for (const auto& e : process().edges) {
    if (e.sync != kind || e.channel != channel) continue;
    if (!edge_enabled(s, e)) continue;
    if (found != nullptr) {
      throw std::invalid_argument(
          "Tioa: nondeterministic action — refinement requires determinism");
    }
    found = &e;
  }
  return found;
}

std::string OpenTioaStepper::describe(const TioaState& s) const {
  std::ostringstream os;
  os << process().name << "."
     << process().locations[static_cast<std::size_t>(s.loc)].name << " [";
  for (std::size_t i = 1; i < s.clocks.size(); ++i) {
    if (i > 1) os << ",";
    os << spec_->system.clock_name(static_cast<int>(i)) << "=" << s.clocks[i];
  }
  os << "]";
  return os.str();
}

}  // namespace internal

ConsistencyResult check_consistency(const Tioa& spec) {
  internal::OpenTioaStepper stepper(spec);
  std::map<internal::TioaState, bool> seen;
  std::deque<internal::TioaState> work;
  work.push_back(stepper.initial());
  seen[work.front()] = true;

  ConsistencyResult result;
  while (!work.empty()) {
    internal::TioaState s = std::move(work.front());
    work.pop_front();
    auto edges = stepper.enabled_edges(s);
    if (!stepper.can_delay(s) && edges.empty()) {
      result.consistent = false;
      result.error_state = stepper.describe(s);
      return result;
    }
    if (stepper.can_delay(s)) {
      internal::TioaState n = stepper.delay(s);
      if (seen.emplace(n, true).second) work.push_back(std::move(n));
    }
    for (const ta::Edge* e : edges) {
      internal::TioaState n = stepper.apply(s, *e);
      if (seen.emplace(n, true).second) work.push_back(std::move(n));
    }
  }
  result.consistent = true;
  return result;
}

}  // namespace quanta::ecdar
