// Internal helpers shared by the ECDAR consistency and refinement checkers:
// a digital-clocks stepper for open (single-process) timed I/O automata.
#pragma once

#include <compare>
#include <string>
#include <vector>

#include "ecdar/tioa.h"

namespace quanta::ecdar::internal {

struct TioaState {
  int loc = 0;
  ta::Valuation vars;
  std::vector<std::int32_t> clocks;

  auto operator<=>(const TioaState&) const = default;
};

class OpenTioaStepper {
 public:
  explicit OpenTioaStepper(const Tioa& spec);

  const ta::Process& process() const { return spec_->system.process(0); }
  const Tioa& spec() const { return *spec_; }

  TioaState initial() const;
  bool invariant_ok(const TioaState& s) const;
  bool edge_enabled(const TioaState& s, const ta::Edge& e) const;
  TioaState apply(const TioaState& s, const ta::Edge& e) const;
  bool can_delay(const TioaState& s) const;
  TioaState delay(const TioaState& s) const;
  std::vector<const ta::Edge*> enabled_edges(const TioaState& s) const;
  /// The unique enabled edge for (channel, kind), or nullptr; throws on
  /// nondeterminism.
  const ta::Edge* enabled_edge_for(const TioaState& s, int channel,
                                   ta::SyncKind kind) const;
  std::string describe(const TioaState& s) const;

  static bool constraint_ok(const ta::ClockConstraint& c,
                            const std::vector<std::int32_t>& clocks);

 private:
  const Tioa* spec_;
  std::vector<std::int32_t> caps_;
};

}  // namespace quanta::ecdar::internal
