// Refinement checking between timed I/O specifications (ECDAR's core
// operation): S refines T iff an alternating simulation relates their
// initial states — T's inputs must be accepted by S, S's outputs must be
// allowed by T, and S's delays must be matched by T.
#pragma once

#include "common/verdict.h"
#include "core/search.h"
#include "ecdar/tioa.h"

namespace quanta::ecdar {

struct RefinementResult {
  /// kHolds = every alternating-simulation obligation was discharged;
  /// kViolated = a failing pair was found (see reason — sound even under a
  /// budget, the counterexample is concrete); kUnknown = the obligation
  /// space was truncated by a SearchLimits/Budget bound.
  common::Verdict verdict = common::Verdict::kUnknown;
  std::size_t pairs_explored = 0;
  core::SearchStats stats;
  /// When violated: a printable reason for the first failing pair.
  std::string reason;

  bool refines() const { return verdict == common::Verdict::kHolds; }
  common::StopReason stop() const { return stats.stop; }
};

/// Checks S <= T (S refines T). Both specifications must be deterministic
/// (at most one enabled edge per action per state) and share action ids and
/// input/output polarity; throws std::invalid_argument otherwise.
RefinementResult check_refinement(const Tioa& s, const Tioa& t,
                                  const core::SearchLimits& limits = {});

}  // namespace quanta::ecdar
