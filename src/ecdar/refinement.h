// Refinement checking between timed I/O specifications (ECDAR's core
// operation): S refines T iff an alternating simulation relates their
// initial states — T's inputs must be accepted by S, S's outputs must be
// allowed by T, and S's delays must be matched by T.
#pragma once

#include "ecdar/tioa.h"

namespace quanta::ecdar {

struct RefinementResult {
  bool refines = false;
  std::size_t pairs_explored = 0;
  /// When !refines: a printable reason for the first failing pair.
  std::string reason;
};

/// Checks S <= T (S refines T). Both specifications must be deterministic
/// (at most one enabled edge per action per state) and share action ids and
/// input/output polarity; throws std::invalid_argument otherwise.
RefinementResult check_refinement(const Tioa& s, const Tioa& t);

}  // namespace quanta::ecdar
