#include "ecdar/refinement.h"

#include <span>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/hash.h"
#include "store/pool.h"
#include "core/explore.h"
#include "core/state_store.h"
#include "core/worklist.h"
#include "ecdar/internal.h"

namespace quanta::ecdar {

using internal::OpenTioaStepper;
using internal::TioaState;

namespace {

/// An alternating-simulation obligation: a pair of (refining, refined)
/// states, interned exactly into the shared exploration core.
struct PairState {
  TioaState s;
  TioaState t;

  bool operator==(const PairState&) const = default;
};

std::size_t tioa_hash(const TioaState& s) {
  std::size_t seed = common::hash_vector(s.vars);
  common::hash_combine(seed, common::hash_vector(s.clocks));
  common::hash_combine(seed, static_cast<std::size_t>(s.loc));
  return seed;
}

std::size_t tioa_bytes(const TioaState& s) {
  return s.vars.capacity() * sizeof(decltype(s.vars)::value_type) +
         s.clocks.capacity() * sizeof(decltype(s.clocks)::value_type);
}

// TioaState <-> pool payload: one blob [loc][nvars][vars...][clocks...] per
// side (the clocks length is implied by the record length). Many pairs share
// one side, so each side is interned separately.
store::Ref intern_tioa(store::ZonePool& p, const TioaState& s) {
  auto& buf = p.scratch();
  buf.clear();
  buf.push_back(s.loc);
  buf.push_back(static_cast<std::int32_t>(s.vars.size()));
  buf.insert(buf.end(), s.vars.begin(), s.vars.end());
  buf.insert(buf.end(), s.clocks.begin(), s.clocks.end());
  return p.intern(buf);
}

TioaState unpack_tioa(const store::ZonePool& p, store::Ref r) {
  const std::span<const std::int32_t> d = p.data(r);
  TioaState s;
  s.loc = d[0];
  const std::size_t nvars = static_cast<std::size_t>(d[1]);
  s.vars.assign(d.begin() + 2, d.begin() + 2 + static_cast<std::ptrdiff_t>(nvars));
  s.clocks.assign(d.begin() + 2 + static_cast<std::ptrdiff_t>(nvars), d.end());
  return s;
}

bool tioa_equals(const store::ZonePool& p, store::Ref r, const TioaState& s) {
  const std::span<const std::int32_t> d = p.data(r);
  if (d.size() != 2 + s.vars.size() + s.clocks.size()) return false;
  if (d[0] != s.loc || d[1] != static_cast<std::int32_t>(s.vars.size())) {
    return false;
  }
  std::size_t pos = 2;
  for (const auto v : s.vars) {
    if (d[pos++] != v) return false;
  }
  for (const auto c : s.clocks) {
    if (d[pos++] != c) return false;
  }
  return true;
}

struct PairTraits {
  static constexpr bool kSupportsInclusion = false;

  static std::size_t hash(const PairState& p) {
    std::size_t seed = tioa_hash(p.s);
    common::hash_combine(seed, tioa_hash(p.t));
    return seed;
  }
  static bool equal(const PairState& a, const PairState& b) { return a == b; }
  static std::size_t memory_bytes(const PairState& p) {
    return tioa_bytes(p.s) + tioa_bytes(p.t);
  }

  // --- pooled storage ---

  struct Pooled {
    store::Ref s;
    store::Ref t;
  };

  static Pooled pool(store::ZonePool& p, const PairState& pair) {
    return Pooled{intern_tioa(p, pair.s), intern_tioa(p, pair.t)};
  }
  static PairState unpool(const store::ZonePool& p, const Pooled& st) {
    return PairState{unpack_tioa(p, st.s), unpack_tioa(p, st.t)};
  }
  static bool equal(const store::ZonePool& p, const Pooled& st,
                    const PairState& pair) {
    return tioa_equals(p, st.s, pair.s) && tioa_equals(p, st.t, pair.t);
  }
};

RefinementResult check_refinement_impl(const Tioa& s_spec,
                                       const Tioa& t_spec,
                                       const core::SearchLimits& limits) {
  OpenTioaStepper s(s_spec);
  OpenTioaStepper t(t_spec);
  if (s_spec.inputs != t_spec.inputs) {
    throw std::invalid_argument(quanta::context(
        "ecdar.check_refinement",
        "specifications must share the input alphabet (got ",
        s_spec.inputs.size(), " vs ", t_spec.inputs.size(), " inputs)"));
  }

  // Co-inductive check by on-the-fly exploration of state pairs: assume the
  // relation holds, explore obligations, and fail on the first pair where an
  // alternating-simulation condition breaks. Sound for finite digital state
  // spaces because every reachable obligation is eventually checked.
  core::StateStore<PairState, PairTraits> seen;
  core::Worklist work(core::SearchOrder::kBfs);
  auto push = [&](TioaState a, TioaState b) {
    auto [id, inserted] = seen.intern(PairState{std::move(a), std::move(b)});
    if (inserted) work.push(id);
  };
  push(s.initial(), t.initial());

  RefinementResult result;
  auto fail = [&](const TioaState& ss, const TioaState& ts,
                  const std::string& why) {
    result.verdict = common::Verdict::kViolated;
    std::ostringstream os;
    os << why << " at pair (" << s.describe(ss) << ", " << t.describe(ts) << ")";
    result.reason = os.str();
    result.stats.states_stored = seen.size();
    return result;
  };

  const common::Budget& budget = limits.budget;
  const bool governed_run = budget.active();
  std::size_t poll_in = 1;
  while (!work.empty()) {
    // Copy: the store may grow while this pair's obligations are pushed.
    const PairState pair = seen.state(work.pop().id);
    const TioaState& ss = pair.s;
    const TioaState& ts = pair.t;
    ++result.pairs_explored;
    ++result.stats.states_explored;
    if (limits.reached(seen.size())) {
      result.stats.stop_for(common::StopReason::kStateLimit);
      break;
    }
    if (governed_run && --poll_in == 0) {
      poll_in = core::kBudgetPollStride;
      const common::StopReason r = budget.poll(seen.memory_bytes());
      if (r != common::StopReason::kCompleted) {
        result.stats.stop_for(r);
        break;
      }
    }

    // (i) Inputs offered by T must be accepted by S.
    for (const auto& e : t.process().edges) {
      if (e.sync != ta::SyncKind::kReceive) continue;
      if (!t.edge_enabled(ts, e)) continue;
      const ta::Edge* match =
          s.enabled_edge_for(ss, e.channel, ta::SyncKind::kReceive);
      if (match == nullptr) {
        return fail(ss, ts,
                    "input '" + t_spec.system.channel(e.channel).name +
                        "' offered by the refined spec is not accepted");
      }
      push(s.apply(ss, *match), t.apply(ts, e));
    }
    // (ii) Outputs produced by S must be allowed by T.
    for (const auto& e : s.process().edges) {
      if (e.sync != ta::SyncKind::kSend) continue;
      if (!s.edge_enabled(ss, e)) continue;
      const ta::Edge* match =
          t.enabled_edge_for(ts, e.channel, ta::SyncKind::kSend);
      if (match == nullptr) {
        return fail(ss, ts,
                    "output '" + s_spec.system.channel(e.channel).name +
                        "' of the refining spec is not allowed");
      }
      push(s.apply(ss, *match), t.apply(ts, e));
    }
    // (iii) Delays of S must be matched by T.
    if (s.can_delay(ss)) {
      if (!t.can_delay(ts)) {
        return fail(ss, ts, "the refining spec delays where the refined cannot");
      }
      push(s.delay(ss), t.delay(ts));
    }
  }
  result.stats.states_stored = seen.size();
  if (!result.stats.truncated) result.verdict = common::Verdict::kHolds;
  return result;
}

}  // namespace

RefinementResult check_refinement(const Tioa& s_spec, const Tioa& t_spec,
                                  const core::SearchLimits& limits) {
  limits.validate("ecdar.check_refinement");
  return common::governed(
      [&] { return check_refinement_impl(s_spec, t_spec, limits); },
      [](common::StopReason r) {
        RefinementResult result;
        result.stats.stop_for(r);
        return result;
      });
}

}  // namespace quanta::ecdar
