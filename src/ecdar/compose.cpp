#include "ecdar/compose.h"

#include <map>
#include <stdexcept>

namespace quanta::ecdar {

namespace {

void require_clock_only(const Tioa& t, const char* side) {
  if (t.system.vars().size() != 0) {
    throw std::invalid_argument(std::string("compose: specification '") +
                                side + "' uses discrete variables");
  }
}

/// Shifts the clock indices of a constraint list.
std::vector<ta::ClockConstraint> shift(const std::vector<ta::ClockConstraint>& ccs,
                                       int offset) {
  std::vector<ta::ClockConstraint> out;
  out.reserve(ccs.size());
  for (auto c : ccs) {
    if (c.i != 0) c.i += offset;
    if (c.j != 0) c.j += offset;
    out.push_back(c);
  }
  return out;
}

std::vector<std::pair<int, ta::Value>> shift_resets(
    const std::vector<std::pair<int, ta::Value>>& resets, int offset) {
  std::vector<std::pair<int, ta::Value>> out;
  out.reserve(resets.size());
  for (auto [clock, value] : resets) out.emplace_back(clock + offset, value);
  return out;
}

void append(std::vector<ta::ClockConstraint>& dst,
            const std::vector<ta::ClockConstraint>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace

Tioa compose(const Tioa& a, const Tioa& b) {
  a.validate();
  b.validate();
  require_clock_only(a, "a");
  require_clock_only(b, "b");
  const ta::Process& pa = a.system.process(0);
  const ta::Process& pb = b.system.process(0);

  Tioa out;
  // Channels, matched by name.
  std::map<std::string, int> chan_by_name;
  std::vector<int> a_chan(static_cast<std::size_t>(a.system.channel_count()));
  std::vector<int> b_chan(static_cast<std::size_t>(b.system.channel_count()));
  auto intern_channel = [&](const std::string& name) {
    auto it = chan_by_name.find(name);
    if (it != chan_by_name.end()) return it->second;
    int id = out.system.add_channel(name);
    chan_by_name.emplace(name, id);
    return id;
  };
  for (int c = 0; c < a.system.channel_count(); ++c) {
    a_chan[static_cast<std::size_t>(c)] =
        intern_channel(a.system.channel(c).name);
  }
  std::map<std::string, bool> in_a;
  for (int c = 0; c < a.system.channel_count(); ++c) {
    in_a[a.system.channel(c).name] = true;
  }
  bool any_shared = false;
  for (int c = 0; c < b.system.channel_count(); ++c) {
    const std::string& name = b.system.channel(c).name;
    if (in_a.count(name)) any_shared = true;
    b_chan[static_cast<std::size_t>(c)] = intern_channel(name);
  }
  (void)any_shared;

  // Polarity of composed channels: input iff input on every side that knows
  // the action; shared output/input pairs become outputs; two outputs clash.
  for (const auto& [name, id] : chan_by_name) {
    bool a_output = false, b_output = false;
    for (int c = 0; c < a.system.channel_count(); ++c) {
      if (a.system.channel(c).name == name && !a.is_input(c)) a_output = true;
    }
    for (int c = 0; c < b.system.channel_count(); ++c) {
      if (b.system.channel(c).name == name && !b.is_input(c)) b_output = true;
    }
    if (a_output && b_output) {
      throw std::invalid_argument("compose: action '" + name +
                                  "' is an output on both sides");
    }
    bool is_output = a_output || b_output;
    if (!is_output) out.inputs.insert(id);
  }

  // Clocks: a's, then b's (prefix on name clash).
  const int offset = a.system.clock_count();
  for (int c = 1; c <= a.system.clock_count(); ++c) {
    out.system.add_clock(a.system.clock_name(c));
  }
  for (int c = 1; c <= b.system.clock_count(); ++c) {
    std::string name = b.system.clock_name(c);
    bool clash = false;
    for (int d = 1; d <= a.system.clock_count(); ++d) {
      if (a.system.clock_name(d) == name) clash = true;
    }
    out.system.add_clock(clash ? pb.name + "." + name : name);
  }

  // Product locations.
  ta::ProcessBuilder builder(pa.name + "||" + pb.name);
  const int nb = static_cast<int>(pb.locations.size());
  auto loc_id = [nb](int i, int j) { return i * nb + j; };
  for (const auto& la : pa.locations) {
    for (const auto& lb : pb.locations) {
      std::vector<ta::ClockConstraint> inv = la.invariant;
      append(inv, shift(lb.invariant, offset));
      builder.location(la.name + "|" + lb.name, std::move(inv),
                       la.committed || lb.committed, la.urgent || lb.urgent);
    }
  }
  builder.set_initial(loc_id(pa.initial, pb.initial));

  auto shared = [&](int composed_channel) {
    // Shared iff both sides declare an edge-bearing channel with this name.
    const std::string& name = out.system.channel(composed_channel).name;
    bool in_a_edges = false, in_b_edges = false;
    for (const auto& e : pa.edges) {
      if (e.channel >= 0 && a.system.channel(e.channel).name == name) {
        in_a_edges = true;
      }
    }
    for (const auto& e : pb.edges) {
      if (e.channel >= 0 && b.system.channel(e.channel).name == name) {
        in_b_edges = true;
      }
    }
    return in_a_edges && in_b_edges;
  };

  // Edges.
  for (int j = 0; j < nb; ++j) {
    for (const auto& ea : pa.edges) {
      int ch = ea.channel >= 0 ? a_chan[static_cast<std::size_t>(ea.channel)] : -1;
      if (ch >= 0 && shared(ch)) continue;  // handled jointly below
      int idx = builder.edge(loc_id(ea.source, j), loc_id(ea.target, j));
      ta::Edge& e = builder.edge_ref(idx);
      e.guard = ea.guard;
      e.resets = ea.resets;
      e.channel = ch;
      e.sync = ea.sync;
      e.label = ea.label;
    }
  }
  for (int i = 0; i < static_cast<int>(pa.locations.size()); ++i) {
    for (const auto& eb : pb.edges) {
      int ch = eb.channel >= 0 ? b_chan[static_cast<std::size_t>(eb.channel)] : -1;
      if (ch >= 0 && shared(ch)) continue;
      int idx = builder.edge(loc_id(i, eb.source), loc_id(i, eb.target));
      ta::Edge& e = builder.edge_ref(idx);
      e.guard = shift(eb.guard, offset);
      e.resets = shift_resets(eb.resets, offset);
      e.channel = ch;
      e.sync = eb.sync;
      e.label = eb.label;
    }
  }
  // Joint edges on shared actions.
  for (const auto& ea : pa.edges) {
    if (ea.channel < 0) continue;
    int ch = a_chan[static_cast<std::size_t>(ea.channel)];
    if (!shared(ch)) continue;
    for (const auto& eb : pb.edges) {
      if (eb.channel < 0) continue;
      if (b_chan[static_cast<std::size_t>(eb.channel)] != ch) continue;
      int idx = builder.edge(loc_id(ea.source, eb.source),
                             loc_id(ea.target, eb.target));
      ta::Edge& e = builder.edge_ref(idx);
      e.guard = ea.guard;
      append(e.guard, shift(eb.guard, offset));
      e.resets = ea.resets;
      for (auto r : shift_resets(eb.resets, offset)) e.resets.push_back(r);
      e.channel = ch;
      // Output wins over input; input-input stays input.
      e.sync = (ea.sync == ta::SyncKind::kSend || eb.sync == ta::SyncKind::kSend)
                   ? ta::SyncKind::kSend
                   : ta::SyncKind::kReceive;
      e.label = ea.label + "&" + eb.label;
    }
  }

  out.system.add_process(builder.build());
  out.validate();
  return out;
}

}  // namespace quanta::ecdar
