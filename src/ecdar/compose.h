// Structural composition of timed I/O specifications (ECDAR's parallel
// product): shared actions synchronise — an output of one side matched with
// an input of the other becomes an output of the composite; input-input
// stays an input — and unshared actions interleave. Output-output clashes
// on a shared action are rejected.
//
// Restricted to clock-only specifications (no discrete variables), which is
// the ECDAR fragment; throws otherwise.
#pragma once

#include "ecdar/tioa.h"

namespace quanta::ecdar {

/// Parallel composition a || b. Channels are matched by name; clocks are
/// disjoint (renamed with a process prefix on collision); the location space
/// is the product with conjoined invariants.
Tioa compose(const Tioa& a, const Tioa& b);

}  // namespace quanta::ecdar
