// ECDAR-style specification theory for real-time systems (§II, timed I/O
// automata): specifications are open timed automata whose actions split into
// inputs and outputs; the theory's core judgement is *refinement* — an
// alternating simulation where the refining spec must accept at least the
// inputs and emit at most the outputs of the refined one, while matching
// delays. Checked here on the digital-clocks semantics for deterministic
// TIOA (DESIGN.md §4).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ta/model.h"

namespace quanta::ecdar {

/// A timed I/O specification: one TA process; channel ids are actions,
/// partitioned by `inputs` (all other channels on edges are outputs).
/// Edge sync kinds encode direction: kReceive = input, kSend = output.
struct Tioa {
  ta::System system;
  std::set<int> inputs;

  bool is_input(int channel) const { return inputs.count(channel) > 0; }
  void validate() const;
};

struct ConsistencyResult {
  bool consistent = false;
  std::string error_state;  ///< a timelocked state, when inconsistent
};

/// A spec is consistent when no reachable state is timelocked (time blocked
/// with no enabled action): such states admit no implementation.
ConsistencyResult check_consistency(const Tioa& spec);

}  // namespace quanta::ecdar
