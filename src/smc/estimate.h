// Monte-Carlo probability estimation for time-bounded reachability, with
// Chernoff-Hoeffding sample-size selection and Clopper-Pearson confidence
// intervals — the quantitative core of UPPAAL-SMC's Pr[<=T](<> goal) query.
// Runs execute on an exec::Executor with one common::RngStream seed per run
// index, so the estimate is bit-identical for every worker count (the
// sequential path is just a 1-worker executor).
#pragma once

#include <cstdint>

#include "exec/executor.h"
#include "smc/simulator.h"

namespace quanta::smc {

struct Estimate {
  double p_hat = 0.0;
  double ci_low = 0.0;
  double ci_high = 1.0;
  std::size_t runs = 0;
  std::size_t hits = 0;
};

/// Estimates Pr[<= T](<> goal) with `runs` simulations; the confidence
/// interval is Clopper-Pearson at level 1 - alpha. Run i draws from
/// RngStream(seed).rng(i); hits are tallied per worker and merged, so the
/// result does not depend on `ex.workers()`.
Estimate estimate_probability_runs(const ta::System& sys,
                                   const TimeBoundedReach& prop,
                                   std::size_t runs, double alpha,
                                   std::uint64_t seed, exec::Executor& ex,
                                   exec::RunTelemetry* telemetry = nullptr);

/// Same, on the process-wide executor (QUANTA_JOBS workers).
Estimate estimate_probability_runs(const ta::System& sys,
                                   const TimeBoundedReach& prop,
                                   std::size_t runs, double alpha,
                                   std::uint64_t seed);

/// UPPAAL-SMC style: chooses the number of runs from the Chernoff-Hoeffding
/// bound so that |p_hat - p| <= epsilon with probability >= 1 - delta.
Estimate estimate_probability(const ta::System& sys,
                              const TimeBoundedReach& prop, double epsilon,
                              double delta, std::uint64_t seed,
                              exec::Executor& ex,
                              exec::RunTelemetry* telemetry = nullptr);
Estimate estimate_probability(const ta::System& sys,
                              const TimeBoundedReach& prop, double epsilon,
                              double delta, std::uint64_t seed);

}  // namespace quanta::smc
