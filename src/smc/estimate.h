// Monte-Carlo probability estimation for time-bounded reachability, with
// Chernoff-Hoeffding sample-size selection and Clopper-Pearson confidence
// intervals — the quantitative core of UPPAAL-SMC's Pr[<=T](<> goal) query.
// Runs execute on an exec::Executor with one common::RngStream seed per run
// index, so the estimate is bit-identical for every worker count (the
// sequential path is just a 1-worker executor).
#pragma once

#include <cstdint>

#include "ckpt/checkpoint.h"
#include "common/budget.h"
#include "common/verdict.h"
#include "exec/executor.h"
#include "smc/simulator.h"

namespace quanta::smc {

struct Estimate {
  double p_hat = 0.0;
  double ci_low = 0.0;
  double ci_high = 1.0;
  std::size_t runs = 0;       ///< requested sample size
  std::size_t completed = 0;  ///< runs actually simulated before a stop
  std::size_t hits = 0;
  /// kHolds = the full sample was collected, so p_hat / the CI carry the
  /// requested statistical guarantee. kUnknown = the budget (deadline,
  /// cancellation, fault) cut the sample short; p_hat and the CI are then
  /// computed over the `completed` runs only, and — unlike a completed
  /// estimate — WHICH runs completed depends on scheduling, so a partial
  /// estimate is not bit-reproducible across worker counts. Exception: with
  /// checkpointing enabled the engine runs in fixed batches and a partial
  /// estimate covers exactly the run indices [0, completed), which IS
  /// reproducible (run i is a pure function of the seed and i).
  common::Verdict verdict = common::Verdict::kUnknown;
  common::StopReason stop = common::StopReason::kCompleted;
  /// Checkpoint/resume outcome of this run (see the `checkpoint` parameter).
  ckpt::ResumeInfo resume;
};

/// Estimates Pr[<= T](<> goal) with `runs` simulations; the confidence
/// interval is Clopper-Pearson at level 1 - alpha. Run i draws from
/// RngStream(seed).rng(i); hits are tallied per worker and merged, so the
/// result does not depend on `ex.workers()`.
///
/// With `checkpoint` enabled (src/ckpt) the sample is collected in fixed
/// batches; on a budget stop the prefix-contiguous tally (completed runs,
/// hits) is snapshotted and a later call resumes at the next run index.
/// Because run i is deterministic given (seed, i), the resumed estimate is
/// bit-identical to an uninterrupted one. A batch that was cut short mid-air
/// by the watchdog is discarded (those runs are re-simulated on resume), so
/// checkpoints only ever describe run prefixes. The checkpoint fingerprint
/// covers the system, the time bound, runs, alpha, seed and the canonical
/// AST of the goal predicate (common::Predicate) — goals built from plain
/// closures canonicalize alike, so wrap those in common::labeled_pred.
Estimate estimate_probability_runs(const ta::System& sys,
                                   const TimeBoundedReach& prop,
                                   std::size_t runs, double alpha,
                                   std::uint64_t seed, exec::Executor& ex,
                                   exec::RunTelemetry* telemetry = nullptr,
                                   const common::Budget& budget = {},
                                   const ckpt::Options& checkpoint = {});

/// Same, on the process-wide executor (QUANTA_JOBS workers).
Estimate estimate_probability_runs(const ta::System& sys,
                                   const TimeBoundedReach& prop,
                                   std::size_t runs, double alpha,
                                   std::uint64_t seed,
                                   const common::Budget& budget = {},
                                   const ckpt::Options& checkpoint = {});

/// UPPAAL-SMC style: chooses the number of runs from the Chernoff-Hoeffding
/// bound so that |p_hat - p| <= epsilon with probability >= 1 - delta.
Estimate estimate_probability(const ta::System& sys,
                              const TimeBoundedReach& prop, double epsilon,
                              double delta, std::uint64_t seed,
                              exec::Executor& ex,
                              exec::RunTelemetry* telemetry = nullptr,
                              const common::Budget& budget = {});
Estimate estimate_probability(const ta::System& sys,
                              const TimeBoundedReach& prop, double epsilon,
                              double delta, std::uint64_t seed,
                              const common::Budget& budget = {});

}  // namespace quanta::smc
