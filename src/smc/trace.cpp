#include "smc/trace.h"

namespace quanta::smc {

Observable var_observable(const ta::System& sys, const std::string& var) {
  int idx = sys.vars().index_of(var);
  return Observable{var, [idx](const ta::ConcreteState& s) {
                      return static_cast<double>(
                          s.vars[static_cast<std::size_t>(idx)]);
                    }};
}

Observable loc_observable(const ta::System& sys, const std::string& process,
                          const std::string& location) {
  int p = sys.process_index(process);
  int l = sys.process(p).location_index(location);
  return Observable{process + "." + location,
                    [p, l](const ta::ConcreteState& s) {
                      return s.locs[static_cast<std::size_t>(p)] == l ? 1.0
                                                                      : 0.0;
                    }};
}

std::vector<Trajectory> simulate_traces(const ta::System& sys,
                                        const std::vector<Observable>& obs,
                                        double time_bound, std::size_t runs,
                                        std::uint64_t seed) {
  Simulator sim(sys, seed);
  std::vector<Trajectory> result;
  result.reserve(runs);
  for (std::size_t r = 0; r < runs; ++r) {
    Trajectory traj;
    for (const auto& o : obs) traj.names.push_back(o.name);
    sim.set_observer([&traj, &obs](const ta::ConcreteState& s, double t) {
      TracePoint point;
      point.time = t;
      point.values.reserve(obs.size());
      for (const auto& o : obs) point.values.push_back(o.value(s));
      traj.points.push_back(std::move(point));
    });
    TimeBoundedReach prop;
    prop.time_bound = time_bound;
    prop.goal = [](const ta::ConcreteState&) { return false; };
    sim.run(prop);
    result.push_back(std::move(traj));
  }
  sim.set_observer(nullptr);
  return result;
}

}  // namespace quanta::smc
