// Empirical cumulative distribution of first-hit times — the machinery
// behind the paper's Fig. 4 ("cumulative probability distribution for the
// trains to cross in function of time").
#pragma once

#include <cstdint>
#include <vector>

#include "exec/executor.h"
#include "smc/simulator.h"

namespace quanta::smc {

/// Runs `runs` simulations of Pr[<= prop.time_bound](<> prop.goal) and
/// returns the hit time of every satisfied run, ordered by run index
/// (unsatisfied runs contribute nothing; the CDF treats them as "after the
/// bound"). Run i draws from RngStream(seed).rng(i), so the returned series
/// is bit-identical for every worker count.
std::vector<double> first_hit_times(const ta::System& sys,
                                    const TimeBoundedReach& prop,
                                    std::size_t runs, std::uint64_t seed,
                                    exec::Executor& ex,
                                    exec::RunTelemetry* telemetry = nullptr);

/// Same, on the process-wide executor (QUANTA_JOBS workers).
std::vector<double> first_hit_times(const ta::System& sys,
                                    const TimeBoundedReach& prop,
                                    std::size_t runs, std::uint64_t seed);

struct CdfSeries {
  std::vector<double> grid;   ///< time points
  std::vector<double> prob;   ///< P(hit time <= grid[i])
};

/// Empirical CDF of the hit times over `total_runs` runs, evaluated on a
/// uniform grid of `points` values in [0, horizon].
CdfSeries empirical_cdf(const std::vector<double>& hit_times,
                        std::size_t total_runs, double horizon, int points);

}  // namespace quanta::smc
