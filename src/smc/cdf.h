// Empirical cumulative distribution of first-hit times — the machinery
// behind the paper's Fig. 4 ("cumulative probability distribution for the
// trains to cross in function of time").
#pragma once

#include <cstdint>
#include <vector>

#include "common/budget.h"
#include "common/verdict.h"
#include "exec/executor.h"
#include "smc/simulator.h"

namespace quanta::smc {

/// Hit-time series with degradation metadata: the budget-governed variant of
/// first_hit_times. `times` holds the hit times of the satisfied *completed*
/// runs in run-index order; runs the budget skipped contribute nothing and
/// are counted out of `completed`.
struct HitTimesResult {
  std::vector<double> times;
  std::size_t runs = 0;       ///< requested
  std::size_t completed = 0;  ///< actually simulated
  /// kHolds = all requested runs were simulated (the series is
  /// bit-identical for every worker count); kUnknown = the budget cut the
  /// sample short (the surviving subset depends on scheduling).
  common::Verdict verdict = common::Verdict::kUnknown;
  common::StopReason stop = common::StopReason::kCompleted;
};

/// Budget-governed sampling of first-hit times; see first_hit_times.
HitTimesResult sample_hit_times(const ta::System& sys,
                                const TimeBoundedReach& prop,
                                std::size_t runs, std::uint64_t seed,
                                exec::Executor& ex,
                                const common::Budget& budget,
                                exec::RunTelemetry* telemetry = nullptr);

/// Runs `runs` simulations of Pr[<= prop.time_bound](<> prop.goal) and
/// returns the hit time of every satisfied run, ordered by run index
/// (unsatisfied runs contribute nothing; the CDF treats them as "after the
/// bound"). Run i draws from RngStream(seed).rng(i), so the returned series
/// is bit-identical for every worker count.
std::vector<double> first_hit_times(const ta::System& sys,
                                    const TimeBoundedReach& prop,
                                    std::size_t runs, std::uint64_t seed,
                                    exec::Executor& ex,
                                    exec::RunTelemetry* telemetry = nullptr);

/// Same, on the process-wide executor (QUANTA_JOBS workers).
std::vector<double> first_hit_times(const ta::System& sys,
                                    const TimeBoundedReach& prop,
                                    std::size_t runs, std::uint64_t seed);

struct CdfSeries {
  std::vector<double> grid;   ///< time points
  std::vector<double> prob;   ///< P(hit time <= grid[i])
};

/// Empirical CDF of the hit times over `total_runs` runs, evaluated on a
/// uniform grid of `points` values in [0, horizon].
CdfSeries empirical_cdf(const std::vector<double>& hit_times,
                        std::size_t total_runs, double horizon, int points);

}  // namespace quanta::smc
