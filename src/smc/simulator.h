// Stochastic simulation of networks of timed automata following the
// UPPAAL-SMC semantics (David et al., CAV'11 / FORMATS'11): components race
// with independent delay distributions — uniform over the legal delay
// interval when the location invariant bounds delay, exponential with the
// location's exit rate otherwise — and the winner performs one of its
// enabled internal/output actions, chosen uniformly; inputs are reactive.
#pragma once

#include <cstdint>
#include <functional>

#include "common/pred.h"
#include "common/rng.h"
#include "ta/concrete.h"

namespace quanta::smc {

/// Time-bounded reachability property  Pr[<= bound](<> goal). The goal
/// carries its canonical AST (common::Predicate) — the statistical engines'
/// checkpoint fingerprints mix it, so structurally different properties
/// refuse each other's checkpoints. Plain lambdas still convert implicitly
/// (canonicalizing as "opaque"); use common::labeled_pred to keep several
/// such closures distinguishable.
struct TimeBoundedReach {
  double time_bound = 0.0;
  common::Predicate<ta::ConcreteState> goal;
};

struct RunResult {
  bool satisfied = false;
  /// Time at which the goal was first satisfied (only valid if satisfied).
  double hit_time = 0.0;
  std::size_t steps = 0;
};

class Simulator {
 public:
  struct Options {
    std::size_t max_steps = 1'000'000;
  };

  Simulator(const ta::System& sys, std::uint64_t seed)
      : Simulator(sys, seed, Options{}) {}
  Simulator(const ta::System& sys, std::uint64_t seed, Options opts);

  /// Simulates one run up to the property's time bound.
  RunResult run(const TimeBoundedReach& prop);

  /// Observer called on the initial state and after every discrete event
  /// with the current model time (used by trajectory sampling).
  using Observer = std::function<void(const ta::ConcreteState&, double)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  common::Rng& rng() { return rng_; }

  /// Restarts the random stream (used by the parallel runtime to give every
  /// run its own common::RngStream seed while reusing one Simulator — and
  /// with it the concrete-semantics setup — per worker).
  void reseed(std::uint64_t seed) { rng_ = common::Rng(seed); }

 private:
  struct Bid {
    double delay = 0.0;
    int process = -1;
  };

  /// The delay bid of one process, or no bid if it has no (eventually)
  /// enabled internal/output edge within its invariant window.
  bool compute_bid(const ta::ConcreteState& s, int process, Bid* bid);

  /// Executes one enabled internal/output edge of `process` (uniform choice),
  /// pairing outputs with a uniformly chosen enabled receiver. Returns false
  /// if nothing was executable.
  bool fire_process(ta::ConcreteState& s, int process);

  /// Fires one move from a zero-delay (committed/urgent) configuration.
  bool fire_immediate(ta::ConcreteState& s);

  /// Executes a move, sampling probabilistic branches by weight.
  void execute_sampled(ta::ConcreteState& s, const ta::Move& m);

  ta::ConcreteSemantics sem_;
  Options opts_;
  common::Rng rng_;
  Observer observer_;
};

}  // namespace quanta::smc
