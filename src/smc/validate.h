// Argument validation shared by the statistical entry points: statistical
// parameters outside their domain silently destroy every guarantee the
// Chernoff / Clopper-Pearson / Wald machinery provides, so they are rejected
// loudly with the offending parameter named.
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "common/error.h"

namespace quanta::smc::internal {

/// Requires v in the open interval (0, 1) (NaN rejected too).
inline void require_unit_open(const char* subsystem, const char* name,
                              double v) {
  if (!(v > 0.0) || !(v < 1.0)) {
    throw std::invalid_argument(quanta::context(
        subsystem, name, " must lie in the open interval (0, 1), got ", v));
  }
}

inline void require_positive(const char* subsystem, const char* name,
                             std::size_t v) {
  if (v == 0) {
    throw std::invalid_argument(
        quanta::context(subsystem, name, " must be positive"));
  }
}

}  // namespace quanta::smc::internal
