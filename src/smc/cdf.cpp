#include "smc/cdf.h"

#include <algorithm>
#include <stdexcept>

namespace quanta::smc {

std::vector<double> first_hit_times(const ta::System& sys,
                                    const TimeBoundedReach& prop,
                                    std::size_t runs, std::uint64_t seed) {
  Simulator sim(sys, seed);
  std::vector<double> times;
  times.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) {
    RunResult r = sim.run(prop);
    if (r.satisfied) times.push_back(r.hit_time);
  }
  return times;
}

CdfSeries empirical_cdf(const std::vector<double>& hit_times,
                        std::size_t total_runs, double horizon, int points) {
  if (points < 2 || horizon <= 0.0 || total_runs == 0) {
    throw std::invalid_argument("empirical_cdf: bad parameters");
  }
  std::vector<double> sorted = hit_times;
  std::sort(sorted.begin(), sorted.end());
  CdfSeries series;
  series.grid.reserve(static_cast<std::size_t>(points));
  series.prob.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    double t = horizon * static_cast<double>(i) / static_cast<double>(points - 1);
    auto it = std::upper_bound(sorted.begin(), sorted.end(), t);
    series.grid.push_back(t);
    series.prob.push_back(static_cast<double>(it - sorted.begin()) /
                          static_cast<double>(total_runs));
  }
  return series;
}

}  // namespace quanta::smc
