#include "smc/cdf.h"

#include <algorithm>
#include <stdexcept>

#include "exec/watchdog.h"
#include "smc/validate.h"
#include "smc/worker_sim.h"

namespace quanta::smc {

HitTimesResult sample_hit_times(const ta::System& sys,
                                const TimeBoundedReach& prop,
                                std::size_t runs, std::uint64_t seed,
                                exec::Executor& ex,
                                const common::Budget& budget,
                                exec::RunTelemetry* telemetry) {
  internal::require_positive("smc.sample_hit_times", "runs", runs);
  return common::governed(
      [&] {
        const common::RngStream streams(seed);
        internal::WorkerSims sims(sys, ex.workers());
        exec::CancellationToken cancel;
        exec::Watchdog watchdog(budget, cancel);

        // Keyed by run index (each slot written by exactly one worker), then
        // compacted in index order: the series is identical for every worker
        // count. kSkipped marks runs the executor never reached after a
        // cancellation — distinct from kMiss, a completed unsatisfied run.
        constexpr double kMiss = -1.0;
        constexpr double kSkipped = -2.0;
        std::vector<double> per_run(runs, kSkipped);
        ex.for_each(
            0, runs,
            [&](std::uint64_t i, exec::Executor::WorkerContext& ctx) {
              Simulator& sim = sims.at(ctx.worker_id);
              sim.reseed(streams.seed_for(i));
              RunResult r = sim.run(prop);
              ctx.telemetry->sim_steps += r.steps;
              if (r.satisfied) {
                ++ctx.telemetry->hits;
                per_run[static_cast<std::size_t>(i)] = r.hit_time;
              } else {
                per_run[static_cast<std::size_t>(i)] = kMiss;
              }
            },
            &cancel, telemetry);

        HitTimesResult result;
        result.runs = runs;
        result.times.reserve(runs);
        for (double t : per_run) {
          if (t == kSkipped) continue;
          ++result.completed;
          if (t != kMiss) result.times.push_back(t);
        }
        if (result.completed == runs) {
          result.verdict = common::Verdict::kHolds;
        } else {
          result.stop = watchdog.fired_reason();
        }
        return result;
      },
      [runs](common::StopReason r) {
        HitTimesResult result;
        result.runs = runs;
        result.stop = r;
        return result;
      });
}

std::vector<double> first_hit_times(const ta::System& sys,
                                    const TimeBoundedReach& prop,
                                    std::size_t runs, std::uint64_t seed,
                                    exec::Executor& ex,
                                    exec::RunTelemetry* telemetry) {
  return sample_hit_times(sys, prop, runs, seed, ex, common::Budget{},
                          telemetry)
      .times;
}

std::vector<double> first_hit_times(const ta::System& sys,
                                    const TimeBoundedReach& prop,
                                    std::size_t runs, std::uint64_t seed) {
  return first_hit_times(sys, prop, runs, seed, exec::global_executor());
}

CdfSeries empirical_cdf(const std::vector<double>& hit_times,
                        std::size_t total_runs, double horizon, int points) {
  if (points < 2) {
    throw std::invalid_argument(quanta::context(
        "smc.empirical_cdf", "points must be at least 2, got ", points));
  }
  if (!(horizon > 0.0)) {
    throw std::invalid_argument(quanta::context(
        "smc.empirical_cdf", "horizon must be positive, got ", horizon));
  }
  if (total_runs == 0) {
    throw std::invalid_argument(
        quanta::context("smc.empirical_cdf", "total_runs must be positive"));
  }
  std::vector<double> sorted = hit_times;
  std::sort(sorted.begin(), sorted.end());
  CdfSeries series;
  series.grid.reserve(static_cast<std::size_t>(points));
  series.prob.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    double t = horizon * static_cast<double>(i) / static_cast<double>(points - 1);
    auto it = std::upper_bound(sorted.begin(), sorted.end(), t);
    series.grid.push_back(t);
    series.prob.push_back(static_cast<double>(it - sorted.begin()) /
                          static_cast<double>(total_runs));
  }
  return series;
}

}  // namespace quanta::smc
