#include "smc/estimate.h"

#include "common/stats.h"
#include "smc/worker_sim.h"

namespace quanta::smc {

Estimate estimate_probability_runs(const ta::System& sys,
                                   const TimeBoundedReach& prop,
                                   std::size_t runs, double alpha,
                                   std::uint64_t seed, exec::Executor& ex,
                                   exec::RunTelemetry* telemetry) {
  const common::RngStream streams(seed);
  internal::WorkerSims sims(sys, ex.workers());

  struct Tally {
    std::uint64_t hits = 0;
  };
  Tally total = exec::parallel_reduce(
      ex, 0, runs, Tally{},
      [&](Tally& acc, std::uint64_t i, exec::Executor::WorkerContext& ctx) {
        Simulator& sim = sims.at(ctx.worker_id);
        sim.reseed(streams.seed_for(i));
        RunResult r = sim.run(prop);
        ctx.telemetry->sim_steps += r.steps;
        if (r.satisfied) {
          ++acc.hits;
          ++ctx.telemetry->hits;
        }
      },
      [](Tally& out, Tally&& in) { out.hits += in.hits; },
      /*cancel=*/nullptr, telemetry);

  Estimate est;
  est.runs = runs;
  est.hits = total.hits;
  est.p_hat = runs > 0 ? static_cast<double>(est.hits) / static_cast<double>(runs)
                       : 0.0;
  if (runs > 0) {
    auto [lo, hi] = common::clopper_pearson(est.hits, runs, alpha);
    est.ci_low = lo;
    est.ci_high = hi;
  }
  return est;
}

Estimate estimate_probability_runs(const ta::System& sys,
                                   const TimeBoundedReach& prop,
                                   std::size_t runs, double alpha,
                                   std::uint64_t seed) {
  return estimate_probability_runs(sys, prop, runs, alpha, seed,
                                   exec::global_executor());
}

Estimate estimate_probability(const ta::System& sys,
                              const TimeBoundedReach& prop, double epsilon,
                              double delta, std::uint64_t seed,
                              exec::Executor& ex,
                              exec::RunTelemetry* telemetry) {
  std::size_t runs = common::chernoff_sample_count(epsilon, delta);
  return estimate_probability_runs(sys, prop, runs, delta, seed, ex, telemetry);
}

Estimate estimate_probability(const ta::System& sys,
                              const TimeBoundedReach& prop, double epsilon,
                              double delta, std::uint64_t seed) {
  return estimate_probability(sys, prop, epsilon, delta, seed,
                              exec::global_executor());
}

}  // namespace quanta::smc
