#include "smc/estimate.h"

#include <algorithm>

#include "ckpt/io.h"
#include "ckpt/snapshot_ta.h"
#include "common/fault.h"
#include "common/stats.h"
#include "exec/watchdog.h"
#include "smc/validate.h"
#include "smc/worker_sim.h"

namespace quanta::smc {

namespace {

/// Section of a Provider::kStatistical checkpoint: the prefix-contiguous
/// tally (requested runs, completed runs, hits).
constexpr std::uint32_t kSecSmcTally = 1;

/// Batch granularity of the checkpointing path. Batches bound both how much
/// work a crash can lose and how stale a budget stop can be (the budget is
/// polled between batches in addition to the watchdog).
constexpr std::size_t kCkptBatch = 1024;

std::uint64_t estimate_fingerprint(const ta::System& sys,
                                   const TimeBoundedReach& prop,
                                   std::size_t runs, double alpha,
                                   std::uint64_t seed) {
  ckpt::Fingerprint fp;
  fp.mix(0x534D4300u)
      .mix(ckpt::fingerprint(sys))
      .mix_f64(prop.time_bound)
      .mix(runs)
      .mix_f64(alpha)
      .mix(seed)
      .mix_str(prop.goal.canonical());
  return fp.digest();
}

void finish_estimate(Estimate* est, double alpha) {
  if (est->completed == est->runs) {
    est->verdict = common::Verdict::kHolds;
    est->stop = common::StopReason::kCompleted;
  }
  if (est->completed > 0) {
    est->p_hat = static_cast<double>(est->hits) /
                 static_cast<double>(est->completed);
    auto [lo, hi] = common::clopper_pearson(est->hits, est->completed, alpha);
    est->ci_low = lo;
    est->ci_high = hi;
  }
}

/// The checkpointing path: simulate in fixed batches of consecutive run
/// indices so that any stop leaves a prefix-contiguous tally. A batch the
/// watchdog cancelled mid-air is discarded (re-simulated on resume) —
/// partial batches would record "which runs finished", which depends on
/// scheduling and would break bit-reproducibility.
Estimate estimate_batched(const ta::System& sys, const TimeBoundedReach& prop,
                          std::size_t runs, double alpha, std::uint64_t seed,
                          exec::Executor& ex, exec::RunTelemetry* telemetry,
                          const common::Budget& budget,
                          const ckpt::Options& checkpoint) {
  const common::RngStream streams(seed);
  internal::WorkerSims sims(sys, ex.workers());
  exec::CancellationToken cancel;
  exec::Watchdog watchdog(budget, cancel);

  Estimate est;
  est.runs = runs;
  est.resume.path = checkpoint.path;
  const std::uint64_t fp = estimate_fingerprint(sys, prop, runs, alpha, seed);

  std::uint64_t done = 0;
  std::uint64_t hits = 0;
  if (checkpoint.resume) {
    ckpt::Snapshot snap;
    est.resume.load = ckpt::load(checkpoint.path, fp,
                                 ckpt::Provider::kStatistical, &snap);
    if (est.resume.load == ckpt::LoadStatus::kOk) {
      const ckpt::Section* sec = snap.find(kSecSmcTally);
      bool ok = false;
      if (sec != nullptr) {
        ckpt::io::Reader r(sec->payload);
        const std::uint64_t saved_runs = r.u64();
        const std::uint64_t saved_done = r.u64();
        const std::uint64_t saved_hits = r.u64();
        if (r.ok() && saved_runs == runs && saved_done <= runs &&
            saved_hits <= saved_done) {
          done = saved_done;
          hits = saved_hits;
          est.resume.resumed = true;
          ok = true;
        }
      }
      if (!ok) est.resume.load = ckpt::LoadStatus::kCorrupt;
    }
  }

  auto save_ckpt = [&]() {
    ckpt::Snapshot snap;
    snap.provider = ckpt::Provider::kStatistical;
    snap.fingerprint = fp;
    ckpt::io::Writer w;
    w.u64(runs);
    w.u64(done);
    w.u64(hits);
    snap.add_section(kSecSmcTally, std::move(w));
    if (ckpt::save(checkpoint.path, snap)) est.resume.saved = true;
  };

  struct Tally {
    std::uint64_t hits = 0;
    std::uint64_t completed = 0;
  };
  const std::uint64_t interval = checkpoint.effective_interval();
  std::uint64_t runs_since_save = 0;
  while (done < runs) {
    common::FaultInjector::site("smc.estimate.batch");
    const common::StopReason boundary = budget.poll(0);
    if (boundary != common::StopReason::kCompleted) {
      est.stop = boundary;
      break;
    }
    const std::uint64_t batch = std::min<std::uint64_t>(kCkptBatch, runs - done);
    Tally t = exec::parallel_reduce(
        ex, done, done + batch, Tally{},
        [&](Tally& acc, std::uint64_t i, exec::Executor::WorkerContext& ctx) {
          Simulator& sim = sims.at(ctx.worker_id);
          sim.reseed(streams.seed_for(i));
          RunResult r = sim.run(prop);
          ++acc.completed;
          ctx.telemetry->sim_steps += r.steps;
          if (r.satisfied) {
            ++acc.hits;
            ++ctx.telemetry->hits;
          }
        },
        [](Tally& out, Tally&& in) {
          out.hits += in.hits;
          out.completed += in.completed;
        },
        &cancel, telemetry);
    if (t.completed < batch) {
      // Cancelled mid-batch: drop the partial tally, keep the prefix.
      est.stop = watchdog.fired_reason();
      break;
    }
    done += batch;
    hits += t.hits;
    if (interval > 0) {
      runs_since_save += batch;
      if (runs_since_save >= interval) {
        runs_since_save = 0;
        save_ckpt();
      }
    }
  }

  est.completed = done;
  est.hits = hits;
  if (done < runs && checkpoint.save_on_stop) save_ckpt();
  finish_estimate(&est, alpha);
  return est;
}

}  // namespace

Estimate estimate_probability_runs(const ta::System& sys,
                                   const TimeBoundedReach& prop,
                                   std::size_t runs, double alpha,
                                   std::uint64_t seed, exec::Executor& ex,
                                   exec::RunTelemetry* telemetry,
                                   const common::Budget& budget,
                                   const ckpt::Options& checkpoint) {
  internal::require_unit_open("smc.estimate_probability_runs", "alpha", alpha);
  internal::require_positive("smc.estimate_probability_runs", "runs", runs);
  if (checkpoint.enabled()) {
    return common::governed(
        [&] {
          return estimate_batched(sys, prop, runs, alpha, seed, ex, telemetry,
                                  budget, checkpoint);
        },
        [runs, &checkpoint](common::StopReason r) {
          Estimate est;
          est.runs = runs;
          est.stop = r;
          est.resume.path = checkpoint.path;
          return est;
        });
  }
  return common::governed(
      [&] {
        const common::RngStream streams(seed);
        internal::WorkerSims sims(sys, ex.workers());
        // The watchdog turns the passive budget into cancellation: it fires
        // this internal token, which the executor polls between runs.
        exec::CancellationToken cancel;
        exec::Watchdog watchdog(budget, cancel);

        struct Tally {
          std::uint64_t hits = 0;
          std::uint64_t completed = 0;
        };
        Tally total = exec::parallel_reduce(
            ex, 0, runs, Tally{},
            [&](Tally& acc, std::uint64_t i,
                exec::Executor::WorkerContext& ctx) {
              Simulator& sim = sims.at(ctx.worker_id);
              sim.reseed(streams.seed_for(i));
              RunResult r = sim.run(prop);
              ++acc.completed;
              ctx.telemetry->sim_steps += r.steps;
              if (r.satisfied) {
                ++acc.hits;
                ++ctx.telemetry->hits;
              }
            },
            [](Tally& out, Tally&& in) {
              out.hits += in.hits;
              out.completed += in.completed;
            },
            &cancel, telemetry);

        Estimate est;
        est.runs = runs;
        est.completed = total.completed;
        est.hits = total.hits;
        if (est.completed == runs) {
          est.verdict = common::Verdict::kHolds;
        } else {
          est.stop = watchdog.fired_reason();
        }
        if (est.completed > 0) {
          est.p_hat = static_cast<double>(est.hits) /
                      static_cast<double>(est.completed);
          auto [lo, hi] =
              common::clopper_pearson(est.hits, est.completed, alpha);
          est.ci_low = lo;
          est.ci_high = hi;
        }
        return est;
      },
      [runs](common::StopReason r) {
        Estimate est;
        est.runs = runs;
        est.stop = r;
        return est;
      });
}

Estimate estimate_probability_runs(const ta::System& sys,
                                   const TimeBoundedReach& prop,
                                   std::size_t runs, double alpha,
                                   std::uint64_t seed,
                                   const common::Budget& budget,
                                   const ckpt::Options& checkpoint) {
  return estimate_probability_runs(sys, prop, runs, alpha, seed,
                                   exec::global_executor(), nullptr, budget,
                                   checkpoint);
}

Estimate estimate_probability(const ta::System& sys,
                              const TimeBoundedReach& prop, double epsilon,
                              double delta, std::uint64_t seed,
                              exec::Executor& ex,
                              exec::RunTelemetry* telemetry,
                              const common::Budget& budget) {
  internal::require_unit_open("smc.estimate_probability", "epsilon", epsilon);
  internal::require_unit_open("smc.estimate_probability", "delta", delta);
  std::size_t runs = common::chernoff_sample_count(epsilon, delta);
  return estimate_probability_runs(sys, prop, runs, delta, seed, ex, telemetry,
                                   budget);
}

Estimate estimate_probability(const ta::System& sys,
                              const TimeBoundedReach& prop, double epsilon,
                              double delta, std::uint64_t seed,
                              const common::Budget& budget) {
  return estimate_probability(sys, prop, epsilon, delta, seed,
                              exec::global_executor(), nullptr, budget);
}

}  // namespace quanta::smc
