#include "smc/estimate.h"

#include "common/stats.h"

namespace quanta::smc {

Estimate estimate_probability_runs(const ta::System& sys,
                                   const TimeBoundedReach& prop,
                                   std::size_t runs, double alpha,
                                   std::uint64_t seed) {
  Simulator sim(sys, seed);
  Estimate est;
  est.runs = runs;
  for (std::size_t i = 0; i < runs; ++i) {
    if (sim.run(prop).satisfied) ++est.hits;
  }
  est.p_hat = runs > 0 ? static_cast<double>(est.hits) / static_cast<double>(runs)
                       : 0.0;
  if (runs > 0) {
    auto [lo, hi] = common::clopper_pearson(est.hits, runs, alpha);
    est.ci_low = lo;
    est.ci_high = hi;
  }
  return est;
}

Estimate estimate_probability(const ta::System& sys,
                              const TimeBoundedReach& prop, double epsilon,
                              double delta, std::uint64_t seed) {
  std::size_t runs = common::chernoff_sample_count(epsilon, delta);
  return estimate_probability_runs(sys, prop, runs, delta, seed);
}

}  // namespace quanta::smc
