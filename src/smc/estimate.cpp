#include "smc/estimate.h"

#include "common/stats.h"
#include "exec/watchdog.h"
#include "smc/validate.h"
#include "smc/worker_sim.h"

namespace quanta::smc {

Estimate estimate_probability_runs(const ta::System& sys,
                                   const TimeBoundedReach& prop,
                                   std::size_t runs, double alpha,
                                   std::uint64_t seed, exec::Executor& ex,
                                   exec::RunTelemetry* telemetry,
                                   const common::Budget& budget) {
  internal::require_unit_open("smc.estimate_probability_runs", "alpha", alpha);
  internal::require_positive("smc.estimate_probability_runs", "runs", runs);
  return common::governed(
      [&] {
        const common::RngStream streams(seed);
        internal::WorkerSims sims(sys, ex.workers());
        // The watchdog turns the passive budget into cancellation: it fires
        // this internal token, which the executor polls between runs.
        exec::CancellationToken cancel;
        exec::Watchdog watchdog(budget, cancel);

        struct Tally {
          std::uint64_t hits = 0;
          std::uint64_t completed = 0;
        };
        Tally total = exec::parallel_reduce(
            ex, 0, runs, Tally{},
            [&](Tally& acc, std::uint64_t i,
                exec::Executor::WorkerContext& ctx) {
              Simulator& sim = sims.at(ctx.worker_id);
              sim.reseed(streams.seed_for(i));
              RunResult r = sim.run(prop);
              ++acc.completed;
              ctx.telemetry->sim_steps += r.steps;
              if (r.satisfied) {
                ++acc.hits;
                ++ctx.telemetry->hits;
              }
            },
            [](Tally& out, Tally&& in) {
              out.hits += in.hits;
              out.completed += in.completed;
            },
            &cancel, telemetry);

        Estimate est;
        est.runs = runs;
        est.completed = total.completed;
        est.hits = total.hits;
        if (est.completed == runs) {
          est.verdict = common::Verdict::kHolds;
        } else {
          est.stop = watchdog.fired_reason();
        }
        if (est.completed > 0) {
          est.p_hat = static_cast<double>(est.hits) /
                      static_cast<double>(est.completed);
          auto [lo, hi] =
              common::clopper_pearson(est.hits, est.completed, alpha);
          est.ci_low = lo;
          est.ci_high = hi;
        }
        return est;
      },
      [runs](common::StopReason r) {
        Estimate est;
        est.runs = runs;
        est.stop = r;
        return est;
      });
}

Estimate estimate_probability_runs(const ta::System& sys,
                                   const TimeBoundedReach& prop,
                                   std::size_t runs, double alpha,
                                   std::uint64_t seed,
                                   const common::Budget& budget) {
  return estimate_probability_runs(sys, prop, runs, alpha, seed,
                                   exec::global_executor(), nullptr, budget);
}

Estimate estimate_probability(const ta::System& sys,
                              const TimeBoundedReach& prop, double epsilon,
                              double delta, std::uint64_t seed,
                              exec::Executor& ex,
                              exec::RunTelemetry* telemetry,
                              const common::Budget& budget) {
  internal::require_unit_open("smc.estimate_probability", "epsilon", epsilon);
  internal::require_unit_open("smc.estimate_probability", "delta", delta);
  std::size_t runs = common::chernoff_sample_count(epsilon, delta);
  return estimate_probability_runs(sys, prop, runs, delta, seed, ex, telemetry,
                                   budget);
}

Estimate estimate_probability(const ta::System& sys,
                              const TimeBoundedReach& prop, double epsilon,
                              double delta, std::uint64_t seed,
                              const common::Budget& budget) {
  return estimate_probability(sys, prop, epsilon, delta, seed,
                              exec::global_executor(), nullptr, budget);
}

}  // namespace quanta::smc
