#include "smc/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/error.h"
#include "common/fault.h"

namespace quanta::smc {

using ta::ConcreteState;
using ta::Edge;
using ta::Move;
using ta::Process;
using ta::SyncKind;

Simulator::Simulator(const ta::System& sys, std::uint64_t seed, Options opts)
    : sem_(sys), opts_(opts), rng_(seed) {}

bool Simulator::compute_bid(const ConcreteState& s, int process, Bid* bid) {
  const ta::System& sys = sem_.system();
  const Process& proc = sys.process(process);
  const double d_max = sem_.invariant_max_delay(s, process);

  // Earliest delay after which some internal/output edge becomes enabled.
  double d_min = ta::ConcreteSemantics::kInfDelay;
  for (const Edge& e : proc.edges) {
    if (e.source != s.locs[process] || e.sync == SyncKind::kReceive) continue;
    if (e.data_guard && !e.data_guard(s.vars)) continue;
    d_min = std::min(d_min, sem_.min_enabling_delay(e, s));
  }
  if (d_min > d_max) return false;  // passive: nothing enabled in the window

  double delay;
  if (d_max < ta::ConcreteSemantics::kInfDelay) {
    delay = rng_.uniform(d_min, d_max);
  } else {
    double rate = proc.locations[static_cast<std::size_t>(s.locs[process])].exit_rate;
    delay = d_min + rng_.exponential(rate);
  }
  bid->delay = delay;
  bid->process = process;
  return true;
}

bool Simulator::fire_process(ConcreteState& s, int process) {
  const ta::System& sys = sem_.system();
  const Process& proc = sys.process(process);

  // Collect this process's executable internal/output edges right now. An
  // output is executable only if at least one receiver is available (the
  // paper's models are input-enabled along reachable paths; see DESIGN.md).
  struct Choice {
    int edge = -1;
    std::vector<Move> variants;  ///< one per receiver choice
  };
  std::vector<Choice> choices;
  for (std::size_t ei = 0; ei < proc.edges.size(); ++ei) {
    const Edge& e = proc.edges[ei];
    if (e.source != s.locs[process] || e.sync == SyncKind::kReceive) continue;
    if (!sem_.guard_satisfied(e, s)) continue;

    Choice c;
    c.edge = static_cast<int>(ei);
    if (e.sync == SyncKind::kNone) {
      c.variants.push_back(Move{{{process, c.edge}}});
    } else {
      int ch = e.channel_id(s.vars);
      const bool broadcast = sys.channel(ch).broadcast;
      Move base{{{process, c.edge}}};
      if (broadcast) {
        for (int q = 0; q < sys.process_count(); ++q) {
          if (q == process) continue;
          const Process& qproc = sys.process(q);
          for (std::size_t fi = 0; fi < qproc.edges.size(); ++fi) {
            const Edge& f = qproc.edges[fi];
            if (f.source != s.locs[q] || f.sync != SyncKind::kReceive) continue;
            if (f.channel_id(s.vars) != ch) continue;
            if (!sem_.guard_satisfied(f, s)) continue;
            base.participants.emplace_back(q, static_cast<int>(fi));
            break;
          }
        }
        c.variants.push_back(std::move(base));
      } else {
        for (int q = 0; q < sys.process_count(); ++q) {
          if (q == process) continue;
          const Process& qproc = sys.process(q);
          for (std::size_t fi = 0; fi < qproc.edges.size(); ++fi) {
            const Edge& f = qproc.edges[fi];
            if (f.source != s.locs[q] || f.sync != SyncKind::kReceive) continue;
            if (f.channel_id(s.vars) != ch) continue;
            if (!sem_.guard_satisfied(f, s)) continue;
            Move m = base;
            m.participants.emplace_back(q, static_cast<int>(fi));
            c.variants.push_back(std::move(m));
          }
        }
        if (c.variants.empty()) continue;  // output with no receiver: blocked
      }
    }
    choices.push_back(std::move(c));
  }
  if (choices.empty()) return false;

  const Choice& chosen =
      choices[static_cast<std::size_t>(rng_.uniform_int(0, static_cast<int>(choices.size()) - 1))];
  const Move& m = chosen.variants[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<int>(chosen.variants.size()) - 1))];
  execute_sampled(s, m);
  return true;
}

void Simulator::execute_sampled(ConcreteState& s, const Move& m) {
  std::vector<int> branch_choice(m.participants.size(), -1);
  for (std::size_t k = 0; k < m.participants.size(); ++k) {
    const auto& [p, e] = m.participants[k];
    const Edge& edge =
        sem_.system().process(p).edges.at(static_cast<std::size_t>(e));
    if (!edge.probabilistic()) continue;
    std::vector<double> weights;
    weights.reserve(edge.branches.size());
    for (const auto& b : edge.branches) weights.push_back(b.weight);
    branch_choice[k] = static_cast<int>(rng_.weighted_choice(weights));
  }
  sem_.execute(s, m, branch_choice);
}

bool Simulator::fire_immediate(ConcreteState& s) {
  auto moves = sem_.enabled_moves_now(s);
  if (moves.empty()) return false;
  const Move& m = moves[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<int>(moves.size()) - 1))];
  execute_sampled(s, m);
  return true;
}

RunResult Simulator::run(const TimeBoundedReach& prop) {
  if (!prop.goal) {
    throw std::invalid_argument(quanta::context(
        "smc.simulator", "TimeBoundedReach.goal predicate must be set"));
  }
  ConcreteState s = sem_.initial();
  RunResult result;
  double t = 0.0;
  if (observer_) observer_(s, t);

  while (result.steps < opts_.max_steps) {
    common::FaultInjector::site("smc.simulator.step");
    if (prop.goal(s)) {
      result.satisfied = true;
      result.hit_time = t;
      return result;
    }
    ++result.steps;

    if (sem_.symbolic().delay_forbidden(s.locs, s.vars)) {
      if (!fire_immediate(s)) return result;  // timelock: run stuck
      if (observer_) observer_(s, t);
      continue;
    }

    // Race: every active component bids a delay.
    Bid best;
    best.delay = ta::ConcreteSemantics::kInfDelay;
    for (int p = 0; p < sem_.system().process_count(); ++p) {
      Bid bid;
      if (compute_bid(s, p, &bid) && bid.delay < best.delay) best = bid;
    }
    if (best.process < 0) return result;  // all passive: time diverges
    if (best.delay > sem_.invariant_max_delay(s)) {
      // A passive component's invariant would be violated before anyone
      // acts: the model is not well-formed here; the run is stuck.
      return result;
    }

    if (t + best.delay > prop.time_bound) return result;
    sem_.delay(s, best.delay);
    t += best.delay;

    // The winner acts; if its sampled time point has nothing executable
    // (e.g. disjoint guard windows), the race restarts from the new time.
    if (fire_process(s, best.process) && observer_) observer_(s, t);
  }
  return result;
}

}  // namespace quanta::smc
