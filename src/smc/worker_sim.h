// Internal helper of the parallel SMC entry points: one lazily-constructed
// Simulator per executor worker. Each slot is only ever touched by its own
// worker (worker ids are stable within a job), so no locking is needed; the
// simulator's RNG is reseeded per run from a common::RngStream.
#pragma once

#include <optional>
#include <vector>

#include "smc/simulator.h"

namespace quanta::smc::internal {

class WorkerSims {
 public:
  WorkerSims(const ta::System& sys, unsigned workers)
      : sys_(&sys), sims_(workers) {}

  Simulator& at(unsigned worker) {
    std::optional<Simulator>& slot = sims_[worker];
    if (!slot) slot.emplace(*sys_, 0);
    return *slot;
  }

 private:
  const ta::System* sys_;
  std::vector<std::optional<Simulator>> sims_;
};

}  // namespace quanta::smc::internal
