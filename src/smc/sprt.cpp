#include "smc/sprt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "ckpt/io.h"
#include "ckpt/snapshot_ta.h"
#include "common/fault.h"
#include "exec/watchdog.h"
#include "smc/validate.h"
#include "smc/worker_sim.h"

namespace quanta::smc {

void SprtOptions::validate(double theta) const {
  internal::require_unit_open("smc.sprt_test", "alpha", alpha);
  internal::require_unit_open("smc.sprt_test", "beta", beta);
  internal::require_unit_open("smc.sprt_test", "indifference", indifference);
  internal::require_positive("smc.sprt_test", "max_runs", max_runs);
  const double p0 = theta + indifference;
  const double p1 = theta - indifference;
  if (p1 <= 0.0 || p0 >= 1.0) {
    throw std::invalid_argument(quanta::context(
        "smc.sprt_test", "the indifference region [theta - delta, theta + "
        "delta] = [", p1, ", ", p0, "] must lie inside (0, 1); shrink "
        "indifference or move theta away from the boundary"));
  }
}

namespace {

/// Section of a Provider::kSprt checkpoint: the exact position of the
/// in-order LLR walk — (max_runs, runs consumed, hits, LLR bit pattern).
/// Persisting the LLR as its IEEE-754 bits (not re-accumulating it from the
/// tally) keeps the resumed walk's floating-point trajectory identical to
/// the uninterrupted one.
constexpr std::uint32_t kSecSprtWalk = 1;

std::uint64_t sprt_fingerprint(const ta::System& sys,
                               const TimeBoundedReach& prop, double theta,
                               const SprtOptions& opts, std::uint64_t seed) {
  ckpt::Fingerprint fp;
  fp.mix(0x53505254u)  // "SPRT"
      .mix(ckpt::fingerprint(sys))
      .mix_f64(prop.time_bound)
      .mix_f64(theta)
      .mix_f64(opts.alpha)
      .mix_f64(opts.beta)
      .mix_f64(opts.indifference)
      .mix(opts.max_runs)
      .mix(opts.batch_size)
      .mix(seed)
      .mix_str(prop.goal.canonical());
  return fp.digest();
}

SprtResult sprt_test_impl(const ta::System& sys, const TimeBoundedReach& prop,
                          double theta, const SprtOptions& opts,
                          std::uint64_t seed, exec::Executor& ex,
                          exec::RunTelemetry* telemetry,
                          const common::Budget& budget) {
  const double p0 = theta + opts.indifference;  // H0
  const double p1 = theta - opts.indifference;  // H1
  // Wald boundaries on the log-likelihood ratio log(P[obs|H1]/P[obs|H0]).
  const double log_a = std::log((1.0 - opts.beta) / opts.alpha);
  const double log_b = std::log(opts.beta / (1.0 - opts.alpha));
  const double inc_hit = std::log(p1 / p0);
  const double inc_miss = std::log((1.0 - p1) / (1.0 - p0));

  const std::size_t batch = opts.batch_size > 0 ? opts.batch_size : 128;
  const common::RngStream streams(seed);
  internal::WorkerSims sims(sys, ex.workers());
  exec::CancellationToken cancel;
  exec::Watchdog watchdog(budget, cancel);

  // Outcome slots per batch, keyed by run index. kNotRun marks runs the
  // executor skipped after a budget cancellation — they must not enter the
  // log-likelihood walk (an unwritten slot read as a miss would silently
  // push the walk toward rejection).
  constexpr std::uint8_t kNotRun = 2;

  SprtResult result;
  result.resume.path = opts.checkpoint.path;
  double llr = 0.0;
  const std::uint64_t fp =
      opts.checkpoint.enabled()
          ? sprt_fingerprint(sys, prop, theta, opts, seed)
          : 0;
  // Resume restarts the batch grid at the saved walk position. Run i is a
  // pure function of (seed, i) and the LLR walk consumes runs strictly in
  // order, so the position alone — regardless of where inside a batch the
  // interrupted test stopped — reproduces the uninterrupted trajectory.
  if (opts.checkpoint.enabled() && opts.checkpoint.resume) {
    ckpt::Snapshot snap;
    result.resume.load = ckpt::load(opts.checkpoint.path, fp,
                                    ckpt::Provider::kSprt, &snap);
    if (result.resume.load == ckpt::LoadStatus::kOk) {
      bool ok = false;
      if (const ckpt::Section* sec = snap.find(kSecSprtWalk)) {
        ckpt::io::Reader r(sec->payload);
        const std::uint64_t saved_cap = r.u64();
        const std::uint64_t saved_runs = r.u64();
        const std::uint64_t saved_hits = r.u64();
        const double saved_llr = r.f64();
        if (r.ok() && saved_cap == opts.max_runs &&
            saved_runs <= opts.max_runs && saved_hits <= saved_runs) {
          result.runs = static_cast<std::size_t>(saved_runs);
          result.hits = static_cast<std::size_t>(saved_hits);
          llr = saved_llr;
          result.resume.resumed = true;
          ok = true;
        }
      }
      if (!ok) result.resume.load = ckpt::LoadStatus::kCorrupt;
    }
  }

  auto save_walk = [&]() {
    ckpt::Snapshot snap;
    snap.provider = ckpt::Provider::kSprt;
    snap.fingerprint = fp;
    ckpt::io::Writer w;
    w.u64(opts.max_runs);
    w.u64(result.runs);
    w.u64(result.hits);
    w.f64(llr);
    snap.add_section(kSecSprtWalk, std::move(w));
    if (ckpt::save(opts.checkpoint.path, snap)) result.resume.saved = true;
  };
  const bool save_on_stop =
      opts.checkpoint.enabled() && opts.checkpoint.save_on_stop;
  const std::uint64_t interval =
      opts.checkpoint.enabled() ? opts.checkpoint.effective_interval() : 0;
  std::uint64_t since_save = 0;

  std::vector<std::uint8_t> outcome;
  for (std::uint64_t base = result.runs; base < opts.max_runs;
       base += outcome.size()) {
    // Fault-injection site: a kDeadline fault here forces the watchdog's
    // next budget poll to fire, interrupting the test at a batch boundary.
    common::FaultInjector::site("smc.sprt.batch");
    const std::uint64_t n =
        std::min<std::uint64_t>(batch, opts.max_runs - base);
    outcome.assign(static_cast<std::size_t>(n), kNotRun);
    // Simulate the batch in parallel; outcome[k] is keyed by run index, so
    // the merged batch is independent of scheduling.
    ex.for_each(
        base, base + n,
        [&](std::uint64_t i, exec::Executor::WorkerContext& ctx) {
          Simulator& sim = sims.at(ctx.worker_id);
          sim.reseed(streams.seed_for(i));
          RunResult r = sim.run(prop);
          ctx.telemetry->sim_steps += r.steps;
          if (r.satisfied) ++ctx.telemetry->hits;
          outcome[static_cast<std::size_t>(i - base)] = r.satisfied ? 1 : 0;
        },
        &cancel, telemetry);
    // Walk the merged batch in run order — exactly the sequential SPRT.
    for (std::uint64_t k = 0; k < n; ++k) {
      if (outcome[static_cast<std::size_t>(k)] == kNotRun) {
        // The budget fired mid-batch; everything from here on was skipped.
        result.stop = watchdog.fired_reason();
        if (save_on_stop) save_walk();
        return result;
      }
      ++result.runs;
      if (outcome[static_cast<std::size_t>(k)]) {
        ++result.hits;
        llr += inc_hit;
      } else {
        llr += inc_miss;
      }
      if (llr >= log_a) {
        result.verdict = SprtVerdict::kRejected;  // evidence for H1: p < theta
      } else if (llr <= log_b) {
        result.verdict = SprtVerdict::kAccepted;  // evidence for H0: p > theta
      }
      if (result.verdict != SprtVerdict::kInconclusive) {
        // Early stop: cancel outstanding work instead of running to the cap.
        cancel.cancel();
        return result;
      }
      if (interval != 0 && ++since_save >= interval) {
        since_save = 0;
        save_walk();
      }
    }
    if (cancel.cancelled()) {
      // The whole batch completed but the watchdog fired during or after it;
      // stop before paying for another batch.
      result.stop = watchdog.fired_reason();
      if (save_on_stop) save_walk();
      return result;
    }
  }
  // max_runs exhausted: the test is over (inconclusive), nothing to resume.
  result.stop = common::StopReason::kStateLimit;
  return result;
}

}  // namespace

SprtResult sprt_test(const ta::System& sys, const TimeBoundedReach& prop,
                     double theta, const SprtOptions& opts, std::uint64_t seed,
                     exec::Executor& ex, exec::RunTelemetry* telemetry,
                     const common::Budget& budget) {
  opts.validate(theta);
  return common::governed(
      [&] {
        return sprt_test_impl(sys, prop, theta, opts, seed, ex, telemetry,
                              budget);
      },
      [&opts](common::StopReason r) {
        SprtResult result;
        result.stop = r;
        result.resume.path = opts.checkpoint.path;
        return result;
      });
}

SprtResult sprt_test(const ta::System& sys, const TimeBoundedReach& prop,
                     double theta, const SprtOptions& opts, std::uint64_t seed,
                     const common::Budget& budget) {
  return sprt_test(sys, prop, theta, opts, seed, exec::global_executor(),
                   nullptr, budget);
}

}  // namespace quanta::smc
