#include "smc/sprt.h"

#include <cmath>
#include <stdexcept>

namespace quanta::smc {

SprtResult sprt_test(const ta::System& sys, const TimeBoundedReach& prop,
                     double theta, const SprtOptions& opts,
                     std::uint64_t seed) {
  const double p0 = theta + opts.indifference;  // H0
  const double p1 = theta - opts.indifference;  // H1
  if (p1 <= 0.0 || p0 >= 1.0) {
    throw std::invalid_argument("sprt_test: indifference region out of (0,1)");
  }
  // Wald boundaries on the log-likelihood ratio log(P[obs|H1]/P[obs|H0]).
  const double log_a = std::log((1.0 - opts.beta) / opts.alpha);
  const double log_b = std::log(opts.beta / (1.0 - opts.alpha));
  const double inc_hit = std::log(p1 / p0);
  const double inc_miss = std::log((1.0 - p1) / (1.0 - p0));

  Simulator sim(sys, seed);
  SprtResult result;
  double llr = 0.0;
  while (result.runs < opts.max_runs) {
    ++result.runs;
    if (sim.run(prop).satisfied) {
      ++result.hits;
      llr += inc_hit;
    } else {
      llr += inc_miss;
    }
    if (llr >= log_a) {
      result.verdict = SprtVerdict::kRejected;  // evidence for H1: p < theta
      return result;
    }
    if (llr <= log_b) {
      result.verdict = SprtVerdict::kAccepted;  // evidence for H0: p > theta
      return result;
    }
  }
  return result;
}

}  // namespace quanta::smc
