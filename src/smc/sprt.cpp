#include "smc/sprt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "exec/watchdog.h"
#include "smc/validate.h"
#include "smc/worker_sim.h"

namespace quanta::smc {

void SprtOptions::validate(double theta) const {
  internal::require_unit_open("smc.sprt_test", "alpha", alpha);
  internal::require_unit_open("smc.sprt_test", "beta", beta);
  internal::require_unit_open("smc.sprt_test", "indifference", indifference);
  internal::require_positive("smc.sprt_test", "max_runs", max_runs);
  const double p0 = theta + indifference;
  const double p1 = theta - indifference;
  if (p1 <= 0.0 || p0 >= 1.0) {
    throw std::invalid_argument(quanta::context(
        "smc.sprt_test", "the indifference region [theta - delta, theta + "
        "delta] = [", p1, ", ", p0, "] must lie inside (0, 1); shrink "
        "indifference or move theta away from the boundary"));
  }
}

namespace {

SprtResult sprt_test_impl(const ta::System& sys, const TimeBoundedReach& prop,
                          double theta, const SprtOptions& opts,
                          std::uint64_t seed, exec::Executor& ex,
                          exec::RunTelemetry* telemetry,
                          const common::Budget& budget) {
  const double p0 = theta + opts.indifference;  // H0
  const double p1 = theta - opts.indifference;  // H1
  // Wald boundaries on the log-likelihood ratio log(P[obs|H1]/P[obs|H0]).
  const double log_a = std::log((1.0 - opts.beta) / opts.alpha);
  const double log_b = std::log(opts.beta / (1.0 - opts.alpha));
  const double inc_hit = std::log(p1 / p0);
  const double inc_miss = std::log((1.0 - p1) / (1.0 - p0));

  const std::size_t batch = opts.batch_size > 0 ? opts.batch_size : 128;
  const common::RngStream streams(seed);
  internal::WorkerSims sims(sys, ex.workers());
  exec::CancellationToken cancel;
  exec::Watchdog watchdog(budget, cancel);

  // Outcome slots per batch, keyed by run index. kNotRun marks runs the
  // executor skipped after a budget cancellation — they must not enter the
  // log-likelihood walk (an unwritten slot read as a miss would silently
  // push the walk toward rejection).
  constexpr std::uint8_t kNotRun = 2;

  SprtResult result;
  double llr = 0.0;
  std::vector<std::uint8_t> outcome;
  for (std::uint64_t base = 0; base < opts.max_runs; base += batch) {
    const std::uint64_t n =
        std::min<std::uint64_t>(batch, opts.max_runs - base);
    outcome.assign(static_cast<std::size_t>(n), kNotRun);
    // Simulate the batch in parallel; outcome[k] is keyed by run index, so
    // the merged batch is independent of scheduling.
    ex.for_each(
        base, base + n,
        [&](std::uint64_t i, exec::Executor::WorkerContext& ctx) {
          Simulator& sim = sims.at(ctx.worker_id);
          sim.reseed(streams.seed_for(i));
          RunResult r = sim.run(prop);
          ctx.telemetry->sim_steps += r.steps;
          if (r.satisfied) ++ctx.telemetry->hits;
          outcome[static_cast<std::size_t>(i - base)] = r.satisfied ? 1 : 0;
        },
        &cancel, telemetry);
    // Walk the merged batch in run order — exactly the sequential SPRT.
    for (std::uint64_t k = 0; k < n; ++k) {
      if (outcome[static_cast<std::size_t>(k)] == kNotRun) {
        // The budget fired mid-batch; everything from here on was skipped.
        result.stop = watchdog.fired_reason();
        return result;
      }
      ++result.runs;
      if (outcome[static_cast<std::size_t>(k)]) {
        ++result.hits;
        llr += inc_hit;
      } else {
        llr += inc_miss;
      }
      if (llr >= log_a) {
        result.verdict = SprtVerdict::kRejected;  // evidence for H1: p < theta
      } else if (llr <= log_b) {
        result.verdict = SprtVerdict::kAccepted;  // evidence for H0: p > theta
      }
      if (result.verdict != SprtVerdict::kInconclusive) {
        // Early stop: cancel outstanding work instead of running to the cap.
        cancel.cancel();
        return result;
      }
    }
    if (cancel.cancelled()) {
      // The whole batch completed but the watchdog fired during or after it;
      // stop before paying for another batch.
      result.stop = watchdog.fired_reason();
      return result;
    }
  }
  result.stop = common::StopReason::kStateLimit;  // max_runs exhausted
  return result;
}

}  // namespace

SprtResult sprt_test(const ta::System& sys, const TimeBoundedReach& prop,
                     double theta, const SprtOptions& opts, std::uint64_t seed,
                     exec::Executor& ex, exec::RunTelemetry* telemetry,
                     const common::Budget& budget) {
  opts.validate(theta);
  return common::governed(
      [&] {
        return sprt_test_impl(sys, prop, theta, opts, seed, ex, telemetry,
                              budget);
      },
      [](common::StopReason r) {
        SprtResult result;
        result.stop = r;
        return result;
      });
}

SprtResult sprt_test(const ta::System& sys, const TimeBoundedReach& prop,
                     double theta, const SprtOptions& opts, std::uint64_t seed,
                     const common::Budget& budget) {
  return sprt_test(sys, prop, theta, opts, seed, exec::global_executor(),
                   nullptr, budget);
}

}  // namespace quanta::smc
