// Trajectory sampling — UPPAAL-SMC's `simulate` query: record the evolution
// of selected observables (variables or location indicators) along random
// runs, e.g. to plot Gantt charts or the trajectories behind Fig. 4.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "smc/simulator.h"

namespace quanta::smc {

/// An observable sampled along a run.
struct Observable {
  std::string name;
  std::function<double(const ta::ConcreteState&)> value;
};

/// Builds an observable reading a discrete variable.
Observable var_observable(const ta::System& sys, const std::string& var);
/// Builds a 0/1 observable for "process is in location".
Observable loc_observable(const ta::System& sys, const std::string& process,
                          const std::string& location);

struct TracePoint {
  double time = 0.0;
  std::vector<double> values;  ///< one per observable
};

/// One sampled trajectory: observables recorded after every discrete event
/// (piecewise-constant interpretation between points).
struct Trajectory {
  std::vector<std::string> names;
  std::vector<TracePoint> points;
};

/// Samples `runs` trajectories up to `time_bound`.
std::vector<Trajectory> simulate_traces(const ta::System& sys,
                                        const std::vector<Observable>& obs,
                                        double time_bound, std::size_t runs,
                                        std::uint64_t seed);

}  // namespace quanta::smc
