// Wald's Sequential Probability Ratio Test for qualitative SMC queries
// Pr[<=T](<> goal) >= theta, as used by UPPAAL-SMC for hypothesis testing.
//
// Parallelisation follows the batched-Wald scheme of multi-core SMC tools
// (modes): runs are simulated in batches of `batch_size` on the executor,
// each batch's per-run outcomes are merged in run-index order, and the
// log-likelihood ratio is walked run by run — so the verdict AND the number
// of runs consumed are bit-identical to the fully sequential test for every
// worker count. On a verdict the remaining batches (the outstanding work)
// are cancelled; runs of the final batch beyond the crossing point were
// simulated but are not consumed (they only show up in the telemetry).
#pragma once

#include <cstdint>

#include "ckpt/checkpoint.h"
#include "common/budget.h"
#include "common/verdict.h"
#include "exec/executor.h"
#include "smc/simulator.h"

namespace quanta::smc {

enum class SprtVerdict {
  kAccepted,      ///< H0: p >= theta + delta accepted
  kRejected,      ///< H1: p <= theta - delta accepted
  kInconclusive,  ///< max_runs exhausted without crossing a boundary
};

struct SprtResult {
  SprtVerdict verdict = SprtVerdict::kInconclusive;
  std::size_t runs = 0;
  std::size_t hits = 0;
  /// Why an inconclusive test stopped: kStateLimit = max_runs exhausted,
  /// kTimeLimit/kCancelled/kFault = the budget cut the test short.
  /// kCompleted whenever a boundary was crossed (verdict != inconclusive).
  common::StopReason stop = common::StopReason::kCompleted;
  /// Checkpoint/resume outcome of this run (SprtOptions::checkpoint).
  ckpt::ResumeInfo resume;

  /// The test outcome as the toolkit-wide three-valued verdict on
  /// "Pr[<=T](<> goal) >= theta": accepted H0 = kHolds, accepted H1 =
  /// kViolated, inconclusive = kUnknown.
  common::Verdict as_verdict() const {
    switch (verdict) {
      case SprtVerdict::kAccepted: return common::Verdict::kHolds;
      case SprtVerdict::kRejected: return common::Verdict::kViolated;
      case SprtVerdict::kInconclusive: break;
    }
    return common::Verdict::kUnknown;
  }
};

struct SprtOptions {
  double alpha = 0.05;       ///< type-I error (false reject of H0)
  double beta = 0.05;        ///< type-II error (false accept of H0)
  double indifference = 0.01;  ///< half-width of the indifference region
  std::size_t max_runs = 1'000'000;
  /// Runs simulated per parallel batch before the Wald boundaries are
  /// re-checked. Must not depend on the worker count (it is part of the
  /// deterministic schedule); 0 means the default of 128.
  std::size_t batch_size = 0;
  /// Crash-safe checkpoint/resume policy (src/ckpt). A snapshot records the
  /// exact position of the in-order LLR walk (runs consumed, hits, the LLR
  /// as its IEEE-754 bit pattern); because run i is a pure function of
  /// (seed, i) via common::RngStream, a test resumed from ANY walk position
  /// consumes the same runs and reaches the same verdict bit-identically —
  /// batch boundaries only schedule work, they never affect outcomes. The
  /// interval counts completed runs; the fingerprint covers the system, all
  /// test parameters, the seed and the goal predicate's canonical AST.
  ckpt::Options checkpoint;

  /// Rejects error probabilities / indifference outside (0, 1) and a zero
  /// run cap, naming the offending parameter.
  void validate(double theta) const;
};

/// Tests H0: p >= theta + indifference against H1: p <= theta - indifference.
SprtResult sprt_test(const ta::System& sys, const TimeBoundedReach& prop,
                     double theta, const SprtOptions& opts, std::uint64_t seed,
                     exec::Executor& ex,
                     exec::RunTelemetry* telemetry = nullptr,
                     const common::Budget& budget = {});

/// Same, on the process-wide executor (QUANTA_JOBS workers).
SprtResult sprt_test(const ta::System& sys, const TimeBoundedReach& prop,
                     double theta, const SprtOptions& opts, std::uint64_t seed,
                     const common::Budget& budget = {});

}  // namespace quanta::smc
