// Wald's Sequential Probability Ratio Test for qualitative SMC queries
// Pr[<=T](<> goal) >= theta, as used by UPPAAL-SMC for hypothesis testing.
#pragma once

#include <cstdint>

#include "smc/simulator.h"

namespace quanta::smc {

enum class SprtVerdict {
  kAccepted,      ///< H0: p >= theta + delta accepted
  kRejected,      ///< H1: p <= theta - delta accepted
  kInconclusive,  ///< max_runs exhausted without crossing a boundary
};

struct SprtResult {
  SprtVerdict verdict = SprtVerdict::kInconclusive;
  std::size_t runs = 0;
  std::size_t hits = 0;
};

struct SprtOptions {
  double alpha = 0.05;       ///< type-I error (false reject of H0)
  double beta = 0.05;        ///< type-II error (false accept of H0)
  double indifference = 0.01;  ///< half-width of the indifference region
  std::size_t max_runs = 1'000'000;
};

/// Tests H0: p >= theta + indifference against H1: p <= theta - indifference.
SprtResult sprt_test(const ta::System& sys, const TimeBoundedReach& prop,
                     double theta, const SprtOptions& opts, std::uint64_t seed);

}  // namespace quanta::smc
