// Digital-clocks translation of a PTA (ta::System with probabilistic
// branches) into an MDP — the engine room of the mcpta/PRISM column of the
// paper's Table I. Clocks advance by unit "tick" actions (reward 1, so the
// accumulated reward of a path is elapsed time); discrete moves become
// probabilistic MDP actions. Exact for closed, diagonal-free PTA
// (Kwiatkowska et al., digital clocks).
#pragma once

#include <cstdint>
#include <functional>

#include "core/search.h"
#include "mdp/mdp.h"
#include "mdp/graph_analysis.h"
#include "ta/digital.h"

namespace quanta::pta {

struct DigitalMdp {
  mdp::Mdp mdp;
  /// MDP state id -> digital TA state (for property predicates).
  std::vector<ta::DigitalState> states;
  const ta::System* system = nullptr;
  bool truncated = false;
  /// Why the exploration ended; kCompleted iff !truncated. Probabilities
  /// computed on a truncated MDP are not exact — treat them as kUnknown.
  common::StopReason stop = common::StopReason::kCompleted;
  core::SearchStats stats;

  /// Goal-set construction from a predicate over digital states.
  mdp::StateSet states_where(
      const std::function<bool(const ta::DigitalState&)>& pred) const;
};

struct DigitalBuildOptions {
  core::SearchLimits limits{.max_states = 20'000'000, .budget = {}};
};

/// Forward-explores the digital semantics and assembles the MDP (frozen).
DigitalMdp build_digital_mdp(const ta::System& sys,
                             const DigitalBuildOptions& opts = {});

}  // namespace quanta::pta
