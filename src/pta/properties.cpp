#include "pta/properties.h"

#include <sstream>

namespace quanta::pta {

namespace {

/// A probability / expected value computed on a truncated digital MDP is a
/// number over a partial state space — never certified, whatever the VI said.
template <typename R>
ProbResult from_numeric(const DigitalMdp& dm, const R& r) {
  ProbResult out{r.at_initial(dm.mdp), r.iterations, r.converged};
  if (dm.truncated) {
    out.verdict = common::Verdict::kUnknown;
    out.stop = dm.stop;
  } else {
    out.verdict = r.verdict;
    out.stop = r.stop;
  }
  return out;
}

}  // namespace

ProbResult pmax_reach(const DigitalMdp& dm, const DigitalPredicate& pred,
                      const mdp::ViOptions& opts) {
  auto goal = dm.states_where(pred);
  return from_numeric(
      dm, mdp::reachability_probability(dm.mdp, goal, mdp::Objective::kMax, opts));
}

ProbResult pmin_reach(const DigitalMdp& dm, const DigitalPredicate& pred,
                      const mdp::ViOptions& opts) {
  auto goal = dm.states_where(pred);
  return from_numeric(
      dm, mdp::reachability_probability(dm.mdp, goal, mdp::Objective::kMin, opts));
}

ProbResult emax_time(const DigitalMdp& dm, const DigitalPredicate& pred,
                     const mdp::ViOptions& opts) {
  auto goal = dm.states_where(pred);
  auto r = mdp::expected_reward_to_goal(dm.mdp, goal, mdp::Objective::kMax, opts);
  return from_numeric(dm, r);
}

ProbResult emin_time(const DigitalMdp& dm, const DigitalPredicate& pred,
                     const mdp::ViOptions& opts) {
  auto goal = dm.states_where(pred);
  auto r = mdp::expected_reward_to_goal(dm.mdp, goal, mdp::Objective::kMin, opts);
  return from_numeric(dm, r);
}

InvariantCheck check_invariant(const DigitalMdp& dm,
                               const DigitalPredicate& pred) {
  InvariantCheck result;
  // A violation inside the explored prefix is definite regardless of
  // truncation; absence of one only proves the invariant when the builder
  // enumerated every reachable state.
  result.verdict = dm.truncated ? common::Verdict::kUnknown
                                : common::Verdict::kHolds;
  result.stop = dm.stop;
  for (std::size_t i = 0; i < dm.states.size(); ++i) {
    if (!pred(dm.states[i])) {
      result.verdict = common::Verdict::kViolated;
      std::ostringstream os;
      const auto& s = dm.states[i];
      os << "state " << i << ": locs=[";
      for (std::size_t p = 0; p < s.locs.size(); ++p) {
        if (p) os << ",";
        os << dm.system->process(static_cast<int>(p))
                  .locations[static_cast<std::size_t>(s.locs[p])]
                  .name;
      }
      os << "]";
      result.violating_state = os.str();
      return result;
    }
  }
  return result;
}

}  // namespace quanta::pta
