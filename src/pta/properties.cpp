#include "pta/properties.h"

#include <sstream>

namespace quanta::pta {

namespace {

ProbResult from_vi(const mdp::ViResult& r, const mdp::Mdp& m) {
  return ProbResult{r.at_initial(m), r.iterations, r.converged};
}

}  // namespace

ProbResult pmax_reach(const DigitalMdp& dm, const DigitalPredicate& pred,
                      const mdp::ViOptions& opts) {
  auto goal = dm.states_where(pred);
  return from_vi(
      mdp::reachability_probability(dm.mdp, goal, mdp::Objective::kMax, opts),
      dm.mdp);
}

ProbResult pmin_reach(const DigitalMdp& dm, const DigitalPredicate& pred,
                      const mdp::ViOptions& opts) {
  auto goal = dm.states_where(pred);
  return from_vi(
      mdp::reachability_probability(dm.mdp, goal, mdp::Objective::kMin, opts),
      dm.mdp);
}

ProbResult emax_time(const DigitalMdp& dm, const DigitalPredicate& pred,
                     const mdp::ViOptions& opts) {
  auto goal = dm.states_where(pred);
  auto r = mdp::expected_reward_to_goal(dm.mdp, goal, mdp::Objective::kMax, opts);
  return ProbResult{r.at_initial(dm.mdp), r.iterations, r.converged};
}

ProbResult emin_time(const DigitalMdp& dm, const DigitalPredicate& pred,
                     const mdp::ViOptions& opts) {
  auto goal = dm.states_where(pred);
  auto r = mdp::expected_reward_to_goal(dm.mdp, goal, mdp::Objective::kMin, opts);
  return ProbResult{r.at_initial(dm.mdp), r.iterations, r.converged};
}

InvariantCheck check_invariant(const DigitalMdp& dm,
                               const DigitalPredicate& pred) {
  InvariantCheck result;
  for (std::size_t i = 0; i < dm.states.size(); ++i) {
    if (!pred(dm.states[i])) {
      result.holds = false;
      std::ostringstream os;
      const auto& s = dm.states[i];
      os << "state " << i << ": locs=[";
      for (std::size_t p = 0; p < s.locs.size(); ++p) {
        if (p) os << ",";
        os << dm.system->process(static_cast<int>(p))
                  .locations[static_cast<std::size_t>(s.locs[p])]
                  .name;
      }
      os << "]";
      result.violating_state = os.str();
      return result;
    }
  }
  return result;
}

}  // namespace quanta::pta
