// Probabilistic timed automata. A PTA in quanta is a ta::System whose edges
// carry probabilistic branches (ta::ProbBranch) — mirroring how a MODEST
// model is an STA whose syntactic restrictions determine the analysable
// class. This header provides the PTA-side conveniences; the translation to
// MDPs lives in digital_clocks.h.
#pragma once

#include "ta/model.h"

namespace quanta::pta {

/// Convenience for building `palt`-style probabilistic edges (cf. the
/// paper's Fig. 5 channel): adds an edge with the given guard/sync whose
/// outcome is distributed over `branches`. Returns the edge index.
int add_prob_edge(ta::ProcessBuilder& pb, int source,
                  std::vector<ta::ClockConstraint> guard, int channel,
                  ta::SyncKind sync, std::vector<ta::ProbBranch> branches,
                  std::string label = {});

}  // namespace quanta::pta
