#include "pta/pta.h"

#include <stdexcept>

namespace quanta::pta {

int add_prob_edge(ta::ProcessBuilder& pb, int source,
                  std::vector<ta::ClockConstraint> guard, int channel,
                  ta::SyncKind sync, std::vector<ta::ProbBranch> branches,
                  std::string label) {
  if (branches.empty()) {
    throw std::invalid_argument("add_prob_edge: no branches");
  }
  int idx = pb.edge(source, branches.front().target);
  ta::Edge& e = pb.edge_ref(idx);
  e.guard = std::move(guard);
  e.channel = channel;
  e.sync = sync;
  e.branches = std::move(branches);
  e.label = std::move(label);
  return idx;
}

}  // namespace quanta::pta
