// Property evaluation on digital-clock MDPs: the query forms used by the
// paper's Table I — invariants (TA1/TA2), max/min reachability probabilities
// (PA, PB, P1, P2, Dmax) and extremal expected times (Emax).
#pragma once

#include <functional>
#include <string>

#include "mdp/expected_reward.h"
#include "mdp/value_iteration.h"
#include "pta/digital_clocks.h"

namespace quanta::pta {

using DigitalPredicate = std::function<bool(const ta::DigitalState&)>;

struct ProbResult {
  double value = 0.0;
  std::int64_t iterations = 0;
  bool converged = false;
};

/// Pmax(F pred) from the initial state.
ProbResult pmax_reach(const DigitalMdp& dm, const DigitalPredicate& pred,
                      const mdp::ViOptions& opts = {});
/// Pmin(F pred) from the initial state.
ProbResult pmin_reach(const DigitalMdp& dm, const DigitalPredicate& pred,
                      const mdp::ViOptions& opts = {});

/// Emax / Emin of accumulated time (tick rewards) until F pred.
ProbResult emax_time(const DigitalMdp& dm, const DigitalPredicate& pred,
                     const mdp::ViOptions& opts = {});
ProbResult emin_time(const DigitalMdp& dm, const DigitalPredicate& pred,
                     const mdp::ViOptions& opts = {});

struct InvariantCheck {
  bool holds = true;
  std::string violating_state;  ///< printable, when !holds
};

/// A[] pred over all reachable digital states.
InvariantCheck check_invariant(const DigitalMdp& dm,
                               const DigitalPredicate& pred);

}  // namespace quanta::pta
