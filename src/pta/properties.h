// Property evaluation on digital-clock MDPs: the query forms used by the
// paper's Table I — invariants (TA1/TA2), max/min reachability probabilities
// (PA, PB, P1, P2, Dmax) and extremal expected times (Emax).
#pragma once

#include <functional>
#include <string>

#include "mdp/expected_reward.h"
#include "mdp/value_iteration.h"
#include "pta/digital_clocks.h"

namespace quanta::pta {

using DigitalPredicate = std::function<bool(const ta::DigitalState&)>;

struct ProbResult {
  double value = 0.0;
  std::int64_t iterations = 0;
  bool converged = false;
  /// Forwarded from the underlying value iteration: kHolds iff the fixpoint
  /// converged to epsilon; kUnknown when the iteration was cut short — the
  /// `value` is then the last iterate, not a certified probability. A result
  /// computed on a *truncated* digital MDP is additionally downgraded to
  /// kUnknown (probabilities over a partial state space certify nothing).
  common::Verdict verdict = common::Verdict::kUnknown;
  common::StopReason stop = common::StopReason::kCompleted;
};

/// Pmax(F pred) from the initial state.
ProbResult pmax_reach(const DigitalMdp& dm, const DigitalPredicate& pred,
                      const mdp::ViOptions& opts = {});
/// Pmin(F pred) from the initial state.
ProbResult pmin_reach(const DigitalMdp& dm, const DigitalPredicate& pred,
                      const mdp::ViOptions& opts = {});

/// Emax / Emin of accumulated time (tick rewards) until F pred.
ProbResult emax_time(const DigitalMdp& dm, const DigitalPredicate& pred,
                     const mdp::ViOptions& opts = {});
ProbResult emin_time(const DigitalMdp& dm, const DigitalPredicate& pred,
                     const mdp::ViOptions& opts = {});

struct InvariantCheck {
  /// kViolated on a concrete bad state (sound even on a truncated MDP),
  /// kHolds only when every reachable digital state was enumerated and
  /// passed, kUnknown when the builder truncated without finding a violation.
  common::Verdict verdict = common::Verdict::kUnknown;
  std::string violating_state;  ///< printable, when violated
  common::StopReason stop = common::StopReason::kCompleted;

  bool holds() const { return verdict == common::Verdict::kHolds; }
};

/// A[] pred over all reachable digital states.
InvariantCheck check_invariant(const DigitalMdp& dm,
                               const DigitalPredicate& pred);

}  // namespace quanta::pta
