#include "pta/digital_clocks.h"

#include "core/explore.h"
#include "core/state_store.h"
#include "core/worklist.h"
#include "ta/traits.h"

namespace quanta::pta {

mdp::StateSet DigitalMdp::states_where(
    const std::function<bool(const ta::DigitalState&)>& pred) const {
  mdp::StateSet set(states.size(), false);
  for (std::size_t i = 0; i < states.size(); ++i) set[i] = pred(states[i]);
  return set;
}

namespace {

/// Enumerates the product distribution over the participants' branch sets.
/// Calls `emit(branch_choice, probability)` once per combination.
void enumerate_branches(
    const ta::System& sys, const ta::Move& move,
    const std::function<void(const std::vector<int>&, double)>& emit) {
  const std::size_t k = move.participants.size();
  std::vector<const ta::Edge*> edges(k);
  std::vector<double> weight_sum(k, 1.0);
  std::vector<int> counts(k, 1);
  for (std::size_t i = 0; i < k; ++i) {
    const auto& [p, e] = move.participants[i];
    edges[i] = &sys.process(p).edges.at(static_cast<std::size_t>(e));
    if (edges[i]->probabilistic()) {
      counts[i] = static_cast<int>(edges[i]->branches.size());
      double sum = 0.0;
      for (const auto& b : edges[i]->branches) sum += b.weight;
      weight_sum[i] = sum;
    }
  }
  std::vector<int> choice(k, -1);
  // Odometer over the branch indices (Dirac edges contribute one slot, -1).
  std::vector<int> counter(k, 0);
  for (;;) {
    double prob = 1.0;
    for (std::size_t i = 0; i < k; ++i) {
      if (edges[i]->probabilistic()) {
        choice[i] = counter[i];
        prob *= edges[i]->branches[static_cast<std::size_t>(counter[i])].weight /
                weight_sum[i];
      } else {
        choice[i] = -1;
      }
    }
    emit(choice, prob);
    // Advance the odometer.
    std::size_t pos = 0;
    while (pos < k) {
      if (++counter[pos] < counts[pos]) break;
      counter[pos] = 0;
      ++pos;
    }
    if (pos == k) break;
  }
}

}  // namespace

namespace {

DigitalMdp build_digital_mdp_impl(const ta::System& sys,
                                  const DigitalBuildOptions& opts) {
  DigitalMdp out;
  out.system = &sys;
  ta::DigitalSemantics sem(sys);

  core::StateStore<ta::DigitalState> store;
  core::Worklist work(core::SearchOrder::kBfs);

  auto intern = [&](ta::DigitalState s) -> std::int32_t {
    auto [id, inserted] = store.intern(std::move(s));
    if (inserted) work.push(id);
    return id;
  };

  std::int32_t init = intern(sem.initial());
  out.mdp.set_initial(init);

  core::SearchStats stats = core::explore(
      store, work, opts.limits,
      [](const core::Worklist::Entry&) { return core::Visit::kContinue; },
      [&](const core::Worklist::Entry& e) -> std::size_t {
        const ta::DigitalState state = store.state(e.id);
        std::size_t taken = 0;

        for (const ta::Move& move : sem.enabled_moves(state)) {
          ++taken;
          std::vector<mdp::Branch> branches;
          enumerate_branches(sys, move,
                             [&](const std::vector<int>& choice, double p) {
                               ta::DigitalState next = sem.apply(state, move, choice);
                               branches.push_back(mdp::Branch{intern(std::move(next)), p});
                             });
          out.mdp.add_choice(e.id, std::move(branches), /*reward=*/0.0);
        }

        if (sem.can_delay(state)) {
          ++taken;
          std::int32_t next = intern(sem.delay_one(state));
          out.mdp.add_choice(e.id, {mdp::Branch{next, 1.0}}, /*reward=*/1.0);
        }
        return taken;
      });
  out.truncated = stats.truncated;
  out.stop = stats.stop;
  out.stats = stats;
  out.states.reserve(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    out.states.push_back(store.state(static_cast<std::int32_t>(i)));
  }
  out.mdp.freeze();
  return out;
}

}  // namespace

DigitalMdp build_digital_mdp(const ta::System& sys,
                             const DigitalBuildOptions& opts) {
  opts.limits.validate("pta.build_digital_mdp");
  return common::governed(
      [&] { return build_digital_mdp_impl(sys, opts); },
      [&sys](common::StopReason r) {
        // Degraded result: an empty, truncated MDP. Callers must check
        // `truncated` before trusting any probability computed on it; the
        // contained mdp is left unfrozen (it has no states at all).
        DigitalMdp out;
        out.system = &sys;
        out.truncated = true;
        out.stop = r;
        out.stats.stop_for(r);
        return out;
      });
}

}  // namespace quanta::pta
