// ExplorationObserver: instrumentation hook of the exploration core. Engines
// report stored/explored states through it and hand over the final stats and
// store occupancy, so tracing, progress reporting and (later) parallel-worker
// telemetry can be bolted on without touching any engine again.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "core/search.h"
#include "core/state_store.h"

namespace quanta::core {

class ExplorationObserver {
 public:
  virtual ~ExplorationObserver() = default;

  /// A new state was interned (id is its dense store id).
  virtual void on_state_stored(std::int32_t /*id*/, std::size_t /*total_stored*/) {}
  /// A waiting state was popped and visited.
  virtual void on_state_explored(std::int32_t /*id*/) {}
  /// The search finished (goal found, exhausted, or truncated).
  virtual void on_search_done(const SearchStats& /*stats*/,
                              const StoreMetrics& /*metrics*/) {}
};

/// Ready-made observer collecting throughput and occupancy figures:
/// states/second, peak stored states, and the store's bucket metrics.
class StatsObserver final : public ExplorationObserver {
 public:
  StatsObserver() : start_(Clock::now()) {}

  void on_state_stored(std::int32_t id, std::size_t total_stored) override;
  void on_state_explored(std::int32_t id) override;
  void on_search_done(const SearchStats& stats,
                      const StoreMetrics& metrics) override;

  std::size_t peak_stored() const { return peak_stored_; }
  std::size_t explored() const { return explored_; }
  double elapsed_seconds() const { return elapsed_; }
  /// Explored states per second over the whole search (0 until done).
  double states_per_second() const;
  const SearchStats& stats() const { return stats_; }
  const StoreMetrics& store_metrics() const { return metrics_; }

  /// One-line human-readable summary for logs and benches.
  std::string summary() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  std::size_t peak_stored_ = 0;
  std::size_t explored_ = 0;
  double elapsed_ = 0.0;
  SearchStats stats_;
  StoreMetrics metrics_;
};

}  // namespace quanta::core
