#include "core/observer.h"

#include <cstdio>

namespace quanta::core {

void StatsObserver::on_state_stored(std::int32_t /*id*/,
                                    std::size_t total_stored) {
  if (total_stored > peak_stored_) peak_stored_ = total_stored;
}

void StatsObserver::on_state_explored(std::int32_t /*id*/) { ++explored_; }

void StatsObserver::on_search_done(const SearchStats& stats,
                                   const StoreMetrics& metrics) {
  stats_ = stats;
  metrics_ = metrics;
  elapsed_ = std::chrono::duration<double>(Clock::now() - start_).count();
  if (stats_.states_stored > peak_stored_) peak_stored_ = stats_.states_stored;
}

double StatsObserver::states_per_second() const {
  if (elapsed_ <= 0.0) return 0.0;
  return static_cast<double>(explored_) / elapsed_;
}

std::string StatsObserver::summary() const {
  char buf[320];
  int n = std::snprintf(
      buf, sizeof(buf),
      "%zu stored (peak %zu, %zu covered), %zu explored, "
      "%.0f states/s, table %zu/%zu slots (max chain %zu)",
      stats_.states_stored, peak_stored_, metrics_.covered, explored_,
      states_per_second(), metrics_.occupied, metrics_.slots,
      metrics_.max_chain);
  if (metrics_.pool.lookups > 0 && n > 0 &&
      static_cast<std::size_t>(n) < sizeof(buf)) {
    std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                  ", pool %zu payloads (%.0f%% shared, %.1f MiB resident, "
                  "%.1f MiB spilled)",
                  metrics_.pool.records, 100.0 * metrics_.pool.hit_rate(),
                  static_cast<double>(metrics_.pool.resident_bytes) /
                      (1024.0 * 1024.0),
                  static_cast<double>(metrics_.pool.spilled_bytes) /
                      (1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace quanta::core
