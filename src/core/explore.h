// core::explore — the one passed/waiting loop behind every symbolic engine.
//
// The engine supplies two callbacks over Worklist entries:
//   visit(entry)  -> Visit   goal tests / stale-entry filtering;
//   expand(entry) -> size_t  generates successors (interning them into the
//                            store and pushing fresh ones onto the worklist),
//                            returning the number of transitions taken.
//
// The loop owns the uniform semantics all engines share:
//   pop -> skip covered (subsumed) states -> visit -> count explored ->
//   stop on kStop -> truncate when SearchLimits::reached(store.size()) or
//   the Budget gives out -> expand.
// In particular the truncation check sits after the visit of the popped
// state and before its expansion, so every engine reports its StopReason
// identically and never half-expands a state. Budget polling (the only
// clock read) is amortized to every kBudgetPollStride expansions — except
// the very first, which polls immediately so an already-expired deadline is
// detected deterministically even on tiny models.
#pragma once

#include <functional>
#include <utility>

#include "core/observer.h"
#include "core/search.h"
#include "core/state_store.h"
#include "core/worklist.h"

namespace quanta::core {

/// Verdict of the visit callback for the state just popped.
enum class Visit {
  kContinue,  ///< keep exploring: expand this state
  kSkip,      ///< drop silently (stale priority entry); not counted explored
  kStop,      ///< search done (goal found / violation): counted, not expanded
};

/// Expansions between two Budget polls. One steady_clock read per stride
/// keeps the deadline/memory-check overhead on the hot loop under the noise
/// floor (bench/bench_budget_overhead.cpp).
inline constexpr std::size_t kBudgetPollStride = 64;

/// Engine-supplied snapshot hook (src/ckpt). The sink fires when a resource
/// bound (state limit or Budget) stops the search, and — when `interval` is
/// non-zero — every `interval` explored states, so even a SIGKILL loses at
/// most one interval of work. It always fires at the one consistent point
/// of the loop: `pending` has been popped and goal-tested but NOT expanded,
/// and `stats.states_explored` already counts its visit. A resumable
/// snapshot must therefore re-queue `pending` as the next state to pop and
/// record `states_explored - 1`, so the resumed run re-visits it exactly
/// once and interrupted + resumed totals equal an uninterrupted run's.
struct CheckpointHook {
  std::size_t interval = 0;
  std::function<void(const SearchStats&, const Worklist::Entry& pending)> sink;
};

template <typename Store, typename VisitFn, typename ExpandFn>
SearchStats explore(Store& store, Worklist& work, const SearchLimits& limits,
                    VisitFn&& visit, ExpandFn&& expand,
                    ExplorationObserver* observer = nullptr,
                    const CheckpointHook* checkpoint = nullptr) {
  SearchStats stats;
  const common::Budget& budget = limits.budget;
  const bool governed = budget.active();
  const bool snapshotting = checkpoint != nullptr && checkpoint->sink;
  std::size_t poll_in = 1;  // first expansion polls; then every stride
  std::size_t snap_in = snapshotting ? checkpoint->interval : 0;
  while (!work.empty()) {
    const Worklist::Entry entry = work.pop();
    if (store.covered(entry.id)) continue;
    const Visit verdict = visit(entry);
    if (verdict == Visit::kSkip) continue;
    ++stats.states_explored;
    if (observer != nullptr) observer->on_state_explored(entry.id);
    if (verdict == Visit::kStop) break;
    if (limits.reached(store.size())) {
      stats.stop_for(common::StopReason::kStateLimit);
      if (snapshotting) checkpoint->sink(stats, entry);
      break;
    }
    if (governed && --poll_in == 0) {
      poll_in = kBudgetPollStride;
      const common::StopReason r = budget.poll(store.memory_bytes());
      if (r != common::StopReason::kCompleted) {
        stats.stop_for(r);
        if (snapshotting) checkpoint->sink(stats, entry);
        break;
      }
    }
    if (snap_in != 0 && --snap_in == 0) {
      snap_in = checkpoint->interval;
      checkpoint->sink(stats, entry);
    }
    stats.transitions += expand(entry);
  }
  stats.states_stored = store.size();
  if (observer != nullptr) observer->on_search_done(stats, store.metrics());
  return stats;
}

}  // namespace quanta::core
