// core::explore — the one passed/waiting loop behind every symbolic engine.
//
// The engine supplies two callbacks over Worklist entries:
//   visit(entry)  -> Visit   goal tests / stale-entry filtering;
//   expand(entry) -> size_t  generates successors (interning them into the
//                            store and pushing fresh ones onto the worklist),
//                            returning the number of transitions taken.
//
// The loop owns the uniform semantics all engines share:
//   pop -> skip covered (subsumed) states -> visit -> count explored ->
//   stop on kStop -> truncate when SearchLimits::reached(store.size()) ->
//   expand.
// In particular the truncation check sits after the visit of the popped
// state and before its expansion, so every engine reports `truncated`
// identically and never half-expands a state.
#pragma once

#include <utility>

#include "core/observer.h"
#include "core/search.h"
#include "core/state_store.h"
#include "core/worklist.h"

namespace quanta::core {

/// Verdict of the visit callback for the state just popped.
enum class Visit {
  kContinue,  ///< keep exploring: expand this state
  kSkip,      ///< drop silently (stale priority entry); not counted explored
  kStop,      ///< search done (goal found / violation): counted, not expanded
};

template <typename Store, typename VisitFn, typename ExpandFn>
SearchStats explore(Store& store, Worklist& work, const SearchLimits& limits,
                    VisitFn&& visit, ExpandFn&& expand,
                    ExplorationObserver* observer = nullptr) {
  SearchStats stats;
  while (!work.empty()) {
    const Worklist::Entry entry = work.pop();
    if (store.covered(entry.id)) continue;
    const Visit verdict = visit(entry);
    if (verdict == Visit::kSkip) continue;
    ++stats.states_explored;
    if (observer != nullptr) observer->on_state_explored(entry.id);
    if (verdict == Visit::kStop) break;
    if (limits.reached(store.size())) {
      stats.truncated = true;
      break;
    }
    stats.transitions += expand(entry);
  }
  stats.states_stored = store.size();
  if (observer != nullptr) observer->on_search_done(stats, store.metrics());
  return stats;
}

}  // namespace quanta::core
