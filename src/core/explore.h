// core::explore — the one passed/waiting loop behind every symbolic engine.
//
// The engine supplies two callbacks over Worklist entries:
//   visit(entry)  -> Visit   goal tests / stale-entry filtering;
//   expand(entry) -> size_t  generates successors (interning them into the
//                            store and pushing fresh ones onto the worklist),
//                            returning the number of transitions taken.
//
// The loop owns the uniform semantics all engines share:
//   pop -> skip covered (subsumed) states -> visit -> count explored ->
//   stop on kStop -> truncate when SearchLimits::reached(store.size()) or
//   the Budget gives out -> expand.
// In particular the truncation check sits after the visit of the popped
// state and before its expansion, so every engine reports its StopReason
// identically and never half-expands a state. Budget polling (the only
// clock read) is amortized to every kBudgetPollStride expansions — except
// the very first, which polls immediately so an already-expired deadline is
// detected deterministically even on tiny models.
#pragma once

#include <utility>

#include "core/observer.h"
#include "core/search.h"
#include "core/state_store.h"
#include "core/worklist.h"

namespace quanta::core {

/// Verdict of the visit callback for the state just popped.
enum class Visit {
  kContinue,  ///< keep exploring: expand this state
  kSkip,      ///< drop silently (stale priority entry); not counted explored
  kStop,      ///< search done (goal found / violation): counted, not expanded
};

/// Expansions between two Budget polls. One steady_clock read per stride
/// keeps the deadline/memory-check overhead on the hot loop under the noise
/// floor (bench/bench_budget_overhead.cpp).
inline constexpr std::size_t kBudgetPollStride = 64;

template <typename Store, typename VisitFn, typename ExpandFn>
SearchStats explore(Store& store, Worklist& work, const SearchLimits& limits,
                    VisitFn&& visit, ExpandFn&& expand,
                    ExplorationObserver* observer = nullptr) {
  SearchStats stats;
  const common::Budget& budget = limits.budget;
  const bool governed = budget.active();
  std::size_t poll_in = 1;  // first expansion polls; then every stride
  while (!work.empty()) {
    const Worklist::Entry entry = work.pop();
    if (store.covered(entry.id)) continue;
    const Visit verdict = visit(entry);
    if (verdict == Visit::kSkip) continue;
    ++stats.states_explored;
    if (observer != nullptr) observer->on_state_explored(entry.id);
    if (verdict == Visit::kStop) break;
    if (limits.reached(store.size())) {
      stats.stop_for(common::StopReason::kStateLimit);
      break;
    }
    if (governed && --poll_in == 0) {
      poll_in = kBudgetPollStride;
      const common::StopReason r = budget.poll(store.memory_bytes());
      if (r != common::StopReason::kCompleted) {
        stats.stop_for(r);
        break;
      }
    }
    stats.transitions += expand(entry);
  }
  stats.states_stored = store.size();
  if (observer != nullptr) observer->on_search_done(stats, store.metrics());
  return stats;
}

}  // namespace quanta::core
