#include "core/worklist.h"

#include <algorithm>

namespace quanta::core {

namespace {

/// std::push_heap/pop_heap build a max-heap; invert the comparison to pop
/// the smallest key first. Ties broken by id for deterministic order.
struct KeyGreater {
  bool operator()(const Worklist::Entry& a, const Worklist::Entry& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.id > b.id;
  }
};

}  // namespace

bool Worklist::empty() const {
  return order_ == SearchOrder::kPriority ? heap_.empty() : fifo_.empty();
}

std::size_t Worklist::pending() const {
  return order_ == SearchOrder::kPriority ? heap_.size() : fifo_.size();
}

void Worklist::push(std::int32_t id, std::int64_t key) {
  if (order_ == SearchOrder::kPriority) {
    heap_.push_back(Entry{id, key});
    std::push_heap(heap_.begin(), heap_.end(), KeyGreater{});
  } else {
    fifo_.push_back(Entry{id, key});
  }
}

std::vector<Worklist::Entry> Worklist::snapshot() const {
  if (order_ == SearchOrder::kPriority) return heap_;
  return std::vector<Entry>(fifo_.begin(), fifo_.end());
}

void Worklist::restore(std::vector<Entry> entries) {
  if (order_ == SearchOrder::kPriority) {
    heap_ = std::move(entries);
    // Heap-order-preserving restore: snapshot() emits the raw heap array, so
    // adopting it verbatim reproduces the exact internal layout of the
    // interrupted run — which keeps subsequent snapshots (and the delta
    // chains diffed against them) byte-stable, not just the pop sequence.
    // The engine may have appended one extra entry (the popped-but-
    // unexpanded state of an interrupted search); sift just that one up.
    // Anything else falls back to a full re-heapify, which still yields the
    // correct total (key, id) pop order.
    if (!std::is_heap(heap_.begin(), heap_.end(), KeyGreater{})) {
      if (heap_.size() > 1 &&
          std::is_heap(heap_.begin(), heap_.end() - 1, KeyGreater{})) {
        std::push_heap(heap_.begin(), heap_.end(), KeyGreater{});
      } else {
        std::make_heap(heap_.begin(), heap_.end(), KeyGreater{});
      }
    }
  } else {
    fifo_.assign(entries.begin(), entries.end());
  }
}

Worklist::Entry Worklist::pop() {
  switch (order_) {
    case SearchOrder::kBfs: {
      Entry e = fifo_.front();
      fifo_.pop_front();
      return e;
    }
    case SearchOrder::kDfs: {
      Entry e = fifo_.back();
      fifo_.pop_back();
      return e;
    }
    case SearchOrder::kPriority: {
      std::pop_heap(heap_.begin(), heap_.end(), KeyGreater{});
      Entry e = heap_.back();
      heap_.pop_back();
      return e;
    }
  }
  return Entry{};
}

}  // namespace quanta::core
