// Worklist: the waiting list of the exploration core, with a pluggable
// search order — FIFO (breadth-first), LIFO (depth-first) or a min-heap on a
// caller-supplied key (priced search / Dijkstra). Holds state-store ids, not
// states, so it stays cheap regardless of the state type.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/search.h"

namespace quanta::core {

class Worklist {
 public:
  struct Entry {
    std::int32_t id = -1;
    std::int64_t key = 0;  ///< priority key (cost); 0 under BFS/DFS
  };

  explicit Worklist(SearchOrder order = SearchOrder::kBfs) : order_(order) {}

  SearchOrder order() const { return order_; }
  bool empty() const;
  std::size_t pending() const;

  /// Enqueues a state id. `key` orders kPriority worklists (smallest first);
  /// re-pushing an id with a better key is allowed — stale entries are
  /// expected to be skipped by the engine (lazy decrease-key).
  void push(std::int32_t id, std::int64_t key = 0);

  /// Removes and returns the next entry according to the search order.
  /// Precondition: !empty().
  Entry pop();

  /// Pending entries for snapshotting (src/ckpt), in internal storage order
  /// (deque front-to-back, or the raw heap array). Feeding the result to
  /// restore() on a worklist of the same order reproduces the exact pop
  /// sequence: the deque is copied verbatim, and heap pops follow the total
  /// (key, id) order regardless of array layout.
  std::vector<Entry> snapshot() const;

  /// Replaces the pending entries wholesale (resume path). The vector may
  /// carry extra entries prepended/appended by the engine (e.g. the popped-
  /// but-unexpanded state of an interrupted search). A kPriority restore is
  /// heap-order-preserving: a vector that already satisfies the heap
  /// property (the raw array snapshot() emitted) is adopted verbatim, one
  /// trailing appended entry is sifted up, and only an arbitrary vector
  /// falls back to make_heap — pop order is the total (key, id) order in
  /// every case, but verbatim adoption also keeps the internal layout (and
  /// with it delta-snapshot diffs) identical to the interrupted run.
  void restore(std::vector<Entry> entries);

 private:
  SearchOrder order_;
  std::deque<Entry> fifo_;   ///< BFS pops the front, DFS pops the back
  std::vector<Entry> heap_;  ///< min-heap on Entry::key
};

}  // namespace quanta::core
