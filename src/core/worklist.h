// Worklist: the waiting list of the exploration core, with a pluggable
// search order — FIFO (breadth-first), LIFO (depth-first) or a min-heap on a
// caller-supplied key (priced search / Dijkstra). Holds state-store ids, not
// states, so it stays cheap regardless of the state type.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/search.h"

namespace quanta::core {

class Worklist {
 public:
  struct Entry {
    std::int32_t id = -1;
    std::int64_t key = 0;  ///< priority key (cost); 0 under BFS/DFS
  };

  explicit Worklist(SearchOrder order = SearchOrder::kBfs) : order_(order) {}

  SearchOrder order() const { return order_; }
  bool empty() const;
  std::size_t pending() const;

  /// Enqueues a state id. `key` orders kPriority worklists (smallest first);
  /// re-pushing an id with a better key is allowed — stale entries are
  /// expected to be skipped by the engine (lazy decrease-key).
  void push(std::int32_t id, std::int64_t key = 0);

  /// Removes and returns the next entry according to the search order.
  /// Precondition: !empty().
  Entry pop();

 private:
  SearchOrder order_;
  std::deque<Entry> fifo_;   ///< BFS pops the front, DFS pops the back
  std::vector<Entry> heap_;  ///< min-heap on Entry::key
};

}  // namespace quanta::core
