// Shared search vocabulary of the exploration core: every symbolic engine
// (mc reachability/liveness, TIGA, CORA, BIP, ECDAR, the digital-MDP builder)
// expresses its passed/waiting loop with these types so that limits,
// statistics and truncation semantics are uniform across the toolkit.
#pragma once

#include <cstddef>
#include <limits>

namespace quanta::core {

/// Order in which waiting states are expanded. All orders visit the same
/// state space; verdicts of order-insensitive analyses must not change.
enum class SearchOrder { kBfs, kDfs, kPriority };

/// Resource bounds on an exploration. A search that stops because of a limit
/// reports `SearchStats::truncated` — never a definite verdict.
struct SearchLimits {
  std::size_t max_states = std::numeric_limits<std::size_t>::max();

  /// The uniform truncation rule: the search stops (truncated) when the
  /// number of *stored* states reaches the limit, checked after the popped
  /// state has been visited (goal-tested) but before it is expanded.
  bool reached(std::size_t states_stored) const {
    return states_stored >= max_states;
  }
};

/// Counters every engine reports identically.
struct SearchStats {
  std::size_t states_stored = 0;    ///< interned states (incl. covered ones)
  std::size_t states_explored = 0;  ///< states popped and visited
  std::size_t transitions = 0;      ///< successor edges generated
  bool truncated = false;           ///< a SearchLimits bound was hit
};

}  // namespace quanta::core
