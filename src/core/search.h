// Shared search vocabulary of the exploration core: every symbolic engine
// (mc reachability/liveness, TIGA, CORA, BIP, ECDAR, the digital-MDP builder)
// expresses its passed/waiting loop with these types so that limits,
// statistics, budgets and truncation semantics are uniform across the
// toolkit. A search that stops for any resource reason reports the
// common::StopReason in its stats — never a definite verdict.
#pragma once

#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/budget.h"
#include "common/error.h"
#include "common/verdict.h"

namespace quanta::core {

/// Order in which waiting states are expanded. All orders visit the same
/// state space; verdicts of order-insensitive analyses must not change.
enum class SearchOrder { kBfs, kDfs, kPriority };

/// Resource bounds on an exploration: the classic stored-state cap plus the
/// shared resource envelope (wall-clock deadline, memory ceiling,
/// cancellation token) of common::Budget.
struct SearchLimits {
  std::size_t max_states = std::numeric_limits<std::size_t>::max();

  /// Deadline / memory ceiling / cancel token; polled amortized by
  /// core::explore so the hot loop stays flat when the budget is inactive.
  common::Budget budget;

  /// The uniform truncation rule: the search stops (truncated) when the
  /// number of *stored* states reaches the limit, checked after the popped
  /// state has been visited (goal-tested) but before it is expanded.
  bool reached(std::size_t states_stored) const {
    return states_stored >= max_states;
  }

  /// Entry-point argument validation: a zero state bound silently explores
  /// nothing and would masquerade as an exhaustive "no"; reject it loudly.
  void validate(const char* subsystem) const {
    if (max_states == 0) {
      throw std::invalid_argument(quanta::context(
          subsystem, "SearchLimits.max_states must be positive (a zero bound ",
          "would truncate before the initial state)"));
    }
  }
};

/// Counters every engine reports identically.
struct SearchStats {
  std::size_t states_stored = 0;    ///< interned states (incl. covered ones)
  std::size_t states_explored = 0;  ///< states popped and visited
  std::size_t transitions = 0;      ///< successor edges generated
  bool truncated = false;           ///< a SearchLimits/Budget bound was hit
  /// Why the search ended; truncated == (stop != kCompleted). A definite
  /// engine verdict is only ever derived from a kCompleted search (or from
  /// a witness found before any bound was hit).
  common::StopReason stop = common::StopReason::kCompleted;

  /// Marks the search as stopped by a resource bound.
  void stop_for(common::StopReason reason) {
    stop = reason;
    truncated = true;
  }
};

}  // namespace quanta::core
