// StateStore<S>: the interning substrate shared by all exploration engines.
//
// States are stored once, in insertion order, and addressed by dense int32
// ids — engines attach per-state payload (parents, successor lists, costs)
// as parallel vectors indexed by id. Lookup goes through an open-addressed
// hash table whose slots point at chains of states with equal key hash.
//
// Two dedup policies, selected per store at construction:
//   * exact      — full-state hash/equality (liveness zone graph, digital
//                  engines, BIP, ECDAR pairs);
//   * inclusion  — states are bucketed by their discrete partition and the
//                  continuous parts are compared by set inclusion: an
//                  incoming state covered by a stored one is dropped, and
//                  (optionally) a stored state strictly covered by the
//                  incoming one is tombstoned ("covered") so the search can
//                  skip it. This is UPPAAL-style zone-inclusion subsumption,
//                  available to every engine whose StateTraits support it.
//
// Pooled payload storage: when the traits opt in (core::PooledTraits — see
// traits.h), the store does not keep whole S objects. Each interned state is
// reduced to a compact Traits::Pooled record of store::Ref handles into a
// store::ZonePool that the store owns: identical DBM zones and discrete
// vectors across states collapse to one arena-allocated copy, and the pool
// can evict cold payload to a spill file under a memory ceiling
// (QUANTA_STORE_MEM / QUANTA_STORE_SPILL, or Options::pool). Key hashes are
// still computed on the incoming S and comparisons go through the pooled
// trait overloads, which decide exactly like the unpooled ones — so
// insertion order, chain membership, chain scan order and the rehash
// trajectory are bit-identical to an unpooled store. state(id) materializes
// an S by value on demand.
#pragma once

#include <cassert>
#include <concepts>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "core/traits.h"
#include "store/pool.h"

namespace quanta::core {

/// Occupancy snapshot of a store, for instrumentation (ExplorationObserver).
struct StoreMetrics {
  std::size_t stored = 0;     ///< interned states, including covered ones
  std::size_t covered = 0;    ///< tombstoned (subsumed) states
  std::size_t slots = 0;      ///< hash-table capacity
  std::size_t occupied = 0;   ///< slots in use (= distinct key hashes)
  std::size_t max_chain = 0;  ///< longest same-hash chain
  std::size_t memory_bytes = 0;  ///< StateStore::memory_bytes() at snapshot
  store::PoolMetrics pool{};  ///< payload-pool snapshot (zero when unpooled)

  double load_factor() const {
    return slots == 0 ? 0.0
                      : static_cast<double>(occupied) / static_cast<double>(slots);
  }
};

namespace detail {
/// Lazily resolves the in-store record type: Traits::Pooled when the traits
/// opt into pooling, the state type itself otherwise. (A plain conditional_t
/// would name Traits::Pooled even for traits that lack it.)
template <typename S, typename Traits, bool = PooledTraits<Traits>>
struct StoredOf {
  using type = S;
};
template <typename S, typename Traits>
struct StoredOf<S, Traits, true> {
  using type = typename Traits::Pooled;
};
}  // namespace detail

template <typename S, typename Traits = StateTraits<S>>
class StateStore {
 public:
  /// True when states are kept as interned Traits::Pooled records.
  static constexpr bool kPooled = PooledTraits<Traits>;
  /// What states_ actually holds.
  using Stored = typename detail::StoredOf<S, Traits>::type;

  struct Options {
    /// Dedup by partition + inclusion instead of full-state equality.
    /// Requires Traits::kSupportsInclusion.
    bool inclusion = false;
    /// With inclusion: tombstone stored states strictly covered by a new
    /// one. Turning this off (ablation A1) keeps dominated states live.
    bool tombstone_covered = true;
    /// Pooled stores only: explicit payload-pool configuration. Unset reads
    /// the QUANTA_STORE_MEM / QUANTA_STORE_SPILL environment knobs.
    std::optional<store::PoolConfig> pool = std::nullopt;
  };

  struct Interned {
    std::int32_t id;
    bool inserted;  ///< false: deduplicated/subsumed by a stored state
  };

  explicit StateStore(Options opts = {})
      : opts_(opts), pool_(make_pool_config(opts)) {
    if constexpr (!Traits::kSupportsInclusion) {
      assert(!opts_.inclusion && "state type has no inclusion support");
    }
    slots_.assign(kInitialSlots, kEmpty);
  }

  /// Interns a state. Returns the id of the representative state: the new
  /// id if inserted, or the id of the stored state that deduplicates /
  /// subsumes `s` otherwise.
  Interned intern(S s) {
    common::FaultInjector::site("core.state_store.intern");
    const std::size_t h = key_hash(s);
    std::size_t slot = probe_slot(h);
    std::int32_t tail = kEmpty;
    if (slots_[slot] != kEmpty) {
      // Walk the chain of states with this key hash, oldest first — the
      // scan order determines which stored zone subsumes first, so keep it
      // deterministic and identical to the historical per-engine buckets.
      for (std::int32_t id = slots_[slot]; id != kEmpty; id = next_[toIdx(id)]) {
        tail = id;
        if (opts_.inclusion) {
          if constexpr (Traits::kSupportsInclusion) {
            if (covered_[toIdx(id)] ||
                !stored_same_partition(states_[toIdx(id)], s)) {
              continue;
            }
            switch (stored_compare(states_[toIdx(id)], s)) {
              case Subsumes::kStored:
                return {id, false};
              case Subsumes::kIncoming:
                if (opts_.tombstone_covered) {
                  covered_[toIdx(id)] = 1;
                  ++covered_count_;
                  covered_journal_.push_back(id);
                }
                break;
              case Subsumes::kNone:
                break;
            }
          }
        } else {
          if (stored_equal(states_[toIdx(id)], s)) return {id, false};
        }
      }
    }
    const std::int32_t id = static_cast<std::int32_t>(states_.size());
    push_state(std::move(s), h);
    link_state(id, slot, tail);
    return {id, true};
  }

  /// The state behind an id. Pooled stores materialize a fresh S by value
  /// (the pooled record holds only Refs); unpooled stores hand out the
  /// stored object itself.
  std::conditional_t<kPooled, S, const S&> state(std::int32_t id) const {
    if constexpr (kPooled) {
      return Traits::unpool(pool_, states_[toIdx(id)]);
    } else {
      return states_[toIdx(id)];
    }
  }

  bool covered(std::int32_t id) const { return covered_[toIdx(id)] != 0; }

  /// Ids tombstoned so far, in the order their covered bit flipped. States
  /// are append-only and covered bits only ever flip 0 -> 1, so (appended
  /// states, journal suffix) is a complete diff between two points in time —
  /// the basis of incremental delta snapshots (src/ckpt/delta.h). A restored
  /// store lists its already-covered ids in index order; only the suffix
  /// beyond a remembered position is ever re-serialized.
  const std::vector<std::int32_t>& covered_journal() const {
    return covered_journal_;
  }

  /// Number of interned states (covered tombstones included).
  std::size_t size() const { return states_.size(); }

  /// Approximate bytes held by the store: per-state payload plus the
  /// interning bookkeeping, the hash table, the covered journal, a standing
  /// allowance for the transient head array a rehash allocates (so a rehash
  /// mid-intern cannot overshoot a Budget ceiling that was checked against
  /// this value), and — for pooled stores — the pool's resident arena and
  /// bookkeeping. Feeds the memory ceiling of common::Budget; maintained
  /// incrementally so reading it is cheap.
  std::size_t memory_bytes() const {
    std::size_t n = bytes_ + slots_.capacity() * sizeof(std::int32_t) +
                    covered_journal_.capacity() * sizeof(std::int32_t) +
                    occupied_ * sizeof(std::int32_t);
    if constexpr (kPooled) n += pool_.memory_bytes();
    return n;
  }

  const Options& options() const { return opts_; }

  /// The payload pool behind a pooled store (inert for unpooled traits).
  const store::ZonePool& zone_pool() const { return pool_; }

  /// Rebuilds a store from snapshot data (src/ckpt): the states in their
  /// original insertion order plus the covered/tombstone bits. The hash
  /// table is re-derived rather than persisted — chain membership and order
  /// depend only on (key hash, insertion order), and the rehash trajectory
  /// only on the sequence of distinct key hashes, so the rebuilt store is
  /// structurally identical to the one that was snapshotted and every
  /// subsequent intern() behaves bit-identically to the uninterrupted run.
  /// Pooled stores re-intern every payload into a fresh pool here; the pool
  /// layout is a pure function of the intern sequence, so it too matches the
  /// pool the snapshotted store would have carried.
  static StateStore restore(Options opts, std::vector<S> states,
                            std::vector<std::uint8_t> covered) {
    assert(states.size() == covered.size());
    StateStore store(opts);
    const std::size_t n = states.size();
    store.states_.reserve(n);
    store.hashes_.reserve(n);
    store.next_.reserve(n);
    store.covered_.reserve(n);
    store.chain_len_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t h = store.key_hash(states[i]);
      store.push_state(std::move(states[i]), h);
      if (covered[i] != 0) {
        store.covered_[i] = 1;
        ++store.covered_count_;
        store.covered_journal_.push_back(static_cast<std::int32_t>(i));
      }
      const std::size_t slot = store.probe_slot(h);
      std::int32_t tail = kEmpty;
      for (std::int32_t id = store.slots_[slot]; id != kEmpty;
           id = store.next_[toIdx(id)]) {
        tail = id;
      }
      store.link_state(static_cast<std::int32_t>(i), slot, tail);
    }
    return store;
  }

  StoreMetrics metrics() const {
    StoreMetrics m;
    m.stored = states_.size();
    m.covered = covered_count_;
    m.slots = slots_.size();
    m.occupied = occupied_;
    m.max_chain = max_chain_;
    m.memory_bytes = memory_bytes();
    if constexpr (kPooled) m.pool = pool_.metrics();
    return m;
  }

  /// Brute-force recomputation of the longest same-hash chain, walking every
  /// chain from its head. metrics() reports the incrementally-maintained
  /// value instead; this exists so tests can pin the two against each other.
  std::size_t scan_max_chain() const {
    std::size_t max_chain = 0;
    for (std::int32_t head : slots_) {
      if (head == kEmpty) continue;
      std::size_t chain = 0;
      for (std::int32_t id = head; id != kEmpty; id = next_[toIdx(id)]) ++chain;
      if (chain > max_chain) max_chain = chain;
    }
    return max_chain;
  }

 private:
  static constexpr std::int32_t kEmpty = -1;
  static constexpr std::size_t kInitialSlots = 1u << 10;

  static std::size_t toIdx(std::int32_t id) {
    return static_cast<std::size_t>(id);
  }

  static store::PoolConfig make_pool_config(const Options& o) {
    if constexpr (kPooled) {
      return o.pool ? *o.pool : store::pool_config_from_env();
    }
    return {};
  }

  /// Bytes one interned record adds to the store: the in-place object, its
  /// traits-reported heap payload (unpooled only — pooled payload is owned
  /// and counted by the pool), and the per-state bookkeeping columns
  /// (hashes_, next_, covered_, chain_len_).
  static std::size_t stored_bytes(const Stored& st) {
    std::size_t n = sizeof(Stored) + sizeof(std::size_t) +
                    sizeof(std::int32_t) + sizeof(std::uint8_t) +
                    sizeof(std::uint32_t);
    if constexpr (requires { { Traits::memory_bytes(st) } -> std::convertible_to<std::size_t>; }) {
      n += Traits::memory_bytes(st);
    }
    return n;
  }

  std::size_t key_hash(const S& s) const {
    if constexpr (Traits::kSupportsInclusion) {
      if (opts_.inclusion) return Traits::partition_hash(s);
    }
    return Traits::hash(s);
  }

  // Comparison dispatch: pooled traits compare their stored record against
  // the incoming state through the pool (zone views, no materialization);
  // unpooled traits compare states directly.
  bool stored_equal(const Stored& st, const S& s) const {
    if constexpr (kPooled) {
      return Traits::equal(pool_, st, s);
    } else {
      return Traits::equal(st, s);
    }
  }
  bool stored_same_partition(const Stored& st, const S& s) const {
    if constexpr (kPooled) {
      return Traits::same_partition(pool_, st, s);
    } else {
      return Traits::same_partition(st, s);
    }
  }
  Subsumes stored_compare(const Stored& st, const S& s) const {
    if constexpr (kPooled) {
      return Traits::compare(pool_, st, s);
    } else {
      return Traits::compare(st, s);
    }
  }

  /// Appends the state record and its bookkeeping columns (not yet linked
  /// into any chain).
  void push_state(S&& s, std::size_t h) {
    if constexpr (kPooled) {
      states_.push_back(Traits::pool(pool_, s));
    } else {
      states_.push_back(std::move(s));
    }
    bytes_ += stored_bytes(states_.back());
    hashes_.push_back(h);
    next_.push_back(kEmpty);
    covered_.push_back(0);
    chain_len_.push_back(0);
  }

  /// Links a freshly pushed state into its chain: appended after `tail`, or
  /// installed as the head of a new chain. Chain lengths are maintained at
  /// the head's index — chains only ever grow and heads never change, so
  /// max_chain_ is a cheap monotone maximum.
  void link_state(std::int32_t id, std::size_t slot, std::int32_t tail) {
    if (tail != kEmpty) {
      next_[toIdx(tail)] = id;
      const std::uint32_t len = ++chain_len_[toIdx(slots_[slot])];
      if (len > max_chain_) max_chain_ = len;
    } else {
      chain_len_[toIdx(id)] = 1;
      if (max_chain_ == 0) max_chain_ = 1;
      slots_[slot] = id;
      ++occupied_;
      if (occupied_ * 2 >= slots_.size()) rehash(slots_.size() * 2);
    }
  }

  /// Linear probing; returns the slot holding the chain for `h`, or the
  /// first empty slot of its probe sequence.
  std::size_t probe_slot(std::size_t h) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = h & mask;
    while (slots_[i] != kEmpty && hashes_[toIdx(slots_[i])] != h) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void rehash(std::size_t new_slots) {
    std::vector<std::int32_t> heads;
    heads.reserve(occupied_);
    for (std::int32_t head : slots_) {
      if (head != kEmpty) heads.push_back(head);
    }
    slots_.assign(new_slots, kEmpty);
    const std::size_t mask = slots_.size() - 1;
    for (std::int32_t head : heads) {
      std::size_t i = hashes_[toIdx(head)] & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = head;
    }
  }

  Options opts_;
  store::ZonePool pool_;  ///< payload pool; inert when !kPooled
  std::vector<Stored> states_;
  std::vector<std::size_t> hashes_;   ///< key hash per state
  std::vector<std::int32_t> next_;    ///< same-hash chain links
  std::vector<std::uint8_t> covered_;
  std::vector<std::int32_t> covered_journal_;  ///< tombstones in flip order
  std::vector<std::uint32_t> chain_len_;  ///< chain length, kept at head ids
  std::vector<std::int32_t> slots_;   ///< open-addressed table of chain heads
  std::size_t occupied_ = 0;
  std::size_t covered_count_ = 0;
  std::size_t max_chain_ = 0;  ///< longest chain ever (chains never shrink)
  std::size_t bytes_ = 0;  ///< accumulated per-state bytes (see stored_bytes)
};

}  // namespace quanta::core
