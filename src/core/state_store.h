// StateStore<S>: the interning substrate shared by all exploration engines.
//
// States are stored once, in insertion order, and addressed by dense int32
// ids — engines attach per-state payload (parents, successor lists, costs)
// as parallel vectors indexed by id. Lookup goes through an open-addressed
// hash table whose slots point at chains of states with equal key hash.
//
// Two dedup policies, selected per store at construction:
//   * exact      — full-state hash/equality (liveness zone graph, digital
//                  engines, BIP, ECDAR pairs);
//   * inclusion  — states are bucketed by their discrete partition and the
//                  continuous parts are compared by set inclusion: an
//                  incoming state covered by a stored one is dropped, and
//                  (optionally) a stored state strictly covered by the
//                  incoming one is tombstoned ("covered") so the search can
//                  skip it. This is UPPAAL-style zone-inclusion subsumption,
//                  available to every engine whose StateTraits support it.
#pragma once

#include <cassert>
#include <concepts>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "core/traits.h"

namespace quanta::core {

/// Occupancy snapshot of a store, for instrumentation (ExplorationObserver).
struct StoreMetrics {
  std::size_t stored = 0;     ///< interned states, including covered ones
  std::size_t covered = 0;    ///< tombstoned (subsumed) states
  std::size_t slots = 0;      ///< hash-table capacity
  std::size_t occupied = 0;   ///< slots in use (= distinct key hashes)
  std::size_t max_chain = 0;  ///< longest same-hash chain

  double load_factor() const {
    return slots == 0 ? 0.0
                      : static_cast<double>(occupied) / static_cast<double>(slots);
  }
};

template <typename S, typename Traits = StateTraits<S>>
class StateStore {
 public:
  struct Options {
    /// Dedup by partition + inclusion instead of full-state equality.
    /// Requires Traits::kSupportsInclusion.
    bool inclusion = false;
    /// With inclusion: tombstone stored states strictly covered by a new
    /// one. Turning this off (ablation A1) keeps dominated states live.
    bool tombstone_covered = true;
  };

  struct Interned {
    std::int32_t id;
    bool inserted;  ///< false: deduplicated/subsumed by a stored state
  };

  explicit StateStore(Options opts = {}) : opts_(opts) {
    if constexpr (!Traits::kSupportsInclusion) {
      assert(!opts_.inclusion && "state type has no inclusion support");
    }
    slots_.assign(kInitialSlots, kEmpty);
  }

  /// Interns a state. Returns the id of the representative state: the new
  /// id if inserted, or the id of the stored state that deduplicates /
  /// subsumes `s` otherwise.
  Interned intern(S s) {
    common::FaultInjector::site("core.state_store.intern");
    const std::size_t h = key_hash(s);
    std::size_t slot = probe_slot(h);
    std::int32_t tail = kEmpty;
    if (slots_[slot] != kEmpty) {
      // Walk the chain of states with this key hash, oldest first — the
      // scan order determines which stored zone subsumes first, so keep it
      // deterministic and identical to the historical per-engine buckets.
      for (std::int32_t id = slots_[slot]; id != kEmpty; id = next_[toIdx(id)]) {
        tail = id;
        if (opts_.inclusion) {
          if constexpr (Traits::kSupportsInclusion) {
            if (covered_[toIdx(id)] ||
                !Traits::same_partition(states_[toIdx(id)], s)) {
              continue;
            }
            switch (Traits::compare(states_[toIdx(id)], s)) {
              case Subsumes::kStored:
                return {id, false};
              case Subsumes::kIncoming:
                if (opts_.tombstone_covered) {
                  covered_[toIdx(id)] = 1;
                  ++covered_count_;
                  covered_journal_.push_back(id);
                }
                break;
              case Subsumes::kNone:
                break;
            }
          }
        } else {
          if (Traits::equal(states_[toIdx(id)], s)) return {id, false};
        }
      }
    }
    const std::int32_t id = static_cast<std::int32_t>(states_.size());
    bytes_ += state_bytes(s);
    states_.push_back(std::move(s));
    hashes_.push_back(h);
    next_.push_back(kEmpty);
    covered_.push_back(0);
    if (tail != kEmpty) {
      next_[toIdx(tail)] = id;
    } else {
      slots_[slot] = id;
      ++occupied_;
      if (occupied_ * 2 >= slots_.size()) rehash(slots_.size() * 2);
    }
    return {id, true};
  }

  const S& state(std::int32_t id) const { return states_[toIdx(id)]; }
  bool covered(std::int32_t id) const { return covered_[toIdx(id)] != 0; }

  /// Ids tombstoned so far, in the order their covered bit flipped. States
  /// are append-only and covered bits only ever flip 0 -> 1, so (appended
  /// states, journal suffix) is a complete diff between two points in time —
  /// the basis of incremental delta snapshots (src/ckpt/delta.h). A restored
  /// store lists its already-covered ids in index order; only the suffix
  /// beyond a remembered position is ever re-serialized.
  const std::vector<std::int32_t>& covered_journal() const {
    return covered_journal_;
  }

  /// Number of interned states (covered tombstones included).
  std::size_t size() const { return states_.size(); }

  /// Approximate bytes held by the store: per-state payload (including the
  /// heap behind each state when the traits provide memory_bytes) plus the
  /// interning bookkeeping and the hash table. Feeds the memory ceiling of
  /// common::Budget; maintained incrementally so reading it is free.
  std::size_t memory_bytes() const {
    return bytes_ + slots_.size() * sizeof(std::int32_t);
  }

  const Options& options() const { return opts_; }

  /// Rebuilds a store from snapshot data (src/ckpt): the states in their
  /// original insertion order plus the covered/tombstone bits. The hash
  /// table is re-derived rather than persisted — chain membership and order
  /// depend only on (key hash, insertion order), and the rehash trajectory
  /// only on the sequence of distinct key hashes, so the rebuilt store is
  /// structurally identical to the one that was snapshotted and every
  /// subsequent intern() behaves bit-identically to the uninterrupted run.
  static StateStore restore(Options opts, std::vector<S> states,
                            std::vector<std::uint8_t> covered) {
    assert(states.size() == covered.size());
    StateStore store(opts);
    store.states_ = std::move(states);
    store.covered_ = std::move(covered);
    const std::size_t n = store.states_.size();
    store.hashes_.reserve(n);
    store.next_.assign(n, kEmpty);
    for (std::size_t i = 0; i < n; ++i) {
      const S& s = store.states_[i];
      store.bytes_ += state_bytes(s);
      if (store.covered_[i] != 0) {
        ++store.covered_count_;
        store.covered_journal_.push_back(static_cast<std::int32_t>(i));
      }
      const std::size_t h = store.key_hash(s);
      store.hashes_.push_back(h);
      const std::size_t slot = store.probe_slot(h);
      const std::int32_t id = static_cast<std::int32_t>(i);
      if (store.slots_[slot] == kEmpty) {
        store.slots_[slot] = id;
        ++store.occupied_;
        if (store.occupied_ * 2 >= store.slots_.size()) {
          store.rehash(store.slots_.size() * 2);
        }
      } else {
        std::int32_t tail = store.slots_[slot];
        while (store.next_[toIdx(tail)] != kEmpty) {
          tail = store.next_[toIdx(tail)];
        }
        store.next_[toIdx(tail)] = id;
      }
    }
    return store;
  }

  StoreMetrics metrics() const {
    StoreMetrics m;
    m.stored = states_.size();
    m.covered = covered_count_;
    m.slots = slots_.size();
    m.occupied = occupied_;
    for (std::int32_t head : slots_) {
      if (head == kEmpty) continue;
      std::size_t chain = 0;
      for (std::int32_t id = head; id != kEmpty; id = next_[toIdx(id)]) ++chain;
      if (chain > m.max_chain) m.max_chain = chain;
    }
    return m;
  }

 private:
  static constexpr std::int32_t kEmpty = -1;
  static constexpr std::size_t kInitialSlots = 1u << 10;

  static std::size_t toIdx(std::int32_t id) {
    return static_cast<std::size_t>(id);
  }

  /// Bytes one interned state adds to the store: the in-place object, its
  /// traits-reported heap payload, and the per-state bookkeeping columns.
  static std::size_t state_bytes(const S& s) {
    std::size_t n = sizeof(S) + sizeof(std::size_t) + sizeof(std::int32_t) +
                    sizeof(std::uint8_t);
    if constexpr (requires { { Traits::memory_bytes(s) } -> std::convertible_to<std::size_t>; }) {
      n += Traits::memory_bytes(s);
    }
    return n;
  }

  std::size_t key_hash(const S& s) const {
    if constexpr (Traits::kSupportsInclusion) {
      if (opts_.inclusion) return Traits::partition_hash(s);
    }
    return Traits::hash(s);
  }

  /// Linear probing; returns the slot holding the chain for `h`, or the
  /// first empty slot of its probe sequence.
  std::size_t probe_slot(std::size_t h) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = h & mask;
    while (slots_[i] != kEmpty && hashes_[toIdx(slots_[i])] != h) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void rehash(std::size_t new_slots) {
    std::vector<std::int32_t> heads;
    heads.reserve(occupied_);
    for (std::int32_t head : slots_) {
      if (head != kEmpty) heads.push_back(head);
    }
    slots_.assign(new_slots, kEmpty);
    const std::size_t mask = slots_.size() - 1;
    for (std::int32_t head : heads) {
      std::size_t i = hashes_[toIdx(head)] & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = head;
    }
  }

  Options opts_;
  std::vector<S> states_;
  std::vector<std::size_t> hashes_;   ///< key hash per state
  std::vector<std::int32_t> next_;    ///< same-hash chain links
  std::vector<std::uint8_t> covered_;
  std::vector<std::int32_t> covered_journal_;  ///< tombstones in flip order
  std::vector<std::int32_t> slots_;   ///< open-addressed table of chain heads
  std::size_t occupied_ = 0;
  std::size_t covered_count_ = 0;
  std::size_t bytes_ = 0;  ///< accumulated per-state bytes (see state_bytes)
};

}  // namespace quanta::core
