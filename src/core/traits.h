// StateTraits<S>: the hashing/equality/subsumption policy that plugs a state
// type into core::StateStore. Each state-carrying layer specializes the
// template next to its state type (ta/traits.h, bip/traits.h, ...), so the
// core stays independent of every concrete semantics.
#pragma once

#include <cstddef>

namespace quanta::core {

/// Outcome of comparing an incoming state against a stored one in a store
/// that supports inclusion subsumption (zone-based engines).
enum class Subsumes {
  kNone,      ///< incomparable: both states must be kept
  kStored,    ///< the stored state covers the incoming one (drop incoming)
  kIncoming,  ///< the incoming state strictly covers the stored one
};

/// Primary template; never defined. Specializations must provide:
///
///   static constexpr bool kSupportsInclusion;
///   static std::size_t hash(const S&);            // full-state hash
///   static bool equal(const S&, const S&);        // full-state equality
///
/// and, when kSupportsInclusion is true (zone-semantics states):
///
///   static std::size_t partition_hash(const S&);  // discrete part only
///   static bool same_partition(const S&, const S&);
///   static Subsumes compare(const S& stored, const S& incoming);
///
/// `compare` is only called on states of the same partition and decides the
/// set-inclusion relation of their continuous parts (zones).
template <typename S>
struct StateTraits;

}  // namespace quanta::core
