// StateTraits<S>: the hashing/equality/subsumption policy that plugs a state
// type into core::StateStore. Each state-carrying layer specializes the
// template next to its state type (ta/traits.h, bip/traits.h, ...), so the
// core stays independent of every concrete semantics.
#pragma once

#include <cstddef>

namespace quanta::core {

/// Outcome of comparing an incoming state against a stored one in a store
/// that supports inclusion subsumption (zone-based engines).
enum class Subsumes {
  kNone,      ///< incomparable: both states must be kept
  kStored,    ///< the stored state covers the incoming one (drop incoming)
  kIncoming,  ///< the incoming state strictly covers the stored one
};

/// Primary template; never defined. Specializations must provide:
///
///   static constexpr bool kSupportsInclusion;
///   static std::size_t hash(const S&);            // full-state hash
///   static bool equal(const S&, const S&);        // full-state equality
///
/// and, when kSupportsInclusion is true (zone-semantics states):
///
///   static std::size_t partition_hash(const S&);  // discrete part only
///   static bool same_partition(const S&, const S&);
///   static Subsumes compare(const S& stored, const S& incoming);
///
/// `compare` is only called on states of the same partition and decides the
/// set-inclusion relation of their continuous parts (zones).
///
/// Pooled payload storage (optional). A specialization may additionally opt
/// its state type into interned storage (store::ZonePool) by defining
///
///   using Pooled = ...;   // compact value of store::Ref handles
///   static Pooled pool(store::ZonePool&, const S&);     // intern components
///   static S unpool(const store::ZonePool&, const Pooled&);  // materialize
///   static bool equal(const store::ZonePool&,
///                     const Pooled& stored, const S& incoming);
///
/// and, when kSupportsInclusion is true, the pooled comparison overloads
///
///   static bool same_partition(const store::ZonePool&,
///                              const Pooled& stored, const S& incoming);
///   static Subsumes compare(const store::ZonePool&,
///                           const Pooled& stored, const S& incoming);
///
/// StateStore then keeps `Pooled` records instead of whole states: identical
/// zones / discrete vectors across states collapse to one interned copy, and
/// state(id) materializes an S on demand via unpool. The contract that keeps
/// exploration bit-identical to unpooled storage: hash/partition_hash are
/// still computed on the incoming S (so hash values, chain membership, chain
/// order and the rehash trajectory are unchanged), and the pooled comparison
/// overloads must decide exactly like their unpooled counterparts would on
/// the materialized state. unpool(pool(s)) must reproduce s exactly.
template <typename S>
struct StateTraits;

/// Detects traits that opt into pooled payload storage.
template <typename Traits>
concept PooledTraits = requires { typename Traits::Pooled; };

}  // namespace quanta::core
