#include "mdp/value_iteration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ckpt/io.h"
#include "common/error.h"
#include "common/fault.h"

namespace quanta::mdp {

namespace {

/// Section of a Provider::kValueIteration checkpoint: the sweep index plus
/// the full value vector (IEEE-754 bit patterns, so resume is bit-exact).
constexpr std::uint32_t kSecViState = 1;

std::uint64_t vi_fingerprint(const Mdp& m, const StateSet& goal, Objective obj,
                             const ViOptions& opts) {
  ckpt::Fingerprint fp;
  fp.mix(0x56495F00u).mix(m.fingerprint());
  fp.mix(goal.size());
  // Pack the goal set; the fingerprint must not depend on vector<bool>
  // internals, so mix one bit at a time through a 64-bit shift register.
  std::uint64_t word = 0;
  std::size_t bits = 0;
  for (bool b : goal) {
    word = (word << 1) | (b ? 1u : 0u);
    if (++bits == 64) {
      fp.mix(word);
      word = 0;
      bits = 0;
    }
  }
  if (bits > 0) fp.mix(word);
  // The goal StateSet is mixed bit-for-bit above — unlike an opaque
  // predicate it pins the query down completely, so no extra tag is needed.
  fp.mix(static_cast<std::uint64_t>(obj))
      .mix_f64(opts.epsilon)
      .mix(opts.use_precomputation ? 1u : 0u);
  return fp.digest();
}

bool restore_vi(const ckpt::Snapshot& snap, std::size_t num_states,
                std::int64_t* iterations, std::vector<double>* values) {
  const ckpt::Section* sec = snap.find(kSecViState);
  if (sec == nullptr) return false;
  ckpt::io::Reader r(sec->payload);
  const std::int64_t it = r.i64();
  const std::uint64_t n = r.u64();
  if (!r.ok() || it < 0 || n != num_states || !r.fits(n, 8)) return false;
  std::vector<double> v(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v[i] = r.f64();
  if (!r.ok()) return false;
  *iterations = it;
  *values = std::move(v);
  return true;
}

double choice_value(const Mdp& m, std::int64_t c, const std::vector<double>& v) {
  double sum = 0.0;
  for (const Branch& b : m.branches_of(c)) {
    sum += b.prob * v[static_cast<std::size_t>(b.target)];
  }
  return sum;
}

void validate_vi_args(const char* subsystem, double epsilon,
                      std::int64_t max_iterations) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    throw std::invalid_argument(quanta::context(
        subsystem, "epsilon must be a positive finite number, got ", epsilon));
  }
  if (max_iterations <= 0) {
    throw std::invalid_argument(quanta::context(
        subsystem, "max_iterations must be positive, got ", max_iterations));
  }
}

void check_goal_size(const char* subsystem, const Mdp& m,
                     const StateSet& goal) {
  if (static_cast<std::int32_t>(goal.size()) != m.num_states()) {
    throw std::invalid_argument(
        quanta::context(subsystem, "goal set has ", goal.size(),
                        " entries but the MDP has ", m.num_states(),
                        " states (build the set with states_where / resize "
                        "to num_states)"));
  }
}

}  // namespace

void ViOptions::validate(const char* subsystem) const {
  validate_vi_args(subsystem, epsilon, max_iterations);
}

ViResult reachability_probability(const Mdp& m, const StateSet& goal,
                                  Objective obj, const ViOptions& opts) {
  opts.validate("mdp.reachability_probability");
  if (!m.frozen()) {
    throw std::logic_error(quanta::context(
        "mdp.reachability_probability",
        "value iteration requires a frozen MDP (call Mdp::freeze() first)"));
  }
  check_goal_size("mdp.reachability_probability", m, goal);
  const std::int32_t n = m.num_states();

  StateSet zero(static_cast<std::size_t>(n), false);
  StateSet one = goal;
  if (opts.use_precomputation) {
    zero = (obj == Objective::kMax) ? prob0_max(m, goal) : prob0_min(m, goal);
    one = (obj == Objective::kMax) ? prob1_max(m, goal) : prob1_min(m, goal);
  }

  ViResult result;
  result.values.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<bool> fixed(static_cast<std::size_t>(n), false);
  for (std::int32_t s = 0; s < n; ++s) {
    if (one[static_cast<std::size_t>(s)]) {
      result.values[static_cast<std::size_t>(s)] = 1.0;
      fixed[static_cast<std::size_t>(s)] = true;
    } else if (goal[static_cast<std::size_t>(s)]) {
      result.values[static_cast<std::size_t>(s)] = 1.0;
      fixed[static_cast<std::size_t>(s)] = true;
    } else if (zero[static_cast<std::size_t>(s)]) {
      fixed[static_cast<std::size_t>(s)] = true;
    }
  }

  auto& v = result.values;

  const bool snapshotting = opts.checkpoint.enabled();
  std::uint64_t fp = 0;
  if (snapshotting) {
    fp = vi_fingerprint(m, goal, obj, opts);
    result.resume.path = opts.checkpoint.path;
    if (opts.checkpoint.resume) {
      ckpt::Snapshot snap;
      result.resume.load = ckpt::load(opts.checkpoint.path, fp,
                                      ckpt::Provider::kValueIteration, &snap);
      if (result.resume.load == ckpt::LoadStatus::kOk) {
        std::int64_t it = 0;
        std::vector<double> loaded;
        if (restore_vi(snap, static_cast<std::size_t>(n), &it, &loaded)) {
          result.iterations = it;
          v = std::move(loaded);
          result.resume.resumed = true;
        } else {
          // Well-formed file, wrong shape for this MDP: treat as corrupt and
          // fall through to a fresh start.
          result.resume.load = ckpt::LoadStatus::kCorrupt;
        }
      }
    }
  }
  auto save_ckpt = [&](std::int64_t completed_sweeps) {
    ckpt::Snapshot snap;
    snap.provider = ckpt::Provider::kValueIteration;
    snap.fingerprint = fp;
    ckpt::io::Writer w;
    w.i64(completed_sweeps);
    w.u64(v.size());
    for (double d : v) w.f64(d);
    snap.add_section(kSecViState, std::move(w));
    if (ckpt::save(opts.checkpoint.path, snap)) result.resume.saved = true;
  };

  const bool governed_run = opts.budget.active();
  std::size_t sweeps_until_save =
      (snapshotting && opts.checkpoint.interval > 0) ? opts.checkpoint.interval
                                                     : 0;
  for (; result.iterations < opts.max_iterations; ++result.iterations) {
    common::FaultInjector::site("mdp.value_iteration.sweep");
    if (governed_run) {
      const common::StopReason r = opts.budget.poll(0);
      if (r != common::StopReason::kCompleted) {
        result.stop = r;
        if (snapshotting && opts.checkpoint.save_on_stop) {
          save_ckpt(result.iterations);
        }
        break;
      }
    }
    double max_diff = 0.0;
    for (std::int32_t s = 0; s < n; ++s) {
      if (fixed[static_cast<std::size_t>(s)]) continue;
      double best = (obj == Objective::kMax) ? 0.0 : 1.0;
      for (std::int64_t c = m.choice_begin(s); c < m.choice_end(s); ++c) {
        double val = choice_value(m, c, v);
        best = (obj == Objective::kMax) ? std::max(best, val)
                                        : std::min(best, val);
      }
      max_diff = std::max(max_diff, std::fabs(best - v[static_cast<std::size_t>(s)]));
      v[static_cast<std::size_t>(s)] = best;
    }
    if (max_diff < opts.epsilon) {
      result.converged = true;
      ++result.iterations;
      break;
    }
    if (sweeps_until_save != 0 && --sweeps_until_save == 0) {
      sweeps_until_save = opts.checkpoint.interval;
      // The loop counter is bumped by the for-statement, so this sweep is not
      // yet reflected in result.iterations.
      save_ckpt(result.iterations + 1);
    }
  }
  if (result.converged) {
    result.verdict = common::Verdict::kHolds;
  } else if (result.stop == common::StopReason::kCompleted) {
    // Ran out of the iteration bound — a count limit, like kStateLimit.
    result.stop = common::StopReason::kStateLimit;
    if (snapshotting && opts.checkpoint.save_on_stop) {
      save_ckpt(result.iterations);
    }
  }
  return result;
}

IntervalResult interval_iteration(const Mdp& m, const StateSet& goal,
                                  Objective obj, double epsilon,
                                  std::int64_t max_iterations) {
  validate_vi_args("mdp.interval_iteration", epsilon, max_iterations);
  if (!m.frozen()) {
    throw std::logic_error(quanta::context(
        "mdp.interval_iteration",
        "interval iteration requires a frozen MDP (call Mdp::freeze() first)"));
  }
  check_goal_size("mdp.interval_iteration", m, goal);
  const std::int32_t n = m.num_states();
  StateSet zero = (obj == Objective::kMax) ? prob0_max(m, goal) : prob0_min(m, goal);
  StateSet one = (obj == Objective::kMax) ? prob1_max(m, goal) : prob1_min(m, goal);

  IntervalResult result;
  result.lower.assign(static_cast<std::size_t>(n), 0.0);
  result.upper.assign(static_cast<std::size_t>(n), 1.0);
  std::vector<bool> fixed(static_cast<std::size_t>(n), false);
  for (std::int32_t s = 0; s < n; ++s) {
    if (one[static_cast<std::size_t>(s)] || goal[static_cast<std::size_t>(s)]) {
      result.lower[static_cast<std::size_t>(s)] = 1.0;
      result.upper[static_cast<std::size_t>(s)] = 1.0;
      fixed[static_cast<std::size_t>(s)] = true;
    } else if (zero[static_cast<std::size_t>(s)]) {
      result.upper[static_cast<std::size_t>(s)] = 0.0;
      fixed[static_cast<std::size_t>(s)] = true;
    }
  }

  auto bellman = [&](std::vector<double>& v, std::int32_t s) {
    double best = (obj == Objective::kMax) ? 0.0 : 1.0;
    for (std::int64_t c = m.choice_begin(s); c < m.choice_end(s); ++c) {
      double val = choice_value(m, c, v);
      best = (obj == Objective::kMax) ? std::max(best, val) : std::min(best, val);
    }
    return best;
  };

  for (; result.iterations < max_iterations; ++result.iterations) {
    double gap = 0.0;
    for (std::int32_t s = 0; s < n; ++s) {
      if (fixed[static_cast<std::size_t>(s)]) continue;
      // Monotone iterates: the lower sequence only grows, the upper only
      // shrinks, so [lower, upper] always brackets the true probability.
      double lo = std::max(result.lower[static_cast<std::size_t>(s)],
                           bellman(result.lower, s));
      double hi = std::min(result.upper[static_cast<std::size_t>(s)],
                           bellman(result.upper, s));
      result.lower[static_cast<std::size_t>(s)] = lo;
      result.upper[static_cast<std::size_t>(s)] = hi;
      gap = std::max(gap, hi - lo);
    }
    if (gap < epsilon) {
      result.converged = true;
      ++result.iterations;
      break;
    }
  }
  // Note: on MDPs with end components inside the "maybe" region the upper
  // iterate can stall (the classic interval-iteration caveat); convergence
  // is reported honestly via `converged`.
  if (result.converged) {
    result.verdict = common::Verdict::kHolds;
  } else {
    result.stop = common::StopReason::kStateLimit;
  }
  return result;
}

ViResult bounded_reachability(const Mdp& m, const StateSet& goal,
                              std::int64_t steps, Objective obj) {
  if (steps < 0) {
    throw std::invalid_argument(quanta::context(
        "mdp.bounded_reachability", "steps must be non-negative, got ", steps));
  }
  if (!m.frozen()) {
    throw std::logic_error(quanta::context(
        "mdp.bounded_reachability",
        "value iteration requires a frozen MDP (call Mdp::freeze() first)"));
  }
  check_goal_size("mdp.bounded_reachability", m, goal);
  const std::int32_t n = m.num_states();
  ViResult result;
  result.values.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  for (std::int32_t s = 0; s < n; ++s) {
    if (goal[static_cast<std::size_t>(s)]) result.values[static_cast<std::size_t>(s)] = 1.0;
  }
  for (std::int64_t k = 0; k < steps; ++k) {
    for (std::int32_t s = 0; s < n; ++s) {
      if (goal[static_cast<std::size_t>(s)]) {
        next[static_cast<std::size_t>(s)] = 1.0;
        continue;
      }
      double best = (obj == Objective::kMax) ? 0.0 : 1.0;
      for (std::int64_t c = m.choice_begin(s); c < m.choice_end(s); ++c) {
        double val = choice_value(m, c, result.values);
        best = (obj == Objective::kMax) ? std::max(best, val)
                                        : std::min(best, val);
      }
      next[static_cast<std::size_t>(s)] = best;
    }
    std::swap(result.values, next);
    ++result.iterations;
  }
  result.converged = true;
  result.verdict = common::Verdict::kHolds;
  return result;
}

}  // namespace quanta::mdp
