#include "mdp/value_iteration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace quanta::mdp {

namespace {

double choice_value(const Mdp& m, std::int64_t c, const std::vector<double>& v) {
  double sum = 0.0;
  for (const Branch& b : m.branches_of(c)) {
    sum += b.prob * v[static_cast<std::size_t>(b.target)];
  }
  return sum;
}

}  // namespace

ViResult reachability_probability(const Mdp& m, const StateSet& goal,
                                  Objective obj, const ViOptions& opts) {
  if (!m.frozen()) throw std::logic_error("value iteration requires frozen MDP");
  const std::int32_t n = m.num_states();
  if (static_cast<std::int32_t>(goal.size()) != n) {
    throw std::invalid_argument("goal set size mismatch");
  }

  StateSet zero(static_cast<std::size_t>(n), false);
  StateSet one = goal;
  if (opts.use_precomputation) {
    zero = (obj == Objective::kMax) ? prob0_max(m, goal) : prob0_min(m, goal);
    one = (obj == Objective::kMax) ? prob1_max(m, goal) : prob1_min(m, goal);
  }

  ViResult result;
  result.values.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<bool> fixed(static_cast<std::size_t>(n), false);
  for (std::int32_t s = 0; s < n; ++s) {
    if (one[static_cast<std::size_t>(s)]) {
      result.values[static_cast<std::size_t>(s)] = 1.0;
      fixed[static_cast<std::size_t>(s)] = true;
    } else if (goal[static_cast<std::size_t>(s)]) {
      result.values[static_cast<std::size_t>(s)] = 1.0;
      fixed[static_cast<std::size_t>(s)] = true;
    } else if (zero[static_cast<std::size_t>(s)]) {
      fixed[static_cast<std::size_t>(s)] = true;
    }
  }

  auto& v = result.values;
  for (; result.iterations < opts.max_iterations; ++result.iterations) {
    double max_diff = 0.0;
    for (std::int32_t s = 0; s < n; ++s) {
      if (fixed[static_cast<std::size_t>(s)]) continue;
      double best = (obj == Objective::kMax) ? 0.0 : 1.0;
      for (std::int64_t c = m.choice_begin(s); c < m.choice_end(s); ++c) {
        double val = choice_value(m, c, v);
        best = (obj == Objective::kMax) ? std::max(best, val)
                                        : std::min(best, val);
      }
      max_diff = std::max(max_diff, std::fabs(best - v[static_cast<std::size_t>(s)]));
      v[static_cast<std::size_t>(s)] = best;
    }
    if (max_diff < opts.epsilon) {
      result.converged = true;
      ++result.iterations;
      break;
    }
  }
  return result;
}

IntervalResult interval_iteration(const Mdp& m, const StateSet& goal,
                                  Objective obj, double epsilon,
                                  std::int64_t max_iterations) {
  if (!m.frozen()) throw std::logic_error("interval iteration requires frozen MDP");
  const std::int32_t n = m.num_states();
  StateSet zero = (obj == Objective::kMax) ? prob0_max(m, goal) : prob0_min(m, goal);
  StateSet one = (obj == Objective::kMax) ? prob1_max(m, goal) : prob1_min(m, goal);

  IntervalResult result;
  result.lower.assign(static_cast<std::size_t>(n), 0.0);
  result.upper.assign(static_cast<std::size_t>(n), 1.0);
  std::vector<bool> fixed(static_cast<std::size_t>(n), false);
  for (std::int32_t s = 0; s < n; ++s) {
    if (one[static_cast<std::size_t>(s)] || goal[static_cast<std::size_t>(s)]) {
      result.lower[static_cast<std::size_t>(s)] = 1.0;
      result.upper[static_cast<std::size_t>(s)] = 1.0;
      fixed[static_cast<std::size_t>(s)] = true;
    } else if (zero[static_cast<std::size_t>(s)]) {
      result.upper[static_cast<std::size_t>(s)] = 0.0;
      fixed[static_cast<std::size_t>(s)] = true;
    }
  }

  auto bellman = [&](std::vector<double>& v, std::int32_t s) {
    double best = (obj == Objective::kMax) ? 0.0 : 1.0;
    for (std::int64_t c = m.choice_begin(s); c < m.choice_end(s); ++c) {
      double val = choice_value(m, c, v);
      best = (obj == Objective::kMax) ? std::max(best, val) : std::min(best, val);
    }
    return best;
  };

  for (; result.iterations < max_iterations; ++result.iterations) {
    double gap = 0.0;
    for (std::int32_t s = 0; s < n; ++s) {
      if (fixed[static_cast<std::size_t>(s)]) continue;
      // Monotone iterates: the lower sequence only grows, the upper only
      // shrinks, so [lower, upper] always brackets the true probability.
      double lo = std::max(result.lower[static_cast<std::size_t>(s)],
                           bellman(result.lower, s));
      double hi = std::min(result.upper[static_cast<std::size_t>(s)],
                           bellman(result.upper, s));
      result.lower[static_cast<std::size_t>(s)] = lo;
      result.upper[static_cast<std::size_t>(s)] = hi;
      gap = std::max(gap, hi - lo);
    }
    if (gap < epsilon) {
      result.converged = true;
      ++result.iterations;
      break;
    }
  }
  // Note: on MDPs with end components inside the "maybe" region the upper
  // iterate can stall (the classic interval-iteration caveat); convergence
  // is reported honestly via `converged`.
  return result;
}

ViResult bounded_reachability(const Mdp& m, const StateSet& goal,
                              std::int64_t steps, Objective obj) {
  if (!m.frozen()) throw std::logic_error("value iteration requires frozen MDP");
  const std::int32_t n = m.num_states();
  ViResult result;
  result.values.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  for (std::int32_t s = 0; s < n; ++s) {
    if (goal[static_cast<std::size_t>(s)]) result.values[static_cast<std::size_t>(s)] = 1.0;
  }
  for (std::int64_t k = 0; k < steps; ++k) {
    for (std::int32_t s = 0; s < n; ++s) {
      if (goal[static_cast<std::size_t>(s)]) {
        next[static_cast<std::size_t>(s)] = 1.0;
        continue;
      }
      double best = (obj == Objective::kMax) ? 0.0 : 1.0;
      for (std::int64_t c = m.choice_begin(s); c < m.choice_end(s); ++c) {
        double val = choice_value(m, c, result.values);
        best = (obj == Objective::kMax) ? std::max(best, val)
                                        : std::min(best, val);
      }
      next[static_cast<std::size_t>(s)] = best;
    }
    std::swap(result.values, next);
    ++result.iterations;
  }
  result.converged = true;
  return result;
}

}  // namespace quanta::mdp
