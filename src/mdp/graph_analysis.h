// Qualitative (graph-based) precomputations for MDP model checking, in the
// style of PRISM's precomputation engines: the state sets where the
// max/min reachability probability is exactly 0 or 1. These make value
// iteration exact at the boundaries and faster in between.
#pragma once

#include <vector>

#include "mdp/mdp.h"

namespace quanta::mdp {

using StateSet = std::vector<bool>;  ///< indexed by state id

/// States with Pmax(F goal) == 0: goal is graph-unreachable.
StateSet prob0_max(const Mdp& m, const StateSet& goal);

/// States with Pmin(F goal) == 0: some scheduler keeps all probability mass
/// away from goal forever.
StateSet prob0_min(const Mdp& m, const StateSet& goal);

/// States with Pmax(F goal) == 1 (de Alfaro's nested fixpoint).
StateSet prob1_max(const Mdp& m, const StateSet& goal);

/// States with Pmin(F goal) == 1: every scheduler reaches goal a.s.
StateSet prob1_min(const Mdp& m, const StateSet& goal);

}  // namespace quanta::mdp
