// Expected total (action-)reward until reaching a goal set — the stochastic
// shortest path problem. Used for the paper's Emax property (expected time
// until the BRP transfer finishes), with time entering as reward 1 on the
// digital-clock tick action.
#pragma once

#include <limits>

#include "mdp/value_iteration.h"

namespace quanta::mdp {

inline constexpr double kInfiniteReward = std::numeric_limits<double>::infinity();

struct RewardResult {
  std::vector<double> values;  ///< per state; kInfiniteReward where divergent
  std::int64_t iterations = 0;
  bool converged = false;
  common::Verdict verdict = common::Verdict::kUnknown;
  common::StopReason stop = common::StopReason::kCompleted;

  double at_initial(const Mdp& m) const {
    return values[static_cast<std::size_t>(m.initial())];
  }
};

/// E_opt(total reward until F goal). For kMax, states where some scheduler
/// avoids the goal with positive probability get kInfiniteReward (the
/// scheduler can accumulate reward forever); for kMin the same applies to
/// states where no scheduler reaches the goal a.s.
RewardResult expected_reward_to_goal(const Mdp& m, const StateSet& goal,
                                     Objective obj, const ViOptions& opts = {});

}  // namespace quanta::mdp
