// Value iteration for reachability probabilities on MDPs (Gauss-Seidel, with
// PRISM-style qualitative precomputation so that 0/1 states are exact).
#pragma once

#include <cstdint>

#include "ckpt/checkpoint.h"
#include "common/budget.h"
#include "common/verdict.h"
#include "mdp/graph_analysis.h"

namespace quanta::mdp {

enum class Objective { kMax, kMin };

struct ViOptions {
  double epsilon = 1e-10;  ///< max-norm convergence threshold
  std::int64_t max_iterations = 1'000'000;
  bool use_precomputation = true;
  /// Deadline / cancellation for the iteration loop (polled once per sweep).
  common::Budget budget;
  /// Crash-safe checkpoint/resume (src/ckpt): snapshots the value vector
  /// plus the sweep index when a bound stops the iteration (and every
  /// `interval` sweeps), and resumes bit-identically — Gauss-Seidel sweeps
  /// are deterministic, and the 0/1 precomputation is re-derived on resume.
  /// The fingerprint covers the frozen MDP, the goal set, the objective and
  /// epsilon.
  ckpt::Options checkpoint;

  /// Rejects non-positive / non-finite epsilon and a non-positive iteration
  /// bound with std::invalid_argument naming the offending parameter.
  void validate(const char* subsystem) const;
};

struct ViResult {
  std::vector<double> values;  ///< per state
  std::int64_t iterations = 0;
  bool converged = false;
  /// kHolds iff the iteration converged to the requested epsilon; kUnknown
  /// when it ran out of iterations (stop = kStateLimit), hit the budget, or
  /// was aborted — `values` then holds the last (unconverged) iterate.
  common::Verdict verdict = common::Verdict::kUnknown;
  common::StopReason stop = common::StopReason::kCompleted;
  /// Checkpoint/resume outcome of this run (ViOptions::checkpoint).
  ckpt::ResumeInfo resume;

  double at_initial(const Mdp& m) const {
    return values[static_cast<std::size_t>(m.initial())];
  }
};

/// P_opt(F goal) for every state.
ViResult reachability_probability(const Mdp& m, const StateSet& goal,
                                  Objective obj, const ViOptions& opts = {});

/// P_opt(F^{<=steps} goal): probability of reaching goal within a bounded
/// number of MDP steps (used for step-bounded queries and as an ablation).
ViResult bounded_reachability(const Mdp& m, const StateSet& goal,
                              std::int64_t steps, Objective obj);

struct IntervalResult {
  std::vector<double> lower;
  std::vector<double> upper;
  std::int64_t iterations = 0;
  bool converged = false;
  common::Verdict verdict = common::Verdict::kUnknown;
  common::StopReason stop = common::StopReason::kCompleted;

  double width_at_initial(const Mdp& m) const {
    return upper[static_cast<std::size_t>(m.initial())] -
           lower[static_cast<std::size_t>(m.initial())];
  }
};

/// Interval iteration (Haddad-Monmege / sound value iteration): iterates a
/// lower bound from 0 and an upper bound from 1 simultaneously; on
/// termination the true probability is *certified* to lie within epsilon,
/// unlike plain VI whose convergence test can stop early (see ablation A2).
/// Requires the qualitative precomputation (always applied here) so that the
/// upper iterate contracts.
IntervalResult interval_iteration(const Mdp& m, const StateSet& goal,
                                  Objective obj, double epsilon = 1e-6,
                                  std::int64_t max_iterations = 1'000'000);

}  // namespace quanta::mdp
