#include "mdp/graph_analysis.h"

#include <stdexcept>

namespace quanta::mdp {

namespace {

void require_frozen(const Mdp& m) {
  if (!m.frozen()) throw std::logic_error("graph analysis requires frozen MDP");
}

/// Least fixpoint of "goal or some choice has some branch into the set".
StateSet existential_reach(const Mdp& m, const StateSet& goal) {
  StateSet in = goal;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::int32_t s = 0; s < m.num_states(); ++s) {
      if (in[static_cast<std::size_t>(s)]) continue;
      bool hit = false;
      for (std::int64_t c = m.choice_begin(s); c < m.choice_end(s) && !hit; ++c) {
        for (const Branch& b : m.branches_of(c)) {
          if (in[static_cast<std::size_t>(b.target)]) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        in[static_cast<std::size_t>(s)] = true;
        changed = true;
      }
    }
  }
  return in;
}

/// Greatest fixpoint of "non-goal and some choice keeps all mass in the set"
/// — states with a strategy to surely avoid `goal` forever.
StateSet sure_avoid(const Mdp& m, const StateSet& goal) {
  StateSet in(static_cast<std::size_t>(m.num_states()), true);
  for (std::int32_t s = 0; s < m.num_states(); ++s) {
    if (goal[static_cast<std::size_t>(s)]) in[static_cast<std::size_t>(s)] = false;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::int32_t s = 0; s < m.num_states(); ++s) {
      if (!in[static_cast<std::size_t>(s)]) continue;
      bool has_safe_choice = false;
      for (std::int64_t c = m.choice_begin(s); c < m.choice_end(s); ++c) {
        bool all_inside = true;
        for (const Branch& b : m.branches_of(c)) {
          if (!in[static_cast<std::size_t>(b.target)]) {
            all_inside = false;
            break;
          }
        }
        if (all_inside) {
          has_safe_choice = true;
          break;
        }
      }
      if (!has_safe_choice) {
        in[static_cast<std::size_t>(s)] = false;
        changed = true;
      }
    }
  }
  return in;
}

}  // namespace

StateSet prob0_max(const Mdp& m, const StateSet& goal) {
  require_frozen(m);
  StateSet can_reach = existential_reach(m, goal);
  StateSet result(static_cast<std::size_t>(m.num_states()));
  for (std::int32_t s = 0; s < m.num_states(); ++s) {
    result[static_cast<std::size_t>(s)] = !can_reach[static_cast<std::size_t>(s)];
  }
  return result;
}

StateSet prob0_min(const Mdp& m, const StateSet& goal) {
  require_frozen(m);
  return sure_avoid(m, goal);
}

StateSet prob1_max(const Mdp& m, const StateSet& goal) {
  require_frozen(m);
  StateSet w(static_cast<std::size_t>(m.num_states()), true);
  for (;;) {
    // u := least fixpoint of states that can reach goal with one step while
    // keeping all probability mass inside w.
    StateSet u = goal;
    bool grew = true;
    while (grew) {
      grew = false;
      for (std::int32_t s = 0; s < m.num_states(); ++s) {
        if (u[static_cast<std::size_t>(s)]) continue;
        bool ok = false;
        for (std::int64_t c = m.choice_begin(s); c < m.choice_end(s) && !ok; ++c) {
          bool all_in_w = true;
          bool some_in_u = false;
          for (const Branch& b : m.branches_of(c)) {
            if (!w[static_cast<std::size_t>(b.target)]) all_in_w = false;
            if (u[static_cast<std::size_t>(b.target)]) some_in_u = true;
          }
          ok = all_in_w && some_in_u;
        }
        if (ok) {
          u[static_cast<std::size_t>(s)] = true;
          grew = true;
        }
      }
    }
    if (u == w) return w;
    w = std::move(u);
  }
}

StateSet prob1_min(const Mdp& m, const StateSet& goal) {
  require_frozen(m);
  // Pmin(F goal) < 1 iff the state can reach, through non-goal states, a
  // region with a strategy to avoid goal surely. Compute that region, grow
  // it backwards through non-goal states, and complement.
  StateSet avoid_core = sure_avoid(m, goal);
  StateSet bad = avoid_core;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::int32_t s = 0; s < m.num_states(); ++s) {
      if (bad[static_cast<std::size_t>(s)] || goal[static_cast<std::size_t>(s)]) continue;
      bool hit = false;
      for (std::int64_t c = m.choice_begin(s); c < m.choice_end(s) && !hit; ++c) {
        for (const Branch& b : m.branches_of(c)) {
          if (bad[static_cast<std::size_t>(b.target)]) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        bad[static_cast<std::size_t>(s)] = true;
        changed = true;
      }
    }
  }
  StateSet result(static_cast<std::size_t>(m.num_states()));
  for (std::int32_t s = 0; s < m.num_states(); ++s) {
    result[static_cast<std::size_t>(s)] = !bad[static_cast<std::size_t>(s)];
  }
  return result;
}

}  // namespace quanta::mdp
