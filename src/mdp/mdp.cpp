#include "mdp/mdp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ckpt/checkpoint.h"
#include "common/error.h"

namespace quanta::mdp {

void Mdp::add_choice(std::int32_t state, std::vector<Branch> branches,
                     double reward) {
  if (frozen_) throw std::logic_error("Mdp::add_choice after freeze()");
  if (state < 0) {
    throw std::invalid_argument(quanta::context(
        "mdp", "Mdp::add_choice: state must be non-negative, got ", state));
  }
  if (branches.empty()) {
    throw std::invalid_argument("Mdp::add_choice: empty distribution");
  }
  num_states_ = std::max(num_states_, state + 1);
  for (const Branch& b : branches) {
    if (b.target < 0 || b.prob < 0.0) {
      throw std::invalid_argument(quanta::context(
          "mdp", "Mdp::add_choice: bad branch (target=", b.target,
          ", prob=", b.prob,
          "): target must be >= 0 and probability non-negative"));
    }
    num_states_ = std::max(num_states_, b.target + 1);
  }
  pending_.push_back(PendingChoice{state, reward, std::move(branches)});
}

void Mdp::freeze() {
  if (frozen_) return;
  num_states_ = std::max(num_states_, initial_ + 1);

  // Count choices per state; give deadlock states an implicit self-loop.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_states_), 0);
  for (const auto& c : pending_) ++counts[static_cast<std::size_t>(c.state)];
  for (std::int32_t s = 0; s < num_states_; ++s) {
    if (counts[static_cast<std::size_t>(s)] == 0) {
      pending_.push_back(PendingChoice{s, 0.0, {Branch{s, 1.0}}});
      counts[static_cast<std::size_t>(s)] = 1;
    }
  }

  state_offset_.assign(static_cast<std::size_t>(num_states_) + 1, 0);
  for (std::int32_t s = 0; s < num_states_; ++s) {
    state_offset_[static_cast<std::size_t>(s) + 1] =
        state_offset_[static_cast<std::size_t>(s)] + counts[static_cast<std::size_t>(s)];
  }

  const std::int64_t n_choices = static_cast<std::int64_t>(pending_.size());
  choice_reward_.assign(static_cast<std::size_t>(n_choices), 0.0);
  std::vector<std::int64_t> fill(state_offset_.begin(), state_offset_.end() - 1);
  std::vector<const PendingChoice*> slot(static_cast<std::size_t>(n_choices), nullptr);
  for (const auto& c : pending_) {
    slot[static_cast<std::size_t>(fill[static_cast<std::size_t>(c.state)]++)] = &c;
  }

  choice_offset_.assign(static_cast<std::size_t>(n_choices) + 1, 0);
  std::int64_t total_branches = 0;
  for (std::int64_t i = 0; i < n_choices; ++i) {
    total_branches += static_cast<std::int64_t>(slot[static_cast<std::size_t>(i)]->branches.size());
    choice_offset_[static_cast<std::size_t>(i) + 1] = total_branches;
  }
  branches_.reserve(static_cast<std::size_t>(total_branches));
  for (std::int64_t i = 0; i < n_choices; ++i) {
    const PendingChoice& c = *slot[static_cast<std::size_t>(i)];
    choice_reward_[static_cast<std::size_t>(i)] = c.reward;
    double sum = 0.0;
    for (const Branch& b : c.branches) {
      sum += b.prob;
      branches_.push_back(b);
    }
    if (std::fabs(sum - 1.0) > 1e-9) {
      throw std::invalid_argument("Mdp::freeze: distribution sums to " +
                                  std::to_string(sum));
    }
  }
  pending_.clear();
  pending_.shrink_to_fit();
  frozen_ = true;
}

std::uint64_t Mdp::fingerprint() const {
  if (!frozen_) {
    throw std::logic_error(quanta::context(
        "mdp.fingerprint", "fingerprint requires a frozen MDP"));
  }
  ckpt::Fingerprint fp;
  fp.mix(0x4D445000u)
      .mix_i64(num_states_)
      .mix_i64(initial_);
  for (std::int64_t off : state_offset_) fp.mix_i64(off);
  for (std::int64_t off : choice_offset_) fp.mix_i64(off);
  for (double r : choice_reward_) fp.mix_f64(r);
  for (const Branch& b : branches_) {
    fp.mix_i64(b.target).mix_f64(b.prob);
  }
  return fp.digest();
}

}  // namespace quanta::mdp
