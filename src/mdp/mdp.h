// Markov decision processes with action rewards, stored in compressed
// sparse-row form so that digital-clocks translations of PTA (millions of
// states) stay affordable. This is the probabilistic-model-checking core
// behind the mcpta/PRISM column of the paper's Table I.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace quanta::mdp {

struct Branch {
  std::int32_t target = 0;
  double prob = 0.0;
};

/// Builder-then-frozen MDP. States are added implicitly by referencing them;
/// choices are appended per state in any order and frozen into CSR form.
class Mdp {
 public:
  /// Appends one nondeterministic choice for `state`. Branch probabilities
  /// must sum to 1 (within tolerance; checked in freeze()).
  void add_choice(std::int32_t state, std::vector<Branch> branches,
                  double reward = 0.0);

  void set_initial(std::int32_t s) { initial_ = s; }
  std::int32_t initial() const { return initial_; }

  /// Freezes into CSR form; must be called before queries. Validates that
  /// every state has at least one choice (deadlock states get an implicit
  /// self-loop with reward 0) and that distributions are normalised.
  void freeze();
  bool frozen() const { return frozen_; }

  std::int32_t num_states() const { return num_states_; }
  std::int64_t num_choices() const { return static_cast<std::int64_t>(choice_reward_.size()); }
  std::int64_t num_branches() const { return static_cast<std::int64_t>(branches_.size()); }

  /// Choice indices of a state: [choice_begin(s), choice_end(s)).
  std::int64_t choice_begin(std::int32_t s) const { return state_offset_[static_cast<std::size_t>(s)]; }
  std::int64_t choice_end(std::int32_t s) const { return state_offset_[static_cast<std::size_t>(s) + 1]; }

  std::span<const Branch> branches_of(std::int64_t choice) const {
    return {branches_.data() + choice_offset_[static_cast<std::size_t>(choice)],
            branches_.data() + choice_offset_[static_cast<std::size_t>(choice) + 1]};
  }
  double reward_of(std::int64_t choice) const {
    return choice_reward_[static_cast<std::size_t>(choice)];
  }

  /// Structural fingerprint of the frozen CSR form (states, choice layout,
  /// branch targets/probabilities, rewards, initial state) — the model half
  /// of a value-iteration checkpoint's identity (src/ckpt). Requires
  /// frozen().
  std::uint64_t fingerprint() const;

 private:
  struct PendingChoice {
    std::int32_t state;
    double reward;
    std::vector<Branch> branches;
  };

  bool frozen_ = false;
  std::int32_t initial_ = 0;
  std::int32_t num_states_ = 0;
  std::vector<PendingChoice> pending_;

  // CSR data (valid after freeze()).
  std::vector<std::int64_t> state_offset_;   // per state: first choice index
  std::vector<std::int64_t> choice_offset_;  // per choice: first branch index
  std::vector<double> choice_reward_;
  std::vector<Branch> branches_;
};

}  // namespace quanta::mdp
