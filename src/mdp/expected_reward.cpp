#include "mdp/expected_reward.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/error.h"

namespace quanta::mdp {

RewardResult expected_reward_to_goal(const Mdp& m, const StateSet& goal,
                                     Objective obj, const ViOptions& opts) {
  opts.validate("mdp.expected_reward_to_goal");
  if (!m.frozen()) {
    throw std::logic_error(quanta::context(
        "mdp.expected_reward_to_goal",
        "expected reward requires a frozen MDP (call Mdp::freeze() first)"));
  }
  const std::int32_t n = m.num_states();
  if (static_cast<std::int32_t>(goal.size()) != n) {
    throw std::invalid_argument(quanta::context(
        "mdp.expected_reward_to_goal", "goal set has ", goal.size(),
        " entries but the MDP has ", n, " states"));
  }

  // Divergence analysis: the expected total reward is finite only where the
  // goal is reached almost surely (under every scheduler for kMax, under the
  // best scheduler for kMin).
  StateSet proper = (obj == Objective::kMax) ? prob1_min(m, goal)
                                             : prob1_max(m, goal);

  RewardResult result;
  result.values.assign(static_cast<std::size_t>(n), 0.0);
  for (std::int32_t s = 0; s < n; ++s) {
    if (!goal[static_cast<std::size_t>(s)] && !proper[static_cast<std::size_t>(s)]) {
      result.values[static_cast<std::size_t>(s)] = kInfiniteReward;
    }
  }

  auto& v = result.values;
  const bool governed_run = opts.budget.active();
  for (; result.iterations < opts.max_iterations; ++result.iterations) {
    if (governed_run) {
      const common::StopReason r = opts.budget.poll(0);
      if (r != common::StopReason::kCompleted) {
        result.stop = r;
        break;
      }
    }
    double max_diff = 0.0;
    for (std::int32_t s = 0; s < n; ++s) {
      if (goal[static_cast<std::size_t>(s)]) continue;
      if (std::isinf(v[static_cast<std::size_t>(s)])) continue;
      bool first = true;
      double best = 0.0;
      for (std::int64_t c = m.choice_begin(s); c < m.choice_end(s); ++c) {
        double val = m.reward_of(c);
        bool inf = false;
        for (const Branch& b : m.branches_of(c)) {
          double tv = v[static_cast<std::size_t>(b.target)];
          if (std::isinf(tv)) {
            inf = true;
            break;
          }
          val += b.prob * tv;
        }
        if (inf) {
          // kMin must avoid divergent choices; kMax would pick them, but a
          // kMax state with a divergent choice was already marked infinite
          // by the prob1_min precomputation above.
          if (obj == Objective::kMax) val = kInfiniteReward;
          else continue;
        }
        if (first || (obj == Objective::kMax ? val > best : val < best)) {
          best = val;
          first = false;
        }
      }
      if (first) continue;  // no admissible choice (all divergent under kMin)
      double diff = std::isinf(best) || std::isinf(v[static_cast<std::size_t>(s)])
                        ? (best == v[static_cast<std::size_t>(s)] ? 0.0 : 1.0)
                        : std::fabs(best - v[static_cast<std::size_t>(s)]);
      max_diff = std::max(max_diff, diff);
      v[static_cast<std::size_t>(s)] = best;
    }
    if (max_diff < opts.epsilon) {
      result.converged = true;
      ++result.iterations;
      break;
    }
  }
  if (result.converged) {
    result.verdict = common::Verdict::kHolds;
  } else if (result.stop == common::StopReason::kCompleted) {
    result.stop = common::StopReason::kStateLimit;
  }
  return result;
}

}  // namespace quanta::mdp
