#include "bip/explore.h"

#include <sstream>

#include "bip/traits.h"
#include "core/explore.h"
#include "core/state_store.h"
#include "core/worklist.h"

namespace quanta::bip {

std::string describe_state(const BipSystem& sys, const BipState& s) {
  std::ostringstream os;
  os << "(";
  for (int c = 0; c < sys.component_count(); ++c) {
    if (c) os << ", ";
    os << sys.component(c).name() << "."
       << sys.component(c).place_name(s.places[static_cast<std::size_t>(c)]);
  }
  os << ")";
  return os.str();
}

namespace {

ExploreResult explore_impl(const BipSystem& sys, const ExploreOptions& opts,
                           const BipPredicate& safety,
                           const BipPredicate& target, bool* target_found) {
  Engine engine(sys);
  core::StateStore<BipState> store;
  core::Worklist work(core::SearchOrder::kBfs);
  ExploreResult result;

  auto intern = [&](BipState s) {
    auto [id, inserted] = store.intern(std::move(s));
    if (inserted) work.push(id);
  };

  intern(engine.initial());
  result.stats = core::explore(
      store, work, opts.limits,
      [&](const core::Worklist::Entry& e) {
        const BipState& s = store.state(e.id);
        if (safety && !safety(s)) {
          result.violation_found = true;
          result.violating_state = describe_state(sys, s);
        }
        if (target && target(s)) {
          *target_found = true;
          return core::Visit::kStop;
        }
        return core::Visit::kContinue;
      },
      [&](const core::Worklist::Entry& e) -> std::size_t {
        const BipState s = store.state(e.id);
        auto interactions =
            opts.use_priorities ? engine.enabled_maximal(s) : engine.enabled(s);
        if (interactions.empty() && !result.deadlock_found) {
          result.deadlock_found = true;
          result.deadlock_state = describe_state(sys, s);
        }
        for (const Interaction& i : interactions) {
          intern(engine.apply(s, i));
        }
        return interactions.size();
      });
  return result;
}

}  // namespace

ExploreResult explore(const BipSystem& sys, const ExploreOptions& opts,
                      const BipPredicate& safety) {
  opts.limits.validate("bip.explore");
  return common::governed(
      [&] {
        bool unused = false;
        ExploreResult r = explore_impl(sys, opts, safety, {}, &unused);
        if (r.deadlock_found || r.violation_found) {
          r.verdict = common::Verdict::kViolated;
        } else if (!r.stats.truncated) {
          r.verdict = common::Verdict::kHolds;
        }
        return r;
      },
      [](common::StopReason reason) {
        ExploreResult r;
        r.stats.stop_for(reason);
        return r;
      });
}

common::Verdict reachable(const BipSystem& sys, const BipPredicate& pred,
                          const ExploreOptions& opts) {
  opts.limits.validate("bip.reachable");
  return common::governed(
      [&]() -> common::Verdict {
        bool found = false;
        ExploreResult r = explore_impl(sys, opts, {}, pred, &found);
        if (found) return common::Verdict::kHolds;
        return r.stats.truncated ? common::Verdict::kUnknown
                                 : common::Verdict::kViolated;
      },
      [](common::StopReason) { return common::Verdict::kUnknown; });
}

}  // namespace quanta::bip
