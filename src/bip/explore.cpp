#include "bip/explore.h"

#include <deque>
#include <sstream>
#include <unordered_map>

namespace quanta::bip {

std::string describe_state(const BipSystem& sys, const BipState& s) {
  std::ostringstream os;
  os << "(";
  for (int c = 0; c < sys.component_count(); ++c) {
    if (c) os << ", ";
    os << sys.component(c).name() << "."
       << sys.component(c).place_name(s.places[static_cast<std::size_t>(c)]);
  }
  os << ")";
  return os.str();
}

namespace {

ExploreResult explore_impl(const BipSystem& sys, const ExploreOptions& opts,
                           const BipPredicate& safety,
                           const BipPredicate& target, bool* target_found) {
  Engine engine(sys);
  std::unordered_map<BipState, int, BipStateHash> index;
  std::deque<BipState> work;
  ExploreResult result;

  auto intern = [&](BipState s) {
    auto [it, ins] = index.try_emplace(std::move(s), static_cast<int>(index.size()));
    if (ins) work.push_back(it->first);
  };

  intern(engine.initial());
  while (!work.empty()) {
    BipState s = std::move(work.front());
    work.pop_front();
    if (safety && !safety(s)) {
      result.violation_found = true;
      result.violating_state = describe_state(sys, s);
    }
    if (target && target(s)) {
      *target_found = true;
      break;
    }
    if (index.size() >= opts.max_states) {
      result.truncated = true;
      break;
    }
    auto interactions =
        opts.use_priorities ? engine.enabled_maximal(s) : engine.enabled(s);
    if (interactions.empty() && !result.deadlock_found) {
      result.deadlock_found = true;
      result.deadlock_state = describe_state(sys, s);
    }
    for (const Interaction& i : interactions) {
      ++result.transitions;
      intern(engine.apply(s, i));
    }
  }
  result.states = index.size();
  return result;
}

}  // namespace

ExploreResult explore(const BipSystem& sys, const ExploreOptions& opts,
                      const BipPredicate& safety) {
  bool unused = false;
  return explore_impl(sys, opts, safety, {}, &unused);
}

bool reachable(const BipSystem& sys, const BipPredicate& pred,
               const ExploreOptions& opts) {
  bool found = false;
  explore_impl(sys, opts, {}, pred, &found);
  return found;
}

}  // namespace quanta::bip
