// D-Finder-style compositional deadlock detection (Bensalem et al., CAV'09):
// instead of exploring the global state space, verify
//     CI /\ II /\ DIS  unsatisfiable
// where CI are component invariants (locally reachable places), II are
// interaction invariants (derived from traps of the place/interaction
// structure) and DIS characterises the control states with no structurally
// enabled interaction. If the conjunction has no solution the system is
// deadlock-free; otherwise the solutions are *potential* deadlocks to be
// confirmed (our tests cross-check against exact exploration).
//
// This implementation works at the control level: data guards are abstracted
// away (enabledness is place-based), which over-approximates enabledness —
// exact for guard-free coordination like the DALA model.
#pragma once

#include <string>
#include <vector>

#include "bip/system.h"

namespace quanta::bip {

struct DFinderResult {
  /// Deadlock-freedom proven compositionally.
  bool deadlock_free = false;
  std::size_t trap_invariants = 0;       ///< interaction invariants used
  std::size_t candidates = 0;            ///< surviving potential deadlocks
  std::vector<std::string> examples;     ///< up to a few, printable
};

struct DFinderOptions {
  std::size_t max_candidates_reported = 5;
  std::size_t max_broadcast_receivers = 12;  ///< subset-enumeration cap
};

DFinderResult dfinder_deadlock_check(const BipSystem& sys,
                                     const DFinderOptions& opts = {});

}  // namespace quanta::bip
