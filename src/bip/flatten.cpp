#include "bip/flatten.h"

#include "bip/explore.h"
#include "bip/traits.h"
#include "core/explore.h"
#include "core/state_store.h"
#include "core/worklist.h"

namespace quanta::bip {

FlattenResult flatten(const BipSystem& sys, const FlattenOptions& opts) {
  Engine engine(sys);
  FlattenResult result;
  result.flat = Component("flat(" + std::to_string(sys.component_count()) +
                          " components)");

  core::StateStore<BipState> store;
  core::Worklist work(core::SearchOrder::kBfs);
  auto intern = [&](BipState s) -> std::int32_t {
    auto [id, inserted] = store.intern(std::move(s));
    if (inserted) {
      result.flat.add_place(describe_state(sys, store.state(id)));
      work.push(id);
    }
    return id;
  };

  std::int32_t init = intern(engine.initial());
  result.flat.set_initial(init);
  result.stats = core::explore(
      store, work, opts.limits,
      [](const core::Worklist::Entry&) { return core::Visit::kContinue; },
      [&](const core::Worklist::Entry& e) -> std::size_t {
        const BipState state = store.state(e.id);
        auto interactions = opts.use_priorities ? engine.enabled_maximal(state)
                                                : engine.enabled(state);
        for (const Interaction& i : interactions) {
          std::int32_t to = intern(engine.apply(state, i));
          result.flat.add_transition(e.id, to, -1, nullptr, nullptr,
                                     i.describe(sys));
        }
        return interactions.size();
      });
  result.flat.validate();
  return result;
}

}  // namespace quanta::bip
