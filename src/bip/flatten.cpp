#include "bip/flatten.h"

#include <deque>
#include <unordered_map>

#include "bip/explore.h"

namespace quanta::bip {

FlattenResult flatten(const BipSystem& sys, const FlattenOptions& opts) {
  Engine engine(sys);
  FlattenResult result;
  result.flat = Component("flat(" + std::to_string(sys.component_count()) +
                          " components)");

  std::unordered_map<BipState, int, BipStateHash> index;
  std::vector<BipState> states;
  auto intern2 = [&](BipState s) -> int {
    auto [it, ins] = index.try_emplace(std::move(s), static_cast<int>(states.size()));
    if (ins) {
      states.push_back(it->first);
      result.flat.add_place(describe_state(sys, it->first));
    }
    return it->second;
  };

  int init = intern2(engine.initial());
  result.flat.set_initial(init);
  std::size_t done = 0;
  while (done < states.size()) {
    if (states.size() >= opts.max_states) {
      result.truncated = true;
      break;
    }
    int idx = static_cast<int>(done++);
    const BipState state = states[static_cast<std::size_t>(idx)];
    auto interactions = opts.use_priorities ? engine.enabled_maximal(state)
                                            : engine.enabled(state);
    for (const Interaction& i : interactions) {
      int to = intern2(engine.apply(state, i));
      result.flat.add_transition(idx, to, -1, nullptr, nullptr,
                                 i.describe(sys));
    }
  }
  result.flat.validate();
  return result;
}

}  // namespace quanta::bip
