#include "bip/engine.h"

#include <sstream>
#include <stdexcept>

#include "common/hash.h"

namespace quanta::bip {

std::size_t BipState::hash() const {
  std::size_t seed = common::hash_vector(places);
  for (const auto& v : vars) {
    common::hash_combine(seed, common::hash_vector(v));
  }
  return seed;
}

std::string Interaction::describe(const BipSystem& sys) const {
  std::ostringstream os;
  if (connector >= 0) {
    os << sys.connector(connector).name << "{";
  } else {
    os << "internal{";
  }
  for (std::size_t i = 0; i < participants.size(); ++i) {
    if (i) os << ", ";
    const auto& p = participants[i];
    const Component& comp = sys.component(p.component);
    os << comp.name();
    if (p.port >= 0) {
      os << "." << comp.port_name(p.port);
    } else if (i < transitions.size()) {
      const std::string& label =
          comp.transitions().at(static_cast<std::size_t>(transitions[i])).label;
      if (!label.empty()) os << ":" << label;
    }
  }
  os << "}";
  return os.str();
}

Engine::Engine(const BipSystem& sys) : sys_(&sys), state_(initial()) {
  sys.validate();
}

BipState Engine::initial() const {
  BipState s;
  s.places.reserve(static_cast<std::size_t>(sys_->component_count()));
  s.vars.reserve(static_cast<std::size_t>(sys_->component_count()));
  for (int c = 0; c < sys_->component_count(); ++c) {
    s.places.push_back(sys_->component(c).initial());
    s.vars.push_back(sys_->component(c).vars().initial());
  }
  return s;
}

bool Engine::transition_enabled(const BipState& s, int component, int t) const {
  const Transition& tr =
      sys_->component(component).transitions().at(static_cast<std::size_t>(t));
  if (tr.source != s.places[static_cast<std::size_t>(component)]) return false;
  return !tr.guard || tr.guard(s.vars[static_cast<std::size_t>(component)]);
}

std::vector<int> Engine::enabled_for_port(const BipState& s, int component,
                                          int port) const {
  std::vector<int> result;
  const Component& comp = sys_->component(component);
  const auto& transitions = comp.transitions();
  for (std::size_t t = 0; t < transitions.size(); ++t) {
    if (transitions[t].port != port) continue;
    if (transition_enabled(s, component, static_cast<int>(t))) {
      result.push_back(static_cast<int>(t));
    }
  }
  return result;
}

std::vector<Interaction> Engine::enabled(const BipState& s) const {
  std::vector<Interaction> result;

  // Internal transitions: singleton interactions.
  for (int c = 0; c < sys_->component_count(); ++c) {
    for (int t : enabled_for_port(s, c, -1)) {
      Interaction i;
      i.connector = -1;
      i.participants.push_back(PortRef{c, -1});
      i.transitions.push_back(t);
      result.push_back(std::move(i));
    }
  }

  for (int ci = 0; ci < sys_->connector_count(); ++ci) {
    const Connector& conn = sys_->connector(ci);
    // Enabled transitions per endpoint.
    std::vector<std::vector<int>> options;
    options.reserve(conn.ports.size());
    for (const PortRef& p : conn.ports) {
      options.push_back(enabled_for_port(s, p.component, p.port));
    }

    if (conn.kind == ConnectorKind::kRendezvous) {
      bool all = true;
      for (const auto& o : options) {
        if (o.empty()) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      // Enumerate the product of transition choices (usually singletons).
      std::vector<std::size_t> counter(options.size(), 0);
      for (;;) {
        Interaction i;
        i.connector = ci;
        for (std::size_t k = 0; k < options.size(); ++k) {
          i.participants.push_back(conn.ports[k]);
          i.transitions.push_back(options[k][counter[k]]);
        }
        result.push_back(std::move(i));
        std::size_t pos = 0;
        while (pos < options.size()) {
          if (++counter[pos] < options[pos].size()) break;
          counter[pos] = 0;
          ++pos;
        }
        if (pos == options.size()) break;
      }
    } else {
      // Broadcast: the trigger must be enabled; every subset of the enabled
      // receivers forms an instance (maximal progress is applied later).
      if (options[0].empty()) continue;
      std::vector<std::size_t> enabled_receivers;
      for (std::size_t k = 1; k < options.size(); ++k) {
        if (!options[k].empty()) enabled_receivers.push_back(k);
      }
      const std::size_t subsets = std::size_t{1} << enabled_receivers.size();
      for (std::size_t mask = 0; mask < subsets; ++mask) {
        // For simplicity take the first enabled transition per participant
        // (multiple same-port transitions are rare in practice).
        Interaction i;
        i.connector = ci;
        i.participants.push_back(conn.ports[0]);
        i.transitions.push_back(options[0].front());
        for (std::size_t b = 0; b < enabled_receivers.size(); ++b) {
          if (mask & (std::size_t{1} << b)) {
            std::size_t k = enabled_receivers[b];
            i.participants.push_back(conn.ports[k]);
            i.transitions.push_back(options[k].front());
          }
        }
        result.push_back(std::move(i));
      }
    }
  }
  return result;
}

std::vector<Interaction> Engine::enabled_maximal(const BipState& s) const {
  std::vector<Interaction> all = enabled(s);

  // Maximal progress on broadcasts: drop instances strictly contained in
  // another enabled instance of the same connector.
  auto contained = [](const Interaction& small, const Interaction& big) {
    if (small.connector != big.connector) return false;
    if (small.participants.size() >= big.participants.size()) return false;
    for (const auto& p : small.participants) {
      bool found = false;
      for (const auto& q : big.participants) {
        if (p == q) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };

  std::vector<bool> dead(all.size(), false);
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = 0; j < all.size(); ++j) {
      if (i != j && contained(all[i], all[j])) dead[i] = true;
    }
  }

  // User priority rules: low suppressed when any high instance is enabled.
  for (const PriorityRule& rule : sys_->priorities()) {
    bool high_enabled = false;
    for (std::size_t j = 0; j < all.size(); ++j) {
      if (!dead[j] && all[j].connector == rule.high) {
        high_enabled = true;
        break;
      }
    }
    if (!high_enabled) continue;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (all[i].connector == rule.low) dead[i] = true;
    }
  }

  std::vector<Interaction> result;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!dead[i]) result.push_back(std::move(all[i]));
  }
  return result;
}

BipState Engine::apply(const BipState& s, const Interaction& i) const {
  BipState next = s;
  for (std::size_t k = 0; k < i.participants.size(); ++k) {
    int c = i.participants[k].component;
    const Transition& tr = sys_->component(c).transitions().at(
        static_cast<std::size_t>(i.transitions[k]));
    next.places[static_cast<std::size_t>(c)] = tr.target;
    if (tr.action) {
      tr.action(next.vars[static_cast<std::size_t>(c)]);
      sys_->component(c).vars().check_bounds(next.vars[static_cast<std::size_t>(c)]);
    }
  }
  return next;
}

std::size_t Engine::run(std::size_t max_steps, common::Rng& rng,
                        const std::function<bool(const BipState&)>& observer) {
  if (observer && !observer(state_)) return 0;
  std::size_t steps = 0;
  while (steps < max_steps) {
    auto choices = enabled_maximal(state_);
    if (choices.empty()) break;  // global deadlock
    const Interaction& i = choices[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(choices.size()) - 1))];
    state_ = apply(state_, i);
    ++steps;
    if (observer && !observer(state_)) break;
  }
  return steps;
}

}  // namespace quanta::bip
