#include "bip/dfinder.h"

#include <set>
#include <sstream>
#include <stdexcept>

namespace quanta::bip {

namespace {

/// Global place id for (component, place).
struct PlaceTable {
  std::vector<int> offset;  ///< per component
  int total = 0;

  explicit PlaceTable(const BipSystem& sys) {
    offset.reserve(static_cast<std::size_t>(sys.component_count()));
    for (int c = 0; c < sys.component_count(); ++c) {
      offset.push_back(total);
      total += sys.component(c).place_count();
    }
  }
  int id(int component, int place) const {
    return offset[static_cast<std::size_t>(component)] + place;
  }
};

/// Abstract interaction: global places consumed and produced.
struct AbstractInteraction {
  std::vector<int> pre;
  std::vector<int> post;
};

/// Every firable shape of the system's coordination, at the control level:
/// internal transitions, rendezvous instances, and broadcast instances for
/// every receiver subset (traps must be closed under all of them).
std::vector<AbstractInteraction> abstract_interactions(
    const BipSystem& sys, const PlaceTable& places,
    std::size_t max_broadcast_receivers) {
  std::vector<AbstractInteraction> result;

  // Internal transitions.
  for (int c = 0; c < sys.component_count(); ++c) {
    for (const Transition& t : sys.component(c).transitions()) {
      if (t.port != -1) continue;
      result.push_back(AbstractInteraction{{places.id(c, t.source)},
                                           {places.id(c, t.target)}});
    }
  }

  for (int ci = 0; ci < sys.connector_count(); ++ci) {
    const Connector& conn = sys.connector(ci);
    // Per endpoint: the transitions carrying that port.
    std::vector<std::vector<const Transition*>> labelled(conn.ports.size());
    for (std::size_t k = 0; k < conn.ports.size(); ++k) {
      for (const Transition& t :
           sys.component(conn.ports[k].component).transitions()) {
        if (t.port == conn.ports[k].port) labelled[k].push_back(&t);
      }
    }

    if (conn.kind == ConnectorKind::kRendezvous) {
      // Product over endpoints of their labelled transitions.
      std::vector<std::size_t> counter(conn.ports.size(), 0);
      bool any_empty = false;
      for (const auto& l : labelled) {
        if (l.empty()) any_empty = true;
      }
      if (any_empty) continue;  // connector can never fire
      for (;;) {
        AbstractInteraction ai;
        for (std::size_t k = 0; k < conn.ports.size(); ++k) {
          const Transition* t = labelled[k][counter[k]];
          ai.pre.push_back(places.id(conn.ports[k].component, t->source));
          ai.post.push_back(places.id(conn.ports[k].component, t->target));
        }
        result.push_back(std::move(ai));
        std::size_t pos = 0;
        while (pos < conn.ports.size()) {
          if (++counter[pos] < labelled[pos].size()) break;
          counter[pos] = 0;
          ++pos;
        }
        if (pos == conn.ports.size()) break;
      }
    } else {
      if (labelled[0].empty()) continue;
      std::size_t receivers = conn.ports.size() - 1;
      if (receivers > max_broadcast_receivers) {
        throw std::invalid_argument(
            "dfinder: broadcast connector too wide for subset enumeration");
      }
      const std::size_t subsets = std::size_t{1} << receivers;
      for (const Transition* trig : labelled[0]) {
        for (std::size_t mask = 0; mask < subsets; ++mask) {
          AbstractInteraction ai;
          ai.pre.push_back(places.id(conn.ports[0].component, trig->source));
          ai.post.push_back(places.id(conn.ports[0].component, trig->target));
          bool ok = true;
          for (std::size_t b = 0; b < receivers && ok; ++b) {
            if (!(mask & (std::size_t{1} << b))) continue;
            std::size_t k = b + 1;
            if (labelled[k].empty()) {
              ok = false;
              break;
            }
            for (const Transition* t : labelled[k]) {
              ai.pre.push_back(places.id(conn.ports[k].component, t->source));
              ai.post.push_back(places.id(conn.ports[k].component, t->target));
              break;  // first labelled transition per receiver
            }
          }
          if (ok) result.push_back(std::move(ai));
        }
      }
    }
  }
  return result;
}

/// Locally reachable places of one component (guards abstracted away).
std::vector<bool> reachable_places(const Component& comp) {
  std::vector<bool> reach(static_cast<std::size_t>(comp.place_count()), false);
  std::vector<int> work{comp.initial()};
  reach[static_cast<std::size_t>(comp.initial())] = true;
  while (!work.empty()) {
    int p = work.back();
    work.pop_back();
    for (const Transition& t : comp.transitions()) {
      if (t.source == p && !reach[static_cast<std::size_t>(t.target)]) {
        reach[static_cast<std::size_t>(t.target)] = true;
        work.push_back(t.target);
      }
    }
  }
  return reach;
}

/// Trap saturation from a seed: whenever an interaction consumes from S, all
/// its outputs are added. The result is a trap by construction.
std::set<int> saturate_trap(int seed,
                            const std::vector<AbstractInteraction>& ais) {
  std::set<int> trap{seed};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& ai : ais) {
      bool consumes = false;
      for (int p : ai.pre) {
        if (trap.count(p)) {
          consumes = true;
          break;
        }
      }
      if (!consumes) continue;
      bool produces = false;
      for (int p : ai.post) {
        if (trap.count(p)) {
          produces = true;
          break;
        }
      }
      if (!produces) {
        // Add all outputs (the coarse, always-sound completion).
        for (int p : ai.post) trap.insert(p);
        changed = true;
      }
    }
  }
  return trap;
}

/// Linear place invariants: a basis of y with yᵀC = 0 for the incidence
/// matrix C (places x interactions, entries post - pre). Every reachable
/// marking M then satisfies yᵀM = yᵀM₀ — this captures lockstep relations
/// between components that traps cannot express.
std::vector<std::vector<double>> place_invariants(
    int total_places, const std::vector<AbstractInteraction>& ais) {
  // Rows of the system to solve: one per interaction (Cᵀ y = 0).
  std::vector<std::vector<double>> rows;
  rows.reserve(ais.size());
  for (const auto& ai : ais) {
    std::vector<double> row(static_cast<std::size_t>(total_places), 0.0);
    for (int p : ai.pre) row[static_cast<std::size_t>(p)] -= 1.0;
    for (int p : ai.post) row[static_cast<std::size_t>(p)] += 1.0;
    rows.push_back(std::move(row));
  }
  // Gaussian elimination to reduced row-echelon form.
  const int n = total_places;
  std::vector<int> pivot_col;
  std::size_t r = 0;
  for (int c = 0; c < n && r < rows.size(); ++c) {
    std::size_t best = r;
    for (std::size_t i = r; i < rows.size(); ++i) {
      if (std::abs(rows[i][static_cast<std::size_t>(c)]) >
          std::abs(rows[best][static_cast<std::size_t>(c)])) {
        best = i;
      }
    }
    if (std::abs(rows[best][static_cast<std::size_t>(c)]) < 1e-9) continue;
    std::swap(rows[r], rows[best]);
    double inv = 1.0 / rows[r][static_cast<std::size_t>(c)];
    for (int j = 0; j < n; ++j) rows[r][static_cast<std::size_t>(j)] *= inv;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i == r) continue;
      double f = rows[i][static_cast<std::size_t>(c)];
      if (std::abs(f) < 1e-12) continue;
      for (int j = 0; j < n; ++j) {
        rows[i][static_cast<std::size_t>(j)] -=
            f * rows[r][static_cast<std::size_t>(j)];
      }
    }
    pivot_col.push_back(c);
    ++r;
  }
  // Null-space basis: one vector per free column.
  std::vector<bool> is_pivot(static_cast<std::size_t>(n), false);
  for (int c : pivot_col) is_pivot[static_cast<std::size_t>(c)] = true;
  std::vector<std::vector<double>> basis;
  for (int free = 0; free < n; ++free) {
    if (is_pivot[static_cast<std::size_t>(free)]) continue;
    std::vector<double> y(static_cast<std::size_t>(n), 0.0);
    y[static_cast<std::size_t>(free)] = 1.0;
    for (std::size_t i = 0; i < pivot_col.size(); ++i) {
      y[static_cast<std::size_t>(pivot_col[i])] =
          -rows[i][static_cast<std::size_t>(free)];
    }
    basis.push_back(std::move(y));
  }
  return basis;
}

}  // namespace

DFinderResult dfinder_deadlock_check(const BipSystem& sys,
                                     const DFinderOptions& opts) {
  sys.validate();
  PlaceTable places(sys);
  auto ais = abstract_interactions(sys, places, opts.max_broadcast_receivers);

  // Component invariants.
  std::vector<std::vector<bool>> ci;
  ci.reserve(static_cast<std::size_t>(sys.component_count()));
  for (int c = 0; c < sys.component_count(); ++c) {
    ci.push_back(reachable_places(sys.component(c)));
  }

  // Interaction invariants: traps saturated from each initial place.
  std::vector<std::set<int>> traps;
  for (int c = 0; c < sys.component_count(); ++c) {
    std::set<int> trap = saturate_trap(places.id(c, sys.component(c).initial()), ais);
    if (static_cast<int>(trap.size()) < places.total) {
      bool duplicate = false;
      for (const auto& t : traps) {
        if (t == trap) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) traps.push_back(std::move(trap));
    }
  }

  DFinderResult result;
  result.trap_invariants = traps.size();

  // Linear place invariants and their initial values.
  auto lin = place_invariants(places.total, ais);
  std::vector<double> lin_init(lin.size(), 0.0);
  for (std::size_t i = 0; i < lin.size(); ++i) {
    for (int c = 0; c < sys.component_count(); ++c) {
      lin_init[i] +=
          lin[i][static_cast<std::size_t>(places.id(c, sys.component(c).initial()))];
    }
  }

  // Enumerate control states consistent with CI; keep those where no
  // abstract interaction is enabled and all trap invariants hold.
  std::vector<int> current(static_cast<std::size_t>(sys.component_count()), 0);
  std::vector<std::string> examples;
  std::size_t candidates = 0;

  auto interaction_enabled = [&](const AbstractInteraction& ai) {
    for (int p : ai.pre) {
      bool marked = false;
      for (int c = 0; c < sys.component_count(); ++c) {
        if (places.id(c, current[static_cast<std::size_t>(c)]) == p) {
          marked = true;
          break;
        }
      }
      if (!marked) return false;
    }
    return true;
  };

  std::function<void(int)> enumerate = [&](int c) {
    if (c == sys.component_count()) {
      for (const auto& ai : ais) {
        if (interaction_enabled(ai)) return;  // live state
      }
      for (const auto& trap : traps) {
        bool marked = false;
        for (int cc = 0; cc < sys.component_count(); ++cc) {
          if (trap.count(places.id(cc, current[static_cast<std::size_t>(cc)]))) {
            marked = true;
            break;
          }
        }
        if (!marked) return;  // violates an interaction invariant
      }
      for (std::size_t i = 0; i < lin.size(); ++i) {
        double val = 0.0;
        for (int cc = 0; cc < sys.component_count(); ++cc) {
          val += lin[i][static_cast<std::size_t>(
              places.id(cc, current[static_cast<std::size_t>(cc)]))];
        }
        if (std::abs(val - lin_init[i]) > 1e-6) return;  // violates invariant
      }
      ++candidates;
      if (examples.size() < opts.max_candidates_reported) {
        std::ostringstream os;
        os << "(";
        for (int cc = 0; cc < sys.component_count(); ++cc) {
          if (cc) os << ", ";
          os << sys.component(cc).name() << "."
             << sys.component(cc).place_name(current[static_cast<std::size_t>(cc)]);
        }
        os << ")";
        examples.push_back(os.str());
      }
      return;
    }
    for (int p = 0; p < sys.component(c).place_count(); ++p) {
      if (!ci[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)]) continue;
      current[static_cast<std::size_t>(c)] = p;
      enumerate(c + 1);
    }
  };
  enumerate(0);

  result.candidates = candidates;
  result.examples = std::move(examples);
  result.deadlock_free = candidates == 0;
  return result;
}

}  // namespace quanta::bip
