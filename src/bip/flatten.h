// Source-to-source architecture transformation (§IV, [24]): flattening a
// composite BIP system into a single atomic component whose places are the
// reachable global configurations and whose transitions are the (priority-
// filtered) interactions. The flat component executes without any
// coordination overhead — the optimisation BIP's transformers perform before
// code generation.
#pragma once

#include "bip/engine.h"
#include "core/search.h"

namespace quanta::bip {

struct FlattenOptions {
  core::SearchLimits limits{.max_states = 1'000'000, .budget = {}};
  bool use_priorities = true;
};

struct FlattenResult {
  Component flat;  ///< one place per reachable global state
  core::SearchStats stats;

  FlattenResult() : flat("flat") {}
};

FlattenResult flatten(const BipSystem& sys, const FlattenOptions& opts = {});

}  // namespace quanta::bip
