// The centralized BIP execution engine: computes the enabled interactions of
// a global state (rendezvous instances, broadcast instances over every
// receiver subset), applies priority filtering (user rules + maximal
// progress on broadcasts), and executes interactions atomically. This is the
// operational semantics that BIP code generation targets; `Engine::run`
// doubles as the generated controller loop.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bip/system.h"
#include "common/rng.h"

namespace quanta::bip {

struct BipState {
  std::vector<int> places;              ///< per component
  std::vector<Valuation> vars;          ///< per component

  bool operator==(const BipState&) const = default;
  std::size_t hash() const;
};

struct BipStateHash {
  std::size_t operator()(const BipState& s) const { return s.hash(); }
};

/// One executable instance of a connector: the participating ports (for
/// broadcasts: the trigger plus the chosen receiver subset) and the chosen
/// transition of every participant.
struct Interaction {
  int connector = 0;
  std::vector<PortRef> participants;
  std::vector<int> transitions;  ///< per participant, index into component

  std::string describe(const BipSystem& sys) const;
};

class Engine {
 public:
  explicit Engine(const BipSystem& sys);

  const BipSystem& system() const { return *sys_; }

  BipState initial() const;

  /// All enabled interactions, before priority filtering. Internal
  /// transitions are modelled as singleton interactions with connector -1.
  std::vector<Interaction> enabled(const BipState& s) const;

  /// Enabled interactions after applying the priority layer: user rules and
  /// maximal progress among the instances of one broadcast connector.
  std::vector<Interaction> enabled_maximal(const BipState& s) const;

  BipState apply(const BipState& s, const Interaction& i) const;

  /// Runs up to `max_steps` interactions, choosing uniformly at random among
  /// the maximal enabled ones. `observer` (if set) sees every state,
  /// starting with the initial one; returning false stops the run.
  /// Returns the number of interactions executed.
  std::size_t run(std::size_t max_steps, common::Rng& rng,
                  const std::function<bool(const BipState&)>& observer = {});

  BipState current() const { return state_; }
  void reset() { state_ = initial(); }
  /// Overwrites the engine's state — used by fault injection.
  void corrupt(const BipState& s) { state_ = s; }

 private:
  bool transition_enabled(const BipState& s, int component, int t) const;
  /// Enabled transition indices of `component` for `port` at state `s`.
  std::vector<int> enabled_for_port(const BipState& s, int component,
                                    int port) const;

  const BipSystem* sys_;
  BipState state_;
};

}  // namespace quanta::bip
