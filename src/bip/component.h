// BIP atomic components (the B in Behaviour-Interaction-Priority): finite
// automata over "places" with local bounded-integer data, whose transitions
// are labelled by ports. Ports are the only interface visible to connectors.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/expr.h"

namespace quanta::bip {

using common::Valuation;
using common::Value;
using common::VarTable;

using Guard = std::function<bool(const Valuation&)>;
using Action = std::function<void(Valuation&)>;

struct Transition {
  int source = 0;
  int target = 0;
  /// Port labelling the transition; -1 for internal (unobservable) steps.
  int port = -1;
  Guard guard;    ///< over the component's local variables; null = true
  Action action;  ///< local data update; null = identity
  std::string label;
};

class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}

  int add_place(std::string name);
  int add_port(std::string name);
  int declare_var(std::string name, Value init, Value min, Value max) {
    return vars_.declare(std::move(name), init, min, max);
  }
  int add_transition(int source, int target, int port, Guard guard = nullptr,
                     Action action = nullptr, std::string label = {});
  void set_initial(int place) { initial_ = place; }

  const std::string& name() const { return name_; }
  int place_count() const { return static_cast<int>(places_.size()); }
  int port_count() const { return static_cast<int>(ports_.size()); }
  const std::string& place_name(int p) const { return places_.at(static_cast<std::size_t>(p)); }
  const std::string& port_name(int p) const { return ports_.at(static_cast<std::size_t>(p)); }
  int place_index(const std::string& name) const;
  int port_index(const std::string& name) const;
  int initial() const { return initial_; }
  const VarTable& vars() const { return vars_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Indices of transitions leaving `place` labelled with `port`.
  std::vector<int> transitions_from(int place, int port) const;

  /// Throws std::invalid_argument on dangling indices.
  void validate() const;

 private:
  std::string name_;
  std::vector<std::string> places_;
  std::vector<std::string> ports_;
  std::vector<Transition> transitions_;
  VarTable vars_;
  int initial_ = 0;
};

}  // namespace quanta::bip
