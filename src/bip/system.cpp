#include "bip/system.h"

#include <stdexcept>

#include "common/error.h"

namespace quanta::bip {

int BipSystem::add_component(Component c) {
  c.validate();
  components_.push_back(std::move(c));
  return static_cast<int>(components_.size()) - 1;
}

int BipSystem::add_connector(Connector c) {
  connectors_.push_back(std::move(c));
  return static_cast<int>(connectors_.size()) - 1;
}

void BipSystem::add_priority(int low_connector, int high_connector) {
  priorities_.push_back(PriorityRule{low_connector, high_connector});
}

int BipSystem::component_index(const std::string& name) const {
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].name() == name) return static_cast<int>(i);
  }
  throw std::out_of_range("BipSystem: unknown component " + name);
}

void BipSystem::validate() const {
  for (const auto& c : components_) c.validate();
  for (const auto& conn : connectors_) {
    if (conn.ports.empty()) {
      throw std::invalid_argument("connector " + conn.name + ": no ports");
    }
    if (conn.kind == ConnectorKind::kBroadcast && conn.ports.size() < 2) {
      throw std::invalid_argument("connector " + conn.name +
                                  ": broadcast needs a trigger and receivers");
    }
    for (const auto& p : conn.ports) {
      if (p.component < 0 || p.component >= component_count()) {
        throw std::invalid_argument("connector " + conn.name +
                                    ": dangling component");
      }
      if (p.port < 0 || p.port >= component(p.component).port_count()) {
        throw std::invalid_argument("connector " + conn.name + ": dangling port");
      }
    }
    // A port may appear at most once per connector.
    for (std::size_t i = 0; i < conn.ports.size(); ++i) {
      for (std::size_t j = i + 1; j < conn.ports.size(); ++j) {
        if (conn.ports[i] == conn.ports[j]) {
          throw std::invalid_argument("connector " + conn.name +
                                      ": duplicate port");
        }
        if (conn.ports[i].component == conn.ports[j].component) {
          throw std::invalid_argument(
              "connector " + conn.name +
              ": two ports of the same component cannot synchronise");
        }
      }
    }
  }
  for (const auto& rule : priorities_) {
    if (rule.low < 0 || rule.low >= connector_count() || rule.high < 0 ||
        rule.high >= connector_count() || rule.low == rule.high) {
      throw std::invalid_argument(quanta::context(
          "bip.system", "priority rule (low=", rule.low, ", high=",
          rule.high, ") references invalid or identical connectors (",
          connector_count(), " connectors declared)"));
    }
  }
}

}  // namespace quanta::bip
