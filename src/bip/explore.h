// Exact state-space exploration of a BIP system (through the engine's
// semantics) on the shared exploration core: reachability of predicates,
// global deadlock detection, and safety monitoring. Serves as the ground
// truth that the compositional D-Finder analysis is compared against.
#pragma once

#include <functional>
#include <string>

#include "bip/engine.h"
#include "common/verdict.h"
#include "core/search.h"

namespace quanta::bip {

using BipPredicate = std::function<bool(const BipState&)>;

struct ExploreOptions {
  core::SearchLimits limits{.max_states = 5'000'000, .budget = {}};
  /// Explore under the priority layer (true) or the unrestricted interaction
  /// semantics (false). Deadlock-freedom is priority-sensitive in BIP.
  bool use_priorities = true;
};

struct ExploreResult {
  /// Three-valued answer to "the system is deadlock-free and safe":
  /// kViolated on a concrete deadlock or safety violation (definite even
  /// under a budget), kHolds only after exhausting the reachable states,
  /// kUnknown when the search was truncated without finding either.
  common::Verdict verdict = common::Verdict::kUnknown;

  /// The core's uniform counters: states_stored / transitions / truncated.
  core::SearchStats stats;

  bool deadlock_found = false;
  std::string deadlock_state;

  bool violation_found = false;
  std::string violating_state;

  common::StopReason stop() const { return stats.stop; }
};

std::string describe_state(const BipSystem& sys, const BipState& s);

/// Explores all reachable states; reports the first deadlock (state with no
/// enabled interaction) and the first violation of `safety` (if given).
ExploreResult explore(const BipSystem& sys, const ExploreOptions& opts = {},
                      const BipPredicate& safety = {});

/// E<> pred over the reachable states: kHolds with a witness, kViolated
/// after exhausting the reachable states, kUnknown when truncated first.
common::Verdict reachable(const BipSystem& sys, const BipPredicate& pred,
                          const ExploreOptions& opts = {});

}  // namespace quanta::bip
