// Exact state-space exploration of a BIP system (through the engine's
// semantics): reachability of predicates, global deadlock detection, and
// safety monitoring. Serves as the ground truth that the compositional
// D-Finder analysis is compared against.
#pragma once

#include <functional>
#include <string>

#include "bip/engine.h"

namespace quanta::bip {

using BipPredicate = std::function<bool(const BipState&)>;

struct ExploreOptions {
  std::size_t max_states = 5'000'000;
  /// Explore under the priority layer (true) or the unrestricted interaction
  /// semantics (false). Deadlock-freedom is priority-sensitive in BIP.
  bool use_priorities = true;
};

struct ExploreResult {
  std::size_t states = 0;
  std::size_t transitions = 0;
  bool truncated = false;

  bool deadlock_found = false;
  std::string deadlock_state;

  bool violation_found = false;
  std::string violating_state;
};

std::string describe_state(const BipSystem& sys, const BipState& s);

/// Explores all reachable states; reports the first deadlock (state with no
/// enabled interaction) and the first violation of `safety` (if given).
ExploreResult explore(const BipSystem& sys, const ExploreOptions& opts = {},
                      const BipPredicate& safety = {});

/// E<> pred over the reachable states.
bool reachable(const BipSystem& sys, const BipPredicate& pred,
               const ExploreOptions& opts = {});

}  // namespace quanta::bip
