// core::StateTraits specialization plugging BIP global states into the
// shared exploration core (exact interning; BIP has no continuous part).
#pragma once

#include "bip/engine.h"
#include "core/traits.h"

namespace quanta::core {

template <>
struct StateTraits<bip::BipState> {
  static constexpr bool kSupportsInclusion = false;

  static std::size_t hash(const bip::BipState& s) { return s.hash(); }
  static bool equal(const bip::BipState& a, const bip::BipState& b) {
    return a == b;
  }

  static std::size_t memory_bytes(const bip::BipState& s) {
    std::size_t n = s.places.capacity() * sizeof(int) +
                    s.vars.capacity() * sizeof(common::Valuation);
    for (const common::Valuation& v : s.vars) {
      n += v.capacity() * sizeof(common::Valuation::value_type);
    }
    return n;
  }
};

}  // namespace quanta::core
