// core::StateTraits specialization plugging BIP global states into the
// shared exploration core (exact interning; BIP has no continuous part).
// Opts into pooled storage: the place vector and the per-component variable
// valuations are interned into the store's ZonePool, so the many global
// states that differ in one component's places share everything else.
#pragma once

#include "bip/engine.h"
#include "core/traits.h"
#include "store/pack.h"

namespace quanta::core {

template <>
struct StateTraits<bip::BipState> {
  static constexpr bool kSupportsInclusion = false;

  static std::size_t hash(const bip::BipState& s) { return s.hash(); }
  static bool equal(const bip::BipState& a, const bip::BipState& b) {
    return a == b;
  }

  static std::size_t memory_bytes(const bip::BipState& s) {
    std::size_t n = s.places.capacity() * sizeof(int) +
                    s.vars.capacity() * sizeof(common::Valuation);
    for (const common::Valuation& v : s.vars) {
      n += v.capacity() * sizeof(common::Valuation::value_type);
    }
    return n;
  }

  // --- pooled storage ---

  struct Pooled {
    store::Ref places;
    store::Ref vars;  ///< [len_0][vals...][len_1][vals...]... per component
  };

  static Pooled pool(store::ZonePool& p, const bip::BipState& s) {
    Pooled out;
    out.places = store::intern_vec(p, s.places);
    auto& buf = p.scratch();
    buf.clear();
    for (const common::Valuation& v : s.vars) {
      buf.push_back(static_cast<std::int32_t>(v.size()));
      buf.insert(buf.end(), v.begin(), v.end());
    }
    out.vars = p.intern(buf);
    return out;
  }
  static bip::BipState unpool(const store::ZonePool& p, const Pooled& st) {
    bip::BipState s;
    store::unpack_vec(p, st.places, s.places);
    const std::span<const std::int32_t> d = p.data(st.vars);
    std::size_t pos = 0;
    while (pos < d.size()) {
      const std::size_t len = static_cast<std::size_t>(d[pos++]);
      s.vars.emplace_back(d.begin() + static_cast<std::ptrdiff_t>(pos),
                          d.begin() + static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
    }
    return s;
  }
  static bool equal(const store::ZonePool& p, const Pooled& st,
                    const bip::BipState& s) {
    if (!store::vec_equals(p, st.places, s.places)) return false;
    const std::span<const std::int32_t> d = p.data(st.vars);
    std::size_t pos = 0;
    for (const common::Valuation& v : s.vars) {
      if (pos >= d.size() ||
          d[pos] != static_cast<std::int32_t>(v.size()) ||
          d.size() - pos - 1 < v.size()) {
        return false;
      }
      ++pos;
      for (const common::Value x : v) {
        if (d[pos++] != x) return false;
      }
    }
    return pos == d.size();
  }
};

}  // namespace quanta::core
