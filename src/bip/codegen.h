// Code generation (§IV: "one of the major features of BIP is its ability to
// generate correct code for component coordination"): emits a standalone,
// dependency-free C++ program implementing the composed system's behaviour.
// The coordination layer (connectors, priorities, broadcast maximality) is
// resolved at generation time by flattening, so the generated code is a
// plain transition table plus a scheduler loop — exactly the shape BIP's
// centralized engine-based code generator produces.
#pragma once

#include <string>

#include "bip/flatten.h"
#include "core/search.h"

namespace quanta::bip {

struct CodegenOptions {
  core::SearchLimits limits{.max_states = 100'000, .budget = {}};
  /// Steps the generated main() executes before reporting success.
  std::size_t run_steps = 1000;
};

/// Returns a complete C++17 translation unit. The program random-walks the
/// generated transition system, prints each fired interaction, and exits 0;
/// it exits 1 if it ever reaches a state that should not exist (an internal
/// consistency check compiled into the code).
std::string generate_code(const BipSystem& sys, const CodegenOptions& opts = {});

}  // namespace quanta::bip
