// BIP composite systems: components glued by connectors (rendezvous and
// broadcast — the I of BIP) filtered by priorities (the P). Architecture is
// first-class: connectors and priorities are data that analysis and
// transformation passes (engine, D-Finder, flattening) consume.
#pragma once

#include <string>
#include <vector>

#include "bip/component.h"

namespace quanta::bip {

struct PortRef {
  int component = 0;
  int port = 0;
  bool operator==(const PortRef&) const = default;
};

enum class ConnectorKind {
  kRendezvous,  ///< strong symmetric synchronisation: all ports fire
  kBroadcast,   ///< ports[0] triggers; any subset of the others may join
};

struct Connector {
  std::string name;
  ConnectorKind kind = ConnectorKind::kRendezvous;
  std::vector<PortRef> ports;
};

/// Static priority rule: interactions of `low` are suppressed whenever some
/// interaction of `high` is enabled.
struct PriorityRule {
  int low = 0;   ///< connector index
  int high = 0;  ///< connector index
};

class BipSystem {
 public:
  int add_component(Component c);
  int add_connector(Connector c);
  void add_priority(int low_connector, int high_connector);

  int component_count() const { return static_cast<int>(components_.size()); }
  const Component& component(int i) const { return components_.at(static_cast<std::size_t>(i)); }
  int component_index(const std::string& name) const;

  int connector_count() const { return static_cast<int>(connectors_.size()); }
  const Connector& connector(int i) const { return connectors_.at(static_cast<std::size_t>(i)); }

  const std::vector<PriorityRule>& priorities() const { return priorities_; }

  void validate() const;

 private:
  std::vector<Component> components_;
  std::vector<Connector> connectors_;
  std::vector<PriorityRule> priorities_;
};

}  // namespace quanta::bip
