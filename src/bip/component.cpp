#include "bip/component.h"

#include <stdexcept>

namespace quanta::bip {

int Component::add_place(std::string name) {
  places_.push_back(std::move(name));
  return static_cast<int>(places_.size()) - 1;
}

int Component::add_port(std::string name) {
  ports_.push_back(std::move(name));
  return static_cast<int>(ports_.size()) - 1;
}

int Component::add_transition(int source, int target, int port, Guard guard,
                              Action action, std::string label) {
  transitions_.push_back(Transition{source, target, port, std::move(guard),
                                    std::move(action), std::move(label)});
  return static_cast<int>(transitions_.size()) - 1;
}

int Component::place_index(const std::string& name) const {
  for (std::size_t i = 0; i < places_.size(); ++i) {
    if (places_[i] == name) return static_cast<int>(i);
  }
  throw std::out_of_range("component " + name_ + ": unknown place " + name);
}

int Component::port_index(const std::string& name) const {
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i] == name) return static_cast<int>(i);
  }
  throw std::out_of_range("component " + name_ + ": unknown port " + name);
}

std::vector<int> Component::transitions_from(int place, int port) const {
  std::vector<int> result;
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    if (transitions_[i].source == place && transitions_[i].port == port) {
      result.push_back(static_cast<int>(i));
    }
  }
  return result;
}

void Component::validate() const {
  if (places_.empty()) {
    throw std::invalid_argument("component " + name_ + ": no places");
  }
  if (initial_ < 0 || initial_ >= place_count()) {
    throw std::invalid_argument("component " + name_ + ": bad initial place");
  }
  for (const auto& t : transitions_) {
    if (t.source < 0 || t.source >= place_count() || t.target < 0 ||
        t.target >= place_count()) {
      throw std::invalid_argument("component " + name_ + ": dangling place");
    }
    if (t.port < -1 || t.port >= port_count()) {
      throw std::invalid_argument("component " + name_ + ": dangling port");
    }
  }
}

}  // namespace quanta::bip
