// A small structured query facade over the model-checking engines, mirroring
// the UPPAAL property language fragment used in the paper:
//   A[] p        (invariant)         E<> p   (reachability)
//   p --> q      (leads-to)          A[] not deadlock
#pragma once

#include <string>

#include "mc/deadlock.h"
#include "mc/liveness.h"
#include "mc/reachability.h"

namespace quanta::mc {

enum class QueryKind { kInvariant, kReachability, kLeadsTo, kDeadlockFree };

struct Query {
  QueryKind kind = QueryKind::kInvariant;
  std::string name;       ///< label used in reports
  StatePredicate p;       ///< main predicate (unused for deadlock queries)
  StatePredicate q;       ///< right-hand side of leads-to
};

inline Query invariant(std::string name, StatePredicate p) {
  return Query{QueryKind::kInvariant, std::move(name), std::move(p), nullptr};
}
inline Query reach(std::string name, StatePredicate p) {
  return Query{QueryKind::kReachability, std::move(name), std::move(p), nullptr};
}
inline Query leads_to(std::string name, StatePredicate p, StatePredicate q) {
  return Query{QueryKind::kLeadsTo, std::move(name), std::move(p), std::move(q)};
}
inline Query deadlock_free(std::string name) {
  return Query{QueryKind::kDeadlockFree, std::move(name), nullptr, nullptr};
}

struct QueryResult {
  std::string name;
  common::Verdict verdict = common::Verdict::kUnknown;
  SearchStats stats;
  std::string details;

  bool holds() const { return verdict == common::Verdict::kHolds; }
  common::StopReason stop() const { return stats.stop; }
};

QueryResult run_query(const ta::System& sys, const Query& query,
                      const ReachOptions& opts = {});

}  // namespace quanta::mc
