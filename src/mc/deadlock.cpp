#include "mc/deadlock.h"

#include "dbm/federation.h"

namespace quanta::mc {

namespace {

/// Returns the (possibly empty) set of valuations of s.zone that are
/// deadlocked: unable to take any discrete move now or after delaying.
dbm::Federation deadlocked_part(const ta::SymbolicSemantics& sem,
                                const ta::SymState& s) {
  dbm::Federation dead(s.zone);
  const bool may_delay = !sem.delay_forbidden(s.locs, s.vars);
  for (const ta::Move& m : sem.enabled_moves(s.locs, s.vars)) {
    dbm::Dbm enabled = s.zone;
    bool ok = true;
    for (const auto& [p, e] : m.participants) {
      const ta::Edge& edge =
          sem.system().process(p).edges.at(static_cast<std::size_t>(e));
      if (!ta::SymbolicSemantics::constrain_guard(edge, enabled)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    if (may_delay) {
      // All valuations that can delay into the enabled region escape the
      // deadlock; the stored zone is convex and invariant-closed, so the
      // whole delay path stays legal.
      enabled.down();
      if (!enabled.intersect(s.zone)) continue;
    }
    dead.subtract(enabled);
    if (dead.is_empty()) break;
  }
  return dead;
}

}  // namespace

dbm::Dbm deadlocked_part_witness(const ta::SymbolicSemantics& sem,
                                 const ta::SymState& s) {
  dbm::Federation dead = deadlocked_part(sem, s);
  if (dead.is_empty()) {
    dbm::Dbm empty(s.zone.dim());
    empty.set(0, 0, dbm::bound_lt(-1));
    return empty;
  }
  return dead.zones().front();
}

DeadlockResult check_deadlock_freedom(const ta::System& sys,
                                      const ReachOptions& opts) {
  ta::SymbolicSemantics sem(sys, ta::SymbolicSemantics::Options{opts.extrapolate});
  StatePredicate has_deadlock = [&sem](const ta::SymState& s) {
    return !deadlocked_part(sem, s).is_empty();
  };
  ReachResult r = reachable(sys, has_deadlock, opts);
  DeadlockResult result;
  result.verdict = common::negate(r.verdict);
  result.stats = r.stats;
  result.trace = std::move(r.trace);
  result.deadlocked_state = std::move(r.witness);
  return result;
}

}  // namespace quanta::mc
