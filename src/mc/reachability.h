// UPPAAL-style symbolic reachability: forward exploration of the zone graph
// with a passed/waiting list, discrete-state bucketing and zone-inclusion
// subsumption, all provided by the shared exploration core (src/core).
// Answers E<> goal and (by negation) A[] safe queries.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/pred.h"
#include "common/verdict.h"
#include "core/observer.h"
#include "core/search.h"
#include "ta/symbolic.h"

namespace quanta::mc {

/// Predicate over symbolic states, carrying the canonical form of its AST
/// (fingerprinted by the checkpoint subsystem). Plain lambdas still convert
/// implicitly but canonicalize as "opaque" — prefer the builders below, or
/// common::labeled_pred for closures that must stay distinguishable. For
/// clock-constrained goals, check non-emptiness of the intersection with the
/// state's zone inside the predicate.
using StatePredicate = common::Predicate<ta::SymState>;

/// Predicate "process is in location" (by name); canonicalizes to the
/// resolved indices, "loc(p,l)".
StatePredicate loc_pred(const ta::System& sys, const std::string& process,
                        const std::string& location);
/// Conjunction / disjunction / negation of predicates (canonical forms
/// compose structurally).
inline StatePredicate pred_and(StatePredicate a, StatePredicate b) {
  return common::pred_and(std::move(a), std::move(b));
}
inline StatePredicate pred_or(StatePredicate a, StatePredicate b) {
  return common::pred_or(std::move(a), std::move(b));
}
inline StatePredicate pred_not(StatePredicate a) {
  return common::pred_not(std::move(a));
}

/// All mc engines report the core's uniform counters.
using SearchStats = core::SearchStats;

struct ReachOptions {
  bool extrapolate = true;
  /// Use zone-inclusion subsumption in the passed list (ablation A1 turns
  /// this off).
  bool inclusion_subsumption = true;
  bool record_trace = true;
  /// Expansion order of the waiting list. Verdicts are order-independent;
  /// witness traces and stored-state counts may differ.
  core::SearchOrder order = core::SearchOrder::kBfs;
  core::SearchLimits limits;
  /// Optional instrumentation hook (not owned; may be nullptr).
  core::ExplorationObserver* observer = nullptr;
  /// Crash-safe checkpoint/resume policy (src/ckpt): with a path set, the
  /// search resumes from a validated snapshot chain at that path, snapshots
  /// when a resource bound stops it (and every `interval` explored states,
  /// writing incremental QCKPD1 deltas), and the kUnknown verdict then
  /// carries the resume handle in ReachResult::resume. Interrupt-at-any-
  /// point + resume is bit-identical to an uninterrupted run. The checkpoint
  /// fingerprint covers the model, these options and the goal predicate's
  /// canonical AST — structurally different queries refuse each other's
  /// checkpoints.
  ckpt::Options checkpoint;
};

struct ReachResult {
  /// Three-valued answer to "E<> goal": kHolds with a witness, kViolated
  /// only after exhausting the full state space, kUnknown whenever the
  /// search was truncated (state/time/memory limit, cancellation, fault).
  common::Verdict verdict = common::Verdict::kUnknown;
  SearchStats stats;
  /// Action labels along a witness path (empty if not recorded/reachable).
  std::vector<std::string> trace;
  /// Printable form of the witness state.
  std::string witness;
  /// Checkpoint/resume outcome of this run (ReachOptions::checkpoint).
  ckpt::ResumeInfo resume;

  /// Definitely reachable (a witness state was found).
  bool reachable() const { return verdict == common::Verdict::kHolds; }
  /// Why the search ended; kCompleted iff the verdict is definite.
  common::StopReason stop() const { return stats.stop; }
};

/// E<> goal.
ReachResult reachable(const ta::System& sys, const StatePredicate& goal,
                      const ReachOptions& opts = {});

struct InvariantResult {
  /// Three-valued answer to "A[] safe". A truncated search is never a
  /// definite yes: kUnknown carries the stop reason in stats.stop.
  common::Verdict verdict = common::Verdict::kUnknown;
  SearchStats stats;
  std::vector<std::string> counterexample;
  std::string violating_state;
  /// Checkpoint/resume outcome of this run (ReachOptions::checkpoint).
  ckpt::ResumeInfo resume;

  bool holds() const { return verdict == common::Verdict::kHolds; }
  common::StopReason stop() const { return stats.stop; }
};

/// A[] safe  ==  not E<> (not safe).
InvariantResult check_invariant(const ta::System& sys,
                                const StatePredicate& safe,
                                const ReachOptions& opts = {});

}  // namespace quanta::mc
