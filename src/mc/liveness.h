// Leads-to (response) properties:  phi --> psi  ==  A[] (phi imply A<> psi).
//
// Checked on the full zone graph (exact-equality deduplication; finite thanks
// to extrapolation): the property fails iff from some reachable phi-state a
// path avoiding psi reaches either a cycle of non-psi states or a state with
// no successors at all. As in UPPAAL practice this judges over runs with
// discrete progress (zeno idling in a state with enabled actions is not a
// counterexample); see DESIGN.md.
//
// phi and psi must be *discrete* predicates (locations/variables only); the
// zone component of the states they receive must not influence the verdict.
#pragma once

#include "mc/reachability.h"

namespace quanta::mc {

struct LeadsToResult {
  /// kUnknown whenever the zone graph was truncated — unexpanded frontier
  /// states would read as stuck runs, so no verdict is supported at all.
  common::Verdict verdict = common::Verdict::kUnknown;
  SearchStats stats;
  std::string reason;  ///< human-readable explanation when not kHolds
  /// Checkpoint/resume outcome of this run (ReachOptions::checkpoint).
  ckpt::ResumeInfo resume;

  bool holds() const { return verdict == common::Verdict::kHolds; }
  common::StopReason stop() const { return stats.stop; }
};

/// With ReachOptions::checkpoint enabled, the zone-graph construction is
/// checkpointed under Provider::kLiveness (store + DFS worklist + the
/// successor lists of expanded nodes, incrementally as QCKPD1 deltas); a
/// resumed build is bit-identical to an uninterrupted one. Once the graph
/// completes it is snapshotted whole (empty worklist), so an interrupt
/// during the violation search resumes without rebuilding — the search
/// itself is a deterministic function of the complete graph. The
/// fingerprint mixes the canonical ASTs of phi and psi.
LeadsToResult check_leads_to(const ta::System& sys, const StatePredicate& phi,
                             const StatePredicate& psi,
                             const ReachOptions& opts = {});

/// A<> psi ("inevitably psi"): every run from the initial state eventually
/// satisfies psi — the special case of leads-to with phi = initial.
LeadsToResult check_eventually(const ta::System& sys,
                               const StatePredicate& psi,
                               const ReachOptions& opts = {});

/// E[] psi ("psi can hold forever"): some run stays inside psi states —
/// the dual of A<> (not psi).
struct PossiblyAlwaysResult {
  common::Verdict verdict = common::Verdict::kUnknown;
  SearchStats stats;
  /// Checkpoint/resume outcome of this run (ReachOptions::checkpoint).
  ckpt::ResumeInfo resume;

  bool holds() const { return verdict == common::Verdict::kHolds; }
  common::StopReason stop() const { return stats.stop; }
};
PossiblyAlwaysResult check_possibly_always(const ta::System& sys,
                                           const StatePredicate& psi,
                                           const ReachOptions& opts = {});

}  // namespace quanta::mc
