#include "mc/liveness.h"

#include <unordered_map>

#include "common/hash.h"

namespace quanta::mc {

namespace {

struct Graph {
  std::vector<ta::SymState> states;
  std::vector<std::vector<int>> succ;
};

Graph build_zone_graph(const ta::SymbolicSemantics& sem, SearchStats& stats,
                       std::size_t max_states, bool* truncated) {
  Graph g;
  std::unordered_map<std::size_t, std::vector<int>> index;
  std::vector<int> worklist;

  auto intern = [&](ta::SymState s) -> int {
    std::size_t key = s.discrete_hash();
    common::hash_combine(key, s.zone.hash());
    auto& bucket = index[key];
    for (int n : bucket) {
      if (g.states[static_cast<std::size_t>(n)].same_discrete(s) &&
          g.states[static_cast<std::size_t>(n)].zone == s.zone) {
        return n;
      }
    }
    int idx = static_cast<int>(g.states.size());
    g.states.push_back(std::move(s));
    g.succ.emplace_back();
    bucket.push_back(idx);
    worklist.push_back(idx);
    return idx;
  };

  intern(sem.initial());
  while (!worklist.empty()) {
    int idx = worklist.back();
    worklist.pop_back();
    ++stats.states_explored;
    if (g.states.size() >= max_states) {
      *truncated = true;
      break;
    }
    const ta::SymState state = g.states[static_cast<std::size_t>(idx)];
    for (auto& tr : sem.successors(state)) {
      ++stats.transitions;
      int to = intern(std::move(tr.state));
      g.succ[static_cast<std::size_t>(idx)].push_back(to);
    }
  }
  stats.states_stored = g.states.size();
  return g;
}

/// Iterative detection of a cycle or dead-end inside the non-psi subgraph
/// restricted to nodes reachable from `roots`. Returns a reason string, or
/// empty if the obligation holds.
std::string find_violation(const Graph& g, const std::vector<bool>& is_psi,
                           const std::vector<int>& roots) {
  const int n = static_cast<int>(g.states.size());
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<char> color(static_cast<std::size_t>(n), 0);
  struct Frame {
    int node;
    std::size_t next_child;
  };
  std::vector<Frame> stack;
  for (int root : roots) {
    if (is_psi[static_cast<std::size_t>(root)]) continue;  // discharged at once
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    stack.push_back(Frame{root, 0});
    color[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& succ = g.succ[static_cast<std::size_t>(f.node)];
      if (succ.empty()) {
        return "non-psi state with no successors (stuck run)";
      }
      if (f.next_child == succ.size()) {
        color[static_cast<std::size_t>(f.node)] = 2;
        stack.pop_back();
        continue;
      }
      int child = succ[f.next_child++];
      if (is_psi[static_cast<std::size_t>(child)]) continue;  // obligation met
      char& c = color[static_cast<std::size_t>(child)];
      if (c == 1) {
        return "cycle of non-psi states (psi can be avoided forever)";
      }
      if (c == 0) {
        c = 1;
        stack.push_back(Frame{child, 0});
      }
    }
  }
  return {};
}

}  // namespace

LeadsToResult check_leads_to(const ta::System& sys, const StatePredicate& phi,
                             const StatePredicate& psi,
                             const ReachOptions& opts) {
  ta::SymbolicSemantics sem(sys, ta::SymbolicSemantics::Options{opts.extrapolate});
  LeadsToResult result;
  bool truncated = false;
  Graph g = build_zone_graph(sem, result.stats, opts.max_states, &truncated);
  if (truncated) {
    result.stats.truncated = true;
    result.holds = false;
    result.reason = "state space truncated";
    return result;
  }
  std::vector<bool> is_psi(g.states.size());
  std::vector<int> roots;
  for (std::size_t i = 0; i < g.states.size(); ++i) {
    is_psi[i] = psi(g.states[i]);
    if (!is_psi[i] && phi(g.states[i])) roots.push_back(static_cast<int>(i));
  }
  result.reason = find_violation(g, is_psi, roots);
  result.holds = result.reason.empty();
  return result;
}

LeadsToResult check_eventually(const ta::System& sys,
                               const StatePredicate& psi,
                               const ReachOptions& opts) {
  // A<> psi == (initial --> psi): only the initial state seeds the search.
  ta::SymbolicSemantics sem(sys, ta::SymbolicSemantics::Options{opts.extrapolate});
  ta::SymState init = sem.initial();
  StatePredicate initial_only = [init](const ta::SymState& s) {
    return s.same_discrete(init) && s.zone == init.zone;
  };
  return check_leads_to(sys, initial_only, psi, opts);
}

PossiblyAlwaysResult check_possibly_always(const ta::System& sys,
                                           const StatePredicate& psi,
                                           const ReachOptions& opts) {
  LeadsToResult dual = check_eventually(sys, pred_not(psi), opts);
  PossiblyAlwaysResult result;
  result.stats = dual.stats;
  result.holds = !dual.holds && !dual.stats.truncated;
  return result;
}

}  // namespace quanta::mc
